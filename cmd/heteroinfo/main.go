// Command heteroinfo prints the model catalogs — the paper's data tables
// that are configuration rather than measurement (Tables 1, 2, 3, 5, 6)
// — straight from the live registries, so documentation cannot drift
// from code.
//
// Usage:
//
//	heteroinfo            # all catalog tables
//	heteroinfo -table 3   # one table
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"heteroos/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "table number (1,2,3,5,6); 0 prints all")
	flag.Parse()

	ids := map[int]string{1: "table1", 2: "table2", 3: "table3", 5: "table5", 6: "table6"}
	var order []int
	if *table == 0 {
		order = []int{1, 2, 3, 5, 6}
	} else {
		if _, ok := ids[*table]; !ok {
			fmt.Fprintf(os.Stderr, "heteroinfo: no catalog table %d (Table 4 is measured; use heterobench -exp table4)\n", *table)
			os.Exit(2)
		}
		order = []int{*table}
	}
	for _, n := range order {
		e, _ := exp.ByID(ids[n])
		res, err := e.Run(context.Background(), exp.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "heteroinfo:", err)
			os.Exit(1)
		}
		res.Table.Render(os.Stdout)
		fmt.Println()
	}
}
