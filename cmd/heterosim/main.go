// Command heterosim runs a single VM simulation: one application under
// one management mode at a chosen FastMem:SlowMem shape, and prints a
// detailed result breakdown.
//
// Usage:
//
//	heterosim -app GraphChi -mode HeteroOS-coordinated -ratio 4
//	heterosim -app LevelDB -mode Heap-IO-Slab-OD -ratio 8 -seed 7
//	heterosim -modes                    # list mode names
//
// Scenario mode replaces the single fixed VM with a timed script of VM
// arrivals, departures, surges, and fault injections (see
// internal/scenario). The file is a JSON scenario; the bundled ones
// (churn.json, degrade.json) resolve by name from any directory:
//
//	heterosim -scenario churn.json
//	heterosim -scenario degrade.json -events=out.jsonl
//	heterosim -scenarios                # list bundled scenarios
//
// Fleet mode (see DESIGN.md §5j) simulates a whole datacenter instead
// of one host: N hosts advance in lock-step rounds with cross-host VM
// live migration, pluggable placement policies, and host failures with
// mass evacuation. Results are byte-identical for any -workers value:
//
//	heterosim -fleet fleet-churn.json
//	heterosim -fleet fleet-churn-1k.json -workers 8
//	heterosim -fleets                   # list bundled fleet scripts
//
// Checkpoint/restore (see DESIGN.md §5g): periodic checkpoints write
// the full system + engine state; -restore resumes one and produces
// output byte-identical to the uninterrupted run's remainder:
//
//	heterosim -scenario churn.json -checkpoint-every 16 -checkpoint-path churn.hosnap
//	heterosim -restore churn.hosnap
//
// Exit codes: 0 success, 2 usage or unloadable input, 3 runtime
// failure, 130 interrupted.
//
// Observability:
//
//	heterosim -events=out.jsonl         # structured event stream (JSONL; analyze with heterotrace)
//	heterosim -chrome-trace=out.trace   # Perfetto / chrome://tracing export
//	heterosim -metrics=out.csv          # end-of-run metrics snapshot
//	heterosim -trace -format=csv        # per-epoch series as CSV
//	heterosim -profile-epochs           # per-phase epoch cost breakdown (sim + wall)
//	heterosim -listen :9090             # live /metrics (OpenMetrics) + /snapshot.json
//
// Machine-model backends (see DESIGN.md §5f):
//
//	heterosim -backend coarse                    # fast approximate pricing
//	heterosim -record-trace run.jsonl            # record the epoch stream
//	heterosim -replay-trace run.jsonl            # replay a recorded stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"heteroos/internal/core"
	"heteroos/internal/fleet"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/policy"
	"heteroos/internal/scenario"
	"heteroos/internal/snapshot"
	"heteroos/internal/workload"

	"heteroos/internal/metrics"
)

func main() {
	var (
		app       = flag.String("app", "GraphChi", "application (Table 2 name, or memlat/stream)")
		modeName  = flag.String("mode", "HeteroOS-coordinated", "management mode (Table 5 / baseline name)")
		ratio     = flag.Int("ratio", 4, "SlowMem:FastMem capacity ratio denominator (fast = 8GiB/ratio)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		listModes = flag.Bool("modes", false, "list mode names and exit")
		scenarioF = flag.String("scenario", "", "run a JSON scenario file (bundled names resolve from any directory)")
		listScens = flag.Bool("scenarios", false, "list bundled scenario names and exit")
		fleetF    = flag.String("fleet", "", "run a JSON fleet script (bundled names resolve from any directory)")
		listFlts  = flag.Bool("fleets", false, "list bundled fleet script names and exit")
		workersF  = flag.Int("workers", 0, "fleet host-stepping goroutines (0 = GOMAXPROCS); any value yields the identical result")
		trace     = flag.Bool("trace", false, "print a per-epoch time series")
		format    = flag.String("format", "text", "trace/metrics table format: text, csv, or markdown")
		events    = flag.String("events", "", "write structured events as JSON lines to this file")
		chrome    = flag.String("chrome-trace", "", "write a Chrome trace_event export (Perfetto-loadable) to this file")
		metricsF  = flag.String("metrics", "", "write an end-of-run metrics snapshot (CSV) to this file")
		backendF  = flag.String("backend", "analytic", "machine-model backend: analytic, coarse, or replay (needs -replay-trace)")
		recordF   = flag.String("record-trace", "", "record the per-epoch (charge, cost) stream as JSONL to this file")
		replayF   = flag.String("replay-trace", "", "replay a recorded JSONL epoch stream (selects the replay backend)")
		ckEvery   = flag.Int("checkpoint-every", 0, "write a scenario checkpoint after every N epochs (needs -scenario or -restore)")
		ckPath    = flag.String("checkpoint-path", "", "checkpoint destination file for -checkpoint-every")
		restoreF  = flag.String("restore", "", "resume a scenario checkpoint file and run it to completion")
		profileF  = flag.Bool("profile-epochs", false, "record per-phase epoch costs (sim + wall) and print a phase breakdown table")
		listenF   = flag.String("listen", "", "serve live /metrics (OpenMetrics) and /snapshot.json on this address during the run")
	)
	flag.Parse()

	if *listModes {
		for _, m := range policy.All() {
			fmt.Printf("%-22s %s\n", m.Name, m.Description)
		}
		return
	}
	if *listScens {
		for _, name := range scenario.Bundled() {
			fmt.Println(name)
		}
		return
	}
	if *listFlts {
		for _, name := range fleet.Bundled() {
			fmt.Println(name)
		}
		return
	}
	switch *format {
	case "text", "csv", "markdown":
	default:
		fmt.Fprintf(os.Stderr, "heterosim: unknown -format %q (want text, csv, or markdown)\n", *format)
		os.Exit(2)
	}

	if *restoreF != "" && *scenarioF != "" {
		fmt.Fprintln(os.Stderr, "heterosim: -restore and -scenario are mutually exclusive")
		os.Exit(2)
	}
	if *ckEvery < 0 {
		fmt.Fprintln(os.Stderr, "heterosim: -checkpoint-every must be >= 0")
		os.Exit(2)
	}
	if *ckEvery > 0 && *scenarioF == "" && *restoreF == "" {
		fmt.Fprintln(os.Stderr, "heterosim: -checkpoint-every needs -scenario or -restore")
		os.Exit(2)
	}
	if *ckEvery > 0 && *ckPath == "" {
		fmt.Fprintln(os.Stderr, "heterosim: -checkpoint-every needs -checkpoint-path")
		os.Exit(2)
	}
	ck := scenario.CheckpointOptions{Every: *ckEvery, Path: *ckPath}
	of := obsFlags{events: *events, chrome: *chrome, metricsF: *metricsF,
		listen: *listenF, profile: *profileF, format: *format}

	if *fleetF != "" {
		if *scenarioF != "" || *restoreF != "" {
			fmt.Fprintln(os.Stderr, "heterosim: -fleet is mutually exclusive with -scenario and -restore")
			os.Exit(2)
		}
		if *recordF != "" || *replayF != "" {
			fmt.Fprintln(os.Stderr, "heterosim: -fleet does not support trace record/replay backends")
			os.Exit(2)
		}
		if *profileF {
			fmt.Fprintln(os.Stderr, "heterosim: -profile-epochs is not supported with -fleet")
			os.Exit(2)
		}
		// -seed and -backend override the script's own fields only when
		// passed explicitly, exactly as for scenarios.
		var seedOverride *uint64
		backendName := ""
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				seedOverride = seed
			case "backend":
				backendName = *backendF
			}
		})
		runFleet(*fleetF, seedOverride, backendName, *workersF, of)
		return
	}

	build, closeBackend, err := buildBackend(*backendF, *recordF, *replayF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}

	if *restoreF != "" {
		if *profileF {
			// A checkpoint's embedded scenario does not carry the
			// profiling request; profile the original run instead.
			fmt.Fprintln(os.Stderr, "heterosim: -profile-epochs is not supported with -restore")
			os.Exit(2)
		}
		backendOverride := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "backend" || f.Name == "record-trace" || f.Name == "replay-trace" {
				backendOverride = true
			}
		})
		if backendOverride {
			// A checkpoint pins the backend it was taken under; restoring
			// it under a different model could not be byte-identical.
			fmt.Fprintln(os.Stderr, "heterosim: -restore uses the checkpoint's own backend; backend flags conflict")
			os.Exit(2)
		}
		runRestore(*restoreF, ck, closeBackend, of)
		return
	}

	if *scenarioF != "" {
		// -seed overrides the scenario's seed only when given explicitly;
		// likewise the backend flags override the scenario's own backend
		// field only when one of them was actually passed.
		var seedOverride *uint64
		backendOverride, traceOverride := false, false
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed":
				seedOverride = seed
			case "backend":
				backendOverride = true
			case "record-trace", "replay-trace":
				traceOverride = true
			}
		})
		// A plain -backend override is applied by NAME, not builder: the
		// name rides along inside any checkpoint's embedded scenario, so
		// a resumed run re-builds the same backend (a builder function
		// cannot be serialized). Trace wrappers keep the builder —
		// recorder checkpoints are refused by core, and a replay
		// checkpoint fails the restore-time backend identity check.
		backendName := ""
		if !traceOverride {
			build = nil
			if backendOverride {
				backendName = *backendF
			}
		}
		runScenario(*scenarioF, seedOverride, backendName, build, closeBackend, ck, of)
		return
	}

	mode, err := policy.ByName(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterosim: %v; try -modes\n", err)
		os.Exit(2)
	}
	w, err := workload.ByName(*app, workload.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}
	if *ratio < 1 {
		fmt.Fprintln(os.Stderr, "heterosim: ratio must be >= 1")
		os.Exit(2)
	}

	slow := workload.Config{}.Pages(8 * workload.GiB)
	fast := slow / uint64(*ratio)
	cfg := core.Config{
		FastFrames: fast + slow + 8192,
		SlowFrames: slow + 8192,
		Seed:       *seed,
		Trace:      *trace,
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fast, SlowPages: slow,
		}},
	}

	runTag := fmt.Sprintf("%s/%s ratio=%d seed=%d", *app, *modeName, *ratio, *seed)
	handle, closeObs := newObsHandle(runTag, of)
	cfg.Obs = handle
	cfg.ProfileEpochs = *profileF
	cfg.Backend = build
	closeServer := serveMetrics(handle, *listenF)

	// Ctrl-C cancels the run at the next simulation epoch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, sys, err := core.RunSingleContext(ctx, cfg)
	if err != nil {
		closeObs()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "heterosim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(3)
	}

	prof := w.Profile()
	fmt.Printf("%s under %s (FastMem 1/%d of 8GiB SlowMem, %s)\n",
		prof.Name, mode.Name, *ratio, sys.VMM.SharePolicyName())
	fmt.Printf("  runtime          %10.2f s\n", res.RuntimeSeconds())
	if prof.OpsPerEpoch > 0 {
		fmt.Printf("  throughput       %10.0f ops/s (%s)\n",
			res.Throughput(prof.OpsPerEpoch), prof.Metric)
	}
	fmt.Printf("  cpu time         %10.2f s\n", res.CPUTime.Seconds())
	fmt.Printf("  FastMem stall    %10.2f s  (%d misses)\n",
		res.MemTime[memsim.FastMem].Seconds(), res.Misses[memsim.FastMem])
	fmt.Printf("  SlowMem stall    %10.2f s  (%d misses)\n",
		res.MemTime[memsim.SlowMem].Seconds(), res.Misses[memsim.SlowMem])
	fmt.Printf("  OS/software time %10.2f s\n", res.OSTime.Seconds())
	fmt.Printf("  faults=%d swapIn=%d swapOut=%d diskRead=%d diskWrite=%d\n",
		res.Faults, res.SwapIns, res.SwapOuts, res.DiskReadPages, res.DiskWritePages)
	fmt.Printf("  fastAllocMissRatio=%.3f demotions=%d promotions=%d vmmMigrations=%d\n",
		res.MissRatio(), res.Demotions, res.Promotions, res.VMMMigrations)
	fmt.Printf("  scanPasses=%d scanCost=%.2fs migrateCost=%.2fs\n",
		res.ScanPasses, res.ScanCostNs/1e9, res.MigrateCostNs/1e9)

	if *trace {
		fmt.Println()
		t := core.TraceTable(fmt.Sprintf("%s / %s per-epoch trace", prof.Name, mode.Name),
			sys.VMs[0].TraceLog)
		renderTable(t, *format, os.Stdout)
	}

	if *profileF {
		fmt.Println()
		renderTable(obs.PhaseTable(handle.Metrics.Snapshot(),
			"epoch phase breakdown: "+runTag), *format, os.Stdout)
	}
	if *metricsF != "" {
		writeMetrics(handle, *metricsF)
	}
	closeServer()
	closeObs()
	closeBackendOrDie(closeBackend)
}

// runScenario executes a scripted multi-VM scenario and prints its
// per-VM outcomes and sampled timeline. A non-nil build overrides the
// scenario's own backend field (CLI flags win over the JSON).
func runScenario(path string, seedOverride *uint64, backendName string, build memsim.Builder, closeBackend func() error, ck scenario.CheckpointOptions, of obsFlags) {
	sc, err := scenario.LoadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}
	if seedOverride != nil {
		sc.Seed = *seedOverride
	}
	if backendName != "" {
		sc.WithBackend(backendName)
	}
	if build != nil {
		sc.WithBackendBuilder(build)
	}
	sc.ProfileEpochs = of.profile
	runTag := fmt.Sprintf("scenario/%s seed=%d", sc.Name, sc.Seed)
	executeScenario(runTag, func(ctx context.Context, h *obs.Obs) (*scenario.Result, error) {
		return sc.RunWithCheckpoints(ctx, h, ck)
	}, closeBackend, of)
}

// runRestore resumes a scenario checkpoint and runs it to completion;
// its output is byte-identical to what the uninterrupted run would
// have printed (and, with -events, its event stream is exactly the
// uninterrupted run's tail).
func runRestore(path string, ck scenario.CheckpointOptions, closeBackend func() error, of obsFlags) {
	// Open and verify the snapshot up front so an unreadable or corrupt
	// checkpoint reports as bad input (exit 2), exactly like an
	// unloadable -scenario file; only the resumed run itself can exit 3.
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}
	rd, err := snapshot.Open(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterosim: restore %s: %v\n", path, err)
		os.Exit(2)
	}
	runTag := "restore/" + path
	executeScenario(runTag, func(ctx context.Context, h *obs.Obs) (*scenario.Result, error) {
		return scenario.Resume(ctx, rd, h, ck)
	}, closeBackend, of)
}

// runFleet executes a fleet script: N hosts in lock-step rounds with
// live migration and placement (see internal/fleet). Per-VM rows print
// only for small fleets; at datacenter scale the per-app aggregate,
// migration log, and timeline carry the story.
func runFleet(path string, seedOverride *uint64, backendName string, workers int, of obsFlags) {
	sc, err := fleet.LoadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}
	if seedOverride != nil {
		sc.Seed = *seedOverride
	}
	if backendName != "" {
		sc.Host.Backend = backendName
	}
	runTag := fmt.Sprintf("fleet/%s seed=%d", sc.Name, sc.Seed)
	handle, closeObs := newObsHandle(runTag, of)
	closeServer := serveMetrics(handle, of.listen)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	r, err := fleet.Run(ctx, sc, fleet.Options{Workers: workers, Obs: handle})
	if err != nil {
		closeServer()
		closeObs()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "heterosim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(3)
	}

	completed, lost, heat := 0, 0, 0
	for i := range r.VMs {
		if r.VMs[i].Completed {
			completed++
		}
		if r.VMs[i].Lost {
			lost++
		}
	}
	evacuations := 0
	for i := range r.Migrations {
		if r.Migrations[i].Evacuation {
			evacuations++
		}
		if r.Migrations[i].HeatPreserved {
			heat++
		}
	}
	fmt.Printf("fleet %s: %d hosts, %d VMs over %d rounds, seed %d, placement %s\n",
		r.Name, r.Hosts, len(r.VMs), r.Rounds, r.Seed, r.Placement)
	fmt.Printf("  completed %d  lost %d  migrations %d (%d evacuations, %d heat-preserved)\n",
		completed, lost, len(r.Migrations), evacuations, heat)
	fmt.Println()
	renderTable(r.AppTable(), of.format, os.Stdout)
	if len(r.VMs) <= 64 {
		fmt.Println()
		renderTable(r.Table(), of.format, os.Stdout)
	}
	if n := len(r.Migrations); n > 0 && n <= 200 {
		fmt.Println()
		renderTable(r.MigrationTable(), of.format, os.Stdout)
	}
	fmt.Println()
	renderTable(r.TimelineTable(), of.format, os.Stdout)

	if of.metricsF != "" {
		writeMetrics(handle, of.metricsF)
	}
	closeServer()
	closeObs()
}

// executeScenario drives one scenario run (fresh or resumed) under
// signal handling and prints the shared result rendering.
func executeScenario(runTag string, run func(context.Context, *obs.Obs) (*scenario.Result, error), closeBackend func() error, of obsFlags) {
	handle, closeObs := newObsHandle(runTag, of)
	closeServer := serveMetrics(handle, of.listen)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	r, err := run(ctx, handle)
	if err != nil {
		closeServer()
		closeObs()
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "heterosim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(3)
	}

	fmt.Printf("scenario %s: %d VMs over %d epochs, seed %d, %s\n",
		r.Name, len(r.VMs), r.Epochs, r.Seed, r.Sys.VMM.SharePolicyName())
	fmt.Println()
	renderTable(r.Table(), of.format, os.Stdout)
	fmt.Println()
	renderTable(r.TimelineTable(), of.format, os.Stdout)

	if of.profile {
		fmt.Println()
		renderTable(obs.PhaseTable(handle.Metrics.Snapshot(),
			"epoch phase breakdown: "+runTag), of.format, os.Stdout)
	}
	if of.metricsF != "" {
		writeMetrics(handle, of.metricsF)
	}
	closeServer()
	closeObs()
	closeBackendOrDie(closeBackend)
}

// buildBackend resolves the backend flags into a core.Config builder
// plus a cleanup that flushes any trace recording. The returned builder
// is never nil; unknown names surface memsim.ErrUnknownBackend.
func buildBackend(name, record, replay string) (memsim.Builder, func() error, error) {
	if record != "" && replay != "" {
		return nil, nil, errors.New("-record-trace and -replay-trace are mutually exclusive")
	}
	var build memsim.Builder
	if replay != "" {
		if name != memsim.BackendAnalytic && name != memsim.BackendReplay {
			return nil, nil, fmt.Errorf("-replay-trace selects the replay backend; -backend %s conflicts", name)
		}
		tr, err := memsim.LoadTraceFile(replay)
		if err != nil {
			return nil, nil, err
		}
		build = tr.Builder()
	} else {
		b, err := memsim.BuilderByName(name)
		if err != nil {
			return nil, nil, err
		}
		build = b
	}
	closeBackend := func() error { return nil }
	if record != "" {
		f, err := os.Create(record)
		if err != nil {
			return nil, nil, err
		}
		inner := build
		var recorders []*memsim.Recorder
		build = func(m *memsim.Machine, opts ...memsim.Option) memsim.Backend {
			r := memsim.NewRecorder(inner(m, opts...), f)
			recorders = append(recorders, r)
			return r
		}
		closeBackend = func() error {
			var first error
			for _, r := range recorders {
				if err := r.Flush(); err != nil && first == nil {
					first = err
				}
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
			return first
		}
	}
	return build, closeBackend, nil
}

// closeBackendOrDie flushes trace recording; an unwritable trace is a
// hard error (a truncated recording would replay wrong).
func closeBackendOrDie(closeBackend func() error) {
	if err := closeBackend(); err != nil {
		fmt.Fprintln(os.Stderr, "heterosim: record-trace:", err)
		os.Exit(3)
	}
}

// obsFlags bundles the observability flags every run path shares.
type obsFlags struct {
	events, chrome, metricsF string
	listen                   string
	profile                  bool
	format                   string
}

// on reports whether any flag asks for an observability handle.
func (of obsFlags) on() bool {
	return of.events != "" || of.chrome != "" || of.metricsF != "" ||
		of.listen != "" || of.profile
}

// newObsHandle builds an observability handle when any output was
// requested (nil otherwise — the default path stays byte-identical to
// an uninstrumented build) and returns it with its cleanup function.
// The cleanup surfaces ring overflow on stderr: a run analyzed from a
// partially captured stream would silently under-count.
func newObsHandle(runTag string, of obsFlags) (*obs.Obs, func()) {
	if !of.on() {
		return nil, func() {}
	}
	handle := obs.New()
	handle.SetRunTag(runTag)
	var outFiles []*os.File
	openSink := func(path string, mk func(wr io.Writer, run string) obs.Sink) {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "heterosim:", err)
			os.Exit(2)
		}
		outFiles = append(outFiles, f)
		handle.Tracer.AddSink(mk(f, runTag))
	}
	if of.events != "" {
		openSink(of.events, func(wr io.Writer, run string) obs.Sink { return obs.NewJSONLSink(wr, run) })
	}
	if of.chrome != "" {
		openSink(of.chrome, func(wr io.Writer, run string) obs.Sink { return obs.NewChromeTraceSink(wr, run) })
	}
	return handle, func() {
		if err := handle.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "heterosim: event sink:", err)
		}
		if msg := handle.DroppedWarning(); msg != "" {
			fmt.Fprintln(os.Stderr, "heterosim:", msg)
		}
		for _, f := range outFiles {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "heterosim:", err)
			}
		}
	}
}

// serveMetrics starts the live metrics endpoint when addr is set and
// wires per-epoch snapshot publication into the handle's epoch hook.
// The returned cleanup stops the server.
func serveMetrics(handle *obs.Obs, addr string) func() {
	if addr == "" {
		return func() {}
	}
	srv, err := obs.NewMetricsServer(addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim: -listen:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "heterosim: serving http://%s/metrics and /snapshot.json\n", srv.Addr())
	handle.SetEpochHook(func(int) {
		srv.Publish(handle.Metrics.Snapshot(), handle.RunTag())
	})
	// Publish once up front so the endpoints are never empty.
	srv.Publish(handle.Metrics.Snapshot(), handle.RunTag())
	return func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "heterosim: -listen:", err)
		}
	}
}

// writeMetrics dumps the end-of-run metrics snapshot as CSV.
func writeMetrics(handle *obs.Obs, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}
	snap := handle.Metrics.Snapshot()
	snap.Table("metrics: " + handle.RunTag()).RenderCSV(f)
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
	}
}

// renderTable writes t in the selected format.
func renderTable(t *metrics.Table, format string, w io.Writer) {
	switch format {
	case "csv":
		t.RenderCSV(w)
	case "markdown":
		t.RenderMarkdown(w)
	default:
		t.Render(w)
	}
}
