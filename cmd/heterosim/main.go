// Command heterosim runs a single VM simulation: one application under
// one management mode at a chosen FastMem:SlowMem shape, and prints a
// detailed result breakdown.
//
// Usage:
//
//	heterosim -app GraphChi -mode HeteroOS-coordinated -ratio 4
//	heterosim -app LevelDB -mode Heap-IO-Slab-OD -ratio 8 -seed 7
//	heterosim -modes                    # list mode names
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "GraphChi", "application (Table 2 name, or memlat/stream)")
		modeName  = flag.String("mode", "HeteroOS-coordinated", "management mode (Table 5 / baseline name)")
		ratio     = flag.Int("ratio", 4, "SlowMem:FastMem capacity ratio denominator (fast = 8GiB/ratio)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		listModes = flag.Bool("modes", false, "list mode names and exit")
		trace     = flag.Bool("trace", false, "print a per-epoch time series")
	)
	flag.Parse()

	if *listModes {
		for _, m := range policy.All() {
			fmt.Printf("%-22s %s\n", m.Name, m.Description)
		}
		return
	}

	mode, err := policy.ByName(*modeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterosim: %v; try -modes\n", err)
		os.Exit(2)
	}
	w, err := workload.ByName(*app, workload.Config{Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(2)
	}
	if *ratio < 1 {
		fmt.Fprintln(os.Stderr, "heterosim: ratio must be >= 1")
		os.Exit(2)
	}

	slow := workload.Config{}.Pages(8 * workload.GiB)
	fast := slow / uint64(*ratio)
	cfg := core.Config{
		FastFrames: fast + slow + 8192,
		SlowFrames: slow + 8192,
		Seed:       *seed,
		Trace:      *trace,
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fast, SlowPages: slow,
		}},
	}
	// Ctrl-C cancels the run at the next simulation epoch.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, sys, err := core.RunSingleContext(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "heterosim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "heterosim:", err)
		os.Exit(1)
	}

	prof := w.Profile()
	fmt.Printf("%s under %s (FastMem 1/%d of 8GiB SlowMem, %s)\n",
		prof.Name, mode.Name, *ratio, sys.VMM.SharePolicyName())
	fmt.Printf("  runtime          %10.2f s\n", res.RuntimeSeconds())
	if prof.OpsPerEpoch > 0 {
		fmt.Printf("  throughput       %10.0f ops/s (%s)\n",
			res.Throughput(prof.OpsPerEpoch), prof.Metric)
	}
	fmt.Printf("  cpu time         %10.2f s\n", res.CPUTime.Seconds())
	fmt.Printf("  FastMem stall    %10.2f s  (%d misses)\n",
		res.MemTime[memsim.FastMem].Seconds(), res.Misses[memsim.FastMem])
	fmt.Printf("  SlowMem stall    %10.2f s  (%d misses)\n",
		res.MemTime[memsim.SlowMem].Seconds(), res.Misses[memsim.SlowMem])
	fmt.Printf("  OS/software time %10.2f s\n", res.OSTime.Seconds())
	fmt.Printf("  faults=%d swapIn=%d swapOut=%d diskRead=%d diskWrite=%d\n",
		res.Faults, res.SwapIns, res.SwapOuts, res.DiskReadPages, res.DiskWritePages)
	fmt.Printf("  fastAllocMissRatio=%.3f demotions=%d promotions=%d vmmMigrations=%d\n",
		res.MissRatio(), res.Demotions, res.Promotions, res.VMMMigrations)
	fmt.Printf("  scanPasses=%d scanCost=%.2fs migrateCost=%.2fs\n",
		res.ScanPasses, res.ScanCostNs/1e9, res.MigrateCostNs/1e9)

	if *trace {
		fmt.Println()
		fmt.Println("epoch  total(ms)   cpu(ms)  memF(ms)  memS(ms)    os(ms)  demote  promote  fastFree%")
		for _, tr := range sys.VMs[0].TraceLog {
			fmt.Printf("%5d  %9.1f %9.1f %9.1f %9.1f %9.1f  %6d  %7d  %8.1f\n",
				tr.Epoch,
				float64(tr.Total)/1e6, float64(tr.CPU)/1e6,
				float64(tr.MemFast)/1e6, float64(tr.MemSlow)/1e6, float64(tr.OS)/1e6,
				tr.Demotions, tr.Promotions, tr.FastFreePct)
		}
	}
}
