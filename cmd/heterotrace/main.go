// Command heterotrace analyzes a JSONL event stream captured with
// `heterosim -events=FILE` (or any JSONLSink consumer) offline: it
// derives migration latency distributions per tier pair, per-VM
// FastMem residency timelines, fault-injection windows with recovery
// times, and balloon-refusal runs.
//
// Usage:
//
//	heterotrace run.jsonl                      # all reports as text
//	heterotrace -report migrations run.jsonl   # one report
//	heterotrace -format csv run.jsonl          # machine-readable tables
//	heterotrace -format json run.jsonl         # one JSON document
//	heterosim -scenario churn.json -events=/dev/stdout | heterotrace -
//	gzip run.jsonl && heterotrace run.jsonl.gz  # gzip input is sniffed
//
// The analyzer's per-VM migration page totals reconcile exactly with
// the run's reported VMResult promotions/demotions when the full event
// stream was captured (no ring drops — heterosim warns on stderr if
// events were dropped).
//
// Exit codes: 0 success, 2 usage or unreadable/unparseable input.
package main

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"heteroos/internal/metrics"
	"heteroos/internal/obs"
)

func main() {
	var (
		report  = flag.String("report", "all", "report: migrations, residency, faults, refusals, or all")
		format  = flag.String("format", "text", "output format: text, markdown, csv, or json")
		buckets = flag.Int("buckets", 20, "residency timeline buckets over the trace span")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: heterotrace [flags] FILE   (FILE '-' or absent reads stdin)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch *report {
	case "migrations", "residency", "faults", "refusals", "all":
	default:
		fmt.Fprintf(os.Stderr, "heterotrace: unknown -report %q (want migrations, residency, faults, refusals, or all)\n", *report)
		os.Exit(2)
	}
	switch *format {
	case "text", "markdown", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "heterotrace: unknown -format %q (want text, markdown, csv, or json)\n", *format)
		os.Exit(2)
	}
	if *buckets < 1 {
		fmt.Fprintln(os.Stderr, "heterotrace: -buckets must be >= 1")
		os.Exit(2)
	}
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() == 1 && flag.Arg(0) != "-" {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "heterotrace:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	in, err := maybeGunzip(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterotrace: %s: %v\n", name, err)
		os.Exit(2)
	}
	tr, err := obs.ParseJSONL(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterotrace: %s: %v\n", name, err)
		os.Exit(2)
	}

	want := func(r string) bool { return *report == "all" || *report == r }

	if *format == "json" {
		emitJSON(tr, want, *buckets)
		return
	}

	if *format == "text" {
		run := tr.Run
		if run == "" {
			run = "(untagged)"
		}
		fmt.Printf("trace %s: run %s, %d events\n\n", name, run, len(tr.Events))
	}
	first := true
	emit := func(t *metrics.Table) {
		if !first {
			fmt.Println()
		}
		first = false
		switch *format {
		case "csv":
			t.RenderCSV(os.Stdout)
		case "markdown":
			t.RenderMarkdown(os.Stdout)
		default:
			t.Render(os.Stdout)
		}
	}
	if want("migrations") {
		emit(obs.MigrationTable(tr.Migrations()))
		emit(totalsTable(tr))
	}
	if want("residency") {
		emit(obs.ResidencyTable(tr.Residency(*buckets)))
	}
	if want("faults") {
		emit(obs.FaultTable(tr.FaultWindows()))
	}
	if want("refusals") {
		emit(obs.RefusalTable(tr.RefusalRuns()))
	}
}

// maybeGunzip sniffs the stream's first two bytes and transparently
// decompresses gzip input (traces are routinely compressed for
// archival: `gzip run.jsonl; heterotrace run.jsonl.gz`). Detection is
// by the gzip magic, not the file name, so compressed stdin works too;
// anything else passes through untouched.
func maybeGunzip(in io.Reader) (io.Reader, error) {
	br := bufio.NewReader(in)
	magic, err := br.Peek(2)
	if err != nil {
		// Short or empty input: not gzip; let the JSONL parser report it.
		return br, nil
	}
	if magic[0] != 0x1f || magic[1] != 0x8b {
		return br, nil
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("gzip input: %w", err)
	}
	return zr, nil
}

// totalsTable renders the per-VM migration page totals that reconcile
// with the run's VMResult counters.
func totalsTable(tr *obs.Trace) *metrics.Table {
	t := metrics.NewTable("Migration page totals by VM",
		"vm", "promoted", "demoted", "vmm_promoted", "vmm_demoted")
	t.Caption = "guest columns reconcile with VMResult.Promotions/Demotions, vmm columns sum to VMResult.VMMMigrations"
	byVM := tr.MigrationsByVM()
	vms := make([]int32, 0, len(byVM))
	for vm := range byVM {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	for _, vm := range vms {
		tot := byVM[vm]
		t.AddRow(vm, tot.Promoted, tot.Demoted, tot.VMMPromoted, tot.VMMDemoted)
	}
	return t
}

// jsonTotals is the per-VM totals wire shape (JSON object keys must be
// strings, so the VM id moves into the row).
type jsonTotals struct {
	VM int32 `json:"vm"`
	obs.MigrationTotals
}

// emitJSON renders the selected reports as one JSON document.
func emitJSON(tr *obs.Trace, want func(string) bool, buckets int) {
	out := struct {
		Run        string                  `json:"run,omitempty"`
		Events     int                     `json:"events"`
		Migrations []obs.MigrationGroup    `json:"migrations,omitempty"`
		Totals     []jsonTotals            `json:"migration_totals,omitempty"`
		Residency  []obs.ResidencyTimeline `json:"residency,omitempty"`
		Faults     []obs.FaultWindow       `json:"fault_windows,omitempty"`
		Refusals   []obs.RefusalRun        `json:"refusal_runs,omitempty"`
	}{Run: tr.Run, Events: len(tr.Events)}
	if want("migrations") {
		out.Migrations = tr.Migrations()
		byVM := tr.MigrationsByVM()
		vms := make([]int32, 0, len(byVM))
		for vm := range byVM {
			vms = append(vms, vm)
		}
		sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
		for _, vm := range vms {
			out.Totals = append(out.Totals, jsonTotals{VM: vm, MigrationTotals: byVM[vm]})
		}
	}
	if want("residency") {
		out.Residency = tr.Residency(buckets)
	}
	if want("faults") {
		out.Faults = tr.FaultWindows()
	}
	if want("refusals") {
		out.Refusals = tr.RefusalRuns()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "heterotrace:", err)
		os.Exit(2)
	}
}
