package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"reflect"
	"testing"

	"heteroos/internal/obs"
	"heteroos/internal/scenario"
)

// goldenTrace captures the bundled churn scenario's full event stream —
// the golden JSONL trace the gzip round-trip is checked against.
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	sc, err := scenario.LoadBundled("churn.json")
	if err != nil {
		t.Fatal(err)
	}
	h := obs.New()
	h.SetRunTag("golden-churn")
	var buf bytes.Buffer
	h.Tracer.AddSink(obs.NewJSONLSink(&buf, "golden-churn"))
	if _, err := sc.Run(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("churn scenario emitted no events")
	}
	return buf.Bytes()
}

// TestGzipInputRoundTrip pins that a gzip-compressed trace parses to
// exactly the analysis the uncompressed stream produces, and that
// plain input still passes through the sniffer untouched.
func TestGzipInputRoundTrip(t *testing.T) {
	plain := goldenTrace(t)

	in, err := maybeGunzip(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	want, err := obs.ParseJSONL(in)
	if err != nil {
		t.Fatalf("parse plain trace: %v", err)
	}
	if len(want.Events) == 0 {
		t.Fatal("golden trace parsed to zero events")
	}

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if zbuf.Len() >= len(plain) {
		t.Fatalf("gzip did not compress the trace (%d -> %d bytes)", len(plain), zbuf.Len())
	}
	in, err = maybeGunzip(bytes.NewReader(zbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := obs.ParseJSONL(in)
	if err != nil {
		t.Fatalf("parse gzipped trace: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("gzipped trace parsed differently: %d events vs %d (run %q vs %q)",
			len(got.Events), len(want.Events), got.Run, want.Run)
	}
}

// TestMaybeGunzipShortInput makes sure sub-2-byte streams fall through
// to the parser instead of erroring in the sniffer.
func TestMaybeGunzipShortInput(t *testing.T) {
	for _, data := range [][]byte{nil, {0x1f}} {
		in, err := maybeGunzip(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("maybeGunzip(%v): %v", data, err)
		}
		if _, err := obs.ParseJSONL(in); err == nil && len(data) > 0 {
			t.Errorf("parsing %v should fail downstream, not in the sniffer", data)
		}
	}
}
