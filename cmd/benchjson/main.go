// Command benchjson converts `go test -bench` text output on stdin into
// a committed JSON baseline (the repo's BENCH_*.json perf trajectory).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem -count=5 . > bench.txt
//	benchjson -label analytic -match 'Analytic$' < bench.txt > BENCH_analytic.json
//	benchjson -label coarse -match 'Coarse$' \
//	    -speedup EpochPricingCoarse=EpochPricingAnalytic < bench.txt > BENCH_coarse.json
//
// Repeated -count runs of one benchmark are kept as samples and
// summarised by their mean; -speedup NAME=BASELINE records the
// baseline-to-name throughput factor (both names must appear in the
// input, pre -match filtering, so a coarse baseline can reference the
// analytic benchmark from the same run).
//
// Guard mode compares fresh bench output against a committed baseline
// instead of emitting JSON:
//
//	go test -run=NONE -bench='EpochPricing' -count=3 . \
//	    | benchjson -guard BENCH_coarse.json -tolerance 0.05
//
// It recomputes the baseline's recorded speedup pair from the fresh
// input and fails (exit 1) if the fresh factor regressed more than
// -tolerance below the committed one. The speedup ratio — not raw
// ns/op — is guarded because it cancels out machine speed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type sample struct {
	Iters      int64   `json:"iters"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"b_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
}

type benchmark struct {
	Name        string   `json:"name"`
	Samples     []sample `json:"samples"`
	MeanNsPerOp float64  `json:"mean_ns_per_op"`
}

type speedup struct {
	Benchmark string  `json:"benchmark"`
	Baseline  string  `json:"baseline"`
	Factor    float64 `json:"factor"`
}

type baseline struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
	Speedup    *speedup    `json:"speedup,omitempty"`
}

// benchLine matches "BenchmarkX-8  1000  123.4 ns/op  0 B/op  0 allocs/op"
// (the -benchmem columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	label := flag.String("label", "", "baseline label (e.g. the backend name)")
	match := flag.String("match", "", "regexp keeping only matching benchmark names")
	speedupF := flag.String("speedup", "", "NAME=BASELINE: record baseline/name mean-ns ratio")
	guardF := flag.String("guard", "", "committed baseline JSON: check the fresh input's speedup against it instead of emitting JSON")
	tolF := flag.Float64("tolerance", 0.05, "allowed fractional speedup regression in -guard mode")
	flag.Parse()

	keep := regexp.MustCompile(*match)
	out := baseline{Label: *label}
	means := map[string]float64{} // all parsed names, pre-filter
	byName := map[string]*benchmark{}
	var order []string

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			out.Goos = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			out.Goarch = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			out.CPU = v
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		s := sample{
			Iters:      mustInt(m[2]),
			NsPerOp:    mustFloat(m[3]),
			BytesPerOp: optFloat(m[4]),
			AllocsOp:   optFloat(m[5]),
		}
		if byName[name] == nil {
			byName[name] = &benchmark{Name: name}
			order = append(order, name)
		}
		byName[name].Samples = append(byName[name].Samples, s)
	}
	if err := sc.Err(); err != nil {
		die("read: %v", err)
	}

	for _, name := range order {
		b := byName[name]
		var sum float64
		for _, s := range b.Samples {
			sum += s.NsPerOp
		}
		b.MeanNsPerOp = round2(sum / float64(len(b.Samples)))
		means[name] = b.MeanNsPerOp
		if keep.MatchString(name) {
			out.Benchmarks = append(out.Benchmarks, *b)
		}
	}
	if *guardF != "" {
		guard(*guardF, *tolF, means)
		return
	}

	if len(out.Benchmarks) == 0 {
		die("no benchmarks matched %q", *match)
	}

	if *speedupF != "" {
		name, base, ok := strings.Cut(*speedupF, "=")
		if !ok {
			die("-speedup wants NAME=BASELINE, got %q", *speedupF)
		}
		nm, bm := means[name], means[base]
		if nm == 0 || bm == 0 {
			die("-speedup: %q or %q missing from input", name, base)
		}
		out.Speedup = &speedup{Benchmark: name, Baseline: base, Factor: round2(bm / nm)}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		die("encode: %v", err)
	}
}

// guard loads a committed baseline and re-derives its recorded speedup
// pair from the fresh means. Only the ratio is compared — raw ns/op
// varies with the machine running the check, but coarse-vs-analytic
// from one run does not.
func guard(path string, tol float64, means map[string]float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		die("guard: %v", err)
	}
	var base baseline
	if err := json.Unmarshal(data, &base); err != nil {
		die("guard: parse %s: %v", path, err)
	}
	if base.Speedup == nil {
		die("guard: %s records no speedup to check against", path)
	}
	nm, bm := means[base.Speedup.Benchmark], means[base.Speedup.Baseline]
	if nm == 0 || bm == 0 {
		die("guard: fresh input is missing %q or %q", base.Speedup.Benchmark, base.Speedup.Baseline)
	}
	fresh := bm / nm
	floor := base.Speedup.Factor * (1 - tol)
	if fresh < floor {
		die("guard: %s speedup regressed: fresh %.2fx < floor %.2fx (committed %.2fx, tolerance %.0f%%)",
			base.Speedup.Benchmark, fresh, floor, base.Speedup.Factor, tol*100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: guard ok: %s speedup %.2fx (committed %.2fx, floor %.2fx)\n",
		base.Speedup.Benchmark, fresh, base.Speedup.Factor, floor)
}

func mustInt(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		die("bad int %q: %v", s, err)
	}
	return v
}

func mustFloat(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		die("bad float %q: %v", s, err)
	}
	return v
}

func optFloat(s string) float64 {
	if s == "" {
		return 0
	}
	return mustFloat(s)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func die(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
