// Command heterobench regenerates the paper's evaluation artifacts: one
// experiment per table and figure, printed as text tables.
//
// Usage:
//
//	heterobench -exp figure9            # one experiment
//	heterobench -exp all                # everything, paper order
//	heterobench -exp figure1 -quick     # reduced sweep for smoke runs
//	heterobench -list                   # enumerate experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heteroos/internal/exp"
)

func main() {
	var (
		expID  = flag.String("exp", "all", "experiment id (table1..table6, figure1..figure13) or 'all'")
		quick  = flag.Bool("quick", false, "run reduced sweeps")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		format = flag.String("format", "text", "output format: text, markdown, csv")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	opts := exp.Options{Seed: *seed, Quick: *quick}
	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Registry()
	} else {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "heterobench: unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			res.Table.RenderMarkdown(os.Stdout)
		case "csv":
			res.Table.RenderCSV(os.Stdout)
		default:
			res.Table.Render(os.Stdout)
		}
		if res.Notes != "" {
			fmt.Println(res.Notes)
		}
		if *format == "text" {
			fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		} else {
			fmt.Println()
			_ = start
		}
	}
}
