// Command heterobench regenerates the paper's evaluation artifacts: one
// experiment per table and figure, printed as text tables. Sweeps run
// concurrently on a bounded worker pool; Ctrl-C cancels the batch
// within one simulation epoch per in-flight job.
//
// Usage:
//
//	heterobench -exp figure9            # one experiment
//	heterobench -exp all                # everything, paper order
//	heterobench -exp figure1 -quick     # reduced sweep for smoke runs
//	heterobench -exp all -workers 4     # bound the worker pool
//	heterobench -exp figure9 -progress  # per-simulation progress on stderr
//	heterobench -list                   # enumerate experiment ids
//
// Profiling (see README "Profiling" for the pprof workflow):
//
//	heterobench -exp figure9 -cpuprofile cpu.out   # CPU profile of the run
//	heterobench -exp figure9 -memprofile mem.out   # heap profile at exit
//
// Observability:
//
//	heterobench -exp figure6 -metrics m.csv     # per-run metrics snapshots
//	heterobench -exp figure9 -profile-epochs    # aggregate epoch phase breakdown
//
// Machine-model backends (see DESIGN.md §5f):
//
//	heterobench -exp figure9 -backend coarse          # fast approximate sweep
//	heterobench -exp figure9 -record-trace traces/f9  # one JSONL per sweep cell
//	heterobench -exp figure9 -replay-trace cell.jsonl # replay one recorded cell
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"heteroos/internal/exp"
	"heteroos/internal/memsim"
	"heteroos/internal/metrics"
	"heteroos/internal/obs"
)

// obsCollector gathers per-run observability handles from the sweep
// pool (submission happens from the main goroutine, but the factory is
// shared across experiments, so guard anyway) and writes one CSV row
// per metric per run.
type obsCollector struct {
	mu   sync.Mutex
	runs []obsRun
	w    *csv.Writer
}

type obsRun struct {
	label  string
	seed   uint64
	handle *obs.Obs
}

// factory is the runner.Options.NewObs hook.
func (c *obsCollector) factory(label string, seed uint64) *obs.Obs {
	h := obs.New()
	h.SetRunTag(label)
	c.mu.Lock()
	c.runs = append(c.runs, obsRun{label: label, seed: seed, handle: h})
	c.mu.Unlock()
	return h
}

// flush writes the collected runs' snapshots under experiment id (when
// a CSV writer is attached), reports aggregate tracer drops, and
// clears the collection. Runs are written in submission order, so the
// file is deterministic for a fixed config. Metric names are scoped
// full names ("vm1/guestos.promotions"), so per-VM series stay
// distinguishable in the CSV.
func (c *obsCollector) flush(expID string) error {
	c.mu.Lock()
	runs := c.runs
	c.runs = nil
	c.mu.Unlock()
	var dropped uint64
	for _, r := range runs {
		dropped += r.handle.Tracer.Dropped()
		if c.w == nil {
			continue
		}
		snap := r.handle.Metrics.Snapshot()
		for i := range snap.Values {
			v := &snap.Values[i]
			rec := []string{
				expID, r.label, strconv.FormatUint(r.seed, 10),
				v.FullName(), v.Kind.String(),
				strconv.FormatFloat(v.Value, 'g', -1, 64),
			}
			if v.Kind == obs.KindHistogram {
				rec = append(rec,
					strconv.FormatFloat(v.Sum, 'g', -1, 64),
					strconv.FormatFloat(v.Quantile(0.50), 'g', -1, 64),
					strconv.FormatFloat(v.Quantile(0.99), 'g', -1, 64),
					strconv.FormatFloat(v.Max, 'g', -1, 64))
			} else {
				rec = append(rec, "", "", "", "")
			}
			if err := c.w.Write(rec); err != nil {
				return err
			}
		}
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr,
			"heterobench: %s: event tracer dropped %d events across %d runs (heterobench attaches no event sink; use heterosim -events to capture a stream)\n",
			expID, dropped, len(runs))
	}
	if c.w == nil {
		return nil
	}
	c.w.Flush()
	return c.w.Error()
}

// phaseTable aggregates the epoch phase profile across every collected
// run of one experiment (a rollup over all cells' scoped histograms).
// Returns nil when no run recorded phase data.
func (c *obsCollector) phaseTable(expID string) *metrics.Table {
	c.mu.Lock()
	runs := c.runs
	c.mu.Unlock()
	var merged obs.Snapshot
	for _, r := range runs {
		merged = merged.Merge(r.handle.Metrics.Snapshot())
	}
	if !obs.HasPhaseData(merged) {
		return nil
	}
	return obs.PhaseTable(merged, "epoch phase breakdown: "+expID+" (all cells)")
}

func main() {
	var (
		expID      = flag.String("exp", "all", "experiment id (table1..table6, figure1..figure13) or 'all'")
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		workers    = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		progress   = flag.Bool("progress", false, "report per-simulation progress on stderr")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		format     = flag.String("format", "text", "output format: text, markdown, csv")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		metricsOut = flag.String("metrics", "", "write per-run metrics snapshots (CSV) to `file`")
		profileF   = flag.Bool("profile-epochs", false, "profile epoch phases in every sweep cell and print an aggregate phase breakdown")
		backendF   = flag.String("backend", "analytic", "machine-model backend: analytic, coarse, or replay (needs -replay-trace)")
		recordF    = flag.String("record-trace", "", "record each sweep cell's epoch stream as `prefix`-NNN-label.jsonl")
		replayF    = flag.String("replay-trace", "", "replay a recorded JSONL epoch stream in every cell (selects the replay backend)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "heterobench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "heterobench: -memprofile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	backendHook, closeBackend, err := setupBackend(*backendF, *recordF, *replayF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterobench: %v\n", err)
		os.Exit(2)
	}

	opts := exp.Options{Seed: *seed, Quick: *quick, Workers: *workers, NewBackend: backendHook}
	if *progress {
		opts.Progress = func(done, submitted int, label string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, submitted, label)
		}
	}
	var collector *obsCollector
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: -metrics: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		collector = &obsCollector{w: csv.NewWriter(f)}
		if err := collector.w.Write([]string{
			"experiment", "run", "seed", "metric", "kind",
			"value", "sum", "p50", "p99", "max"}); err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: -metrics: %v\n", err)
			os.Exit(1)
		}
		opts.NewObs = collector.factory
	}
	if *profileF {
		// Profiling needs per-cell observability handles even when no
		// metrics CSV was requested; a writer-less collector provides
		// them (flush then only reports drops and clears).
		if collector == nil {
			collector = &obsCollector{}
			opts.NewObs = collector.factory
		}
		opts.ProfileEpochs = true
	}
	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Registry()
	} else {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "heterobench: unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(ctx, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "heterobench: %s: interrupted\n", e.ID)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "heterobench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			res.Table.RenderMarkdown(os.Stdout)
		case "csv":
			res.Table.RenderCSV(os.Stdout)
		default:
			res.Table.Render(os.Stdout)
		}
		if res.Notes != "" {
			fmt.Println(res.Notes)
		}
		if collector != nil {
			if *profileF {
				if pt := collector.phaseTable(e.ID); pt != nil {
					fmt.Println()
					switch *format {
					case "markdown":
						pt.RenderMarkdown(os.Stdout)
					case "csv":
						pt.RenderCSV(os.Stdout)
					default:
						pt.Render(os.Stdout)
					}
				}
			}
			if err := collector.flush(e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "heterobench: -metrics: %v\n", err)
				os.Exit(1)
			}
		}
		if *format == "text" {
			fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		} else {
			fmt.Println()
			_ = start
		}
	}
	if err := closeBackend(); err != nil {
		fmt.Fprintf(os.Stderr, "heterobench: -record-trace: %v\n", err)
		os.Exit(1)
	}
}

// traceRecording fans one -record-trace prefix out into one JSONL file
// per sweep cell. File creation happens in the NewBackend hook — called
// serially at submission — so the NNN numbering is deterministic for a
// fixed experiment config; the recorder list is mutex-guarded because
// the returned builders run on pool workers.
type traceRecording struct {
	inner  memsim.Builder
	prefix string
	n      int

	mu    sync.Mutex
	files []*os.File
	recs  []*memsim.Recorder
}

func (t *traceRecording) hook(label string, seed uint64) memsim.Builder {
	t.n++
	path := fmt.Sprintf("%s-%03d-%s.jsonl", t.prefix, t.n, sanitizeLabel(label))
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "heterobench: -record-trace: %v\n", err)
		os.Exit(1)
	}
	t.mu.Lock()
	t.files = append(t.files, f)
	t.mu.Unlock()
	return func(m *memsim.Machine, opts ...memsim.Option) memsim.Backend {
		r := memsim.NewRecorder(t.inner(m, opts...), f)
		t.mu.Lock()
		t.recs = append(t.recs, r)
		t.mu.Unlock()
		return r
	}
}

func (t *traceRecording) close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for _, r := range t.recs {
		if err := r.Flush(); err != nil && first == nil {
			first = err
		}
	}
	for _, f := range t.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sanitizeLabel maps a sweep-cell label to a filename fragment.
func sanitizeLabel(label string) string {
	out := []byte(label)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// setupBackend resolves the backend flags into an exp.Options.NewBackend
// hook (nil when the default analytic path needs no per-job hook) plus a
// cleanup that flushes any recording.
func setupBackend(name, record, replay string) (func(label string, seed uint64) memsim.Builder, func() error, error) {
	if record != "" && replay != "" {
		return nil, nil, errors.New("-record-trace and -replay-trace are mutually exclusive")
	}
	noClose := func() error { return nil }
	var build memsim.Builder
	switch {
	case replay != "":
		if name != memsim.BackendAnalytic && name != memsim.BackendReplay {
			return nil, nil, fmt.Errorf("-replay-trace selects the replay backend; -backend %s conflicts", name)
		}
		tr, err := memsim.LoadTraceFile(replay)
		if err != nil {
			return nil, nil, err
		}
		// One shared trace; every built backend replays it from the
		// start with an independent cursor.
		build = tr.Builder()
	default:
		b, err := memsim.BuilderByName(name)
		if err != nil {
			return nil, nil, err
		}
		build = b
	}
	if record != "" {
		rec := &traceRecording{inner: build, prefix: record}
		return rec.hook, rec.close, nil
	}
	if replay == "" && (name == "" || name == memsim.BackendAnalytic) {
		// The default backend needs no hook: core builds analytic when
		// Config.Backend is nil, and a nil hook keeps that path.
		return nil, noClose, nil
	}
	return func(string, uint64) memsim.Builder { return build }, noClose, nil
}
