// Command heterobench regenerates the paper's evaluation artifacts: one
// experiment per table and figure, printed as text tables. Sweeps run
// concurrently on a bounded worker pool; Ctrl-C cancels the batch
// within one simulation epoch per in-flight job.
//
// Usage:
//
//	heterobench -exp figure9            # one experiment
//	heterobench -exp all                # everything, paper order
//	heterobench -exp figure1 -quick     # reduced sweep for smoke runs
//	heterobench -exp all -workers 4     # bound the worker pool
//	heterobench -exp figure9 -progress  # per-simulation progress on stderr
//	heterobench -list                   # enumerate experiment ids
//
// Profiling (see README "Profiling" for the pprof workflow):
//
//	heterobench -exp figure9 -cpuprofile cpu.out   # CPU profile of the run
//	heterobench -exp figure9 -memprofile mem.out   # heap profile at exit
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"heteroos/internal/exp"
)

func main() {
	var (
		expID      = flag.String("exp", "all", "experiment id (table1..table6, figure1..figure13) or 'all'")
		quick      = flag.Bool("quick", false, "run reduced sweeps")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		workers    = flag.Int("workers", 0, "concurrent simulations per sweep (0 = GOMAXPROCS)")
		progress   = flag.Bool("progress", false, "report per-simulation progress on stderr")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		format     = flag.String("format", "text", "output format: text, markdown, csv")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to `file`")
		memprofile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-10s %s\n", e.ID, e.Description)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "heterobench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "heterobench: -memprofile: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := exp.Options{Seed: *seed, Quick: *quick, Workers: *workers}
	if *progress {
		opts.Progress = func(done, submitted int, label string) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s\n", done, submitted, label)
		}
	}
	var todo []exp.Experiment
	if *expID == "all" {
		todo = exp.Registry()
	} else {
		e, ok := exp.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "heterobench: unknown experiment %q; try -list\n", *expID)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(ctx, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "heterobench: %s: interrupted\n", e.ID)
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "heterobench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			res.Table.RenderMarkdown(os.Stdout)
		case "csv":
			res.Table.RenderCSV(os.Stdout)
		default:
			res.Table.Render(os.Stdout)
		}
		if res.Notes != "" {
			fmt.Println(res.Notes)
		}
		if *format == "text" {
			fmt.Printf("[%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		} else {
			fmt.Println()
			_ = start
		}
	}
}
