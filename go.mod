module heteroos

go 1.23
