// Write-aware migration on NVM: the paper's Section 4.3 extension.
// NVM-class SlowMem punishes stores 2-4x more than loads, so two pages
// with identical reference rates are not equally worth promoting — the
// store-heavy one earns far more from FastMem. This demo runs a
// store-dominated workload over an NVM-like SlowMem under plain
// HeteroOS-coordinated and under the write-aware extension
// (HeteroOS-coordinated-NVM), which also scans the write (PAGE_RW) bit
// and weights migration ranking by store intensity.
//
//	go run ./examples/nvmwriteaware
package main

import (
	"fmt"
	"log"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

func run(mode policy.Mode) *core.VMResult {
	// Half the working set writes almost exclusively; the other half
	// only reads. Both halves are referenced equally often.
	w := workload.NewWriteHeavy(workload.Config{Seed: 2}, 512*workload.MiB)
	fast := workload.Config{}.Pages(192 * workload.MiB)
	slow := workload.Config{}.Pages(2 * workload.GiB)
	res, _, err := core.RunSingle(core.Config{
		FastFrames: fast + slow + 4096,
		SlowFrames: slow + 4096,
		// SlowMem at L:5,B:9 carries the NVM-class 2x store penalty.
		SlowSpec: memsim.SlowTierSpec(),
		Seed:     2,
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fast, SlowPages: slow,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	spec := memsim.SlowTierSpec()
	fmt.Printf("SlowMem: load %.0f ns, store %.0f ns (%.1fx asymmetry)\n\n",
		spec.LoadLatencyNs, spec.StoreLatencyNs, spec.StoreLatencyNs/spec.LoadLatencyNs)

	plain := run(policy.HeteroOSCoordinated())
	aware := run(policy.HeteroOSCoordinatedNVM())

	fmt.Printf("%-28s %10s %12s %12s %10s\n", "mode", "time (s)", "SlowMem (s)", "promotions", "demotions")
	fmt.Printf("%-28s %10.2f %12.2f %12d %10d\n", "HeteroOS-coordinated",
		plain.RuntimeSeconds(), plain.MemTime[memsim.SlowMem].Seconds(),
		plain.Promotions, plain.Demotions)
	fmt.Printf("%-28s %10.2f %12.2f %12d %10d\n", "HeteroOS-coordinated-NVM",
		aware.RuntimeSeconds(), aware.MemTime[memsim.SlowMem].Seconds(),
		aware.Promotions, aware.Demotions)
	fmt.Printf("\nwrite-aware gain: %.1f%%\n",
		(plain.RuntimeSeconds()/aware.RuntimeSeconds()-1)*100)
	fmt.Println("\nThe extension detects the writers through their PAGE_RW bits and")
	fmt.Println("swaps them into FastMem ahead of equally-referenced readers —")
	fmt.Println("a swap only two live pages' *store intensity gap* can justify.")
}
