// I/O cache placement: the paper's Observation 3 — on-demand FastMem
// allocation matters for OS subsystems, not just the heap. This demo
// runs the storage-intensive LevelDB model under heap-only
// prioritisation and under heap+IO+slab prioritisation, then prints the
// page-type census showing where LevelDB's pages actually live.
//
//	go run ./examples/iocache
package main

import (
	"fmt"
	"log"

	"heteroos/internal/core"
	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

func run(mode policy.Mode) *core.VMResult {
	w, err := workload.ByName("LevelDB", workload.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	slow := workload.Config{}.Pages(8 * workload.GiB)
	fast := slow / 4
	res, _, err := core.RunSingle(core.Config{
		FastFrames: fast + slow + 8192,
		SlowFrames: slow + 8192,
		Seed:       3,
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fast, SlowPages: slow,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := run(policy.SlowMemOnly())
	heap := run(policy.HeapOD())
	io := run(policy.HeapIOSlabOD())

	fmt.Println("LevelDB (SQLite bench, 1M keys) — FastMem at 1/4 of SlowMem")
	fmt.Printf("  SlowMem-only:     %6.2f s\n", base.RuntimeSeconds())
	fmt.Printf("  Heap-OD:          %6.2f s  (+%.0f%%)\n",
		heap.RuntimeSeconds(), gain(base, heap))
	fmt.Printf("  Heap-IO-Slab-OD:  %6.2f s  (+%.0f%%)\n",
		io.RuntimeSeconds(), gain(base, io))
	fmt.Println()
	fmt.Println("Why I/O prioritisation matters — LevelDB's page population:")
	census := io.FinalCensus
	var total uint64
	for _, k := range guestos.AllocatableKinds {
		total += census[k]
	}
	for _, k := range guestos.AllocatableKinds {
		if census[k] == 0 {
			continue
		}
		fmt.Printf("  %-18s %6.1f%%  (%d pages)\n",
			k.String(), 100*float64(census[k])/float64(total), census[k])
	}
	fmt.Println()
	fmt.Println("The cache population is the same either way; what changes is the")
	fmt.Println("speed of the memory every cached read flows through:")
	fmt.Printf("  SlowMem stall: Heap-OD=%.2fs vs Heap-IO-Slab-OD=%.2fs\n",
		heap.MemTime[memsim.SlowMem].Seconds(), io.MemTime[memsim.SlowMem].Seconds())
}

func gain(base, v *core.VMResult) float64 {
	return (base.RuntimeSeconds()/v.RuntimeSeconds() - 1) * 100
}
