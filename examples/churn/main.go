// Datacenter churn: a scripted day-in-the-life of one machine. Two
// guests boot at epoch 0; a third arrives mid-run, a surge triples one
// VM's demand, VMs depart on schedule and a late writeheavy tenant
// takes over the freed memory. The demo builds the scenario with the
// fluent API (the same script ships as the bundled churn.json), runs
// it, and prints the per-VM outcomes plus the sampled timeline —
// showing DRF shares rebalancing as membership changes and every
// departed VM's frames returning to the pool.
//
//	go run ./examples/churn
package main

import (
	"context"
	"log"
	"os"

	"heteroos/internal/scenario"
)

func main() {
	sc := scenario.New("churn-example", 42).
		WithMachine(8192, 16384).
		WithShare("drf").
		WithMaxEpochs(96)

	// Two long-lived tenants from epoch 0.
	sc.StartVM(scenario.VMDesc{
		ID: 1, App: "memlat", Mode: "HeteroOS-coordinated",
		FastPages: 2048, SlowPages: 4096,
	})
	sc.StartVM(scenario.VMDesc{
		ID: 2, App: "stream", Mode: "HeteroOS-coordinated",
		FastPages: 2048, SlowPages: 4096,
	})

	// Mid-run arrivals, a demand surge, and staggered departures.
	sc.BootAt(8, scenario.VMDesc{
		ID: 3, App: "memlat", Mode: "HeteroOS-LRU",
		FastPages: 2048, SlowPages: 4096,
	})
	sc.SurgeAt(10, 2, 6, 3)
	sc.ShutdownAt(14, 1)
	sc.BootAt(16, scenario.VMDesc{
		ID: 4, App: "writeheavy", Mode: "VMM-exclusive",
		FastPages: 2048, SlowPages: 4096,
	})
	sc.ShutdownAt(26, 2)
	sc.ShutdownAt(32, 3)
	sc.ShutdownAt(56, 4)

	r, err := sc.Run(context.Background(), nil)
	if err != nil {
		log.Fatal(err)
	}
	r.Table().Render(os.Stdout)
	os.Stdout.WriteString("\n")
	r.TimelineTable().Render(os.Stdout)
}
