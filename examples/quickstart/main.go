// Quickstart: boot one guest VM on a two-tier machine, run a workload
// under the full HeteroOS-coordinated mode, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

func main() {
	// The Redis workload model: 4M ops at 80% GET against a 3 GiB value
	// heap, with skbuff network-buffer churn (Table 2).
	w, err := workload.ByName("Redis", workload.Config{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// A VM with 2 GiB of FastMem against 8 GiB of SlowMem (the paper's
	// L:5,B:9 default SlowMem), managed by HeteroOS-coordinated:
	// heterogeneity-aware guest placement + HeteroOS-LRU + OS-guided
	// VMM hotness tracking.
	slow := workload.Config{}.Pages(8 * workload.GiB)
	fast := workload.Config{}.Pages(2 * workload.GiB)
	cfg := core.Config{
		FastFrames: fast + slow + 8192, // machine capacity
		SlowFrames: slow + 8192,
		Seed:       42,
		VMs: []core.VMConfig{{
			ID:        1,
			Mode:      policy.HeteroOSCoordinated(),
			Workload:  w,
			FastPages: fast,
			SlowPages: slow,
		}},
	}

	res, _, err := core.RunSingle(cfg)
	if err != nil {
		log.Fatal(err)
	}

	prof := w.Profile()
	fmt.Printf("%s finished in %.2f simulated seconds (%.0f %s)\n",
		prof.Name, res.RuntimeSeconds(), res.Throughput(prof.OpsPerEpoch), prof.Metric)
	fmt.Printf("  FastMem misses: %d   SlowMem misses: %d\n",
		res.Misses[memsim.FastMem], res.Misses[memsim.SlowMem])
	fmt.Printf("  FastMem allocation miss ratio: %.3f\n", res.MissRatio())
	fmt.Printf("  demotions: %d   promotions: %d   page faults: %d\n",
		res.Demotions, res.Promotions, res.Faults)

	// Compare against the naive all-SlowMem baseline.
	w2, _ := workload.ByName("Redis", workload.Config{Seed: 42})
	cfg.VMs[0].Mode = policy.SlowMemOnly()
	cfg.VMs[0].Workload = w2
	base, _, err := core.RunSingle(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SlowMem-only baseline: %.2f s  ->  HeteroOS gains %.0f%%\n",
		base.RuntimeSeconds(),
		(base.RuntimeSeconds()/res.RuntimeSeconds()-1)*100)
}
