// Multi-VM sharing: two guests — a GraphChi VM and a memory-hungry
// Metis VM — contend for one machine's FastMem and SlowMem. The demo
// runs the pair under single-resource max-min and under weighted DRF,
// showing how DRF's dominant-share accounting protects the smaller VM
// (the paper's Figure 13 scenario).
//
//	go run ./examples/multivm
package main

import (
	"fmt"
	"log"

	"heteroos/internal/core"
	"heteroos/internal/policy"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

func gib(n int64) uint64 { return workload.Config{}.Pages(n * workload.GiB) }

func buildVMs(seed uint64) []core.VMConfig {
	graphchi, err := workload.ByName("GraphChi", workload.Config{Seed: seed + 1})
	if err != nil {
		log.Fatal(err)
	}
	metis, err := workload.ByName("Metis", workload.Config{Seed: seed + 2})
	if err != nil {
		log.Fatal(err)
	}
	return []core.VMConfig{
		{
			// GraphChi VM: 1 GiB FastMem reserved, 3 GiB SlowMem reserved.
			ID: 1, Mode: policy.HeteroOSCoordinated(), Workload: graphchi,
			FastPages: gib(1), SlowPages: gib(6),
			BootFastPages: gib(1), BootSlowPages: gib(3),
			ReservedFastPages: gib(1), ReservedSlowPages: gib(3),
		},
		{
			// Metis VM: 3 GiB FastMem reserved, 1 GiB SlowMem reserved —
			// it will try to balloon far beyond its SlowMem share.
			ID: 2, Mode: policy.HeteroOSCoordinated(), Workload: metis,
			FastPages: gib(3), SlowPages: gib(6),
			BootFastPages: gib(3), BootSlowPages: gib(1),
			ReservedFastPages: gib(3), ReservedSlowPages: gib(1),
		},
	}
}

func runPair(share core.ShareKind, seed uint64) [2]*core.VMResult {
	sys, err := core.NewSystem(core.Config{
		// 4 GiB FastMem + 6 GiB SlowMem: less than the two footprints
		// combined, so the share policy decides who swaps.
		FastFrames: gib(4), SlowFrames: gib(6),
		Share: share, Seed: seed,
		VMs: buildVMs(seed),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	var out [2]*core.VMResult
	for i := 0; i < 2; i++ {
		r, ok := sys.VMResultByID(vmm.VMID(i + 1))
		if !ok {
			log.Fatalf("missing VM %d result", i+1)
		}
		out[i] = r
	}
	return out
}

func main() {
	maxmin := runPair(core.ShareMaxMin, 11)
	drf := runPair(core.ShareDRF, 11)

	names := []string{"GraphChi VM", "Metis VM   "}
	fmt.Println("Two VMs sharing 4GiB FastMem + 6GiB SlowMem")
	fmt.Println()
	fmt.Printf("%-12s %14s %14s %10s\n", "VM", "max-min (s)", "DRF (s)", "DRF vs mm")
	for i, n := range names {
		mm := maxmin[i].RuntimeSeconds()
		d := drf[i].RuntimeSeconds()
		fmt.Printf("%-12s %14.2f %14.2f %9.1f%%\n", n, mm, d, (mm/d-1)*100)
	}
	fmt.Println()
	fmt.Printf("swap activity (max-min): graphchi out=%d in=%d | metis out=%d in=%d\n",
		maxmin[0].SwapOuts, maxmin[0].SwapIns, maxmin[1].SwapOuts, maxmin[1].SwapIns)
	fmt.Printf("swap activity (DRF):     graphchi out=%d in=%d | metis out=%d in=%d\n",
		drf[0].SwapOuts, drf[0].SwapIns, drf[1].SwapOuts, drf[1].SwapIns)
}
