// Policy sweep: run one application across every management mode and
// several FastMem capacity ratios, printing a Figure-9-style gains
// table. Demonstrates the batch-first driving pattern: all sweep cells
// go to internal/runner as one job slice, execute concurrently on a
// bounded worker pool, and come back in input order.
//
//	go run ./examples/policysweep            # GraphChi
//	go run ./examples/policysweep X-Stream   # any Table 2 app
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"heteroos/internal/core"
	"heteroos/internal/metrics"
	"heteroos/internal/policy"
	"heteroos/internal/runner"
	"heteroos/internal/workload"
)

// job builds one sweep cell: app under mode with fastPages of FastMem.
func job(app string, mode policy.Mode, fastPages uint64) runner.Job {
	w, err := workload.ByName(app, workload.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	slow := workload.Config{}.Pages(8 * workload.GiB)
	return runner.Job{
		Label: fmt.Sprintf("%s/%s/fast=%d", app, mode.Name, fastPages),
		Cfg: core.Config{
			FastFrames: fastPages + slow + 8192,
			SlowFrames: slow + 8192,
			Seed:       7,
			VMs: []core.VMConfig{{
				ID: 1, Mode: mode, Workload: w,
				FastPages: fastPages, SlowPages: slow,
			}},
		},
	}
}

func main() {
	app := "GraphChi"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	slow := workload.Config{}.Pages(8 * workload.GiB)
	modes := []policy.Mode{
		policy.HeapOD(), policy.HeapIOSlabOD(), policy.HeteroOSLRU(),
		policy.VMMExclusive(), policy.HeteroOSCoordinated(),
	}
	dens := []uint64{2, 4, 8}

	// One job slice: the SlowMem-only baseline first, then every
	// ratio × mode cell. Results come back at the same indices.
	jobs := []runner.Job{job(app, policy.SlowMemOnly(), 0)}
	for _, den := range dens {
		for _, m := range modes {
			jobs = append(jobs, job(app, m, slow/den))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	results, err := runner.Run(ctx, jobs, runner.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("%s: %v", r.Label, r.Err)
		}
	}

	base := results[0].Res
	fmt.Printf("%s: SlowMem-only baseline %.2f s\n\n", app, base.RuntimeSeconds())

	header := []string{"Ratio"}
	for _, m := range modes {
		header = append(header, m.Name)
	}
	t := metrics.NewTable(fmt.Sprintf("%s gains (%%) vs SlowMem-only", app), header...)
	next := 1
	for _, den := range dens {
		row := []interface{}{fmt.Sprintf("1/%d", den)}
		for range modes {
			r := results[next].Res
			next++
			row = append(row, metrics.GainPercent(base.RuntimeSeconds(), r.RuntimeSeconds()))
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}
