// Policy sweep: run one application across every management mode and
// several FastMem capacity ratios, printing a Figure-9-style gains
// table. Demonstrates how to drive systematic comparisons through the
// public API.
//
//	go run ./examples/policysweep            # GraphChi
//	go run ./examples/policysweep X-Stream   # any Table 2 app
package main

import (
	"fmt"
	"log"
	"os"

	"heteroos/internal/core"
	"heteroos/internal/metrics"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

func run(app string, mode policy.Mode, fastPages uint64) *core.VMResult {
	w, err := workload.ByName(app, workload.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	slow := workload.Config{}.Pages(8 * workload.GiB)
	res, _, err := core.RunSingle(core.Config{
		FastFrames: fastPages + slow + 8192,
		SlowFrames: slow + 8192,
		Seed:       7,
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fastPages, SlowPages: slow,
		}},
	})
	if err != nil {
		log.Fatalf("%s/%s: %v", app, mode.Name, err)
	}
	return res
}

func main() {
	app := "GraphChi"
	if len(os.Args) > 1 {
		app = os.Args[1]
	}
	slow := workload.Config{}.Pages(8 * workload.GiB)
	modes := []policy.Mode{
		policy.HeapOD(), policy.HeapIOSlabOD(), policy.HeteroOSLRU(),
		policy.VMMExclusive(), policy.HeteroOSCoordinated(),
	}

	base := run(app, policy.SlowMemOnly(), 0)
	fmt.Printf("%s: SlowMem-only baseline %.2f s\n\n", app, base.RuntimeSeconds())

	header := []string{"Ratio"}
	for _, m := range modes {
		header = append(header, m.Name)
	}
	t := metrics.NewTable(fmt.Sprintf("%s gains (%%) vs SlowMem-only", app), header...)
	for _, den := range []uint64{2, 4, 8} {
		row := []interface{}{fmt.Sprintf("1/%d", den)}
		for _, m := range modes {
			r := run(app, m, slow/den)
			row = append(row, metrics.GainPercent(base.RuntimeSeconds(), r.RuntimeSeconds()))
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}
