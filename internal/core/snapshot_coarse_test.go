package core

import (
	"bytes"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/snapshot"
	"heteroos/internal/workload"
)

// TestSnapshotVMMExclusiveCoarse pins the checkpoint/restore contract
// for the combination outside TestSnapshotRoundTripParity's coverage:
// a VMM-exclusive VM priced by the coarse backend. After restore, ten
// lockstep epochs must keep the full serialized state byte-identical;
// on divergence the test names the first checkpoint section to differ.
func TestSnapshotVMMExclusiveCoarse(t *testing.T) {
	mk := func() *System {
		w, err := workload.ByName("writeheavy", workload.Config{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := NewSystem(Config{
			FastFrames: 8192, SlowFrames: 32768,
			Seed: 7, MaxEpochs: 4096,
			Backend: memsim.CoarseBackend,
			VMs: []VMConfig{{
				ID: 4, Mode: policy.VMMExclusive(), Workload: w,
				FastPages: 2048, SlowPages: 8192,
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := mk()
	for i := 0; i < 20; i++ {
		if _, err := sys.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	snapBytes := checkpointBytes(t, sys)
	rd, err := snapshot.Open(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSystem(rd, mk().Cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := sys.StepEpoch(); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.StepEpoch(); err != nil {
			t.Fatal(err)
		}
		a, b := checkpointBytes(t, sys), checkpointBytes(t, restored)
		if bytes.Equal(a, b) {
			continue
		}
		ra, _ := snapshot.Open(bytes.NewReader(a))
		rb, _ := snapshot.Open(bytes.NewReader(b))
		for _, name := range ra.Sections() {
			ba, _ := ra.Raw(name)
			bb, _ := rb.Raw(name)
			if !bytes.Equal(ba, bb) {
				off := 0
				for off < len(ba) && off < len(bb) && ba[off] == bb[off] {
					off++
				}
				t.Errorf("epoch +%d: section %q differs at offset %d (%d vs %d bytes)",
					i+1, name, off, len(ba), len(bb))
			}
		}
		t.FailNow()
	}
}
