// Cross-host live migration: a VM departs one System as a serialized
// VMImage and re-materializes on another, carrying its full mutable
// state — guest OS structures, page heat, workload cursor, accumulated
// results — across the move. The mechanism mirrors checkpoint/restore
// (reconstruct a fresh boot, then overlay serialized state), with one
// addition: the image's machine-frame bindings are remapped onto frames
// adopted from the destination host, tier-for-tier, so the guest's
// physical-page layout (and with it the heat profile) survives even
// though the backing MFNs are necessarily different.
package core

import (
	"bytes"
	"fmt"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/sim"
	"heteroos/internal/snapshot"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// VMImage is one VM's serialized migratable state: everything a
// destination host needs to continue the guest bit-for-bit, minus the
// things only the fleet layer knows (which workload type to construct,
// what spans to reserve — those travel in the VMConfig the caller
// presents to ImmigrateVM).
//
// Wire format: a snapshot container (magic, named length-prefixed
// sections, CRC64 trailer) with sections
//
//	meta     — VM id, per-tier frame footprint, guest span
//	inst     — core.VMInstance scheduler state (clock, scan debt,
//	           budgets, fault flags, Res, TraceLog, scanner/interval)
//	vm       — vmm.VM grant counters and fault flags
//	p2m      — backed pages in ascending PFN order: (pfn, mfn, tier);
//	           the source-host MFNs recorded here are what ImmigrateVM
//	           rebinds onto destination frames
//	guestos  — the guest OS's complete mutable state
//	workload — the workload cursor (workload.Snapshotter)
type VMImage struct {
	// ID is the migrating VM's identity, preserved across hosts.
	ID vmm.VMID
	// Pages is the per-tier machine-frame footprint the VM carries; the
	// destination must adopt exactly this many frames per tier.
	Pages [memsim.NumTiers]uint64
	// Data is the snapshot container described above.
	Data []byte
}

// Frames reports the image's total machine-frame footprint.
func (img *VMImage) Frames() uint64 {
	var n uint64
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		n += img.Pages[t]
	}
	return n
}

// EmigrateVM captures a live VM into a VMImage and tears it down
// locally: balloon unwound, P2M cleared, every machine frame returned
// to this host's VMM pool, the VM deregistered from the share policy.
// The ID is retired into Departed as a migrated-out stub (zero result —
// the real, still-accumulating result travels in the image), so results
// stay unambiguous and the ID can only return via ImmigrateVM.
//
// The VM must still be running (shut finished VMs down instead — their
// result is final and moving them buys nothing) and its workload must
// implement workload.Snapshotter. Call only between epochs.
func (s *System) EmigrateVM(id vmm.VMID) (*VMImage, error) {
	inst, ok := s.instByID(id)
	if !ok {
		return nil, fmt.Errorf("core: EmigrateVM: no live VM %d", id)
	}
	if inst.Done {
		return nil, fmt.Errorf("core: EmigrateVM: VM %d has finished; shut it down instead", id)
	}
	ws, ok := inst.W.(workload.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: EmigrateVM: workload %T on VM %d does not support migration", inst.W, id)
	}

	img := &VMImage{ID: id}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		img.Pages[t] = inst.VM.Granted(t)
	}

	var buf bytes.Buffer
	sw, err := snapshot.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	if err := sw.Section("meta", func(e *snapshot.Encoder) {
		e.U32(uint32(id))
		for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
			e.U64(img.Pages[t])
		}
		e.U64(inst.OS.NumPFNs())
	}); err != nil {
		return nil, err
	}
	var sectionErr error
	if err := sw.Section("inst", func(e *snapshot.Encoder) {
		e.I64(int64(inst.Clock.Now()))
		e.I64(int64(inst.scanDebt))
		e.Int(inst.moveBudget)
		e.Int(inst.throttledPasses)
		e.Bool(inst.stallMigration)
		e.Int(inst.stallSkips)
		if err := e.JSON(&inst.Res); err != nil && sectionErr == nil {
			sectionErr = err
		}
		if err := e.JSON(inst.TraceLog); err != nil && sectionErr == nil {
			sectionErr = err
		}
		e.Bool(inst.scanner != nil)
		if inst.scanner != nil {
			inst.scanner.SnapshotState(e)
		}
		e.Bool(inst.interval != nil)
		if inst.interval != nil {
			inst.interval.SnapshotState(e)
		}
	}); err != nil {
		return nil, err
	}
	if err := sw.Section("vm", func(e *snapshot.Encoder) {
		inst.VM.SnapshotState(e)
	}); err != nil {
		return nil, err
	}
	if err := sw.Section("p2m", func(e *snapshot.Encoder) {
		var n uint64
		inst.OS.ForEachBacked(func(guestos.PFN, memsim.MFN) { n++ })
		e.U64(n)
		inst.OS.ForEachBacked(func(pfn guestos.PFN, mfn memsim.MFN) {
			e.U64(uint64(pfn))
			e.U64(uint64(mfn))
			e.U8(uint8(s.Machine.TierOf(mfn)))
		})
	}); err != nil {
		return nil, err
	}
	if err := sw.Section("guestos", func(e *snapshot.Encoder) {
		inst.OS.SnapshotState(e)
	}); err != nil {
		return nil, err
	}
	if err := sw.Section("workload", func(e *snapshot.Encoder) {
		ws.SnapshotState(e)
	}); err != nil {
		return nil, err
	}
	if sectionErr != nil {
		return nil, fmt.Errorf("core: EmigrateVM VM %d: %w", id, sectionErr)
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	img.Data = buf.Bytes()

	// Local teardown, mirroring ShutdownVM — except the result is NOT
	// finalised (the VM is still running; its result continues on the
	// destination) and the Departed stub carries a zero result so the
	// per-host sums never double-count a migrant.
	released := inst.OS.Teardown()
	if err := inst.OS.P2MEmpty(); err != nil {
		return nil, fmt.Errorf("core: EmigrateVM VM %d: %w", id, err)
	}
	if err := s.VMM.DestroyVM(id); err != nil {
		return nil, fmt.Errorf("core: EmigrateVM VM %d: %w", id, err)
	}
	for i, cand := range s.VMs {
		if cand == inst {
			s.VMs = append(s.VMs[:i], s.VMs[i+1:]...)
			break
		}
	}
	stub := &VMInstance{ID: id, Done: true, MigratedOut: true}
	stub.Clock.Restore(inst.Clock.Now())
	s.Departed = append(s.Departed, stub)
	if s.sysScope != nil {
		s.sysScope.Emit(obs.EvVMMigrateOut, obs.DirNone, obs.TierNone, 0, released, uint64(id), 0)
	}
	return img, nil
}

// ImmigrateVM re-materializes a migrated VM on this host. vc must
// describe the VM exactly as its original boot did (same ID, mode,
// spans, reservations) with a freshly constructed workload of the same
// type and seed — the fleet layer reconstructs this from its own VM
// records, just as checkpoint front-ends reconstruct Config. The guest
// is booted silently (no observability, like RestoreSystem's reboot),
// its transient boot footprint dropped, the image's per-tier frame
// counts adopted from this host's pools, and the serialized state
// overlaid with every guest page rebound old-MFN→new-MFN. The VM joins
// the lockstep from the next epoch with clock, heat profile, workload
// cursor, and accumulated result intact.
//
// A VM that previously migrated OUT of this host may migrate back in
// (the migrated-out stub is un-retired); an ID retired by a real
// shutdown stays retired.
func (s *System) ImmigrateVM(vc VMConfig, img *VMImage) (inst *VMInstance, err error) {
	// The boot-overlay path executes guest code paths that can panic via
	// *guestos.GuestPanic on a genuinely overloaded host; contain those
	// like stepVM does rather than killing the caller's round loop.
	defer func() {
		if r := recover(); r != nil {
			gp, ok := r.(*guestos.GuestPanic)
			if !ok {
				panic(r)
			}
			inst, err = nil, fmt.Errorf("core: ImmigrateVM VM %d: %w", img.ID, gp)
		}
	}()
	if vc.ID != img.ID {
		return nil, fmt.Errorf("core: ImmigrateVM: config names VM %d, image carries VM %d", vc.ID, img.ID)
	}
	for _, live := range s.VMs {
		if live.ID == vc.ID {
			return nil, fmt.Errorf("core: ImmigrateVM: VM %d already running", vc.ID)
		}
	}
	for i, stub := range s.Departed {
		if stub.ID != vc.ID {
			continue
		}
		if !stub.MigratedOut {
			return nil, fmt.Errorf("core: ImmigrateVM: VM id %d already used by a departed VM", vc.ID)
		}
		s.Departed = append(s.Departed[:i], s.Departed[i+1:]...)
		break
	}
	fast, slow := vc.effectiveSpans()
	if fast+slow == 0 {
		return nil, fmt.Errorf("core: ImmigrateVM: VM %d has a zero memory span", vc.ID)
	}
	if fast > s.Cfg.FastFrames || slow > s.Cfg.SlowFrames {
		return nil, fmt.Errorf("core: ImmigrateVM: VM %d span (%d fast, %d slow) exceeds machine (%d, %d)",
			vc.ID, fast, slow, s.Cfg.FastFrames, s.Cfg.SlowFrames)
	}
	if vc.Workload == nil {
		return nil, fmt.Errorf("core: ImmigrateVM: VM %d has no workload", vc.ID)
	}
	ws, ok := vc.Workload.(workload.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: ImmigrateVM: workload %T on VM %d does not support migration", vc.Workload, vc.ID)
	}

	r, err := snapshot.Open(bytes.NewReader(img.Data))
	if err != nil {
		return nil, fmt.Errorf("core: ImmigrateVM VM %d: %w", vc.ID, err)
	}

	// Boot silently: the reconstruction boot replays allocation and
	// workload-init activity that already happened on the source host,
	// none of which may reach this host's event sinks. Observability is
	// attached after the overlay.
	h := s.Cfg.Obs
	s.Cfg.Obs = nil
	inst, err = s.bootVM(vc)
	s.Cfg.Obs = h
	if err != nil {
		return nil, fmt.Errorf("core: ImmigrateVM VM %d: rebooting: %w", vc.ID, err)
	}

	// Drop the transient boot footprint; the image's frames replace it.
	inst.OS.Teardown()
	if err := inst.OS.P2MEmpty(); err != nil {
		return nil, fmt.Errorf("core: ImmigrateVM VM %d: %w", vc.ID, err)
	}

	// Adopt destination frames matching the image's per-tier footprint.
	// All-or-nothing: on shortfall the half-built guest is destroyed and
	// the host is left exactly as before the call.
	var adopted [memsim.NumTiers][]memsim.MFN
	abort := func(cause error) (*VMInstance, error) {
		for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
			if len(adopted[t]) > 0 {
				inst.VM.Release(adopted[t])
			}
		}
		if derr := s.VMM.DestroyVM(vc.ID); derr != nil {
			return nil, fmt.Errorf("core: ImmigrateVM VM %d: %w (and teardown failed: %v)", vc.ID, cause, derr)
		}
		return nil, fmt.Errorf("core: ImmigrateVM VM %d: %w", vc.ID, cause)
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		mfns, aerr := inst.VM.AdoptFrames(t, img.Pages[t])
		if aerr != nil {
			return abort(aerr)
		}
		adopted[t] = mfns
	}

	// Rebind the image's source-host MFNs onto the adopted frames, in
	// ascending PFN order per tier so the binding is deterministic.
	d, err := r.Section("p2m")
	if err != nil {
		return abort(err)
	}
	n := d.U64()
	var cursor [memsim.NumTiers]uint64
	mfnMap := make(map[memsim.MFN]memsim.MFN, n)
	for i := uint64(0); i < n; i++ {
		d.U64() // pfn: implied by the guestos section, recorded for tooling
		old := memsim.MFN(d.U64())
		t := memsim.Tier(d.U8())
		if t >= memsim.NumTiers || cursor[t] >= uint64(len(adopted[t])) {
			return abort(fmt.Errorf("p2m entry %d: tier %d frame count exceeds image footprint", i, t))
		}
		mfnMap[old] = adopted[t][cursor[t]]
		cursor[t]++
	}
	if err := d.Err(); err != nil {
		return abort(err)
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if cursor[t] != uint64(len(adopted[t])) {
			return abort(fmt.Errorf("image carries %d backed %v pages but grants %d frames", cursor[t], t, len(adopted[t])))
		}
	}
	mapMFN := func(m memsim.MFN) memsim.MFN {
		if nm, ok := mfnMap[m]; ok {
			return nm
		}
		return m
	}

	// Overlay, mirroring EmigrateVM's section order exactly.
	if d, err = r.Section("inst"); err != nil {
		return abort(err)
	}
	inst.Clock.Restore(sim.Time(d.I64()))
	inst.scanDebt = sim.Duration(d.I64())
	inst.moveBudget = d.Int()
	inst.throttledPasses = d.Int()
	inst.stallMigration = d.Bool()
	inst.stallSkips = d.Int()
	inst.Res = VMResult{}
	if err := d.JSON(&inst.Res); err != nil {
		return abort(err)
	}
	inst.TraceLog = nil
	if err := d.JSON(&inst.TraceLog); err != nil {
		return abort(err)
	}
	if had := d.Bool(); had != (inst.scanner != nil) {
		return abort(fmt.Errorf("image scanner presence %v != booted instance %v (mode mismatch?)", had, inst.scanner != nil))
	}
	if inst.scanner != nil {
		if err := inst.scanner.RestoreState(d); err != nil {
			return abort(err)
		}
	}
	if had := d.Bool(); had != (inst.interval != nil) {
		return abort(fmt.Errorf("image adaptive-interval presence %v != booted instance %v (mode mismatch?)", had, inst.interval != nil))
	}
	if inst.interval != nil {
		if err := inst.interval.RestoreState(d); err != nil {
			return abort(err)
		}
	}
	if err := d.Err(); err != nil {
		return abort(err)
	}

	if d, err = r.Section("vm"); err != nil {
		return abort(err)
	}
	if err := inst.VM.RestoreState(d); err != nil {
		return abort(err)
	}

	if d, err = r.Section("guestos"); err != nil {
		return abort(err)
	}
	if err := inst.OS.RestoreStateMapped(d, mapMFN); err != nil {
		return abort(err)
	}
	if inst.scanner != nil {
		// The heat index is a pure function of guest page state; rebuild
		// it over the restored, rebound store.
		inst.OS.SetPageIndexer(vmm.NewHeatIndex(inst.scanner, s.Machine.TierOf))
	}

	if d, err = r.Section("workload"); err != nil {
		return abort(err)
	}
	if err := ws.RestoreState(d, inst.OS); err != nil {
		return abort(err)
	}

	s.VMs = append(s.VMs, inst)
	if h != nil {
		scope := h.Scope(int(inst.ID), inst.simNow)
		inst.obsScope = scope
		inst.probes = newCoreProbes(scope)
		inst.OS.AttachObs(scope)
		if inst.scanner != nil {
			inst.scanner.AttachObs(scope)
		}
		if inst.migrator != nil {
			inst.migrator.AttachObs(scope)
		}
		if s.Cfg.ProfileEpochs {
			inst.phases = obs.NewPhaseProfiler(scope.Registry())
			if inst.scanner != nil {
				inst.scanner.AttachPhases(inst.phases)
			}
		}
	}
	if s.sysScope != nil {
		s.sysScope.Emit(obs.EvVMMigrateIn, obs.DirNone, obs.TierNone, 0, img.Frames(), uint64(vc.ID), 0)
	}
	return inst, nil
}

// HeatIndexSummary reports the VM's heat-bucket fingerprint, or false
// when no heat index is attached (modes without migration). Fleet tests
// compare pre/post-migration summaries to assert the profile survived.
func (inst *VMInstance) HeatIndexSummary() (vmm.HeatSummary, bool) {
	if inst.scanner == nil {
		return vmm.HeatSummary{}, false
	}
	if ix := inst.scanner.Index(); ix != nil {
		return ix.Summary(), true
	}
	return vmm.HeatSummary{}, false
}
