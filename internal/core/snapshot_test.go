package core

import (
	"bytes"
	"reflect"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/snapshot"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// snapshotConfig builds a multi-VM DRF system with enough machinery
// enabled (scanner, adaptive interval, trace log) to exercise every
// checkpoint section.
func snapshotConfig(t *testing.T, backend memsim.Builder) Config {
	t.Helper()
	return Config{
		FastFrames: 16384, SlowFrames: 32768,
		Share: ShareDRF, Seed: 42, MaxEpochs: 4096, Trace: true,
		Backend: backend,
		VMs: []VMConfig{
			lifecycleVM(t, 1, 42),
			lifecycleVM(t, 2, 43),
		},
	}
}

// checkpointBytes serializes sys and returns the raw snapshot.
func checkpointBytes(t *testing.T, sys *System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf, []byte("test-meta")); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestSnapshotRoundTripParity is the gold-standard determinism check:
// run a system to epoch k and checkpoint; continue it to epoch k+m;
// restore a second system from the checkpoint and step it m epochs.
// Both must agree on every VMResult and — stronger — a second
// checkpoint of each must be byte-identical, proving the entire
// mutable state (not just the outputs) reconverged.
func TestSnapshotRoundTripParity(t *testing.T) {
	for _, backend := range []struct {
		name  string
		build memsim.Builder
	}{
		{"analytic", nil},
		{"coarse", memsim.CoarseBackend},
	} {
		t.Run(backend.name, func(t *testing.T) {
			sys, err := NewSystem(snapshotConfig(t, backend.build))
			if err != nil {
				t.Fatal(err)
			}
			const k, m = 6, 5
			for i := 0; i < k; i++ {
				if _, err := sys.StepEpoch(); err != nil {
					t.Fatalf("epoch %d: %v", i, err)
				}
			}
			// Mid-run churn so the checkpoint carries a departed VM and a
			// mid-run boot (clock offset from the lockstep founders).
			if _, err := sys.ShutdownVM(2); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.BootVM(lifecycleVM(t, 3, 44)); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if _, err := sys.StepEpoch(); err != nil {
					t.Fatalf("epoch %d: %v", k+i, err)
				}
			}
			snapBytes := checkpointBytes(t, sys)

			// Restore: the config describes the VM set live at checkpoint.
			cfg := snapshotConfig(t, backend.build)
			cfg.VMs = []VMConfig{lifecycleVM(t, 1, 42), lifecycleVM(t, 3, 44)}
			rd, err := snapshot.Open(bytes.NewReader(snapBytes))
			if err != nil {
				t.Fatal(err)
			}
			if meta, err := Meta(rd); err != nil || string(meta) != "test-meta" {
				t.Fatalf("meta = %q, %v", meta, err)
			}
			restored, err := RestoreSystem(rd, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("restored invariants: %v", err)
			}
			if restored.Epochs() != sys.Epochs() {
				t.Fatalf("restored epochs = %d, want %d", restored.Epochs(), sys.Epochs())
			}

			// A checkpoint of the freshly restored system must reproduce
			// the original snapshot byte for byte.
			if rebytes := checkpointBytes(t, restored); !bytes.Equal(rebytes, snapBytes) {
				t.Fatalf("re-checkpoint of restored system differs from original (%d vs %d bytes)",
					len(rebytes), len(snapBytes))
			}

			// Continue both systems in lockstep; state must stay identical.
			for i := 0; i < m; i++ {
				if _, err := sys.StepEpoch(); err != nil {
					t.Fatalf("original epoch +%d: %v", i, err)
				}
				if _, err := restored.StepEpoch(); err != nil {
					t.Fatalf("restored epoch +%d: %v", i, err)
				}
			}
			if err := restored.CheckInvariants(); err != nil {
				t.Fatalf("restored invariants after continue: %v", err)
			}
			for _, id := range []int{1, 2, 3} {
				a, okA := sys.VMResultByID(vmm.VMID(id))
				b, okB := restored.VMResultByID(vmm.VMID(id))
				if !okA || !okB {
					t.Fatalf("VM %d results missing (orig %v, restored %v)", id, okA, okB)
				}
				if !reflect.DeepEqual(a, b) {
					t.Errorf("VM %d results diverge:\n orig     %+v\n restored %+v", id, *a, *b)
				}
			}
			if a, b := checkpointBytes(t, sys), checkpointBytes(t, restored); !bytes.Equal(a, b) {
				t.Fatal("checkpoints diverge after continuing both runs")
			}
		})
	}
}

// TestSnapshotConfigMismatch checks that restoring against a config
// that differs from the checkpointed one fails loudly instead of
// silently diverging.
func TestSnapshotConfigMismatch(t *testing.T) {
	sys, err := NewSystem(snapshotConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StepEpoch(); err != nil {
		t.Fatal(err)
	}
	snapBytes := checkpointBytes(t, sys)

	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"seed", func(c *Config) { c.Seed = 7 }},
		{"frames", func(c *Config) { c.FastFrames = 8192 }},
		{"share", func(c *Config) { c.Share = ShareStatic }},
		{"backend", func(c *Config) { c.Backend = memsim.CoarseBackend }},
		{"vm-set", func(c *Config) { c.VMs = c.VMs[:1] }},
		{"vm-order", func(c *Config) { c.VMs[0], c.VMs[1] = c.VMs[1], c.VMs[0] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := snapshotConfig(t, nil)
			tc.mutate(&cfg)
			rd, err := snapshot.Open(bytes.NewReader(snapBytes))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RestoreSystem(rd, cfg); err == nil {
				t.Fatal("restore with mismatched config succeeded")
			}
		})
	}
}

// TestSnapshotCorruptionDetected flips one byte in the middle of a
// snapshot and expects the checksum to catch it at open time.
func TestSnapshotCorruptionDetected(t *testing.T) {
	sys, err := NewSystem(snapshotConfig(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.StepEpoch(); err != nil {
		t.Fatal(err)
	}
	snapBytes := checkpointBytes(t, sys)
	snapBytes[len(snapBytes)/2] ^= 0x40
	if _, err := snapshot.Open(bytes.NewReader(snapBytes)); err == nil {
		t.Fatal("corrupted snapshot opened cleanly")
	}
}

// TestSnapshotEveryWorkloadRoundTrips runs each registered workload in
// a small system, checkpoints mid-run, and verifies the restored
// system re-checkpoints byte-identically and finishes with identical
// results — covering every app's Snapshotter implementation.
func TestSnapshotEveryWorkloadRoundTrips(t *testing.T) {
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			mk := func() *System {
				w, err := workload.ByName(name, workload.Config{Seed: 99})
				if err != nil {
					t.Fatal(err)
				}
				sys, err := NewSystem(Config{
					FastFrames: 16384, SlowFrames: 32768,
					Seed: 99, MaxEpochs: 64,
					VMs: []VMConfig{{
						ID: 1, Mode: policy.HeteroOSCoordinated(), Workload: w,
						FastPages: 2048, SlowPages: 4096,
					}},
				})
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			sys := mk()
			for i := 0; i < 4; i++ {
				if _, err := sys.StepEpoch(); err != nil {
					t.Fatal(err)
				}
			}
			snapBytes := checkpointBytes(t, sys)
			rd, err := snapshot.Open(bytes.NewReader(snapBytes))
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreSystem(rd, mk().Cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rebytes := checkpointBytes(t, restored); !bytes.Equal(rebytes, snapBytes) {
				t.Fatal("re-checkpoint differs from original")
			}
			for i := 0; i < 4; i++ {
				if _, err := sys.StepEpoch(); err != nil {
					t.Fatal(err)
				}
				if _, err := restored.StepEpoch(); err != nil {
					t.Fatal(err)
				}
			}
			a, _ := sys.VMResultByID(1)
			b, _ := restored.VMResultByID(1)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("results diverge:\n orig     %+v\n restored %+v", *a, *b)
			}
		})
	}
}
