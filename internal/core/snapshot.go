// Checkpoint/restore for a full System. A checkpoint captures every
// bit of mutable simulation state — guest OS structures, VMM share
// books, machine frame ownership, backend cursors, workload progress,
// and all RNG streams — into the versioned, checksummed format of
// internal/snapshot. RestoreSystem rebuilds a System from the same
// Config (reconstruct), then overlays the serialized state (overlay):
// anything a fresh boot randomized or consumed is overwritten, so a
// restored run continues bit-for-bit identically to the uninterrupted
// one (`make snapshot-parity` enforces this byte-for-byte).
package core

import (
	"fmt"
	"io"

	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/sim"
	"heteroos/internal/snapshot"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// Checkpoint serializes the system's full mutable state to w. meta is
// an opaque front-end blob (the scenario engine stores its own resume
// state there); pass nil when there is none. The system must be
// between epochs — Checkpoint never runs mid-StepEpoch.
//
// Every workload on a live VM must implement workload.Snapshotter, and
// the backend must not be a trace recorder (the recorder's output
// stream cannot be split across a restore); both are checked up front
// so a doomed checkpoint fails before writing anything.
func (s *System) Checkpoint(w io.Writer, meta []byte) error {
	if _, ok := s.Backend.(*memsim.Recorder); ok {
		return fmt.Errorf("core: cannot checkpoint while recording a trace (-record-trace)")
	}
	snapshotters := make(map[vmm.VMID]workload.Snapshotter, len(s.VMs))
	for _, inst := range s.VMs {
		ws, ok := inst.W.(workload.Snapshotter)
		if !ok {
			return fmt.Errorf("core: workload %T on VM %d does not support checkpointing", inst.W, inst.ID)
		}
		snapshotters[inst.ID] = ws
	}

	sw, err := snapshot.NewWriter(w)
	if err != nil {
		return err
	}
	if err := sw.Section("meta", func(e *snapshot.Encoder) {
		e.Bytes(meta)
	}); err != nil {
		return err
	}
	if err := sw.Section("config", func(e *snapshot.Encoder) {
		e.U64(s.Cfg.FastFrames)
		e.U64(s.Cfg.SlowFrames)
		e.U64(s.Cfg.Seed)
		e.Str(string(s.Cfg.Share))
		e.F64(s.Cfg.CostScale)
		e.Str(s.Backend.Name())
		e.Int(s.epochs)
		e.U32(uint32(len(s.VMs)))
		for _, inst := range s.VMs {
			e.U32(uint32(inst.ID))
		}
		e.U32(uint32(len(s.Departed)))
		for _, inst := range s.Departed {
			e.U32(uint32(inst.ID))
		}
	}); err != nil {
		return err
	}
	if err := sw.Section("machine", func(e *snapshot.Encoder) {
		s.Machine.Snapshot(e)
	}); err != nil {
		return err
	}
	if bs, ok := s.Backend.(memsim.StateSnapshotter); ok {
		if err := sw.Section("backend", func(e *snapshot.Encoder) {
			bs.SnapshotState(e)
		}); err != nil {
			return err
		}
	}
	if s.drf != nil {
		if err := sw.Section("drf", func(e *snapshot.Encoder) {
			s.drf.DRFAllocator().Snapshot(e)
		}); err != nil {
			return err
		}
	}
	var sectionErr error
	for _, inst := range s.VMs {
		inst := inst
		if err := sw.Section(fmt.Sprintf("vm%d", inst.ID), func(e *snapshot.Encoder) {
			inst.VM.SnapshotState(e)
			e.I64(int64(inst.Clock.Now()))
			e.I64(int64(inst.scanDebt))
			e.Int(inst.moveBudget)
			e.Int(inst.throttledPasses)
			e.Bool(inst.stallMigration)
			e.Int(inst.stallSkips)
			e.Bool(inst.Done)
			if err := e.JSON(&inst.Res); err != nil && sectionErr == nil {
				sectionErr = err
			}
			if err := e.JSON(inst.TraceLog); err != nil && sectionErr == nil {
				sectionErr = err
			}
			e.Bool(inst.scanner != nil)
			if inst.scanner != nil {
				inst.scanner.SnapshotState(e)
			}
			e.Bool(inst.interval != nil)
			if inst.interval != nil {
				inst.interval.SnapshotState(e)
			}
			inst.OS.SnapshotState(e)
			snapshotters[inst.ID].SnapshotState(e)
		}); err != nil {
			return err
		}
		if sectionErr != nil {
			return fmt.Errorf("core: checkpoint VM %d: %w", inst.ID, sectionErr)
		}
	}
	if err := sw.Section("departed", func(e *snapshot.Encoder) {
		e.U32(uint32(len(s.Departed)))
		for _, inst := range s.Departed {
			e.U32(uint32(inst.ID))
			e.I64(int64(inst.Clock.Now()))
			if err := e.JSON(&inst.Res); err != nil && sectionErr == nil {
				sectionErr = err
			}
			if err := e.JSON(inst.TraceLog); err != nil && sectionErr == nil {
				sectionErr = err
			}
		}
	}); err != nil {
		return err
	}
	if sectionErr != nil {
		return fmt.Errorf("core: checkpoint departed VMs: %w", sectionErr)
	}
	return sw.Close()
}

// Meta extracts the front-end blob stored by Checkpoint. Front-ends
// call this first to recover the Config (VM set, scenario position)
// they need to hand RestoreSystem.
func Meta(r *snapshot.Reader) ([]byte, error) {
	d, err := r.Section("meta")
	if err != nil {
		return nil, err
	}
	b := d.Bytes()
	return b, d.Err()
}

// RestoreSystem rebuilds a checkpointed system. cfg must describe the
// machine and the VM set live at checkpoint time exactly as the
// original run did (same shape, seed, share policy, and VM configs in
// the same order — the front-end reconstructs this from its meta
// blob); the snapshot's config section is cross-checked against it and
// any mismatch is an error, not silent divergence.
//
// The restore strategy is reconstruct + overlay: NewSystem boots the
// full stack (allocating frames, consuming RNG draws, initializing
// workloads), then every piece of mutable state is overwritten from
// the snapshot. Derived structures are rebuilt rather than restored —
// buddy heaps from free-page order, page-cache forward maps from the
// reverse map, the VMM heat index by re-attachment over restored page
// state — so invariants hold by construction.
func RestoreSystem(r *snapshot.Reader, cfg Config) (*System, error) {
	// Boot silently: the reconstruction boot replays allocation and
	// workload-init activity that already happened (and was already
	// observed) before the checkpoint, so none of it may reach the
	// caller's event sinks. Observability is attached after the overlay;
	// from there the event stream continues exactly where it left off.
	h := cfg.Obs
	cfg.Obs = nil
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: restore: rebooting system: %w", err)
	}

	d, err := r.Section("config")
	if err != nil {
		return nil, err
	}
	fast, slow, seed := d.U64(), d.U64(), d.U64()
	share := ShareKind(d.Str())
	costScale := d.F64()
	backendName := d.Str()
	epochs := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if fast != s.Cfg.FastFrames || slow != s.Cfg.SlowFrames {
		return nil, fmt.Errorf("core: restore: snapshot machine (%d fast, %d slow) != config (%d, %d)",
			fast, slow, s.Cfg.FastFrames, s.Cfg.SlowFrames)
	}
	if seed != s.Cfg.Seed {
		return nil, fmt.Errorf("core: restore: snapshot seed %d != config seed %d", seed, s.Cfg.Seed)
	}
	if share != s.Cfg.Share {
		return nil, fmt.Errorf("core: restore: snapshot share policy %q != config %q", share, s.Cfg.Share)
	}
	if costScale != s.Cfg.CostScale {
		return nil, fmt.Errorf("core: restore: snapshot CostScale %g != config %g", costScale, s.Cfg.CostScale)
	}
	// Pricing-model identity, not just state shape: restoring state taken
	// under one backend into a system pricing with another would not fail
	// structurally — it would silently re-price the remaining epochs.
	if backendName != s.Backend.Name() {
		return nil, fmt.Errorf("core: restore: snapshot was taken under the %q backend, config builds %q",
			backendName, s.Backend.Name())
	}
	nLive := int(d.U32())
	if nLive != len(s.VMs) {
		return nil, fmt.Errorf("core: restore: snapshot has %d live VMs, config boots %d", nLive, len(s.VMs))
	}
	for i := 0; i < nLive; i++ {
		id := vmm.VMID(d.U32())
		if id != s.VMs[i].ID {
			return nil, fmt.Errorf("core: restore: snapshot VM #%d is %d, config boots %d in that slot",
				i, id, s.VMs[i].ID)
		}
	}
	nDeparted := int(d.U32())
	if err := d.Err(); err != nil {
		return nil, err
	}
	s.epochs = epochs

	d, err = r.Section("machine")
	if err != nil {
		return nil, err
	}
	if err := s.Machine.Restore(d); err != nil {
		return nil, err
	}

	if bs, ok := s.Backend.(memsim.StateSnapshotter); ok {
		d, err = r.Section("backend")
		if err != nil {
			return nil, fmt.Errorf("core: restore: backend carries run state but %w", err)
		}
		if err := bs.RestoreState(d); err != nil {
			return nil, err
		}
	} else if r.Has("backend") {
		return nil, fmt.Errorf("core: restore: snapshot has backend state but backend %T cannot restore it", s.Backend)
	}

	if s.drf != nil {
		d, err = r.Section("drf")
		if err != nil {
			return nil, err
		}
		if err := s.drf.DRFAllocator().Restore(d); err != nil {
			return nil, err
		}
	} else if r.Has("drf") {
		return nil, fmt.Errorf("core: restore: snapshot has DRF state but share policy is %q", s.Cfg.Share)
	}

	for _, inst := range s.VMs {
		d, err = r.Section(fmt.Sprintf("vm%d", inst.ID))
		if err != nil {
			return nil, err
		}
		if err := restoreVM(s, inst, d); err != nil {
			return nil, fmt.Errorf("core: restore VM %d: %w", inst.ID, err)
		}
	}

	d, err = r.Section("departed")
	if err != nil {
		return nil, err
	}
	if n := int(d.U32()); n != nDeparted {
		return nil, fmt.Errorf("core: restore: departed section has %d VMs, config section says %d", n, nDeparted)
	}
	for i := 0; i < nDeparted; i++ {
		stub := &VMInstance{ID: vmm.VMID(d.U32()), Done: true}
		stub.Clock.Restore(sim.Time(d.I64()))
		if err := d.JSON(&stub.Res); err != nil {
			return nil, fmt.Errorf("core: restore departed VM %d: %w", stub.ID, err)
		}
		if err := d.JSON(&stub.TraceLog); err != nil {
			return nil, fmt.Errorf("core: restore departed VM %d: %w", stub.ID, err)
		}
		s.Departed = append(s.Departed, stub)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	s.attachObs(h)
	return s, nil
}

// attachObs wires observability into a restored system, mirroring the
// boot-time wiring in NewSystem/bootVM. The backend keeps running
// without its metrics option (it was built before the handle attached);
// event streams — the parity-gated surface — are unaffected.
func (s *System) attachObs(h *obs.Obs) {
	if h == nil {
		return
	}
	s.Cfg.Obs = h
	for _, inst := range s.VMs {
		scope := h.Scope(int(inst.ID), inst.simNow)
		inst.obsScope = scope
		inst.probes = newCoreProbes(scope)
		inst.OS.AttachObs(scope)
		if inst.scanner != nil {
			inst.scanner.AttachObs(scope)
		}
		if inst.migrator != nil {
			inst.migrator.AttachObs(scope)
		}
		if s.Cfg.ProfileEpochs {
			inst.phases = obs.NewPhaseProfiler(scope.Registry())
			if inst.scanner != nil {
				inst.scanner.AttachPhases(inst.phases)
			}
		}
	}
	s.sysScope = h.Scope(0, s.latestClock)
	if s.drf != nil {
		s.drf.AttachObs(s.sysScope)
	}
}

// restoreVM overlays one live VM's serialized state onto its freshly
// booted instance, mirroring the Checkpoint field order exactly.
func restoreVM(s *System, inst *VMInstance, d *snapshot.Decoder) error {
	if err := inst.VM.RestoreState(d); err != nil {
		return err
	}
	inst.Clock.Restore(sim.Time(d.I64()))
	inst.scanDebt = sim.Duration(d.I64())
	inst.moveBudget = d.Int()
	inst.throttledPasses = d.Int()
	inst.stallMigration = d.Bool()
	inst.stallSkips = d.Int()
	inst.Done = d.Bool()
	inst.Res = VMResult{}
	if err := d.JSON(&inst.Res); err != nil {
		return err
	}
	inst.TraceLog = nil
	if err := d.JSON(&inst.TraceLog); err != nil {
		return err
	}
	hadScanner := d.Bool()
	if hadScanner != (inst.scanner != nil) {
		return fmt.Errorf("snapshot scanner presence %v != booted instance %v (mode mismatch?)",
			hadScanner, inst.scanner != nil)
	}
	if inst.scanner != nil {
		if err := inst.scanner.RestoreState(d); err != nil {
			return err
		}
	}
	hadInterval := d.Bool()
	if hadInterval != (inst.interval != nil) {
		return fmt.Errorf("snapshot adaptive-interval presence %v != booted instance %v (mode mismatch?)",
			hadInterval, inst.interval != nil)
	}
	if inst.interval != nil {
		if err := inst.interval.RestoreState(d); err != nil {
			return err
		}
	}
	if err := inst.OS.RestoreState(d); err != nil {
		return err
	}
	if inst.scanner != nil {
		// The heat index is a pure function of guest page state; rebuild
		// it over the restored store instead of deserializing it.
		inst.OS.SetPageIndexer(vmm.NewHeatIndex(inst.scanner, s.Machine.TierOf))
	}
	ws, ok := inst.W.(workload.Snapshotter)
	if !ok {
		return fmt.Errorf("workload %T does not support checkpointing", inst.W)
	}
	if err := ws.RestoreState(d, inst.OS); err != nil {
		return err
	}
	return d.Err()
}
