package core

import (
	"heteroos/internal/memsim"
	"heteroos/internal/metrics"
	"heteroos/internal/obs"
)

// coreProbes is the epoch loop's instrument set: epoch counts and cost
// distributions plus the FastMem pressure gauges the trace series also
// samples. Registered once at boot; stepVM updates them behind one nil
// check.
type coreProbes struct {
	epochs     *obs.Counter
	epochNs    *obs.Histogram
	osNs       *obs.Histogram
	fastFree   *obs.Gauge
	moveBudget *obs.Gauge
}

// newCoreProbes registers the epoch-loop instruments on scope.
func newCoreProbes(scope *obs.Scope) *coreProbes {
	return &coreProbes{
		epochs:     scope.Counter("core.epochs"),
		epochNs:    scope.Histogram("core.epoch_total_ns"),
		osNs:       scope.Histogram("core.epoch_os_ns"),
		fastFree:   scope.Gauge("core.fast_free_pct"),
		moveBudget: scope.Gauge("core.move_budget"),
	}
}

// observeEpoch records one priced epoch.
func (p *coreProbes) observeEpoch(cost *memsim.EpochCost, fastFreePct float64, moveBudget int) {
	p.epochs.Inc()
	p.epochNs.Observe(float64(cost.Total))
	p.osNs.Observe(float64(cost.OSTime))
	p.fastFree.Set(fastFreePct)
	p.moveBudget.Set(float64(moveBudget))
}

// fastFreePct samples the VM's free-FastMem percentage (0 for
// heterogeneity-unaware guests, whose single node spans both tiers).
func (inst *VMInstance) fastFreePct() float64 {
	if !inst.Mode.GuestAware {
		return 0
	}
	fast := inst.OS.Node(memsim.FastMem)
	if fast.MaxPages == 0 {
		return 0
	}
	return 100 * float64(fast.FreePages()) / float64(fast.MaxPages)
}

// TraceTable renders a per-epoch trace series (VMInstance.TraceLog,
// recorded under Config.Trace) as a metrics.Table: one row per epoch
// with the priced cost breakdown, miss counts, migration counts, and
// FastMem headroom. Durations are reported in milliseconds.
func TraceTable(title string, log []EpochTrace) *metrics.Table {
	t := metrics.NewTable(title,
		"epoch", "total_ms", "cpu_ms", "fast_ms", "slow_ms", "os_ms",
		"fast_miss", "slow_miss", "demote", "promote", "fast_free_pct")
	for _, e := range log {
		t.AddRow(e.Epoch,
			float64(e.Total)/1e6, float64(e.CPU)/1e6,
			float64(e.MemFast)/1e6, float64(e.MemSlow)/1e6,
			float64(e.OS)/1e6,
			e.FastMisses, e.SlowMisses, e.Demotions, e.Promotions,
			e.FastFreePct)
	}
	return t
}
