package core_test

import (
	"fmt"

	"heteroos/internal/core"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// Build a one-VM system running the memlat microbenchmark under two
// management modes and compare runtimes — the minimal driving pattern
// every experiment and example uses.
func ExampleRunSingle() {
	run := func(mode policy.Mode) float64 {
		w, err := workload.ByName("memlat", workload.Config{Seed: 1})
		if err != nil {
			panic(err)
		}
		res, _, err := core.RunSingle(core.Config{
			FastFrames: 4096 + 16384 + 1024, // machine FastMem (scaled pages)
			SlowFrames: 16384 + 1024,        // machine SlowMem
			Seed:       1,
			VMs: []core.VMConfig{{
				ID:        1,
				Mode:      mode,
				Workload:  w,
				FastPages: 4096,  // 1 GiB at the default 64x scale
				SlowPages: 16384, // 4 GiB
			}},
		})
		if err != nil {
			panic(err)
		}
		return res.RuntimeSeconds()
	}

	slow := run(policy.SlowMemOnly())
	fast := run(policy.FastMemOnly())
	fmt.Printf("SlowMem-only is %.1fx slower than FastMem-only\n", slow/fast)
	// Output:
	// SlowMem-only is 5.4x slower than FastMem-only
}
