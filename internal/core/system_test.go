package core

import (
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

func microVM(t *testing.T, mode policy.Mode, seed uint64) VMConfig {
	t.Helper()
	w, err := workload.ByName("memlat", workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return VMConfig{
		ID: 1, Mode: mode, Workload: w,
		FastPages: 4096, SlowPages: 16384,
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{FastFrames: 64, SlowFrames: 64}); err == nil {
		t.Fatal("no-VM config accepted")
	}
	if _, err := NewSystem(Config{
		FastFrames: 64, SlowFrames: 64, Share: "bogus",
		VMs: []VMConfig{{ID: 1}},
	}); err == nil {
		t.Fatal("bogus share policy accepted")
	}
	if _, err := NewSystem(Config{
		FastFrames: 1 << 16, SlowFrames: 1 << 16,
		VMs: []VMConfig{{ID: 1, Mode: policy.HeapOD()}},
	}); err == nil {
		t.Fatal("VM without workload accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	var c Config
	c.applyDefaults()
	if c.FastSpec.LoadLatencyNs != memsim.FastTierSpec().LoadLatencyNs {
		t.Error("FastSpec default missing")
	}
	if c.Share != ShareStatic || c.MaxEpochs != 4096 {
		t.Error("basic defaults missing")
	}
	if c.CostScale != workload.DefaultScale {
		t.Error("cost scale default missing")
	}
	if c.ScanBatchPages != 32*1024/int(c.CostScale) {
		t.Errorf("scan batch default = %d", c.ScanBatchPages)
	}
	if c.CoordMovesPerEpoch == 0 {
		t.Error("coordinated budget default missing")
	}
}

func TestEveryModeRunsMemlat(t *testing.T) {
	for _, mode := range policy.All() {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			res, sys, err := RunSingle(Config{
				FastFrames: 4096 + 16384 + 1024,
				SlowFrames: 16384 + 1024,
				Seed:       3,
				VMs:        []VMConfig{microVM(t, mode, 3)},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SimTime <= 0 || res.Epochs == 0 || res.Instr == 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Mode-shape assertions.
			switch {
			case mode.NoFastMem:
				if res.Misses[memsim.FastMem] != 0 {
					t.Error("SlowMem-only produced FastMem misses")
				}
			case mode.AllFastMem:
				if res.Misses[memsim.SlowMem] != 0 {
					t.Error("FastMem-only produced SlowMem misses")
				}
			}
			if mode.Migration == policy.MigrateVMMExclusive && res.ScanPasses == 0 {
				t.Error("VMM-exclusive never scanned")
			}
		})
	}
}

func TestBaselineOrderingMemlat(t *testing.T) {
	run := func(mode policy.Mode) float64 {
		res, _, err := RunSingle(Config{
			FastFrames: 4096 + 16384 + 1024,
			SlowFrames: 16384 + 1024,
			Seed:       4,
			VMs:        []VMConfig{microVM(t, mode, 4)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RuntimeSeconds()
	}
	fast := run(policy.FastMemOnly())
	slow := run(policy.SlowMemOnly())
	if !(fast < slow/2) {
		t.Fatalf("fast (%v) should far undercut slow (%v)", fast, slow)
	}
}

func TestMultiVMLockstepAndIsolation(t *testing.T) {
	w1, _ := workload.ByName("memlat", workload.Config{Seed: 5})
	w2, _ := workload.ByName("stream", workload.Config{Seed: 6})
	sys, err := NewSystem(Config{
		FastFrames: 32768, SlowFrames: 65536,
		Share: ShareMaxMin, Seed: 5,
		VMs: []VMConfig{
			{ID: 1, Mode: policy.HeteroOSLRU(), Workload: w1, FastPages: 4096, SlowPages: 16384},
			{ID: 2, Mode: policy.HeapOD(), Workload: w2, FastPages: 4096, SlowPages: 16384},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	r1, ok1 := sys.VMResultByID(1)
	r2, ok2 := sys.VMResultByID(2)
	if !ok1 || !ok2 {
		t.Fatal("missing results")
	}
	if _, ok := sys.VMResultByID(9); ok {
		t.Fatal("bogus VM id resolved")
	}
	if r1.Epochs == 0 || r2.Epochs == 0 {
		t.Fatal("a VM did not run")
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDRFShareExposed(t *testing.T) {
	w, _ := workload.ByName("memlat", workload.Config{Seed: 7})
	sys, err := NewSystem(Config{
		FastFrames: 32768, SlowFrames: 65536,
		Share: ShareDRF, Seed: 7,
		VMs: []VMConfig{{ID: 1, Mode: policy.HeteroOSCoordinated(), Workload: w,
			FastPages: 4096, SlowPages: 16384}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.DRFDominantShare(1) <= 0 {
		t.Fatal("DRF dominant share not tracked")
	}
	// Non-DRF systems report zero.
	sys2, _ := NewSystem(Config{
		FastFrames: 32768, SlowFrames: 65536, Seed: 7,
		VMs: []VMConfig{microVM(t, policy.HeapOD(), 7)},
	})
	if sys2.DRFDominantShare(1) != 0 {
		t.Fatal("static share should report zero dominant share")
	}
}

func TestRunSingleRejectsMultiVM(t *testing.T) {
	w1, _ := workload.ByName("memlat", workload.Config{Seed: 1})
	w2, _ := workload.ByName("memlat", workload.Config{Seed: 2})
	_, _, err := RunSingle(Config{
		FastFrames: 32768, SlowFrames: 65536,
		VMs: []VMConfig{
			{ID: 1, Mode: policy.HeapOD(), Workload: w1, FastPages: 1024, SlowPages: 4096},
			{ID: 2, Mode: policy.HeapOD(), Workload: w2, FastPages: 1024, SlowPages: 4096},
		},
	})
	if err == nil {
		t.Fatal("RunSingle accepted two VMs")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() VMResult {
		res, _, err := RunSingle(Config{
			FastFrames: 4096 + 16384 + 1024,
			SlowFrames: 16384 + 1024,
			Seed:       11,
			VMs:        []VMConfig{microVM(t, policy.HeteroOSCoordinated(), 11)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return *res
	}
	a, b := run(), run()
	if a.SimTime != b.SimTime || a.Misses != b.Misses || a.Demotions != b.Demotions {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", a.SimTime, a.Demotions, b.SimTime, b.Demotions)
	}
}

func TestVMResultDerivedMetrics(t *testing.T) {
	r := VMResult{}
	if r.MissRatio() != 0 || r.Throughput(10) != 0 {
		t.Fatal("zero-value guards broken")
	}
	r.FastAllocRequests = 10
	r.FastAllocMisses = 3
	if r.MissRatio() != 0.3 {
		t.Fatalf("miss ratio = %v", r.MissRatio())
	}
	r.Epochs = 4
	r.SimTime = 2_000_000_000 // 2s
	if got := r.Throughput(100); got != 200 {
		t.Fatalf("throughput = %v", got)
	}
	r.SimTime = 1_500_000_000
	if got := r.RuntimeSeconds(); got != 1.5 {
		t.Fatalf("runtime = %v", got)
	}
}

func TestMaxEpochsGuard(t *testing.T) {
	w, _ := workload.ByName("memlat", workload.Config{Seed: 1})
	_, _, err := RunSingle(Config{
		FastFrames: 32768, SlowFrames: 65536,
		MaxEpochs: 3, // memlat needs 20
		VMs: []VMConfig{{ID: 1, Mode: policy.HeapOD(), Workload: w,
			FastPages: 4096, SlowPages: 16384}},
	})
	if err == nil {
		t.Fatal("epoch-starved run did not error")
	}
}

func TestNoFastMemShapesSpans(t *testing.T) {
	w, _ := workload.ByName("memlat", workload.Config{Seed: 1})
	sys, err := NewSystem(Config{
		FastFrames: 32768, SlowFrames: 65536, Seed: 1,
		VMs: []VMConfig{{ID: 1, Mode: policy.SlowMemOnly(), Workload: w,
			FastPages: 4096, SlowPages: 16384}},
	})
	if err != nil {
		t.Fatal(err)
	}
	vmh, _ := sys.VMM.VMByID(1)
	if vmh.Spec.MaxPages[memsim.FastMem] != 0 {
		t.Fatal("NoFastMem did not zero the FastMem span")
	}
	if vmh.Spec.MaxPages[memsim.SlowMem] != 16384 {
		t.Fatal("SlowMem span wrong")
	}
	_ = vmm.VMID(1)
}

func TestBareMetalNotSlowerThanVirtualized(t *testing.T) {
	run := func(mode policy.Mode) float64 {
		w, _ := workload.ByName("GraphChi", workload.Config{Seed: 5})
		slow := workload.Config{}.Pages(8 * workload.GiB)
		res, _, err := RunSingle(Config{
			FastFrames: slow/4 + slow + 8192,
			SlowFrames: slow + 8192,
			Seed:       5,
			VMs: []VMConfig{{ID: 1, Mode: mode, Workload: w,
				FastPages: slow / 4, SlowPages: slow}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.RuntimeSeconds()
	}
	virt := run(policy.HeteroOSCoordinated())
	bare := run(policy.HeteroOSBareMetal())
	// Same mechanisms minus the hypervisor boundary: bare metal can only
	// be equal or faster (Section 4.3's portability claim).
	if bare > virt*1.01 {
		t.Fatalf("bare metal (%v) slower than virtualized (%v)", bare, virt)
	}
}

func TestMultiVMInvariantsAcrossPolicies(t *testing.T) {
	// System-level property: any pairing of management modes and share
	// policies leaves machine accounting, guest invariants, and VM grant
	// bookkeeping intact after a contended multi-VM run.
	modes := []policy.Mode{policy.HeapIOSlabOD(), policy.HeteroOSLRU(),
		policy.VMMExclusive(), policy.HeteroOSCoordinated()}
	shares := []ShareKind{ShareStatic, ShareMaxMin, ShareDRF}
	for _, m1 := range modes {
		for _, share := range shares {
			m1, share := m1, share
			t.Run(m1.Name+"/"+string(share), func(t *testing.T) {
				w1, _ := workload.ByName("memlat", workload.Config{Seed: 8})
				w2, _ := workload.ByName("stream", workload.Config{Seed: 9})
				sys, err := NewSystem(Config{
					FastFrames: 12288, SlowFrames: 40960,
					Share: share, Seed: 8,
					VMs: []VMConfig{
						{ID: 1, Mode: m1, Workload: w1, FastPages: 4096, SlowPages: 16384},
						{ID: 2, Mode: policy.HeteroOSCoordinated(), Workload: w2,
							FastPages: 4096, SlowPages: 16384},
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Run(); err != nil {
					t.Fatal(err)
				}
				if err := sys.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestClockAccountingIdentity(t *testing.T) {
	// DESIGN.md invariant: the virtual clock is exactly the sum of the
	// per-epoch components, and the trace reproduces the same total.
	w, _ := workload.ByName("GraphChi", workload.Config{Seed: 13})
	slow := workload.Config{}.Pages(8 * workload.GiB)
	sys, err := NewSystem(Config{
		FastFrames: slow/4 + slow + 8192,
		SlowFrames: slow + 8192,
		Seed:       13,
		Trace:      true,
		VMs: []VMConfig{{ID: 1, Mode: policy.HeteroOSCoordinated(), Workload: w,
			FastPages: slow / 4, SlowPages: slow}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	inst := sys.VMs[0]
	r := inst.Res
	if sum := r.CPUTime + r.MemTime[memsim.FastMem] + r.MemTime[memsim.SlowMem] + r.OSTime; sum != r.SimTime {
		t.Fatalf("component sum %v != runtime %v", sum, r.SimTime)
	}
	var traceSum int64
	for _, tr := range inst.TraceLog {
		traceSum += int64(tr.Total)
		if tr.Total != tr.CPU+tr.MemFast+tr.MemSlow+tr.OS {
			t.Fatalf("epoch %d components do not sum", tr.Epoch)
		}
	}
	if traceSum != int64(r.SimTime) {
		t.Fatalf("trace sum %v != runtime %v", traceSum, r.SimTime)
	}
	if len(inst.TraceLog) != r.Epochs {
		t.Fatalf("trace has %d entries for %d epochs", len(inst.TraceLog), r.Epochs)
	}
}
