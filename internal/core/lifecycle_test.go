package core

import (
	"math/rand"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// lifecycleVM builds a transient VM config with the given id.
func lifecycleVM(t *testing.T, id vmm.VMID, seed uint64) VMConfig {
	t.Helper()
	w, err := workload.ByName("memlat", workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return VMConfig{
		ID: id, Mode: policy.HeteroOSCoordinated(), Workload: w,
		FastPages: 1024, SlowPages: 2048,
		BootFastPages: 256, BootSlowPages: 512,
	}
}

// checkFrameConservation asserts that every allocated machine frame is
// owned by a live VM — i.e. departures returned their frames exactly.
func checkFrameConservation(t *testing.T, sys *System) {
	t.Helper()
	var owned uint64
	for _, inst := range sys.VMs {
		owned += sys.Machine.OwnedBy(memsim.Owner(inst.ID))
	}
	alloc := sys.Machine.AllocatedFrames(memsim.FastMem) + sys.Machine.AllocatedFrames(memsim.SlowMem)
	if alloc != owned {
		t.Fatalf("frame leak: %d frames allocated but only %d owned by live VMs", alloc, owned)
	}
}

// TestLifecycleChurnProperty boots and kills eight transient VMs in a
// deterministic random order, interleaved with epoch steps, checking
// after every operation that the system invariants hold and that the
// free pool refills exactly (no leaked frames, empty P2M on departure).
func TestLifecycleChurnProperty(t *testing.T) {
	sys, err := NewSystem(Config{
		FastFrames: 16384, SlowFrames: 32768,
		Share: ShareDRF, Seed: 11, MaxEpochs: 4096,
		VMs: []VMConfig{lifecycleVM(t, 1, 11)},
	})
	if err != nil {
		t.Fatal(err)
	}
	audit := func(step string) {
		t.Helper()
		if err := sys.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		checkFrameConservation(t, sys)
	}
	audit("initial boot")

	rng := rand.New(rand.NewSource(7))
	toBoot := []vmm.VMID{2, 3, 4, 5, 6, 7, 8, 9}
	var live []vmm.VMID
	for len(toBoot) > 0 || len(live) > 0 {
		bootable := len(toBoot) > 0
		killable := len(live) > 0
		if bootable && (!killable || rng.Intn(2) == 0) {
			i := rng.Intn(len(toBoot))
			id := toBoot[i]
			toBoot = append(toBoot[:i], toBoot[i+1:]...)
			if _, err := sys.BootVM(lifecycleVM(t, id, 11+uint64(id))); err != nil {
				t.Fatalf("boot VM %d: %v", id, err)
			}
			live = append(live, id)
			audit("boot")
		} else {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			if _, err := sys.ShutdownVM(id); err != nil {
				t.Fatalf("shutdown VM %d: %v", id, err)
			}
			audit("shutdown")
		}
		// Let the machinery run between lifecycle operations.
		for k := 0; k < 1+rng.Intn(3); k++ {
			if _, err := sys.StepEpoch(); err != nil {
				t.Fatalf("step: %v", err)
			}
		}
		audit("step")
	}

	// Only the permanent VM remains; everything else must be returned.
	if got := len(sys.VMs); got != 1 {
		t.Fatalf("live VMs = %d, want 1", got)
	}
	if got := len(sys.Departed); got != 8 {
		t.Fatalf("departed VMs = %d, want 8", got)
	}
	for _, inst := range sys.Departed {
		if n := sys.Machine.OwnedBy(memsim.Owner(inst.ID)); n != 0 {
			t.Fatalf("departed VM %d still owns %d frames", inst.ID, n)
		}
		if err := inst.OS.P2MEmpty(); err != nil {
			t.Fatalf("departed VM %d: %v", inst.ID, err)
		}
	}
}

// TestBootVMRejectsReusedIDs checks that a VM id can never be reused,
// even after its owner departed — results and traces stay unambiguous.
func TestBootVMRejectsReusedIDs(t *testing.T) {
	sys, err := NewSystem(Config{
		FastFrames: 16384, SlowFrames: 32768,
		Share: ShareDRF, Seed: 5,
		VMs: []VMConfig{lifecycleVM(t, 1, 5), lifecycleVM(t, 2, 6)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BootVM(lifecycleVM(t, 2, 9)); err == nil {
		t.Fatal("booting a live duplicate id succeeded")
	}
	if _, err := sys.ShutdownVM(2); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.BootVM(lifecycleVM(t, 2, 9)); err == nil {
		t.Fatal("reusing a departed VM's id succeeded")
	}
	if _, err := sys.ShutdownVM(2); err == nil {
		t.Fatal("double shutdown succeeded")
	}
	if _, err := sys.ShutdownVM(99); err == nil {
		t.Fatal("shutdown of unknown VM succeeded")
	}
}
