package core

import (
	"context"
	"errors"
	"testing"

	"heteroos/internal/guestos"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

func validConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		FastFrames: 4096 + 16384 + 1024,
		SlowFrames: 16384 + 1024,
		Seed:       1,
		VMs:        []VMConfig{microVM(t, policy.HeteroOSLRU(), 1)},
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero machine frames", func(c *Config) { c.FastFrames, c.SlowFrames = 0, 0 }},
		{"no VMs", func(c *Config) { c.VMs = nil }},
		{"nil workload", func(c *Config) { c.VMs[0].Workload = nil }},
		{"zero VM span", func(c *Config) { c.VMs[0].FastPages, c.VMs[0].SlowPages = 0, 0 }},
		{"fast span exceeds machine", func(c *Config) { c.VMs[0].FastPages = c.FastFrames + 1 }},
		{"slow span exceeds machine", func(c *Config) { c.VMs[0].SlowPages = c.SlowFrames + 1 }},
		{"negative epoch budget", func(c *Config) { c.MaxEpochs = -1 }},
		{"unknown share kind", func(c *Config) { c.Share = "bogus" }},
		{"duplicate VM IDs", func(c *Config) {
			dup := microVM(t, policy.HeapOD(), 2)
			dup.ID = c.VMs[0].ID
			c.VMs = append(c.VMs, dup)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig(t)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatal("Validate accepted a bad config")
			}
			if _, err := NewSystem(cfg); err == nil {
				t.Fatal("NewSystem accepted a bad config")
			}
		})
	}

	good := validConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// AllFastMem folds the slow span into FastMem; the folded span must
	// be validated against FastFrames, not the nominal FastPages.
	all := validConfig(t)
	all.VMs[0].Mode = policy.FastMemOnly()
	if err := all.Validate(); err != nil {
		t.Fatalf("AllFastMem config rejected: %v", err)
	}
	all.FastFrames = 4096 // too small for fast+slow folded together
	if err := all.Validate(); err == nil {
		t.Fatal("AllFastMem span exceeding FastFrames accepted")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sys, err := NewSystem(validConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if _, _, err := RunSingleContext(ctx, validConfig(t)); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSingleContext = %v, want context.Canceled", err)
	}
}

func TestEpochBudgetSentinel(t *testing.T) {
	cfg := validConfig(t)
	cfg.MaxEpochs = 3 // memlat needs ~20
	_, _, err := RunSingle(cfg)
	if !errors.Is(err, ErrEpochBudget) {
		t.Fatalf("epoch-starved run error = %v, want ErrEpochBudget", err)
	}
}

// stalledWorkload reports no progress without finishing.
type stalledWorkload struct{ workload.Workload }

func (stalledWorkload) Step(os *guestos.OS) (uint64, bool) { return 0, false }

func TestWorkloadStalledSentinel(t *testing.T) {
	cfg := validConfig(t)
	cfg.VMs[0].Workload = stalledWorkload{cfg.VMs[0].Workload}
	_, _, err := RunSingle(cfg)
	if !errors.Is(err, ErrWorkloadStalled) {
		t.Fatalf("stalled run error = %v, want ErrWorkloadStalled", err)
	}
}
