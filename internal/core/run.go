package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/policy"
	"heteroos/internal/sim"
	"heteroos/internal/vmm"
)

// Sentinel run errors. Callers match them with errors.Is; the wrapped
// message carries the VM and epoch context.
var (
	// ErrWorkloadStalled reports a workload Step that retired no
	// instructions without declaring completion.
	ErrWorkloadStalled = errors.New("workload stalled")
	// ErrEpochBudget reports a run that exhausted Config.MaxEpochs
	// before every VM finished.
	ErrEpochBudget = errors.New("epoch budget exhausted")
)

// maxScanPassesPerEpoch bounds timer-driven scan passes charged within
// one epoch, so a pathologically slow epoch cannot stall the simulation.
const maxScanPassesPerEpoch = 64

// stallProbeNs is the simulated cost of one retry probe against a
// stalled migration engine (a hypercall-sized poke, not a scan pass).
const stallProbeNs = 2000.0

// stallRetrySlot reports whether the n-th consecutive stalled pass is a
// backoff retry slot: exponential at 1, 2, 4, 8, then every 8th pass.
// The schedule is bounded — retries never stop entirely, so the engine
// recovers within at most 8 passes of the stall clearing no matter how
// long the window was.
func stallRetrySlot(n int) bool {
	return n == 1 || n == 2 || n == 4 || n%8 == 0
}

// StepEpoch advances every live, unfinished VM by one lockstep epoch
// and increments the system epoch counter. It reports alive=false when
// no VM remains running — either all finished or all departed. The
// scenario engine drives the system through this instead of
// RunContext, interleaving lifecycle events and fault injection
// between epochs.
func (s *System) StepEpoch() (alive bool, err error) {
	for _, inst := range s.VMs {
		if inst.Done {
			continue
		}
		alive = true
		if err := s.stepVM(inst); err != nil {
			return true, fmt.Errorf("core: VM %d epoch %d: %w", inst.ID, s.epochs, err)
		}
	}
	if alive {
		s.epochs++
		// Live exporters (heterosim -listen) subscribe through the obs
		// epoch hook; nil-safe, so the obs-off path pays nothing.
		s.Cfg.Obs.EpochTick(s.epochs)
	}
	return alive, nil
}

// RunContext executes all VMs to completion (or MaxEpochs), advancing
// each VM's virtual clock per epoch. VMs step in lockstep so multi-VM
// memory contention (grants, ballooning, DRF) interleaves realistically.
// Cancellation is checked once per epoch: a cancelled context stops the
// run within one epoch and returns ctx.Err().
func (s *System) RunContext(ctx context.Context) error {
	for s.epochs < s.Cfg.MaxEpochs {
		if err := ctx.Err(); err != nil {
			return err
		}
		alive, err := s.StepEpoch()
		if err != nil {
			return err
		}
		if !alive {
			break
		}
	}
	for _, inst := range s.VMs {
		if !inst.Done {
			return fmt.Errorf("core: VM %d did not finish within %d epochs: %w",
				inst.ID, s.Cfg.MaxEpochs, ErrEpochBudget)
		}
	}
	return nil
}

// Run is RunContext with a background (never-cancelled) context.
func (s *System) Run() error { return s.RunContext(context.Background()) }

// stepVM advances one VM by one epoch. A guest kernel panic — the
// guest exhausting memory it cannot run without — is contained here:
// the step fails with an error attributed to the VM instead of
// crashing the whole simulation. Any other panic is a simulator bug
// and propagates.
func (s *System) stepVM(inst *VMInstance) (err error) {
	defer func() {
		if r := recover(); r != nil {
			gp, ok := r.(*guestos.GuestPanic)
			if !ok {
				panic(r)
			}
			err = gp
		}
	}()
	prof := inst.W.Profile()

	// pt carries the phase profiler's wall-clock anchors. Explicit
	// time.Now()/ObserveWallSince pairs (never defer closures, which
	// allocate) and every time.Now is behind an inst.phases nil check,
	// so unprofiled runs never touch the host clock here.
	var pt time.Time

	// 1. Application work against the guest OS.
	if inst.phases != nil {
		pt = time.Now()
	}
	instr, done := inst.W.Step(inst.OS)
	if instr == 0 && !done {
		return ErrWorkloadStalled
	}
	inst.phases.ObserveWallSince(obs.PhaseWorkload, pt)

	// 2. Guest epoch maintenance first: watermark reclaim restores the
	// FastMem free buffer that coordinated promotion lands in. Balloon
	// traffic and reclaim both happen here, so this is the balance phase.
	if inst.phases != nil {
		pt = time.Now()
	}
	inst.OS.EndEpoch()
	inst.phases.ObserveWallSince(obs.PhaseBalance, pt)

	// 3. Hotness tracking + migration. The scanner runs on a wall-clock
	// cadence (every scan interval of *simulated* time), so memory-bound
	// configurations — whose epochs take longer — receive proportionally
	// more scan passes and pay proportionally more tracking cost,
	// exactly like the real 100 ms timer-driven scanner.
	if inst.scanner != nil {
		interval := 100 * sim.Millisecond
		if inst.interval != nil {
			interval = inst.interval.Current()
		}
		interval *= sim.Duration(inst.scanEvery)
		passes := 0
		for inst.scanDebt >= interval && passes < maxScanPassesPerEpoch {
			inst.scanDebt -= interval
			passes++
			if inst.stallMigration {
				// Injected migration-engine stall: the pass is skipped,
				// but the engine re-probes the stalled channel on an
				// exponential backoff schedule (passes 1, 2, 4, 8, then
				// every 8th), charging a small probe cost. scanDebt is
				// consumed either way, so a stall degrades a VM but can
				// never deadlock the epoch loop.
				inst.stallSkips++
				inst.Res.MigrationStalledPasses++
				if stallRetrySlot(inst.stallSkips) {
					inst.Res.MigrationStallRetries++
					inst.OS.AddOSTime(stallProbeNs)
					if inst.obsScope != nil {
						inst.obsScope.Emit(obs.EvMigrationStall, obs.DirNone,
							obs.TierNone, 0, 1, uint64(inst.stallSkips), stallProbeNs)
					}
				}
				continue
			}
			switch inst.Mode.Migration {
			case policy.MigrateVMMExclusive:
				if inst.phases != nil {
					pt = time.Now()
				}
				res := inst.scanner.ScanNext()
				if inst.phases != nil {
					inst.phases.ObserveWallSince(obs.PhaseScan, pt)
					inst.phases.ObserveSim(obs.PhaseScan, res.CostNs)
					pt = time.Now()
				}
				st := inst.migrator.Rebalance(inst.VM, inst.scanner, s.Cfg.MaxMovesPerPass)
				if inst.phases != nil {
					// The rebalance wall time includes its ranking queries,
					// which the scanner also reports under the rank phase;
					// rank is a nested breakdown of migrate, not a sibling.
					inst.phases.ObserveWallSince(obs.PhaseMigrate, pt)
					inst.phases.ObserveSim(obs.PhaseMigrate, st.CostNs)
				}
				inst.OS.AddOSTime(res.CostNs + st.CostNs)
				inst.Res.ScanCostNs += res.CostNs
				inst.Res.MigrateCostNs += st.CostNs
				inst.Res.VMMMigrations += uint64(st.Promoted + st.Demoted)
				inst.Res.ScanPasses++
			case policy.MigrateCoordinated:
				moves := s.Cfg.MaxMovesPerPass
				if moves > inst.moveBudget {
					moves = inst.moveBudget
				}
				if !inst.OS.PromotionWorthwhile() {
					// Promotions have stopped paying: drop to a probe
					// rate and skip most scan passes too — tracking cost
					// without migration benefit is pure overhead
					// (Observation 4).
					if moves > 2 {
						moves = 2
					}
					inst.throttledPasses++
					if inst.throttledPasses%8 != 0 {
						continue
					}
				}
				if inst.phases != nil {
					pt = time.Now()
				}
				st := vmm.CoordinatedPass(inst.VM, inst.scanner, inst.OS, moves)
				if inst.phases != nil {
					// The coordinated pass fuses scan, rank, and migrate;
					// its wall time lands on migrate (the pass exists to
					// move pages), its simulated scan charge on scan, and
					// the scanner's own rank-phase timing covers ranking.
					inst.phases.ObserveWallSince(obs.PhaseMigrate, pt)
					inst.phases.ObserveSim(obs.PhaseScan, st.ScanNs)
				}
				inst.moveBudget -= st.Promoted + st.Demoted
				inst.OS.AddOSTime(st.ScanNs)
				inst.Res.ScanCostNs += st.ScanNs
				inst.Res.ScanPasses++
			}
		}
		if passes == maxScanPassesPerEpoch {
			inst.scanDebt = 0 // shed unpayable debt
		}
	}

	// 4. Drain the epoch's accounting (includes scan/migration charges).
	st := inst.OS.DrainEpoch()

	// 5. Convert the epoch's work into LLC-miss traffic. Total miss
	// volume comes from the workload's MPKI rescaled for the platform
	// LLC (the backend owns the rescale: analytic applies the power-law
	// miss curve, coarse skips it); the per-tier split follows the
	// observed touch distribution.
	effMPKI := s.Backend.EffectiveMPKI(s.Cfg.LLC, prof.MPKI, prof.WSSBytes)
	totalMisses := float64(instr) / 1000 * effMPKI

	var loads, stores [memsim.NumTiers]float64
	var totLoads, totStores float64
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		loads[t] = float64(st.UserLoads[t])
		stores[t] = float64(st.UserStores[t])
		totLoads += loads[t]
		totStores += stores[t]
	}
	missStores := totalMisses * prof.StoreMissFrac
	missLoads := totalMisses - missStores

	charge := memsim.EpochCharge{
		Instr:            instr,
		Threads:          prof.Threads,
		MLP:              prof.MLP,
		BytesPerMiss:     prof.BytesPerMiss,
		StoreVisibleFrac: 0.35,
		OSTime:           sim.Duration(st.OSTimeNs),
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		var lm, sm float64
		if totLoads > 0 {
			lm = missLoads * loads[t] / totLoads
		}
		if totStores > 0 {
			sm = missStores * stores[t] / totStores
		} else if totLoads > 0 {
			// Store misses follow the load distribution when the epoch
			// recorded no explicit stores.
			sm = missStores * loads[t] / totLoads
		}
		charge.Traffic[t] = memsim.TierTraffic{
			LoadMisses:  uint64(lm),
			StoreMisses: uint64(sm),
		}
	}

	if inst.phases != nil {
		pt = time.Now()
	}
	cost := s.Backend.Charge(charge)
	if inst.phases != nil {
		inst.phases.ObserveWallSince(obs.PhaseCharge, pt)
		inst.phases.ObserveSim(obs.PhaseCharge, float64(cost.Total))
	}
	inst.Clock.Advance(cost.Total)
	inst.scanDebt += cost.Total
	// The coordinated migration budget scales with how well promotions
	// have been paying: spend aggressively while each move keeps earning
	// its Table 6 cost back, trickle otherwise.
	accrual := s.Cfg.CoordMovesPerEpoch
	if rate := inst.OS.PromoteRate(); rate > 0.5 {
		accrual *= 1 + int(8*rate)
	}
	inst.moveBudget += accrual
	if inst.moveBudget > 16*s.Cfg.CoordMovesPerEpoch {
		inst.moveBudget = 16 * s.Cfg.CoordMovesPerEpoch
	}

	// 6. Adaptive interval (Equation 1): fold this epoch's miss count.
	if inst.interval != nil {
		inst.interval.Update(totalMisses)
	}

	// 7. Accumulate results.
	if s.Cfg.Trace {
		freePct := inst.fastFreePct()
		if inst.TraceLog == nil {
			// One up-front allocation sized for the whole run keeps the
			// epoch hot path free of append growth.
			inst.TraceLog = make([]EpochTrace, 0, s.Cfg.MaxEpochs)
		}
		inst.TraceLog = append(inst.TraceLog, EpochTrace{
			Epoch:       inst.Res.Epochs + 1,
			Total:       cost.Total,
			CPU:         cost.CPUTime,
			MemFast:     cost.MemTime[memsim.FastMem],
			MemSlow:     cost.MemTime[memsim.SlowMem],
			OS:          cost.OSTime,
			FastMisses:  cost.Misses[memsim.FastMem],
			SlowMisses:  cost.Misses[memsim.SlowMem],
			Demotions:   st.Demotions,
			Promotions:  st.Promotions,
			FastFreePct: freePct,
		})
	}
	r := &inst.Res
	r.Epochs++
	r.Instr += instr
	r.SimTime = sim.Duration(inst.Clock.Now())
	r.CPUTime += cost.CPUTime
	r.OSTime += cost.OSTime
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		r.MemTime[t] += cost.MemTime[t]
		r.Misses[t] += cost.Misses[t]
		r.BytesOut[t] += cost.BytesOut[t]
	}
	r.Faults += st.Faults
	r.SwapIns += st.SwapIns
	r.SwapOuts += st.SwapOuts
	r.Demotions += st.Demotions
	r.Promotions += st.Promotions
	r.CacheEvictions += st.CacheEvictions
	r.DiskReadPages += st.DiskReadPages
	r.DiskWritePages += st.DiskWritePages
	r.BalloonPagesIn += st.BalloonPagesIn
	r.BalloonRefusedPages += st.BalloonRefusedPages
	if inst.probes != nil {
		inst.probes.observeEpoch(&cost, inst.fastFreePct(), inst.moveBudget)
	}

	if done {
		inst.Done = true
		s.finalizeResult(inst)
	}
	return nil
}

// finalizeResult fills the result fields computed from final guest
// state. Called when the workload completes or, for a mid-run shutdown,
// just before the guest is torn down (the census must be taken while
// the P2M is still intact).
func (s *System) finalizeResult(inst *VMInstance) {
	r := &inst.Res
	r.FastAllocRequests = sumKinds(inst.OS.WindowLife.Requests)
	r.FastAllocMisses = sumKinds(inst.OS.WindowLife.Misses)
	r.FinalCensus = inst.OS.PageCensus()
	r.CumAllocs = inst.OS.Cum.AllocsByKind
	r.NetBufChurnPages, r.SlabChurnPages = inst.OS.SlabChurnPageEquivalents()
}

func sumKinds(a [guestos.NumKinds]uint64) uint64 {
	var n uint64
	for _, v := range a {
		n += v
	}
	return n
}

// RunSingleContext is a convenience wrapper: build a one-VM system, run
// it under ctx, and return the VM's result.
func RunSingleContext(ctx context.Context, cfg Config) (*VMResult, *System, error) {
	if len(cfg.VMs) != 1 {
		return nil, nil, fmt.Errorf("core: RunSingle needs exactly one VM")
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.RunContext(ctx); err != nil {
		return nil, sys, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, sys, err
	}
	return &sys.VMs[0].Res, sys, nil
}

// RunSingle is RunSingleContext with a background context.
func RunSingle(cfg Config) (*VMResult, *System, error) {
	return RunSingleContext(context.Background(), cfg)
}
