package core

import (
	"reflect"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// migHostCfg is a host shape big enough for one memlat VM plus slack.
func migHostCfg(t *testing.T, seed uint64, vms ...VMConfig) Config {
	t.Helper()
	return Config{
		FastFrames: 4096 + 16384 + 2048,
		SlowFrames: 16384 + 2048,
		Seed:       seed,
		MaxEpochs:  1 << 20,
		AllowNoVMs: true,
		VMs:        vms,
	}
}

// migVM builds the canonical migrating VM config: coordinated mode (so
// a scanner and heat index are attached) over a snapshottable workload.
func migVM(t *testing.T, seed uint64) VMConfig {
	t.Helper()
	w, err := workload.ByName("memlat", workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return VMConfig{
		ID: 1, Mode: policy.HeteroOSCoordinated(), Workload: w,
		FastPages: 4096, SlowPages: 16384,
	}
}

func stepN(t *testing.T, s *System, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := s.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLiveMigrationPreservesState is the headline cross-host guarantee:
// a VM emigrated after a warm-up and immigrated onto a second host
// carries its heat profile exactly (identical HeatIndex summaries), its
// clock and accumulated result, and both hosts stay invariant-clean
// with the source host's frames fully returned.
func TestLiveMigrationPreservesState(t *testing.T) {
	hostA, err := NewSystem(migHostCfg(t, 11, migVM(t, 77)))
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, hostA, 8) // memlat runs ~20 epochs at this shape

	instA, ok := hostA.instByID(1)
	if !ok {
		t.Fatal("VM 1 not live on host A")
	}
	preHeat, ok := instA.HeatIndexSummary()
	if !ok {
		t.Fatal("no heat index attached on host A")
	}
	preClock := instA.Clock.Now()
	preRes := instA.Res
	preGranted := [2]uint64{instA.VM.Granted(memsim.FastMem), instA.VM.Granted(memsim.SlowMem)}

	img, err := hostA.EmigrateVM(1)
	if err != nil {
		t.Fatal(err)
	}
	if img.Pages[memsim.FastMem] != preGranted[0] || img.Pages[memsim.SlowMem] != preGranted[1] {
		t.Fatalf("image footprint %v != granted frames %v", img.Pages, preGranted)
	}
	if len(hostA.VMs) != 0 {
		t.Fatalf("host A still has %d live VMs after emigration", len(hostA.VMs))
	}
	if len(hostA.Departed) != 1 || !hostA.Departed[0].MigratedOut {
		t.Fatal("host A did not retire the ID as a migrated-out stub")
	}
	if hostA.Departed[0].Res != (VMResult{}) {
		t.Error("migrated-out stub carries a non-zero result (would double-count)")
	}
	if err := hostA.CheckInvariants(); err != nil {
		t.Fatalf("host A after emigration: %v", err)
	}
	if owned := hostA.Machine.OwnedBy(memsim.Owner(1)); owned != 0 {
		t.Fatalf("host A still owns %d frames for the emigrated VM", owned)
	}

	// Host B: different host seed, booted empty; the VM arrives with a
	// freshly constructed workload of the same type and seed.
	hostB, err := NewSystem(migHostCfg(t, 22))
	if err != nil {
		t.Fatal(err)
	}
	vc := migVM(t, 77)
	instB, err := hostB.ImmigrateVM(vc, img)
	if err != nil {
		t.Fatal(err)
	}
	if err := hostB.CheckInvariants(); err != nil {
		t.Fatalf("host B after immigration: %v", err)
	}
	postHeat, ok := instB.HeatIndexSummary()
	if !ok {
		t.Fatal("no heat index attached on host B")
	}
	if preHeat != postHeat {
		t.Error("heat profile changed across migration")
	}
	if instB.Clock.Now() != preClock {
		t.Errorf("clock %d != pre-migration %d", instB.Clock.Now(), preClock)
	}
	if !reflect.DeepEqual(instB.Res, preRes) {
		t.Error("accumulated result changed across migration")
	}
	if got := [2]uint64{instB.VM.Granted(memsim.FastMem), instB.VM.Granted(memsim.SlowMem)}; got != preGranted {
		t.Errorf("granted frames %v != pre-migration %v", got, preGranted)
	}

	// The migrated VM must still run to completion on the new host.
	for i := 0; i < 1<<16 && !instB.Done; i++ {
		if _, err := hostB.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if !instB.Done {
		t.Fatal("migrated VM never finished on host B")
	}
	if err := hostB.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveMigrationBitIdentical: migrating mid-run must not perturb the
// simulation at all — the migrated VM's final result is bit-identical
// to the same VM run uninterrupted on a single host. Frame identities
// differ across hosts, but nothing in the guest, scanner, or pricing
// path may depend on them.
func TestLiveMigrationBitIdentical(t *testing.T) {
	// Reference: uninterrupted single-host run.
	ref, err := NewSystem(migHostCfg(t, 11, migVM(t, 77)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	refRes, ok := ref.VMResultByID(1)
	if !ok {
		t.Fatal("no reference result")
	}

	// Migrated: same VM, moved A→B at epoch 6 and back B→A at epoch 12
	// (memlat runs ~20 epochs at this shape).
	hostA, err := NewSystem(migHostCfg(t, 11, migVM(t, 77)))
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, hostA, 6)
	img, err := hostA.EmigrateVM(1)
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := NewSystem(migHostCfg(t, 99))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := hostB.ImmigrateVM(migVM(t, 77), img)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, hostB, 6)
	img, err = hostB.EmigrateVM(1)
	if err != nil {
		t.Fatal(err)
	}
	// Return leg: the ID was retired on host A as migrated-out, so the
	// VM may come back.
	inst, err = hostA.ImmigrateVM(migVM(t, 77), img)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1<<16 && !inst.Done; i++ {
		if _, err := hostA.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if !inst.Done {
		t.Fatal("migrated VM never finished")
	}
	if !reflect.DeepEqual(inst.Res, *refRes) {
		t.Errorf("migrated run result differs from uninterrupted run\nmigrated: %+v\nreference: %+v", inst.Res, *refRes)
	}
	for _, s := range []*System{hostA, hostB} {
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMigrationRejections covers the refusal surface: unknown VMs,
// finished VMs, ID collisions, image/config mismatches, and genuinely
// retired IDs staying retired.
func TestMigrationRejections(t *testing.T) {
	hostA, err := NewSystem(migHostCfg(t, 11, migVM(t, 77)))
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, hostA, 8)
	if _, err := hostA.EmigrateVM(9); err == nil {
		t.Error("emigrating an unknown VM succeeded")
	}
	img, err := hostA.EmigrateVM(1)
	if err != nil {
		t.Fatal(err)
	}
	hostB, err := NewSystem(migHostCfg(t, 22))
	if err != nil {
		t.Fatal(err)
	}
	badVC := migVM(t, 77)
	badVC.ID = 2
	if _, err := hostB.ImmigrateVM(badVC, img); err == nil {
		t.Error("immigrating with a mismatched VM id succeeded")
	}
	if _, err := hostB.ImmigrateVM(migVM(t, 77), img); err != nil {
		t.Fatal(err)
	}
	// The ID is now live on B: a second arrival must be refused.
	if _, err := hostB.ImmigrateVM(migVM(t, 77), img); err == nil {
		t.Error("immigrating an already-live VM id succeeded")
	}
	// Run the VM out and shut it down: the ID is then genuinely retired
	// and may not return.
	inst, _ := hostB.instByID(1)
	for i := 0; i < 1<<16 && !inst.Done; i++ {
		if _, err := hostB.StepEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := hostB.EmigrateVM(1); err == nil {
		t.Error("emigrating a finished VM succeeded")
	}
	if _, err := hostB.ShutdownVM(1); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.ImmigrateVM(migVM(t, 77), img); err == nil {
		t.Error("immigrating onto a retired (shut-down) VM id succeeded")
	}
}
