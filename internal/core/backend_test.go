package core

import (
	"bytes"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// backendTestConfig builds a small single-VM config; the workload is
// constructed fresh per call so repeated runs start from identical
// state (workloads are stateful).
func backendTestConfig(t *testing.T, build memsim.Builder) Config {
	t.Helper()
	w, err := workload.ByName("memlat", workload.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		FastFrames: 24 * 1024,
		SlowFrames: 24 * 1024,
		MaxEpochs:  96,
		Seed:       7,
		Backend:    build,
		VMs: []VMConfig{{
			ID: 1, Mode: policy.HeteroOSCoordinated(), Workload: w,
			FastPages: 4 * 1024, SlowPages: 16 * 1024,
		}},
	}
}

func TestBackendDefaultIsAnalytic(t *testing.T) {
	cfg := backendTestConfig(t, nil)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Backend.Name() != memsim.BackendAnalytic {
		t.Fatalf("default backend is %q, want analytic", sys.Backend.Name())
	}
	if sys.Backend.Machine() != sys.Machine {
		t.Fatal("backend not wired to the system machine")
	}
}

func TestConfigBackendSelectsCoarse(t *testing.T) {
	cfg := backendTestConfig(t, memsim.CoarseBackend)
	res, sys, err := RunSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Backend.Name() != memsim.BackendCoarse {
		t.Fatalf("backend is %q, want coarse", sys.Backend.Name())
	}
	if res.SimTime <= 0 || res.Epochs == 0 {
		t.Fatalf("coarse run produced no progress: %+v", res)
	}
}

// A recorded analytic run replayed through the replay backend must
// reproduce the full VMResult exactly: every epoch cost comes back
// bit-identical from the trace and everything downstream of pricing is
// deterministic.
func TestSystemRecordReplayRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var rec *memsim.Recorder
	recording := func(m *memsim.Machine, opts ...memsim.Option) memsim.Backend {
		rec = memsim.NewRecorder(memsim.NewAnalytic(m, opts...), &buf)
		return rec
	}
	res1, _, err := RunSingle(backendTestConfig(t, recording))
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() == 0 {
		t.Fatal("recorder saw no epochs")
	}

	tr, err := memsim.LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var rp *memsim.Replay
	replaying := func(m *memsim.Machine, opts ...memsim.Option) memsim.Backend {
		rp = memsim.NewReplay(tr, m, opts...)
		return rp
	}
	res2, sys, err := RunSingle(backendTestConfig(t, replaying))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Backend.Name() != memsim.BackendReplay {
		t.Fatalf("backend is %q, want replay", sys.Backend.Name())
	}
	if rp.Diverged() != 0 || rp.Overrun() != 0 {
		t.Fatalf("replay diverged=%d overrun=%d, want clean", rp.Diverged(), rp.Overrun())
	}
	if *res1 != *res2 {
		t.Fatalf("replayed result differs from recorded run:\nrecorded: %+v\nreplayed: %+v", *res1, *res2)
	}
}
