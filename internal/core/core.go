// Package core assembles the full HeteroOS system: a machine with two
// memory tiers, the VMM with a share policy, one or more guest VMs each
// running a guest OS under a named management mode (internal/policy)
// and a workload (internal/workload), and the epoch loop that prices
// execution with the memsim engine.
//
// This is the public API surface of the reproduction: experiments, the
// CLIs, and the examples all drive simulations through this package.
package core

import (
	"errors"
	"fmt"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/policy"
	"heteroos/internal/sim"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// ShareKind names a VMM share policy.
type ShareKind string

// Share policy names accepted by Config.Share.
const (
	ShareStatic ShareKind = "static"
	ShareMaxMin ShareKind = "max-min"
	ShareDRF    ShareKind = "drf"
)

// VMConfig describes one guest VM.
type VMConfig struct {
	ID   vmm.VMID
	Mode policy.Mode
	// Workload runs inside the VM.
	Workload workload.Workload
	// FastPages / SlowPages bound the VM's per-tier capacity (scaled
	// pages). Mode.NoFastMem forces FastPages to 0; Mode.AllFastMem
	// replaces both with one large FastMem span.
	FastPages, SlowPages uint64
	// BootFastPages / BootSlowPages are populated at boot; zero defaults
	// to half the span (the rest arrives on demand).
	BootFastPages, BootSlowPages uint64
	// ReservedFastPages / ReservedSlowPages are the VMM-guaranteed
	// minimums for multi-VM sharing; zero defaults to the boot sizes.
	ReservedFastPages, ReservedSlowPages uint64
}

// Config describes the whole system.
type Config struct {
	// Machine shape (scaled pages per tier).
	FastFrames, SlowFrames uint64
	// Tier performance; zero values default to the paper's FastMem
	// (L:1,B:1) and SlowMem (L:5,B:9).
	FastSpec, SlowSpec memsim.TierSpec
	// LLC model; zero value defaults to the 16 MB reference platform.
	LLC memsim.LLC
	// CPU model; zero value defaults to the paper's Xeon.
	CPU memsim.CPU
	// Share selects the VMM share policy (default static).
	Share ShareKind
	// VMs to boot.
	VMs []VMConfig
	// MaxEpochs bounds the run (default 4096).
	MaxEpochs int
	// ScanEveryEpochs is the baseline hotness-tracking cadence in
	// epochs (default 1, i.e. every 100 ms epoch).
	ScanEveryEpochs int
	// ScanBatchPages bounds pages scanned per pass, in scaled pages
	// (default 16K real pages / CostScale — the Figure 11 cadence).
	ScanBatchPages int
	// MaxMovesPerPass bounds migrations per rebalance, in scaled pages
	// (default 8K real pages / CostScale: one Table 6 batch).
	MaxMovesPerPass int
	// CostScale is the capacity scale factor: one simulated page stands
	// for CostScale real pages, so per-page software costs multiply by
	// it. Default workload.DefaultScale.
	CostScale float64
	// CoordMovesPerEpoch is the coordinated manager's migration budget
	// (scaled pages per epoch); selectivity is what keeps coordinated
	// migration volumes at Figure 12's levels. Default 48.
	CoordMovesPerEpoch int
	// Trace records a per-epoch time series in each VMInstance (memory
	// profiles over time; used by heterosim -trace and tooling).
	Trace bool
	// Obs, when non-nil, enables the observability subsystem: every
	// layer registers its metrics into Obs.Metrics at boot and emits
	// structured events into Obs.Tracer at its chokepoints. nil (the
	// default) keeps the hot path allocation-free and the simulation
	// output byte-identical — observation never alters behaviour.
	Obs *obs.Obs
	// ProfileEpochs, when set together with Obs, attaches the epoch
	// phase profiler: each VM's epoch-loop phases (workload, scan, rank,
	// migrate, balance, charge) record simulated cost and host wall time
	// into per-VM "phase.*" histograms. Off by default — even with obs
	// on, runs skip the extra time.Now calls unless asked to profile.
	ProfileEpochs bool
	// AllowNoVMs permits booting a system with an empty VM set. The
	// fleet layer boots hosts empty and populates them mid-run through
	// BootVM/ImmigrateVM; ordinary single-host runs keep the zero-VM
	// misconfiguration guard.
	AllowNoVMs bool
	// Backend builds the machine-model backend the system prices epochs
	// with. nil defaults to memsim.AnalyticBackend — the Table-3
	// fidelity reference. NewSystem invokes the builder once, with the
	// machine it just built plus the CPU/obs options, so callers select
	// a model per job without constructing it themselves (see
	// memsim.BuilderByName and Trace.Builder).
	Backend memsim.Builder
	// Seed drives all randomness.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.FastSpec == (memsim.TierSpec{}) {
		c.FastSpec = memsim.FastTierSpec()
	}
	if c.SlowSpec == (memsim.TierSpec{}) {
		c.SlowSpec = memsim.SlowTierSpec()
	}
	if c.LLC == (memsim.LLC{}) {
		c.LLC = memsim.DefaultLLC()
	}
	if c.CPU == (memsim.CPU{}) {
		c.CPU = memsim.DefaultCPU()
	}
	if c.Share == "" {
		c.Share = ShareStatic
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 4096
	}
	if c.ScanEveryEpochs == 0 {
		c.ScanEveryEpochs = 1
	}
	if c.CostScale == 0 {
		c.CostScale = workload.DefaultScale
	}
	if c.ScanBatchPages == 0 {
		// 32K real guest pages per 100 ms pass (the Figure 8 cadence).
		c.ScanBatchPages = int(32 * 1024 / c.CostScale)
		if c.ScanBatchPages < 1 {
			c.ScanBatchPages = 1
		}
	}
	if c.MaxMovesPerPass == 0 {
		// 8K real pages per rebalance: one Table 6 batch.
		c.MaxMovesPerPass = int(8 * 1024 / c.CostScale)
		if c.MaxMovesPerPass < 1 {
			c.MaxMovesPerPass = 1
		}
	}
	if c.CoordMovesPerEpoch == 0 {
		c.CoordMovesPerEpoch = 96
	}
}

// effectiveSpans resolves a VM's per-tier capacity after the mode's
// baseline overrides (NoFastMem zeroes FastMem; AllFastMem folds both
// spans into one FastMem span).
func (vc *VMConfig) effectiveSpans() (fast, slow uint64) {
	fast, slow = vc.FastPages, vc.SlowPages
	switch {
	case vc.Mode.NoFastMem:
		fast = 0
	case vc.Mode.AllFastMem:
		fast = fast + slow
	}
	return fast, slow
}

// Validate rejects impossible configurations with descriptive errors
// before any machinery boots, instead of letting them surface as
// confusing mid-run failures. NewSystem calls it after defaults are
// applied; callers holding a hand-built Config may also call it
// directly (zero knobs that applyDefaults would fill are accepted).
func (c *Config) Validate() error {
	if c.FastFrames == 0 && c.SlowFrames == 0 {
		return errors.New("core: machine has zero memory frames")
	}
	if c.MaxEpochs < 0 {
		return fmt.Errorf("core: negative MaxEpochs %d", c.MaxEpochs)
	}
	if c.CostScale < 0 {
		return fmt.Errorf("core: negative CostScale %g", c.CostScale)
	}
	if c.ScanEveryEpochs < 0 || c.ScanBatchPages < 0 || c.MaxMovesPerPass < 0 || c.CoordMovesPerEpoch < 0 {
		return fmt.Errorf("core: negative scan/migration knob (ScanEveryEpochs=%d ScanBatchPages=%d MaxMovesPerPass=%d CoordMovesPerEpoch=%d)",
			c.ScanEveryEpochs, c.ScanBatchPages, c.MaxMovesPerPass, c.CoordMovesPerEpoch)
	}
	switch c.Share {
	case "", ShareStatic, ShareMaxMin, ShareDRF:
	default:
		return fmt.Errorf("core: unknown share policy %q", c.Share)
	}
	if len(c.VMs) == 0 && !c.AllowNoVMs {
		return errors.New("core: no VMs configured")
	}
	seen := make(map[vmm.VMID]bool, len(c.VMs))
	for i := range c.VMs {
		vc := &c.VMs[i]
		if vc.Workload == nil {
			return fmt.Errorf("core: VM %d has no workload", vc.ID)
		}
		if seen[vc.ID] {
			return fmt.Errorf("core: duplicate VM ID %d", vc.ID)
		}
		seen[vc.ID] = true
		fast, slow := vc.effectiveSpans()
		if fast+slow == 0 {
			return fmt.Errorf("core: VM %d has a zero memory span", vc.ID)
		}
		if fast > c.FastFrames {
			return fmt.Errorf("core: VM %d FastMem span %d pages exceeds machine FastFrames %d (mode %s)",
				vc.ID, fast, c.FastFrames, vc.Mode.Name)
		}
		if slow > c.SlowFrames {
			return fmt.Errorf("core: VM %d SlowMem span %d pages exceeds machine SlowFrames %d (mode %s)",
				vc.ID, slow, c.SlowFrames, vc.Mode.Name)
		}
	}
	return nil
}

// VMInstance is one running guest.
type VMInstance struct {
	ID   vmm.VMID
	Mode policy.Mode
	OS   *guestos.OS
	W    workload.Workload
	VM   *vmm.VM

	scanner  *vmm.Scanner
	migrator *vmm.Migrator
	interval *vmm.AdaptiveInterval
	// scanEvery multiplies the base 100 ms scan interval.
	scanEvery int
	// scanDebt is simulated time elapsed since the last scan pass.
	scanDebt sim.Duration
	// moveBudget is the coordinated manager's accumulated migration
	// allowance, in pages.
	moveBudget int
	// throttledPasses counts scan slots skipped while promotions are
	// throttled (most are elided; every 8th probes).
	throttledPasses int
	// stallMigration is the fault-injection flag: while set, migration
	// passes are skipped under bounded retry/backoff (see stepVM).
	stallMigration bool
	// stallSkips counts consecutive passes skipped by the active stall;
	// it indexes the backoff schedule and resets when the stall clears.
	stallSkips int

	Clock sim.Clock
	Done  bool
	// MigratedOut marks a Departed stub left behind by EmigrateVM: the
	// VM continues on another host, the stub only retires the ID here
	// (and carries a zero result so per-host sums never double-count).
	// ImmigrateVM un-retires such a stub if the VM migrates back.
	MigratedOut bool
	Res         VMResult
	// TraceLog holds the per-epoch series when Config.Trace is set.
	TraceLog []EpochTrace

	// obsScope and probes are set when Config.Obs is enabled; phases
	// additionally requires Config.ProfileEpochs.
	obsScope *obs.Scope
	probes   *coreProbes
	phases   *obs.PhaseProfiler
}

// EpochTrace is one sample of a VM's per-epoch time series.
type EpochTrace struct {
	Epoch       int
	Total       sim.Duration
	CPU         sim.Duration
	MemFast     sim.Duration
	MemSlow     sim.Duration
	OS          sim.Duration
	FastMisses  uint64
	SlowMisses  uint64
	Demotions   uint64
	Promotions  uint64
	FastFreePct float64
}

// VMResult accumulates one VM's run statistics.
type VMResult struct {
	SimTime  sim.Duration
	CPUTime  sim.Duration
	MemTime  [memsim.NumTiers]sim.Duration
	OSTime   sim.Duration
	Instr    uint64
	Epochs   int
	Misses   [memsim.NumTiers]uint64
	BytesOut [memsim.NumTiers]uint64

	Faults, SwapIns, SwapOuts            uint64
	Demotions, Promotions, VMMMigrations uint64
	CacheEvictions                       uint64
	DiskReadPages, DiskWritePages        uint64
	ScanCostNs, MigrateCostNs            float64
	ScanPasses                           int
	// Balloon traffic: pages granted to the guest and pages the back-end
	// refused (share-policy denial, pool exhaustion, injected fault).
	BalloonPagesIn, BalloonRefusedPages uint64
	// Migration-stall fault accounting: passes skipped while stalled and
	// backoff retry probes issued.
	MigrationStalledPasses, MigrationStallRetries uint64
	FastAllocRequests, FastAllocMisses            uint64
	FinalCensus                                   [guestos.NumKinds]uint64
	CumAllocs                                     [guestos.NumKinds]uint64
	NetBufChurnPages, SlabChurnPages              float64
}

// RuntimeSeconds reports the VM's simulated runtime.
func (r *VMResult) RuntimeSeconds() float64 { return r.SimTime.Seconds() }

// MissRatio reports the lifetime FastMem allocation miss ratio.
func (r *VMResult) MissRatio() float64 {
	if r.FastAllocRequests == 0 {
		return 0
	}
	return float64(r.FastAllocMisses) / float64(r.FastAllocRequests)
}

// Throughput derives ops/sec for throughput-metric workloads.
func (r *VMResult) Throughput(opsPerEpoch float64) float64 {
	if r.SimTime == 0 {
		return 0
	}
	return opsPerEpoch * float64(r.Epochs) / r.SimTime.Seconds()
}

// System is a fully wired simulation.
type System struct {
	Cfg     Config
	Machine *memsim.Machine
	VMM     *vmm.VMM
	// Backend prices epochs. It is the analytic Table-3 engine unless
	// Config.Backend selected another model.
	Backend memsim.Backend
	// VMs holds the live guests; Departed holds guests that were shut
	// down mid-run (their VMResult is final, their frames returned).
	VMs      []*VMInstance
	Departed []*VMInstance
	drf      *vmm.DRFShare // non-nil when Share == ShareDRF
	// epochs counts completed lockstep epochs (StepEpoch increments it).
	epochs int
	// sysScope is the VM-0 observability scope for cross-VM events
	// (DRF rebalances, VM lifecycle, fault injection); nil when obs is
	// off.
	sysScope *obs.Scope
}

// NewSystem builds and boots a system. The config is validated first:
// impossible shapes (zero frames, VM spans exceeding the machine,
// duplicate VM IDs) fail here with descriptive errors rather than as
// confusing mid-run failures.
func NewSystem(cfg Config) (*System, error) {
	cfg.applyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg}
	s.Machine = memsim.NewMachine(cfg.FastFrames, cfg.SlowFrames, cfg.FastSpec, cfg.SlowSpec)
	var share vmm.SharePolicy
	switch cfg.Share {
	case ShareStatic:
		share = vmm.StaticShare{}
	case ShareMaxMin:
		share = vmm.MaxMinShare{}
	case ShareDRF:
		d, err := vmm.NewDRFShare(s.Machine, vmm.DefaultDRFWeights())
		if err != nil {
			return nil, err
		}
		share = d
		s.drf = d
	default:
		return nil, fmt.Errorf("core: unknown share policy %q", cfg.Share)
	}
	s.VMM = vmm.New(s.Machine, share)
	build := cfg.Backend
	if build == nil {
		build = memsim.AnalyticBackend
	}
	backendOpts := []memsim.Option{memsim.WithCPU(cfg.CPU)}
	if cfg.Obs != nil {
		backendOpts = append(backendOpts, memsim.WithObs(cfg.Obs.Metrics))
	}
	s.Backend = build(s.Machine, backendOpts...)

	for _, vc := range cfg.VMs {
		inst, err := s.bootVM(vc)
		if err != nil {
			return nil, err
		}
		s.VMs = append(s.VMs, inst)
	}
	if cfg.Obs != nil {
		// Cross-VM actions (DRF rebalances, VM lifecycle, fault
		// injection) report on the system scope (VM 0), timestamped by
		// the furthest-advanced VM clock.
		s.sysScope = cfg.Obs.Scope(0, s.latestClock)
		if s.drf != nil {
			s.drf.AttachObs(s.sysScope)
		}
	}
	return s, nil
}

// latestClock reports the furthest-advanced VM clock (departed VMs
// included, so system time never moves backwards across a shutdown),
// the natural timestamp for system-scope (cross-VM) events.
func (s *System) latestClock() sim.Duration {
	var max sim.Duration
	for _, inst := range s.VMs {
		if d := sim.Duration(inst.Clock.Now()); d > max {
			max = d
		}
	}
	for _, inst := range s.Departed {
		if d := sim.Duration(inst.Clock.Now()); d > max {
			max = d
		}
	}
	return max
}

// Now reports the system-level simulated time (the furthest-advanced VM
// clock). The scenario engine samples it for its timeline.
func (s *System) Now() sim.Duration { return s.latestClock() }

// Epochs reports how many lockstep epochs have completed.
func (s *System) Epochs() int { return s.epochs }

func (s *System) bootVM(vc VMConfig) (*VMInstance, error) {
	if vc.Workload == nil {
		return nil, fmt.Errorf("core: VM %d has no workload", vc.ID)
	}
	fast, slow := vc.FastPages, vc.SlowPages
	switch {
	case vc.Mode.NoFastMem:
		fast = 0
	case vc.Mode.AllFastMem:
		// One huge FastMem span; SlowMem stays as a (never-preferred)
		// safety net sized as configured.
		fast = fast + slow
	}
	bootFast, bootSlow := vc.BootFastPages, vc.BootSlowPages
	if bootFast == 0 {
		bootFast = fast / 2
	}
	if bootSlow == 0 {
		bootSlow = slow / 2
	}
	if bootFast > fast {
		bootFast = fast
	}
	if bootSlow > slow {
		bootSlow = slow
	}
	resFast, resSlow := vc.ReservedFastPages, vc.ReservedSlowPages
	if resFast == 0 {
		resFast = bootFast
	}
	if resSlow == 0 {
		resSlow = bootSlow
	}

	spec := vmm.VMSpec{ID: vc.ID}
	spec.Reserved[memsim.FastMem] = resFast
	spec.Reserved[memsim.SlowMem] = resSlow
	spec.MaxPages[memsim.FastMem] = fast
	spec.MaxPages[memsim.SlowMem] = slow
	vmh, err := s.VMM.CreateVM(spec)
	if err != nil {
		return nil, err
	}

	costs := guestos.DefaultCosts().Scaled(s.Cfg.CostScale)
	if vc.Mode.BareMetal {
		// No hypervisor boundary: reservation changes are plain
		// allocator operations, not balloon hypercalls.
		costs.BalloonPerPageNs = 0
	}
	os, err := guestos.New(guestos.Config{
		CPUs:          s.Cfg.CPU.Cores,
		Aware:         vc.Mode.GuestAware,
		FastMaxPages:  fast,
		SlowMaxPages:  slow,
		BootFastPages: bootFast,
		BootSlowPages: bootSlow,
		Placement:     vc.Mode.Placement,
		Source:        vmh,
		TierOf:        s.Machine.TierOf,
		Costs:         costs,
		Seed:          s.Cfg.Seed ^ uint64(vc.ID)*0x9e3779b97f4a7c15,
	})
	if err != nil {
		return nil, fmt.Errorf("core: booting VM %d: %w", vc.ID, err)
	}
	vmh.Balloon = os
	vmh.View = os

	inst := &VMInstance{
		ID: vc.ID, Mode: vc.Mode, OS: os, W: vc.Workload, VM: vmh,
		scanEvery: s.Cfg.ScanEveryEpochs,
	}
	if vc.Mode.Migration != policy.MigrateNone {
		scanCosts := vmm.DefaultScanCosts().Scaled(s.Cfg.CostScale)
		if vc.Mode.BareMetal {
			// Native page-table scans skip the nested-paging walk the
			// hypervisor pays per PTE.
			scanCosts.PTEScanNs *= 0.7
			scanCosts.TLBRefillNs *= 0.7
		}
		inst.scanner = vmm.NewScanner(os, scanCosts)
		inst.scanner.BatchPages = s.Cfg.ScanBatchPages
		// Promote only decisively hot pages (two consecutive referenced
		// scans); anything looser churns on uniformly warm heaps.
		inst.scanner.HotThreshold = 6
		mc := vmm.DefaultMigrateCosts()
		mc.CostScale = s.Cfg.CostScale
		inst.migrator = vmm.NewMigrator(mc)
	}
	if vc.Mode.WriteAwareMigration && inst.scanner != nil {
		// Section 4.3 extension: track write bits and weight the
		// migration ranking by the slow tier's store/load asymmetry.
		inst.scanner.TrackWrites = true
		slow := s.Machine.Spec(memsim.SlowMem)
		if slow.LoadLatencyNs > 0 {
			boost := slow.StoreLatencyNs/slow.LoadLatencyNs - 1
			if boost < 0 {
				boost = 0
			}
			inst.scanner.WriteBoost = boost
		}
	}
	if vc.Mode.Migration == policy.MigrateCoordinated && inst.scanner != nil {
		// Guest-guided tracking also consults guest page state — the
		// validity information the VMM-exclusive scanner cannot see.
		inst.scanner.TrustGuestState = true
		// The guest keeps extra free FastMem headroom so promotions land
		// without displacing anything and allocation bursts don't bounce
		// freshly promoted pages back out.
		if vc.Mode.GuestAware {
			fast := os.Node(memsim.FastMem)
			fast.HighWatermark = 6 * fast.LowWatermark
		}
	}
	if vc.Mode.AdaptiveInterval {
		// Equation 1 varies the interval between 50 ms and 1 s.
		inst.interval = vmm.NewAdaptiveInterval(
			50*sim.Millisecond, sim.Second, 250*sim.Millisecond)
	}
	if inst.scanner != nil {
		// Attach the heat-bucket index: ranking queries become an O(k)
		// bucket walk updated incrementally from guest page events. Wired
		// after every scoring knob (thresholds, write tracking, guest
		// trust) is final, and before the workload touches memory, so the
		// boot-time seed sweep is the only full scan the index ever does.
		os.SetPageIndexer(vmm.NewHeatIndex(inst.scanner, s.Machine.TierOf))
	}
	if s.Cfg.Obs != nil {
		// Attach after every scanner/migrator knob is final and before
		// the workload touches memory, so boot-time activity is already
		// observed. The scope's clock closure reads the instance clock
		// at emission time.
		scope := s.Cfg.Obs.Scope(int(vc.ID), inst.simNow)
		inst.obsScope = scope
		inst.probes = newCoreProbes(scope)
		os.AttachObs(scope)
		if inst.scanner != nil {
			inst.scanner.AttachObs(scope)
		}
		if inst.migrator != nil {
			inst.migrator.AttachObs(scope)
		}
		if s.Cfg.ProfileEpochs {
			inst.phases = obs.NewPhaseProfiler(scope.Registry())
			if inst.scanner != nil {
				inst.scanner.AttachPhases(inst.phases)
			}
		}
	}
	if err := vc.Workload.Init(os); err != nil {
		return nil, fmt.Errorf("core: init workload on VM %d: %w", vc.ID, err)
	}
	return inst, nil
}

// simNow reports the instance's current simulated time.
func (inst *VMInstance) simNow() sim.Duration {
	return sim.Duration(inst.Clock.Now())
}

// VMResultByID fetches a VM's results, searching live then departed
// guests.
func (s *System) VMResultByID(id vmm.VMID) (*VMResult, bool) {
	for _, inst := range s.VMs {
		if inst.ID == id {
			return &inst.Res, true
		}
	}
	for _, inst := range s.Departed {
		if inst.ID == id {
			return &inst.Res, true
		}
	}
	return nil, false
}

// instByID finds a live VM instance.
func (s *System) instByID(id vmm.VMID) (*VMInstance, bool) {
	for _, inst := range s.VMs {
		if inst.ID == id {
			return inst, true
		}
	}
	return nil, false
}

// BootVM boots an additional guest mid-run (VM arrival). The new VM
// joins the lockstep from the next epoch with its own virtual clock at
// zero, so its VMResult measures its own runtime exactly as a
// boot-time VM's would. IDs are never reused: a departed VM's ID stays
// retired so results remain unambiguous.
func (s *System) BootVM(vc VMConfig) (*VMInstance, error) {
	for _, inst := range s.VMs {
		if inst.ID == vc.ID {
			return nil, fmt.Errorf("core: BootVM: VM %d already running", vc.ID)
		}
	}
	for _, inst := range s.Departed {
		if inst.ID == vc.ID {
			return nil, fmt.Errorf("core: BootVM: VM id %d already used by a departed VM", vc.ID)
		}
	}
	fast, slow := vc.effectiveSpans()
	if fast+slow == 0 {
		return nil, fmt.Errorf("core: BootVM: VM %d has a zero memory span", vc.ID)
	}
	if fast > s.Cfg.FastFrames || slow > s.Cfg.SlowFrames {
		return nil, fmt.Errorf("core: BootVM: VM %d span (%d fast, %d slow) exceeds machine (%d, %d)",
			vc.ID, fast, slow, s.Cfg.FastFrames, s.Cfg.SlowFrames)
	}
	inst, err := s.bootVM(vc)
	if err != nil {
		return nil, err
	}
	s.VMs = append(s.VMs, inst)
	if s.sysScope != nil {
		booted := inst.VM.Granted(memsim.FastMem) + inst.VM.Granted(memsim.SlowMem)
		s.sysScope.Emit(obs.EvVMBoot, obs.DirNone, obs.TierNone, 0, booted, uint64(vc.ID), 0)
	}
	return inst, nil
}

// ShutdownVM departs a guest mid-run: its result is finalised, the
// guest torn down (balloon unwound, P2M cleared, every machine frame
// returned to the VMM pool), and the VM deregistered from the share
// policy so surviving guests' shares re-converge over the new
// membership. The instance moves to Departed; its result stays
// addressable through VMResultByID.
func (s *System) ShutdownVM(id vmm.VMID) (*VMResult, error) {
	inst, ok := s.instByID(id)
	if !ok {
		return nil, fmt.Errorf("core: ShutdownVM: no live VM %d", id)
	}
	if !inst.Done {
		inst.Done = true
		s.finalizeResult(inst)
	}
	released := inst.OS.Teardown()
	if err := inst.OS.P2MEmpty(); err != nil {
		return nil, fmt.Errorf("core: ShutdownVM VM %d: %w", id, err)
	}
	if err := s.VMM.DestroyVM(id); err != nil {
		return nil, fmt.Errorf("core: ShutdownVM VM %d: %w", id, err)
	}
	for i, cand := range s.VMs {
		if cand == inst {
			s.VMs = append(s.VMs[:i], s.VMs[i+1:]...)
			break
		}
	}
	s.Departed = append(s.Departed, inst)
	if s.sysScope != nil {
		s.sysScope.Emit(obs.EvVMShutdown, obs.DirNone, obs.TierNone, 0, released, uint64(id), 0)
	}
	return &inst.Res, nil
}

// --- fault injection ---
// The setters are the scenario engine's hooks. Each emits an
// EvFaultInject start/clear pair on the target VM's scope (or the
// system scope for machine-level faults) so fault windows are visible
// in the event stream; with obs off they only flip the flag.

// SetMigrationStall starts (on=true) or clears an injected
// migration-engine stall on a live VM. While stalled, the VM's scan/
// migrate passes are skipped under bounded retry/backoff — the epoch
// loop never blocks, so a stall degrades but cannot deadlock the run.
func (s *System) SetMigrationStall(id vmm.VMID, on bool) error {
	inst, ok := s.instByID(id)
	if !ok {
		return fmt.Errorf("core: SetMigrationStall: no live VM %d", id)
	}
	inst.stallMigration = on
	if !on {
		inst.stallSkips = 0
	}
	s.emitFault(inst.obsScope, obs.FaultMigrationStall, on)
	return nil
}

// SetBalloonRefusal starts (on=true) or clears an injected balloon
// back-end refusal on a live VM: while set, every populate request is
// denied and the guest surfaces the shortfall (EvBalloonRefused).
func (s *System) SetBalloonRefusal(id vmm.VMID, on bool) error {
	inst, ok := s.instByID(id)
	if !ok {
		return fmt.Errorf("core: SetBalloonRefusal: no live VM %d", id)
	}
	inst.VM.RefusePopulate = on
	s.emitFault(inst.obsScope, obs.FaultBalloonRefusal, on)
	return nil
}

// SetTierSpec applies a mid-run tier performance shift (throttle-factor
// change). The pricing engine reads the machine spec at charge time, so
// the shift takes effect from the current epoch onward.
func (s *System) SetTierSpec(t memsim.Tier, spec memsim.TierSpec) {
	s.Machine.SetSpec(t, spec)
	if s.sysScope != nil {
		s.sysScope.Emit(obs.EvFaultInject, obs.DirStart, uint8(t), 0, 0, obs.FaultThrottleShift, 0)
	}
}

// EmitFault marks a fault window edge in the event stream on behalf of
// a caller that implements the fault itself (e.g. the scenario engine's
// workload surge). The event lands on the target VM's scope when id
// names a live instrumented VM, else on the system scope.
func (s *System) EmitFault(id vmm.VMID, code uint64, start bool) {
	if inst, ok := s.instByID(id); ok && inst.obsScope != nil {
		s.emitFault(inst.obsScope, code, start)
		return
	}
	s.emitFault(s.sysScope, code, start)
}

// emitFault emits one EvFaultInject edge on scope (nil scope: no-op).
func (s *System) emitFault(scope *obs.Scope, code uint64, start bool) {
	if scope == nil {
		return
	}
	dir := obs.DirClear
	if start {
		dir = obs.DirStart
	}
	scope.Emit(obs.EvFaultInject, dir, obs.TierNone, 0, 0, code, 0)
}

// DRFDominantShare reports a VM's dominant share under the DRF policy
// (zero otherwise).
func (s *System) DRFDominantShare(id vmm.VMID) float64 {
	if s.drf == nil {
		return 0
	}
	return s.drf.DominantShare(id)
}

// CheckInvariants validates the whole stack. Beyond the live guests'
// cross-subsystem checks, every departed VM must have left no trace:
// zero machine frames still owned and an empty P2M — a leak on either
// side of the teardown fails here.
func (s *System) CheckInvariants() error {
	if err := s.VMM.CheckInvariants(); err != nil {
		return err
	}
	for _, inst := range s.VMs {
		if err := inst.OS.CheckInvariants(); err != nil {
			return fmt.Errorf("VM %d: %w", inst.ID, err)
		}
	}
	for _, inst := range s.Departed {
		if leaked := s.Machine.OwnedBy(memsim.Owner(inst.ID)); leaked != 0 {
			return fmt.Errorf("departed VM %d: %d machine frames leaked", inst.ID, leaked)
		}
		// Restored snapshots carry departed VMs as result-only stubs
		// (no guest OS to interrogate); the frame-leak check above
		// still covers them.
		if inst.OS != nil {
			if err := inst.OS.P2MEmpty(); err != nil {
				return fmt.Errorf("departed VM %d: %w", inst.ID, err)
			}
		}
	}
	return nil
}
