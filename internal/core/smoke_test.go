package core

import (
	"testing"

	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// runApp runs one application under one mode at the given FastMem
// capacity ratio (fast = slow * num/den) and returns the result.
func runApp(t *testing.T, app string, mode policy.Mode, fastPages, slowPages uint64, seed uint64) *VMResult {
	t.Helper()
	w, err := workload.ByName(app, workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		FastFrames: fastPages + slowPages + 4096, // headroom for AllFastMem
		SlowFrames: slowPages + 4096,
		Seed:       seed,
		VMs: []VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fastPages, SlowPages: slowPages,
		}},
	}
	res, _, err := RunSingle(cfg)
	if err != nil {
		t.Fatalf("%s/%s: %v", app, mode.Name, err)
	}
	return res
}

const (
	slow8G = 32768 // 8 GiB at scale 64
	fast4G = 16384
	fast2G = 8192
	fast1G = 4096
)

func TestSmokeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	apps := []string{"GraphChi", "LevelDB", "Redis"}
	for _, app := range apps {
		slowOnly := runApp(t, app, policy.SlowMemOnly(), 0, slow8G, 1)
		fastOnly := runApp(t, app, policy.FastMemOnly(), fast4G, slow8G, 1)
		heapOD := runApp(t, app, policy.HeapOD(), fast4G, slow8G, 1)
		lru := runApp(t, app, policy.HeteroOSLRU(), fast4G, slow8G, 1)

		tS, tF, tH, tL := slowOnly.RuntimeSeconds(), fastOnly.RuntimeSeconds(),
			heapOD.RuntimeSeconds(), lru.RuntimeSeconds()
		t.Logf("%-10s slow=%.2fs fast=%.2fs heapOD=%.2fs heteroLRU=%.2fs slowdown=%.2fx heapOD-gain=%.0f%% lru-gain=%.0f%%",
			app, tS, tF, tH, tL, tS/tF, (tS/tH-1)*100, (tS/tL-1)*100)

		if !(tF < tH && tH <= tS*1.05) {
			t.Errorf("%s: ordering violated: fast=%.2f heapOD=%.2f slow=%.2f", app, tF, tH, tS)
		}
		// HeteroOS-LRU pays real migration costs; at the generous 1/2
		// capacity ratio its active machinery may not beat plain
		// on-demand placement, but it must stay in the same band.
		if !(tL <= tH*1.25) {
			t.Errorf("%s: HeteroOS-LRU (%.2f) far worse than Heap-OD (%.2f)", app, tL, tH)
		}
	}
}
