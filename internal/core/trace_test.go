package core

import (
	"strings"
	"testing"

	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// traceRun executes one traced GraphChi run under mode and returns the
// finished system.
func traceRun(t *testing.T, mode policy.Mode) *System {
	t.Helper()
	w, err := workload.ByName("GraphChi", workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		FastFrames: fast2G + slow8G + 4096,
		SlowFrames: slow8G + 4096,
		Seed:       1,
		Trace:      true,
		VMs: []VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fast2G, SlowPages: slow8G,
		}},
	}
	_, sys, err := RunSingle(cfg)
	if err != nil {
		t.Fatalf("%s: %v", mode.Name, err)
	}
	return sys
}

// TestEpochTraceConsistency asserts the per-epoch trace series is
// internally consistent with the run's final totals: summed per-epoch
// Promotions/Demotions/misses equal VMResult's, every FastFreePct is a
// percentage, cost components sum to the epoch total, and the series
// covers exactly the epochs the result reports.
func TestEpochTraceConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	modes := []policy.Mode{
		policy.VMMExclusive(),           // transparent
		policy.HeteroOSCoordinated(),    // coordinated
		policy.HeteroOSCoordinatedNVM(), // write-aware
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.Name, func(t *testing.T) {
			t.Parallel()
			sys := traceRun(t, mode)
			inst := sys.VMs[0]
			res := &inst.Res
			log := inst.TraceLog
			if len(log) != res.Epochs {
				t.Fatalf("trace has %d epochs, result ran %d", len(log), res.Epochs)
			}
			var promos, demos, fastMiss, slowMiss uint64
			for i, e := range log {
				if e.Epoch != i+1 {
					t.Fatalf("epoch %d recorded as %d", i+1, e.Epoch)
				}
				if sum := e.CPU + e.MemFast + e.MemSlow + e.OS; sum != e.Total {
					t.Fatalf("epoch %d: components %v != total %v", e.Epoch, sum, e.Total)
				}
				if e.FastFreePct < 0 || e.FastFreePct > 100 {
					t.Fatalf("epoch %d: FastFreePct %v out of range", e.Epoch, e.FastFreePct)
				}
				promos += e.Promotions
				demos += e.Demotions
				fastMiss += e.FastMisses
				slowMiss += e.SlowMisses
			}
			if promos != res.Promotions {
				t.Errorf("summed trace promotions %d != result %d", promos, res.Promotions)
			}
			if demos != res.Demotions {
				t.Errorf("summed trace demotions %d != result %d", demos, res.Demotions)
			}
			if fastMiss != res.Misses[0] || slowMiss != res.Misses[1] {
				t.Errorf("summed trace misses fast=%d slow=%d != result fast=%d slow=%d",
					fastMiss, slowMiss, res.Misses[0], res.Misses[1])
			}
			// Migration totals must show up under the mode responsible
			// for them: the coordinated guests execute guest migrations,
			// the transparent baseline only VMM ones.
			if mode.Migration == policy.MigrateCoordinated && promos == 0 {
				t.Errorf("%s recorded no promotions in trace", mode.Name)
			}
		})
	}
}

// TestTraceTableRendering pins the TraceTable projection of the series.
func TestTraceTableRendering(t *testing.T) {
	log := []EpochTrace{
		{Epoch: 1, Total: 3_000_000, CPU: 1_000_000, MemFast: 500_000,
			MemSlow: 1_000_000, OS: 500_000, FastMisses: 10, SlowMisses: 20,
			Demotions: 1, Promotions: 2, FastFreePct: 33.5},
	}
	tbl := TraceTable("demo", log)
	if tbl.Rows() != 1 {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	var b strings.Builder
	tbl.RenderCSV(&b)
	want := "1,3.00,1.00,0.50,1.00,0.50,10,20,1,2,33.50"
	if !strings.Contains(b.String(), want) {
		t.Fatalf("rendered CSV missing %q:\n%s", want, b.String())
	}
}
