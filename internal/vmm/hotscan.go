package vmm

import (
	"math/bits"
	"sort"
	"time"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/sim"
)

// ScanCosts prices the software hotness-tracking machinery. The paper's
// Observation 4: the page table must be scanned frequently, TLB entries
// must be flushed even just to track (forcing page-table references),
// and the whole thing stalls a core.
type ScanCosts struct {
	// PTEScanNs is the cost of visiting one PTE: locate via reverse map,
	// read + reset the access bit.
	PTEScanNs float64
	// TLBFlushNs is one shootdown; one is issued per FlushBatchPages
	// scanned so the hardware re-sets access bits on reference.
	TLBFlushNs      float64
	FlushBatchPages int
	// TLBRefillNs approximates the guest-visible slowdown from the
	// induced TLB misses, per scanned page.
	TLBRefillNs float64
}

// DefaultScanCosts is calibrated so a 100 ms / 32K-page scan cadence on a
// GraphChi-sized VM lands in Figure 8's 40-60% overhead band and a
// 500 ms cadence near 30%.
func DefaultScanCosts() ScanCosts {
	return ScanCosts{
		PTEScanNs:       250,
		TLBFlushNs:      12000,
		FlushBatchPages: 512,
		TLBRefillNs:     150,
	}
}

// Scaled adapts the cost model to a capacity-scaled simulation: one
// simulated page stands for factor real pages, so per-page costs grow by
// factor and the flush batch (counted in simulated pages) shrinks.
func (c ScanCosts) Scaled(factor float64) ScanCosts {
	if factor <= 0 {
		factor = 1
	}
	out := c
	out.PTEScanNs *= factor
	out.TLBRefillNs *= factor
	out.FlushBatchPages = int(float64(c.FlushBatchPages) / factor)
	if out.FlushBatchPages < 1 {
		out.FlushBatchPages = 1
	}
	return out
}

// ScanResult reports one scan pass.
type ScanResult struct {
	Scanned    int
	Referenced int
	CostNs     float64
}

// Scanner is the VMM's hotness tracker. It keeps a per-page heat history
// (exponential decay of access-bit samples), mirroring HeteroVisor's
// batched tracking with a VMM-level reverse map.
type Scanner struct {
	view GuestView
	// wordView is view's word-at-a-time fast path, set when the view's
	// access bits live in packed bitmaps (nil otherwise). ScanNext and
	// ScanTracked then consume 64 pages' bits per load, skipping words
	// with no state to fold, with per-page scan-cost charging unchanged.
	wordView WordScanView
	costs    ScanCosts
	// cursor for full-span batched scanning (VMM-exclusive mode).
	cursor uint64
	// trackedPos is the rotation cursor for ScanTracked, carried as a
	// position within the tracked list (not a monotone counter: a counter
	// taken mod len re-anchors whenever the list length changes, which
	// re-scans the head pages and starves the tail).
	trackedPos int
	// index, when attached (NewHeatIndex), serves the ranking queries in
	// O(k) instead of rankIn's full sweep-and-sort.
	index *HeatIndex
	// obs, when attached, carries the scanner's observability probes.
	obs *scannerProbes
	// phases, when attached, records ranking-query wall time into the
	// rank phase of the epoch profiler.
	phases *obs.PhaseProfiler
	// hotBuf/coldBuf back the index-served ranking results. Two buffers
	// because the migrators hold a hot and a cold list simultaneously; a
	// result is valid until the next call of the same polarity.
	hotBuf, coldBuf []guestos.PFN
	// BatchPages bounds one ScanNext pass (HeteroVisor scans 16K-32K
	// guest pages per interval).
	BatchPages int
	// HotThreshold is the heat at which a page counts as hot
	// (promotion candidate).
	HotThreshold uint8
	// ColdThreshold is the heat at or below which a page counts as cold
	// (demotion candidate). The dead band between the thresholds is
	// hysteresis: pages of middling heat are never moved, which stops
	// promote/demote ping-pong at the boundary.
	ColdThreshold uint8
	// TrustGuestState lets the ranking consult guest page state (free,
	// kind). The VMM-exclusive baseline must leave this false: the
	// hypervisor cannot see deallocations, so it happily promotes pages
	// the guest already freed — "migrate pages marked for deletion only
	// polluting FastMem" (Section 4.1). Coordinated mode sets it true.
	TrustGuestState bool
	// TrackWrites additionally samples the write (PAGE_RW) bit on each
	// scan — the Section 4.3 extension for asymmetric (NVM-class)
	// SlowMem. It adds per-PTE cost: the paper warns that software
	// write-bit tracking "can add significant software overhead".
	TrackWrites bool
	// WriteBoost weights write-heat into the ranking score; set it to
	// roughly storeLatency/loadLatency - 1 of the slow tier.
	WriteBoost float64
}

// NewScanner builds a scanner over view.
func NewScanner(view GuestView, costs ScanCosts) *Scanner {
	wv, _ := view.(WordScanView)
	return &Scanner{
		view:          view,
		wordView:      wv,
		costs:         costs,
		BatchPages:    32 * 1024,
		HotThreshold:  4,
		ColdThreshold: 1,
	}
}

// sample folds one access-bit observation into a page's heat; with
// write tracking enabled it folds the write bit the same way.
func (s *Scanner) sample(pfn guestos.PFN, referenced bool) {
	h := s.view.ScanHeat(pfn) >> 1
	if referenced {
		h += 4
	}
	s.view.SetScanHeat(pfn, h)
	if s.TrackWrites {
		w := s.view.ScanWriteHeat(pfn) >> 1
		if s.view.TestAndClearWritten(pfn) {
			w += 4
		}
		s.view.SetScanWriteHeat(pfn, w)
	}
}

// Heat reports the tracked heat of pfn.
func (s *Scanner) Heat(pfn guestos.PFN) uint8 { return s.view.ScanHeat(pfn) }

// score combines read heat with (optionally boosted) write heat: on
// asymmetric SlowMem a store-heavy page earns more from FastMem than an
// equally-referenced load-heavy one. Without an active write boost the
// score is the raw heat byte — returned directly so the per-page hot
// path (rankIn sweeps, heat-index bucketing) does no float conversion.
func (s *Scanner) score(pfn guestos.PFN) uint8 {
	if !s.TrackWrites || s.WriteBoost <= 0 {
		return s.view.ScanHeat(pfn)
	}
	h := float64(s.view.ScanHeat(pfn))
	h += s.WriteBoost * float64(s.view.ScanWriteHeat(pfn))
	if h > 255 {
		h = 255
	}
	return uint8(h)
}

// Hot reports whether pfn's heat crosses the threshold.
func (s *Scanner) Hot(pfn guestos.PFN) bool { return s.Heat(pfn) >= s.HotThreshold }

// ScanNext scans the next BatchPages of the whole guest span
// (VMM-exclusive mode: "tracking the entire guest-VM's memory"). With a
// word-capable view the pass consumes access bits 64 pages at a time;
// either way the simulated cost is charged per page scanned.
func (s *Scanner) ScanNext() ScanResult {
	n := uint64(s.BatchPages)
	span := s.view.NumPFNs()
	if n > span {
		n = span
	}
	var res ScanResult
	if s.wordView != nil {
		// The batch may wrap the span end; scan each contiguous run.
		for remaining := n; remaining > 0; {
			start := s.cursor
			end := start + remaining
			if end > span {
				end = span
			}
			s.scanRangeWords(&res, start, end)
			remaining -= end - start
			s.cursor = end
			if s.cursor >= span {
				s.cursor = 0
			}
		}
	} else {
		for i := uint64(0); i < n; i++ {
			pfn := guestos.PFN(s.cursor)
			s.cursor++
			if s.cursor >= span {
				s.cursor = 0
			}
			ref := s.view.TestAndClearAccessed(pfn)
			s.sample(pfn, ref)
			res.Scanned++
			if ref {
				res.Referenced++
			}
		}
	}
	res.CostNs = s.scanCost(res.Scanned)
	if s.obs != nil {
		s.obs.record(res, obs.DirFull)
	}
	return res
}

// scanRangeWords scans PFNs [start, end) through the word view: one
// masked load per 64-page word, folding heat only for pages with state
// to fold (a set access bit, or nonzero heat still decaying — all other
// pages' samples are no-ops by construction). Scanned/Referenced
// accounting matches the per-page path exactly.
func (s *Scanner) scanRangeWords(res *ScanResult, start, end uint64) {
	for w := int(start >> 6); w <= int((end-1)>>6); w++ {
		base := uint64(w) << 6
		lo := uint64(0)
		if start > base {
			lo = start - base
		}
		mask := ^uint64(0) << lo
		if hi := end - base; hi < 64 {
			mask &= 1<<hi - 1
		}
		s.scanWordMasked(res, w, mask)
	}
}

// scanWordMasked performs one word-granular scan step over the pages
// selected by mask in word w.
func (s *Scanner) scanWordMasked(res *ScanResult, w int, mask uint64) {
	wv := s.wordView
	res.Scanned += bits.OnesCount64(mask)
	ref := wv.TakeScanAccessedWord(w, mask)
	res.Referenced += bits.OnesCount64(ref)
	// work is the set of pages whose heat state can change this pass.
	work := ref | wv.ScanHeatNonzeroWord(w, mask)
	var written uint64
	if s.TrackWrites {
		written = wv.TakeScanWrittenWord(w, mask)
		work |= written | wv.ScanWriteHeatNonzeroWord(w, mask)
	}
	base := uint64(w) << 6
	for work != 0 {
		b := uint(bits.TrailingZeros64(work))
		bit := uint64(1) << b
		work &^= bit
		pfn := guestos.PFN(base + uint64(b))
		h := s.view.ScanHeat(pfn) >> 1
		if ref&bit != 0 {
			h += 4
		}
		s.view.SetScanHeat(pfn, h)
		if s.TrackWrites {
			wh := s.view.ScanWriteHeat(pfn) >> 1
			if written&bit != 0 {
				wh += 4
			}
			s.view.SetScanWriteHeat(pfn, wh)
		}
	}
}

// ScanTracked scans only the guest-exported tracking list (coordinated
// mode: "the guest-OS exports a tracking list ... the VMM should track
// for hotness"), which is how coordination shrinks the tracking scope.
func (s *Scanner) ScanTracked(tracked []guestos.PFN) ScanResult {
	var res ScanResult
	n := len(tracked)
	if n == 0 {
		return res
	}
	limit := n
	if s.BatchPages > 0 && limit > s.BatchPages {
		limit = s.BatchPages
	}
	// Rotate through the list across calls. The cursor is a list
	// position, so a growing or shrinking tracked list continues from
	// (roughly) where the last pass stopped instead of re-anchoring.
	if s.trackedPos >= n {
		s.trackedPos %= n
	}
	start := s.trackedPos
	if s.wordView != nil {
		s.scanTrackedWords(&res, tracked, start, limit)
	} else {
		for i := 0; i < limit; i++ {
			pfn := tracked[(start+i)%n]
			ref := s.view.TestAndClearAccessed(pfn)
			s.sample(pfn, ref)
			res.Scanned++
			if ref {
				res.Referenced++
			}
		}
	}
	s.trackedPos = (start + limit) % n
	res.CostNs = s.scanCost(res.Scanned)
	if s.obs != nil {
		s.obs.record(res, obs.DirTracked)
	}
	return res
}

// scanTrackedWords batches adjacent tracked entries that share a 64-page
// word into one masked scan step. Tracking lists are built by ascending
// VMA walks, so runs of neighbours are the common case. The merge never
// reorders or coalesces a repeated PFN: a bit already in the pending
// mask ends the group, so each list entry is scanned (and heat-folded)
// exactly as many times, in the same order, as the per-page path would.
func (s *Scanner) scanTrackedWords(res *ScanResult, tracked []guestos.PFN, start, limit int) {
	n := len(tracked)
	curWord := -1
	var curMask uint64
	for i := 0; i < limit; i++ {
		pfn := tracked[(start+i)%n]
		w := int(pfn >> 6)
		bit := uint64(1) << (pfn & 63)
		if w == curWord && curMask&bit == 0 {
			curMask |= bit
			continue
		}
		if curWord >= 0 {
			s.scanWordMasked(res, curWord, curMask)
		}
		curWord, curMask = w, bit
	}
	if curWord >= 0 {
		s.scanWordMasked(res, curWord, curMask)
	}
}

func (s *Scanner) scanCost(pages int) float64 {
	if pages == 0 {
		return 0
	}
	perPTE := s.costs.PTEScanNs + s.costs.TLBRefillNs
	if s.TrackWrites {
		// Write-bit scanning visits and rewrites the PTE a second time.
		perPTE *= 1.5
	}
	// Ceiling division: a pass of exactly FlushBatchPages needs one
	// flush, not two.
	flushes := (pages + s.costs.FlushBatchPages - 1) / s.costs.FlushBatchPages
	return float64(pages)*perPTE + float64(flushes)*s.costs.TLBFlushNs
}

// rankIn collects pages backed by tier whose score satisfies the
// thresholds (unless ignoreThreshold), ordered by score (desc when
// hotFirst) with PFN tiebreak for determinism, truncated to max.
//
// It is the reference implementation of the ranking semantics: the
// heat-bucket index serves the exported queries when attached, and the
// differential tests assert the two produce identical output. It also
// remains the fallback for scanners without an index (direct Scanner
// use in tests and tools).
func (s *Scanner) rankIn(machine *memsim.Machine, tier memsim.Tier, hotFirst bool, max int, ignoreThreshold bool) []guestos.PFN {
	type entry struct {
		pfn  guestos.PFN
		heat uint8
	}
	var cands []entry
	for pfn := guestos.PFN(0); pfn < guestos.PFN(s.view.NumPFNs()); pfn++ {
		h := s.score(pfn)
		if !ignoreThreshold && hotFirst && h < s.HotThreshold {
			continue
		}
		if !ignoreThreshold && !hotFirst && h > s.ColdThreshold {
			continue
		}
		snap := s.view.Snapshot(pfn)
		if snap.MFN == memsim.NilMFN {
			continue
		}
		if snap.Free && s.TrustGuestState {
			continue
		}
		if machine.TierOf(snap.MFN) != tier {
			continue
		}
		cands = append(cands, entry{pfn, h})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].heat != cands[j].heat {
			if hotFirst {
				return cands[i].heat > cands[j].heat
			}
			return cands[i].heat < cands[j].heat
		}
		return cands[i].pfn < cands[j].pfn
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]guestos.PFN, len(cands))
	for i, c := range cands {
		out[i] = c.pfn
	}
	return out
}

// HottestIn returns up to max tracked-hot pages currently backed by
// tier, hottest first (stable order for determinism). With a heat-bucket
// index attached the result is served allocation-free from a reusable
// buffer, valid until the next HottestIn call.
func (s *Scanner) HottestIn(machine *memsim.Machine, tier memsim.Tier, max int) []guestos.PFN {
	if s.phases != nil {
		t0 := time.Now()
		out := s.hottestIn(machine, tier, max)
		s.phases.ObserveWallSince(obs.PhaseRank, t0)
		return out
	}
	return s.hottestIn(machine, tier, max)
}

func (s *Scanner) hottestIn(machine *memsim.Machine, tier memsim.Tier, max int) []guestos.PFN {
	if s.index != nil {
		s.hotBuf = s.index.descendInto(s.hotBuf[:0], tier, s.HotThreshold, s.TrustGuestState, max)
		return s.hotBuf
	}
	return s.rankIn(machine, tier, true, max, false)
}

// ColdestIn returns up to max minimum-heat pages backed by tier,
// coldest first. With an index attached the result shares CoolestIn's
// reusable buffer, valid until the next ColdestIn/CoolestIn call.
func (s *Scanner) ColdestIn(machine *memsim.Machine, tier memsim.Tier, max int) []guestos.PFN {
	if s.phases != nil {
		t0 := time.Now()
		out := s.coldestIn(machine, tier, max)
		s.phases.ObserveWallSince(obs.PhaseRank, t0)
		return out
	}
	return s.coldestIn(machine, tier, max)
}

func (s *Scanner) coldestIn(machine *memsim.Machine, tier memsim.Tier, max int) []guestos.PFN {
	if s.index != nil {
		s.coldBuf = s.index.ascendInto(s.coldBuf[:0], tier, s.ColdThreshold, s.TrustGuestState, max)
		return s.coldBuf
	}
	return s.rankIn(machine, tier, false, max, false)
}

// CoolestIn returns up to max pages backed by tier in ascending score
// order with no threshold filter. The write-aware coordinator uses it
// when nothing is absolutely cold: on asymmetric memory a read-hot page
// can still be the right page to displace for a write-hot one, and the
// heat margin decides case by case.
func (s *Scanner) CoolestIn(machine *memsim.Machine, tier memsim.Tier, max int) []guestos.PFN {
	if s.phases != nil {
		t0 := time.Now()
		out := s.coolestIn(machine, tier, max)
		s.phases.ObserveWallSince(obs.PhaseRank, t0)
		return out
	}
	return s.coolestIn(machine, tier, max)
}

func (s *Scanner) coolestIn(machine *memsim.Machine, tier memsim.Tier, max int) []guestos.PFN {
	if s.index != nil {
		s.coldBuf = s.index.ascendInto(s.coldBuf[:0], tier, numHeatBuckets-1, s.TrustGuestState, max)
		return s.coldBuf
	}
	return s.rankIn(machine, tier, false, max, true)
}

// AdaptiveInterval implements Equation 1: the scan/migration interval
// shrinks when LLC misses rise epoch-over-epoch and grows when they
// fall, clamped to [Min, Max]. HeteroOS-coordinated varies the interval
// from 50 ms to 1 s (Section 5.4).
type AdaptiveInterval struct {
	Min, Max sim.Duration
	cur      sim.Duration
	lastMiss float64
	primed   bool
}

// NewAdaptiveInterval starts at start within [min, max].
func NewAdaptiveInterval(min, max, start sim.Duration) *AdaptiveInterval {
	a := &AdaptiveInterval{Min: min, Max: max, cur: start}
	a.clamp()
	return a
}

func (a *AdaptiveInterval) clamp() {
	if a.cur < a.Min {
		a.cur = a.Min
	}
	if a.cur > a.Max {
		a.cur = a.Max
	}
}

// Current reports the interval in force.
func (a *AdaptiveInterval) Current() sim.Duration { return a.cur }

// Update folds the epoch's LLC miss count:
//
//	ΔLLCMiss = (miss_i − miss_{i−1}) / miss_{i−1}
//	Interval = Interval − ΔLLCMiss × Interval
func (a *AdaptiveInterval) Update(llcMisses float64) sim.Duration {
	if !a.primed {
		a.primed = true
		a.lastMiss = llcMisses
		return a.cur
	}
	if a.lastMiss > 0 {
		delta := (llcMisses - a.lastMiss) / a.lastMiss
		a.cur = a.cur - sim.Duration(delta*float64(a.cur))
		a.clamp()
	}
	a.lastMiss = llcMisses
	return a.cur
}
