package vmm

import (
	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
)

// MigrateCosts prices VMM-level page movement, matching Table 6's
// per-page walk + copy costs with batch amortisation.
type MigrateCosts struct {
	// BatchPages selects the amortisation point of Table 6, in real
	// (unscaled) pages.
	BatchPages int
	// TLBFlushNs per batch after remapping.
	TLBFlushNs float64
	// CostScale is the capacity scale factor: one simulated page move
	// stands for CostScale real page moves (default 1).
	CostScale float64
}

// DefaultMigrateCosts uses Table 6's 64K-page batch (HeteroVisor batches
// its tracking and migration work).
func DefaultMigrateCosts() MigrateCosts {
	return MigrateCosts{BatchPages: 64 * 1024, TLBFlushNs: 12000, CostScale: 1}
}

// perPageNs returns walk+copy cost per simulated page at the configured
// batch.
func (c MigrateCosts) perPageNs() float64 {
	walk, cp := guestos.MigrationBatchCosts(c.BatchPages)
	scale := c.CostScale
	if scale <= 0 {
		scale = 1
	}
	return (walk + cp) * scale
}

// MigrateStats reports one rebalance pass.
type MigrateStats struct {
	Promoted int // slow→fast moves
	Demoted  int // fast→slow moves (evictions of LRU-cold hot pages)
	CostNs   float64
}

// Migrator is the VMM-exclusive (HeteroVisor) migration engine: after a
// hotness scan it promotes hot SlowMem-backed pages into FastMem and
// evicts the least-recently-hot FastMem pages to make room. It operates
// entirely on backing frames (SetBackingMFN) — the guest never knows —
// which is precisely why it cannot see page deallocations or short-lived
// I/O pages (Observation 5's critique).
type Migrator struct {
	costs MigrateCosts
	// obs, when attached, carries the migrator's observability probes.
	obs *migratorProbes
}

// NewMigrator builds a migrator.
func NewMigrator(costs MigrateCosts) *Migrator {
	return &Migrator{costs: costs}
}

// Rebalance promotes up to maxMoves hot SlowMem pages of vm into
// FastMem. When FastMem is full it frees room by demoting the coldest
// FastMem-backed pages first. Every byte moved is charged.
func (g *Migrator) Rebalance(vm *VM, scanner *Scanner, maxMoves int) MigrateStats {
	var st MigrateStats
	machine := vm.vmm.Machine
	// hot and the per-iteration cold lookups below are served from the
	// scanner's separate hot/cold scratch buffers, so hot stays valid
	// while ColdestIn is re-issued inside the loop.
	hot := scanner.HottestIn(machine, memsim.SlowMem, maxMoves)
	if len(hot) == 0 {
		return st
	}
	perPage := g.costs.perPageNs()

	for _, pfn := range hot {
		// Ensure a free FastMem frame, demoting a cold page if needed.
		if machine.FreeFrames(memsim.FastMem) == 0 {
			cold := scanner.ColdestIn(machine, memsim.FastMem, 1)
			if len(cold) == 0 {
				break // FastMem full of hot pages: stop promoting
			}
			if !g.moveBacking(vm, cold[0], memsim.SlowMem) {
				break // SlowMem exhausted too
			}
			st.Demoted++
			st.CostNs += perPage
			if g.obs != nil {
				g.obs.move(obs.DirVMMDemote, obs.TierSlow, uint64(cold[0]), perPage)
			}
		}
		if !g.moveBacking(vm, pfn, memsim.FastMem) {
			break
		}
		st.Promoted++
		st.CostNs += perPage
		if g.obs != nil {
			g.obs.move(obs.DirVMMPromote, obs.TierFast, uint64(pfn), perPage)
		}
	}
	if moves := st.Promoted + st.Demoted; moves > 0 {
		scale := g.costs.CostScale
		if scale <= 0 {
			scale = 1
		}
		realMoves := float64(moves) * scale
		st.CostNs += (1 + realMoves/float64(g.costs.BatchPages)) * g.costs.TLBFlushNs
	}
	return st
}

// moveBacking swaps pfn's backing frame to a free frame of tier, biasing
// the scan history the same way guest migrations do (promoted pages
// arrive presumed-hot, demoted presumed-cold) so a moved page needs
// fresh evidence before moving back.
func (g *Migrator) moveBacking(vm *VM, pfn guestos.PFN, tier memsim.Tier) bool {
	snap := vm.View.Snapshot(pfn)
	if snap.MFN == memsim.NilMFN {
		return false
	}
	newMFN, ok := vm.allocForMigration(tier)
	if !ok {
		return false
	}
	vm.View.SetBackingMFN(pfn, newMFN)
	vm.freeFromMigration(snap.MFN)
	if tier == memsim.FastMem {
		vm.View.SetScanHeat(pfn, 8)
	} else {
		vm.View.SetScanHeat(pfn, 0)
	}
	return true
}

// CoordinatedStats reports one coordinated pass.
type CoordinatedStats struct {
	Scanned   int
	Hot       int
	Promoted  int
	Demoted   int
	ScanNs    float64
	MigrateNs float64
}

// GuestMigrator is the guest-side executor the coordinated path hands
// hot pages to ("the actual migrations are performed in the guest-OS").
// *guestos.OS satisfies it.
type GuestMigrator interface {
	PromotePage(pfn guestos.PFN) bool
	DemotePage(pfn guestos.PFN) bool
	// DemotePageForSwap skips the guest's recency guard (the tracker's
	// score margin justified displacing an actively used page).
	DemotePageForSwap(pfn guestos.PFN) bool
}

// coordHeatMargin is the minimum heat advantage a SlowMem page must have
// over the FastMem page it would displace: migrating near-ties would
// cost two page moves for no expected benefit.
const coordHeatMargin = 3

// CoordinatedPass runs one coordinated tracking+migration round: the
// guest exports its tracking list, the VMM scans only those pages, ranks
// the hottest SlowMem-resident against the coldest FastMem-resident
// pages, and the guest performs the validated swaps (promotion displaces
// a colder page when FastMem has no free headroom). The scan cost is
// charged to the VM (the stall is on its vCPUs); migration costs are
// charged inside the guest.
func CoordinatedPass(vm *VM, scanner *Scanner, guest GuestMigrator, maxMoves int) CoordinatedStats {
	var st CoordinatedStats
	tracked := vm.View.TrackingList()
	res := scanner.ScanTracked(tracked)
	st.Scanned = res.Scanned
	st.ScanNs = res.CostNs
	if maxMoves <= 0 {
		return st
	}

	machine := vm.vmm.Machine
	// hot/cold live in the scanner's polarity-separated scratch buffers:
	// both lists are held simultaneously, and CoolestIn below may
	// overwrite cold (same polarity) but never hot.
	hot := scanner.HottestIn(machine, memsim.SlowMem, maxMoves)
	st.Hot = len(hot)
	if len(hot) == 0 {
		return st
	}
	cold := scanner.ColdestIn(machine, memsim.FastMem, len(hot))
	demote := guest.DemotePage
	margin := coordHeatMargin
	if len(cold) == 0 && scanner.TrackWrites && scanner.WriteBoost > 0 {
		// Write-aware mode: with no absolutely cold FastMem pages, rank
		// every resident page by score and let the margin decide whether
		// displacing a read-hot page for a write-hot one pays. The
		// guest's recency guard yields to the score margin, which is
		// tripled here — both pages are live, so only a decisive
		// store-intensity gap justifies paying for two moves.
		cold = scanner.CoolestIn(machine, memsim.FastMem, len(hot))
		demote = guest.DemotePageForSwap
		margin = 3 * coordHeatMargin
	}
	ci := 0
	for _, pfn := range hot {
		// Every promotion is paired with a demotion of a decisively
		// colder page: capacity-neutral swaps never steal the free
		// headroom the allocator's on-demand placement depends on
		// (placement first, migration second — Principle 2 before 3).
		displaced := false
		for ci < len(cold) {
			victim := cold[ci]
			if int(scanner.score(pfn)) < int(scanner.score(victim))+margin {
				ci = len(cold) // remaining pairs are even less favourable
				break
			}
			ci++
			if demote(victim) {
				st.Demoted++
				displaced = true
				break
			}
		}
		if !displaced {
			break
		}
		if guest.PromotePage(pfn) {
			st.Promoted++
		}
	}
	return st
}
