package vmm

import (
	"heteroos/internal/drf"
	"heteroos/internal/sim"
	"heteroos/internal/snapshot"
)

// SnapshotState serializes a VM's VMM-side mutable state (grant counters
// and the populate-refusal fault latch). The guest hooks (Balloon, View)
// are rebound at restore by re-booting the guest.
func (v *VM) SnapshotState(e *snapshot.Encoder) {
	for _, g := range v.granted {
		e.U64(g)
	}
	e.Bool(v.RefusePopulate)
}

// RestoreState overwrites the VM's grant counters and fault latch.
func (v *VM) RestoreState(d *snapshot.Decoder) error {
	for t := range v.granted {
		v.granted[t] = d.U64()
	}
	v.RefusePopulate = d.Bool()
	return d.Err()
}

// SnapshotState serializes the scanner's cursors. The heat index is not
// serialized: it is a pure function of guest page state (CheckInvariants
// pins that), so the restorer re-attaches a freshly rebuilt index.
func (s *Scanner) SnapshotState(e *snapshot.Encoder) {
	e.U64(s.cursor)
	e.Int(s.trackedPos)
}

// RestoreState overwrites the scanner's cursors.
func (s *Scanner) RestoreState(d *snapshot.Decoder) error {
	s.cursor = d.U64()
	s.trackedPos = d.Int()
	return d.Err()
}

// SnapshotState serializes the controller's feedback state.
func (a *AdaptiveInterval) SnapshotState(e *snapshot.Encoder) {
	e.I64(int64(a.cur))
	e.F64(a.lastMiss)
	e.Bool(a.primed)
}

// RestoreState overwrites the controller's feedback state.
func (a *AdaptiveInterval) RestoreState(d *snapshot.Decoder) error {
	a.cur = sim.Duration(d.I64())
	a.lastMiss = d.F64()
	a.primed = d.Bool()
	return d.Err()
}

// DRFAllocator exposes the underlying weighted-DRF allocator so
// checkpoint code can serialize its share book. Nil for non-DRF
// policies (which are stateless).
func (p *DRFShare) DRFAllocator() *drf.Allocator { return p.alloc }
