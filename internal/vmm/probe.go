package vmm

import "heteroos/internal/obs"

// scannerProbes is the hotness scanner's preregistered instrument set.
type scannerProbes struct {
	scope      *obs.Scope
	passes     *obs.Counter
	scanned    *obs.Counter
	referenced *obs.Counter
	costNs     *obs.Histogram
}

// AttachObs wires the scanner's probes into scope. Call once at boot;
// a nil scope leaves observability off.
func (s *Scanner) AttachObs(scope *obs.Scope) {
	if scope == nil {
		return
	}
	s.obs = &scannerProbes{
		scope:      scope,
		passes:     scope.Counter("vmm.scan_passes"),
		scanned:    scope.Counter("vmm.pages_scanned"),
		referenced: scope.Counter("vmm.pages_referenced"),
		costNs:     scope.Histogram("vmm.scan_pass_ns"),
	}
}

// AttachPhases wires the epoch phase profiler into the scanner's
// ranking queries: HottestIn/ColdestIn/CoolestIn wall time lands in
// the rank phase, which is how ranking cost is attributed in both
// migration modes (the VMM-exclusive rebalance and the coordinated
// pass both rank through the scanner). A nil profiler leaves the
// queries untimed.
func (s *Scanner) AttachPhases(p *obs.PhaseProfiler) {
	s.phases = p
}

// record accounts one finished scan pass and emits its event (the pass
// is the unit here, not the page: a per-page event would be pure ring
// pressure with no analytical value).
func (p *scannerProbes) record(res ScanResult, dir obs.Dir) {
	p.passes.Inc()
	p.scanned.Add(uint64(res.Scanned))
	p.referenced.Add(uint64(res.Referenced))
	p.costNs.Observe(res.CostNs)
	p.scope.Emit(obs.EvScanPass, dir, obs.TierNone,
		0, uint64(res.Scanned), uint64(res.Referenced), res.CostNs)
}

// migratorProbes is the VMM-exclusive migrator's instrument set.
type migratorProbes struct {
	scope    *obs.Scope
	promoted *obs.Counter
	demoted  *obs.Counter
}

// AttachObs wires the migrator's probes into scope.
func (g *Migrator) AttachObs(scope *obs.Scope) {
	if scope == nil {
		return
	}
	g.obs = &migratorProbes{
		scope:    scope,
		promoted: scope.Counter("vmm.migrate_promoted"),
		demoted:  scope.Counter("vmm.migrate_demoted"),
	}
}

// move accounts one VMM-executed backing move.
func (p *migratorProbes) move(dir obs.Dir, tier uint8, pfn uint64, costNs float64) {
	if dir == obs.DirVMMPromote {
		p.promoted.Inc()
	} else {
		p.demoted.Inc()
	}
	p.scope.Emit(obs.EvMigration, dir, tier, pfn, 1, 0, costNs)
}

// drfProbes is the DRF share policy's instrument set. It lives on the
// system scope (VM 0): rebalancing is a cross-VM action.
type drfProbes struct {
	scope      *obs.Scope
	rebalances *obs.Counter
	ballooned  *obs.Counter
}

// AttachObs wires the DRF policy's probes into scope (use the system
// scope: events carry the victim VM in Aux).
func (d *DRFShare) AttachObs(scope *obs.Scope) {
	if scope == nil {
		return
	}
	d.obs = &drfProbes{
		scope:      scope,
		rebalances: scope.Counter("vmm.drf_rebalances"),
		ballooned:  scope.Counter("vmm.drf_ballooned_pages"),
	}
}
