package vmm

import (
	"fmt"
	"math/rand"
	"testing"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
)

// assertRankingsMatch cross-checks every exported ranking query against
// the retained rankIn reference for both tiers and several truncation
// points, then validates the index's internal invariants.
func assertRankingsMatch(t *testing.T, sc *Scanner, machine *memsim.Machine, step string) {
	t.Helper()
	if sc.index == nil {
		t.Fatalf("%s: scanner has no index attached", step)
	}
	if err := sc.index.CheckInvariants(); err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	for _, tier := range []memsim.Tier{memsim.FastMem, memsim.SlowMem} {
		for _, max := range []int{1, 7, 64, 1 << 20} {
			// Copy index-served results: they live in reusable buffers.
			got := append([]guestos.PFN(nil), sc.HottestIn(machine, tier, max)...)
			comparePFNs(t, step, "HottestIn", tier, max, got, sc.rankIn(machine, tier, true, max, false))
			got = append([]guestos.PFN(nil), sc.ColdestIn(machine, tier, max)...)
			comparePFNs(t, step, "ColdestIn", tier, max, got, sc.rankIn(machine, tier, false, max, false))
			got = append([]guestos.PFN(nil), sc.CoolestIn(machine, tier, max)...)
			comparePFNs(t, step, "CoolestIn", tier, max, got, sc.rankIn(machine, tier, false, max, true))
		}
	}
}

func comparePFNs(t *testing.T, step, query string, tier memsim.Tier, max int, got, want []guestos.PFN) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s(tier %v, max %d): index returned %d pages, sweep %d\nindex: %v\nsweep: %v",
			step, query, tier, max, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: %s(tier %v, max %d): position %d differs: index %d, sweep %d\nindex: %v\nsweep: %v",
				step, query, tier, max, i, got[i], want[i], got, want)
		}
	}
}

// TestHeatIndexDifferentialTransparent drives a transparent (non-aware)
// guest through random touches, scans, VMM-exclusive migrations and
// mmap/munmap churn, asserting after every step that the index-served
// rankings are identical to the sweep-and-sort reference.
func TestHeatIndexDifferentialTransparent(t *testing.T) {
	machine := newMachine(256, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 256
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "vmm-excl"}, 64, 960, 64, 960)

	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	os.SetPageIndexer(NewHeatIndex(sc, machine.TierOf))
	mig := NewMigrator(DefaultMigrateCosts())

	vma, err := os.AS.Mmap(400, guestos.KindAnon, guestos.NilFile)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	assertRankingsMatch(t, sc, machine, "boot")
	for step := 0; step < 48; step++ {
		switch rng.Intn(4) {
		case 0: // touch a random batch of the main mapping
			for i := 0; i < 32; i++ {
				vpn := vma.Start + guestos.VPN(rng.Intn(int(vma.Pages)))
				os.TouchVPN(vpn, uint64(1+rng.Intn(4)), uint64(rng.Intn(2)))
			}
		case 1: // full-span scan pass (decays + re-heats)
			sc.ScanNext()
		case 2: // VMM-exclusive migration (SetBackingMFN path)
			mig.Rebalance(vm, sc, 16)
		case 3: // map/unmap churn (populate + freePage paths)
			v2, err := os.AS.Mmap(uint64(8+rng.Intn(32)), guestos.KindAnon, guestos.NilFile)
			if err == nil {
				for i := uint64(0); i < v2.Pages; i++ {
					os.TouchVPN(v2.Start+guestos.VPN(i), 1, 0)
				}
				if rng.Intn(2) == 0 {
					os.AS.Munmap(v2.ID)
				}
			}
		}
		assertRankingsMatch(t, sc, machine, fmt.Sprintf("step %d", step))
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHeatIndexDifferentialCoordinated drives an aware guest through
// coordinated passes, epoch maintenance (watermark reclaim, HeteroLRU
// balance, guest-driven inter-node moves) and ballooning, with
// TrustGuestState on so the free-page filter is exercised.
func TestHeatIndexDifferentialCoordinated(t *testing.T) {
	machine := newMachine(512, 2048)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 512
	spec.MaxPages[memsim.SlowMem] = 2048
	vm, _ := m.CreateVM(spec)
	pl := guestos.PlacementConfig{Name: "coord", OnDemand: true, HeteroLRU: true}
	pl.FastKinds[guestos.KindAnon] = true
	os := bootGuest(t, m, vm, true, pl, 256, 2048, 128, 1024)

	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = 64 * 1024
	sc.TrustGuestState = true
	os.SetPageIndexer(NewHeatIndex(sc, machine.TierOf))

	vma, err := os.AS.Mmap(600, guestos.KindAnon, guestos.NilFile)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	assertRankingsMatch(t, sc, machine, "boot")
	for step := 0; step < 40; step++ {
		switch rng.Intn(5) {
		case 0: // touches (on-demand faults populate as they go)
			for i := 0; i < 48; i++ {
				vpn := vma.Start + guestos.VPN(rng.Intn(int(vma.Pages)))
				os.TouchVPN(vpn, uint64(1+rng.Intn(3)), 0)
			}
		case 1: // coordinated scan + guest-driven migration
			CoordinatedPass(vm, sc, os, 32)
		case 2: // watermark reclaim + LRU balance (movePageAcrossNodes)
			os.EndEpoch()
		case 3: // balloon deflate: releaseFreeFrames + reclaim
			n := os.Node(memsim.SlowMem)
			if pop := n.Populated(); pop > 64 {
				os.BalloonTarget(memsim.SlowMem, pop-uint64(16+rng.Intn(32)))
			}
		case 4:
			sc.ScanTracked(os.TrackingList())
		}
		assertRankingsMatch(t, sc, machine, fmt.Sprintf("step %d", step))
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHeatIndexDifferentialWriteAware repeats the differential check
// with write tracking and a write boost, so bucket assignment exercises
// the combined read+write score.
func TestHeatIndexDifferentialWriteAware(t *testing.T) {
	machine := newMachine(64, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "nvm"}, 0, 1024, 0, 1024)
	_ = vm

	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	sc.TrackWrites = true
	sc.WriteBoost = 3
	os.SetPageIndexer(NewHeatIndex(sc, machine.TierOf))

	vma, err := os.AS.Mmap(64, guestos.KindAnon, guestos.NilFile)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 24; step++ {
		for i := 0; i < 16; i++ {
			vpn := vma.Start + guestos.VPN(rng.Intn(int(vma.Pages)))
			os.TouchVPN(vpn, uint64(rng.Intn(4)), uint64(rng.Intn(4)))
		}
		sc.ScanNext()
		assertRankingsMatch(t, sc, machine, fmt.Sprintf("step %d", step))
	}
}

// TestHeatIndexQueriesZeroAlloc asserts the index-served ranking queries
// are allocation-free once the scratch buffers have warmed up — the
// point of the exercise for the epoch hot path.
func TestHeatIndexQueriesZeroAlloc(t *testing.T) {
	machine := newMachine(256, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 256
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "vmm-excl"}, 64, 960, 64, 960)
	_ = vm

	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	os.SetPageIndexer(NewHeatIndex(sc, machine.TierOf))

	vma, _ := os.AS.Mmap(300, guestos.KindAnon, guestos.NilFile)
	for round := 0; round < 3; round++ {
		for i := 0; i < 300; i++ {
			os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
		}
		sc.ScanNext()
	}

	const max = 256
	queries := map[string]func(){
		"HottestIn": func() { sc.HottestIn(machine, memsim.SlowMem, max) },
		"ColdestIn": func() { sc.ColdestIn(machine, memsim.SlowMem, max) },
		"CoolestIn": func() { sc.CoolestIn(machine, memsim.SlowMem, max) },
	}
	for name, fn := range queries {
		fn() // warm the scratch buffer
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s allocates %v per op with index attached, want 0", name, n)
		}
	}
}

// TestScanCostFlushRounding pins the TLB-flush count to ceiling
// division: a pass of exactly FlushBatchPages pages is one flush, one
// page past it is two, and any non-empty pass is at least one.
func TestScanCostFlushRounding(t *testing.T) {
	s := &Scanner{costs: ScanCosts{TLBFlushNs: 1000, FlushBatchPages: 512}}
	cases := []struct {
		pages int
		want  float64
	}{
		{0, 0},
		{1, 1000},
		{511, 1000},
		{512, 1000},
		{513, 2000},
		{1024, 2000},
		{1025, 3000},
	}
	for _, c := range cases {
		if got := s.scanCost(c.pages); got != c.want {
			t.Errorf("scanCost(%d) = %v ns, want %v", c.pages, got, c.want)
		}
	}
}

// stubView is a minimal GuestView that records the order pages are
// sampled in.
type stubView struct {
	span    uint64
	heat    []uint8
	wheat   []uint8
	scanned []guestos.PFN
}

func newStubView(span uint64) *stubView {
	return &stubView{span: span, heat: make([]uint8, span), wheat: make([]uint8, span)}
}

func (v *stubView) NumPFNs() uint64 { return v.span }
func (v *stubView) TestAndClearAccessed(pfn guestos.PFN) bool {
	v.scanned = append(v.scanned, pfn)
	return false
}
func (v *stubView) Snapshot(pfn guestos.PFN) guestos.PageSnapshot { return guestos.PageSnapshot{} }
func (v *stubView) SetBackingMFN(pfn guestos.PFN, mfn memsim.MFN) {}
func (v *stubView) TrackingList() []guestos.PFN                   { return nil }
func (v *stubView) ScanHeat(pfn guestos.PFN) uint8                { return v.heat[pfn] }
func (v *stubView) SetScanHeat(pfn guestos.PFN, h uint8)          { v.heat[pfn] = h }
func (v *stubView) TestAndClearWritten(pfn guestos.PFN) bool      { return false }
func (v *stubView) ScanWriteHeat(pfn guestos.PFN) uint8           { return v.wheat[pfn] }
func (v *stubView) SetScanWriteHeat(pfn guestos.PFN, h uint8)     { v.wheat[pfn] = h }

// TestScanTrackedRotation verifies that the tracked-list cursor is a
// list position: batches rotate through the whole list, and when the
// list grows or shrinks between passes the scan continues from where it
// stopped instead of re-anchoring (a monotone counter taken mod len
// re-scans the head and starves the tail whenever the length changes).
func TestScanTrackedRotation(t *testing.T) {
	v := newStubView(64)
	sc := NewScanner(v, DefaultScanCosts())
	sc.BatchPages = 4

	mkList := func(n int) []guestos.PFN {
		l := make([]guestos.PFN, n)
		for i := range l {
			l[i] = guestos.PFN(i)
		}
		return l
	}
	scan := func(list []guestos.PFN) []guestos.PFN {
		v.scanned = v.scanned[:0]
		sc.ScanTracked(list)
		return append([]guestos.PFN(nil), v.scanned...)
	}
	expect := func(step string, got, want []guestos.PFN) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: scanned %v, want %v", step, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: scanned %v, want %v", step, got, want)
			}
		}
	}

	list := mkList(10)
	expect("pass 1", scan(list), []guestos.PFN{0, 1, 2, 3})
	expect("pass 2", scan(list), []guestos.PFN{4, 5, 6, 7})
	expect("pass 3 (wrap)", scan(list), []guestos.PFN{8, 9, 0, 1})

	// Growing the list must continue from position 2, not re-anchor.
	list = mkList(15)
	expect("after grow", scan(list), []guestos.PFN{2, 3, 4, 5})

	// Shrinking below the cursor wraps the position into range.
	list = mkList(3)
	expect("after shrink", scan(list), []guestos.PFN{0, 1, 2})

	// Empty list is a no-op and must not disturb the cursor state.
	if res := sc.ScanTracked(nil); res.Scanned != 0 || res.CostNs != 0 {
		t.Fatalf("empty tracked list scanned %d pages, cost %v", res.Scanned, res.CostNs)
	}
}
