package vmm

import (
	"testing"

	"heteroos/internal/memsim"
)

func TestSharePolicyNames(t *testing.T) {
	if (StaticShare{}).Name() != "static" {
		t.Error("static name wrong")
	}
	if (MaxMinShare{}).Name() != "max-min" {
		t.Error("max-min name wrong")
	}
	d, err := NewDRFShare(newMachine(16, 16), DefaultDRFWeights())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "weighted-DRF" {
		t.Error("DRF name wrong")
	}
}

func TestDefaultDRFWeights(t *testing.T) {
	w := DefaultDRFWeights()
	if w[memsim.FastMem] != 2 || w[memsim.SlowMem] != 1 {
		t.Fatalf("weights = %v, want the paper's 2/1", w)
	}
}

func TestStaticShareBoundedByFreeFrames(t *testing.T) {
	machine := newMachine(8, 8)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 64
	spec.MaxPages[memsim.SlowMem] = 64
	vm, _ := m.CreateVM(spec)
	if got := vm.Populate(memsim.FastMem, 100); len(got) != 8 {
		t.Fatalf("granted %d, want all 8 free frames", len(got))
	}
	if got := vm.Populate(memsim.FastMem, 1); len(got) != 0 {
		t.Fatalf("granted %d from an empty tier", len(got))
	}
}

func TestDRFShareDominantShareUnknownVM(t *testing.T) {
	d, _ := NewDRFShare(newMachine(16, 16), DefaultDRFWeights())
	if d.DominantShare(42) != 0 {
		t.Fatal("unknown VM must report zero share")
	}
}

func TestDRFBalloonRespectsReservationFloor(t *testing.T) {
	machine := newMachine(64, 256)
	share, _ := NewDRFShare(machine, DefaultDRFWeights())
	m := New(machine, share)
	mk := func(id VMID, resSlow uint64) *VM {
		spec := VMSpec{ID: id}
		spec.Reserved[memsim.SlowMem] = resSlow
		spec.MaxPages[memsim.FastMem] = 64
		spec.MaxPages[memsim.SlowMem] = 256
		vm, err := m.CreateVM(spec)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	victim := mk(1, 128)
	asker := mk(2, 64)
	// The victim's guest holds its reservation entirely as free pages.
	vb := &recordingBalloon{vm: victim}
	victim.Balloon = vb
	victim.Populate(memsim.SlowMem, 256) // all of SlowMem
	// Asker requests SlowMem: DRF balloons the dominant victim but the
	// target passed to the balloon never dips below the reservation.
	asker.Populate(memsim.SlowMem, 64)
	if vb.minTarget < victim.Spec.Reserved[memsim.SlowMem] {
		t.Fatalf("balloon target %d dipped below reservation %d",
			vb.minTarget, victim.Spec.Reserved[memsim.SlowMem])
	}
}

// recordingBalloon releases frames like a guest with everything free,
// recording the lowest target it was asked for.
type recordingBalloon struct {
	vm        *VM
	minTarget uint64
	primed    bool
}

func (b *recordingBalloon) BalloonTarget(t memsim.Tier, target uint64) uint64 {
	if !b.primed || target < b.minTarget {
		b.minTarget = target
		b.primed = true
	}
	// The policy only consults the return value; frame movement is
	// covered by the integration tests. Report the would-be release.
	if have := b.vm.Granted(t); have > target {
		return have - target
	}
	return 0
}
