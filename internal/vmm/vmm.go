// Package vmm implements the hypervisor side of HeteroOS (Sections 4.1
// and 4.2): per-VM machine-frame management with balloon back-ends, the
// access-bit hotness scanner with its TLB-flush cost model, the
// VMM-exclusive (HeteroVisor-style) migration engine used as the
// baseline, the guest-guided coordinated tracking mode, and pluggable
// multi-VM share policies (static, single-resource max-min, and weighted
// DRF).
package vmm

import (
	"fmt"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
)

// VMID identifies a guest VM. It doubles as the machine frame owner id.
type VMID int32

// VMSpec describes a VM's memory contract: the boot-time reservation
// ("minimum capacity that is reserved during the boot"), the overcommit
// ceiling ("maximum capacity that can be dynamically allocated"), and
// the per-tier weights used by weighted DRF.
type VMSpec struct {
	ID       VMID
	Reserved [memsim.NumTiers]uint64
	MaxPages [memsim.NumTiers]uint64
}

// BalloonDriver is the guest-side balloon front-end the VMM calls to
// reclaim memory. *guestos.OS implements it.
type BalloonDriver interface {
	BalloonTarget(t memsim.Tier, targetPages uint64) uint64
}

// GuestView is the guest state the VMM can observe and manipulate:
// access bits (via the hardware page table in the real system), page
// snapshots, backing-frame swaps (transparent migration), and the
// coordinated-mode tracking list. *guestos.OS implements it.
type GuestView interface {
	NumPFNs() uint64
	TestAndClearAccessed(pfn guestos.PFN) bool
	Snapshot(pfn guestos.PFN) guestos.PageSnapshot
	SetBackingMFN(pfn guestos.PFN, mfn memsim.MFN)
	TrackingList() []guestos.PFN
	// ScanHeat/SetScanHeat store the scanner's hotness history in the
	// page metadata so it follows pages across guest migrations.
	ScanHeat(pfn guestos.PFN) uint8
	SetScanHeat(pfn guestos.PFN, h uint8)
	// Write-activity tracking for the write-aware extension.
	TestAndClearWritten(pfn guestos.PFN) bool
	ScanWriteHeat(pfn guestos.PFN) uint8
	SetScanWriteHeat(pfn guestos.PFN, h uint8)
}

// WordScanView is the optional word-at-a-time extension of GuestView:
// views whose access bits live in packed bitmaps (the struct-of-arrays
// page store) expose 64 pages' worth per load, and the scanner consumes
// whole words — skipping all-zero ones — instead of issuing a per-page
// TestAndClearAccessed. In every method, word w covers PFNs
// [w*64, w*64+64) and bit i of mask (and of the result) stands for PFN
// w*64+i. The scanner detects the interface with a type assertion and
// falls back to the per-page GuestView calls when it is absent.
type WordScanView interface {
	// TakeScanAccessedWord returns and clears the scan-accessed bits of
	// word w under mask (batched test-and-clear).
	TakeScanAccessedWord(w int, mask uint64) uint64
	// ScanHeatNonzeroWord reports which pages of word w hold nonzero
	// scan heat: pages the scan must still visit to decay, even when
	// unreferenced.
	ScanHeatNonzeroWord(w int, mask uint64) uint64
	// TakeScanWrittenWord / ScanWriteHeatNonzeroWord are the write-bit
	// equivalents, used when write tracking is on.
	TakeScanWrittenWord(w int, mask uint64) uint64
	ScanWriteHeatNonzeroWord(w int, mask uint64) uint64
}

// The guest OS implements both views.
var (
	_ GuestView    = (*guestos.OS)(nil)
	_ WordScanView = (*guestos.OS)(nil)
)

// VM is the hypervisor's per-guest state.
type VM struct {
	Spec    VMSpec
	vmm     *VMM
	granted [memsim.NumTiers]uint64
	// Guest hooks, bound after the guest boots.
	Balloon BalloonDriver
	View    GuestView
	// RefusePopulate is the fault-injection hook: while set, the balloon
	// back-end refuses every populate request from this VM (the guest
	// sees a zero grant and surfaces it as a balloon-refused shortfall).
	RefusePopulate bool
}

// Granted reports the frames currently granted to the VM in tier t.
func (v *VM) Granted(t memsim.Tier) uint64 { return v.granted[t] }

// owner converts the VM id to a machine owner tag.
func (v *VM) owner() memsim.Owner { return memsim.Owner(v.Spec.ID) }

// VMM is the hypervisor.
type VMM struct {
	Machine *memsim.Machine
	share   SharePolicy
	vms     map[VMID]*VM
	order   []VMID
}

// New builds a VMM over machine with the given share policy.
func New(machine *memsim.Machine, share SharePolicy) *VMM {
	return &VMM{Machine: machine, share: share, vms: make(map[VMID]*VM)}
}

// SharePolicyName reports the active policy.
func (m *VMM) SharePolicyName() string { return m.share.Name() }

// CreateVM registers a VM. The reservation is admission-checked against
// total capacity minus existing reservations.
func (m *VMM) CreateVM(spec VMSpec) (*VM, error) {
	if spec.ID <= 0 {
		return nil, fmt.Errorf("vmm: VM id must be positive (owner 0 is reserved)")
	}
	if _, ok := m.vms[spec.ID]; ok {
		return nil, fmt.Errorf("vmm: VM %d already exists", spec.ID)
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if spec.MaxPages[t] < spec.Reserved[t] {
			return nil, fmt.Errorf("vmm: VM %d max < reserved for %v", spec.ID, t)
		}
		var reservedTotal uint64
		for _, vm := range m.vms {
			reservedTotal += vm.Spec.Reserved[t]
		}
		if reservedTotal+spec.Reserved[t] > m.Machine.Frames(t) {
			return nil, fmt.Errorf("vmm: %v reservations exceed capacity", t)
		}
	}
	vm := &VM{Spec: spec, vmm: m}
	m.vms[spec.ID] = vm
	m.order = append(m.order, spec.ID)
	if err := m.share.Register(vm); err != nil {
		delete(m.vms, spec.ID)
		m.order = m.order[:len(m.order)-1]
		return nil, err
	}
	return vm, nil
}

// DestroyVM deregisters a departed VM. The guest must have been torn
// down first: the VM may hold no granted frames (the balloon unwound and
// every machine frame back in the pool), so the share policy drops only
// zero-valued state and the freed reservation is immediately available
// to future CreateVM admission checks.
func (m *VMM) DestroyVM(id VMID) error {
	vm, ok := m.vms[id]
	if !ok {
		return fmt.Errorf("vmm: DestroyVM: no VM %d", id)
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if vm.granted[t] != 0 {
			return fmt.Errorf("vmm: DestroyVM: VM %d still holds %d %v frames", id, vm.granted[t], t)
		}
	}
	m.share.Unregister(vm)
	delete(m.vms, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	vm.vmm = nil
	return nil
}

// VMByID returns a registered VM.
func (m *VMM) VMByID(id VMID) (*VM, bool) {
	vm, ok := m.vms[id]
	return vm, ok
}

// VMs returns the VMs in creation order.
func (m *VMM) VMs() []*VM {
	out := make([]*VM, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.vms[id])
	}
	return out
}

// --- guestos.FrameSource implementation (balloon back-end) ---

// Populate grants up to want frames of tier t, as authorised by the
// share policy. When the policy authorises more than the machine has
// free, the policy is responsible for reclaiming (ballooning) first.
func (v *VM) Populate(t memsim.Tier, want uint64) []memsim.MFN {
	if want == 0 || v.RefusePopulate {
		return nil
	}
	if room := v.Spec.MaxPages[t] - v.granted[t]; want > room {
		want = room
	}
	if want == 0 {
		return nil
	}
	n := v.vmm.share.Authorize(v, t, want)
	if n == 0 {
		return nil
	}
	if free := v.vmm.Machine.FreeFrames(t); n > free {
		n = free
	}
	if n == 0 {
		return nil
	}
	mfns, err := v.vmm.Machine.Alloc(t, n, v.owner())
	if err != nil {
		return nil
	}
	v.granted[t] += n
	v.vmm.share.OnGrant(v, t, n)
	return mfns
}

// PopulateAny grants frames of whatever tier is available, slow-first:
// the VMM-exclusive model reserves FastMem for hot-page migration
// rather than spending it on bulk reservations.
func (v *VM) PopulateAny(want uint64) []memsim.MFN {
	out := v.Populate(memsim.SlowMem, want)
	if uint64(len(out)) < want {
		out = append(out, v.Populate(memsim.FastMem, want-uint64(len(out)))...)
	}
	return out
}

// Release returns frames to the machine.
func (v *VM) Release(mfns []memsim.MFN) {
	var counts [memsim.NumTiers]uint64
	for _, mfn := range mfns {
		counts[v.vmm.Machine.TierOf(mfn)]++
	}
	v.vmm.Machine.Free(mfns, v.owner())
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if counts[t] > v.granted[t] {
			panic(fmt.Sprintf("vmm: VM %d releasing more %v than granted", v.Spec.ID, t))
		}
		v.granted[t] -= counts[t]
		v.vmm.share.OnRelease(v, t, counts[t])
	}
}

// allocForMigration takes a frame for migration use, bypassing the share
// policy: migration rearranges a VM's existing footprint rather than
// growing it (the granted counter still moves so accounting stays true).
func (v *VM) allocForMigration(t memsim.Tier) (memsim.MFN, bool) {
	mfn, err := v.vmm.Machine.AllocOne(t, v.owner())
	if err != nil {
		return memsim.NilMFN, false
	}
	v.granted[t]++
	v.vmm.share.OnGrant(v, t, 1)
	return mfn, true
}

// AdoptFrames grants exactly n frames of tier t to the VM, bypassing
// the share policy's Authorize gate the same way allocForMigration
// does: adoption re-materializes a footprint the VM already earned on
// another host (cross-host live migration), so admission was decided by
// the destination's placement policy, not by steady-state sharing. The
// granted counter and the share book still move, keeping
// CheckInvariants and DRF accounting exact. It is all-or-nothing: on
// shortfall it returns an error and grants nothing.
func (v *VM) AdoptFrames(t memsim.Tier, n uint64) ([]memsim.MFN, error) {
	if n == 0 {
		return nil, nil
	}
	if room := v.Spec.MaxPages[t] - v.granted[t]; n > room {
		return nil, fmt.Errorf("vmm: VM %d adopting %d %v frames exceeds reservation (room %d)",
			v.Spec.ID, n, t, room)
	}
	mfns, err := v.vmm.Machine.Alloc(t, n, v.owner())
	if err != nil {
		return nil, fmt.Errorf("vmm: VM %d adopting %d %v frames: %w", v.Spec.ID, n, t, err)
	}
	v.granted[t] += n
	v.vmm.share.OnGrant(v, t, n)
	return mfns, nil
}

// freeFromMigration returns a single frame after migration.
func (v *VM) freeFromMigration(mfn memsim.MFN) {
	t := v.vmm.Machine.TierOf(mfn)
	v.vmm.Machine.Free([]memsim.MFN{mfn}, v.owner())
	v.granted[t]--
	v.vmm.share.OnRelease(v, t, 1)
}

// CheckInvariants confirms the per-VM grant counters match the machine's
// ownership records.
func (m *VMM) CheckInvariants() error {
	var granted [memsim.NumTiers]uint64
	for _, vm := range m.vms {
		for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
			granted[t] += vm.granted[t]
		}
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if granted[t] != m.Machine.AllocatedFrames(t) {
			return fmt.Errorf("vmm: %v grants %d != machine allocated %d",
				t, granted[t], m.Machine.AllocatedFrames(t))
		}
	}
	return m.Machine.CheckInvariants()
}
