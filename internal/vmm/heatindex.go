package vmm

import (
	"fmt"
	"math/bits"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
)

// HeatIndex is an incrementally maintained replacement for the scanner's
// sweep-and-sort ranking: 256 score buckets per tier, each an intrusive
// doubly-linked list threaded through per-PFN index nodes (the
// guestos.PageLRU pattern). The guest OS notifies the index on every
// event that changes a page's ranking inputs — backing-frame changes,
// scan-heat updates, alloc/free transitions — so membership is updated
// in O(1) per event and HottestIn/ColdestIn/CoolestIn become an O(k)
// bucket walk: no per-page TierOf call, no allocation, no sort.
//
// Ordering matches rankIn exactly and deterministically: buckets are
// visited in score order and each bucket's list is kept in ascending
// PFN order (the predecessor for an insert is found through a
// three-level bitmap in ~constant time), which reproduces rankIn's
// stable sort with its PFN tiebreak.
//
// The index snapshots the scanner's scoring configuration implicitly:
// bucket assignment calls Scanner.score, so WriteBoost/TrackWrites and
// the thresholds must be fixed before the index is attached (core wires
// it after all scanner knobs are set). Changing them later requires
// Rebuild.
type HeatIndex struct {
	scanner *Scanner
	view    GuestView
	tierOf  func(memsim.MFN) memsim.Tier
	nodes   []heatNode
	buckets [memsim.NumTiers][numHeatBuckets]heatBucket
	counts  [memsim.NumTiers]uint64
}

// numHeatBuckets is one bucket per possible Scanner.score value.
const numHeatBuckets = 256

// heatNode flag bits.
const (
	heatInIndex = 1 << iota // page is on a bucket list
	heatFree                // guest reports the page free (KindFree)
)

// heatNode is the per-PFN intrusive list node.
type heatNode struct {
	prev, next guestos.PFN
	bucket     uint8
	tier       uint8
	flags      uint8
}

// heatBucket is one (tier, score) list plus the membership bitmap used
// to locate a new page's PFN-order predecessor. The bitmap is allocated
// lazily: heat decays toward a small fixpoint, so realistic runs occupy
// only a handful of the 512 (tier, score) combinations.
type heatBucket struct {
	head, tail guestos.PFN
	count      uint64
	set        *pfnSet
}

// NewHeatIndex builds an index over the scanner's guest view, seeds it
// from the current guest state, and attaches it to the scanner (ranking
// queries use the index from then on; rankIn stays as the reference
// implementation).
func NewHeatIndex(s *Scanner, tierOf func(memsim.MFN) memsim.Tier) *HeatIndex {
	x := &HeatIndex{
		scanner: s,
		view:    s.view,
		tierOf:  tierOf,
		nodes:   make([]heatNode, s.view.NumPFNs()),
	}
	x.Rebuild()
	s.index = x
	return x
}

// Index returns the heat index attached to the scanner, or nil when
// ranking still runs through the sweep-and-sort fallback.
func (s *Scanner) Index() *HeatIndex { return s.index }

// Rebuild clears the index and reseeds it from a full snapshot sweep.
func (x *HeatIndex) Rebuild() {
	for t := range x.buckets {
		for b := range x.buckets[t] {
			x.buckets[t][b] = heatBucket{head: guestos.NilPFN, tail: guestos.NilPFN}
		}
		x.counts[t] = 0
	}
	span := x.view.NumPFNs()
	for pfn := guestos.PFN(0); pfn < guestos.PFN(span); pfn++ {
		n := &x.nodes[pfn]
		n.prev, n.next, n.flags = guestos.NilPFN, guestos.NilPFN, 0
		snap := x.view.Snapshot(pfn)
		if snap.MFN == memsim.NilMFN {
			continue
		}
		if snap.Free {
			n.flags |= heatFree
		}
		x.insert(pfn, uint8(x.tierOf(snap.MFN)), x.scanner.score(pfn))
	}
}

// insert links pfn into (tier, bucket) preserving ascending PFN order.
func (x *HeatIndex) insert(pfn guestos.PFN, tier, bucket uint8) {
	n := &x.nodes[pfn]
	b := &x.buckets[tier][bucket]
	if b.set == nil {
		b.set = newPFNSet(uint64(len(x.nodes)))
	}
	if pred, ok := b.set.prevBelow(uint64(pfn)); ok {
		p := guestos.PFN(pred)
		pn := &x.nodes[p]
		n.prev, n.next = p, pn.next
		if pn.next != guestos.NilPFN {
			x.nodes[pn.next].prev = pfn
		} else {
			b.tail = pfn
		}
		pn.next = pfn
	} else {
		n.prev, n.next = guestos.NilPFN, b.head
		if b.head != guestos.NilPFN {
			x.nodes[b.head].prev = pfn
		} else {
			b.tail = pfn
		}
		b.head = pfn
	}
	b.set.add(uint64(pfn))
	b.count++
	x.counts[tier]++
	n.bucket, n.tier = bucket, tier
	n.flags |= heatInIndex
}

// remove unlinks pfn from its bucket list.
func (x *HeatIndex) remove(pfn guestos.PFN) {
	n := &x.nodes[pfn]
	b := &x.buckets[n.tier][n.bucket]
	if n.prev != guestos.NilPFN {
		x.nodes[n.prev].next = n.next
	} else {
		b.head = n.next
	}
	if n.next != guestos.NilPFN {
		x.nodes[n.next].prev = n.prev
	} else {
		b.tail = n.prev
	}
	b.set.remove(uint64(pfn))
	b.count--
	x.counts[n.tier]--
	n.prev, n.next = guestos.NilPFN, guestos.NilPFN
	n.flags &^= heatInIndex
}

// --- guestos.PageIndexer implementation ---

// PageBacked records that pfn gained (or changed) a backing frame: the
// page enters the index, or moves lists when the new frame is on a
// different tier (the VMM-exclusive migrator's SetBackingMFN path).
func (x *HeatIndex) PageBacked(pfn guestos.PFN, mfn memsim.MFN) {
	tier := uint8(x.tierOf(mfn))
	n := &x.nodes[pfn]
	if n.flags&heatInIndex != 0 {
		if n.tier == tier {
			return
		}
		x.remove(pfn)
		x.insert(pfn, tier, x.scanner.score(pfn))
		return
	}
	if x.view.Snapshot(pfn).Free {
		n.flags |= heatFree
	} else {
		n.flags &^= heatFree
	}
	x.insert(pfn, tier, x.scanner.score(pfn))
}

// PageUnbacked records that pfn lost its backing frame (balloon release).
func (x *HeatIndex) PageUnbacked(pfn guestos.PFN) {
	if x.nodes[pfn].flags&heatInIndex != 0 {
		x.remove(pfn)
	}
}

// PageHeatChanged rebuckets pfn after a scan-heat update — the scanner's
// per-sample hot path, O(1).
func (x *HeatIndex) PageHeatChanged(pfn guestos.PFN) {
	n := &x.nodes[pfn]
	if n.flags&heatInIndex == 0 {
		return
	}
	if b := x.scanner.score(pfn); b != n.bucket {
		tier := n.tier
		x.remove(pfn)
		x.insert(pfn, tier, b)
	}
}

// PageFreeChanged tracks guest alloc/free transitions. Free pages stay
// indexed (their frame is still backed; the VMM-exclusive ranking even
// considers them — it cannot see deallocations) and the flag is applied
// at query time exactly where rankIn consults TrustGuestState.
func (x *HeatIndex) PageFreeChanged(pfn guestos.PFN, free bool) {
	n := &x.nodes[pfn]
	if free {
		n.flags |= heatFree
	} else {
		n.flags &^= heatFree
	}
}

// --- queries ---

// descendInto appends up to max indexed pages of tier with score >=
// minScore, highest bucket first and ascending PFN within a bucket,
// skipping guest-free pages when skipFree. The caller passes a reusable
// buffer (typically buf[:0]); no allocation happens once it has grown.
func (x *HeatIndex) descendInto(buf []guestos.PFN, tier memsim.Tier, minScore uint8, skipFree bool, max int) []guestos.PFN {
	if max <= 0 {
		return buf
	}
	for s := numHeatBuckets - 1; s >= int(minScore); s-- {
		b := &x.buckets[tier][s]
		if b.count == 0 {
			continue
		}
		for pfn := b.head; pfn != guestos.NilPFN; pfn = x.nodes[pfn].next {
			if skipFree && x.nodes[pfn].flags&heatFree != 0 {
				continue
			}
			buf = append(buf, pfn)
			if len(buf) >= max {
				return buf
			}
		}
	}
	return buf
}

// ascendInto is descendInto's mirror: lowest bucket first, up to and
// including maxScore.
func (x *HeatIndex) ascendInto(buf []guestos.PFN, tier memsim.Tier, maxScore uint8, skipFree bool, max int) []guestos.PFN {
	if max <= 0 {
		return buf
	}
	for s := 0; s <= int(maxScore); s++ {
		b := &x.buckets[tier][s]
		if b.count == 0 {
			continue
		}
		for pfn := b.head; pfn != guestos.NilPFN; pfn = x.nodes[pfn].next {
			if skipFree && x.nodes[pfn].flags&heatFree != 0 {
				continue
			}
			buf = append(buf, pfn)
			if len(buf) >= max {
				return buf
			}
		}
	}
	return buf
}

// Count reports indexed pages on tier (tests, diagnostics).
func (x *HeatIndex) Count(tier memsim.Tier) uint64 { return x.counts[tier] }

// HeatSummary is a comparable fingerprint of an index: indexed-page
// counts per (tier, score bucket). Two indexes over equivalent guest
// state — identical per-PFN heat, free flags, and tier backing — yield
// equal summaries, which is how cross-host migration tests assert a
// VM's heat profile survived the move.
type HeatSummary struct {
	Buckets [memsim.NumTiers][numHeatBuckets]uint64
	Total   [memsim.NumTiers]uint64
}

// Summary captures the index's current bucket occupancy.
func (x *HeatIndex) Summary() HeatSummary {
	var sum HeatSummary
	for t := 0; t < int(memsim.NumTiers); t++ {
		for s := 0; s < numHeatBuckets; s++ {
			sum.Buckets[t][s] = x.buckets[t][s].count
		}
		sum.Total[t] = x.counts[t]
	}
	return sum
}

// CheckInvariants validates the full index against the guest state:
// every backed PFN is on exactly one bucket list, its bucket equals its
// current score, its tier matches its backing frame, lists are
// PFN-ascending with consistent links and counts, and the bitmaps agree
// with list membership.
func (x *HeatIndex) CheckInvariants() error {
	var walked uint64
	for t := 0; t < int(memsim.NumTiers); t++ {
		var tierCount uint64
		for s := 0; s < numHeatBuckets; s++ {
			b := &x.buckets[t][s]
			var n uint64
			prev := guestos.NilPFN
			for pfn := b.head; pfn != guestos.NilPFN; pfn = x.nodes[pfn].next {
				nd := &x.nodes[pfn]
				if nd.flags&heatInIndex == 0 {
					return fmt.Errorf("heatindex: pfn %d on list without inIndex flag", pfn)
				}
				if int(nd.tier) != t || int(nd.bucket) != s {
					return fmt.Errorf("heatindex: pfn %d filed under (%d,%d) but tagged (%d,%d)",
						pfn, t, s, nd.tier, nd.bucket)
				}
				if nd.prev != prev {
					return fmt.Errorf("heatindex: pfn %d prev link broken in (%d,%d)", pfn, t, s)
				}
				if prev != guestos.NilPFN && pfn <= prev {
					return fmt.Errorf("heatindex: (%d,%d) not PFN-ascending at %d", t, s, pfn)
				}
				if b.set == nil || !b.set.contains(uint64(pfn)) {
					return fmt.Errorf("heatindex: pfn %d missing from (%d,%d) bitmap", pfn, t, s)
				}
				prev = pfn
				n++
				if n > uint64(len(x.nodes)) {
					return fmt.Errorf("heatindex: cycle in (%d,%d)", t, s)
				}
			}
			if prev != b.tail {
				return fmt.Errorf("heatindex: (%d,%d) tail mismatch", t, s)
			}
			if n != b.count {
				return fmt.Errorf("heatindex: (%d,%d) count %d != walked %d", t, s, b.count, n)
			}
			if b.set != nil {
				if pop := b.set.popcount(); pop != n {
					return fmt.Errorf("heatindex: (%d,%d) bitmap population %d != %d", t, s, pop, n)
				}
			}
			tierCount += n
		}
		if tierCount != x.counts[t] {
			return fmt.Errorf("heatindex: tier %d count %d != walked %d", t, x.counts[t], tierCount)
		}
		walked += tierCount
	}
	var backed uint64
	for pfn := guestos.PFN(0); pfn < guestos.PFN(x.view.NumPFNs()); pfn++ {
		snap := x.view.Snapshot(pfn)
		nd := &x.nodes[pfn]
		in := nd.flags&heatInIndex != 0
		if (snap.MFN != memsim.NilMFN) != in {
			return fmt.Errorf("heatindex: pfn %d backed=%v but indexed=%v",
				pfn, snap.MFN != memsim.NilMFN, in)
		}
		if !in {
			continue
		}
		backed++
		if got, want := nd.bucket, x.scanner.score(pfn); got != want {
			return fmt.Errorf("heatindex: pfn %d bucket %d != score %d", pfn, got, want)
		}
		if got, want := memsim.Tier(nd.tier), x.tierOf(snap.MFN); got != want {
			return fmt.Errorf("heatindex: pfn %d tier %v != backing tier %v", pfn, got, want)
		}
		if free := nd.flags&heatFree != 0; free != snap.Free {
			return fmt.Errorf("heatindex: pfn %d free flag %v != guest %v", pfn, free, snap.Free)
		}
	}
	if backed != walked {
		return fmt.Errorf("heatindex: %d backed pages != %d on lists", backed, walked)
	}
	return nil
}

// pfnSet is a three-level hierarchical bitmap over the PFN space: l0 has
// one bit per PFN, l1 one bit per non-zero l0 word, l2 one bit per
// non-zero l1 word. prevBelow finds the largest member strictly below a
// PFN in at most a handful of word operations, which is what makes
// PFN-ordered list insertion O(1) for realistic spans (a 64K-page guest
// has a 16-word l1 and a 1-word l2).
type pfnSet struct {
	l0, l1, l2 []uint64
}

func newPFNSet(span uint64) *pfnSet {
	n0 := (span + 63) / 64
	n1 := (n0 + 63) / 64
	n2 := (n1 + 63) / 64
	return &pfnSet{
		l0: make([]uint64, n0),
		l1: make([]uint64, n1),
		l2: make([]uint64, n2),
	}
}

func (s *pfnSet) add(p uint64) {
	s.l0[p>>6] |= 1 << (p & 63)
	s.l1[p>>12] |= 1 << ((p >> 6) & 63)
	s.l2[p>>18] |= 1 << ((p >> 12) & 63)
}

func (s *pfnSet) remove(p uint64) {
	w0 := p >> 6
	s.l0[w0] &^= 1 << (p & 63)
	if s.l0[w0] != 0 {
		return
	}
	w1 := w0 >> 6
	s.l1[w1] &^= 1 << (w0 & 63)
	if s.l1[w1] != 0 {
		return
	}
	s.l2[w1>>6] &^= 1 << (w1 & 63)
}

func (s *pfnSet) contains(p uint64) bool {
	return s.l0[p>>6]&(1<<(p&63)) != 0
}

func (s *pfnSet) popcount() uint64 {
	var n uint64
	for _, w := range s.l0 {
		n += uint64(bits.OnesCount64(w))
	}
	return n
}

// prevBelow returns the largest member strictly less than p.
func (s *pfnSet) prevBelow(p uint64) (uint64, bool) {
	w0 := p >> 6
	if m := s.l0[w0] & (1<<(p&63) - 1); m != 0 {
		return w0<<6 + uint64(bits.Len64(m)-1), true
	}
	w1 := w0 >> 6
	if m := s.l1[w1] & (1<<(w0&63) - 1); m != 0 {
		w0 = w1<<6 + uint64(bits.Len64(m)-1)
		return w0<<6 + uint64(bits.Len64(s.l0[w0])-1), true
	}
	w2 := w1 >> 6
	if m := s.l2[w2] & (1<<(w1&63) - 1); m != 0 {
		w1 = w2<<6 + uint64(bits.Len64(m)-1)
		w0 = w1<<6 + uint64(bits.Len64(s.l1[w1])-1)
		return w0<<6 + uint64(bits.Len64(s.l0[w0])-1), true
	}
	for i := int64(w2) - 1; i >= 0; i-- {
		if m := s.l2[i]; m != 0 {
			w1 = uint64(i)<<6 + uint64(bits.Len64(m)-1)
			w0 = w1<<6 + uint64(bits.Len64(s.l1[w1])-1)
			return w0<<6 + uint64(bits.Len64(s.l0[w0])-1), true
		}
	}
	return 0, false
}

// Compile-time check: HeatIndex satisfies the guest's notification hook.
var _ guestos.PageIndexer = (*HeatIndex)(nil)
