package vmm

import (
	"testing"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/sim"
)

func newMachine(fast, slow uint64) *memsim.Machine {
	return memsim.NewMachine(fast, slow, memsim.FastTierSpec(), memsim.SlowTierSpec())
}

// bootGuest boots a guest OS wired to vm.
func bootGuest(t *testing.T, m *VMM, vm *VM, aware bool, pl guestos.PlacementConfig,
	fastMax, slowMax, bootFast, bootSlow uint64) *guestos.OS {
	t.Helper()
	os, err := guestos.New(guestos.Config{
		CPUs: 2, Aware: aware,
		FastMaxPages: fastMax, SlowMaxPages: slowMax,
		BootFastPages: bootFast, BootSlowPages: bootSlow,
		Placement: pl,
		Source:    vm,
		TierOf:    m.Machine.TierOf,
		Seed:      uint64(vm.Spec.ID),
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Balloon = os
	vm.View = os
	return os
}

func TestCreateVMValidation(t *testing.T) {
	m := New(newMachine(64, 64), StaticShare{})
	if _, err := m.CreateVM(VMSpec{ID: 0}); err == nil {
		t.Fatal("id 0 accepted")
	}
	spec := VMSpec{ID: 1}
	spec.Reserved[memsim.FastMem] = 32
	spec.MaxPages[memsim.FastMem] = 16
	if _, err := m.CreateVM(spec); err == nil {
		t.Fatal("max < reserved accepted")
	}
	spec.MaxPages[memsim.FastMem] = 64
	spec.MaxPages[memsim.SlowMem] = 64
	if _, err := m.CreateVM(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CreateVM(spec); err == nil {
		t.Fatal("duplicate id accepted")
	}
	spec2 := spec
	spec2.ID = 2
	spec2.Reserved[memsim.FastMem] = 40 // 32+40 > 64
	if _, err := m.CreateVM(spec2); err == nil {
		t.Fatal("over-reservation accepted")
	}
}

func TestPopulateRespectsCeiling(t *testing.T) {
	m := New(newMachine(128, 128), StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 32
	spec.MaxPages[memsim.SlowMem] = 64
	vm, err := m.CreateVM(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := vm.Populate(memsim.FastMem, 100)
	if len(got) != 32 {
		t.Fatalf("granted %d, want ceiling 32", len(got))
	}
	if vm.Granted(memsim.FastMem) != 32 {
		t.Fatal("grant accounting wrong")
	}
	vm.Release(got)
	if vm.Granted(memsim.FastMem) != 0 {
		t.Fatal("release accounting wrong")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPopulateAnySlowFirst(t *testing.T) {
	m := New(newMachine(64, 64), StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 64
	spec.MaxPages[memsim.SlowMem] = 64
	vm, _ := m.CreateVM(spec)
	got := vm.PopulateAny(80)
	if len(got) != 80 {
		t.Fatalf("granted %d", len(got))
	}
	if vm.Granted(memsim.SlowMem) != 64 || vm.Granted(memsim.FastMem) != 16 {
		t.Fatalf("tier split wrong: %d/%d",
			vm.Granted(memsim.FastMem), vm.Granted(memsim.SlowMem))
	}
}

func TestMaxMinReclaimsOvercommit(t *testing.T) {
	machine := newMachine(512, 2048)
	m := New(machine, MaxMinShare{})
	mk := func(id VMID, resFast, resSlow uint64) *VM {
		spec := VMSpec{ID: id}
		spec.Reserved[memsim.FastMem] = resFast
		spec.Reserved[memsim.SlowMem] = resSlow
		spec.MaxPages[memsim.FastMem] = 512
		spec.MaxPages[memsim.SlowMem] = 2048
		vm, err := m.CreateVM(spec)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	vm1 := mk(1, 128, 512)
	vm2 := mk(2, 128, 512)
	os1 := bootGuest(t, m, vm1, true, guestos.PlacementConfig{Name: "od", OnDemand: true}, 512, 2048, 128, 512)
	_ = bootGuest(t, m, vm2, true, guestos.PlacementConfig{Name: "od", OnDemand: true}, 512, 2048, 128, 512)

	// VM1 overcommits SlowMem far beyond its reservation.
	got := vm1.Populate(memsim.SlowMem, 1400)
	if len(got) == 0 {
		t.Fatal("overcommit denied with free frames")
	}
	if vm1.Granted(memsim.SlowMem) <= 512 {
		t.Fatal("expected overcommit beyond reservation")
	}
	_ = os1
	// VM2 now claims its reservation; max-min must balloon VM1 back.
	before := vm1.Granted(memsim.SlowMem)
	got2 := vm2.Populate(memsim.SlowMem, 900) // within... beyond reservation, but free frames exist?
	_ = got2
	// Force pressure: request down to reservation level.
	for vm2.Granted(memsim.SlowMem) < 512+900 {
		g := vm2.Populate(memsim.SlowMem, 128)
		if len(g) == 0 {
			break
		}
	}
	if vm1.Granted(memsim.SlowMem) >= before && machine.FreeFrames(memsim.SlowMem) == 0 &&
		vm2.Granted(memsim.SlowMem) < vm2.Spec.Reserved[memsim.SlowMem] {
		t.Fatal("max-min failed to reclaim overcommit for a below-reservation VM")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDRFShareBalloonsDominantVM(t *testing.T) {
	machine := newMachine(1024, 2048)
	share, err := NewDRFShare(machine, DefaultDRFWeights())
	if err != nil {
		t.Fatal(err)
	}
	m := New(machine, share)
	mk := func(id VMID) *VM {
		spec := VMSpec{ID: id}
		spec.Reserved[memsim.FastMem] = 128
		spec.Reserved[memsim.SlowMem] = 256
		spec.MaxPages[memsim.FastMem] = 1024
		spec.MaxPages[memsim.SlowMem] = 2048
		vm, err := m.CreateVM(spec)
		if err != nil {
			t.Fatal(err)
		}
		return vm
	}
	vm1, vm2 := mk(1), mk(2)
	pl := guestos.PlacementConfig{Name: "od", OnDemand: true}
	os1 := bootGuest(t, m, vm1, true, pl, 1024, 2048, 128, 256)
	bootGuest(t, m, vm2, true, pl, 1024, 2048, 128, 256)

	// VM1's guest devours SlowMem through real allocations (heap prefers
	// SlowMem under this placement; on-demand extends the reservation).
	vma, _ := os1.AS.Mmap(1700, guestos.KindAnon, guestos.NilFile)
	for i := 0; i < 1700; i++ {
		if _, err := os1.TouchVPN(vma.Start+guestos.VPN(i), 1, 0); err != nil {
			break
		}
	}
	if machine.FreeFrames(memsim.SlowMem) != 0 {
		t.Fatalf("SlowMem not exhausted: %d free", machine.FreeFrames(memsim.SlowMem))
	}
	s1 := share.DominantShare(1)
	s2 := share.DominantShare(2)
	if s1 <= s2 {
		t.Fatalf("shares wrong: %v vs %v", s1, s2)
	}
	// VM2 requests SlowMem: DRF must balloon VM1 (the dominant VM).
	before := vm1.Granted(memsim.SlowMem)
	got := vm2.Populate(memsim.SlowMem, 256)
	if len(got) == 0 {
		t.Fatal("DRF denied a low-share VM while a dominant VM overcommits")
	}
	if vm1.Granted(memsim.SlowMem) >= before {
		t.Fatal("dominant VM was not ballooned")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestScannerHeatAndCosts(t *testing.T) {
	machine := newMachine(256, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 256
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	// Guest span sized to the SlowMem grant only, so every touched page
	// is SlowMem-backed.
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "vmm-excl"}, 0, 1024, 0, 1024)

	vma, _ := os.AS.Mmap(200, guestos.KindAnon, guestos.NilFile)
	for i := 0; i < 200; i++ {
		os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
	}
	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	res := sc.ScanNext()
	if res.Referenced < 200 {
		t.Fatalf("referenced = %d, want >= 200", res.Referenced)
	}
	if res.CostNs <= 0 {
		t.Fatal("scan must cost time")
	}
	// Second scan with no touches: nothing referenced; heat decays.
	res2 := sc.ScanNext()
	if res2.Referenced != 0 {
		t.Fatalf("stale referenced = %d", res2.Referenced)
	}
	// Touch a subset repeatedly across scans: they become the hottest.
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
		}
		sc.ScanNext()
	}
	hot := sc.HottestIn(machine, memsim.SlowMem, 10)
	if len(hot) == 0 {
		t.Fatal("no hot pages found")
	}
	for _, pfn := range hot {
		if !sc.Hot(pfn) {
			t.Fatal("HottestIn returned non-hot page")
		}
	}
}

func TestMigratorPromotesHotPages(t *testing.T) {
	machine := newMachine(256, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 256
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	// Transparent guest sized so boot backing is all SlowMem.
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "vmm-excl"}, 64, 960, 64, 960)

	vma, _ := os.AS.Mmap(100, guestos.KindAnon, guestos.NilFile)
	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
		}
		sc.ScanNext()
	}
	mig := NewMigrator(DefaultMigrateCosts())
	st := mig.Rebalance(vm, sc, 100)
	if st.Promoted == 0 {
		t.Fatal("no promotions")
	}
	if st.CostNs <= 0 {
		t.Fatal("migration must cost time")
	}
	// Promoted pages are now FastMem-backed; contents intact.
	fastBacked := 0
	for i := 0; i < 100; i++ {
		pfn, ok := os.AS.Translate(vma.Start + guestos.VPN(i))
		if !ok {
			t.Fatal("mapping lost")
		}
		if os.TierOfPage(pfn) == memsim.FastMem {
			fastBacked++
		}
	}
	if fastBacked != st.Promoted {
		t.Fatalf("fast-backed %d != promoted %d", fastBacked, st.Promoted)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigratorDemotesWhenFastFull(t *testing.T) {
	// Tiny FastMem entirely consumed; promoting requires demoting.
	machine := newMachine(16, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 16
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "vmm-excl"}, 16, 512, 16, 512)

	vma, _ := os.AS.Mmap(200, guestos.KindAnon, guestos.NilFile)
	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	// Fill FastMem with pages that then go cold.
	mig := NewMigrator(DefaultMigrateCosts())
	for i := 0; i < 16; i++ {
		os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
	}
	sc.ScanNext()
	mig.Rebalance(vm, sc, 16)
	// Now a different set becomes hot while the first goes cold.
	for round := 0; round < 4; round++ {
		for i := 100; i < 140; i++ {
			os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
		}
		sc.ScanNext()
	}
	st := mig.Rebalance(vm, sc, 40)
	if st.Promoted == 0 {
		t.Fatal("no promotions under full FastMem")
	}
	if st.Demoted == 0 {
		t.Fatal("expected demotions to make room")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatedPassPromotesViaGuest(t *testing.T) {
	machine := newMachine(512, 2048)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 512
	spec.MaxPages[memsim.SlowMem] = 2048
	vm, _ := m.CreateVM(spec)
	pl := guestos.PlacementConfig{Name: "coord", OnDemand: true, HeteroLRU: true}
	pl.FastKinds[guestos.KindAnon] = true
	pl.FastKinds[guestos.KindPageCache] = true
	pl.FastKinds[guestos.KindNetBuf] = true
	pl.FastKinds[guestos.KindSlab] = true
	// FastMem span leaves headroom beyond boot so promotions can land.
	os := bootGuest(t, m, vm, true, pl, 256, 2048, 128, 1024)

	// Working set exceeds the FastMem boot reservation and span: some
	// pages land in SlowMem.
	vma, _ := os.AS.Mmap(600, guestos.KindAnon, guestos.NilFile)
	for i := 0; i < 600; i++ {
		os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
	}
	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = 64 * 1024
	// Make a slow-resident subset hot across scans; touches happen after
	// each scan so the final pass still sees fresh access bits.
	for round := 0; round < 3; round++ {
		CoordinatedPass(vm, sc, os, 0) // scan-only rounds (no moves)
		for i := 400; i < 500; i++ {
			os.TouchVPN(vma.Start+guestos.VPN(i), 2, 0)
		}
	}
	st := CoordinatedPass(vm, sc, os, 64)
	if st.Scanned == 0 || st.ScanNs <= 0 {
		t.Fatalf("scan did not run: %+v", st)
	}
	if st.Promoted == 0 {
		t.Fatalf("coordinated pass promoted nothing: %+v", st)
	}
	if os.DrainEpoch().Promotions == 0 {
		t.Fatal("guest promotion counter not bumped")
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatedScanCheaperThanFullScan(t *testing.T) {
	machine := newMachine(512, 4096)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 512
	spec.MaxPages[memsim.SlowMem] = 4096
	vm, _ := m.CreateVM(spec)
	pl := guestos.PlacementConfig{Name: "coord", OnDemand: true}
	pl.FastKinds[guestos.KindAnon] = true
	os := bootGuest(t, m, vm, true, pl, 256, 4096, 128, 2048)

	// Small resident anon set inside a big span.
	vma, _ := os.AS.Mmap(300, guestos.KindAnon, guestos.NilFile)
	for i := 0; i < 300; i++ {
		os.TouchVPN(vma.Start+guestos.VPN(i), 1, 0)
	}
	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	full := sc.ScanNext()
	tracked := sc.ScanTracked(os.TrackingList())
	if tracked.CostNs >= full.CostNs {
		t.Fatalf("tracked scan (%v) not cheaper than full scan (%v)",
			tracked.CostNs, full.CostNs)
	}
	if tracked.Scanned != 300 {
		t.Fatalf("tracked scanned %d pages, want 300", tracked.Scanned)
	}
}

func TestAdaptiveInterval(t *testing.T) {
	a := NewAdaptiveInterval(50*sim.Millisecond, sim.Second, 200*sim.Millisecond)
	a.Update(1000) // prime
	// Misses double: interval must shrink.
	d := a.Update(2000)
	if d >= 200*sim.Millisecond {
		t.Fatalf("interval did not shrink: %v", d)
	}
	if d < 50*sim.Millisecond {
		t.Fatal("clamp violated")
	}
	// Misses collapse: interval must grow.
	d2 := a.Update(200)
	if d2 <= d {
		t.Fatalf("interval did not grow: %v -> %v", d, d2)
	}
	// Extreme spike clamps at Min.
	a.Update(1e12)
	if a.Current() != 50*sim.Millisecond {
		t.Fatalf("min clamp failed: %v", a.Current())
	}
	// Steadily falling misses grow the interval to Max.
	miss := 1e12
	for i := 0; i < 40; i++ {
		miss /= 2
		a.Update(miss)
	}
	if a.Current() != sim.Second {
		t.Fatalf("max clamp failed: %v", a.Current())
	}
}

func TestMigrationBatchCostsTable6(t *testing.T) {
	walk, cp := guestos.MigrationBatchCosts(8 * 1024)
	if walk != 43210 || cp != 25500 {
		t.Fatalf("8K batch: %v/%v", walk, cp)
	}
	walk, cp = guestos.MigrationBatchCosts(128 * 1024)
	if walk != 10250 || cp != 11120 {
		t.Fatalf("128K batch: %v/%v", walk, cp)
	}
	// Interpolation is monotone decreasing.
	w64, c64 := guestos.MigrationBatchCosts(64 * 1024)
	w32, c32 := guestos.MigrationBatchCosts(32 * 1024)
	if !(w32 > w64 && c32 > c64) {
		t.Fatalf("interpolation not monotone: %v/%v vs %v/%v", w32, c32, w64, c64)
	}
	// Clamped outside the measured range.
	wLo, _ := guestos.MigrationBatchCosts(1)
	if wLo != 43210 {
		t.Fatalf("low clamp: %v", wLo)
	}
	wHi, _ := guestos.MigrationBatchCosts(1 << 30)
	if wHi != 10250 {
		t.Fatalf("high clamp: %v", wHi)
	}
}

func TestWriteAwareRankingPrefersStoreHeavyPages(t *testing.T) {
	machine := newMachine(64, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.FastMem] = 0
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "nvm"}, 0, 1024, 0, 1024)

	vma, _ := os.AS.Mmap(16, guestos.KindAnon, guestos.NilFile)
	sc := NewScanner(os, DefaultScanCosts())
	sc.BatchPages = int(os.NumPFNs())
	sc.TrackWrites = true
	sc.WriteBoost = 3 // NVM-like: stores several times dearer than loads

	// The store-heavy page faults first so it lands on the higher frame
	// (per-CPU lists pop descending): the boosted ranking must overcome
	// the ascending-PFN tiebreak to put it first.
	for round := 0; round < 3; round++ {
		os.TouchVPN(vma.Start, 4, 4)   // half stores
		os.TouchVPN(vma.Start+1, 8, 0) // loads only
		sc.ScanNext()
	}
	writePfn, _ := os.AS.Translate(vma.Start)
	readPfn, _ := os.AS.Translate(vma.Start + 1)
	if writePfn < readPfn {
		t.Skip("frame order assumption violated; tiebreak not exercised")
	}
	if os.ScanWriteHeat(writePfn) == 0 {
		t.Fatal("write heat not tracked")
	}
	if os.ScanWriteHeat(readPfn) != 0 {
		t.Fatal("load-only page accumulated write heat")
	}
	hot := sc.HottestIn(machine, memsim.SlowMem, 2)
	if len(hot) < 2 {
		t.Fatalf("expected both pages hot, got %d", len(hot))
	}
	if hot[0] != writePfn {
		t.Fatalf("store-heavy page should rank first: got pfn %d, want %d", hot[0], writePfn)
	}
	// Without the boost, the tie breaks by PFN (read page first).
	sc.WriteBoost = 0
	hot = sc.HottestIn(machine, memsim.SlowMem, 2)
	if hot[0] != readPfn {
		t.Fatalf("unboosted ranking changed unexpectedly: %v", hot)
	}
}

func TestWriteTrackingCostsMore(t *testing.T) {
	machine := newMachine(64, 1024)
	m := New(machine, StaticShare{})
	spec := VMSpec{ID: 1}
	spec.MaxPages[memsim.SlowMem] = 1024
	vm, _ := m.CreateVM(spec)
	os := bootGuest(t, m, vm, false, guestos.PlacementConfig{Name: "nvm"}, 0, 1024, 0, 1024)

	plain := NewScanner(os, DefaultScanCosts())
	plain.BatchPages = 512
	writeAware := NewScanner(os, DefaultScanCosts())
	writeAware.BatchPages = 512
	writeAware.TrackWrites = true
	if !(writeAware.ScanNext().CostNs > plain.ScanNext().CostNs) {
		t.Fatal("write-bit tracking must cost extra (Section 4.3)")
	}
}
