package vmm

import (
	"heteroos/internal/drf"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
)

// SharePolicy arbitrates machine frames between VMs. Authorize is called
// on every balloon populate request; policies may trigger reclaim
// (ballooning other VMs) before answering.
type SharePolicy interface {
	Name() string
	Register(vm *VM) error
	// Unregister removes a departing VM from the policy's books. The VM
	// must have released every granted frame first (DestroyVM enforces
	// this), so the policy drops only zero-valued state.
	Unregister(vm *VM)
	// Authorize returns how many of the want frames the VM may take now.
	Authorize(vm *VM, t memsim.Tier, want uint64) uint64
	// OnGrant / OnRelease keep the policy's books in sync with actual
	// frame movement.
	OnGrant(vm *VM, t memsim.Tier, n uint64)
	OnRelease(vm *VM, t memsim.Tier, n uint64)
}

// --- Static ---

// StaticShare authorises anything within the VM's ceiling while free
// frames exist: the single-VM experiments use it so the share layer adds
// no effects.
type StaticShare struct{}

// Name implements SharePolicy.
func (StaticShare) Name() string { return "static" }

// Register implements SharePolicy.
func (StaticShare) Register(*VM) error { return nil }

// Unregister implements SharePolicy.
func (StaticShare) Unregister(*VM) {}

// Authorize implements SharePolicy.
func (StaticShare) Authorize(vm *VM, t memsim.Tier, want uint64) uint64 {
	if free := vm.vmm.Machine.FreeFrames(t); want > free {
		want = free
	}
	return want
}

// OnGrant implements SharePolicy.
func (StaticShare) OnGrant(*VM, memsim.Tier, uint64) {}

// OnRelease implements SharePolicy.
func (StaticShare) OnRelease(*VM, memsim.Tier, uint64) {}

// --- Single-resource max-min ---

// MaxMinShare implements today's VMM default (Section 4.2): every VM is
// guaranteed its reservation per tier; spare capacity is handed out as
// overcommit; when a VM asks for frames within its reservation and the
// tier is exhausted, overcommitted VMs are ballooned back toward their
// reservations. Each tier is arbitrated independently — the paper's
// point is that this cannot couple FastMem and SlowMem fairness.
type MaxMinShare struct{}

// Name implements SharePolicy.
func (MaxMinShare) Name() string { return "max-min" }

// Register implements SharePolicy.
func (MaxMinShare) Register(*VM) error { return nil }

// Unregister implements SharePolicy.
func (MaxMinShare) Unregister(*VM) {}

// Authorize implements SharePolicy.
func (MaxMinShare) Authorize(vm *VM, t memsim.Tier, want uint64) uint64 {
	m := vm.vmm
	free := m.Machine.FreeFrames(t)
	if free >= want {
		return want
	}
	// Below-reservation requests may reclaim overcommit from others.
	if vm.granted[t] < vm.Spec.Reserved[t] {
		need := want - free
		reclaimOvercommit(m, t, need, vm)
		if free = m.Machine.FreeFrames(t); want > free {
			want = free
		}
		return want
	}
	return free
}

// reclaimOvercommit balloons VMs holding more than their reservation of
// tier t, round-robin, until need frames are free or nothing reclaims.
func reclaimOvercommit(m *VMM, t memsim.Tier, need uint64, exclude *VM) {
	for _, id := range m.order {
		if need == 0 {
			return
		}
		vm := m.vms[id]
		if vm == exclude || vm.Balloon == nil {
			continue
		}
		over := uint64(0)
		if vm.granted[t] > vm.Spec.Reserved[t] {
			over = vm.granted[t] - vm.Spec.Reserved[t]
		}
		if over == 0 {
			continue
		}
		take := over
		if take > need {
			take = need
		}
		target := vm.granted[t] - take
		got := vm.Balloon.BalloonTarget(t, target)
		if got > need {
			got = need
		}
		need -= got
	}
}

// OnGrant implements SharePolicy.
func (MaxMinShare) OnGrant(*VM, memsim.Tier, uint64) {}

// OnRelease implements SharePolicy.
func (MaxMinShare) OnRelease(*VM, memsim.Tier, uint64) {}

// --- Weighted DRF ---

// DRFShare arbitrates with weighted Dominant Resource Fairness
// (Algorithm 1): a request is granted while capacity allows; when a tier
// is exhausted, the policy balloons the VM with the highest dominant
// share (if that is not the requester) before retrying. Weights default
// to the paper's FastMem=2, SlowMem=1.
type DRFShare struct {
	alloc *drf.Allocator
	// obs, when attached, carries the rebalance probes.
	obs *drfProbes
}

// NewDRFShare builds the policy over the machine's capacities.
func NewDRFShare(machine *memsim.Machine, weights [memsim.NumTiers]float64) (*DRFShare, error) {
	caps := []float64{float64(machine.Frames(memsim.FastMem)), float64(machine.Frames(memsim.SlowMem))}
	w := []float64{weights[memsim.FastMem], weights[memsim.SlowMem]}
	a, err := drf.New(caps, w)
	if err != nil {
		return nil, err
	}
	return &DRFShare{alloc: a}, nil
}

// DefaultDRFWeights is the paper's static weighting.
func DefaultDRFWeights() [memsim.NumTiers]float64 {
	var w [memsim.NumTiers]float64
	w[memsim.FastMem] = 2
	w[memsim.SlowMem] = 1
	return w
}

// Name implements SharePolicy.
func (*DRFShare) Name() string { return "weighted-DRF" }

// Register implements SharePolicy.
func (d *DRFShare) Register(vm *VM) error {
	return d.alloc.AddClient(drf.ClientID(vm.Spec.ID))
}

// Unregister implements SharePolicy. Dropping the client releases its
// (already zero, per DestroyVM's precondition) allocation vector, so the
// surviving VMs' dominant shares are computed over the new membership on
// the very next Authorize call.
func (d *DRFShare) Unregister(vm *VM) {
	if err := d.alloc.RemoveClient(drf.ClientID(vm.Spec.ID)); err != nil {
		panic("vmm: DRF books diverged on unregister: " + err.Error())
	}
}

func demandVec(t memsim.Tier, n uint64) []float64 {
	v := make([]float64, memsim.NumTiers)
	v[t] = float64(n)
	return v
}

// Authorize implements SharePolicy.
func (d *DRFShare) Authorize(vm *VM, t memsim.Tier, want uint64) uint64 {
	m := vm.vmm
	avail := uint64(d.alloc.Available(int(t)))
	if avail >= want {
		return want
	}
	// Capacity short: Algorithm 1's reclaim branch. Balloon the VM with
	// the highest dominant share — unless the requester itself already
	// dominates, in which case it must live within its means.
	reqShare, _ := d.alloc.DominantShare(drf.ClientID(vm.Spec.ID))
	var victim *VM
	victimShare := reqShare
	for _, id := range m.order {
		cand := m.vms[id]
		if cand == vm || cand.Balloon == nil {
			continue
		}
		s, err := d.alloc.DominantShare(drf.ClientID(cand.Spec.ID))
		if err != nil {
			continue
		}
		if s > victimShare {
			victim, victimShare = cand, s
		}
	}
	if victim != nil {
		need := want - avail
		// Do not balloon below the victim's reservation.
		floor := victim.Spec.Reserved[t]
		target := floor
		if victim.granted[t] > need && victim.granted[t]-need > floor {
			target = victim.granted[t] - need
		}
		if victim.granted[t] > target {
			released := victim.Balloon.BalloonTarget(t, target)
			if d.obs != nil {
				d.obs.rebalances.Inc()
				d.obs.ballooned.Add(released)
				d.obs.scope.Emit(obs.EvDRFRebalance, obs.DirNone, uint8(t),
					0, released, uint64(victim.Spec.ID), 0)
			}
		}
		avail = uint64(d.alloc.Available(int(t)))
	}
	if want > avail {
		want = avail
	}
	return want
}

// OnGrant implements SharePolicy.
func (d *DRFShare) OnGrant(vm *VM, t memsim.Tier, n uint64) {
	if err := d.alloc.Grant(drf.ClientID(vm.Spec.ID), demandVec(t, n)); err != nil {
		panic("vmm: DRF books diverged on grant: " + err.Error())
	}
}

// OnRelease implements SharePolicy.
func (d *DRFShare) OnRelease(vm *VM, t memsim.Tier, n uint64) {
	if err := d.alloc.Release(drf.ClientID(vm.Spec.ID), demandVec(t, n)); err != nil {
		panic("vmm: DRF books diverged on release: " + err.Error())
	}
}

// DominantShare exposes a VM's current dominant share (reporting).
func (d *DRFShare) DominantShare(id VMID) float64 {
	s, err := d.alloc.DominantShare(drf.ClientID(id))
	if err != nil {
		return 0
	}
	return s
}
