// Package sim provides the simulation foundation shared by every other
// package in the repository: a monotone nanosecond clock, a deterministic
// pseudo-random number generator, and the sampling distributions used by
// the workload models.
//
// Nothing in this package knows about memory, VMs, or policies; it exists
// so that all higher layers agree on how simulated time advances and how
// randomness is produced reproducibly.
package sim

import "fmt"

// Time is a point on the simulated clock, in nanoseconds since simulation
// start. It is a distinct type so that simulated durations cannot be
// accidentally mixed with wall-clock time.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration constants but on the
// simulated clock.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// String renders a duration using the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Add advances a time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed between two times.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock is the monotone simulated clock. The zero value is a clock at
// time zero, ready to use.
type Clock struct {
	now Time
}

// Now reports the current simulated time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: simulated time is monotone by construction and a negative
// advance always indicates an accounting bug in the caller.
func (c *Clock) Advance(d Duration) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative clock advance %d", d))
	}
	c.now += Time(d)
	return c.now
}

// Reset rewinds the clock to zero. Intended for reusing a simulation
// harness across experiment runs.
func (c *Clock) Reset() { c.now = 0 }

// Restore sets the clock to an absolute point, for resuming a
// checkpointed simulation. It is the only sanctioned way to move a
// clock other than Advance; ordinary simulation code must never call
// it.
func (c *Clock) Restore(t Time) { c.now = t }
