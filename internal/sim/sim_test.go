package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now() = %d, want %d", got, 5*Millisecond)
	}
	c.Advance(0)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("zero advance moved clock to %d", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %d", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50)
	if t1 != 150 {
		t.Fatalf("Add = %d, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub = %d, want 50", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.500µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(9)
	child := parent.Fork()
	// The child stream must not mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("fork mirrors parent: %d/100 identical", same)
	}
}

func TestRNGUniformityProperty(t *testing.T) {
	// Property: for any seed and bucket count, Intn fills all buckets
	// given enough draws.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		const buckets = 8
		var counts [buckets]int
		for i := 0; i < 4000; i++ {
			counts[r.Intn(buckets)]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(13)
	z := NewZipf(r, 1.0, 1000)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 must dominate rank 99 by roughly the theoretical factor 100.
	if counts[0] < counts[99]*20 {
		t.Fatalf("zipf not skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
	if z.N() != 1000 {
		t.Fatalf("N = %d", z.N())
	}
}

func TestZipfSupport(t *testing.T) {
	r := NewRNG(17)
	z := NewZipf(r, 0.8, 50)
	for i := 0; i < 10000; i++ {
		v := z.Sample()
		if v < 0 || v >= 50 {
			t.Fatalf("sample %d outside support", v)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	r := NewRNG(1)
	for _, f := range []func(){
		func() { NewZipf(r, 1.0, 0) },
		func() { NewZipf(r, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHotColdFractions(t *testing.T) {
	r := NewRNG(21)
	h := NewHotCold(r, 1000, 100, 0.9)
	hot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if h.Sample() < 100 {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("hot fraction = %v, want ~0.9", frac)
	}
	if h.Items() != 1000 || h.HotItems() != 100 {
		t.Fatalf("accessors wrong: %d/%d", h.Items(), h.HotItems())
	}
}

func TestHotColdDegenerate(t *testing.T) {
	r := NewRNG(23)
	// hotItems == items must not panic on the cold branch.
	h := NewHotCold(r, 10, 10, 0.5)
	for i := 0; i < 1000; i++ {
		v := h.Sample()
		if v < 0 || v >= 10 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestHotColdValidation(t *testing.T) {
	r := NewRNG(1)
	bad := []func(){
		func() { NewHotCold(r, 0, 1, 0.5) },
		func() { NewHotCold(r, 10, 0, 0.5) },
		func() { NewHotCold(r, 10, 11, 0.5) },
		func() { NewHotCold(r, 10, 5, 1.5) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSequentialWindowSweeps(t *testing.T) {
	s := NewSequentialWindow(5)
	want := []int{0, 1, 2, 3, 4, 0, 1}
	for i, w := range want {
		if got := s.Sample(); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
	if s.Pos() != 2 {
		t.Fatalf("Pos = %d, want 2", s.Pos())
	}
}
