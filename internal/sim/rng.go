package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256** seeded via splitmix64). The simulator cannot use
// math/rand's global source because experiments must be exactly
// reproducible across runs and across parallel benchmark invocations;
// every component that needs randomness owns an RNG derived from the
// experiment seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initialises the generator state from seed using splitmix64,
// which guarantees a well-mixed non-zero state for any input.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

// Fork derives an independent generator from this one. Use it to hand a
// private stream to a sub-component without coupling its consumption
// pattern to the parent's.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }

// State exports the generator's raw xoshiro256** state words so a
// stream can be checkpointed mid-run and later resumed exactly where
// it left off (see internal/snapshot).
func (r *RNG) State() [4]uint64 { return r.s }

// Restore overwrites the generator state with a previously exported
// State. The next Uint64 continues the original stream bit-for-bit.
func (r *RNG) Restore(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
