package sim

import (
	"fmt"
	"math"
)

// Zipf samples integers in [0, n) with probability proportional to
// 1/(i+1)^s. Workload models use it for the skewed page-popularity
// distributions typical of key-value stores and web serving.
//
// The implementation precomputes the cumulative distribution and samples
// by binary search, which is exact, allocation-free per sample, and fast
// enough for the access volumes the simulator generates.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("sim: NewZipf with non-positive exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// N reports the support size of the distribution.
func (z *Zipf) N() int { return len(z.cdf) }

// RNG exposes the sampler's random stream so checkpoint code can
// serialize and restore it (the CDF itself is a pure function of the
// constructor arguments and carries no run state).
func (z *Zipf) RNG() *RNG { return z.rng }

// Sample draws the next value.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// HotCold models the classic two-level locality pattern: a fraction
// hotFrac of accesses go to the first hotItems items; the remainder are
// uniform over the cold tail. It captures working-set behaviour (Denning)
// without per-item CDF state, so it scales to multi-million-page
// footprints.
type HotCold struct {
	rng      *RNG
	items    int
	hotItems int
	hotFrac  float64
}

// NewHotCold builds a sampler over [0, items) where hotFrac of samples
// land in [0, hotItems).
func NewHotCold(rng *RNG, items, hotItems int, hotFrac float64) *HotCold {
	if items <= 0 {
		panic("sim: NewHotCold with non-positive items")
	}
	if hotItems <= 0 || hotItems > items {
		panic(fmt.Sprintf("sim: NewHotCold hotItems %d out of range (0, %d]", hotItems, items))
	}
	if hotFrac < 0 || hotFrac > 1 {
		panic("sim: NewHotCold hotFrac outside [0,1]")
	}
	return &HotCold{rng: rng, items: items, hotItems: hotItems, hotFrac: hotFrac}
}

// Sample draws the next item index.
func (h *HotCold) Sample() int {
	if h.rng.Bool(h.hotFrac) {
		return h.rng.Intn(h.hotItems)
	}
	if h.items == h.hotItems {
		return h.rng.Intn(h.items)
	}
	return h.hotItems + h.rng.Intn(h.items-h.hotItems)
}

// Items reports the support size.
func (h *HotCold) Items() int { return h.items }

// HotItems reports the size of the hot set.
func (h *HotCold) HotItems() int { return h.hotItems }

// SequentialWindow models streaming access: a cursor sweeps over [0, items)
// and each call returns the next position, wrapping at the end. Graph
// engines that stream edges from memory-mapped files (X-Stream, GraphChi
// shards) behave this way.
type SequentialWindow struct {
	items  int
	cursor int
}

// NewSequentialWindow builds a sweeping cursor over [0, items).
func NewSequentialWindow(items int) *SequentialWindow {
	if items <= 0 {
		panic("sim: NewSequentialWindow with non-positive items")
	}
	return &SequentialWindow{items: items}
}

// Sample returns the next position in the sweep.
func (s *SequentialWindow) Sample() int {
	v := s.cursor
	s.cursor++
	if s.cursor >= s.items {
		s.cursor = 0
	}
	return v
}

// Pos reports the current cursor position without advancing it.
func (s *SequentialWindow) Pos() int { return s.cursor }

// Seek moves the cursor to pos (mod items); checkpoint restore uses it
// to resume a sweep exactly where it stopped.
func (s *SequentialWindow) Seek(pos int) {
	if pos < 0 {
		pos = 0
	}
	s.cursor = pos % s.items
}

// RNG exposes the sampler's random stream for checkpoint code.
func (h *HotCold) RNG() *RNG { return h.rng }
