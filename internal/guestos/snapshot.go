package guestos

import (
	"fmt"
	"sort"

	"heteroos/internal/guestos/slab"
	"heteroos/internal/memsim"
	"heteroos/internal/snapshot"
)

// SnapshotState serializes the OS's complete mutable state. The encoding
// is deterministic: maps are emitted in sorted key order and every
// order-bearing structure (LRU links, free stacks, unpopulated slots) in
// its exact runtime order. Configuration (cfg, costs, callbacks) is not
// serialized — RestoreState overlays a freshly booted OS built from the
// same Config.
func (o *OS) SnapshotState(e *snapshot.Encoder) {
	st := o.rng.State()
	for _, s := range st {
		e.U64(s)
	}
	e.U32(o.epoch)
	e.JSON(o.ep)
	e.JSON(o.Cum)
	e.JSON(o.Window)
	e.JSON(o.WindowLife)

	o.snapshotStore(e)

	e.U32(uint32(len(o.nodes)))
	for i, n := range o.nodes {
		e.U64(n.populated)
		e.U64(n.LowWatermark)
		e.U64(n.HighWatermark)
		n.Buddy.Snapshot(e)
		n.PCP.Snapshot(e)
		l := o.lrus[i]
		for _, lst := range []*lruList{&l.active, &l.inactive} {
			e.U64(uint64(lst.head))
			e.U64(uint64(lst.tail))
			e.U64(lst.count)
		}
		e.U64(l.activations)
		e.U64(l.deactivations)
		slots := o.unpopulated[i]
		e.U32(uint32(len(slots)))
		for _, pfn := range slots {
			e.U64(uint64(pfn))
		}
	}

	o.AS.snapshot(e)
	o.PC.Snapshot(e)

	names := make([]string, 0, len(o.Slabs))
	for name := range o.Slabs {
		names = append(names, name)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, name := range names {
		o.Slabs[name].Snapshot(e)
	}

	vpns := make([]uint64, 0, len(o.swap.slots))
	for vpn := range o.swap.slots {
		vpns = append(vpns, uint64(vpn))
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	e.U32(uint32(len(vpns)))
	for _, vpn := range vpns {
		e.U64(vpn)
		e.U64(o.swap.slots[VPN(vpn)])
	}
	e.U64(o.swap.outs)
	e.U64(o.swap.ins)

	e.U32(uint32(len(o.netRefs)))
	for _, r := range o.netRefs {
		e.U64(r.SlabBase)
		e.Int(r.Index)
	}

	snapshotRing(e, o.admitRing)
	snapshotRing(e, o.promoteRing)
	snapshotRing(e, o.demoteRing)
	e.F64(o.admitRate)
	e.F64(o.promoteRate)
	e.F64(o.demoteRegret)
	e.Int(o.admitSeen)
	e.Int(o.promoteSeen)
	e.Int(o.demoteSeen)
}

// RestoreState overlays a snapshot onto a freshly booted OS with the
// same Config. Every piece of mutable state is overwritten, including
// state the boot path already consumed (frames, RNG draws), so the
// result is indistinguishable from the OS that took the snapshot. Any
// attached PageIndexer is NOT notified — the caller must re-seed or
// re-attach it afterwards.
func (o *OS) RestoreState(d *snapshot.Decoder) error {
	return o.RestoreStateMapped(d, nil)
}

// RestoreStateMapped is RestoreState with an MFN translation applied to
// the P2M column as it is decoded: every serialized machine frame
// number is passed through mapMFN before landing in the page store.
// Cross-host live migration uses this to rebind a guest image onto the
// destination host's frames; the map must cover every backed MFN in the
// image and leave NilMFN fixed. A nil mapMFN is the identity.
func (o *OS) RestoreStateMapped(d *snapshot.Decoder, mapMFN func(memsim.MFN) memsim.MFN) error {
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	o.rng.Restore(st)
	o.epoch = d.U32()
	if err := d.JSON(&o.ep); err != nil {
		return err
	}
	if err := d.JSON(&o.Cum); err != nil {
		return err
	}
	if err := d.JSON(&o.Window); err != nil {
		return err
	}
	if err := d.JSON(&o.WindowLife); err != nil {
		return err
	}

	if err := o.restoreStore(d, mapMFN); err != nil {
		return err
	}

	if n := int(d.U32()); n != len(o.nodes) {
		return fmt.Errorf("guestos: snapshot has %d nodes, OS has %d", n, len(o.nodes))
	}
	for i, n := range o.nodes {
		n.populated = d.U64()
		n.LowWatermark = d.U64()
		n.HighWatermark = d.U64()
		if err := n.Buddy.Restore(d); err != nil {
			return err
		}
		if err := n.PCP.Restore(d); err != nil {
			return err
		}
		l := o.lrus[i]
		for _, lst := range []*lruList{&l.active, &l.inactive} {
			lst.head = PFN(d.U64())
			lst.tail = PFN(d.U64())
			lst.count = d.U64()
		}
		l.activations = d.U64()
		l.deactivations = d.U64()
		slots := make([]PFN, int(d.U32()))
		for j := range slots {
			slots[j] = PFN(d.U64())
		}
		o.unpopulated[i] = slots
	}

	if err := o.AS.restore(d); err != nil {
		return err
	}
	if err := o.PC.Restore(d); err != nil {
		return err
	}

	if n := int(d.U32()); n != len(o.Slabs) {
		return fmt.Errorf("guestos: snapshot has %d slab caches, OS has %d", n, len(o.Slabs))
	}
	names := make([]string, 0, len(o.Slabs))
	for name := range o.Slabs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := o.Slabs[name].Restore(d); err != nil {
			return err
		}
	}

	nswap := int(d.U32())
	o.swap.slots = make(map[VPN]uint64, nswap)
	for i := 0; i < nswap; i++ {
		vpn := VPN(d.U64())
		o.swap.slots[vpn] = d.U64()
	}
	o.swap.outs = d.U64()
	o.swap.ins = d.U64()

	o.netRefs = o.netRefs[:0]
	for i, n := 0, int(d.U32()); i < n; i++ {
		base := d.U64()
		o.netRefs = append(o.netRefs, slab.ObjRef{SlabBase: base, Index: d.Int()})
	}

	o.admitRing = restoreRing(d)
	o.promoteRing = restoreRing(d)
	o.demoteRing = restoreRing(d)
	o.admitRate = d.F64()
	o.promoteRate = d.F64()
	o.demoteRegret = d.F64()
	o.admitSeen = d.Int()
	o.promoteSeen = d.Int()
	o.demoteSeen = d.Int()
	// The mapping generation is not serialized; the restored address
	// space starts a fresh count, so drop any cached tracking list.
	o.trackValid = false
	return d.Err()
}

func snapshotRing(e *snapshot.Encoder, ring []admitSample) {
	e.U32(uint32(len(ring)))
	for _, s := range ring {
		e.U64(uint64(s.pfn))
		e.U64(s.tag)
		e.U32(s.epoch)
	}
}

func restoreRing(d *snapshot.Decoder) []admitSample {
	n := int(d.U32())
	if n == 0 {
		return nil
	}
	ring := make([]admitSample, n)
	for i := range ring {
		ring[i] = admitSample{pfn: PFN(d.U64()), tag: d.U64(), epoch: d.U32()}
	}
	return ring
}

// snapshotStore emits the page store sparsely and columnar (format v2):
// only frames whose metadata differs from the boot-time default, as a
// PFN list followed by one array per field in the PFN list's order. The
// column layout mirrors the in-memory struct-of-arrays store; flags are
// materialized into the legacy PageFlags word so bitmap packing stays a
// private representation detail.
func (o *OS) snapshotStore(e *snapshot.Encoder) {
	st := o.store
	e.U64(st.Len())
	pfns := make([]PFN, 0, 1024)
	for pfn := PFN(0); pfn < PFN(st.Len()); pfn++ {
		if !st.IsDefault(pfn) {
			pfns = append(pfns, pfn)
		}
	}
	e.U32(uint32(len(pfns)))
	for _, pfn := range pfns {
		e.U64(uint64(pfn))
	}
	for _, pfn := range pfns {
		e.U64(uint64(st.MFN(pfn)))
	}
	for _, pfn := range pfns {
		e.U8(uint8(st.Kind(pfn)))
	}
	for _, pfn := range pfns {
		e.U16(uint16(st.Flags(pfn)))
	}
	for _, pfn := range pfns {
		e.U64(uint64(st.VPN(pfn)))
	}
	for _, pfn := range pfns {
		e.U32(uint32(st.File(pfn)))
	}
	for _, pfn := range pfns {
		e.U64(st.FileOff(pfn))
	}
	for _, pfn := range pfns {
		e.U64(uint64(st.LRUPrev(pfn)))
	}
	for _, pfn := range pfns {
		e.U64(uint64(st.LRUNext(pfn)))
	}
	for _, pfn := range pfns {
		e.U32(st.LastUse(pfn))
	}
	for _, pfn := range pfns {
		e.U32(st.Heat(pfn))
	}
	for _, pfn := range pfns {
		e.U8(st.ScanHeat(pfn))
	}
	for _, pfn := range pfns {
		e.U8(st.ScanWriteHeat(pfn))
	}
	for _, pfn := range pfns {
		e.U64(st.Tag(pfn))
	}
}

func (o *OS) restoreStore(d *snapshot.Decoder, mapMFN func(memsim.MFN) memsim.MFN) error {
	st := o.store
	if n := d.U64(); n != st.Len() {
		return fmt.Errorf("guestos: snapshot store spans %d frames, OS has %d", n, st.Len())
	}
	st.ResetAll()
	pfns := make([]PFN, int(d.U32()))
	for i := range pfns {
		pfn := d.U64()
		if pfn >= st.Len() {
			return fmt.Errorf("guestos: snapshot page %d outside store", pfn)
		}
		pfns[i] = PFN(pfn)
	}
	for _, pfn := range pfns {
		mfn := memsim.MFN(d.U64())
		if mapMFN != nil {
			mfn = mapMFN(mfn)
		}
		st.SetMFN(pfn, mfn)
	}
	for _, pfn := range pfns {
		st.SetKind(pfn, PageKind(d.U8()))
	}
	for _, pfn := range pfns {
		st.SetAllFlags(pfn, PageFlags(d.U16()))
	}
	for _, pfn := range pfns {
		st.SetVPN(pfn, VPN(d.U64()))
	}
	for _, pfn := range pfns {
		st.SetFile(pfn, FileID(d.U32()))
	}
	for _, pfn := range pfns {
		st.SetFileOff(pfn, d.U64())
	}
	for _, pfn := range pfns {
		st.lruPrev[pfn] = PFN(d.U64())
	}
	for _, pfn := range pfns {
		st.lruNext[pfn] = PFN(d.U64())
	}
	for _, pfn := range pfns {
		st.SetLastUse(pfn, d.U32())
	}
	for _, pfn := range pfns {
		st.SetHeat(pfn, d.U32())
	}
	for _, pfn := range pfns {
		st.SetScanHeat(pfn, d.U8())
	}
	for _, pfn := range pfns {
		st.SetScanWriteHeat(pfn, d.U8())
	}
	for _, pfn := range pfns {
		st.SetTag(pfn, d.U64())
	}
	return d.Err()
}

// snapshot serializes the address space: VMAs in creation order, the
// allocation cursors, counters, and the page-table tree (pre-order, with
// per-node frame numbers — table frames are real guest pages and must
// survive a round trip).
func (a *AddrSpace) snapshot(e *snapshot.Encoder) {
	e.U32(uint32(len(a.order)))
	for _, id := range a.order {
		v := a.vmas[id]
		e.U32(uint32(v.ID))
		e.U64(uint64(v.Start))
		e.U64(v.Pages)
		e.U8(uint8(v.Kind))
		e.U32(uint32(v.File))
		e.U64(v.Resident)
	}
	e.U32(uint32(a.nextID))
	e.U64(uint64(a.nextVPN))
	e.U64(a.ptPages)
	e.U64(a.faults)
	e.U64(a.swapIns)
	e.U64(a.walkSteps)
	e.Bool(a.root != nil)
	if a.root != nil {
		snapshotPTNode(e, a.root, ptLevels-1)
	}
}

func snapshotPTNode(e *snapshot.Encoder, n *ptNode, level int) {
	e.U64(uint64(n.pfn))
	if level == 0 {
		var count uint16
		for _, l := range n.leaves {
			if l != ptEntryAbsent {
				count++
			}
		}
		e.U16(count)
		for idx, l := range n.leaves {
			if l != ptEntryAbsent {
				e.U16(uint16(idx))
				e.U64(uint64(l))
			}
		}
		return
	}
	var count uint16
	for _, c := range n.children {
		if c != nil {
			count++
		}
	}
	e.U16(count)
	for idx, c := range n.children {
		if c != nil {
			e.U16(uint16(idx))
			snapshotPTNode(e, c, level-1)
		}
	}
}

func (a *AddrSpace) restore(d *snapshot.Decoder) error {
	nv := int(d.U32())
	a.vmas = make(map[VMAID]*VMA, nv)
	a.order = make([]VMAID, 0, nv)
	for i := 0; i < nv; i++ {
		v := &VMA{
			ID:    VMAID(d.U32()),
			Start: VPN(d.U64()),
			Pages: d.U64(),
			Kind:  PageKind(d.U8()),
			File:  FileID(d.U32()),
		}
		v.Resident = d.U64()
		a.vmas[v.ID] = v
		a.order = append(a.order, v.ID)
	}
	a.nextID = VMAID(d.U32())
	a.nextVPN = VPN(d.U64())
	a.ptPages = d.U64()
	a.faults = d.U64()
	a.swapIns = d.U64()
	a.walkSteps = d.U64()
	a.root = nil
	if d.Bool() {
		root, err := restorePTNode(d, ptLevels-1)
		if err != nil {
			return err
		}
		a.root = root
	}
	return d.Err()
}

func restorePTNode(d *snapshot.Decoder, level int) (*ptNode, error) {
	n := &ptNode{pfn: PFN(d.U64())}
	count := int(d.U16())
	if count > ptFanout {
		return nil, fmt.Errorf("mm: snapshot page-table node with %d entries", count)
	}
	if level == 0 {
		n.leaves = make([]PFN, ptFanout)
		for i := range n.leaves {
			n.leaves[i] = ptEntryAbsent
		}
		for i := 0; i < count; i++ {
			idx := int(d.U16())
			if idx >= ptFanout {
				return nil, fmt.Errorf("mm: snapshot leaf index %d out of range", idx)
			}
			n.leaves[idx] = PFN(d.U64())
			n.live++
		}
		return n, d.Err()
	}
	n.children = make([]*ptNode, ptFanout)
	for i := 0; i < count; i++ {
		idx := int(d.U16())
		if idx >= ptFanout {
			return nil, fmt.Errorf("mm: snapshot child index %d out of range", idx)
		}
		child, err := restorePTNode(d, level-1)
		if err != nil {
			return nil, err
		}
		n.children[idx] = child
		n.live++
	}
	return n, d.Err()
}
