package buddy

import (
	"errors"
	"testing"
	"testing/quick"
)

func newFull(base, size uint64) *Allocator {
	a := New(base, size)
	a.AddRange(base, size)
	return a
}

func TestAllocFreeSingle(t *testing.T) {
	a := newFull(0, 1024)
	if a.FreePages() != 1024 {
		t.Fatalf("free = %d", a.FreePages())
	}
	p, err := a.AllocPage()
	if err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 1023 {
		t.Fatalf("free = %d after alloc", a.FreePages())
	}
	a.FreePage(p)
	if a.FreePages() != 1024 {
		t.Fatalf("free = %d after free", a.FreePages())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddressOrdered(t *testing.T) {
	a := newFull(100, 256)
	p1, _ := a.AllocPage()
	p2, _ := a.AllocPage()
	if p1 != 100 || p2 != 101 {
		t.Fatalf("not address ordered: %d, %d", p1, p2)
	}
}

func TestOrderAllocAlignment(t *testing.T) {
	a := newFull(0, 1024)
	for order := 0; order <= MaxOrder; order++ {
		p, err := a.Alloc(order)
		if err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if p%(1<<uint(order)) != 0 {
			t.Fatalf("order %d block at %d misaligned", order, p)
		}
		a.Free(p, order)
	}
	if a.FreePages() != 1024 {
		t.Fatalf("leaked pages: %d", a.FreePages())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a := newFull(0, 16)
	// Allocate all 16 pages singly: splits must occur.
	var pages []uint64
	for i := 0; i < 16; i++ {
		p, err := a.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	if a.Splits() == 0 {
		t.Fatal("expected splits")
	}
	if _, err := a.AllocPage(); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
	// Free all: coalescing must reassemble one order-4 block.
	for _, p := range pages {
		a.FreePage(p)
	}
	if a.Coalesces() == 0 {
		t.Fatal("expected coalesces")
	}
	if p, err := a.Alloc(4); err != nil || p != 0 {
		t.Fatalf("order-4 realloc failed: %d, %v", p, err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := newFull(0, 8)
	p, _ := a.AllocPage()
	a.FreePage(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.FreePage(p)
}

func TestFreeOutsideSpanPanics(t *testing.T) {
	a := newFull(10, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-span free did not panic")
		}
	}()
	a.FreePage(5)
}

func TestInvalidOrder(t *testing.T) {
	a := newFull(0, 8)
	if _, err := a.Alloc(-1); err == nil {
		t.Fatal("negative order accepted")
	}
	if _, err := a.Alloc(MaxOrder + 1); err == nil {
		t.Fatal("oversized order accepted")
	}
}

func TestPartialPopulation(t *testing.T) {
	a := New(0, 1024)
	if _, err := a.AllocPage(); !errors.Is(err, ErrNoMemory) {
		t.Fatal("unpopulated allocator should be empty")
	}
	a.AddRange(512, 64)
	if a.FreePages() != 64 {
		t.Fatalf("free = %d", a.FreePages())
	}
	p, err := a.AllocPage()
	if err != nil || p < 512 || p >= 576 {
		t.Fatalf("allocated %d from wrong range, err=%v", p, err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserve(t *testing.T) {
	a := newFull(0, 128)
	got := a.Reserve(50)
	if len(got) != 50 {
		t.Fatalf("reserved %d, want 50", len(got))
	}
	if a.FreePages() != 78 {
		t.Fatalf("free = %d, want 78", a.FreePages())
	}
	seen := map[uint64]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate frame %d", p)
		}
		seen[p] = true
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Reserve more than available: returns what it can.
	rest := a.Reserve(1000)
	if len(rest) != 78 {
		t.Fatalf("drained %d, want 78", len(rest))
	}
	if a.FreePages() != 0 {
		t.Fatal("allocator should be empty")
	}
}

func TestReserveReturnsToPool(t *testing.T) {
	a := newFull(0, 64)
	got := a.Reserve(3) // forces over-split of a larger block
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	if a.FreePages() != 61 {
		t.Fatalf("free = %d", a.FreePages())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentationThenRecovery(t *testing.T) {
	a := newFull(0, 256)
	var odd []uint64
	var even []uint64
	for i := 0; i < 256; i++ {
		p, err := a.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			even = append(even, p)
		} else {
			odd = append(odd, p)
		}
	}
	for _, p := range odd {
		a.FreePage(p)
	}
	// Only order-0 blocks available now.
	if _, err := a.Alloc(1); !errors.Is(err, ErrNoMemory) {
		t.Fatal("order-1 should fail under full fragmentation")
	}
	for _, p := range even {
		a.FreePage(p)
	}
	// Everything coalesces back; a large block must succeed.
	if _, err := a.Alloc(8); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyInvariantProperty(t *testing.T) {
	// Property: arbitrary alloc/free interleavings preserve invariants
	// and conserve frames.
	type held struct {
		pfn   uint64
		order int
	}
	f := func(ops []uint16) bool {
		a := newFull(0, 512)
		var live []held
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				order := int(op>>2) % 4
				p, err := a.Alloc(order)
				if err == nil {
					live = append(live, held{p, order})
				}
			} else {
				i := int(op>>2) % len(live)
				a.Free(live[i].pfn, live[i].order)
				live = append(live[:i], live[i+1:]...)
			}
		}
		var livePages uint64
		for _, h := range live {
			livePages += uint64(1) << h.order
		}
		if a.FreePages()+livePages != 512 {
			return false
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	a := New(7, 100)
	if a.Base() != 7 || a.Size() != 100 {
		t.Fatal("accessors wrong")
	}
}
