// Package buddy implements the binary buddy page allocator the guest OS
// uses per NUMA node (Linux's zoned buddy allocator, Section 3.1 of the
// paper). It is generic over uint64 frame indices so it can be tested in
// isolation and reused by any node type.
//
// The allocator is address-ordered: allocations are served from the
// lowest-addressed free block of the smallest sufficient order, which
// keeps behaviour deterministic across runs (a requirement for
// reproducible experiments) and mirrors Linux's preference for low
// physical addresses.
//
// A node's frame span may be only partially populated: in virtualized
// systems the balloon driver adds (populates) and removes (depopulates)
// frames at runtime. Unpopulated frames are simply absent from the free
// lists.
package buddy

import (
	"container/heap"
	"errors"
	"fmt"
)

// MaxOrder is the largest supported allocation order (2^10 pages = 4 MiB
// blocks at 4 KiB pages, matching Linux's MAX_ORDER-1 = 10).
const MaxOrder = 10

// ErrNoMemory is returned when no free block of a sufficient order exists.
var ErrNoMemory = errors.New("buddy: out of memory")

// orderHeap is a min-heap of block base addresses for one order.
// Removal of arbitrary elements (needed when a block's buddy is consumed
// by coalescing) is done lazily: stale entries are skipped on pop by
// checking membership in the allocator's free-block map.
type orderHeap []uint64

func (h orderHeap) Len() int            { return len(h) }
func (h orderHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h orderHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *orderHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *orderHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Allocator is a buddy allocator over the frame span [base, base+size).
type Allocator struct {
	base, size uint64
	// freeOrder maps a free block's base to its order. A block is free
	// iff present here; heaps may contain stale entries.
	freeOrder map[uint64]int
	heaps     [MaxOrder + 1]orderHeap
	freePages uint64
	// splitCount/coalesceCount are exposed for allocator-behaviour tests
	// and ablation benchmarks.
	splitCount, coalesceCount uint64
}

// New creates an allocator over [base, base+size) with no populated
// frames. Call AddRange to populate.
func New(base, size uint64) *Allocator {
	return &Allocator{
		base:      base,
		size:      size,
		freeOrder: make(map[uint64]int),
	}
}

// Base returns the first frame of the span.
func (a *Allocator) Base() uint64 { return a.base }

// Size returns the span length in frames.
func (a *Allocator) Size() uint64 { return a.size }

// FreePages reports the number of free frames.
func (a *Allocator) FreePages() uint64 { return a.freePages }

// Splits reports how many block splits have occurred (ablation metric).
func (a *Allocator) Splits() uint64 { return a.splitCount }

// Coalesces reports how many buddy merges have occurred.
func (a *Allocator) Coalesces() uint64 { return a.coalesceCount }

func (a *Allocator) contains(pfn uint64, order int) bool {
	n := uint64(1) << order
	return pfn >= a.base && pfn-a.base+n <= a.size
}

// pushFree records a free block and attempts upward coalescing, exactly
// like __free_one_page: while the buddy block of the same order is also
// free, merge and move up an order.
func (a *Allocator) pushFree(pfn uint64, order int) {
	for order < MaxOrder {
		rel := pfn - a.base
		buddyRel := rel ^ (uint64(1) << order)
		buddyPfn := a.base + buddyRel
		if o, ok := a.freeOrder[buddyPfn]; !ok || o != order || !a.contains(buddyPfn, order) {
			break
		}
		// Merge: remove the buddy (lazily from its heap), take the lower
		// base as the merged block.
		delete(a.freeOrder, buddyPfn)
		if buddyRel < rel {
			pfn = buddyPfn
		}
		order++
		a.coalesceCount++
	}
	a.freeOrder[pfn] = order
	heap.Push(&a.heaps[order], pfn)
}

// popFree removes and returns the lowest-addressed free block of exactly
// this order, or false if none exists.
func (a *Allocator) popFree(order int) (uint64, bool) {
	h := &a.heaps[order]
	for h.Len() > 0 {
		pfn := (*h)[0]
		if o, ok := a.freeOrder[pfn]; ok && o == order {
			heap.Pop(h)
			delete(a.freeOrder, pfn)
			return pfn, true
		}
		heap.Pop(h) // stale entry
	}
	return 0, false
}

// Alloc allocates a block of 2^order contiguous frames and returns its
// base frame. Blocks are split top-down from the smallest sufficient
// free order.
func (a *Allocator) Alloc(order int) (uint64, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("buddy: invalid order %d", order)
	}
	for o := order; o <= MaxOrder; o++ {
		pfn, ok := a.popFree(o)
		if !ok {
			continue
		}
		// Split down to the requested order, freeing the upper halves.
		for o > order {
			o--
			half := pfn + (uint64(1) << o)
			a.freeOrder[half] = o
			heap.Push(&a.heaps[o], half)
			a.splitCount++
		}
		a.freePages -= uint64(1) << order
		return pfn, nil
	}
	return 0, fmt.Errorf("%w: order %d (free pages %d)", ErrNoMemory, order, a.freePages)
}

// AllocPage allocates a single frame.
func (a *Allocator) AllocPage() (uint64, error) { return a.Alloc(0) }

// Free returns a block of 2^order frames starting at pfn. Freeing a
// block that overlaps a free block panics (double free).
func (a *Allocator) Free(pfn uint64, order int) {
	if order < 0 || order > MaxOrder {
		panic(fmt.Sprintf("buddy: invalid order %d", order))
	}
	if !a.contains(pfn, order) {
		panic(fmt.Sprintf("buddy: free of [%d,+2^%d) outside span [%d,%d)", pfn, order, a.base, a.base+a.size))
	}
	if _, ok := a.freeOrder[pfn]; ok {
		panic(fmt.Sprintf("buddy: double free of block %d", pfn))
	}
	a.freePages += uint64(1) << order
	a.pushFree(pfn, order)
}

// FreePage returns a single frame.
func (a *Allocator) FreePage(pfn uint64) { a.Free(pfn, 0) }

// AddRange populates n frames starting at pfn, making them available for
// allocation. Used at boot and when the balloon driver inflates the
// guest's reservation. Frames are inserted page-wise; coalescing
// reassembles large blocks automatically.
func (a *Allocator) AddRange(pfn, n uint64) {
	for i := uint64(0); i < n; i++ {
		a.Free(pfn+i, 0)
	}
}

// Reserve removes up to n free frames from the allocator and returns
// them (balloon deflation path: the guest surrenders frames to the VMM).
// It prefers small blocks to avoid fragmenting large ones.
func (a *Allocator) Reserve(n uint64) []uint64 {
	out := make([]uint64, 0, n)
	for uint64(len(out)) < n {
		got := false
		for o := 0; o <= MaxOrder && uint64(len(out)) < n; o++ {
			pfn, ok := a.popFree(o)
			if !ok {
				continue
			}
			got = true
			a.freePages -= uint64(1) << o
			for i := uint64(0); i < uint64(1)<<o; i++ {
				if uint64(len(out)) < n {
					out = append(out, pfn+i)
				} else {
					// Over-split: return the tail frames.
					a.freePages++
					a.pushFree(pfn+i, 0)
				}
			}
			break
		}
		if !got {
			break
		}
	}
	return out
}

// CheckInvariants validates the free-block bookkeeping: block count
// matches freePages, no two free blocks overlap, and no free block has a
// free buddy of the same order (coalescing is maximal).
func (a *Allocator) CheckInvariants() error {
	var total uint64
	for pfn, order := range a.freeOrder {
		if !a.contains(pfn, order) {
			return fmt.Errorf("buddy: free block %d order %d outside span", pfn, order)
		}
		if (pfn-a.base)%(uint64(1)<<order) != 0 {
			return fmt.Errorf("buddy: free block %d misaligned for order %d", pfn, order)
		}
		total += uint64(1) << order
		if order < MaxOrder {
			buddyPfn := a.base + ((pfn - a.base) ^ (uint64(1) << order))
			if o, ok := a.freeOrder[buddyPfn]; ok && o == order && a.contains(buddyPfn, order) {
				return fmt.Errorf("buddy: blocks %d and %d of order %d not coalesced", pfn, buddyPfn, order)
			}
		}
	}
	if total != a.freePages {
		return fmt.Errorf("buddy: free map total %d != freePages %d", total, a.freePages)
	}
	// Overlap check: mark every covered frame.
	covered := make(map[uint64]bool, total)
	for pfn, order := range a.freeOrder {
		for i := uint64(0); i < uint64(1)<<order; i++ {
			if covered[pfn+i] {
				return fmt.Errorf("buddy: frame %d covered by two free blocks", pfn+i)
			}
			covered[pfn+i] = true
		}
	}
	return nil
}
