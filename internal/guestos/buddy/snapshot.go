package buddy

import (
	"fmt"
	"sort"

	"heteroos/internal/snapshot"
)

// Snapshot serializes the allocator's mutable state: the free-block
// map (sorted by base for determinism) and the split/coalesce
// counters. The per-order heaps are not serialized — they are a lazy
// view of freeOrder (stale entries are skipped on pop), and pop order
// depends only on block addresses, so rebuilding them from the sorted
// map reproduces allocation behaviour exactly.
func (a *Allocator) Snapshot(e *snapshot.Encoder) {
	e.U64(a.base)
	e.U64(a.size)
	e.U64(a.freePages)
	e.U64(a.splitCount)
	e.U64(a.coalesceCount)
	bases := make([]uint64, 0, len(a.freeOrder))
	for pfn := range a.freeOrder {
		bases = append(bases, pfn)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	e.U32(uint32(len(bases)))
	for _, pfn := range bases {
		e.U64(pfn)
		e.U8(uint8(a.freeOrder[pfn]))
	}
}

// Restore overwrites the allocator's mutable state from a snapshot.
// The span must match the one the snapshot was taken from. Heaps are
// rebuilt per order from ascending bases: a sorted slice is already a
// valid min-heap, and dropping the live allocator's stale entries
// changes no observable behaviour.
func (a *Allocator) Restore(d *snapshot.Decoder) error {
	base, size := d.U64(), d.U64()
	if base != a.base || size != a.size {
		return fmt.Errorf("buddy: snapshot span [%d,+%d) != allocator span [%d,+%d)", base, size, a.base, a.size)
	}
	a.freePages = d.U64()
	a.splitCount = d.U64()
	a.coalesceCount = d.U64()
	n := int(d.U32())
	a.freeOrder = make(map[uint64]int, n)
	for o := range a.heaps {
		a.heaps[o] = a.heaps[o][:0]
	}
	for i := 0; i < n; i++ {
		pfn := d.U64()
		order := int(d.U8())
		if order < 0 || order > MaxOrder {
			return fmt.Errorf("buddy: snapshot block %d has invalid order %d", pfn, order)
		}
		a.freeOrder[pfn] = order
		a.heaps[order] = append(a.heaps[order], pfn)
	}
	return d.Err()
}
