package guestos

import (
	"fmt"
	"sort"
)

// VMAID identifies a virtual memory area.
type VMAID uint32

// VMA is one contiguous virtual memory region of the guest application:
// an anonymous (heap) mapping or a file mapping backed by the page
// cache. The coordinated manager exports VMA extents to the VMM as the
// hotness tracking list (Section 4.1: "we extract it using the virtual
// memory area (VMA) structure").
type VMA struct {
	ID    VMAID
	Start VPN
	Pages uint64
	Kind  PageKind // KindAnon or KindPageCache (file-mapped)
	File  FileID   // for file mappings
	// Resident counts currently mapped pages.
	Resident uint64
}

// End returns one past the last VPN.
func (v *VMA) End() VPN { return v.Start + VPN(v.Pages) }

// Contains reports whether vpn falls inside the area.
func (v *VMA) Contains(vpn VPN) bool { return vpn >= v.Start && vpn < v.End() }

// Page-table geometry: x86-64 four-level paging, 9 bits per level.
const (
	ptLevels       = 4
	ptFanoutBits   = 9
	ptFanout       = 1 << ptFanoutBits
	ptFanoutMask   = ptFanout - 1
	vmaGuardPages  = 16 // unmapped gap between VMAs
	ptEntryAbsent  = NilPFN
	ptEntrySwapped = NilPFN - 1 // leaf marker: page is in swap
)

// ptNode is one page-table page. Interior nodes hold children; level-0
// nodes hold leaf PFN entries. Each node consumes one guest frame of
// KindPageTable, so page-table page counts (Figure 4) are real.
type ptNode struct {
	pfn      PFN // the frame holding this table
	children []*ptNode
	leaves   []PFN
	live     int // live entries; node freed when it reaches 0
}

// AddrSpace is the application address space of a guest VM: the VMA set
// plus the page-table tree. The simulator models one address space per
// VM (the paper's workloads are one application per VM).
type AddrSpace struct {
	os      *OS
	vmas    map[VMAID]*VMA
	order   []VMAID // creation order, for deterministic iteration
	nextID  VMAID
	nextVPN VPN
	root    *ptNode

	ptPages   uint64
	faults    uint64
	swapIns   uint64
	walkSteps uint64

	// mapGen counts mapping mutations (VMA create/destroy, leaf entry
	// writes). OS.TrackingList caches its export against it, so only
	// passes after real mapping churn pay the VMA re-walk. Not
	// serialized: a restored address space starts a fresh generation and
	// the caller's caches revalidate by rebuilding once.
	mapGen uint64
}

func newAddrSpace(os *OS) *AddrSpace {
	return &AddrSpace{
		os:      os,
		vmas:    make(map[VMAID]*VMA),
		nextID:  1,
		nextVPN: 1 << 20, // start high enough to keep VPN 0 unused
	}
}

// Mmap creates a new VMA of pages pages. kind must be KindAnon (heap)
// or KindPageCache (file mapping, with file naming the backing file).
// Pages are not populated until touched (demand paging).
func (a *AddrSpace) Mmap(pages uint64, kind PageKind, file FileID) (*VMA, error) {
	if pages == 0 {
		return nil, fmt.Errorf("mm: zero-page mmap")
	}
	if kind != KindAnon && kind != KindPageCache {
		return nil, fmt.Errorf("mm: mmap of kind %v not supported", kind)
	}
	v := &VMA{ID: a.nextID, Start: a.nextVPN, Pages: pages, Kind: kind, File: file}
	a.nextID++
	a.nextVPN += VPN(pages + vmaGuardPages)
	a.vmas[v.ID] = v
	a.order = append(a.order, v.ID)
	a.mapGen++
	return v, nil
}

// Munmap removes a VMA, unmapping and releasing all resident pages.
// Anonymous pages are freed; file-mapped pages remain in the page cache
// (they belong to the file, not the mapping).
func (a *AddrSpace) Munmap(id VMAID) error {
	v, ok := a.vmas[id]
	if !ok {
		return fmt.Errorf("mm: munmap of unknown VMA %d", id)
	}
	for vpn := v.Start; vpn < v.End(); vpn++ {
		pfn, state := a.lookup(vpn)
		switch state {
		case ptPresent:
			a.unmapPage(vpn)
			if v.Kind == KindAnon {
				a.os.releaseAnonPage(pfn)
			} else {
				a.os.fileUnmapped(pfn)
			}
		case ptSwapped:
			a.clearSwapEntry(vpn)
			a.os.swap.free(vpn)
		}
	}
	delete(a.vmas, id)
	for i, oid := range a.order {
		if oid == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	a.mapGen++
	return nil
}

// VMAs returns the areas in creation order.
func (a *AddrSpace) VMAs() []*VMA {
	out := make([]*VMA, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, a.vmas[id])
	}
	return out
}

// VMAByID returns one area.
func (a *AddrSpace) VMAByID(id VMAID) (*VMA, bool) {
	v, ok := a.vmas[id]
	return v, ok
}

// FindVMA locates the area containing vpn.
func (a *AddrSpace) FindVMA(vpn VPN) (*VMA, bool) {
	for _, id := range a.order {
		if v := a.vmas[id]; v.Contains(vpn) {
			return v, true
		}
	}
	return nil, false
}

// ptState classifies a leaf entry.
type ptState int

const (
	ptAbsent ptState = iota
	ptPresent
	ptSwapped
)

func ptIndex(vpn VPN, level int) int {
	return int(vpn>>(uint(level)*ptFanoutBits)) & ptFanoutMask
}

// walk descends to the level-0 node covering vpn, optionally allocating
// interior nodes. Returns nil if absent and alloc is false.
func (a *AddrSpace) walk(vpn VPN, alloc bool) *ptNode {
	if a.root == nil {
		if !alloc {
			return nil
		}
		a.root = a.newPTNode(ptLevels - 1)
	}
	n := a.root
	for level := ptLevels - 1; level > 0; level-- {
		a.walkSteps++
		idx := ptIndex(vpn, level)
		child := n.children[idx]
		if child == nil {
			if !alloc {
				return nil
			}
			child = a.newPTNode(level - 1)
			n.children[idx] = child
			n.live++
		}
		n = child
	}
	return n
}

func (a *AddrSpace) newPTNode(level int) *ptNode {
	pfn := a.os.allocPTPage()
	n := &ptNode{pfn: pfn}
	if level == 0 {
		n.leaves = make([]PFN, ptFanout)
		for i := range n.leaves {
			n.leaves[i] = ptEntryAbsent
		}
	} else {
		n.children = make([]*ptNode, ptFanout)
	}
	a.ptPages++
	return n
}

// lookup reads the leaf entry for vpn.
func (a *AddrSpace) lookup(vpn VPN) (PFN, ptState) {
	n := a.walk(vpn, false)
	if n == nil {
		return NilPFN, ptAbsent
	}
	e := n.leaves[ptIndex(vpn, 0)]
	switch e {
	case ptEntryAbsent:
		return NilPFN, ptAbsent
	case ptEntrySwapped:
		return NilPFN, ptSwapped
	default:
		return e, ptPresent
	}
}

// Translate resolves vpn to its mapped frame without faulting.
func (a *AddrSpace) Translate(vpn VPN) (PFN, bool) {
	pfn, st := a.lookup(vpn)
	return pfn, st == ptPresent
}

// mapPage installs vpn → pfn.
func (a *AddrSpace) mapPage(vpn VPN, pfn PFN) {
	n := a.walk(vpn, true)
	idx := ptIndex(vpn, 0)
	if n.leaves[idx] != ptEntryAbsent && n.leaves[idx] != ptEntrySwapped {
		panic(fmt.Sprintf("mm: remapping vpn %d over live entry", vpn))
	}
	if n.leaves[idx] == ptEntryAbsent {
		n.live++
	}
	n.leaves[idx] = pfn
	a.mapGen++
}

// unmapPage clears the mapping of vpn. Page-table pages whose last entry
// disappears are freed bottom-up.
func (a *AddrSpace) unmapPage(vpn VPN) {
	a.setLeaf(vpn, ptEntryAbsent, true)
}

// markSwapped replaces a present entry with the swap marker.
func (a *AddrSpace) markSwapped(vpn VPN) {
	a.setLeaf(vpn, ptEntrySwapped, false)
}

// clearSwapEntry removes a swap marker.
func (a *AddrSpace) clearSwapEntry(vpn VPN) {
	a.setLeaf(vpn, ptEntryAbsent, true)
}

// setLeaf writes a leaf entry; when clearing (entry == ptEntryAbsent and
// reclaim), empty table pages are released.
func (a *AddrSpace) setLeaf(vpn VPN, entry PFN, reclaim bool) {
	if a.root == nil {
		panic("mm: setLeaf on empty table")
	}
	// Record the descent path for bottom-up reclaim.
	var path [ptLevels]*ptNode
	var idxs [ptLevels]int
	n := a.root
	for level := ptLevels - 1; level > 0; level-- {
		path[level] = n
		idxs[level] = ptIndex(vpn, level)
		n = n.children[idxs[level]]
		if n == nil {
			panic(fmt.Sprintf("mm: setLeaf walk hit hole at vpn %d", vpn))
		}
	}
	idx := ptIndex(vpn, 0)
	was := n.leaves[idx]
	if was == ptEntryAbsent && entry != ptEntryAbsent {
		n.live++
	}
	if was != ptEntryAbsent && entry == ptEntryAbsent {
		n.live--
	}
	n.leaves[idx] = entry
	a.mapGen++
	if !reclaim || entry != ptEntryAbsent || n.live > 0 {
		return
	}
	// Free empty nodes bottom-up.
	child := n
	for level := 1; level < ptLevels; level++ {
		parent := path[level]
		parent.children[idxs[level]] = nil
		a.os.freePTPage(child.pfn)
		a.ptPages--
		parent.live--
		if parent.live > 0 {
			return
		}
		child = parent
	}
	// Root emptied.
	a.os.freePTPage(a.root.pfn)
	a.ptPages--
	a.root = nil
}

// PTPages reports the number of live page-table pages.
func (a *AddrSpace) PTPages() uint64 { return a.ptPages }

// Faults reports demand faults served.
func (a *AddrSpace) Faults() uint64 { return a.faults }

// SwapIns reports faults that had to read from swap.
func (a *AddrSpace) SwapIns() uint64 { return a.swapIns }

// WalkSteps reports interior page-table steps taken (cost metric).
func (a *AddrSpace) WalkSteps() uint64 { return a.walkSteps }

// ResidentPages sums resident pages across VMAs.
func (a *AddrSpace) ResidentPages() uint64 {
	var n uint64
	for _, v := range a.vmas {
		n += v.Resident
	}
	return n
}

// CheckInvariants verifies VMA ordering and non-overlap, and that every
// resident count matches the page table.
func (a *AddrSpace) CheckInvariants() error {
	// Verification must not perturb state: the resident sweep below
	// walks the page table, which would inflate the walkSteps
	// diagnostic counter and break checkpoint byte-parity across
	// CheckInvariants calls.
	defer func(saved uint64) { a.walkSteps = saved }(a.walkSteps)
	areas := a.VMAs()
	sorted := make([]*VMA, len(areas))
	copy(sorted, areas)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].End() > sorted[i].Start {
			return fmt.Errorf("mm: VMAs %d and %d overlap", sorted[i-1].ID, sorted[i].ID)
		}
	}
	for _, v := range areas {
		var resident uint64
		for vpn := v.Start; vpn < v.End(); vpn++ {
			if _, st := a.lookup(vpn); st == ptPresent {
				resident++
			}
		}
		if resident != v.Resident {
			return fmt.Errorf("mm: VMA %d resident %d != page table %d", v.ID, v.Resident, resident)
		}
	}
	return nil
}
