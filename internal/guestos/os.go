package guestos

import (
	"errors"
	"fmt"

	"heteroos/internal/guestos/pagecache"
	"heteroos/internal/guestos/slab"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/sim"
)

// ErrBalloonShortfall is the sentinel wrapped by BalloonShortfallError;
// match it with errors.Is.
var ErrBalloonShortfall = errors.New("guestos: balloon reservation shortfall")

// BalloonShortfallError reports a populate request the balloon back-end
// did not honour in full: the front-end asked the VMM for Want frames of
// Tier and received only Got. Boot-time reservations fail with it;
// runtime shortfalls are surfaced as EvBalloonRefused events instead of
// silently under-reserving (the allocator then spills to the other
// tier, which the placement stats record).
type BalloonShortfallError struct {
	Tier      memsim.Tier
	Want, Got uint64
}

// Error implements error.
func (e *BalloonShortfallError) Error() string {
	return fmt.Sprintf("guestos: balloon back-end granted %d/%d %v frames", e.Got, e.Want, e.Tier)
}

// Unwrap ties the typed error to the ErrBalloonShortfall sentinel.
func (e *BalloonShortfallError) Unwrap() error { return ErrBalloonShortfall }

// FrameSource is the VMM-side back-end of the on-demand allocation
// driver (Figure 5, steps 1-3): the guest requests machine frames of a
// specific memory type, and returns them under memory pressure.
type FrameSource interface {
	// Populate grants up to want frames of tier t; fewer (or none) when
	// the VMM's share policy denies the request.
	Populate(t memsim.Tier, want uint64) []memsim.MFN
	// PopulateAny grants frames of whatever tiers the VMM chooses;
	// used by heterogeneity-unaware guests whose single node cannot
	// express a type (the VMM-exclusive baseline).
	PopulateAny(want uint64) []memsim.MFN
	// Release returns frames to the VMM.
	Release(mfns []memsim.MFN)
}

// PageIndexer observes the page-state transitions that affect an
// external hotness index: backing-frame changes, scanner heat updates,
// and alloc/free transitions. The VMM's heat-bucket index implements it;
// the OS calls each hook from the single chokepoint that performs the
// corresponding mutation, so an attached indexer sees every change.
type PageIndexer interface {
	// PageBacked fires when pfn gains or swaps its backing frame
	// (population, transparent migration).
	PageBacked(pfn PFN, mfn memsim.MFN)
	// PageUnbacked fires when pfn loses its backing frame (balloon
	// release).
	PageUnbacked(pfn PFN)
	// PageHeatChanged fires when pfn's scan heat or scan write-heat
	// changed.
	PageHeatChanged(pfn PFN)
	// PageFreeChanged fires when pfn transitions between free and in-use.
	PageFreeChanged(pfn PFN, free bool)
}

// Config configures one guest OS instance.
type Config struct {
	// CPUs is the number of vCPUs (per-CPU free-list dimensioning).
	CPUs int
	// Aware selects heterogeneity-aware mode: one NUMA node per memory
	// type. When false the guest has a single node and the VMM manages
	// placement transparently (HeteroVisor model).
	Aware bool
	// FastMaxPages / SlowMaxPages bound each node's span. In transparent
	// mode the single node spans FastMaxPages+SlowMaxPages.
	FastMaxPages, SlowMaxPages uint64
	// BootFastPages / BootSlowPages are populated at boot.
	BootFastPages, BootSlowPages uint64
	// Placement is the policy knob set.
	Placement PlacementConfig
	// Source provides machine frames.
	Source FrameSource
	// TierOf resolves a machine frame to its tier (Machine.TierOf).
	TierOf func(memsim.MFN) memsim.Tier
	// Costs prices software operations; zero value takes DefaultCosts.
	Costs CostModel
	// Seed derives the OS-private RNG.
	Seed uint64
}

// EpochStats is what the OS accumulates during an epoch for the pricing
// engine and experiment harness. Counters are cumulative within the
// epoch and reset by DrainEpoch.
type EpochStats struct {
	// UserLoads/UserStores are application page touches by tier.
	UserLoads, UserStores [memsim.NumTiers]uint64
	// KernelCopyBytes is data the kernel moved through pages of each
	// tier (I/O copies, network buffer copies); priced at tier bandwidth.
	KernelCopyBytes [memsim.NumTiers]float64
	// OSTimeNs is tier-independent software time (faults, allocator,
	// balloon, migration walks/copies, disk waits).
	OSTimeNs float64
	// Event counters.
	Faults, SwapIns, SwapOuts     uint64
	Demotions, Promotions         uint64
	CacheEvictions                uint64
	DiskReadPages, DiskWritePages uint64
	BalloonPagesIn                uint64
	// BalloonRefusedPages counts frames the balloon back-end declined to
	// grant (populate shortfall), whether from share-policy denial, pool
	// exhaustion, or an injected refusal fault.
	BalloonRefusedPages uint64
	MigrationsSkipped   uint64
}

// CumulativeStats track whole-run totals for the census figures.
type CumulativeStats struct {
	AllocsByKind [NumKinds]uint64
	FreesByKind  [NumKinds]uint64
}

const (
	populateBatchPages = 512
	reclaimBatchPages  = 128
	statsWindowEpochs  = 4
	writebackPerEpoch  = 1024
)

// OS is one guest VM's operating system memory manager.
type OS struct {
	cfg   Config
	costs CostModel
	rng   *sim.RNG

	store *PageStore
	nodes []*Node    // aware: [FastMem, SlowMem]; transparent: [all]
	lrus  []*PageLRU // parallel to nodes
	// unpopulated tracks depopulated span slots per node, popped in
	// LIFO order for repopulation.
	unpopulated [][]PFN

	AS    *AddrSpace
	PC    *pagecache.Cache
	Slabs map[string]*slab.Cache
	swap  *swapSpace

	// indexer, when attached, mirrors page state into the VMM's
	// heat-bucket index.
	indexer PageIndexer
	// obs, when attached, carries the preregistered observability
	// probes (see probe.go); nil means observability is off.
	obs *osProbes
	// trackBuf backs TrackingList so the per-pass export allocates
	// nothing in steady state. trackGen/trackValid cache the list
	// against the address space's mapping generation, so repeat passes
	// with no mapping churn skip the VMA walk entirely.
	trackBuf   []PFN
	trackGen   uint64
	trackValid bool
	// balanceBuf backs the LRU Balance calls in EndEpoch and reclaim.
	balanceBuf []PFN

	epoch      uint32
	ep         EpochStats
	Cum        CumulativeStats
	Window     AllocStats // demand window for prioritisation & Figure 10
	WindowLife AllocStats // whole-run alloc stats (never reset)

	// netRefs holds live network buffer objects between NetRecv/NetSend
	// calls within an epoch.
	netRefs []slab.ObjRef

	// Admission-value tracking: reclaiming FastMem to admit allocations
	// only pays off when admitted pages actually become hot. The OS
	// samples recent FastMem admissions and measures how many were
	// activated a few epochs later; reclaim throttles itself when the
	// admission hit rate collapses (e.g. a cold fault stream), exactly
	// the case where demoting resident pages for new arrivals is waste.
	admitRing []admitSample
	admitRate float64 // EWMA of activation rate; starts optimistic
	admitSeen int
	// Promotion-value tracking, same idea for coordinated promotions.
	promoteRing []admitSample
	promoteRate float64
	promoteSeen int
	// Demotion-regret tracking: a demoted page that is re-touched soon
	// was a wasted (harmful) move; reclaim throttles when regret climbs.
	demoteRing   []admitSample
	demoteRegret float64
	demoteSeen   int
}

// admitSample records one sampled FastMem admission.
type admitSample struct {
	pfn   PFN
	tag   uint64
	epoch uint32
}

// Slab cache names the OS creates at boot.
const (
	SlabSkbuff = "skbuff" // network buffers (KindNetBuf pages)
	SlabFSMeta = "fsmeta" // filesystem metadata (KindSlab pages)
	SlabDentry = "dentry"
	SlabInode  = "inode"
)

// New boots a guest OS: builds nodes, populates boot reservations, and
// initialises every subsystem.
func New(cfg Config) (*OS, error) {
	if cfg.CPUs <= 0 {
		return nil, fmt.Errorf("guestos: need at least one CPU")
	}
	if cfg.Source == nil || cfg.TierOf == nil {
		return nil, fmt.Errorf("guestos: Source and TierOf are required")
	}
	if (cfg.Costs == CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	o := &OS{
		cfg:         cfg,
		costs:       cfg.Costs,
		rng:         sim.NewRNG(cfg.Seed ^ 0x6865746572),
		swap:        newSwapSpace(),
		admitRate:   1, // optimistic until evidence accumulates
		promoteRate: 1,
	}

	total := cfg.FastMaxPages + cfg.SlowMaxPages
	o.store = NewPageStore(total)
	if cfg.Aware {
		fast := newNode(memsim.FastMem, 0, cfg.FastMaxPages, cfg.CPUs, true)
		slow := newNode(memsim.SlowMem, PFN(cfg.FastMaxPages), cfg.SlowMaxPages, cfg.CPUs, true)
		// HeteroOS-LRU per-memory-type thresholds: keep a small free
		// reserve in FastMem so bursts allocate without synchronous
		// reclaim.
		fast.LowWatermark = maxU64(32, cfg.FastMaxPages/50)
		fast.HighWatermark = 2 * fast.LowWatermark
		o.nodes = []*Node{fast, slow}
	} else {
		n := newNode(memsim.FastMem, 0, total, cfg.CPUs, false)
		o.nodes = []*Node{n}
	}
	o.lrus = make([]*PageLRU, len(o.nodes))
	o.unpopulated = make([][]PFN, len(o.nodes))
	for i, n := range o.nodes {
		o.lrus[i] = NewPageLRU(o.store)
		// Span slots in descending order so pops ascend.
		slots := make([]PFN, 0, n.MaxPages)
		for p := n.MaxPages; p > 0; p-- {
			slots = append(slots, n.Base+PFN(p-1))
		}
		o.unpopulated[i] = slots
	}

	o.AS = newAddrSpace(o)
	o.PC = pagecache.New(
		func() (uint64, bool) {
			pfn, ok := o.allocPage(KindPageCache, 0)
			return uint64(pfn), ok
		},
		func(pfn uint64) { o.freePage(PFN(pfn)) },
	)
	o.Slabs = map[string]*slab.Cache{
		SlabSkbuff: o.newSlabCache(SlabSkbuff, 256, KindNetBuf),
		SlabFSMeta: o.newSlabCache(SlabFSMeta, 4096, KindSlab),
		SlabDentry: o.newSlabCache(SlabDentry, 192, KindSlab),
		SlabInode:  o.newSlabCache(SlabInode, 640, KindSlab),
	}

	// Boot reservation. A short grant here is a hard boot failure, and
	// the typed error lets the caller distinguish "back-end refused"
	// from config mistakes.
	if cfg.Aware {
		if got := o.populateNode(0, cfg.BootFastPages); got < cfg.BootFastPages {
			return nil, &BalloonShortfallError{Tier: memsim.FastMem, Want: cfg.BootFastPages, Got: got}
		}
		if got := o.populateNode(1, cfg.BootSlowPages); got < cfg.BootSlowPages {
			return nil, &BalloonShortfallError{Tier: memsim.SlowMem, Want: cfg.BootSlowPages, Got: got}
		}
	} else {
		want := cfg.BootFastPages + cfg.BootSlowPages
		if got := o.populateNode(0, want); got < want {
			return nil, &BalloonShortfallError{Tier: memsim.FastMem, Want: want, Got: got}
		}
	}
	return o, nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func (o *OS) newSlabCache(name string, objSize int, kind PageKind) *slab.Cache {
	return slab.New(name, objSize, 1,
		func(n int) (uint64, bool) {
			// Slab pages are order-0 here (pagesPerSlab 1).
			pfn, ok := o.allocPage(kind, 0)
			return uint64(pfn), ok
		},
		func(base uint64, n int) {
			for i := 0; i < n; i++ {
				o.freePage(PFN(base + uint64(i)))
			}
		})
}

// SetPageIndexer attaches (or detaches, with nil) a page-state observer.
// The caller is responsible for seeding the indexer from current state.
func (o *OS) SetPageIndexer(ix PageIndexer) { o.indexer = ix }

// Node returns the node exposing tier t (aware mode), or the single node.
func (o *OS) Node(t memsim.Tier) *Node {
	if !o.cfg.Aware {
		return o.nodes[0]
	}
	return o.nodes[t]
}

// Nodes returns all nodes.
func (o *OS) Nodes() []*Node { return o.nodes }

// LRUOf returns the LRU of the node exposing tier t.
func (o *OS) LRUOf(t memsim.Tier) *PageLRU {
	if !o.cfg.Aware {
		return o.lrus[0]
	}
	return o.lrus[t]
}

// Aware reports whether the guest is heterogeneity-aware.
func (o *OS) Aware() bool { return o.cfg.Aware }

// Placement returns the active placement configuration.
func (o *OS) Placement() *PlacementConfig { return &o.cfg.Placement }

// Epoch returns the current epoch number.
func (o *OS) Epoch() uint32 { return o.epoch }

// PageView materializes the metadata of pfn (tests, debugging).
func (o *OS) PageView(pfn PFN) Page { return o.store.PageView(pfn) }

// Store exposes the page store (tests, VMM adapters).
func (o *OS) Store() *PageStore { return o.store }

// NumPFNs reports the guest-physical span size.
func (o *OS) NumPFNs() uint64 { return o.store.Len() }

// TierOfPage resolves the tier currently backing pfn.
func (o *OS) TierOfPage(pfn PFN) memsim.Tier {
	mfn := o.store.MFN(pfn)
	if mfn == memsim.NilMFN {
		panic(fmt.Sprintf("guestos: tier of unpopulated pfn %d", pfn))
	}
	return o.cfg.TierOf(mfn)
}

func (o *OS) nodeIndexOf(pfn PFN) int {
	for i, n := range o.nodes {
		if n.Contains(pfn) {
			return i
		}
	}
	panic(fmt.Sprintf("guestos: pfn %d outside all nodes", pfn))
}

// populateNode asks the VMM for up to want frames for node idx and
// inserts them. Returns the number granted.
func (o *OS) populateNode(idx int, want uint64) uint64 {
	n := o.nodes[idx]
	slots := &o.unpopulated[idx]
	if want > uint64(len(*slots)) {
		want = uint64(len(*slots))
	}
	if want == 0 {
		return 0
	}
	var mfns []memsim.MFN
	if o.cfg.Aware {
		mfns = o.cfg.Source.Populate(n.Tier, want)
	} else {
		mfns = o.cfg.Source.PopulateAny(want)
	}
	for _, mfn := range mfns {
		pfn := (*slots)[len(*slots)-1]
		*slots = (*slots)[:len(*slots)-1]
		o.store.SetMFN(pfn, mfn)
		n.addPopulated(pfn, 1)
		if o.indexer != nil {
			o.indexer.PageBacked(pfn, mfn)
		}
	}
	got := uint64(len(mfns))
	o.ep.BalloonPagesIn += got
	o.ep.OSTimeNs += float64(got) * o.costs.BalloonPerPageNs
	if o.obs != nil && got > 0 {
		o.obs.balloonIn.Add(got)
		o.obs.scope.Emit(obs.EvBalloon, obs.DirDeflate, o.nodeTierByte(idx),
			0, got, 0, float64(got)*o.costs.BalloonPerPageNs)
	}
	if got < want {
		// The back-end refused part of the request (share-policy denial,
		// pool exhaustion, or injected fault). Surface the shortfall
		// instead of silently under-reserving; allocation falls back to
		// the other tier and the placement stats record the spill.
		o.ep.BalloonRefusedPages += want - got
		if o.obs != nil {
			o.obs.balloonRefused.Add(want - got)
			o.obs.scope.Emit(obs.EvBalloonRefused, obs.DirNone, o.nodeTierByte(idx),
				0, want-got, want, 0)
		}
	}
	return got
}

// allocPage allocates one frame for kind on behalf of cpu, applying the
// placement policy. ok=false only when every tier (after on-demand
// population and reclaim) is exhausted.
func (o *OS) allocPage(kind PageKind, cpu int) (PFN, bool) {
	pl := &o.cfg.Placement
	wantFast := pl.WantsFast(kind)
	if pl.Random {
		wantFast = o.rng.Bool(0.5)
	}

	var order []int // node indices in preference order
	if !o.cfg.Aware {
		order = []int{0}
	} else if wantFast {
		order = []int{0, 1}
	} else {
		order = []int{1, 0}
	}

	for attempt, idx := range order {
		pfn, ok := o.allocFromNode(idx, cpu, kind, attempt == 0)
		if !ok {
			continue
		}
		tier := o.nodes[idx].Tier
		if !o.cfg.Aware {
			tier = o.TierOfPage(pfn)
		}
		o.Window.Record(kind, wantFast && o.cfg.Aware, tier)
		o.WindowLife.Record(kind, wantFast && o.cfg.Aware, tier)
		o.initPage(pfn, kind, wantFast && tier != memsim.FastMem)
		if o.obs != nil && wantFast && o.cfg.Aware {
			o.obs.fastAllocReqs.Inc()
			if tier != memsim.FastMem {
				o.obs.fastAllocMiss.Inc()
				o.obs.scope.Emit(obs.EvAllocMiss, obs.DirNone, uint8(tier),
					uint64(pfn), 1, 0, 0)
			}
		}
		return pfn, true
	}
	return NilPFN, false
}

// allocFromNode tries per-CPU lists, then buddy (via refill), then
// on-demand population, then (FastMem, HeteroOS-LRU, primary choice
// only) demand-based reclaim.
func (o *OS) allocFromNode(idx, cpu int, kind PageKind, primary bool) (PFN, bool) {
	n := o.nodes[idx]
	if pfn, ok := n.PCP.Alloc(cpu, 0); ok {
		o.ep.OSTimeNs += o.costs.AllocFastPathNs
		return PFN(pfn), true
	}
	// Buddy exhausted (PCP refill failed). Try extending the reservation.
	pl := &o.cfg.Placement
	if pl.OnDemand && n.Populated() < n.MaxPages {
		if o.populateNode(idx, populateBatchPages) > 0 {
			if pfn, ok := n.PCP.Alloc(cpu, 0); ok {
				o.ep.OSTimeNs += o.costs.AllocSlowPathNs
				return PFN(pfn), true
			}
		}
	}
	if primary && pl.HeteroLRU && o.cfg.Aware && n.Tier == memsim.FastMem {
		if o.shouldReclaimFor(kind) {
			o.reclaimNode(idx, reclaimBatchPages)
			if pfn, ok := n.PCP.Alloc(cpu, 0); ok {
				o.ep.OSTimeNs += o.costs.AllocSlowPathNs
				return PFN(pfn), true
			}
		}
	}
	return NilPFN, false
}

// shouldReclaimFor implements demand-based prioritisation: FastMem
// reclaim runs on behalf of kind only when kind's window miss ratio is
// (one of) the highest — the subsystem with the most unmet FastMem
// demand wins the contended capacity — and only while admissions are
// paying off (see reclaimWorthwhile).
func (o *OS) shouldReclaimFor(kind PageKind) bool {
	if !o.reclaimWorthwhile() {
		// Probe occasionally so a workload phase change can re-open the
		// throttle (the EWMAs only update while reclaim admits pages).
		if !o.rng.Bool(0.125) {
			return false
		}
	}
	maxKind, maxRatio := o.Window.MaxMissKind()
	if maxRatio == 0 {
		return true // no contention signal yet
	}
	return kind == maxKind || o.Window.MissRatio(kind) >= maxRatio*0.75
}

// reclaimWorthwhile reports whether demoting resident FastMem pages to
// admit new allocations has been paying off recently: admitted pages
// must be getting hot, and demoted pages must be staying cold.
func (o *OS) reclaimWorthwhile() bool {
	if o.admitSeen >= 32 && o.admitRate < 0.2 {
		return false
	}
	if o.demoteSeen >= 32 && o.demoteRegret > 0.5 {
		return false
	}
	return true
}

// admissionWindowEpochs is how long after admission a page has to prove
// itself hot.
const admissionWindowEpochs = 3

// sampleAdmission records a FastMem admission for later evaluation
// (every few admissions, to bound bookkeeping).
func (o *OS) sampleAdmission(pfn PFN) {
	if len(o.admitRing) > 4096 {
		return
	}
	o.admitRing = append(o.admitRing, admitSample{pfn: pfn, tag: o.store.Tag(pfn), epoch: o.epoch})
}

// evaluateAdmissions folds matured admission samples into the EWMAs.
func (o *OS) evaluateAdmissions() {
	o.admitRing, o.admitRate, o.admitSeen =
		foldSamples(o, o.admitRing, o.admitRate, o.admitSeen)
	o.promoteRing, o.promoteRate, o.promoteSeen =
		foldSamples(o, o.promoteRing, o.promoteRate, o.promoteSeen)
	o.demoteRing, o.demoteRegret, o.demoteSeen =
		foldRegret(o, o.demoteRing, o.demoteRegret, o.demoteSeen)
}

// foldRegret evaluates matured demotion samples: the move is regretted
// if the page was touched again after it was demoted.
func foldRegret(o *OS, ring []admitSample, rate float64, seen int) ([]admitSample, float64, int) {
	i := 0
	hits, total := 0, 0
	for ; i < len(ring); i++ {
		s := ring[i]
		if s.epoch+admissionWindowEpochs > o.epoch {
			break
		}
		total++
		st := o.store
		if st.Tag(s.pfn) == s.tag && st.Kind(s.pfn) != KindFree && st.LastUse(s.pfn) > s.epoch {
			hits++
		}
	}
	ring = ring[i:]
	if total == 0 {
		return ring, rate, seen
	}
	r := float64(hits) / float64(total)
	return ring, 0.75*rate + 0.25*r, seen + total
}

func foldSamples(o *OS, ring []admitSample, rate float64, seen int) ([]admitSample, float64, int) {
	i := 0
	hits, total := 0, 0
	for ; i < len(ring); i++ {
		s := ring[i]
		if s.epoch+admissionWindowEpochs > o.epoch {
			break
		}
		total++
		st := o.store
		// The page proved hot if it still holds the same contents, is
		// still FastMem-resident, and reached the active list.
		if st.Tag(s.pfn) == s.tag && st.Kind(s.pfn) != KindFree && st.Has(s.pfn, FlagActive) &&
			st.MFN(s.pfn) != memsim.NilMFN && o.cfg.TierOf(st.MFN(s.pfn)) == memsim.FastMem {
			hits++
		}
	}
	ring = ring[i:]
	if total == 0 {
		return ring, rate, seen
	}
	r := float64(hits) / float64(total)
	return ring, 0.5*rate + 0.5*r, seen + total
}

// PromotionWorthwhile reports whether recent coordinated promotions have
// been paying off; the coordinated manager throttles its migration
// budget when they stop (leaving a small probe rate so it can detect
// phase changes).
func (o *OS) PromotionWorthwhile() bool {
	return o.promoteSeen < 32 || o.promoteRate >= 0.3
}

// PromoteRate exposes the promotion-value EWMA; the coordinated manager
// scales its migration budget with it (spend more while it pays).
func (o *OS) PromoteRate() float64 { return o.promoteRate }

// initPage prepares freshly allocated page metadata.
func (o *OS) initPage(pfn PFN, kind PageKind, spilled bool) {
	st := o.store
	if k := st.Kind(pfn); k != KindFree {
		panic(fmt.Sprintf("guestos: allocating in-use pfn %d (%v)", pfn, k))
	}
	st.SetKind(pfn, kind)
	st.SetAllFlags(pfn, 0)
	st.SetVPN(pfn, NilVPN)
	st.SetFile(pfn, NilFile)
	st.SetFileOff(pfn, 0)
	st.SetLastUse(pfn, o.epoch)
	st.SetHeat(pfn, 0)
	st.SetTag(pfn, o.rng.Uint64())
	if spilled {
		st.Set(pfn, FlagFastPref)
	}
	o.Cum.AllocsByKind[kind]++
	switch kind {
	case KindAnon, KindPageCache:
		o.lrus[o.nodeIndexOf(pfn)].Insert(pfn)
		if o.cfg.Placement.HeteroLRU && o.cfg.Aware &&
			o.TierOfPage(pfn) == memsim.FastMem && o.Cum.AllocsByKind[kind]%4 == 0 {
			o.sampleAdmission(pfn)
		}
	case KindPageTable, KindDMA:
		st.Set(pfn, FlagPinned)
	}
	if o.indexer != nil {
		o.indexer.PageFreeChanged(pfn, false)
	}
}

// freePage releases one frame back to its node. Mapped pages are
// unmapped first; cache pages must be released through the page cache
// (which calls back into here).
func (o *OS) freePage(pfn PFN) {
	st := o.store
	if st.Kind(pfn) == KindFree {
		panic(fmt.Sprintf("guestos: double free of pfn %d", pfn))
	}
	if st.VPN(pfn) != NilVPN {
		o.unmapResident(pfn)
	}
	idx := o.nodeIndexOf(pfn)
	if st.Has(pfn, FlagOnLRU) {
		o.lrus[idx].Remove(pfn)
	}
	o.Cum.FreesByKind[st.Kind(pfn)]++
	st.SetKind(pfn, KindFree)
	st.SetAllFlags(pfn, 0)
	st.SetVPN(pfn, NilVPN)
	st.SetFile(pfn, NilFile)
	o.ep.OSTimeNs += o.costs.FreeNs
	o.nodes[idx].PCP.Free(0, 0, uint64(pfn))
	if o.indexer != nil {
		o.indexer.PageFreeChanged(pfn, true)
	}
}

// unmapResident clears the virtual mapping of a resident page and fixes
// the owning VMA's resident count.
func (o *OS) unmapResident(pfn PFN) {
	vpn := o.store.VPN(pfn)
	if vpn == NilVPN {
		return
	}
	o.AS.unmapPage(vpn)
	if v, ok := o.AS.FindVMA(vpn); ok {
		v.Resident--
	}
	o.store.SetVPN(pfn, NilVPN)
}

// releaseAnonPage frees an anonymous page during munmap (the mapping is
// already cleared by the caller).
func (o *OS) releaseAnonPage(pfn PFN) {
	o.store.SetVPN(pfn, NilVPN)
	o.freePage(pfn)
}

// fileUnmapped detaches a file-mapped cache page from the address space
// without evicting it from the cache.
func (o *OS) fileUnmapped(pfn PFN) {
	o.store.SetVPN(pfn, NilVPN)
}

// GuestPanic is the guest kernel's unrecoverable resource-exhaustion
// signal, raised (as a panic) when the kernel cannot allocate memory
// it cannot operate without — today, page-table pages. Unlike the
// package's other panics, which assert simulator programming errors,
// a GuestPanic is reachable from a legitimate configuration (a guest
// too small for its workload); the host contains it at the VM-step
// boundary, so the VM dies with an error while the process and the
// other guests keep running — a kernel panic confined to its VM.
type GuestPanic struct{ Reason string }

func (p *GuestPanic) Error() string { return "guestos: kernel panic: " + p.Reason }

// allocPTPage allocates a page-table page. Page tables are exception-
// listed from migration; the paper found their placement has negligible
// (<0.5%) impact, so they follow the same preference as other kernel
// allocations but are pinned.
func (o *OS) allocPTPage() PFN {
	pfn, ok := o.allocPage(KindPageTable, 0)
	if !ok {
		panic(&GuestPanic{Reason: "out of memory allocating page table"})
	}
	return pfn
}

func (o *OS) freePTPage(pfn PFN) {
	o.freePage(pfn)
}

// BalloonTarget implements the VMM-driven balloon (deflate path): the
// guest must shrink node idx's population to target pages. It releases
// free frames first, then reclaims LRU pages, then swaps. Returns how
// many pages were released.
func (o *OS) BalloonTarget(t memsim.Tier, target uint64) uint64 {
	idx := 0
	if o.cfg.Aware {
		idx = int(t)
	}
	n := o.nodes[idx]
	if n.Populated() <= target {
		return 0
	}
	want := n.Populated() - target
	var released uint64
	for released < want {
		got := o.releaseFreeFrames(idx, want-released)
		released += got
		if released >= want {
			break
		}
		// Make more free pages: reclaim from this node's LRU.
		freed := o.reclaimNode(idx, reclaimBatchPages)
		if freed == 0 {
			break // nothing reclaimable; partial balloon
		}
	}
	return released
}

// releaseFreeFrames hands up to want free frames of node idx back to the
// VMM.
func (o *OS) releaseFreeFrames(idx int, want uint64) uint64 {
	n := o.nodes[idx]
	pfns := n.reserveFree(want)
	if len(pfns) == 0 {
		return 0
	}
	mfns := make([]memsim.MFN, len(pfns))
	for i, pfn := range pfns {
		mfns[i] = o.store.MFN(pfn)
		o.store.SetMFN(pfn, memsim.NilMFN)
		o.unpopulated[idx] = append(o.unpopulated[idx], pfn)
		if o.indexer != nil {
			o.indexer.PageUnbacked(pfn)
		}
	}
	o.cfg.Source.Release(mfns)
	o.ep.OSTimeNs += float64(len(mfns)) * o.costs.BalloonPerPageNs
	if o.obs != nil {
		o.obs.balloonOut.Add(uint64(len(mfns)))
		o.obs.scope.Emit(obs.EvBalloon, obs.DirInflate, o.nodeTierByte(idx),
			0, uint64(len(mfns)), 0, float64(len(mfns))*o.costs.BalloonPerPageNs)
	}
	return uint64(len(mfns))
}

// Teardown unwinds the guest for VM departure: every machine frame the
// guest still holds — free, mapped, cache, slab, or kernel — is handed
// back to the VMM in a single Release, and the P2M (per-page backing
// frame) is cleared. The OS is dead afterwards: no subsystem is usable
// and no invariant is expected to hold, so the caller must drop the
// instance. Returns the number of frames released.
func (o *OS) Teardown() uint64 {
	mfns := make([]memsim.MFN, 0, o.store.Len())
	for pfn := PFN(0); pfn < PFN(o.store.Len()); pfn++ {
		mfn := o.store.MFN(pfn)
		if mfn == memsim.NilMFN {
			continue
		}
		mfns = append(mfns, mfn)
		o.store.SetMFN(pfn, memsim.NilMFN)
		if o.indexer != nil {
			o.indexer.PageUnbacked(pfn)
		}
	}
	if len(mfns) > 0 {
		o.cfg.Source.Release(mfns)
	}
	return uint64(len(mfns))
}

// ForEachBacked calls fn for every guest page that currently holds a
// backing machine frame, in ascending PFN order. Cross-host migration
// uses it to enumerate the frame footprint an image must carry.
func (o *OS) ForEachBacked(fn func(pfn PFN, mfn memsim.MFN)) {
	for pfn := PFN(0); pfn < PFN(o.store.Len()); pfn++ {
		if mfn := o.store.MFN(pfn); mfn != memsim.NilMFN {
			fn(pfn, mfn)
		}
	}
}

// P2MEmpty verifies no page still holds a backing frame; a departed VM
// must satisfy it (System.CheckInvariants asserts this after shutdown).
func (o *OS) P2MEmpty() error {
	for pfn := PFN(0); pfn < PFN(o.store.Len()); pfn++ {
		if o.store.MFN(pfn) != memsim.NilMFN {
			return fmt.Errorf("guestos: pfn %d still backed after teardown", pfn)
		}
	}
	return nil
}

// CheckInvariants validates cross-subsystem consistency; tests and
// experiment teardown call it.
func (o *OS) CheckInvariants() error {
	for i, n := range o.nodes {
		if err := n.Buddy.CheckInvariants(); err != nil {
			return err
		}
		if err := o.lrus[i].CheckInvariants(); err != nil {
			return err
		}
		if n.Populated() > n.MaxPages {
			return fmt.Errorf("guestos: node %d over-populated", i)
		}
	}
	if err := o.AS.CheckInvariants(); err != nil {
		return err
	}
	if err := o.PC.CheckInvariants(); err != nil {
		return err
	}
	for _, c := range o.Slabs {
		if err := c.CheckInvariants(); err != nil {
			return err
		}
	}
	if err := o.store.CheckInvariants(); err != nil {
		return err
	}
	// Every populated, non-free page has a backing frame; every free
	// page is either unpopulated or in an allocator.
	var used, lru uint64
	for pfn := PFN(0); pfn < PFN(o.store.Len()); pfn++ {
		kind := o.store.Kind(pfn)
		if kind != KindFree && o.store.MFN(pfn) == memsim.NilMFN {
			return fmt.Errorf("guestos: in-use pfn %d has no backing frame", pfn)
		}
		if kind != KindFree {
			used++
		}
		if o.store.Has(pfn, FlagOnLRU) {
			lru++
		}
	}
	var usedNodes, lruNodes uint64
	for i, n := range o.nodes {
		usedNodes += n.UsedPages()
		lruNodes += o.lrus[i].Count()
	}
	if used != usedNodes {
		return fmt.Errorf("guestos: %d in-use pages vs %d per-node used", used, usedNodes)
	}
	if lru != lruNodes {
		return fmt.Errorf("guestos: %d LRU-flagged pages vs %d on lists", lru, lruNodes)
	}
	return nil
}

// SlabChurnPageEquivalents converts cumulative slab-object churn into
// page equivalents per kind. Slab caches recycle pages internally, so
// raw page-allocation counts hide the enormous buffer churn that
// Figure 4's census reports for network- and storage-intensive
// applications; object-volume over page size recovers it.
func (o *OS) SlabChurnPageEquivalents() (netbuf, slab float64) {
	for name, c := range o.Slabs {
		allocs, _, _, _ := c.Stats()
		pages := float64(allocs) * float64(c.ObjSize()) / float64(memsim.PageSize)
		if name == SlabSkbuff {
			netbuf += pages
		} else {
			slab += pages
		}
	}
	return netbuf, slab
}

// PageCensus counts current pages by kind (Figure 4's distribution).
func (o *OS) PageCensus() [NumKinds]uint64 {
	var out [NumKinds]uint64
	for pfn := PFN(0); pfn < PFN(o.store.Len()); pfn++ {
		out[o.store.Kind(pfn)]++
	}
	return out
}

// ThrottleState exposes the reclaim-economics telemetry (debugging and
// the ablation benchmarks).
func (o *OS) ThrottleState() (admitRate float64, admitSeen int, regret float64, regretSeen int, promoteRate float64) {
	return o.admitRate, o.admitSeen, o.demoteRegret, o.demoteSeen, o.promoteRate
}
