// Package slab implements the kernel object allocator (kmem caches) the
// guest OS uses for network buffers (skbuff), filesystem metadata,
// dentries, inodes, and block-layer structures. Section 3.2 of the paper
// shows that prioritising these slab pages into FastMem accelerates
// storage- and network-intensive applications, so the slab layer must be
// real enough that its page demand is visible to the placement policy.
//
// The design follows Linux's SLAB: a cache holds slabs of one or more
// contiguous pages, each divided into fixed-size objects; slabs move
// between full, partial, and empty lists; empty slabs beyond a retention
// threshold are returned to the page allocator.
package slab

import (
	"errors"
	"fmt"
)

// ErrNoMemory is returned when the page allocator cannot back a new slab.
var ErrNoMemory = errors.New("slab: page allocator exhausted")

// GetPages obtains n contiguous frames from the page allocator and
// reports the base frame, or ok=false on exhaustion.
type GetPages func(n int) (base uint64, ok bool)

// PutPages returns a slab's frames to the page allocator.
type PutPages func(base uint64, n int)

// ObjRef identifies an allocated object: the slab's base frame plus the
// object index within the slab.
type ObjRef struct {
	SlabBase uint64
	Index    int
}

// PageSize is the frame size used to compute objects-per-slab.
const PageSize = 4096

// maxEmptySlabs is how many empty slabs a cache retains before returning
// pages to the page allocator (working-set hysteresis, like Linux's
// per-cache free limits).
const maxEmptySlabs = 2

type slabState struct {
	base     uint64
	free     []int // free object indices (stack)
	inUse    int
	capacity int
}

// Cache is one kmem cache ("skbuff_head_cache", "dentry", ...).
type Cache struct {
	name         string
	objSize      int
	pagesPerSlab int
	objsPerSlab  int
	get          GetPages
	put          PutPages

	slabs   map[uint64]*slabState // by base frame
	partial []uint64              // bases with free objects (may contain stale entries)
	empties int

	allocs, frees, slabAllocs, slabFrees uint64
}

// New builds a cache of objSize-byte objects in slabs of pagesPerSlab
// contiguous frames.
func New(name string, objSize, pagesPerSlab int, get GetPages, put PutPages) *Cache {
	if objSize <= 0 || objSize > pagesPerSlab*PageSize {
		panic(fmt.Sprintf("slab %s: invalid object size %d", name, objSize))
	}
	if pagesPerSlab <= 0 {
		panic(fmt.Sprintf("slab %s: invalid pagesPerSlab %d", name, pagesPerSlab))
	}
	return &Cache{
		name:         name,
		objSize:      objSize,
		pagesPerSlab: pagesPerSlab,
		objsPerSlab:  pagesPerSlab * PageSize / objSize,
		get:          get,
		put:          put,
		slabs:        make(map[uint64]*slabState),
	}
}

// Name returns the cache name.
func (c *Cache) Name() string { return c.name }

// ObjSize returns the object size in bytes.
func (c *Cache) ObjSize() int { return c.objSize }

// ObjsPerSlab returns the number of objects each slab holds.
func (c *Cache) ObjsPerSlab() int { return c.objsPerSlab }

// PagesPerSlab returns the number of frames per slab.
func (c *Cache) PagesPerSlab() int { return c.pagesPerSlab }

func (c *Cache) newSlab() (*slabState, error) {
	base, ok := c.get(c.pagesPerSlab)
	if !ok {
		return nil, fmt.Errorf("%w: cache %s", ErrNoMemory, c.name)
	}
	s := &slabState{base: base, capacity: c.objsPerSlab}
	s.free = make([]int, c.objsPerSlab)
	for i := range s.free {
		s.free[i] = c.objsPerSlab - 1 - i // pop in ascending index order
	}
	c.slabs[base] = s
	c.slabAllocs++
	return s, nil
}

// Alloc allocates one object. It prefers partially-full slabs (dense
// packing), then creates a new slab from the page allocator.
func (c *Cache) Alloc() (ObjRef, error) {
	var s *slabState
	fresh := false
	for len(c.partial) > 0 {
		base := c.partial[len(c.partial)-1]
		cand, ok := c.slabs[base]
		if !ok || len(cand.free) == 0 {
			c.partial = c.partial[:len(c.partial)-1] // stale
			continue
		}
		s = cand
		break
	}
	if s == nil {
		var err error
		s, err = c.newSlab()
		if err != nil {
			return ObjRef{}, err
		}
		c.partial = append(c.partial, s.base)
		fresh = true
	}
	if s.inUse == 0 && !fresh {
		// Reusing a retained empty slab.
		c.empties--
	}
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	s.inUse++
	if len(s.free) == 0 {
		// Slab became full; drop it from the partial stack if it is the
		// top (otherwise lazily skipped later).
		if n := len(c.partial); n > 0 && c.partial[n-1] == s.base {
			c.partial = c.partial[:n-1]
		}
	}
	c.allocs++
	return ObjRef{SlabBase: s.base, Index: idx}, nil
}

// Free releases one object. When a slab becomes empty and the cache
// already retains maxEmptySlabs empty slabs, the slab's pages go back to
// the page allocator.
func (c *Cache) Free(ref ObjRef) {
	s, ok := c.slabs[ref.SlabBase]
	if !ok {
		panic(fmt.Sprintf("slab %s: free of object in unknown slab %d", c.name, ref.SlabBase))
	}
	if ref.Index < 0 || ref.Index >= s.capacity {
		panic(fmt.Sprintf("slab %s: object index %d out of range", c.name, ref.Index))
	}
	for _, f := range s.free {
		if f == ref.Index {
			panic(fmt.Sprintf("slab %s: double free of object %d in slab %d", c.name, ref.Index, s.base))
		}
	}
	wasFull := len(s.free) == 0
	s.free = append(s.free, ref.Index)
	s.inUse--
	c.frees++
	if s.inUse == 0 {
		if c.empties >= maxEmptySlabs {
			delete(c.slabs, s.base)
			c.put(s.base, c.pagesPerSlab)
			c.slabFrees++
			return
		}
		c.empties++
	}
	if wasFull {
		c.partial = append(c.partial, s.base)
	}
}

// Pages reports the frames currently held by the cache.
func (c *Cache) Pages() int { return len(c.slabs) * c.pagesPerSlab }

// InUse reports the number of live objects.
func (c *Cache) InUse() int {
	n := 0
	for _, s := range c.slabs {
		n += s.inUse
	}
	return n
}

// Stats reports object allocs/frees and slab-level page churn.
func (c *Cache) Stats() (allocs, frees, slabAllocs, slabFrees uint64) {
	return c.allocs, c.frees, c.slabAllocs, c.slabFrees
}

// Bases returns the base frame of every live slab; the placement layer
// uses it to attribute slab pages to tiers.
func (c *Cache) Bases() []uint64 {
	out := make([]uint64, 0, len(c.slabs))
	for b := range c.slabs {
		out = append(out, b)
	}
	return out
}

// CheckInvariants validates per-slab accounting.
func (c *Cache) CheckInvariants() error {
	empties := 0
	for base, s := range c.slabs {
		if s.base != base {
			return fmt.Errorf("slab %s: key %d != base %d", c.name, base, s.base)
		}
		if s.inUse+len(s.free) != s.capacity {
			return fmt.Errorf("slab %s: slab %d inUse %d + free %d != cap %d",
				c.name, base, s.inUse, len(s.free), s.capacity)
		}
		seen := map[int]bool{}
		for _, f := range s.free {
			if f < 0 || f >= s.capacity || seen[f] {
				return fmt.Errorf("slab %s: bad free index %d in slab %d", c.name, f, base)
			}
			seen[f] = true
		}
		if s.inUse == 0 {
			empties++
		}
	}
	if empties != c.empties {
		return fmt.Errorf("slab %s: empty count %d != tracked %d", c.name, empties, c.empties)
	}
	return nil
}
