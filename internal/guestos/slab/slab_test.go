package slab

import (
	"errors"
	"testing"
	"testing/quick"
)

// pagePool is a trivial contiguous-page provider for tests.
type pagePool struct {
	next  uint64
	limit int
	out   int
}

func (p *pagePool) get(n int) (uint64, bool) {
	if p.limit > 0 && p.out+n > p.limit {
		return 0, false
	}
	base := p.next
	p.next += uint64(n)
	p.out += n
	return base, true
}

func (p *pagePool) put(base uint64, n int) { p.out -= n }

func TestAllocFillsSlabDensely(t *testing.T) {
	p := &pagePool{}
	c := New("skbuff", 256, 1, p.get, p.put)
	if c.ObjsPerSlab() != 16 {
		t.Fatalf("objs per slab = %d, want 16", c.ObjsPerSlab())
	}
	var refs []ObjRef
	for i := 0; i < 16; i++ {
		r, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	// All 16 objects should share one slab.
	if c.Pages() != 1 {
		t.Fatalf("pages = %d, want 1", c.Pages())
	}
	for i, r := range refs {
		if r.SlabBase != refs[0].SlabBase {
			t.Fatalf("object %d in different slab", i)
		}
		if r.Index != i {
			t.Fatalf("object %d has index %d (want ascending dense packing)", i, r.Index)
		}
	}
	// 17th object forces a second slab.
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if c.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", c.Pages())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	p := &pagePool{}
	c := New("dentry", 1024, 1, p.get, p.put)
	r1, _ := c.Alloc()
	r2, _ := c.Alloc()
	c.Free(r1)
	r3, err := c.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	// The freed slot must be reused before any new slab is created.
	if r3.SlabBase != r2.SlabBase {
		t.Fatal("free slot not reused")
	}
	if c.InUse() != 2 {
		t.Fatalf("in use = %d", c.InUse())
	}
}

func TestEmptySlabRetentionAndRelease(t *testing.T) {
	p := &pagePool{}
	c := New("inode", 512, 1, p.get, p.put)
	perSlab := c.ObjsPerSlab()
	// Fill maxEmptySlabs+2 slabs completely.
	var refs []ObjRef
	for i := 0; i < perSlab*(maxEmptySlabs+2); i++ {
		r, err := c.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, r)
	}
	pagesBefore := c.Pages()
	for _, r := range refs {
		c.Free(r)
	}
	// maxEmptySlabs retained, the rest returned to the page pool.
	if got := c.Pages(); got != maxEmptySlabs {
		t.Fatalf("retained %d slabs, want %d (before: %d)", got, maxEmptySlabs, pagesBefore)
	}
	if c.InUse() != 0 {
		t.Fatal("objects leaked")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Retained empty slabs are reused without new page allocations.
	before := p.out
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if p.out != before {
		t.Fatal("retained slab not reused")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustion(t *testing.T) {
	p := &pagePool{limit: 1}
	c := New("bio", 2048, 1, p.get, p.put)
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("want ErrNoMemory, got %v", err)
	}
}

func TestMultiPageSlab(t *testing.T) {
	p := &pagePool{}
	c := New("big", 4096, 2, p.get, p.put)
	if c.ObjsPerSlab() != 2 || c.PagesPerSlab() != 2 {
		t.Fatalf("geometry wrong: %d objs, %d pages", c.ObjsPerSlab(), c.PagesPerSlab())
	}
	r, _ := c.Alloc()
	if c.Pages() != 2 {
		t.Fatalf("pages = %d", c.Pages())
	}
	c.Free(r)
}

func TestDoubleFreePanics(t *testing.T) {
	p := &pagePool{}
	c := New("x", 256, 1, p.get, p.put)
	r, _ := c.Alloc()
	c.Free(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	c.Free(r)
}

func TestFreeUnknownSlabPanics(t *testing.T) {
	p := &pagePool{}
	c := New("x", 256, 1, p.get, p.put)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown slab free did not panic")
		}
	}()
	c.Free(ObjRef{SlabBase: 999, Index: 0})
}

func TestConstructorValidation(t *testing.T) {
	p := &pagePool{}
	bad := []func(){
		func() { New("x", 0, 1, p.get, p.put) },
		func() { New("x", 8192, 1, p.get, p.put) },
		func() { New("x", 256, 0, p.get, p.put) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestStatsAndBases(t *testing.T) {
	p := &pagePool{}
	c := New("x", 512, 1, p.get, p.put)
	r, _ := c.Alloc()
	c.Free(r)
	allocs, frees, slabAllocs, _ := c.Stats()
	if allocs != 1 || frees != 1 || slabAllocs != 1 {
		t.Fatalf("stats wrong: %d %d %d", allocs, frees, slabAllocs)
	}
	if len(c.Bases()) != 1 {
		t.Fatalf("bases = %v", c.Bases())
	}
	if c.Name() != "x" || c.ObjSize() != 512 {
		t.Fatal("accessors wrong")
	}
}

func TestSlabInvariantProperty(t *testing.T) {
	// Property: arbitrary alloc/free interleavings keep per-slab
	// accounting consistent and never lose objects.
	f := func(ops []uint8) bool {
		p := &pagePool{}
		c := New("prop", 512, 1, p.get, p.put)
		var live []ObjRef
		allocated, freed := 0, 0
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				r, err := c.Alloc()
				if err != nil {
					return false
				}
				live = append(live, r)
				allocated++
			} else {
				i := int(op>>2) % len(live)
				c.Free(live[i])
				live = append(live[:i], live[i+1:]...)
				freed++
			}
		}
		if c.InUse() != allocated-freed {
			return false
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
