package slab

import (
	"fmt"
	"sort"

	"heteroos/internal/snapshot"
)

// Snapshot serializes the cache's mutable state: every slab (sorted by
// base frame) with its free-index stack in exact order, the partial
// stack in exact order (stale entries included — they are behavioural
// state: Alloc pops and skips them lazily), the empty-slab count, and
// the churn counters.
func (c *Cache) Snapshot(e *snapshot.Encoder) {
	e.Str(c.name)
	e.U64(c.allocs)
	e.U64(c.frees)
	e.U64(c.slabAllocs)
	e.U64(c.slabFrees)
	e.Int(c.empties)
	bases := make([]uint64, 0, len(c.slabs))
	for b := range c.slabs {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	e.U32(uint32(len(bases)))
	for _, b := range bases {
		s := c.slabs[b]
		e.U64(s.base)
		e.Int(s.capacity)
		e.Int(s.inUse)
		e.U32(uint32(len(s.free)))
		for _, f := range s.free {
			e.U32(uint32(f))
		}
	}
	e.U64s(c.partial)
}

// Restore overwrites the cache's mutable state from a snapshot of a
// cache with the same name and geometry.
func (c *Cache) Restore(d *snapshot.Decoder) error {
	name := d.Str()
	if name != c.name {
		return fmt.Errorf("slab: snapshot of cache %q applied to %q", name, c.name)
	}
	c.allocs = d.U64()
	c.frees = d.U64()
	c.slabAllocs = d.U64()
	c.slabFrees = d.U64()
	c.empties = d.Int()
	n := int(d.U32())
	c.slabs = make(map[uint64]*slabState, n)
	for i := 0; i < n; i++ {
		s := &slabState{base: d.U64(), capacity: d.Int(), inUse: d.Int()}
		nf := int(d.U32())
		s.free = make([]int, nf)
		for j := range s.free {
			s.free[j] = int(d.U32())
		}
		if s.capacity != c.objsPerSlab {
			return fmt.Errorf("slab %s: snapshot slab %d capacity %d != geometry %d", c.name, s.base, s.capacity, c.objsPerSlab)
		}
		c.slabs[s.base] = s
	}
	c.partial = d.U64s()
	return d.Err()
}
