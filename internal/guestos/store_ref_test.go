package guestos

import (
	"math/rand"
	"testing"

	"heteroos/internal/memsim"
)

// refStore is the obviously-correct reference implementation of the
// PageStore contract: one fat Page struct per frame, every operation a
// direct field poke, word-granular primitives done bit by bit. The
// differential test below drives it in lockstep with the real
// struct-of-arrays store and demands identical observable state, so any
// bitmap/summary bookkeeping bug in store.go shows up as a divergence.
type refStore struct {
	pages []Page
}

func newRefStore(n uint64) *refStore {
	r := &refStore{pages: make([]Page, n)}
	for i := range r.pages {
		r.pages[i] = defaultPage
	}
	return r
}

func (r *refStore) takeWord(w int, mask uint64, f PageFlags) uint64 {
	var out uint64
	for b := uint64(0); b < 64; b++ {
		if mask&(1<<b) == 0 {
			continue
		}
		pfn := PFN(uint64(w)<<6 + b)
		if int(pfn) >= len(r.pages) {
			continue
		}
		if r.pages[pfn].Flags&f != 0 {
			out |= 1 << b
			r.pages[pfn].Flags &^= f
		}
	}
	return out
}

func (r *refStore) nonzeroWord(w int, mask uint64, write bool) uint64 {
	var out uint64
	for b := uint64(0); b < 64; b++ {
		if mask&(1<<b) == 0 {
			continue
		}
		pfn := PFN(uint64(w)<<6 + b)
		if int(pfn) >= len(r.pages) {
			continue
		}
		h := r.pages[pfn].ScanHeat
		if write {
			h = r.pages[pfn].ScanWriteHeat
		}
		if h != 0 {
			out |= 1 << b
		}
	}
	return out
}

// allTestFlags is every defined flag bit, hot and cold.
const allTestFlags = FlagAccessed | FlagDirty | FlagActive | FlagOnLRU |
	FlagPinned | FlagBalloon | FlagFastPref | FlagScanAccessed | FlagScanWritten

// TestPageStoreDifferential drives the SoA store and the reference store
// with the same random operation stream and compares every read-back.
func TestPageStoreDifferential(t *testing.T) {
	const n = 200 // 3 full bitmap words + a partial tail word
	rng := rand.New(rand.NewSource(42))
	st := NewPageStore(n)
	ref := newRefStore(n)

	randFlags := func() PageFlags {
		return PageFlags(rng.Uint64()) & allTestFlags
	}
	checkPage := func(step int, pfn PFN) {
		got, want := st.PageView(pfn), ref.pages[pfn]
		if got != want {
			t.Fatalf("step %d: pfn %d diverged:\n soa %+v\n ref %+v", step, pfn, got, want)
		}
	}

	for step := 0; step < 20000; step++ {
		pfn := PFN(rng.Intn(n))
		switch rng.Intn(18) {
		case 0:
			m := memsim.MFN(rng.Uint64())
			st.SetMFN(pfn, m)
			ref.pages[pfn].MFN = m
		case 1:
			k := PageKind(rng.Intn(int(NumKinds)))
			st.SetKind(pfn, k)
			ref.pages[pfn].Kind = k
		case 2:
			v := VPN(rng.Uint64())
			st.SetVPN(pfn, v)
			ref.pages[pfn].VPN = v
		case 3:
			f := FileID(rng.Uint32())
			st.SetFile(pfn, f)
			ref.pages[pfn].File = f
		case 4:
			off := rng.Uint64()
			st.SetFileOff(pfn, off)
			ref.pages[pfn].FileOff = off
		case 5:
			e := rng.Uint32()
			st.SetLastUse(pfn, e)
			ref.pages[pfn].LastUse = e
		case 6:
			h := rng.Uint32()
			st.SetHeat(pfn, h)
			ref.pages[pfn].Heat = h
		case 7:
			h := uint8(rng.Intn(256))
			st.SetScanHeat(pfn, h)
			ref.pages[pfn].ScanHeat = h
		case 8:
			h := uint8(rng.Intn(256))
			st.SetScanWriteHeat(pfn, h)
			ref.pages[pfn].ScanWriteHeat = h
		case 9:
			tag := rng.Uint64()
			st.SetTag(pfn, tag)
			ref.pages[pfn].Tag = tag
		case 10:
			f := randFlags()
			st.Set(pfn, f)
			ref.pages[pfn].Flags |= f
		case 11:
			f := randFlags()
			st.Clear(pfn, f)
			ref.pages[pfn].Flags &^= f
		case 12:
			f := randFlags()
			st.SetAllFlags(pfn, f)
			ref.pages[pfn].Flags = f
		case 13:
			st.Reset(pfn)
			ref.pages[pfn] = defaultPage
		case 14:
			w := rng.Intn(st.ScanWords())
			mask := rng.Uint64()
			got := st.TakeScanAccessedWord(w, mask)
			want := ref.takeWord(w, mask, FlagScanAccessed)
			if got != want {
				t.Fatalf("step %d: TakeScanAccessedWord(%d, %#x) = %#x, ref %#x", step, w, mask, got, want)
			}
		case 15:
			w := rng.Intn(st.ScanWords())
			mask := rng.Uint64()
			got := st.TakeScanWrittenWord(w, mask)
			want := ref.takeWord(w, mask, FlagScanWritten)
			if got != want {
				t.Fatalf("step %d: TakeScanWrittenWord(%d, %#x) = %#x, ref %#x", step, w, mask, got, want)
			}
		case 16:
			w := rng.Intn(st.ScanWords())
			mask := rng.Uint64()
			got := st.ScanHeatNonzeroWord(w, mask)
			want := ref.nonzeroWord(w, mask, false)
			if got != want {
				t.Fatalf("step %d: ScanHeatNonzeroWord(%d, %#x) = %#x, ref %#x", step, w, mask, got, want)
			}
		case 17:
			w := rng.Intn(st.ScanWords())
			mask := rng.Uint64()
			got := st.ScanWriteHeatNonzeroWord(w, mask)
			want := ref.nonzeroWord(w, mask, true)
			if got != want {
				t.Fatalf("step %d: ScanWriteHeatNonzeroWord(%d, %#x) = %#x, ref %#x", step, w, mask, got, want)
			}
		}
		// Point probes after every op.
		checkPage(step, pfn)
		probe := PFN(rng.Intn(n))
		if f := randFlags(); st.Has(probe, f) != (ref.pages[probe].Flags&f == f) {
			t.Fatalf("step %d: Has(%d, %v) diverged", step, probe, f)
		}
		if st.IsDefault(probe) != (ref.pages[probe] == defaultPage) {
			t.Fatalf("step %d: IsDefault(%d) diverged", step, probe)
		}
		// Full sweeps + invariants, periodically (they are O(n)).
		if step%997 == 0 {
			for p := PFN(0); p < PFN(n); p++ {
				checkPage(step, p)
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// ResetAll returns every frame to the boot default.
	st.ResetAll()
	for p := PFN(0); p < PFN(n); p++ {
		if !st.IsDefault(p) {
			t.Fatalf("pfn %d not default after ResetAll: %+v", p, st.PageView(p))
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPageStoreInvariantsCatchCorruption: CheckInvariants must notice a
// summary bitmap that disagrees with its heat array, and bits set beyond
// the span in the tail word.
func TestPageStoreInvariantsCatchCorruption(t *testing.T) {
	st := NewPageStore(100)
	st.SetScanHeat(5, 9)
	bitClear(st.scanHeatNZ, 5) // desync summary from array
	if err := st.CheckInvariants(); err == nil {
		t.Fatal("stale scanHeatNZ bit not detected")
	}

	st = NewPageStore(100)
	st.scanWriteHeatNZ[0] |= 1 << 7 // NZ bit with zero heat byte
	if err := st.CheckInvariants(); err == nil {
		t.Fatal("spurious scanWriteHeatNZ bit not detected")
	}

	st = NewPageStore(100) // tail word covers PFNs 64..99; 100..127 are beyond span
	st.accessed[1] |= 1 << 63
	if err := st.CheckInvariants(); err == nil {
		t.Fatal("accessed bit beyond span not detected")
	}
}
