package guestos

import (
	"testing"
	"testing/quick"
)

// lruFixture builds a PageLRU over a private store; pages are marked
// in-use so Insert's flag checks behave as in production.
func lruFixture(n uint64) (*PageStore, *PageLRU) {
	store := NewPageStore(n)
	for pfn := PFN(0); pfn < PFN(n); pfn++ {
		store.SetKind(pfn, KindAnon)
	}
	return store, NewPageLRU(store)
}

func TestLRUInsertRemove(t *testing.T) {
	_, l := lruFixture(16)
	l.Insert(3)
	l.Insert(7)
	if l.Count() != 2 || l.InactiveCount() != 2 || l.ActiveCount() != 0 {
		t.Fatalf("counts wrong: %d/%d/%d", l.Count(), l.InactiveCount(), l.ActiveCount())
	}
	if !l.Contains(3) || l.Contains(4) {
		t.Fatal("Contains wrong")
	}
	l.Remove(3)
	if l.Count() != 1 || l.Contains(3) {
		t.Fatal("remove failed")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUDoubleInsertPanics(t *testing.T) {
	_, l := lruFixture(4)
	l.Insert(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	l.Insert(1)
}

func TestLRURemoveAbsentPanics(t *testing.T) {
	_, l := lruFixture(4)
	defer func() {
		if recover() == nil {
			t.Fatal("remove of absent page did not panic")
		}
	}()
	l.Remove(2)
}

func TestLRUSecondChanceActivation(t *testing.T) {
	_, l := lruFixture(8)
	l.Insert(0)
	l.MarkAccessed(0) // first touch: referenced bit only
	if l.ActiveCount() != 0 {
		t.Fatal("activated on first touch")
	}
	l.MarkAccessed(0) // second touch: activate
	if l.ActiveCount() != 1 || l.InactiveCount() != 0 {
		t.Fatal("second touch did not activate")
	}
	acts, _ := l.Stats()
	if acts != 1 {
		t.Fatalf("activations = %d", acts)
	}
}

func TestLRUDeactivateAndRotate(t *testing.T) {
	store, l := lruFixture(8)
	l.Insert(0)
	l.MarkAccessed(0)
	l.MarkAccessed(0)
	l.Deactivate(0)
	if l.ActiveCount() != 0 || store.Has(0, FlagAccessed) {
		t.Fatal("deactivate must clear referenced bit and move lists")
	}
	// Tail rotation clears the bit and keeps the page inactive.
	l.Insert(1)
	store.Set(1, FlagAccessed)
	l.RotateInactive(1)
	if store.Has(1, FlagAccessed) || !l.Contains(1) {
		t.Fatal("rotate semantics wrong")
	}
	// TailInactive returns the oldest inactive page (0, then rotated 1
	// went to the head).
	if got := l.TailInactive(); got != 0 {
		t.Fatalf("tail = %d, want 0", got)
	}
}

func TestLRUBalanceCapsAndOrder(t *testing.T) {
	_, l := lruFixture(64)
	// Build a large active list.
	for pfn := PFN(0); pfn < 10; pfn++ {
		l.Insert(pfn)
		l.MarkAccessed(pfn)
		l.MarkAccessed(pfn)
	}
	if l.ActiveCount() != 10 {
		t.Fatal("setup failed")
	}
	demoted := l.Balance(3)
	if len(demoted) != 3 {
		t.Fatalf("Balance demoted %d, want cap 3", len(demoted))
	}
	// Oldest activations demote first (active tail).
	if demoted[0] != 0 || demoted[1] != 1 || demoted[2] != 2 {
		t.Fatalf("demotion order wrong: %v", demoted)
	}
	// Balance stops once lists even out.
	all := l.Balance(100)
	if l.ActiveCount() > l.InactiveCount() {
		t.Fatalf("unbalanced after full Balance: %d/%d (moved %d)",
			l.ActiveCount(), l.InactiveCount(), len(all))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUMarkAccessedOffList(t *testing.T) {
	store, l := lruFixture(4)
	// Pages not on the LRU are ignored without panic.
	l.MarkAccessed(2)
	if store.Has(2, FlagAccessed) {
		t.Fatal("off-list page must not gain the referenced bit via LRU")
	}
}

func TestLRUInvariantProperty(t *testing.T) {
	// Property: arbitrary insert/touch/deactivate/balance/remove
	// interleavings keep both lists structurally sound and every page on
	// exactly one list.
	f := func(ops []uint16) bool {
		store, l := lruFixture(64)
		onLRU := map[PFN]bool{}
		for _, op := range ops {
			pfn := PFN(op % 64)
			switch op % 5 {
			case 0:
				if !onLRU[pfn] {
					l.Insert(pfn)
					onLRU[pfn] = true
				}
			case 1:
				if onLRU[pfn] {
					l.MarkAccessed(pfn)
				}
			case 2:
				if onLRU[pfn] {
					l.Deactivate(pfn)
				}
			case 3:
				l.Balance(int(op>>4) % 8)
			case 4:
				if onLRU[pfn] {
					l.Remove(pfn)
					delete(onLRU, pfn)
				}
			}
		}
		if int(l.Count()) != len(onLRU) {
			return false
		}
		for pfn := range onLRU {
			if !store.Has(pfn, FlagOnLRU) {
				return false
			}
		}
		return l.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPageFlagsHelpers(t *testing.T) {
	var p Page
	p.Set(FlagDirty | FlagActive)
	if !p.Has(FlagDirty) || !p.Has(FlagActive) || !p.Has(FlagDirty|FlagActive) {
		t.Fatal("Has broken")
	}
	if p.Has(FlagDirty | FlagPinned) {
		t.Fatal("Has must require all bits")
	}
	p.Clear(FlagDirty)
	if p.Has(FlagDirty) || !p.Has(FlagActive) {
		t.Fatal("Clear broken")
	}
}

func TestPageKindStringsAndMovability(t *testing.T) {
	if KindAnon.String() != "heap/anon" || KindNetBuf.String() != "NW-buff" {
		t.Fatal("kind names diverge from Figure 4 labels")
	}
	if PageKind(77).String() == "" {
		t.Fatal("unknown kind should render")
	}
	movable := map[PageKind]bool{
		KindAnon: true, KindPageCache: true, KindNetBuf: true, KindSlab: true,
		KindPageTable: false, KindDMA: false, KindFree: false,
	}
	for k, want := range movable {
		if k.Movable() != want {
			t.Errorf("%v movable = %v, want %v", k, k.Movable(), want)
		}
	}
}
