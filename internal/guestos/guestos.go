// Package guestos implements the heterogeneity-aware guest operating
// system memory manager that is the paper's first contribution
// (Section 3): NUMA-node-per-memory-type abstraction, a buddy page
// allocator with multi-dimensional per-CPU free lists, slab caches, an
// I/O page cache, virtual memory areas backed by a four-level page
// table, the split active/inactive LRU with the HeteroOS-LRU extensions,
// and the on-demand balloon front-end.
//
// The package operates on simulated frames: a page's backing machine
// frame (MFN) determines its memory tier, and the clock only advances
// when the surrounding simulation charges time for the operations
// performed here. All placement logic, however, is real: the same
// decisions a kernel patch would make are made here over the same state.
package guestos

import (
	"fmt"

	"heteroos/internal/guestos/pagecache"
	"heteroos/internal/memsim"
)

// PFN is a guest physical frame number. Each VM's guest-physical address
// space is laid out with the FastMem node's frames first, then the
// SlowMem node's frames; in transparent (VMM-exclusive) mode there is a
// single node spanning all frames.
type PFN uint64

// NilPFN marks "no frame".
const NilPFN = PFN(^uint64(0))

// VPN is a virtual page number within the guest application's address
// space.
type VPN uint64

// NilVPN marks "no virtual page".
const NilVPN = VPN(^uint64(0))

// PageKind classifies what a page is used for. The categories follow the
// paper's Figure 4 census: heap/anonymous, I/O page cache (including
// file-mapped), network kernel buffers, other slab, page-table pages,
// and DMA.
type PageKind int

const (
	// KindFree marks a page not currently allocated to any subsystem.
	KindFree PageKind = iota
	// KindAnon is application heap / anonymous memory.
	KindAnon
	// KindPageCache is the I/O page and buffer cache, including
	// file-mapped pages.
	KindPageCache
	// KindNetBuf is network kernel buffer (skbuff) slab pages.
	KindNetBuf
	// KindSlab is all other kernel slab pages (filesystem metadata,
	// dentries, inodes, bios).
	KindSlab
	// KindPageTable is page-table pages. They are linearly mapped and
	// cannot be migrated (exception-listed in coordinated mode).
	KindPageTable
	// KindDMA is device-pinned memory; unmovable.
	KindDMA
	// NumKinds is the number of page kinds, including KindFree.
	NumKinds
)

// String names the kind using the paper's Figure 4 labels.
func (k PageKind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindAnon:
		return "heap/anon"
	case KindPageCache:
		return "I/O cache/mapped"
	case KindNetBuf:
		return "NW-buff"
	case KindSlab:
		return "slab"
	case KindPageTable:
		return "pagetable"
	case KindDMA:
		return "DMA"
	default:
		return fmt.Sprintf("PageKind(%d)", int(k))
	}
}

// Movable reports whether pages of this kind may be migrated between
// tiers. Page-table and DMA pages are linearly/physically addressed and
// pinned (Section 4.1's exception list).
func (k PageKind) Movable() bool {
	return k == KindAnon || k == KindPageCache || k == KindNetBuf || k == KindSlab
}

// AllocatableKinds are the kinds subsystems request pages for, in the
// order Figure 4 reports them.
var AllocatableKinds = []PageKind{KindAnon, KindPageCache, KindNetBuf, KindSlab, KindPageTable, KindDMA}

// PageFlags is a bitset of per-page state.
type PageFlags uint16

const (
	// FlagAccessed is the simulated PTE access bit; set on every touch,
	// cleared by hotness scans.
	FlagAccessed PageFlags = 1 << iota
	// FlagDirty marks unwritten page-cache contents.
	FlagDirty
	// FlagActive places the page on the active (vs inactive) LRU list.
	FlagActive
	// FlagOnLRU marks LRU membership.
	FlagOnLRU
	// FlagPinned marks pages that must not move or be reclaimed.
	FlagPinned
	// FlagBalloon marks pages absorbed by the balloon driver (returned
	// to the VMM; not usable by the guest).
	FlagBalloon
	// FlagFastPref records that the allocation originally wanted FastMem
	// but was spilled; the coordinated migrator prioritises such pages.
	FlagFastPref
	// FlagScanAccessed is the hotness tracker's private referenced bit.
	// Real access-bit scanning steals the bit reclaim depends on; Linux's
	// idle-page tracking introduced a separate bit for exactly this
	// reason, and the simulator follows that design.
	FlagScanAccessed
	// FlagScanWritten is the tracker's private dirtied bit, used by the
	// write-aware migration extension (Section 4.3): NVM-class SlowMem
	// punishes stores far more than loads, so write-heavy pages deserve
	// FastMem ahead of read-heavy ones.
	FlagScanWritten
)

// Page is a materialized view of one frame's metadata (struct page).
// The storage of record is the struct-of-arrays PageStore (store.go);
// PageStore.PageView assembles this value for tests, snapshots, and
// debugging. Hot paths read individual fields through the store's
// accessors instead.
type Page struct {
	MFN   memsim.MFN // backing machine frame; NilMFN when unpopulated
	Kind  PageKind
	Flags PageFlags
	// VPN backrefs for reverse mapping: anonymous pages record the
	// mapping virtual page; cache pages record file and offset.
	VPN     VPN
	File    FileID
	FileOff uint64
	// LRU intrusive list links (PFN-indexed; NilPFN terminated).
	lruPrev, lruNext PFN
	// LastUse is the epoch of the most recent access, used by the LRU
	// and by eviction ordering.
	LastUse uint32
	// Heat counts touches (guest-side popularity signal).
	Heat uint32
	// ScanHeat is the VMM scanner's per-page hotness history. It lives
	// in the page metadata (not a VMM-side array) so it travels with the
	// page when a guest-controlled migration changes its frame.
	ScanHeat uint8
	// ScanWriteHeat is the tracker's store-activity history (the PAGE_RW
	// scanning of Section 4.3's write-aware extension).
	ScanWriteHeat uint8
	// Tag models page contents so tests can verify migration copies.
	Tag uint64
}

// Has reports whether all bits in f are set.
func (p *Page) Has(f PageFlags) bool { return p.Flags&f == f }

// Set sets the bits in f.
func (p *Page) Set(f PageFlags) { p.Flags |= f }

// Clear clears the bits in f.
func (p *Page) Clear(f PageFlags) { p.Flags &^= f }

// FileID identifies a simulated file (or network socket buffer pool) for
// page-cache indexing. It aliases the page cache's identifier type so
// the two layers share one namespace.
type FileID = pagecache.FileID

// NilFile marks "no file".
const NilFile = FileID(0)
