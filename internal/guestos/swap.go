package guestos

import "fmt"

// swapSpace models the swap device at page granularity: which virtual
// pages currently live in swap. Contents are not simulated; a swapped
// page's Tag is retained so swap-in can restore it.
type swapSpace struct {
	slots map[VPN]uint64 // vpn → page tag
	outs  uint64
	ins   uint64
}

func newSwapSpace() *swapSpace {
	return &swapSpace{slots: make(map[VPN]uint64)}
}

func (s *swapSpace) add(vpn VPN, tag uint64) {
	if _, ok := s.slots[vpn]; ok {
		panic(fmt.Sprintf("swap: vpn %d already swapped", vpn))
	}
	s.slots[vpn] = tag
	s.outs++
}

func (s *swapSpace) take(vpn VPN) uint64 {
	tag, ok := s.slots[vpn]
	if !ok {
		panic(fmt.Sprintf("swap: vpn %d not in swap", vpn))
	}
	delete(s.slots, vpn)
	s.ins++
	return tag
}

func (s *swapSpace) free(vpn VPN) {
	delete(s.slots, vpn)
}

func (s *swapSpace) has(vpn VPN) bool {
	_, ok := s.slots[vpn]
	return ok
}

func (s *swapSpace) count() int { return len(s.slots) }
