package guestos

import (
	"errors"
	"testing"

	"heteroos/internal/memsim"
)

// TestBootShortfallTypedError checks that a balloon back-end refusing
// part of the boot reservation surfaces as a typed, inspectable error
// rather than a silently under-reserved guest.
func TestBootShortfallTypedError(t *testing.T) {
	src := newFakeSource(4096, 4096)
	src.denyFast = true
	_, err := New(Config{
		CPUs: 2, Aware: true,
		FastMaxPages: 1024, SlowMaxPages: 2048,
		BootFastPages: 256, BootSlowPages: 512,
		Source: src,
		TierOf: src.m.TierOf,
		Seed:   1,
	})
	if err == nil {
		t.Fatal("boot with refused FastMem reservation succeeded")
	}
	if !errors.Is(err, ErrBalloonShortfall) {
		t.Fatalf("error is not ErrBalloonShortfall: %v", err)
	}
	var sf *BalloonShortfallError
	if !errors.As(err, &sf) {
		t.Fatalf("error is not a *BalloonShortfallError: %v", err)
	}
	if sf.Tier != memsim.FastMem {
		t.Errorf("shortfall tier = %v, want FastMem", sf.Tier)
	}
	if sf.Got >= sf.Want {
		t.Errorf("shortfall got %d >= want %d", sf.Got, sf.Want)
	}
}

// TestTeardownReturnsEveryFrame checks that Teardown unwinds the whole
// guest: every backed frame released to the source, P2M left empty.
func TestTeardownReturnsEveryFrame(t *testing.T) {
	os, src := testOS(t, heapODPlacement(), 1024, 2048, 256, 512)
	// Touch enough memory to spread pages across both nodes.
	const pages = 600
	vma, err := os.AS.Mmap(pages, KindAnon, NilFile)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		if _, err := os.TouchVPN(vma.Start+VPN(i), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	allocated := src.m.AllocatedFrames(memsim.FastMem) + src.m.AllocatedFrames(memsim.SlowMem)
	if allocated == 0 {
		t.Fatal("no frames allocated before teardown")
	}
	released := os.Teardown()
	if released != allocated {
		t.Fatalf("Teardown released %d frames, machine had %d allocated", released, allocated)
	}
	if got := src.m.AllocatedFrames(memsim.FastMem) + src.m.AllocatedFrames(memsim.SlowMem); got != 0 {
		t.Fatalf("%d frames still allocated after teardown", got)
	}
	if err := os.P2MEmpty(); err != nil {
		t.Fatalf("P2M not empty after teardown: %v", err)
	}
}
