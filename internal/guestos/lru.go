package guestos

import (
	"fmt"
)

// lruList is an intrusive doubly-linked list threaded through the page
// store via the lruPrev/lruNext parallel arrays.
type lruList struct {
	head, tail PFN
	count      uint64
}

func newLRUList() lruList { return lruList{head: NilPFN, tail: NilPFN} }

// PageLRU is the split LRU of one node: an active list of recently-used
// pages and an inactive list of reclaim candidates (Section 3.3:
// "Linux uses an approximate split LRU that maintains an active list of
// hot or recently used pages, and an inactive list with cold pages").
type PageLRU struct {
	store    *PageStore
	active   lruList
	inactive lruList

	activations, deactivations uint64
}

// NewPageLRU builds an empty LRU over store.
func NewPageLRU(store *PageStore) *PageLRU {
	return &PageLRU{store: store, active: newLRUList(), inactive: newLRUList()}
}

func (l *PageLRU) list(active bool) *lruList {
	if active {
		return &l.active
	}
	return &l.inactive
}

func (l *PageLRU) pushHead(lst *lruList, pfn PFN) {
	s := l.store
	s.lruPrev[pfn] = NilPFN
	s.lruNext[pfn] = lst.head
	if lst.head != NilPFN {
		s.lruPrev[lst.head] = pfn
	}
	lst.head = pfn
	if lst.tail == NilPFN {
		lst.tail = pfn
	}
	lst.count++
}

func (l *PageLRU) unlink(lst *lruList, pfn PFN) {
	s := l.store
	prev, next := s.lruPrev[pfn], s.lruNext[pfn]
	if prev != NilPFN {
		s.lruNext[prev] = next
	} else {
		lst.head = next
	}
	if next != NilPFN {
		s.lruPrev[next] = prev
	} else {
		lst.tail = prev
	}
	s.lruPrev[pfn], s.lruNext[pfn] = NilPFN, NilPFN
	lst.count--
}

// Insert adds a newly allocated page to the inactive list. New pages
// must earn activation through reuse.
func (l *PageLRU) Insert(pfn PFN) {
	if l.store.Has(pfn, FlagOnLRU) {
		panic(fmt.Sprintf("lru: page %d inserted twice", pfn))
	}
	l.store.Set(pfn, FlagOnLRU)
	l.store.Clear(pfn, FlagActive)
	l.pushHead(&l.inactive, pfn)
}

// Remove takes a page off the LRU entirely (page being freed or
// migrated away from this node).
func (l *PageLRU) Remove(pfn PFN) {
	if !l.store.Has(pfn, FlagOnLRU) {
		panic(fmt.Sprintf("lru: removing page %d not on LRU", pfn))
	}
	l.unlink(l.list(l.store.Has(pfn, FlagActive)), pfn)
	l.store.Clear(pfn, FlagOnLRU|FlagActive)
}

// Contains reports whether pfn is on this LRU.
func (l *PageLRU) Contains(pfn PFN) bool {
	return l.store.Has(pfn, FlagOnLRU)
}

// MarkAccessed implements mark_page_accessed semantics: the first touch
// sets the referenced bit; a second touch while on the inactive list
// promotes the page to the active list.
func (l *PageLRU) MarkAccessed(pfn PFN) {
	s := l.store
	if !s.Has(pfn, FlagOnLRU) {
		return
	}
	if s.Has(pfn, FlagActive) {
		s.Set(pfn, FlagAccessed)
		return
	}
	if s.Has(pfn, FlagAccessed) {
		// Second reference on the inactive list: activate.
		l.unlink(&l.inactive, pfn)
		s.Set(pfn, FlagActive)
		l.pushHead(&l.active, pfn)
		l.activations++
		return
	}
	s.Set(pfn, FlagAccessed)
}

// Deactivate moves an active page to the inactive list head, clearing
// its referenced bit (shrink_active_list behaviour).
func (l *PageLRU) Deactivate(pfn PFN) {
	s := l.store
	if !s.Has(pfn, FlagOnLRU) || !s.Has(pfn, FlagActive) {
		return
	}
	l.unlink(&l.active, pfn)
	s.Clear(pfn, FlagActive|FlagAccessed)
	l.pushHead(&l.inactive, pfn)
	l.deactivations++
}

// Balance demotes up to max pages from the active tail while the active
// list outnumbers the inactive list, returning the demoted pages. It is
// called under reclaim pressure only (like shrink_active_list): balancing
// without pressure would strip hot pages of their protection. HeteroOS-
// LRU uses the returned set to demote eagerly ("actively monitors the
// active to an inactive state change ... and immediately evicts them
// from FastMem").
func (l *PageLRU) Balance(max int) []PFN {
	return l.BalanceInto(nil, max)
}

// BalanceInto is Balance appending into a caller-supplied buffer
// (typically buf[:0] of a reusable slice), so steady-state epoch
// maintenance allocates nothing.
func (l *PageLRU) BalanceInto(demoted []PFN, max int) []PFN {
	for len(demoted) < max && l.active.count > l.inactive.count && l.active.tail != NilPFN {
		pfn := l.active.tail
		l.Deactivate(pfn)
		demoted = append(demoted, pfn)
	}
	return demoted
}

// TailInactive returns the coldest inactive page, or NilPFN.
func (l *PageLRU) TailInactive() PFN { return l.inactive.tail }

// RotateInactive gives a referenced inactive tail page a second chance
// by moving it to the inactive head with its referenced bit cleared.
func (l *PageLRU) RotateInactive(pfn PFN) {
	s := l.store
	if !s.Has(pfn, FlagOnLRU) || s.Has(pfn, FlagActive) {
		return
	}
	l.unlink(&l.inactive, pfn)
	s.Clear(pfn, FlagAccessed)
	l.pushHead(&l.inactive, pfn)
}

// ActiveCount reports the active list length.
func (l *PageLRU) ActiveCount() uint64 { return l.active.count }

// InactiveCount reports the inactive list length.
func (l *PageLRU) InactiveCount() uint64 { return l.inactive.count }

// Count reports total resident pages on the LRU.
func (l *PageLRU) Count() uint64 { return l.active.count + l.inactive.count }

// Stats reports activation/deactivation counters.
func (l *PageLRU) Stats() (activations, deactivations uint64) {
	return l.activations, l.deactivations
}

// CheckInvariants walks both lists verifying link integrity, flag
// consistency, and counts.
func (l *PageLRU) CheckInvariants() error {
	s := l.store
	for _, c := range []struct {
		lst    *lruList
		active bool
		name   string
	}{{&l.active, true, "active"}, {&l.inactive, false, "inactive"}} {
		var n uint64
		prev := NilPFN
		for pfn := c.lst.head; pfn != NilPFN; pfn = s.lruNext[pfn] {
			if !s.Has(pfn, FlagOnLRU) {
				return fmt.Errorf("lru: %s page %d missing FlagOnLRU", c.name, pfn)
			}
			if s.Has(pfn, FlagActive) != c.active {
				return fmt.Errorf("lru: page %d active flag mismatch on %s list", pfn, c.name)
			}
			if s.lruPrev[pfn] != prev {
				return fmt.Errorf("lru: page %d prev link broken on %s list", pfn, c.name)
			}
			prev = pfn
			n++
			if n > s.Len() {
				return fmt.Errorf("lru: %s list cycle", c.name)
			}
		}
		if prev != c.lst.tail {
			return fmt.Errorf("lru: %s tail mismatch", c.name)
		}
		if n != c.lst.count {
			return fmt.Errorf("lru: %s count %d != walked %d", c.name, c.lst.count, n)
		}
	}
	return nil
}
