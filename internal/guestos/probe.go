package guestos

import "heteroos/internal/obs"

// osProbes is the guest OS's preregistered observability instrument
// set. All counters and histograms are registered once in AttachObs;
// the chokepoints (migration, reclaim, balloon, allocation placement)
// update them behind a single `o.obs != nil` check, so the default
// (unattached) path costs one predictable branch and the attached path
// never allocates.
type osProbes struct {
	scope          *obs.Scope
	promotions     *obs.Counter
	demotions      *obs.Counter
	migrateNs      *obs.Histogram
	balloonIn      *obs.Counter
	balloonOut     *obs.Counter
	balloonRefused *obs.Counter
	cacheEvictions *obs.Counter
	fastAllocReqs  *obs.Counter
	fastAllocMiss  *obs.Counter
	reclaimPasses  *obs.Counter
	reclaimFreed   *obs.Counter
	reclaimFreedH  *obs.Histogram
	lruRotations   *obs.Counter
	swapOuts       *obs.Counter
}

// AttachObs wires the guest OS's probes into scope (typically the
// per-VM scope core built). Call once at boot, before the first epoch;
// a nil scope leaves observability off.
func (o *OS) AttachObs(scope *obs.Scope) {
	if scope == nil {
		return
	}
	o.obs = &osProbes{
		scope:          scope,
		promotions:     scope.Counter("guestos.promotions"),
		demotions:      scope.Counter("guestos.demotions"),
		migrateNs:      scope.Histogram("guestos.migrate_ns"),
		balloonIn:      scope.Counter("guestos.balloon_pages_in"),
		balloonOut:     scope.Counter("guestos.balloon_pages_out"),
		balloonRefused: scope.Counter("guestos.balloon_refused_pages"),
		cacheEvictions: scope.Counter("guestos.cache_evictions"),
		fastAllocReqs:  scope.Counter("guestos.fast_alloc_requests"),
		fastAllocMiss:  scope.Counter("guestos.fast_alloc_misses"),
		reclaimPasses:  scope.Counter("guestos.reclaim_passes"),
		reclaimFreed:   scope.Counter("guestos.reclaim_freed_pages"),
		reclaimFreedH:  scope.Histogram("guestos.reclaim_freed_per_pass"),
		lruRotations:   scope.Counter("guestos.lru_rotations"),
		swapOuts:       scope.Counter("guestos.swap_outs"),
	}
}

// nodeTierByte maps node idx to the event tier byte: the node's tier in
// aware mode, TierNone in transparent mode where the single node's
// backing frames span both tiers.
func (o *OS) nodeTierByte(idx int) uint8 {
	if !o.cfg.Aware {
		return obs.TierNone
	}
	return uint8(o.nodes[idx].Tier)
}
