package guestos

import (
	"fmt"

	"heteroos/internal/guestos/slab"
	"heteroos/internal/memsim"
)

// TouchVPN records application accesses to one virtual page: demand
// faults (and swap-ins) are serviced, the page's reference state is
// updated, and the access counts are attributed to the backing tier.
// Returns the backing frame.
func (o *OS) TouchVPN(vpn VPN, loads, stores uint64) (PFN, error) {
	pfn, st := o.AS.lookup(vpn)
	switch st {
	case ptPresent:
		// Fast path.
	case ptAbsent:
		var err error
		pfn, err = o.faultIn(vpn, false)
		if err != nil {
			return NilPFN, err
		}
	case ptSwapped:
		var err error
		pfn, err = o.faultIn(vpn, true)
		if err != nil {
			return NilPFN, err
		}
	}
	o.recordUserTouch(pfn, loads, stores)
	return pfn, nil
}

// faultIn services a demand fault on vpn.
func (o *OS) faultIn(vpn VPN, fromSwap bool) (PFN, error) {
	v, ok := o.AS.FindVMA(vpn)
	if !ok {
		return NilPFN, fmt.Errorf("guestos: fault on unmapped vpn %d", vpn)
	}
	o.AS.faults++
	o.ep.Faults++
	o.ep.OSTimeNs += o.costs.PageFaultNs

	switch v.Kind {
	case KindAnon:
		pfn, ok := o.allocPage(KindAnon, 0)
		if !ok {
			// Last resort: make room anywhere, then retry once.
			o.emergencyReclaim()
			pfn, ok = o.allocPage(KindAnon, 0)
			if !ok {
				return NilPFN, fmt.Errorf("guestos: out of memory faulting vpn %d", vpn)
			}
		}
		o.store.SetVPN(pfn, vpn)
		if fromSwap {
			o.store.SetTag(pfn, o.swap.take(vpn))
			o.AS.clearSwapEntry(vpn)
			o.AS.swapIns++
			o.ep.SwapIns++
			o.ep.OSTimeNs += o.costs.SwapPageNs
		}
		o.AS.mapPage(vpn, pfn)
		v.Resident++
		return pfn, nil

	case KindPageCache:
		off := uint64(vpn - v.Start)
		res := o.PC.Read(v.File, off, 1)
		o.chargeIO(pagecacheResult{res.Touched, res.DiskPages, res.AllocFailed}, false)
		pfn, ok := o.PC.Lookup(v.File, off)
		if !ok {
			return NilPFN, fmt.Errorf("guestos: out of memory mapping file page %d@%d", v.File, off)
		}
		o.store.SetVPN(PFN(pfn), vpn)
		o.store.SetFile(PFN(pfn), v.File)
		o.store.SetFileOff(PFN(pfn), off)
		o.AS.mapPage(vpn, PFN(pfn))
		v.Resident++
		return PFN(pfn), nil
	}
	return NilPFN, fmt.Errorf("guestos: fault in VMA of kind %v", v.Kind)
}

// emergencyReclaim frees memory from every node under global pressure.
func (o *OS) emergencyReclaim() {
	for idx := range o.nodes {
		o.reclaimNode(idx, reclaimBatchPages)
	}
}

// recordUserTouch attributes application accesses to the page's tier and
// updates reference state.
func (o *OS) recordUserTouch(pfn PFN, loads, stores uint64) {
	st := o.store
	tier := o.TierOfPage(pfn)
	o.ep.UserLoads[tier] += loads
	o.ep.UserStores[tier] += stores
	st.SetLastUse(pfn, o.epoch)
	st.Set(pfn, FlagScanAccessed)
	if stores > 0 {
		st.Set(pfn, FlagScanWritten)
	}
	if h := st.Heat(pfn); h < ^uint32(0) {
		st.SetHeat(pfn, h+1)
	}
	// MarkAccessed manages the referenced bit for LRU pages (first touch
	// marks, second promotes); pinned pages just get the bit. Heavily
	// touched pages activate immediately — one TouchVPN call stands for
	// many real references.
	if st.Has(pfn, FlagOnLRU) {
		l := o.lrus[o.nodeIndexOf(pfn)]
		l.MarkAccessed(pfn)
		if loads+stores >= 3 {
			l.MarkAccessed(pfn)
		}
	} else {
		st.Set(pfn, FlagAccessed)
	}
}

// recordKernelTouch attributes a kernel data movement of bytes through
// page pfn (I/O copy, buffer copy) and refreshes reference state. The
// copy counts as line-granularity loads on the page's tier, so the
// epoch's LLC-miss volume is attributed to cache/slab pages in
// proportion to the I/O flowing through them — this is what makes
// page-cache and skbuff placement matter to I/O-intensive applications
// exactly as Section 3.2 describes.
func (o *OS) recordKernelTouch(pfn PFN, bytes float64) {
	st := o.store
	tier := o.TierOfPage(pfn)
	o.ep.KernelCopyBytes[tier] += bytes
	o.ep.UserLoads[tier] += uint64(bytes / memsim.CacheLineSize)
	st.SetLastUse(pfn, o.epoch)
	st.Set(pfn, FlagScanAccessed)
	if st.Has(pfn, FlagOnLRU) {
		o.lrus[o.nodeIndexOf(pfn)].MarkAccessed(pfn)
	} else {
		st.Set(pfn, FlagAccessed)
	}
}

// chargeIO prices a page-cache operation result: disk pages and the
// kernel copies through the touched cache pages.
func (o *OS) chargeIO(res pagecacheResult, write bool) {
	if res.DiskPages > 0 {
		if write {
			o.ep.DiskWritePages += uint64(res.DiskPages)
			o.ep.OSTimeNs += float64(res.DiskPages) * o.costs.DiskWritePageNs * o.costs.WritebackAsyncFactor
		} else {
			o.ep.DiskReadPages += uint64(res.DiskPages)
			o.ep.OSTimeNs += float64(res.DiskPages) * o.costs.DiskReadPageNs
		}
	}
	for _, raw := range res.Touched {
		o.recordKernelTouch(PFN(raw), memsim.PageSize)
	}
}

// pagecacheResult mirrors pagecache.ReadResult without re-importing it
// (kept structurally identical; conversion happens in the callers).
type pagecacheResult struct {
	Touched     []uint64
	DiskPages   int
	AllocFailed int
}

// FileRead reads n pages of file starting at page offset off through
// the page cache, charging disk reads for misses and per-page copies at
// the tier of each cache page.
func (o *OS) FileRead(file FileID, off uint64, n int) {
	o.ep.OSTimeNs += o.costs.SyscallNs
	res := o.PC.Read(file, off, n)
	o.tagCachePages(file, res.Touched)
	o.chargeIO(pagecacheResult{res.Touched, res.DiskPages, res.AllocFailed}, false)
}

// FileWrite writes n pages of file starting at off through the page
// cache (writeback caching).
func (o *OS) FileWrite(file FileID, off uint64, n int) {
	o.ep.OSTimeNs += o.costs.SyscallNs
	res := o.PC.Write(file, off, n)
	o.tagCachePages(file, res.Touched)
	o.chargeIO(pagecacheResult{res.Touched, res.DiskPages, res.AllocFailed}, true)
}

// tagCachePages fills in the file identity on freshly allocated cache
// pages' metadata.
func (o *OS) tagCachePages(file FileID, touched []uint64) {
	for _, raw := range touched {
		pfn := PFN(raw)
		if o.store.File(pfn) == NilFile {
			o.store.SetFile(pfn, file)
			if _, fileOff, ok := o.PC.Identity(raw); ok {
				o.store.SetFileOff(pfn, fileOff)
			}
		}
	}
}

// ReleaseFileRange drops n cached pages of file starting at page offset
// off: the drop-behind path streaming readers trigger once a range is
// consumed (madvise(DONTNEED) / readahead thrash control). Mapped pages
// are unmapped first; dirty pages are written back. This is what makes
// streaming I/O pages "short-lived [with] high reuse ... released once
// an I/O is complete" (Observation 3).
func (o *OS) ReleaseFileRange(file FileID, off uint64, n int) int {
	released := 0
	for i := 0; i < n; i++ {
		raw, ok := o.PC.Lookup(file, off+uint64(i))
		if !ok {
			continue
		}
		pfn := PFN(raw)
		if o.store.VPN(pfn) != NilVPN {
			o.unmapResident(pfn)
		}
		if o.PC.Evict(raw) {
			o.ep.DiskWritePages++
			o.ep.OSTimeNs += o.costs.DiskWritePageNs * o.costs.WritebackAsyncFactor
		}
		released++
	}
	return released
}

// NetRecv models receiving ops network messages of msgBytes each:
// skbuffs are allocated from the network slab, the payload is copied
// through them (charged at the slab pages' tiers), and the buffers are
// freed when the protocol stack hands data to the application —
// precisely the short-lived, high-reuse OS pages of Observation 3.
func (o *OS) NetRecv(ops int, msgBytes int) {
	o.netTransfer(ops, msgBytes)
}

// NetSend models sending; the skbuff lifecycle is symmetric.
func (o *OS) NetSend(ops int, msgBytes int) {
	o.netTransfer(ops, msgBytes)
}

func (o *OS) netTransfer(ops int, msgBytes int) {
	sk := o.Slabs[SlabSkbuff]
	objSize := sk.ObjSize()
	for i := 0; i < ops; i++ {
		o.ep.OSTimeNs += o.costs.NetOpNs
		bufs := (msgBytes + objSize - 1) / objSize
		refs := o.netRefs[:0]
		for b := 0; b < bufs; b++ {
			ref, err := sk.Alloc()
			if err != nil {
				break // out of memory: drop remaining buffers
			}
			refs = append(refs, ref)
			o.recordKernelTouch(PFN(ref.SlabBase), float64(objSize))
		}
		for _, ref := range refs {
			sk.Free(ref)
		}
		o.netRefs = refs[:0]
	}
}

// SlabMetaAlloc allocates n filesystem-metadata objects (dentries,
// inodes, block metadata) and returns handles for later release.
func (o *OS) SlabMetaAlloc(cache string, n int) []slabObjRef {
	c, ok := o.Slabs[cache]
	if !ok {
		panic(fmt.Sprintf("guestos: unknown slab cache %q", cache))
	}
	out := make([]slabObjRef, 0, n)
	for i := 0; i < n; i++ {
		ref, err := c.Alloc()
		if err != nil {
			break
		}
		o.recordKernelTouch(PFN(ref.SlabBase), float64(c.ObjSize()))
		out = append(out, slabObjRef{cache: cache, ref: ref})
	}
	return out
}

// SlabMetaFree releases objects from SlabMetaAlloc.
func (o *OS) SlabMetaFree(refs []slabObjRef) {
	for _, r := range refs {
		o.Slabs[r.cache].Free(r.ref)
	}
}

// slabObjRef pairs a slab object with its cache for release.
type slabObjRef struct {
	cache string
	ref   slab.ObjRef
}

// EndEpoch runs the guest's periodic memory-management work: writeback,
// LRU balancing, HeteroOS-LRU eager eviction and watermark reclaim, and
// the demand-window decay. Call once per simulation epoch, before
// DrainEpoch.
func (o *OS) EndEpoch() {
	// Background writeback.
	flushed := o.PC.Writeback(writebackPerEpoch)
	if len(flushed) > 0 {
		o.ep.DiskWritePages += uint64(len(flushed))
		o.ep.OSTimeNs += float64(len(flushed)) * o.costs.DiskWritePageNs * o.costs.WritebackAsyncFactor
	}

	// HeteroOS-LRU: under FastMem pressure, pages leaving the FastMem
	// active list are immediately demoted to SlowMem rather than
	// lingering. Balancing runs only under pressure — stripping the
	// active list without need would evict the very working set the LRU
	// exists to protect.
	if o.cfg.Placement.HeteroLRU && o.cfg.Aware {
		fast := o.Node(memsim.FastMem)
		if fast.BelowLow() {
			demoted := o.lrus[memsim.FastMem].BalanceInto(o.balanceBuf[:0], reclaimBatchPages)
			o.balanceBuf = demoted
			for _, pfn := range demoted {
				// The same guards as reclaim: never eagerly demote a
				// page that is recently used or tracker-hot.
				if o.store.Kind(pfn) != KindAnon || o.store.ScanHeat(pfn) >= 4 {
					continue
				}
				if o.store.LastUse(pfn)+2 >= o.epoch && o.epoch >= 2 {
					continue
				}
				o.demoteAnonPage(pfn)
			}
		}
		o.eagerEvictIOPages()
		o.evaluateAdmissions()
		if o.reclaimWorthwhile() {
			o.maintainWatermarks()
		}
	}

	o.epoch++
	if o.epoch%statsWindowEpochs == 0 {
		o.Window.Reset()
	}
}

// DrainEpoch returns and clears the epoch's accumulated statistics.
func (o *OS) DrainEpoch() EpochStats {
	out := o.ep
	o.ep = EpochStats{}
	return out
}

// PeekEpoch returns the in-flight epoch stats without clearing.
func (o *OS) PeekEpoch() EpochStats { return o.ep }

// AddOSTime lets the surrounding system charge guest-attributed software
// time (e.g. VMM scan stalls) into the current epoch.
func (o *OS) AddOSTime(ns float64) { o.ep.OSTimeNs += ns }

// --- VMM-facing view (hotness tracking and transparent migration) ---

// ScanHeat reads the VMM scanner's hotness history for pfn.
func (o *OS) ScanHeat(pfn PFN) uint8 { return o.store.ScanHeat(pfn) }

// SetScanHeat stores the VMM scanner's hotness history for pfn.
func (o *OS) SetScanHeat(pfn PFN, h uint8) {
	if o.store.ScanHeat(pfn) == h {
		return
	}
	o.store.SetScanHeat(pfn, h)
	if o.indexer != nil {
		o.indexer.PageHeatChanged(pfn)
	}
}

// ScanWriteHeat reads the tracker's store-activity history for pfn.
func (o *OS) ScanWriteHeat(pfn PFN) uint8 { return o.store.ScanWriteHeat(pfn) }

// SetScanWriteHeat stores the tracker's store-activity history for pfn.
func (o *OS) SetScanWriteHeat(pfn PFN, h uint8) {
	if o.store.ScanWriteHeat(pfn) == h {
		return
	}
	o.store.SetScanWriteHeat(pfn, h)
	if o.indexer != nil {
		o.indexer.PageHeatChanged(pfn)
	}
}

// TestAndClearWritten emulates PAGE_RW write-bit scanning (Section 4.3):
// it reports whether pfn was stored to since the last scan and clears
// the tracker's private dirtied bit.
func (o *OS) TestAndClearWritten(pfn PFN) bool {
	was := o.store.Has(pfn, FlagScanWritten)
	o.store.Clear(pfn, FlagScanWritten)
	return was
}

// TestAndClearAccessed emulates the access-bit scan: it reports whether
// pfn was referenced since the last scan and clears the tracker's
// private bit (leaving the LRU's referenced bit alone). The VMM's
// scanner pays the PTE-walk and TLB-flush costs at its layer.
func (o *OS) TestAndClearAccessed(pfn PFN) bool {
	was := o.store.Has(pfn, FlagScanAccessed)
	o.store.Clear(pfn, FlagScanAccessed)
	return was
}

// TakeScanAccessedWord batch-clears and returns the scan-accessed bits
// of 64-page word w under mask: the word-at-a-time form of
// TestAndClearAccessed the VMM scanner consumes (vmm.WordScanView).
func (o *OS) TakeScanAccessedWord(w int, mask uint64) uint64 {
	return o.store.TakeScanAccessedWord(w, mask)
}

// TakeScanWrittenWord is the word-at-a-time TestAndClearWritten.
func (o *OS) TakeScanWrittenWord(w int, mask uint64) uint64 {
	return o.store.TakeScanWrittenWord(w, mask)
}

// ScanHeatNonzeroWord reports which pages of word w still hold nonzero
// scan heat; the scanner must visit those even when unreferenced.
func (o *OS) ScanHeatNonzeroWord(w int, mask uint64) uint64 {
	return o.store.ScanHeatNonzeroWord(w, mask)
}

// ScanWriteHeatNonzeroWord is ScanHeatNonzeroWord for write heat.
func (o *OS) ScanWriteHeatNonzeroWord(w int, mask uint64) uint64 {
	return o.store.ScanWriteHeatNonzeroWord(w, mask)
}

// PageSnapshot is the per-page state the VMM can observe.
type PageSnapshot struct {
	Kind    PageKind
	Free    bool
	Movable bool
	Mapped  bool
	Dirty   bool
	MFN     memsim.MFN
}

// Snapshot returns the VMM-visible state of pfn.
func (o *OS) Snapshot(pfn PFN) PageSnapshot {
	st := o.store
	kind := st.Kind(pfn)
	return PageSnapshot{
		Kind:    kind,
		Free:    kind == KindFree,
		Movable: kind.Movable() && !st.Has(pfn, FlagPinned),
		Mapped:  st.VPN(pfn) != NilVPN,
		Dirty:   kind == KindPageCache && o.PC.Dirty(uint64(pfn)),
		MFN:     st.MFN(pfn),
	}
}

// SetBackingMFN swaps the machine frame behind pfn: the transparent
// (VMM-exclusive) migration path. Only valid for populated pages in
// non-aware guests, where guest-physical layout carries no tier meaning.
func (o *OS) SetBackingMFN(pfn PFN, mfn memsim.MFN) {
	if o.cfg.Aware {
		panic("guestos: SetBackingMFN on heterogeneity-aware guest")
	}
	if o.store.MFN(pfn) == memsim.NilMFN {
		panic(fmt.Sprintf("guestos: SetBackingMFN on unpopulated pfn %d", pfn))
	}
	o.store.SetMFN(pfn, mfn)
	if o.indexer != nil {
		o.indexer.PageBacked(pfn, mfn)
	}
}

// TrackingList implements the coordinated interface's tracking list: the
// guest exports the regions worth scanning — resident anonymous pages —
// extracted from the VMA structures. Short-lived I/O pages, page-table
// and DMA pages form the implicit exception list by omission.
//
// The returned slice is backed by an OS-owned buffer and is only valid
// until the next TrackingList call (the coordinated pass consumes it
// immediately; nothing retains it across passes).
//
// The full VMA walk is expensive (one Translate per vpn), so the list
// is cached against the address space's mapping generation: as long as
// no map/unmap/populate changed a translation, repeat calls return the
// previous walk's result unchanged.
func (o *OS) TrackingList() []PFN {
	if o.trackValid && o.trackGen == o.AS.mapGen {
		return o.trackBuf
	}
	// The export is an observation, not guest work: like
	// AddrSpace.CheckInvariants, it must not perturb the walkSteps
	// diagnostic — especially now that caching makes the number of
	// rebuild walks depend on call patterns (e.g. a restore rebuilds
	// once where an uninterrupted run kept its cache).
	defer func(saved uint64) { o.AS.walkSteps = saved }(o.AS.walkSteps)
	out := o.trackBuf[:0]
	for _, v := range o.AS.VMAs() {
		if v.Kind != KindAnon {
			continue
		}
		for vpn := v.Start; vpn < v.End(); vpn++ {
			if pfn, ok := o.AS.Translate(vpn); ok {
				out = append(out, pfn)
			}
		}
	}
	o.trackBuf = out
	o.trackGen = o.AS.mapGen
	o.trackValid = true
	return out
}

// ExceptionList reports the page kinds the guest exports as not worth
// tracking (Figure 5's exception list): short-lived I/O cache and
// buffer pages (HeteroOS-LRU evicts them right after the I/O), and the
// linearly-mapped page-table and DMA pages Linux cannot migrate.
// TrackingList is its complement — it only walks anonymous VMAs.
func (o *OS) ExceptionList() []PageKind {
	return []PageKind{KindPageCache, KindNetBuf, KindSlab, KindPageTable, KindDMA}
}

// ResidentByTier counts resident (non-free) pages per backing tier.
func (o *OS) ResidentByTier() [memsim.NumTiers]uint64 {
	var out [memsim.NumTiers]uint64
	for pfn := PFN(0); pfn < PFN(o.store.Len()); pfn++ {
		mfn := o.store.MFN(pfn)
		if o.store.Kind(pfn) == KindFree || mfn == memsim.NilMFN {
			continue
		}
		out[o.cfg.TierOf(mfn)]++
	}
	return out
}

// SwappedPages reports the number of pages currently in swap.
func (o *OS) SwappedPages() int { return o.swap.count() }
