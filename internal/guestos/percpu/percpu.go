// Package percpu implements the multi-dimensional per-CPU free page
// lists described in Section 3.1 of the paper: Linux keeps one per-CPU
// cache of free pages in front of the buddy allocator for fast
// single-page allocation, but that cache is designed for a single memory
// type; HeteroOS redesigns it as an array of lists, one per memory
// type, "which significantly boosts the allocation performance".
//
// The package is generic over uint64 frame numbers and pulls/pushes
// frames through caller-supplied refill and drain callbacks (typically
// bound to a node's buddy allocator).
package percpu

import "fmt"

// Refill obtains up to n free frames of the given list dimension from
// the backing allocator. Returning fewer than n (or none) means the
// backing store is exhausted.
type Refill func(dim int, n int) []uint64

// Drain returns surplus frames of the given dimension to the backing
// allocator.
type Drain func(dim int, pfns []uint64)

// Lists is a set of per-CPU, per-dimension free-page caches.
// "Dimension" is the memory type index (FastMem, SlowMem, ...); the
// redesign from a single list to an array of lists per CPU is exactly
// the HeteroOS change.
type Lists struct {
	cpus, dims int
	batch      int // frames pulled per refill
	high       int // watermark above which frees drain to the backing store
	refill     Refill
	drain      Drain
	cache      [][][]uint64 // [cpu][dim][]pfn, used as a stack
	// Stats for the allocator ablation benchmarks.
	hits, misses, refills, drains uint64
}

// New builds per-CPU lists. batch is the refill granularity; high is the
// per-list high watermark (frames beyond it are drained in batch-sized
// chunks).
func New(cpus, dims, batch, high int, refill Refill, drain Drain) *Lists {
	if cpus <= 0 || dims <= 0 {
		panic(fmt.Sprintf("percpu: invalid shape %dx%d", cpus, dims))
	}
	if batch <= 0 || high < batch {
		panic(fmt.Sprintf("percpu: invalid batch %d / high %d", batch, high))
	}
	l := &Lists{
		cpus: cpus, dims: dims, batch: batch, high: high,
		refill: refill, drain: drain,
	}
	l.cache = make([][][]uint64, cpus)
	for c := range l.cache {
		l.cache[c] = make([][]uint64, dims)
	}
	return l
}

// Alloc takes one frame of dimension dim from cpu's cache, refilling
// from the backing store if the cache is empty. ok is false when the
// backing store is also exhausted.
func (l *Lists) Alloc(cpu, dim int) (pfn uint64, ok bool) {
	st := &l.cache[cpu][dim]
	if len(*st) == 0 {
		l.refills++
		got := l.refill(dim, l.batch)
		if len(got) == 0 {
			l.misses++
			return 0, false
		}
		*st = append(*st, got...)
	} else {
		l.hits++
	}
	pfn = (*st)[len(*st)-1]
	*st = (*st)[:len(*st)-1]
	return pfn, true
}

// Free returns one frame to cpu's cache, draining a batch to the backing
// store when the high watermark is exceeded.
func (l *Lists) Free(cpu, dim int, pfn uint64) {
	st := &l.cache[cpu][dim]
	*st = append(*st, pfn)
	if len(*st) > l.high {
		l.drains++
		n := l.batch
		if n > len(*st) {
			n = len(*st)
		}
		l.drain(dim, (*st)[len(*st)-n:])
		*st = (*st)[:len(*st)-n]
	}
}

// Flush returns every cached frame to the backing store. Used when a
// node's capacity is reclaimed (balloon deflate) and at teardown.
func (l *Lists) Flush() {
	for c := 0; c < l.cpus; c++ {
		for d := 0; d < l.dims; d++ {
			if st := l.cache[c][d]; len(st) > 0 {
				l.drain(d, st)
				l.cache[c][d] = nil
			}
		}
	}
}

// FlushDim returns every cached frame of one dimension to the backing
// store; used when a single memory type is under pressure.
func (l *Lists) FlushDim(dim int) {
	for c := 0; c < l.cpus; c++ {
		if st := l.cache[c][dim]; len(st) > 0 {
			l.drain(dim, st)
			l.cache[c][dim] = nil
		}
	}
}

// Cached reports the number of frames currently cached for dimension dim
// across all CPUs.
func (l *Lists) Cached(dim int) int {
	n := 0
	for c := 0; c < l.cpus; c++ {
		n += len(l.cache[c][dim])
	}
	return n
}

// Stats reports cache hits, misses (backing exhausted), refill and drain
// operations.
func (l *Lists) Stats() (hits, misses, refills, drains uint64) {
	return l.hits, l.misses, l.refills, l.drains
}
