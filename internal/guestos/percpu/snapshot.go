package percpu

import (
	"fmt"

	"heteroos/internal/snapshot"
)

// Snapshot serializes the per-CPU caches in their exact stack order
// (Alloc pops from the top, so order is behavioural state) plus the
// hit/miss/refill/drain counters.
func (l *Lists) Snapshot(e *snapshot.Encoder) {
	e.Int(l.cpus)
	e.Int(l.dims)
	e.U64(l.hits)
	e.U64(l.misses)
	e.U64(l.refills)
	e.U64(l.drains)
	for c := 0; c < l.cpus; c++ {
		for d := 0; d < l.dims; d++ {
			e.U64s(l.cache[c][d])
		}
	}
}

// Restore overwrites the caches and counters from a snapshot taken on
// lists of the same shape.
func (l *Lists) Restore(d *snapshot.Decoder) error {
	cpus, dims := d.Int(), d.Int()
	if cpus != l.cpus || dims != l.dims {
		return fmt.Errorf("percpu: snapshot shape %dx%d != lists shape %dx%d", cpus, dims, l.cpus, l.dims)
	}
	l.hits = d.U64()
	l.misses = d.U64()
	l.refills = d.U64()
	l.drains = d.U64()
	for c := 0; c < l.cpus; c++ {
		for dim := 0; dim < l.dims; dim++ {
			l.cache[c][dim] = d.U64s()
		}
	}
	return d.Err()
}
