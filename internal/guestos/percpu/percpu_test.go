package percpu

import (
	"testing"
)

// backing is a trivial per-dimension free store for tests.
type backing struct {
	free [][]uint64
}

func newBacking(dims int, perDim uint64) *backing {
	b := &backing{free: make([][]uint64, dims)}
	var next uint64
	for d := range b.free {
		for i := uint64(0); i < perDim; i++ {
			b.free[d] = append(b.free[d], next)
			next++
		}
	}
	return b
}

func (b *backing) refill(dim, n int) []uint64 {
	if n > len(b.free[dim]) {
		n = len(b.free[dim])
	}
	out := b.free[dim][len(b.free[dim])-n:]
	b.free[dim] = b.free[dim][:len(b.free[dim])-n]
	return append([]uint64(nil), out...)
}

func (b *backing) drain(dim int, pfns []uint64) {
	b.free[dim] = append(b.free[dim], pfns...)
}

func (b *backing) count(dim int) int { return len(b.free[dim]) }

func TestAllocRefillsInBatches(t *testing.T) {
	b := newBacking(2, 100)
	l := New(4, 2, 8, 32, b.refill, b.drain)
	pfn, ok := l.Alloc(0, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	_ = pfn
	// One refill of 8 frames: 7 remain cached, 92 in backing.
	if got := l.Cached(0); got != 7 {
		t.Fatalf("cached = %d, want 7", got)
	}
	if b.count(0) != 92 {
		t.Fatalf("backing = %d, want 92", b.count(0))
	}
	// Next 7 allocs are cache hits.
	for i := 0; i < 7; i++ {
		if _, ok := l.Alloc(0, 0); !ok {
			t.Fatal("alloc failed")
		}
	}
	hits, _, refills, _ := l.Stats()
	if hits != 7 || refills != 1 {
		t.Fatalf("hits=%d refills=%d", hits, refills)
	}
}

func TestDimensionsIndependent(t *testing.T) {
	b := newBacking(2, 16)
	l := New(1, 2, 4, 16, b.refill, b.drain)
	p0, _ := l.Alloc(0, 0)
	p1, _ := l.Alloc(0, 1)
	// Dimension 0 frames are [0,16), dimension 1 frames are [16,32).
	if p0 >= 16 || p1 < 16 {
		t.Fatalf("cross-dimension leak: p0=%d p1=%d", p0, p1)
	}
}

func TestExhaustion(t *testing.T) {
	b := newBacking(1, 3)
	l := New(1, 1, 8, 16, b.refill, b.drain)
	for i := 0; i < 3; i++ {
		if _, ok := l.Alloc(0, 0); !ok {
			t.Fatalf("alloc %d failed early", i)
		}
	}
	if _, ok := l.Alloc(0, 0); ok {
		t.Fatal("alloc succeeded after exhaustion")
	}
	_, misses, _, _ := l.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d", misses)
	}
}

func TestFreeDrainsAboveWatermark(t *testing.T) {
	b := newBacking(1, 0)
	l := New(1, 1, 4, 8, b.refill, b.drain)
	for i := uint64(0); i < 9; i++ {
		l.Free(0, 0, 100+i)
	}
	// Crossing high=8 drains one batch of 4.
	if got := l.Cached(0); got != 5 {
		t.Fatalf("cached = %d, want 5", got)
	}
	if b.count(0) != 4 {
		t.Fatalf("backing = %d, want 4", b.count(0))
	}
}

func TestFlush(t *testing.T) {
	b := newBacking(2, 20)
	l := New(2, 2, 4, 16, b.refill, b.drain)
	for cpu := 0; cpu < 2; cpu++ {
		for d := 0; d < 2; d++ {
			if _, ok := l.Alloc(cpu, d); !ok {
				t.Fatal("alloc failed")
			}
		}
	}
	l.Flush()
	if l.Cached(0) != 0 || l.Cached(1) != 0 {
		t.Fatal("flush left cached frames")
	}
	// 4 frames are held by callers; the rest returned.
	if b.count(0)+b.count(1) != 36 {
		t.Fatalf("backing total = %d, want 36", b.count(0)+b.count(1))
	}
}

func TestFlushDim(t *testing.T) {
	b := newBacking(2, 20)
	l := New(1, 2, 4, 16, b.refill, b.drain)
	l.Alloc(0, 0)
	l.Alloc(0, 1)
	l.FlushDim(0)
	if l.Cached(0) != 0 {
		t.Fatal("dim 0 not flushed")
	}
	if l.Cached(1) == 0 {
		t.Fatal("dim 1 should be untouched")
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	b := newBacking(1, 64)
	l := New(2, 1, 8, 24, b.refill, b.drain)
	var held []uint64
	for i := 0; i < 40; i++ {
		p, ok := l.Alloc(i%2, 0)
		if !ok {
			t.Fatal("alloc failed")
		}
		held = append(held, p)
	}
	seen := map[uint64]bool{}
	for _, p := range held {
		if seen[p] {
			t.Fatalf("frame %d allocated twice", p)
		}
		seen[p] = true
	}
	for i, p := range held {
		l.Free(i%2, 0, p)
	}
	l.Flush()
	if b.count(0) != 64 {
		t.Fatalf("frames lost: backing has %d, want 64", b.count(0))
	}
}

func TestConstructorValidation(t *testing.T) {
	b := newBacking(1, 1)
	bad := []func(){
		func() { New(0, 1, 1, 1, b.refill, b.drain) },
		func() { New(1, 0, 1, 1, b.refill, b.drain) },
		func() { New(1, 1, 0, 1, b.refill, b.drain) },
		func() { New(1, 1, 8, 4, b.refill, b.drain) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
