package guestos

import (
	"fmt"
	"math/bits"

	"heteroos/internal/memsim"
)

// PageStore owns the guest's per-frame metadata (the struct page array)
// in a struct-of-arrays layout: one PFN-indexed slice per field instead
// of one slice of fat Page structs. The hot PageFlags bits live in
// packed []uint64 bitmaps (one bit per page, 64 pages per word) so the
// scanner can consume access bits word-at-a-time, and per-field sweeps
// (census, reclaim walks) touch only the cache lines they need.
//
// Two summary bitmaps accelerate the scan further: scanHeatNZ /
// scanWriteHeatNZ keep one bit per page that is set exactly when the
// corresponding heat byte is nonzero. A scan pass must visit a page iff
// it was referenced OR still has heat to decay, so the per-word work set
// is (accessed | heatNZ) — all-zero words are skipped entirely without
// changing any page's state evolution (zero-heat unreferenced pages
// decay to the same zero they already hold).
//
// The Page struct remains as a materialized per-frame view (PageView)
// for tests and debugging; the slices here are the storage of record.
type PageStore struct {
	n uint64

	mfn           []memsim.MFN
	kind          []uint8 // PageKind, narrowed (NumKinds < 256)
	vpn           []VPN
	file          []FileID
	fileOff       []uint64
	lruPrev       []PFN
	lruNext       []PFN
	lastUse       []uint32
	heat          []uint32
	scanHeat      []uint8
	scanWriteHeat []uint8
	tag           []uint64
	// misc holds the cold flags (dirty, pinned, balloon, fast-pref);
	// the five hot flags are hoisted into the bitmaps below.
	misc []PageFlags

	accessed     []uint64 // FlagAccessed
	active       []uint64 // FlagActive
	onLRU        []uint64 // FlagOnLRU
	scanAccessed []uint64 // FlagScanAccessed
	scanWritten  []uint64 // FlagScanWritten

	scanHeatNZ      []uint64 // bit set iff scanHeat[pfn] != 0
	scanWriteHeatNZ []uint64 // bit set iff scanWriteHeat[pfn] != 0
}

// hotFlagsMask are the flags stored as packed bitmaps; miscFlagsMask is
// everything else (kept in the per-page misc array).
const (
	hotFlagsMask  = FlagAccessed | FlagActive | FlagOnLRU | FlagScanAccessed | FlagScanWritten
	miscFlagsMask = ^hotFlagsMask
)

// NewPageStore creates metadata for n frames, all initially unpopulated.
func NewPageStore(n uint64) *PageStore {
	words := int((n + 63) / 64)
	s := &PageStore{
		n:               n,
		mfn:             make([]memsim.MFN, n),
		kind:            make([]uint8, n),
		vpn:             make([]VPN, n),
		file:            make([]FileID, n),
		fileOff:         make([]uint64, n),
		lruPrev:         make([]PFN, n),
		lruNext:         make([]PFN, n),
		lastUse:         make([]uint32, n),
		heat:            make([]uint32, n),
		scanHeat:        make([]uint8, n),
		scanWriteHeat:   make([]uint8, n),
		tag:             make([]uint64, n),
		misc:            make([]PageFlags, n),
		accessed:        make([]uint64, words),
		active:          make([]uint64, words),
		onLRU:           make([]uint64, words),
		scanAccessed:    make([]uint64, words),
		scanWritten:     make([]uint64, words),
		scanHeatNZ:      make([]uint64, words),
		scanWriteHeatNZ: make([]uint64, words),
	}
	for i := uint64(0); i < n; i++ {
		s.mfn[i] = memsim.NilMFN
		s.vpn[i] = NilVPN
		s.lruPrev[i] = NilPFN
		s.lruNext[i] = NilPFN
	}
	return s
}

// Len reports the number of frames tracked.
func (s *PageStore) Len() uint64 { return s.n }

// ScanWords reports the number of 64-page bitmap words covering the
// store (the last word may be partial).
func (s *PageStore) ScanWords() int { return len(s.scanAccessed) }

func bitGet(words []uint64, pfn PFN) bool {
	return words[pfn>>6]&(1<<(pfn&63)) != 0
}

func bitSet(words []uint64, pfn PFN) {
	words[pfn>>6] |= 1 << (pfn & 63)
}

func bitClear(words []uint64, pfn PFN) {
	words[pfn>>6] &^= 1 << (pfn & 63)
}

// --- per-field accessors ---

// MFN reads the backing machine frame of pfn.
func (s *PageStore) MFN(pfn PFN) memsim.MFN { return s.mfn[pfn] }

// SetMFN writes the backing machine frame of pfn.
func (s *PageStore) SetMFN(pfn PFN, m memsim.MFN) { s.mfn[pfn] = m }

// Kind reads the page kind of pfn.
func (s *PageStore) Kind(pfn PFN) PageKind { return PageKind(s.kind[pfn]) }

// SetKind writes the page kind of pfn.
func (s *PageStore) SetKind(pfn PFN, k PageKind) { s.kind[pfn] = uint8(k) }

// VPN reads the reverse-map virtual page of pfn.
func (s *PageStore) VPN(pfn PFN) VPN { return s.vpn[pfn] }

// SetVPN writes the reverse-map virtual page of pfn.
func (s *PageStore) SetVPN(pfn PFN, v VPN) { s.vpn[pfn] = v }

// File reads the cache-page file backref of pfn.
func (s *PageStore) File(pfn PFN) FileID { return s.file[pfn] }

// SetFile writes the cache-page file backref of pfn.
func (s *PageStore) SetFile(pfn PFN, f FileID) { s.file[pfn] = f }

// FileOff reads the cache-page file offset of pfn.
func (s *PageStore) FileOff(pfn PFN) uint64 { return s.fileOff[pfn] }

// SetFileOff writes the cache-page file offset of pfn.
func (s *PageStore) SetFileOff(pfn PFN, off uint64) { s.fileOff[pfn] = off }

// LastUse reads the epoch of pfn's most recent access.
func (s *PageStore) LastUse(pfn PFN) uint32 { return s.lastUse[pfn] }

// SetLastUse writes the epoch of pfn's most recent access.
func (s *PageStore) SetLastUse(pfn PFN, e uint32) { s.lastUse[pfn] = e }

// Heat reads the guest-side touch counter of pfn.
func (s *PageStore) Heat(pfn PFN) uint32 { return s.heat[pfn] }

// SetHeat writes the guest-side touch counter of pfn.
func (s *PageStore) SetHeat(pfn PFN, h uint32) { s.heat[pfn] = h }

// ScanHeat reads the VMM scanner's hotness history of pfn.
func (s *PageStore) ScanHeat(pfn PFN) uint8 { return s.scanHeat[pfn] }

// SetScanHeat writes the scanner's hotness history of pfn, maintaining
// the nonzero summary bitmap the word scan skips by.
func (s *PageStore) SetScanHeat(pfn PFN, h uint8) {
	s.scanHeat[pfn] = h
	if h != 0 {
		bitSet(s.scanHeatNZ, pfn)
	} else {
		bitClear(s.scanHeatNZ, pfn)
	}
}

// ScanWriteHeat reads the tracker's store-activity history of pfn.
func (s *PageStore) ScanWriteHeat(pfn PFN) uint8 { return s.scanWriteHeat[pfn] }

// SetScanWriteHeat writes the store-activity history of pfn, maintaining
// its nonzero summary bitmap.
func (s *PageStore) SetScanWriteHeat(pfn PFN, h uint8) {
	s.scanWriteHeat[pfn] = h
	if h != 0 {
		bitSet(s.scanWriteHeatNZ, pfn)
	} else {
		bitClear(s.scanWriteHeatNZ, pfn)
	}
}

// Tag reads the simulated page contents of pfn.
func (s *PageStore) Tag(pfn PFN) uint64 { return s.tag[pfn] }

// SetTag writes the simulated page contents of pfn.
func (s *PageStore) SetTag(pfn PFN, t uint64) { s.tag[pfn] = t }

// LRUPrev reads pfn's previous LRU link.
func (s *PageStore) LRUPrev(pfn PFN) PFN { return s.lruPrev[pfn] }

// LRUNext reads pfn's next LRU link.
func (s *PageStore) LRUNext(pfn PFN) PFN { return s.lruNext[pfn] }

// --- flag operations ---

// Flags materializes the full PageFlags word of pfn from the misc array
// and the hot-flag bitmaps.
func (s *PageStore) Flags(pfn PFN) PageFlags {
	f := s.misc[pfn]
	if bitGet(s.accessed, pfn) {
		f |= FlagAccessed
	}
	if bitGet(s.active, pfn) {
		f |= FlagActive
	}
	if bitGet(s.onLRU, pfn) {
		f |= FlagOnLRU
	}
	if bitGet(s.scanAccessed, pfn) {
		f |= FlagScanAccessed
	}
	if bitGet(s.scanWritten, pfn) {
		f |= FlagScanWritten
	}
	return f
}

// Has reports whether all bits in f are set on pfn. Single hot flags
// resolve to one bitmap probe; compound masks materialize.
func (s *PageStore) Has(pfn PFN, f PageFlags) bool {
	switch f {
	case FlagAccessed:
		return bitGet(s.accessed, pfn)
	case FlagActive:
		return bitGet(s.active, pfn)
	case FlagOnLRU:
		return bitGet(s.onLRU, pfn)
	case FlagScanAccessed:
		return bitGet(s.scanAccessed, pfn)
	case FlagScanWritten:
		return bitGet(s.scanWritten, pfn)
	}
	return s.Flags(pfn)&f == f
}

// Set sets the bits in f on pfn. With a constant mask the per-flag
// branches fold away.
func (s *PageStore) Set(pfn PFN, f PageFlags) {
	if m := f & miscFlagsMask; m != 0 {
		s.misc[pfn] |= m
	}
	if f&FlagAccessed != 0 {
		bitSet(s.accessed, pfn)
	}
	if f&FlagActive != 0 {
		bitSet(s.active, pfn)
	}
	if f&FlagOnLRU != 0 {
		bitSet(s.onLRU, pfn)
	}
	if f&FlagScanAccessed != 0 {
		bitSet(s.scanAccessed, pfn)
	}
	if f&FlagScanWritten != 0 {
		bitSet(s.scanWritten, pfn)
	}
}

// Clear clears the bits in f on pfn.
func (s *PageStore) Clear(pfn PFN, f PageFlags) {
	if m := f & miscFlagsMask; m != 0 {
		s.misc[pfn] &^= m
	}
	if f&FlagAccessed != 0 {
		bitClear(s.accessed, pfn)
	}
	if f&FlagActive != 0 {
		bitClear(s.active, pfn)
	}
	if f&FlagOnLRU != 0 {
		bitClear(s.onLRU, pfn)
	}
	if f&FlagScanAccessed != 0 {
		bitClear(s.scanAccessed, pfn)
	}
	if f&FlagScanWritten != 0 {
		bitClear(s.scanWritten, pfn)
	}
}

// SetAllFlags overwrites pfn's entire flag word (Page.Flags = f).
func (s *PageStore) SetAllFlags(pfn PFN, f PageFlags) {
	s.misc[pfn] = f & miscFlagsMask
	w, b := pfn>>6, uint64(1)<<(pfn&63)
	assign := func(words []uint64, on bool) {
		if on {
			words[w] |= b
		} else {
			words[w] &^= b
		}
	}
	assign(s.accessed, f&FlagAccessed != 0)
	assign(s.active, f&FlagActive != 0)
	assign(s.onLRU, f&FlagOnLRU != 0)
	assign(s.scanAccessed, f&FlagScanAccessed != 0)
	assign(s.scanWritten, f&FlagScanWritten != 0)
}

// --- word-at-a-time scan primitives ---

// TakeScanAccessedWord returns the scan-accessed bits of 64-page word w
// under mask (bit i covers PFN w*64+i) and clears them, emulating one
// batched test-and-clear over the whole word.
func (s *PageStore) TakeScanAccessedWord(w int, mask uint64) uint64 {
	v := s.scanAccessed[w] & mask
	s.scanAccessed[w] &^= v
	return v
}

// TakeScanWrittenWord is TakeScanAccessedWord for the tracker's private
// dirtied bits.
func (s *PageStore) TakeScanWrittenWord(w int, mask uint64) uint64 {
	v := s.scanWritten[w] & mask
	s.scanWritten[w] &^= v
	return v
}

// ScanHeatNonzeroWord reports which pages of word w (under mask) hold
// nonzero scan heat — the pages a scan pass must still decay even when
// unreferenced.
func (s *PageStore) ScanHeatNonzeroWord(w int, mask uint64) uint64 {
	return s.scanHeatNZ[w] & mask
}

// ScanWriteHeatNonzeroWord is ScanHeatNonzeroWord for write heat.
func (s *PageStore) ScanWriteHeatNonzeroWord(w int, mask uint64) uint64 {
	return s.scanWriteHeatNZ[w] & mask
}

// --- whole-page operations ---

// defaultPage is the store's boot-time value for every frame; pages
// still equal to it are omitted from snapshots.
var defaultPage = Page{MFN: memsim.NilMFN, VPN: NilVPN, lruPrev: NilPFN, lruNext: NilPFN}

// IsDefault reports whether pfn's metadata equals the boot-time default.
func (s *PageStore) IsDefault(pfn PFN) bool {
	return s.mfn[pfn] == memsim.NilMFN &&
		s.kind[pfn] == 0 &&
		s.misc[pfn] == 0 &&
		!bitGet(s.accessed, pfn) && !bitGet(s.active, pfn) && !bitGet(s.onLRU, pfn) &&
		!bitGet(s.scanAccessed, pfn) && !bitGet(s.scanWritten, pfn) &&
		s.vpn[pfn] == NilVPN &&
		s.file[pfn] == NilFile &&
		s.fileOff[pfn] == 0 &&
		s.lruPrev[pfn] == NilPFN && s.lruNext[pfn] == NilPFN &&
		s.lastUse[pfn] == 0 &&
		s.heat[pfn] == 0 &&
		s.scanHeat[pfn] == 0 && s.scanWriteHeat[pfn] == 0 &&
		s.tag[pfn] == 0
}

// Reset returns pfn's metadata to the boot-time default.
func (s *PageStore) Reset(pfn PFN) {
	s.mfn[pfn] = memsim.NilMFN
	s.kind[pfn] = 0
	s.vpn[pfn] = NilVPN
	s.file[pfn] = NilFile
	s.fileOff[pfn] = 0
	s.lruPrev[pfn] = NilPFN
	s.lruNext[pfn] = NilPFN
	s.lastUse[pfn] = 0
	s.heat[pfn] = 0
	s.scanHeat[pfn] = 0
	s.scanWriteHeat[pfn] = 0
	s.tag[pfn] = 0
	s.SetAllFlags(pfn, 0)
	bitClear(s.scanHeatNZ, pfn)
	bitClear(s.scanWriteHeatNZ, pfn)
}

// ResetAll returns every frame to the boot-time default (snapshot
// restore overlays onto this).
func (s *PageStore) ResetAll() {
	for i := uint64(0); i < s.n; i++ {
		s.mfn[i] = memsim.NilMFN
		s.vpn[i] = NilVPN
		s.lruPrev[i] = NilPFN
		s.lruNext[i] = NilPFN
	}
	clearU8 := func(v []uint8) {
		for i := range v {
			v[i] = 0
		}
	}
	clearU8(s.kind)
	clearU8(s.scanHeat)
	clearU8(s.scanWriteHeat)
	for i := range s.fileOff {
		s.file[i] = NilFile
		s.fileOff[i] = 0
		s.lastUse[i] = 0
		s.heat[i] = 0
		s.tag[i] = 0
		s.misc[i] = 0
	}
	for _, words := range [][]uint64{
		s.accessed, s.active, s.onLRU, s.scanAccessed, s.scanWritten,
		s.scanHeatNZ, s.scanWriteHeatNZ,
	} {
		for i := range words {
			words[i] = 0
		}
	}
}

// PageView materializes pfn's metadata as a Page value (tests, tools,
// snapshots — not the hot path).
func (s *PageStore) PageView(pfn PFN) Page {
	return Page{
		MFN:           s.mfn[pfn],
		Kind:          PageKind(s.kind[pfn]),
		Flags:         s.Flags(pfn),
		VPN:           s.vpn[pfn],
		File:          s.file[pfn],
		FileOff:       s.fileOff[pfn],
		lruPrev:       s.lruPrev[pfn],
		lruNext:       s.lruNext[pfn],
		LastUse:       s.lastUse[pfn],
		Heat:          s.heat[pfn],
		ScanHeat:      s.scanHeat[pfn],
		ScanWriteHeat: s.scanWriteHeat[pfn],
		Tag:           s.tag[pfn],
	}
}

// CheckInvariants verifies bitmap/array consistency: the nonzero summary
// bitmaps agree with the heat arrays, and no bitmap holds bits beyond
// the store's span.
func (s *PageStore) CheckInvariants() error {
	for pfn := PFN(0); pfn < PFN(s.n); pfn++ {
		if nz := bitGet(s.scanHeatNZ, pfn); nz != (s.scanHeat[pfn] != 0) {
			return fmt.Errorf("store: pfn %d scanHeat %d but NZ bit %v", pfn, s.scanHeat[pfn], nz)
		}
		if nz := bitGet(s.scanWriteHeatNZ, pfn); nz != (s.scanWriteHeat[pfn] != 0) {
			return fmt.Errorf("store: pfn %d scanWriteHeat %d but NZ bit %v", pfn, s.scanWriteHeat[pfn], nz)
		}
	}
	if tail := s.n % 64; tail != 0 && len(s.scanAccessed) > 0 {
		last := len(s.scanAccessed) - 1
		over := ^uint64(0) << tail
		for _, bm := range []struct {
			name  string
			words []uint64
		}{
			{"accessed", s.accessed}, {"active", s.active}, {"onLRU", s.onLRU},
			{"scanAccessed", s.scanAccessed}, {"scanWritten", s.scanWritten},
			{"scanHeatNZ", s.scanHeatNZ}, {"scanWriteHeatNZ", s.scanWriteHeatNZ},
		} {
			if bm.words[last]&over != 0 {
				return fmt.Errorf("store: %s bitmap has %d bits set beyond span",
					bm.name, bits.OnesCount64(bm.words[last]&over))
			}
		}
	}
	return nil
}
