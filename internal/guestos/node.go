package guestos

import (
	"fmt"

	"heteroos/internal/guestos/buddy"
	"heteroos/internal/guestos/percpu"
	"heteroos/internal/memsim"
)

// Node is one guest NUMA node: in heterogeneity-aware mode there is one
// node per memory type (Section 3.1: "we expose the memory types as NUMA
// nodes"); in transparent mode a single node spans all guest frames.
//
// FastMem nodes are created with a single zone in which both user and
// kernel pages are allocated ("FastMem nodes are partitioned with just
// one zone ... to conserve pages"); the simulator models all nodes with
// one zone and the distinction survives in the per-kind accounting.
type Node struct {
	// Tier is the memory type this node exposes. For a transparent
	// single-node guest this is the *nominal* tier; individual pages may
	// be backed by either tier.
	Tier memsim.Tier
	// Span is [Base, Base+MaxPages) in guest PFN space.
	Base     PFN
	MaxPages uint64

	Buddy *buddy.Allocator
	PCP   *percpu.Lists

	populated uint64

	// Watermarks for HeteroOS-LRU's per-memory-type replacement
	// thresholds, in pages. Reclaim triggers below Low and stops at High.
	LowWatermark, HighWatermark uint64

	// Special flag distinguishing the node types (the "special flag ...
	// added to the node structure").
	Hetero bool
}

func newNode(tier memsim.Tier, base PFN, maxPages uint64, cpus int, hetero bool) *Node {
	n := &Node{
		Tier:     tier,
		Base:     base,
		MaxPages: maxPages,
		Buddy:    buddy.New(uint64(base), maxPages),
		Hetero:   hetero,
	}
	// Per-CPU lists have a single dimension here because the node itself
	// is the memory-type dimension; the OS exposes the multi-dimensional
	// view across nodes.
	n.PCP = percpu.New(cpus, 1, 16, 64,
		func(_ int, cnt int) []uint64 {
			out := make([]uint64, 0, cnt)
			for i := 0; i < cnt; i++ {
				p, err := n.Buddy.AllocPage()
				if err != nil {
					break
				}
				out = append(out, p)
			}
			return out
		},
		func(_ int, pfns []uint64) {
			for _, p := range pfns {
				n.Buddy.FreePage(p)
			}
		})
	return n
}

// Contains reports whether pfn belongs to this node's span.
func (n *Node) Contains(pfn PFN) bool {
	return pfn >= n.Base && uint64(pfn-n.Base) < n.MaxPages
}

// Populated reports how many frames of the span are currently backed by
// machine memory.
func (n *Node) Populated() uint64 { return n.populated }

// FreePages reports free frames (buddy plus per-CPU caches).
func (n *Node) FreePages() uint64 {
	return n.Buddy.FreePages() + uint64(n.PCP.Cached(0))
}

// UsedPages reports populated frames currently allocated to a subsystem.
func (n *Node) UsedPages() uint64 { return n.populated - n.FreePages() }

// addPopulated inserts count frames starting at pfn into the allocator.
func (n *Node) addPopulated(pfn PFN, count uint64) {
	n.Buddy.AddRange(uint64(pfn), count)
	n.populated += count
}

// reserveFree pulls up to count free frames out of the node (for balloon
// deflation), flushing per-CPU caches first if needed.
func (n *Node) reserveFree(count uint64) []PFN {
	got := n.Buddy.Reserve(count)
	if uint64(len(got)) < count {
		n.PCP.Flush()
		got = append(got, n.Buddy.Reserve(count-uint64(len(got)))...)
	}
	out := make([]PFN, len(got))
	for i, g := range got {
		out[i] = PFN(g)
	}
	n.populated -= uint64(len(out))
	return out
}

// BelowLow reports whether free pages have fallen under the low
// watermark (HeteroOS-LRU trigger).
func (n *Node) BelowLow() bool {
	return n.FreePages() < n.LowWatermark
}

// ReclaimTarget reports how many pages reclaim should free to reach the
// high watermark (zero when already above it).
func (n *Node) ReclaimTarget() uint64 {
	free := n.FreePages()
	if free >= n.HighWatermark {
		return 0
	}
	return n.HighWatermark - free
}

func (n *Node) String() string {
	return fmt.Sprintf("node(%v base=%d max=%d pop=%d free=%d)",
		n.Tier, n.Base, n.MaxPages, n.populated, n.FreePages())
}
