package guestos

import (
	"testing"

	"heteroos/internal/memsim"
)

// fakeSource is a FrameSource backed by a memsim.Machine.
type fakeSource struct {
	m     *memsim.Machine
	owner memsim.Owner
	// denyFast simulates a VMM share policy refusing FastMem extensions.
	denyFast bool
}

func newFakeSource(fastFrames, slowFrames uint64) *fakeSource {
	return &fakeSource{
		m:     memsim.NewMachine(fastFrames, slowFrames, memsim.FastTierSpec(), memsim.SlowTierSpec()),
		owner: 1,
	}
}

func (s *fakeSource) Populate(t memsim.Tier, want uint64) []memsim.MFN {
	if t == memsim.FastMem && s.denyFast {
		return nil
	}
	if free := s.m.FreeFrames(t); want > free {
		want = free
	}
	if want == 0 {
		return nil
	}
	fs, err := s.m.Alloc(t, want, s.owner)
	if err != nil {
		return nil
	}
	return fs
}

func (s *fakeSource) PopulateAny(want uint64) []memsim.MFN {
	// Slow-first, like a VMM that reserves FastMem for hot-page
	// migration rather than spending it on bulk reservations.
	out := s.Populate(memsim.SlowMem, want)
	if uint64(len(out)) < want {
		out = append(out, s.Populate(memsim.FastMem, want-uint64(len(out)))...)
	}
	return out
}

func (s *fakeSource) Release(mfns []memsim.MFN) { s.m.Free(mfns, s.owner) }

// testOS boots an aware guest with the given placement and capacities.
func testOS(t *testing.T, pl PlacementConfig, fastMax, slowMax, bootFast, bootSlow uint64) (*OS, *fakeSource) {
	t.Helper()
	src := newFakeSource(fastMax, slowMax)
	os, err := New(Config{
		CPUs: 2, Aware: true,
		FastMaxPages: fastMax, SlowMaxPages: slowMax,
		BootFastPages: bootFast, BootSlowPages: bootSlow,
		Placement: pl,
		Source:    src,
		TierOf:    src.m.TierOf,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return os, src
}

func heapODPlacement() PlacementConfig {
	pl := PlacementConfig{Name: "Heap-OD", OnDemand: true}
	pl.FastKinds[KindAnon] = true
	return pl
}

func heapIOSlabODPlacement() PlacementConfig {
	pl := heapODPlacement()
	pl.Name = "Heap-IO-Slab-OD"
	pl.FastKinds[KindPageCache] = true
	pl.FastKinds[KindNetBuf] = true
	pl.FastKinds[KindSlab] = true
	return pl
}

func heteroLRUPlacement() PlacementConfig {
	pl := heapIOSlabODPlacement()
	pl.Name = "HeteroOS-LRU"
	pl.HeteroLRU = true
	return pl
}

func TestBootReservation(t *testing.T) {
	os, src := testOS(t, heapODPlacement(), 1024, 4096, 256, 1024)
	if got := os.Node(memsim.FastMem).Populated(); got != 256 {
		t.Fatalf("fast populated = %d", got)
	}
	if got := os.Node(memsim.SlowMem).Populated(); got != 1024 {
		t.Fatalf("slow populated = %d", got)
	}
	if src.m.AllocatedFrames(memsim.FastMem) != 256 {
		t.Fatal("machine accounting mismatch")
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPrefersFast(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	pfn, ok := os.allocPage(KindAnon, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	if os.TierOfPage(pfn) != memsim.FastMem {
		t.Fatal("heap page not in FastMem")
	}
	// Page cache does NOT prefer fast under Heap-OD.
	pfn2, ok := os.allocPage(KindPageCache, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	if os.TierOfPage(pfn2) != memsim.SlowMem {
		t.Fatal("cache page should go to SlowMem under Heap-OD")
	}
}

func TestHeapIOSlabODRoutesIOToFast(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	for _, kind := range []PageKind{KindAnon, KindPageCache, KindNetBuf, KindSlab} {
		pfn, ok := os.allocPage(kind, 0)
		if !ok {
			t.Fatalf("%v alloc failed", kind)
		}
		if os.TierOfPage(pfn) != memsim.FastMem {
			t.Fatalf("%v page not in FastMem", kind)
		}
	}
}

func TestOnDemandPopulationExtendsFast(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 2048, 4096, 64, 1024)
	// Allocate beyond the boot reservation: on-demand must extend.
	for i := 0; i < 500; i++ {
		pfn, ok := os.allocPage(KindAnon, 0)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if os.TierOfPage(pfn) != memsim.FastMem {
			t.Fatalf("alloc %d spilled to SlowMem with FastMem available", i)
		}
	}
	if got := os.Node(memsim.FastMem).Populated(); got <= 64 {
		t.Fatal("population did not grow")
	}
	if os.DrainEpoch().BalloonPagesIn == 0 {
		t.Fatal("balloon-in pages not accounted")
	}
}

func TestFallbackToSlowWhenFastExhausted(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 128, 4096, 128, 1024)
	spilled := false
	for i := 0; i < 300; i++ {
		pfn, ok := os.allocPage(KindAnon, 0)
		if !ok {
			t.Fatalf("alloc %d failed entirely", i)
		}
		if os.TierOfPage(pfn) == memsim.SlowMem {
			spilled = true
			if !os.Store().Has(pfn, FlagFastPref) {
				t.Fatal("spilled page missing FlagFastPref")
			}
		}
	}
	if !spilled {
		t.Fatal("expected spill to SlowMem")
	}
	if os.Window.MissRatio(KindAnon) == 0 {
		t.Fatal("miss ratio not recorded")
	}
}

func TestTouchFaultsAndCharges(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, err := os.AS.Mmap(100, KindAnon, NilFile)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := os.TouchVPN(vma.Start+VPN(i), 3, 1); err != nil {
			t.Fatal(err)
		}
	}
	if vma.Resident != 100 {
		t.Fatalf("resident = %d", vma.Resident)
	}
	st := os.DrainEpoch()
	if st.Faults != 100 {
		t.Fatalf("faults = %d", st.Faults)
	}
	if st.UserLoads[memsim.FastMem] != 300 || st.UserStores[memsim.FastMem] != 100 {
		t.Fatalf("touch accounting wrong: %+v", st.UserLoads)
	}
	if st.OSTimeNs == 0 {
		t.Fatal("no OS time charged")
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMunmapFreesPagesAndPageTables(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(600, KindAnon, NilFile)
	for i := 0; i < 600; i++ {
		if _, err := os.TouchVPN(vma.Start+VPN(i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	ptBefore := os.AS.PTPages()
	if ptBefore == 0 {
		t.Fatal("no page-table pages allocated")
	}
	usedBefore := os.Node(memsim.FastMem).UsedPages() + os.Node(memsim.SlowMem).UsedPages()
	if err := os.AS.Munmap(vma.ID); err != nil {
		t.Fatal(err)
	}
	usedAfter := os.Node(memsim.FastMem).UsedPages() + os.Node(memsim.SlowMem).UsedPages()
	if usedAfter >= usedBefore {
		t.Fatal("munmap did not free pages")
	}
	if os.AS.PTPages() != 0 {
		t.Fatalf("page-table pages leaked: %d", os.AS.PTPages())
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFileMappedVMA(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	const file = FileID(3)
	vma, _ := os.AS.Mmap(50, KindPageCache, file)
	for i := 0; i < 50; i++ {
		if _, err := os.TouchVPN(vma.Start+VPN(i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if os.PC.FilePages(file) < 50 {
		t.Fatalf("file pages = %d", os.PC.FilePages(file))
	}
	st := os.DrainEpoch()
	if st.DiskReadPages == 0 {
		t.Fatal("no disk reads charged for cold file map")
	}
	// Munmap keeps pages in the cache.
	if err := os.AS.Munmap(vma.ID); err != nil {
		t.Fatal(err)
	}
	if os.PC.FilePages(file) < 50 {
		t.Fatal("munmap evicted cache pages")
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFileReadWriteThroughCache(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	os.PC.ReadaheadWindow = 0
	os.FileRead(7, 0, 16)
	st := os.PeekEpoch()
	if st.DiskReadPages != 16 {
		t.Fatalf("disk reads = %d", st.DiskReadPages)
	}
	os.FileRead(7, 0, 16) // cached
	st = os.PeekEpoch()
	if st.DiskReadPages != 16 {
		t.Fatalf("second read hit disk: %d", st.DiskReadPages)
	}
	if st.KernelCopyBytes[memsim.FastMem] == 0 {
		t.Fatal("cache copies not charged to FastMem")
	}
	os.FileWrite(7, 0, 4)
	if os.PC.DirtyCount() != 4 {
		t.Fatalf("dirty = %d", os.PC.DirtyCount())
	}
	os.EndEpoch() // background writeback
	if os.PC.DirtyCount() != 0 {
		t.Fatal("writeback did not run")
	}
}

func TestNetTransferUsesSkbuffSlab(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	os.NetRecv(100, 4096)
	st := os.PeekEpoch()
	if st.KernelCopyBytes[memsim.FastMem] == 0 {
		t.Fatal("no network copies charged")
	}
	sk := os.Slabs[SlabSkbuff]
	if sk.InUse() != 0 {
		t.Fatal("skbuffs leaked")
	}
	allocs, frees, _, _ := sk.Stats()
	if allocs == 0 || allocs != frees {
		t.Fatalf("skbuff churn wrong: %d/%d", allocs, frees)
	}
	if os.PageCensus()[KindNetBuf] == 0 {
		t.Fatal("no netbuf pages retained")
	}
}

func TestLRUSecondChancePromotion(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(10, KindAnon, NilFile)
	os.TouchVPN(vma.Start, 1, 0)
	lru := os.LRUOf(memsim.FastMem)
	if lru.ActiveCount() != 0 {
		t.Fatal("single touch should not activate")
	}
	os.TouchVPN(vma.Start, 1, 0)
	if lru.ActiveCount() != 1 {
		t.Fatal("second touch should activate")
	}
}

func TestHeteroLRUReclaimKeepsFastAvailable(t *testing.T) {
	// FastMem is tiny; HeteroOS-LRU must demote cold heap pages so new
	// allocations keep landing in FastMem.
	os, _ := testOS(t, heteroLRUPlacement(), 256, 8192, 256, 2048)
	vma, _ := os.AS.Mmap(1024, KindAnon, NilFile)
	for i := 0; i < 1024; i++ {
		if _, err := os.TouchVPN(vma.Start+VPN(i), 1, 1); err != nil {
			t.Fatal(err)
		}
		if i%128 == 0 {
			os.EndEpoch()
		}
	}
	st := os.DrainEpoch()
	_ = st
	total := os.Cum.AllocsByKind[KindAnon]
	if total < 1024 {
		t.Fatalf("allocs = %d", total)
	}
	// With reclaim, a healthy share of allocations got FastMem even
	// though the working set is 4x its size; without reclaim only the
	// first 256 would.
	life := os.WindowLife
	missRatio := life.MissRatio(KindAnon)
	if missRatio > 0.9 {
		t.Fatalf("miss ratio %v: reclaim seems inactive", missRatio)
	}
	if os.PeekEpoch().Demotions+st.Demotions == 0 {
		// Demotions may have been drained earlier; check cumulative via stats drained above.
		t.Logf("note: demotions=%d (drained)", st.Demotions)
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPromotePageValidityChecks(t *testing.T) {
	os, _ := testOS(t, heteroLRUPlacement(), 1024, 4096, 512, 1024)
	// A SlowMem anon page: force by filling fast first.
	vma, _ := os.AS.Mmap(4, KindAnon, NilFile)
	os.TouchVPN(vma.Start, 1, 0)
	pfn, _ := os.AS.Translate(vma.Start)
	if os.TierOfPage(pfn) == memsim.FastMem {
		// Demote it so we can test promotion.
		if !os.demoteAnonPage(pfn) {
			t.Fatal("demotion failed")
		}
		pfn, _ = os.AS.Translate(vma.Start)
	}
	tag := os.PageView(pfn).Tag
	if !os.PromotePage(pfn) {
		t.Fatal("promotion failed")
	}
	newPfn, ok := os.AS.Translate(vma.Start)
	if !ok {
		t.Fatal("mapping lost")
	}
	if os.TierOfPage(newPfn) != memsim.FastMem {
		t.Fatal("page not in FastMem after promotion")
	}
	if os.PageView(newPfn).Tag != tag {
		t.Fatal("migration corrupted page contents")
	}
	// Invalid candidates are skipped.
	ptCensus := os.PageCensus()
	if ptCensus[KindPageTable] == 0 {
		t.Fatal("need a PT page for the test")
	}
	var ptPFN PFN
	for p := PFN(0); p < PFN(os.NumPFNs()); p++ {
		if os.PageView(p).Kind == KindPageTable {
			ptPFN = p
			break
		}
	}
	if os.PromotePage(ptPFN) {
		t.Fatal("page-table page must not migrate")
	}
	if os.PeekEpoch().MigrationsSkipped == 0 {
		t.Fatal("skip not accounted")
	}
}

func TestSwapOutAndSwapIn(t *testing.T) {
	// No SlowMem headroom: reclaim must swap.
	pl := heteroLRUPlacement()
	os, _ := testOS(t, pl, 64, 256, 64, 256)
	vma, _ := os.AS.Mmap(340, KindAnon, NilFile)
	for i := 0; i < 340; i++ {
		if _, err := os.TouchVPN(vma.Start+VPN(i), 1, 0); err != nil {
			t.Fatalf("touch %d: %v", i, err)
		}
	}
	if os.SwappedPages() == 0 {
		t.Fatal("expected swapped pages under extreme pressure")
	}
	// Touch a swapped page: swap-in restores the tag.
	var swappedVPN VPN
	found := false
	for i := 0; i < 280; i++ {
		vpn := vma.Start + VPN(i)
		if _, ok := os.AS.Translate(vpn); !ok {
			if os.swap.has(vpn) {
				swappedVPN = vpn
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no swapped vpn found")
	}
	if _, err := os.TouchVPN(swappedVPN, 1, 0); err != nil {
		t.Fatal(err)
	}
	st := os.DrainEpoch()
	if st.SwapIns == 0 || st.SwapOuts == 0 {
		t.Fatalf("swap accounting: ins=%d outs=%d", st.SwapIns, st.SwapOuts)
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalloonTargetReleasesFrames(t *testing.T) {
	os, src := testOS(t, heteroLRUPlacement(), 1024, 4096, 512, 2048)
	before := src.m.AllocatedFrames(memsim.SlowMem)
	released := os.BalloonTarget(memsim.SlowMem, 1024)
	if released != 1024 {
		t.Fatalf("released %d, want 1024", released)
	}
	after := src.m.AllocatedFrames(memsim.SlowMem)
	if before-after != 1024 {
		t.Fatalf("machine frames not returned: %d -> %d", before, after)
	}
	if os.Node(memsim.SlowMem).Populated() != 1024 {
		t.Fatalf("population = %d", os.Node(memsim.SlowMem).Populated())
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalloonTargetReclaimsWhenNoFreePages(t *testing.T) {
	os, _ := testOS(t, heteroLRUPlacement(), 64, 1024, 64, 1024)
	vma, _ := os.AS.Mmap(900, KindAnon, NilFile)
	for i := 0; i < 900; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}
	// Slow node nearly full of anon pages; ballooning must swap.
	released := os.BalloonTarget(memsim.SlowMem, 512)
	if released == 0 {
		t.Fatal("balloon released nothing")
	}
	if os.SwappedPages() == 0 {
		t.Fatal("balloon under pressure should have swapped")
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransparentGuestSingleNode(t *testing.T) {
	src := newFakeSource(512, 1536)
	os, err := New(Config{
		CPUs: 1, Aware: false,
		FastMaxPages: 256, SlowMaxPages: 1024,
		BootFastPages: 256, BootSlowPages: 1024,
		Placement: PlacementConfig{Name: "VMM-exclusive", OnDemand: true},
		Source:    src,
		TierOf:    src.m.TierOf,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(os.Nodes()) != 1 {
		t.Fatal("transparent guest must have one node")
	}
	vma, _ := os.AS.Mmap(100, KindAnon, NilFile)
	for i := 0; i < 100; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}
	// The guest cannot steer placement; backing tier is whatever frame
	// the VMM paired with the guest frame (migration fixes it up later —
	// exactly the VMM-exclusive baseline's weakness).
	byTier := os.ResidentByTier()
	if byTier[memsim.FastMem]+byTier[memsim.SlowMem] < 100 {
		t.Fatalf("resident accounting wrong: %v", byTier)
	}
	// Transparent migration: swap a page's backing MFN to the other tier
	// (the machine keeps spare frames beyond the boot reservation).
	pfn, _ := os.AS.Translate(vma.Start)
	old := os.PageView(pfn).MFN
	target := src.m.TierOf(old).Other()
	newMFN, err2 := src.m.AllocOne(target, 1)
	if err2 != nil {
		t.Fatal(err2)
	}
	os.SetBackingMFN(pfn, newMFN)
	if os.TierOfPage(pfn) != target {
		t.Fatal("backing swap did not change tier")
	}
	src.m.Free([]memsim.MFN{old}, 1)
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTestAndClearAccessed(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(1, KindAnon, NilFile)
	os.TouchVPN(vma.Start, 1, 0)
	pfn, _ := os.AS.Translate(vma.Start)
	if !os.TestAndClearAccessed(pfn) {
		t.Fatal("accessed bit not set")
	}
	if os.TestAndClearAccessed(pfn) {
		t.Fatal("accessed bit not cleared")
	}
	os.TouchVPN(vma.Start, 1, 0)
	if !os.TestAndClearAccessed(pfn) {
		t.Fatal("re-touch did not set bit")
	}
}

func TestTrackingListCoversResidentAnon(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(64, KindAnon, NilFile)
	for i := 0; i < 40; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}
	os.FileRead(9, 0, 8)
	list := os.TrackingList()
	if len(list) != 40 {
		t.Fatalf("tracking list has %d pages, want 40", len(list))
	}
	for _, pfn := range list {
		if os.PageView(pfn).Kind != KindAnon {
			t.Fatal("exception-listed kind in tracking list")
		}
	}
}

// TestTrackingListCacheInvalidation: TrackingList caches the VMA-walk
// export against the address space's mapping generation; any mutation
// that can change a translation — mmap, a populating touch, munmap —
// must invalidate it, and a no-mutation repeat call must serve the
// cache (no re-walk, same backing buffer).
func TestTrackingListCacheInvalidation(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(64, KindAnon, NilFile)
	for i := 0; i < 10; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}

	first := os.TrackingList()
	if len(first) != 10 {
		t.Fatalf("tracking list has %d pages, want 10", len(first))
	}
	gen := os.AS.mapGen
	again := os.TrackingList()
	if os.AS.mapGen != gen {
		t.Fatal("repeat TrackingList bumped the mapping generation")
	}
	if &again[0] != &first[0] || len(again) != len(first) {
		t.Fatal("repeat call with no mutations did not serve the cache")
	}

	// A populating touch maps a new page: the list must grow.
	os.TouchVPN(vma.Start+VPN(10), 1, 0)
	if os.AS.mapGen == gen {
		t.Fatal("populate did not bump the mapping generation")
	}
	if got := os.TrackingList(); len(got) != 11 {
		t.Fatalf("after populate: tracking list has %d pages, want 11", len(got))
	}

	// A new mapping (even before any touch) invalidates; its first
	// touched page must appear.
	vma2, _ := os.AS.Mmap(4, KindAnon, NilFile)
	os.TouchVPN(vma2.Start, 1, 0)
	if got := os.TrackingList(); len(got) != 12 {
		t.Fatalf("after second mmap+touch: tracking list has %d pages, want 12", len(got))
	}

	// Munmap drops the region's pages from the export.
	if err := os.AS.Munmap(vma2.ID); err != nil {
		t.Fatal(err)
	}
	if got := os.TrackingList(); len(got) != 11 {
		t.Fatalf("after munmap: tracking list has %d pages, want 11", len(got))
	}
}

func TestPageCensusAndCumStats(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(32, KindAnon, NilFile)
	for i := 0; i < 32; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}
	os.FileRead(4, 0, 8)
	os.NetRecv(4, 2048)
	c := os.PageCensus()
	if c[KindAnon] != 32 {
		t.Fatalf("anon census = %d", c[KindAnon])
	}
	if c[KindPageCache] == 0 || c[KindNetBuf] == 0 || c[KindPageTable] == 0 {
		t.Fatalf("census missing kinds: %+v", c)
	}
	if os.Cum.AllocsByKind[KindAnon] < 32 {
		t.Fatal("cumulative allocs wrong")
	}
}

func TestSnapshot(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(1, KindAnon, NilFile)
	os.TouchVPN(vma.Start, 1, 0)
	pfn, _ := os.AS.Translate(vma.Start)
	snap := os.Snapshot(pfn)
	if snap.Kind != KindAnon || !snap.Movable || !snap.Mapped || snap.Free {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	os.FileWrite(2, 0, 1)
	cachePfn, _ := os.PC.Lookup(2, 0)
	if snap := os.Snapshot(PFN(cachePfn)); !snap.Dirty {
		t.Fatal("dirty cache page not flagged in snapshot")
	}
}

func TestConfigValidation(t *testing.T) {
	src := newFakeSource(16, 16)
	if _, err := New(Config{CPUs: 0, Source: src, TierOf: src.m.TierOf}); err == nil {
		t.Fatal("zero CPUs accepted")
	}
	if _, err := New(Config{CPUs: 1}); err == nil {
		t.Fatal("nil source accepted")
	}
	// Boot bigger than machine: must fail.
	if _, err := New(Config{
		CPUs: 1, Aware: true, FastMaxPages: 64, SlowMaxPages: 64,
		BootFastPages: 64, BootSlowPages: 64,
		Source: src, TierOf: src.m.TierOf,
	}); err == nil {
		t.Fatal("oversubscribed boot accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() [NumKinds]uint64 {
		src := newFakeSource(512, 2048)
		os, err := New(Config{
			CPUs: 2, Aware: true,
			FastMaxPages: 512, SlowMaxPages: 2048,
			BootFastPages: 256, BootSlowPages: 1024,
			Placement: heteroLRUPlacement(),
			Source:    src, TierOf: src.m.TierOf, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		vma, _ := os.AS.Mmap(800, KindAnon, NilFile)
		for i := 0; i < 800; i++ {
			os.TouchVPN(vma.Start+VPN(i), 2, 1)
		}
		os.FileRead(3, 0, 64)
		os.NetRecv(16, 8192)
		os.EndEpoch()
		return os.PageCensus()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestExceptionListComplementsTracking(t *testing.T) {
	os, _ := testOS(t, heapODPlacement(), 1024, 4096, 512, 1024)
	vma, _ := os.AS.Mmap(8, KindAnon, NilFile)
	for i := 0; i < 8; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}
	os.FileRead(3, 0, 4)
	os.NetRecv(2, 1024)
	excluded := map[PageKind]bool{}
	for _, k := range os.ExceptionList() {
		excluded[k] = true
	}
	if excluded[KindAnon] {
		t.Fatal("heap pages must be tracked")
	}
	for _, pfn := range os.TrackingList() {
		if excluded[os.PageView(pfn).Kind] {
			t.Fatalf("exception-listed kind %v appears in tracking list", os.PageView(pfn).Kind)
		}
	}
}

func TestAccessorsAndScanState(t *testing.T) {
	os, _ := testOS(t, heteroLRUPlacement(), 1024, 4096, 512, 1024)
	if !os.Aware() {
		t.Fatal("Aware() wrong")
	}
	if os.Placement().Name != "HeteroOS-LRU" {
		t.Fatal("Placement() wrong")
	}
	if os.Epoch() != 0 {
		t.Fatal("fresh epoch nonzero")
	}
	if os.Store().Len() != os.NumPFNs() {
		t.Fatal("Store() inconsistent")
	}
	os.EndEpoch()
	if os.Epoch() != 1 {
		t.Fatal("EndEpoch did not advance the epoch")
	}
	os.AddOSTime(123)
	if os.PeekEpoch().OSTimeNs < 123 {
		t.Fatal("AddOSTime lost")
	}

	// Scan-state plumbing: write bit and heats.
	vma, _ := os.AS.Mmap(1, KindAnon, NilFile)
	pfn, _ := os.TouchVPN(vma.Start, 1, 2)
	if !os.TestAndClearWritten(pfn) {
		t.Fatal("store did not set the written bit")
	}
	if os.TestAndClearWritten(pfn) {
		t.Fatal("written bit not cleared")
	}
	os.SetScanHeat(pfn, 5)
	os.SetScanWriteHeat(pfn, 6)
	if os.ScanHeat(pfn) != 5 || os.ScanWriteHeat(pfn) != 6 {
		t.Fatal("scan heat accessors broken")
	}
	if os.PromoteRate() != 1 || !os.PromotionWorthwhile() {
		t.Fatal("promotion telemetry must start optimistic")
	}
	if os.AS.Faults() == 0 {
		t.Fatal("Faults() accessor broken")
	}
	if os.AS.WalkSteps() == 0 {
		t.Fatal("WalkSteps() accessor broken")
	}
	_ = os.AS.SwapIns()
}

func TestReleaseFileRange(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	os.PC.ReadaheadWindow = 0
	const file = FileID(6)
	os.FileRead(file, 0, 8)
	os.FileWrite(file, 4, 2) // pages 4,5 dirty
	if os.PC.FilePages(file) != 8 {
		t.Fatalf("cached = %d", os.PC.FilePages(file))
	}
	released := os.ReleaseFileRange(file, 0, 8)
	if released != 8 {
		t.Fatalf("released = %d", released)
	}
	if os.PC.FilePages(file) != 0 {
		t.Fatal("pages survived release")
	}
	if os.PeekEpoch().DiskWritePages == 0 {
		t.Fatal("dirty release must charge writeback")
	}
	// Releasing a mapped range unmaps first.
	vma, _ := os.AS.Mmap(4, KindPageCache, file)
	for i := 0; i < 4; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 0)
	}
	if got := os.ReleaseFileRange(file, 0, 4); got != 4 {
		t.Fatalf("mapped release = %d", got)
	}
	if vma.Resident != 0 {
		t.Fatal("mapped pages not unmapped on release")
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Absent ranges release nothing.
	if os.ReleaseFileRange(file, 100, 4) != 0 {
		t.Fatal("phantom release")
	}
}

func TestNetSendMirrorsRecv(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	os.NetSend(4, 2048)
	if os.PeekEpoch().KernelCopyBytes[memsim.FastMem] == 0 {
		t.Fatal("NetSend charged nothing")
	}
}

func TestCostModelScaled(t *testing.T) {
	c := DefaultCosts()
	s := c.Scaled(64)
	if s.PageFaultNs != c.PageFaultNs*64 || s.DiskReadPageNs != c.DiskReadPageNs*64 {
		t.Fatal("per-page costs must scale")
	}
	if s.TLBFlushNs != c.TLBFlushNs || s.SyscallNs != c.SyscallNs || s.NetOpNs != c.NetOpNs {
		t.Fatal("per-event costs must not scale")
	}
	if bad := c.Scaled(0); bad.PageFaultNs != c.PageFaultNs {
		t.Fatal("non-positive factor must be identity")
	}
}
