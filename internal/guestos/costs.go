package guestos

// CostModel prices the software operations the guest OS performs, in
// nanoseconds. These are tier-independent software costs; memory-speed
// effects (copies at tier bandwidth, access stalls) are priced by the
// memsim engine from the per-tier counts the OS reports.
//
// Defaults are calibrated to the paper's measurements where it reports
// them (Table 6's per-page migration walk/copy costs; Figure 8's scan
// overheads) and to common x86/Linux figures elsewhere.
type CostModel struct {
	// PageFaultNs is the trap + handler cost of a minor fault.
	PageFaultNs float64
	// AllocFastPathNs is a per-CPU free-list hit.
	AllocFastPathNs float64
	// AllocSlowPathNs is a buddy allocation (lock, split).
	AllocSlowPathNs float64
	// FreeNs is returning one page.
	FreeNs float64
	// PTWalkStepNs is one software page-table level step.
	PTWalkStepNs float64
	// BalloonOpNs is one guest↔VMM balloon call (hypercall + queueing),
	// amortised per page in a batch.
	BalloonPerPageNs float64
	// MigratePageWalkNs / MigratePageCopyNs are the per-page costs of a
	// migration at the default batch size (Table 6, 8K batch: 43.21 µs
	// walk + 25.5 µs move).
	MigratePageWalkNs float64
	MigratePageCopyNs float64
	// TLBFlushNs is a full TLB shootdown across vCPUs.
	TLBFlushNs float64
	// DiskReadPageNs / DiskWritePageNs price one 4 KiB page of storage
	// I/O (datacenter-class SSD at roughly 500 MB/s streaming).
	DiskReadPageNs  float64
	DiskWritePageNs float64
	// WritebackAsyncFactor scales the visible cost of asynchronous
	// writeback (most of it overlaps execution).
	WritebackAsyncFactor float64
	// NetOpNs is the NIC + stack cost of one network operation,
	// excluding the buffer copies (priced per tier).
	NetOpNs float64
	// SyscallNs is the fixed entry/exit cost of one I/O syscall.
	SyscallNs float64
	// SwapPageNs prices one page of swap I/O.
	SwapPageNs float64
}

// Scaled returns a copy of the model with every per-page cost multiplied
// by factor. When the simulator scales capacities down by N (one
// simulated page stands for N real pages), per-page costs must scale up
// by N so software-overhead fractions stay true to the real system;
// per-event costs (syscalls, TLB shootdowns, network ops) are unchanged.
func (c CostModel) Scaled(factor float64) CostModel {
	if factor <= 0 {
		factor = 1
	}
	out := c
	out.PageFaultNs *= factor
	out.AllocFastPathNs *= factor
	out.AllocSlowPathNs *= factor
	out.FreeNs *= factor
	out.BalloonPerPageNs *= factor
	out.MigratePageWalkNs *= factor
	out.MigratePageCopyNs *= factor
	out.DiskReadPageNs *= factor
	out.DiskWritePageNs *= factor
	out.SwapPageNs *= factor
	return out
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() CostModel {
	return CostModel{
		PageFaultNs:          1500,
		AllocFastPathNs:      80,
		AllocSlowPathNs:      400,
		FreeNs:               100,
		PTWalkStepNs:         60,
		BalloonPerPageNs:     350,
		MigratePageWalkNs:    10250, // Table 6, 128K batch: guest-controlled
		MigratePageCopyNs:    11120, // migrations batch aggressively
		TLBFlushNs:           12000,
		DiskReadPageNs:       8000, // datacenter SSD, ~500 MB/s
		DiskWritePageNs:      6000,
		WritebackAsyncFactor: 0.25,
		NetOpNs:              4000,
		SyscallNs:            700,
		SwapPageNs:           60000,
	}
}

// MigrationBatchCosts reproduces Table 6: batching page walks and copies
// amortises the page-tree traversal and exploits bandwidth, reducing the
// per-page cost as the batch grows. The model interpolates between the
// paper's measured batch sizes.
func MigrationBatchCosts(batchPages int) (walkNs, copyNs float64) {
	type point struct {
		batch        float64
		walk, copyNs float64
	}
	pts := []point{
		{8 * 1024, 43210, 25500},
		{64 * 1024, 26320, 15700},
		{128 * 1024, 10250, 11120},
	}
	b := float64(batchPages)
	if b <= pts[0].batch {
		return pts[0].walk, pts[0].copyNs
	}
	if b >= pts[len(pts)-1].batch {
		last := pts[len(pts)-1]
		return last.walk, last.copyNs
	}
	for i := 1; i < len(pts); i++ {
		if b <= pts[i].batch {
			lo, hi := pts[i-1], pts[i]
			f := (b - lo.batch) / (hi.batch - lo.batch)
			return lo.walk + f*(hi.walk-lo.walk), lo.copyNs + f*(hi.copyNs-lo.copyNs)
		}
	}
	return pts[len(pts)-1].walk, pts[len(pts)-1].copyNs
}
