package guestos

import (
	"fmt"

	"heteroos/internal/memsim"
	"heteroos/internal/obs"
)

// reclaimNode frees up to target pages from node idx by walking the
// inactive LRU tail:
//
//   - referenced pages get a second chance (rotate),
//   - clean cache pages are dropped, dirty ones written back first,
//   - anonymous pages are demoted to SlowMem when reclaiming FastMem
//     (HeteroOS-LRU's eviction "to a slower memory"), or swapped out when
//     no SlowMem is available (or when reclaiming SlowMem itself).
//
// Returns the number of frames actually freed in this node.
// demotionRateCap bounds demotions per epoch: page movement is priced
// work (Table 6), and unbounded reclaim bursts can cost more than the
// placement they buy.
const demotionRateCap = 128

func (o *OS) reclaimNode(idx int, target uint64) uint64 {
	// Cheap evictions first: dropping clean, idle I/O cache pages costs
	// nothing compared to migrating anonymous pages (Figure 12 shows the
	// paper's HeteroOS-LRU moves an order of magnitude fewer pages than
	// the VMM-exclusive baseline — the bulk of its FastMem availability
	// comes from released I/O pages).
	freed := o.reclaimPass(idx, target, true)
	if freed < target {
		freed += o.reclaimPass(idx, target-freed, false)
	}
	return freed
}

// reclaimPass walks the inactive LRU once. When cacheOnly is set, only
// page-cache pages are eligible (anonymous pages are rotated past).
func (o *OS) reclaimPass(idx int, target uint64, cacheOnly bool) uint64 {
	n := o.nodes[idx]
	l := o.lrus[idx]
	var freed, rotations uint64
	// Refill the inactive list if it ran dry.
	if l.InactiveCount() == 0 {
		o.balanceBuf = l.BalanceInto(o.balanceBuf[:0], int(2*target))
	}
	attempts := l.InactiveCount() + l.ActiveCount()
walk:
	for freed < target && attempts > 0 {
		attempts--
		pfn := l.TailInactive()
		if pfn == NilPFN {
			if cacheOnly {
				break
			}
			o.balanceBuf = l.BalanceInto(o.balanceBuf[:0], int(2*target))
			if len(o.balanceBuf) == 0 {
				break
			}
			continue
		}
		st := o.store
		if st.Has(pfn, FlagAccessed) {
			l.RotateInactive(pfn)
			rotations++
			continue
		}
		// Recency guard: a page used within the last two epochs is part
		// of the active working set even if a rotation cleared its
		// referenced bit; evicting it would thrash. Spilling the new
		// allocation to SlowMem (a FastMem allocation miss) is cheaper
		// than demoting a hot page. When FastMem is far smaller than the
		// working set everything is recent and the guard would starve
		// reclaim entirely, so it relaxes under heavy allocation misses.
		guard := uint32(2)
		if o.Window.OverallMissRatio() > 0.5 {
			guard = 0
		}
		if st.LastUse(pfn)+guard >= o.epoch && o.epoch >= 2 {
			l.RotateInactive(pfn)
			rotations++
			continue
		}
		// Coordination guard: pages the tracker knows are decisively hot
		// (including freshly promoted ones) are not demoted — reclaim
		// undoing the migrator's work would waste both moves. The gray
		// zone below stays reclaimable so allocation placement never
		// starves. (ScanHeat is zero outside coordinated mode.)
		if st.ScanHeat(pfn) >= 6 {
			l.RotateInactive(pfn)
			rotations++
			continue
		}
		switch kind := st.Kind(pfn); kind {
		case KindPageCache:
			if o.evictCachePage(pfn) {
				freed++
			}
		case KindAnon:
			if cacheOnly {
				l.RotateInactive(pfn)
				rotations++
				continue
			}
			if n.Tier == memsim.FastMem && o.cfg.Aware {
				if o.ep.Demotions >= demotionRateCap {
					break walk // budget exhausted this epoch; allocations spill
				}
				if o.demoteAnonPage(pfn) {
					freed++
					continue
				}
			}
			if o.swapOutPage(pfn) {
				freed++
			}
		default:
			// Slab/netbuf/pagetable pages are not on the LRU; seeing one
			// here is a bug.
			panic(fmt.Sprintf("guestos: kind %v page %d on LRU", kind, pfn))
		}
	}
	if o.obs != nil {
		o.obs.reclaimPasses.Inc()
		o.obs.reclaimFreed.Add(freed)
		o.obs.lruRotations.Add(rotations)
		o.obs.reclaimFreedH.Observe(float64(freed))
		dir := obs.DirFull
		if cacheOnly {
			dir = obs.DirCacheOnly
		}
		o.obs.scope.Emit(obs.EvReclaim, dir, o.nodeTierByte(idx), 0, freed, rotations, 0)
	}
	return freed
}

// evictCachePage drops a page-cache page, writing it back first when
// dirty. Returns false if the page is pinned.
func (o *OS) evictCachePage(pfn PFN) bool {
	if o.store.Has(pfn, FlagPinned) {
		return false
	}
	if !o.PC.Owns(uint64(pfn)) {
		panic(fmt.Sprintf("guestos: cache page %d unknown to page cache", pfn))
	}
	if o.PC.Evict(uint64(pfn)) {
		// Dirty page: synchronous writeback before reuse.
		o.ep.DiskWritePages++
		o.ep.OSTimeNs += o.costs.DiskWritePageNs
	}
	o.ep.CacheEvictions++
	if o.obs != nil {
		o.obs.cacheEvictions.Inc()
		o.obs.scope.Emit(obs.EvCacheEvict, obs.DirNone,
			o.nodeTierByte(o.nodeIndexOf(pfn)), uint64(pfn), 1, 0, 0)
	}
	return true
}

// demoteAnonPage migrates an anonymous page from FastMem to SlowMem
// (allocating a SlowMem frame, copying, remapping). Returns false when
// SlowMem has no free frame.
func (o *OS) demoteAnonPage(pfn PFN) bool {
	return o.movePageAcrossNodes(pfn, memsim.SlowMem, false)
}

// PromotePage migrates a page into FastMem, used by the coordinated
// manager when the VMM reports it hot. The guest performs the OS-side
// validity checks the paper assigns to guest-controlled migration
// (Section 4.1): the page must be movable, still in use, mapped (for
// anon), and not a dirty or short-lived I/O page.
func (o *OS) PromotePage(pfn PFN) bool {
	st := o.store
	kind := st.Kind(pfn)
	switch {
	case kind == KindFree,
		!kind.Movable(),
		st.Has(pfn, FlagPinned),
		kind == KindAnon && st.VPN(pfn) == NilVPN,
		kind == KindPageCache && o.PC.Dirty(uint64(pfn)),
		kind == KindNetBuf || kind == KindSlab: // slabs are not remappable per page
		o.ep.MigrationsSkipped++
		return false
	}
	if o.TierOfPage(pfn) == memsim.FastMem {
		o.ep.MigrationsSkipped++
		return false
	}
	return o.movePageAcrossNodes(pfn, memsim.FastMem, true)
}

// DemotePage migrates a page out of FastMem to SlowMem, used by the
// coordinated manager to displace cold pages when FastMem is full. The
// same validity checks as PromotePage apply; clean page-cache pages are
// moved (not dropped — they may still be re-read).
func (o *OS) DemotePage(pfn PFN) bool {
	st := o.store
	kind := st.Kind(pfn)
	switch {
	case kind == KindFree,
		!kind.Movable(),
		st.Has(pfn, FlagPinned),
		kind == KindAnon && st.VPN(pfn) == NilVPN,
		kind == KindPageCache && o.PC.Dirty(uint64(pfn)),
		kind == KindNetBuf || kind == KindSlab:
		o.ep.MigrationsSkipped++
		return false
	}
	// OS-side knowledge the VMM lacks: the page may look cold to the
	// tracker (newly mapped, not yet scanned) while the guest knows it
	// was just used. Refuse to demote recently-used pages.
	if st.LastUse(pfn)+2 >= o.epoch && o.epoch >= 2 {
		o.ep.MigrationsSkipped++
		return false
	}
	if o.TierOfPage(pfn) == memsim.SlowMem {
		o.ep.MigrationsSkipped++
		return false
	}
	return o.movePageAcrossNodes(pfn, memsim.SlowMem, false)
}

// DemotePageForSwap demotes a page the tracker has judged worth
// displacing for a decisively hotter (or more store-intensive) one. It
// keeps every validity check but skips the recency guard: the caller's
// score margin, not staleness, justified the swap.
func (o *OS) DemotePageForSwap(pfn PFN) bool {
	st := o.store
	kind := st.Kind(pfn)
	switch {
	case kind == KindFree,
		!kind.Movable(),
		st.Has(pfn, FlagPinned),
		kind == KindAnon && st.VPN(pfn) == NilVPN,
		kind == KindPageCache && o.PC.Dirty(uint64(pfn)),
		kind == KindNetBuf || kind == KindSlab:
		o.ep.MigrationsSkipped++
		return false
	}
	if o.TierOfPage(pfn) == memsim.SlowMem {
		o.ep.MigrationsSkipped++
		return false
	}
	return o.movePageAcrossNodes(pfn, memsim.SlowMem, false)
}

// movePageAcrossNodes implements aware-mode migration: allocate a frame
// on the target node (allocator paths only — reclaim must not recurse),
// copy contents, transfer identity (page table or page cache), free the
// source. Charges the per-page walk + copy costs of the default batch.
func (o *OS) movePageAcrossNodes(pfn PFN, target memsim.Tier, promotion bool) bool {
	if !o.cfg.Aware {
		panic("guestos: node migration in transparent mode")
	}
	srcIdx := o.nodeIndexOf(pfn)
	dstIdx := int(target)
	if srcIdx == dstIdx {
		return false
	}
	dst := o.nodes[dstIdx]
	raw, ok := dst.PCP.Alloc(0, 0)
	if !ok {
		if o.cfg.Placement.OnDemand && o.populateNode(dstIdx, populateBatchPages) > 0 {
			raw, ok = dst.PCP.Alloc(0, 0)
		}
		if !ok {
			return false
		}
	}
	newPfn := PFN(raw)
	st := o.store
	if st.Kind(newPfn) != KindFree {
		panic(fmt.Sprintf("guestos: migration target %d busy", newPfn))
	}

	// Copy metadata + contents.
	kind := st.Kind(pfn)
	vpn := st.VPN(pfn)
	tag := st.Tag(pfn)
	st.SetKind(newPfn, kind)
	st.SetAllFlags(newPfn, st.Flags(pfn)&^(FlagOnLRU|FlagActive))
	st.SetVPN(newPfn, vpn)
	st.SetFile(newPfn, st.File(pfn))
	st.SetFileOff(newPfn, st.FileOff(pfn))
	st.SetLastUse(newPfn, st.LastUse(pfn))
	st.SetHeat(newPfn, st.Heat(pfn))
	// The scanner's hotness history is biased at migration time:
	// promoted pages arrive presumed-hot and demoted pages presumed-cold,
	// so neither becomes an immediate candidate to move back. Fresh scan
	// evidence then takes over.
	if promotion {
		st.SetScanHeat(newPfn, 8)
	} else {
		st.SetScanHeat(newPfn, 0)
	}
	st.SetScanWriteHeat(newPfn, st.ScanWriteHeat(pfn))
	st.SetTag(newPfn, tag)
	o.Cum.AllocsByKind[kind]++
	// The destination frame was taken straight off the per-CPU list,
	// bypassing initPage, and its scan history was written directly: the
	// indexer must hear both transitions itself.
	if o.indexer != nil {
		o.indexer.PageFreeChanged(newPfn, false)
		o.indexer.PageHeatChanged(newPfn)
	}

	// Transfer identity.
	switch kind {
	case KindAnon:
		if vpn != NilVPN {
			o.AS.unmapPage(vpn)
			o.AS.mapPage(vpn, newPfn)
		}
	case KindPageCache:
		o.PC.Rekey(uint64(pfn), uint64(newPfn))
		if vpn != NilVPN {
			o.AS.unmapPage(vpn)
			o.AS.mapPage(vpn, newPfn)
		}
	default:
		panic(fmt.Sprintf("guestos: migrating unsupported kind %v", kind))
	}

	// LRU transfer: promotions arrive hot (active), demotions cold.
	wasActive := st.Has(pfn, FlagActive)
	if st.Has(pfn, FlagOnLRU) {
		o.lrus[srcIdx].Remove(pfn)
	}
	o.lrus[dstIdx].Insert(newPfn)
	if promotion || wasActive {
		// Activate via double reference.
		o.lrus[dstIdx].MarkAccessed(newPfn)
		o.lrus[dstIdx].MarkAccessed(newPfn)
	}

	// Free the source frame (identity already moved; clear VPN so
	// freePage does not try to unmap again).
	st.SetVPN(pfn, NilVPN)
	o.freePage(pfn)

	o.ep.OSTimeNs += o.costs.MigratePageWalkNs + o.costs.MigratePageCopyNs
	o.ep.OSTimeNs += o.costs.TLBFlushNs / migrationTLBBatch
	if promotion {
		o.ep.Promotions++
		o.promoteRing = append(o.promoteRing, admitSample{
			pfn: newPfn, tag: tag, epoch: o.epoch})
	} else {
		o.ep.Demotions++
		if len(o.demoteRing) < 4096 {
			o.demoteRing = append(o.demoteRing, admitSample{
				pfn: newPfn, tag: tag, epoch: o.epoch})
		}
	}
	if o.obs != nil {
		moveNs := o.costs.MigratePageWalkNs + o.costs.MigratePageCopyNs +
			o.costs.TLBFlushNs/migrationTLBBatch
		dir := obs.DirDemote
		if promotion {
			dir = obs.DirPromote
			o.obs.promotions.Inc()
		} else {
			o.obs.demotions.Inc()
		}
		o.obs.migrateNs.Observe(moveNs)
		// PFN is the page's new identity on the target node; Aux keeps
		// the source PFN so traces can follow a page across moves.
		o.obs.scope.Emit(obs.EvMigration, dir, uint8(target),
			uint64(newPfn), 1, uint64(pfn), moveNs)
	}
	return true
}

// migrationTLBBatch amortises one TLB shootdown over a batch of page
// moves (migrations are batched in practice).
const migrationTLBBatch = 64

// swapOutPage writes an anonymous page to swap and frees its frame.
func (o *OS) swapOutPage(pfn PFN) bool {
	st := o.store
	if st.Kind(pfn) != KindAnon || st.Has(pfn, FlagPinned) {
		return false
	}
	vpn := st.VPN(pfn)
	if vpn == NilVPN {
		// Unmapped anon page (mid-teardown): just free it.
		o.freePage(pfn)
		return true
	}
	o.swap.add(vpn, st.Tag(pfn))
	o.AS.markSwapped(vpn)
	if v, ok := o.AS.FindVMA(vpn); ok {
		v.Resident--
	}
	st.SetVPN(pfn, NilVPN)
	o.freePage(pfn)
	o.ep.SwapOuts++
	o.ep.OSTimeNs += o.costs.SwapPageNs
	if o.obs != nil {
		o.obs.swapOuts.Inc()
	}
	return true
}

// EagerIOEvictions is the per-epoch cap on HeteroOS-LRU's eager eviction
// of released I/O pages from FastMem.
const EagerIOEvictions = 4096

// eagerEvictIOPages implements HeteroOS-LRU's rule that "I/O page and
// buffer cache pages [that] are released after an I/O request are marked
// inactive and immediately evicted from FastMem": cold (unreferenced,
// not recently used) cache pages at the FastMem inactive tail are
// dropped without waiting for general memory pressure.
func (o *OS) eagerEvictIOPages() {
	if !o.cfg.Aware {
		return
	}
	// Pressure gate: with ample free FastMem there is nothing to gain
	// from evicting I/O pages that might be re-read. The regret throttle
	// also applies — demoting pages that come straight back is waste.
	fast := o.Node(memsim.FastMem)
	if fast.FreePages() >= fast.HighWatermark || !o.reclaimWorthwhile() {
		return
	}
	l := o.lrus[memsim.FastMem]
	evicted := 0
	// Bounded walk from the inactive tail.
	scan := l.InactiveCount()
	for scan > 0 && evicted < EagerIOEvictions {
		scan--
		pfn := l.TailInactive()
		if pfn == NilPFN {
			break
		}
		st := o.store
		if st.Kind(pfn) != KindPageCache || st.Has(pfn, FlagAccessed) || st.LastUse(pfn)+3 >= o.epoch {
			// Not an idle I/O page; rotate so the walk can continue past it.
			l.RotateInactive(pfn)
			continue
		}
		// Demote to SlowMem rather than dropping: a SlowMem cache hit is
		// three orders of magnitude cheaper than a disk refault, and I/O
		// buffers "can be demoted to large-but-slowest memory"
		// (Section 4.3). Dirty or unmovable pages, or a full SlowMem,
		// fall back to eviction.
		if !st.Has(pfn, FlagPinned) && !o.PC.Dirty(uint64(pfn)) &&
			o.Node(memsim.SlowMem).FreePages() > 0 && o.demoteAnonOrCachePage(pfn) {
			evicted++
			continue
		}
		o.evictCachePage(pfn)
		evicted++
	}
}

// demoteAnonOrCachePage moves a movable page from FastMem to SlowMem.
func (o *OS) demoteAnonOrCachePage(pfn PFN) bool {
	return o.movePageAcrossNodes(pfn, memsim.SlowMem, false)
}

// maintainWatermarks runs HeteroOS-LRU's per-tier threshold reclaim:
// background reclaim starts once free pages fall under the midpoint of
// the watermark band and restores the high mark, so the free buffer the
// coordinated manager promotes into is actually maintained.
func (o *OS) maintainWatermarks() {
	if !o.cfg.Aware {
		return
	}
	fast := o.Node(memsim.FastMem)
	if fast.FreePages() < (fast.LowWatermark+fast.HighWatermark)/2 {
		o.reclaimNode(int(memsim.FastMem), fast.ReclaimTarget())
	}
}
