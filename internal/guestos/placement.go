package guestos

import "heteroos/internal/memsim"

// PlacementConfig is the set of knobs that distinguishes the paper's
// incremental mechanisms (Table 5) plus the baselines. The named presets
// live in internal/policy; this struct is pure data so the OS does not
// depend on the policy catalog.
type PlacementConfig struct {
	// Name is the mechanism name for reporting.
	Name string
	// FastKinds marks the page kinds that prefer FastMem. Heap-OD sets
	// only KindAnon; Heap-IO-Slab-OD adds KindPageCache, KindNetBuf and
	// KindSlab; SlowMem-only sets none.
	FastKinds [NumKinds]bool
	// Random ignores FastKinds and places each allocation on a uniformly
	// random tier (the heterogeneity-unaware strawman of Figure 6).
	Random bool
	// NUMAPreferred models Linux's "preferred node" NUMA policy with the
	// fake-NUMA patch: every allocation tries FastMem first regardless
	// of kind, with no demand awareness and no active reclaim.
	NUMAPreferred bool
	// OnDemand enables the on-demand allocation driver: when a preferred
	// tier has no free frames, the guest asks the VMM to extend that
	// tier's reservation before falling back.
	OnDemand bool
	// HeteroLRU enables the HeteroOS-LRU contention resolution:
	// per-tier watermarks, eager demotion of inactive pages out of
	// FastMem, immediate eviction of released I/O pages, and
	// demand-based (miss-ratio) prioritisation across subsystems.
	HeteroLRU bool
}

// WantsFast reports whether kind prefers FastMem under this config.
func (c *PlacementConfig) WantsFast(kind PageKind) bool {
	if c.NUMAPreferred {
		return true
	}
	return c.FastKinds[kind]
}

// AllocStats tracks, per page kind, how many allocations wanted FastMem
// and how many had to settle for SlowMem. The miss ratio drives both the
// demand-based prioritisation (Section 3.2) and Figure 10.
type AllocStats struct {
	Requests [NumKinds]uint64 // allocations that preferred FastMem
	Misses   [NumKinds]uint64 // ... that were served from SlowMem
	Total    [NumKinds]uint64 // all allocations of the kind
}

// Record notes one allocation outcome.
func (s *AllocStats) Record(kind PageKind, wantedFast bool, got memsim.Tier) {
	s.Total[kind]++
	if wantedFast {
		s.Requests[kind]++
		if got != memsim.FastMem {
			s.Misses[kind]++
		}
	}
}

// MissRatio reports the FastMem allocation miss ratio for kind, or 0 if
// the kind made no FastMem requests.
func (s *AllocStats) MissRatio(kind PageKind) float64 {
	if s.Requests[kind] == 0 {
		return 0
	}
	return float64(s.Misses[kind]) / float64(s.Requests[kind])
}

// OverallMissRatio reports the miss ratio across every kind.
func (s *AllocStats) OverallMissRatio() float64 {
	var req, miss uint64
	for k := range s.Requests {
		req += s.Requests[k]
		miss += s.Misses[k]
	}
	if req == 0 {
		return 0
	}
	return float64(miss) / float64(req)
}

// MaxMissKind reports the kind with the highest miss ratio in the
// current window, used by demand-based prioritisation.
func (s *AllocStats) MaxMissKind() (PageKind, float64) {
	best, bestRatio := KindFree, -1.0
	for _, k := range AllocatableKinds {
		if r := s.MissRatio(k); r > bestRatio && s.Requests[k] > 0 {
			best, bestRatio = k, r
		}
	}
	if bestRatio < 0 {
		return KindFree, 0
	}
	return best, bestRatio
}

// Reset clears the window (the OS resets stats every placement interval,
// default 100 ms).
func (s *AllocStats) Reset() { *s = AllocStats{} }
