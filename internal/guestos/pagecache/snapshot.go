package pagecache

import (
	"sort"

	"heteroos/internal/snapshot"
)

// Snapshot serializes the cache: the reverse map (sorted by frame; the
// forward per-file maps and the dirty set are derivable from it), the
// readahead window, and the hit/miss/writeback/eviction counters.
func (c *Cache) Snapshot(e *snapshot.Encoder) {
	e.Int(c.ReadaheadWindow)
	e.U64(c.hits)
	e.U64(c.misses)
	e.U64(c.writebacks)
	e.U64(c.evictions)
	pfns := make([]uint64, 0, len(c.rmap))
	for pfn := range c.rmap {
		pfns = append(pfns, pfn)
	}
	sort.Slice(pfns, func(i, j int) bool { return pfns[i] < pfns[j] })
	e.U32(uint32(len(pfns)))
	for _, pfn := range pfns {
		m := c.rmap[pfn]
		e.U64(pfn)
		e.U32(uint32(m.file))
		e.U64(m.off)
		e.Bool(m.dirty)
	}
}

// Restore overwrites the cache's maps and counters from a snapshot.
// Frame ownership (the callbacks' view) must be restored by the owning
// OS separately; this only rebuilds the cache's own bookkeeping.
func (c *Cache) Restore(d *snapshot.Decoder) error {
	c.ReadaheadWindow = d.Int()
	c.hits = d.U64()
	c.misses = d.U64()
	c.writebacks = d.U64()
	c.evictions = d.U64()
	n := int(d.U32())
	c.files = make(map[FileID]map[uint64]uint64)
	c.rmap = make(map[uint64]mapping, n)
	c.dirty = make(map[uint64]struct{})
	for i := 0; i < n; i++ {
		pfn := d.U64()
		m := mapping{file: FileID(d.U32()), off: d.U64(), dirty: d.Bool()}
		c.rmap[pfn] = m
		fm := c.files[m.file]
		if fm == nil {
			fm = make(map[uint64]uint64)
			c.files[m.file] = fm
		}
		fm[m.off] = pfn
		if m.dirty {
			c.dirty[pfn] = struct{}{}
		}
	}
	return d.Err()
}
