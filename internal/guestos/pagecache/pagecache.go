// Package pagecache implements the I/O page and buffer cache. Section 3.2
// of the paper shows the page cache is central to storage-intensive
// applications (LevelDB's memory-mapped database, X-Stream's mapped graph
// input): the cache absorbs reads through readahead and buffers dirty
// blocks for writeback, and placing its pages in FastMem hides the
// latency of slow disks.
//
// The cache is generic over uint64 frame numbers; it obtains and returns
// frames through callbacks so the owning OS can route allocations through
// its placement policy and keep per-page metadata in sync.
package pagecache

import (
	"fmt"
	"sort"
)

// AllocPage obtains one frame for a cache page; ok=false means the page
// allocator (and any reclaim behind it) is exhausted.
type AllocPage func() (pfn uint64, ok bool)

// FreePage returns one frame.
type FreePage func(pfn uint64)

// FileID identifies a cached file.
type FileID uint32

// mapping records which file page a frame caches.
type mapping struct {
	file  FileID
	off   uint64
	dirty bool
}

// Cache is the page cache: per-file offset→frame radix (modelled as a
// map) plus a reverse map used for eviction.
type Cache struct {
	alloc AllocPage
	free  FreePage

	files map[FileID]map[uint64]uint64 // file → page offset → pfn
	rmap  map[uint64]mapping           // pfn → identity
	dirty map[uint64]struct{}          // pfns with unwritten data

	// ReadaheadWindow is how many consecutive pages a miss pulls in
	// (Linux default readahead is 128 KiB = 32 pages).
	ReadaheadWindow int

	hits, misses, writebacks, evictions uint64
}

// New builds an empty cache with the default 32-page readahead window.
func New(alloc AllocPage, free FreePage) *Cache {
	return &Cache{
		alloc:           alloc,
		free:            free,
		files:           make(map[FileID]map[uint64]uint64),
		rmap:            make(map[uint64]mapping),
		dirty:           make(map[uint64]struct{}),
		ReadaheadWindow: 32,
	}
}

// ReadResult reports the outcome of a Read or Write.
type ReadResult struct {
	// Touched lists the frames servicing the request, in offset order.
	Touched []uint64
	// DiskPages is how many pages had to come from (or be reserved for)
	// the backing store — the caller charges disk latency for them.
	DiskPages int
	// AllocFailed counts pages that could not get a frame; the caller
	// treats them as uncached direct I/O.
	AllocFailed int
}

// Lookup returns the frame caching (file, off), if any.
func (c *Cache) Lookup(file FileID, off uint64) (uint64, bool) {
	pfn, ok := c.files[file][off]
	return pfn, ok
}

func (c *Cache) insert(file FileID, off uint64, pfn uint64) {
	m := c.files[file]
	if m == nil {
		m = make(map[uint64]uint64)
		c.files[file] = m
	}
	m[off] = pfn
	c.rmap[pfn] = mapping{file: file, off: off}
}

// Read services a read of n pages of file starting at page offset off.
// Missing pages are allocated and "read from disk"; a miss additionally
// pulls in the readahead window beyond the requested range (sequential
// readahead), which is what gives the cache its prefetch benefit.
func (c *Cache) Read(file FileID, off uint64, n int) ReadResult {
	var res ReadResult
	missed := false
	for i := 0; i < n; i++ {
		pfn, ok := c.Lookup(file, off+uint64(i))
		if ok {
			c.hits++
			res.Touched = append(res.Touched, pfn)
			continue
		}
		c.misses++
		missed = true
		pfn, ok = c.alloc()
		if !ok {
			res.AllocFailed++
			res.DiskPages++ // still read, just uncached
			continue
		}
		c.insert(file, off+uint64(i), pfn)
		res.Touched = append(res.Touched, pfn)
		res.DiskPages++
	}
	if missed && c.ReadaheadWindow > 0 {
		start := off + uint64(n)
		for i := 0; i < c.ReadaheadWindow; i++ {
			o := start + uint64(i)
			if _, ok := c.Lookup(file, o); ok {
				break // already cached: readahead window reached cached tail
			}
			pfn, ok := c.alloc()
			if !ok {
				break // no memory: stop prefetching, do not fail the read
			}
			c.insert(file, o, pfn)
			res.Touched = append(res.Touched, pfn)
			res.DiskPages++
		}
	}
	return res
}

// Write services a write of n pages of file starting at page offset off.
// Pages are cached and marked dirty; writeback happens asynchronously
// via Writeback.
func (c *Cache) Write(file FileID, off uint64, n int) ReadResult {
	var res ReadResult
	for i := 0; i < n; i++ {
		o := off + uint64(i)
		pfn, ok := c.Lookup(file, o)
		if !ok {
			c.misses++
			pfn, ok = c.alloc()
			if !ok {
				res.AllocFailed++
				res.DiskPages++ // direct write to disk
				continue
			}
			c.insert(file, o, pfn)
		} else {
			c.hits++
		}
		if m := c.rmap[pfn]; !m.dirty {
			m.dirty = true
			c.rmap[pfn] = m
			c.dirty[pfn] = struct{}{}
		}
		res.Touched = append(res.Touched, pfn)
	}
	return res
}

// Writeback flushes up to max dirty pages (all if max <= 0) in frame
// order (deterministic — map order would randomize which pages remain
// dirty under a cap), returning the flushed frames so the caller can
// charge disk-write time.
func (c *Cache) Writeback(max int) []uint64 {
	dirty := make([]uint64, 0, len(c.dirty))
	for pfn := range c.dirty {
		dirty = append(dirty, pfn)
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i] < dirty[j] })
	if max > 0 && len(dirty) > max {
		dirty = dirty[:max]
	}
	for _, pfn := range dirty {
		m := c.rmap[pfn]
		m.dirty = false
		c.rmap[pfn] = m
		delete(c.dirty, pfn)
		c.writebacks++
	}
	return dirty
}

// Dirty reports whether pfn holds unwritten data.
func (c *Cache) Dirty(pfn uint64) bool {
	_, ok := c.dirty[pfn]
	return ok
}

// DirtyCount reports the number of dirty pages.
func (c *Cache) DirtyCount() int { return len(c.dirty) }

// Evict removes the cache page backed by pfn, returning its frame to the
// allocator. Dirty pages are written back first (the returned bool
// reports whether a disk write was required). Evicting a frame the cache
// does not own panics.
func (c *Cache) Evict(pfn uint64) (wroteBack bool) {
	m, ok := c.rmap[pfn]
	if !ok {
		panic(fmt.Sprintf("pagecache: evict of unowned frame %d", pfn))
	}
	if m.dirty {
		delete(c.dirty, pfn)
		c.writebacks++
		wroteBack = true
	}
	delete(c.files[m.file], m.off)
	if len(c.files[m.file]) == 0 {
		delete(c.files, m.file)
	}
	delete(c.rmap, pfn)
	c.evictions++
	c.free(pfn)
	return wroteBack
}

// Rekey transfers the cache page backed by oldPfn to newPfn, preserving
// identity and dirty state. The page-migration path uses it after
// copying contents to a frame on another tier. Rekeying a frame the
// cache does not own panics.
func (c *Cache) Rekey(oldPfn, newPfn uint64) {
	m, ok := c.rmap[oldPfn]
	if !ok {
		panic(fmt.Sprintf("pagecache: rekey of unowned frame %d", oldPfn))
	}
	if _, busy := c.rmap[newPfn]; busy {
		panic(fmt.Sprintf("pagecache: rekey target %d already cached", newPfn))
	}
	delete(c.rmap, oldPfn)
	c.rmap[newPfn] = m
	c.files[m.file][m.off] = newPfn
	if m.dirty {
		delete(c.dirty, oldPfn)
		c.dirty[newPfn] = struct{}{}
	}
}

// Owns reports whether pfn is a cache page.
func (c *Cache) Owns(pfn uint64) bool {
	_, ok := c.rmap[pfn]
	return ok
}

// Identity returns the (file, offset) a frame caches.
func (c *Cache) Identity(pfn uint64) (FileID, uint64, bool) {
	m, ok := c.rmap[pfn]
	return m.file, m.off, ok
}

// InvalidateFile drops every cached page of file (e.g. file deletion),
// writing back nothing: contents are discarded.
func (c *Cache) InvalidateFile(file FileID) int {
	m := c.files[file]
	n := 0
	for _, pfn := range m {
		delete(c.dirty, pfn)
		delete(c.rmap, pfn)
		c.free(pfn)
		c.evictions++
		n++
	}
	delete(c.files, file)
	return n
}

// Pages reports the number of cached pages.
func (c *Cache) Pages() int { return len(c.rmap) }

// FilePages reports the number of cached pages of one file.
func (c *Cache) FilePages(file FileID) int { return len(c.files[file]) }

// Stats reports hit/miss/writeback/eviction counters.
func (c *Cache) Stats() (hits, misses, writebacks, evictions uint64) {
	return c.hits, c.misses, c.writebacks, c.evictions
}

// CheckInvariants validates the forward/reverse map consistency and that
// every dirty page is a cached page.
func (c *Cache) CheckInvariants() error {
	fwd := 0
	for file, m := range c.files {
		for off, pfn := range m {
			fwd++
			r, ok := c.rmap[pfn]
			if !ok || r.file != file || r.off != off {
				return fmt.Errorf("pagecache: frame %d rmap mismatch (%d@%d)", pfn, file, off)
			}
		}
	}
	if fwd != len(c.rmap) {
		return fmt.Errorf("pagecache: forward map %d entries, rmap %d", fwd, len(c.rmap))
	}
	for pfn := range c.dirty {
		m, ok := c.rmap[pfn]
		if !ok {
			return fmt.Errorf("pagecache: dirty frame %d not cached", pfn)
		}
		if !m.dirty {
			return fmt.Errorf("pagecache: dirty set and rmap disagree on %d", pfn)
		}
	}
	for pfn, m := range c.rmap {
		if _, inSet := c.dirty[pfn]; m.dirty != inSet {
			return fmt.Errorf("pagecache: rmap dirty flag and dirty set disagree on %d", pfn)
		}
	}
	return nil
}
