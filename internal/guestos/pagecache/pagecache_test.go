package pagecache

import (
	"testing"
	"testing/quick"
)

// framePool hands out frames up to a limit.
type framePool struct {
	next  uint64
	limit int
	out   map[uint64]bool
}

func newFramePool(limit int) *framePool {
	return &framePool{limit: limit, out: map[uint64]bool{}}
}

func (p *framePool) alloc() (uint64, bool) {
	if p.limit > 0 && len(p.out) >= p.limit {
		return 0, false
	}
	pfn := p.next
	p.next++
	p.out[pfn] = true
	return pfn, true
}

func (p *framePool) free(pfn uint64) {
	if !p.out[pfn] {
		panic("free of unallocated frame")
	}
	delete(p.out, pfn)
}

func TestReadMissThenHit(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	r1 := c.Read(1, 0, 4)
	if r1.DiskPages != 4 || len(r1.Touched) != 4 {
		t.Fatalf("first read: disk=%d touched=%d", r1.DiskPages, len(r1.Touched))
	}
	r2 := c.Read(1, 0, 4)
	if r2.DiskPages != 0 {
		t.Fatalf("second read hit disk: %d", r2.DiskPages)
	}
	hits, misses, _, _ := c.Stats()
	if hits != 4 || misses != 4 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadahead(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 8
	r := c.Read(1, 0, 2)
	// 2 demand pages + 8 readahead pages.
	if r.DiskPages != 10 {
		t.Fatalf("disk pages = %d, want 10", r.DiskPages)
	}
	// Sequential follow-up is fully cached.
	r2 := c.Read(1, 2, 8)
	if r2.DiskPages != 0 {
		t.Fatalf("readahead did not absorb sequential read: %d", r2.DiskPages)
	}
}

func TestReadaheadStopsAtCachedPage(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 8
	c.Read(1, 4, 1) // caches 4..12
	before := c.Pages()
	c.Read(1, 0, 2) // readahead from 2 hits page 4 and stops
	added := c.Pages() - before
	if added != 4 { // pages 0,1 demand + 2,3 readahead
		t.Fatalf("added %d pages, want 4", added)
	}
}

func TestWriteMarksDirtyAndWriteback(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	w := c.Write(2, 10, 3)
	if len(w.Touched) != 3 {
		t.Fatalf("touched = %d", len(w.Touched))
	}
	if c.DirtyCount() != 3 {
		t.Fatalf("dirty = %d", c.DirtyCount())
	}
	for _, pfn := range w.Touched {
		if !c.Dirty(pfn) {
			t.Fatalf("frame %d not dirty", pfn)
		}
	}
	flushed := c.Writeback(2)
	if len(flushed) != 2 || c.DirtyCount() != 1 {
		t.Fatalf("writeback(2): flushed=%d remaining=%d", len(flushed), c.DirtyCount())
	}
	flushed = c.Writeback(0) // 0 = all
	if len(flushed) != 1 || c.DirtyCount() != 0 {
		t.Fatalf("writeback(all): flushed=%d remaining=%d", len(flushed), c.DirtyCount())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRewriteDoesNotDoubleDirty(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.Write(1, 0, 1)
	c.Write(1, 0, 1)
	if c.DirtyCount() != 1 {
		t.Fatalf("dirty = %d, want 1", c.DirtyCount())
	}
}

func TestEvictCleanAndDirty(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	r := c.Read(1, 0, 1)
	w := c.Write(1, 5, 1)
	clean, dirty := r.Touched[0], w.Touched[0]
	if wb := c.Evict(clean); wb {
		t.Fatal("clean evict reported writeback")
	}
	if wb := c.Evict(dirty); !wb {
		t.Fatal("dirty evict must report writeback")
	}
	if c.Pages() != 0 {
		t.Fatalf("pages = %d", c.Pages())
	}
	if len(p.out) != 0 {
		t.Fatal("frames leaked")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictUnownedPanics(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Evict(42)
}

func TestAllocFailureFallsBackToDirectIO(t *testing.T) {
	p := newFramePool(2)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 4
	r := c.Read(1, 0, 4)
	// 2 pages cached; 2 uncached direct reads; readahead silently stops.
	if r.AllocFailed != 2 {
		t.Fatalf("alloc failed = %d, want 2", r.AllocFailed)
	}
	if r.DiskPages != 4 {
		t.Fatalf("disk pages = %d, want 4", r.DiskPages)
	}
	w := c.Write(1, 100, 1)
	if w.AllocFailed != 1 || w.DiskPages != 1 {
		t.Fatalf("write fallback wrong: %+v", w)
	}
}

func TestInvalidateFile(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	c.Read(1, 0, 5)
	c.Write(1, 2, 1)
	c.Read(2, 0, 3)
	n := c.InvalidateFile(1)
	if n != 5 {
		t.Fatalf("invalidated %d, want 5", n)
	}
	if c.FilePages(1) != 0 || c.FilePages(2) != 3 {
		t.Fatal("wrong pages dropped")
	}
	if c.DirtyCount() != 0 {
		t.Fatal("dirty entry survived invalidation")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityAndOwns(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	r := c.Read(7, 123, 1)
	pfn := r.Touched[0]
	if !c.Owns(pfn) {
		t.Fatal("Owns false for cached frame")
	}
	f, off, ok := c.Identity(pfn)
	if !ok || f != 7 || off != 123 {
		t.Fatalf("identity = %d@%d ok=%v", f, off, ok)
	}
	if c.Owns(9999) {
		t.Fatal("Owns true for random frame")
	}
}

func TestCacheInvariantProperty(t *testing.T) {
	// Property: random sequences of reads, writes, writebacks and
	// evictions keep the maps consistent and never leak frames.
	f := func(ops []uint16) bool {
		p := newFramePool(64)
		c := New(p.alloc, p.free)
		c.ReadaheadWindow = 2
		for _, op := range ops {
			file := FileID(op%3 + 1)
			off := uint64(op >> 4 % 32)
			switch op % 4 {
			case 0:
				c.Read(file, off, int(op%5)+1)
			case 1:
				c.Write(file, off, int(op%5)+1)
			case 2:
				c.Writeback(int(op % 8))
			case 3:
				// Evict a known page if one exists at (file, off).
				if pfn, ok := c.Lookup(file, off); ok {
					c.Evict(pfn)
				}
			}
			if c.CheckInvariants() != nil {
				return false
			}
		}
		// Frames out == pages cached.
		return len(p.out) == c.Pages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRekeyPreservesIdentityAndDirty(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	w := c.Write(3, 9, 1)
	old := w.Touched[0]
	c.Rekey(old, 777)
	if c.Owns(old) {
		t.Fatal("old frame still owned")
	}
	f, off, ok := c.Identity(777)
	if !ok || f != 3 || off != 9 {
		t.Fatal("identity lost")
	}
	if !c.Dirty(777) || c.Dirty(old) {
		t.Fatal("dirty state not transferred")
	}
	if pfn, _ := c.Lookup(3, 9); pfn != 777 {
		t.Fatal("forward map not rekeyed")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRekeyPanics(t *testing.T) {
	p := newFramePool(0)
	c := New(p.alloc, p.free)
	c.ReadaheadWindow = 0
	r := c.Read(1, 0, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rekey of unowned frame did not panic")
			}
		}()
		c.Rekey(999, 1000)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("rekey onto cached frame did not panic")
			}
		}()
		c.Rekey(r.Touched[0], r.Touched[1])
	}()
}
