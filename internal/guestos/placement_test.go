package guestos

import (
	"testing"

	"heteroos/internal/memsim"
)

func TestPlacementWantsFast(t *testing.T) {
	var pl PlacementConfig
	pl.FastKinds[KindAnon] = true
	if !pl.WantsFast(KindAnon) || pl.WantsFast(KindPageCache) {
		t.Fatal("FastKinds routing wrong")
	}
	pl.NUMAPreferred = true
	if !pl.WantsFast(KindPageCache) {
		t.Fatal("NUMA-preferred must prefer FastMem for everything")
	}
}

func TestAllocStatsAccounting(t *testing.T) {
	var s AllocStats
	s.Record(KindAnon, true, memsim.FastMem)
	s.Record(KindAnon, true, memsim.SlowMem)
	s.Record(KindAnon, true, memsim.SlowMem)
	s.Record(KindPageCache, false, memsim.SlowMem)

	if s.Total[KindAnon] != 3 || s.Total[KindPageCache] != 1 {
		t.Fatal("totals wrong")
	}
	if got := s.MissRatio(KindAnon); got != 2.0/3.0 {
		t.Fatalf("anon miss ratio = %v", got)
	}
	if got := s.MissRatio(KindPageCache); got != 0 {
		t.Fatalf("cache miss ratio = %v (no fast requests)", got)
	}
	if got := s.OverallMissRatio(); got != 2.0/3.0 {
		t.Fatalf("overall = %v", got)
	}
	kind, ratio := s.MaxMissKind()
	if kind != KindAnon || ratio != 2.0/3.0 {
		t.Fatalf("max miss = %v/%v", kind, ratio)
	}
	s.Reset()
	if s.Total[KindAnon] != 0 || s.OverallMissRatio() != 0 {
		t.Fatal("reset failed")
	}
	if k, r := s.MaxMissKind(); k != KindFree || r != 0 {
		t.Fatalf("empty MaxMissKind = %v/%v", k, r)
	}
}

func TestNodeWatermarksAndAccounting(t *testing.T) {
	os, _ := testOS(t, heteroLRUPlacement(), 1024, 4096, 512, 1024)
	fast := os.Node(memsim.FastMem)
	if fast.LowWatermark == 0 || fast.HighWatermark <= fast.LowWatermark {
		t.Fatalf("watermarks unset: %d/%d", fast.LowWatermark, fast.HighWatermark)
	}
	if fast.BelowLow() {
		t.Fatal("freshly booted node should not be under pressure")
	}
	if fast.ReclaimTarget() != 0 {
		t.Fatal("no reclaim target expected with ample free pages")
	}
	if !fast.Contains(0) || fast.Contains(PFN(fast.MaxPages)) {
		t.Fatal("Contains span wrong")
	}
	if fast.UsedPages() != 0 {
		t.Fatalf("used = %d on fresh node", fast.UsedPages())
	}
	if fast.String() == "" {
		t.Fatal("String empty")
	}
	// Drain the node: pressure indicators flip.
	for {
		if _, ok := os.allocPage(KindAnon, 0); !ok {
			break
		}
		if os.Node(memsim.FastMem).FreePages() == 0 {
			break
		}
	}
	if !fast.BelowLow() {
		t.Fatal("exhausted node must be below the low watermark")
	}
	if fast.ReclaimTarget() == 0 {
		t.Fatal("exhausted node must want reclaim")
	}
}

func TestDemandPrioritisationWindow(t *testing.T) {
	// With HeteroOS-LRU, reclaim runs on behalf of the kind with the
	// highest miss ratio; other kinds spill without triggering it.
	os, _ := testOS(t, heteroLRUPlacement(), 256, 4096, 256, 2048)
	// Saturate FastMem with heap pages so subsequent allocations miss.
	vma, _ := os.AS.Mmap(512, KindAnon, NilFile)
	for i := 0; i < 512; i++ {
		os.TouchVPN(vma.Start+VPN(i), 1, 1)
	}
	if os.Window.Requests[KindAnon] == 0 {
		t.Fatal("window never recorded heap demand")
	}
	kind, ratio := os.Window.MaxMissKind()
	_ = kind
	if ratio < 0 || ratio > 1 {
		t.Fatalf("ratio out of range: %v", ratio)
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestThrottleStateTelemetry(t *testing.T) {
	os, _ := testOS(t, heteroLRUPlacement(), 256, 4096, 256, 2048)
	ar, as, rr, rs, pr := os.ThrottleState()
	if ar != 1 || pr != 1 {
		t.Fatal("EWMAs must start optimistic")
	}
	if as != 0 || rs != 0 || rr != 0 {
		t.Fatal("counters must start empty")
	}
	// Drive allocations + epochs so samples mature.
	vma, _ := os.AS.Mmap(700, KindAnon, NilFile)
	for e := 0; e < 8; e++ {
		for i := e * 80; i < (e+1)*80; i++ {
			os.TouchVPN(vma.Start+VPN(i), 2, 1)
		}
		os.EndEpoch()
	}
	_, as2, _, _, _ := os.ThrottleState()
	if as2 == 0 {
		t.Fatal("admission samples never matured")
	}
}

func TestSlabChurnPageEquivalents(t *testing.T) {
	os, _ := testOS(t, heapIOSlabODPlacement(), 1024, 4096, 512, 1024)
	os.NetRecv(10, 4096)
	refs := os.SlabMetaAlloc(SlabFSMeta, 8)
	os.SlabMetaFree(refs)
	netbuf, slabPages := os.SlabChurnPageEquivalents()
	if netbuf <= 0 {
		t.Fatal("skbuff churn not counted")
	}
	if slabPages < 8 { // 8 x 4096-byte objects = 8 page equivalents
		t.Fatalf("fs-meta churn = %v, want >= 8", slabPages)
	}
}
