package guestos

import (
	"testing"
	"testing/quick"

	"heteroos/internal/memsim"
)

// mmOS boots a generously sized OS for address-space tests.
func mmOS(t *testing.T) *OS {
	t.Helper()
	os, _ := testOS(t, heapODPlacement(), 1<<15, 1<<16, 1<<14, 1<<15)
	return os
}

func TestMmapValidation(t *testing.T) {
	os := mmOS(t)
	if _, err := os.AS.Mmap(0, KindAnon, NilFile); err == nil {
		t.Error("zero-page mmap accepted")
	}
	if _, err := os.AS.Mmap(4, KindSlab, NilFile); err == nil {
		t.Error("slab-kind mmap accepted")
	}
	if err := os.AS.Munmap(999); err == nil {
		t.Error("munmap of unknown VMA accepted")
	}
}

func TestVMAsDoNotOverlap(t *testing.T) {
	os := mmOS(t)
	var vmas []*VMA
	for i := 0; i < 20; i++ {
		v, err := os.AS.Mmap(uint64(10+i*7), KindAnon, NilFile)
		if err != nil {
			t.Fatal(err)
		}
		vmas = append(vmas, v)
	}
	for i := 0; i < len(vmas); i++ {
		for j := i + 1; j < len(vmas); j++ {
			a, b := vmas[i], vmas[j]
			if a.Start < b.End() && b.Start < a.End() {
				t.Fatalf("VMAs %d and %d overlap", a.ID, b.ID)
			}
		}
	}
	if err := os.AS.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFindVMA(t *testing.T) {
	os := mmOS(t)
	v, _ := os.AS.Mmap(16, KindAnon, NilFile)
	if got, ok := os.AS.FindVMA(v.Start + 5); !ok || got.ID != v.ID {
		t.Fatal("FindVMA missed interior page")
	}
	if _, ok := os.AS.FindVMA(v.End()); ok {
		t.Fatal("FindVMA matched one past the end")
	}
	if got, ok := os.AS.VMAByID(v.ID); !ok || got != v {
		t.Fatal("VMAByID broken")
	}
}

func TestPageTableGeometry(t *testing.T) {
	os := mmOS(t)
	v, _ := os.AS.Mmap(1, KindAnon, NilFile)
	if _, err := os.TouchVPN(v.Start, 1, 0); err != nil {
		t.Fatal(err)
	}
	// One resident leaf needs one node per level.
	if got := os.AS.PTPages(); got != ptLevels {
		t.Fatalf("PT pages = %d, want %d", got, ptLevels)
	}
	// A second page in the same 512-page leaf region shares all nodes.
	v2, _ := os.AS.Mmap(1, KindAnon, NilFile)
	if sameLeaf := ptIndex(v.Start, 1) == ptIndex(v2.Start, 1) &&
		v.Start>>18 == v2.Start>>18; sameLeaf {
		os.TouchVPN(v2.Start, 1, 0)
		if got := os.AS.PTPages(); got != ptLevels {
			t.Fatalf("PT pages = %d after same-leaf map", got)
		}
	}
	// A far-away page allocates a fresh subtree below the shared root.
	far, _ := os.AS.Mmap(1, KindAnon, NilFile)
	_ = far
}

func TestPageTableReclaimBottomUp(t *testing.T) {
	os := mmOS(t)
	// Map pages spread across many leaf tables.
	v, _ := os.AS.Mmap(ptFanout*3, KindAnon, NilFile)
	for i := uint64(0); i < ptFanout*3; i += 64 {
		if _, err := os.TouchVPN(v.Start+VPN(i), 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if os.AS.PTPages() == 0 {
		t.Fatal("no PT pages")
	}
	if err := os.AS.Munmap(v.ID); err != nil {
		t.Fatal(err)
	}
	if got := os.AS.PTPages(); got != 0 {
		t.Fatalf("PT pages leaked: %d", got)
	}
	if os.AS.ResidentPages() != 0 {
		t.Fatal("resident pages leaked")
	}
	// The whole tree is gone; a new mapping rebuilds it cleanly.
	v2, _ := os.AS.Mmap(4, KindAnon, NilFile)
	if _, err := os.TouchVPN(v2.Start, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateAndSwapMarkers(t *testing.T) {
	os := mmOS(t)
	v, _ := os.AS.Mmap(4, KindAnon, NilFile)
	if _, ok := os.AS.Translate(v.Start); ok {
		t.Fatal("unmapped vpn translated")
	}
	pfn, err := os.TouchVPN(v.Start, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := os.AS.Translate(v.Start)
	if !ok || got != pfn {
		t.Fatalf("Translate = %d,%v want %d", got, ok, pfn)
	}
	// Swap the page out by hand and verify the marker state.
	if !os.swapOutPage(pfn) {
		t.Fatal("swap out failed")
	}
	if _, ok := os.AS.Translate(v.Start); ok {
		t.Fatal("swapped vpn still translates")
	}
	if !os.swap.has(v.Start) {
		t.Fatal("swap slot missing")
	}
	// Touch swaps it back in.
	pfn2, err := os.TouchVPN(v.Start, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if os.swap.has(v.Start) {
		t.Fatal("swap slot not freed on swap-in")
	}
	if pfn2 == NilPFN {
		t.Fatal("swap-in returned no frame")
	}
}

func TestSwapPreservesContents(t *testing.T) {
	os := mmOS(t)
	v, _ := os.AS.Mmap(1, KindAnon, NilFile)
	pfn, _ := os.TouchVPN(v.Start, 1, 0)
	tag := os.PageView(pfn).Tag
	os.swapOutPage(pfn)
	pfn2, _ := os.TouchVPN(v.Start, 1, 0)
	if os.PageView(pfn2).Tag != tag {
		t.Fatal("swap round-trip corrupted contents")
	}
}

func TestMunmapFreesSwapSlots(t *testing.T) {
	os := mmOS(t)
	v, _ := os.AS.Mmap(8, KindAnon, NilFile)
	for i := 0; i < 8; i++ {
		os.TouchVPN(v.Start+VPN(i), 1, 0)
	}
	for i := 0; i < 8; i++ {
		pfn, ok := os.AS.Translate(v.Start + VPN(i))
		if !ok {
			t.Fatal("lost mapping")
		}
		os.swapOutPage(pfn)
	}
	if os.SwappedPages() != 8 {
		t.Fatalf("swapped = %d", os.SwappedPages())
	}
	os.AS.Munmap(v.ID)
	if os.SwappedPages() != 0 {
		t.Fatalf("swap slots leaked: %d", os.SwappedPages())
	}
}

func TestAddrSpacePropertyMapUnmap(t *testing.T) {
	// Property: any interleaving of mmap/touch/munmap keeps VMAs
	// non-overlapping, resident counts exact, and PT pages balanced.
	f := func(ops []uint16) bool {
		os, _ := quickOS()
		var live []*VMA
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // mmap small region
				v, err := os.AS.Mmap(uint64(op%32)+1, KindAnon, NilFile)
				if err != nil {
					return false
				}
				live = append(live, v)
			case 2: // touch random page of a live vma
				if len(live) > 0 {
					v := live[int(op>>2)%len(live)]
					vpn := v.Start + VPN(uint64(op>>4)%v.Pages)
					if _, err := os.TouchVPN(vpn, 1, 1); err != nil {
						return false
					}
				}
			case 3: // munmap one
				if len(live) > 0 {
					i := int(op>>2) % len(live)
					if err := os.AS.Munmap(live[i].ID); err != nil {
						return false
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
		}
		return os.AS.CheckInvariants() == nil && os.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// quickOS builds an OS without *testing.T for property functions.
func quickOS() (*OS, *fakeSource) {
	src := newFakeSource(1<<14, 1<<15)
	pl := PlacementConfig{Name: "quick", OnDemand: true}
	pl.FastKinds[KindAnon] = true
	os, err := New(Config{
		CPUs: 1, Aware: true,
		FastMaxPages: 1 << 14, SlowMaxPages: 1 << 15,
		BootFastPages: 1 << 13, BootSlowPages: 1 << 14,
		Placement: pl, Source: src, TierOf: src.m.TierOf, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	return os, src
}

func TestTierOfPagePanicsOnUnpopulated(t *testing.T) {
	os := mmOS(t)
	// Find an unpopulated frame (the spans exceed boot population).
	var target PFN = NilPFN
	for pfn := PFN(0); pfn < PFN(os.NumPFNs()); pfn++ {
		if os.PageView(pfn).MFN == memsim.NilMFN {
			target = pfn
			break
		}
	}
	if target == NilPFN {
		t.Skip("no unpopulated frame")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	os.TierOfPage(target)
}
