package workload

import (
	"errors"
	"testing"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/sim"
)

// testSource backs a guest with ample frames of both tiers.
type testSource struct{ m *memsim.Machine }

func newTestSource() *testSource {
	return &testSource{m: memsim.NewMachine(1<<20, 1<<20, memsim.FastTierSpec(), memsim.SlowTierSpec())}
}

func (s *testSource) Populate(t memsim.Tier, want uint64) []memsim.MFN {
	fs, err := s.m.Alloc(t, want, 1)
	if err != nil {
		return nil
	}
	return fs
}

func (s *testSource) PopulateAny(want uint64) []memsim.MFN {
	return s.Populate(memsim.SlowMem, want)
}

func (s *testSource) Release(m []memsim.MFN) { s.m.Free(m, 1) }

func bootOS(t *testing.T) *guestos.OS {
	t.Helper()
	src := newTestSource()
	pl := guestos.PlacementConfig{Name: "test", OnDemand: true}
	pl.FastKinds[guestos.KindAnon] = true
	pl.FastKinds[guestos.KindPageCache] = true
	pl.FastKinds[guestos.KindNetBuf] = true
	pl.FastKinds[guestos.KindSlab] = true
	os, err := guestos.New(guestos.Config{
		CPUs: 2, Aware: true,
		FastMaxPages: 1 << 16, SlowMaxPages: 1 << 17,
		BootFastPages: 1 << 15, BootSlowPages: 1 << 16,
		Placement: pl, Source: src, TierOf: src.m.TierOf, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return os
}

func TestPagesScaling(t *testing.T) {
	c := Config{}
	// 4 GiB at the default scale of 64 = 16384 simulated pages.
	if got := c.Pages(4 * GiB); got != 16384 {
		t.Fatalf("Pages(4GiB) = %d", got)
	}
	if got := c.Pages(1); got != 1 {
		t.Fatal("tiny sizes must round up to one page")
	}
	c2 := Config{Scale: 1}
	if got := c2.Pages(GiB); got != 262144 {
		t.Fatalf("unscaled Pages(1GiB) = %d", got)
	}
}

func TestByNameCoversTable2(t *testing.T) {
	for _, name := range Names() {
		w, err := ByName(name, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := w.Profile()
		if p.Name == "" || p.MPKI <= 0 || p.WSSBytes <= 0 || p.Threads <= 0 ||
			p.InstrPerEpoch == 0 || p.TotalEpochs <= 0 {
			t.Errorf("%s: incomplete profile %+v", name, p)
		}
	}
	for _, micro := range []string{"memlat", "stream"} {
		if _, err := ByName(micro, Config{Seed: 1}); err != nil {
			t.Errorf("%s: %v", micro, err)
		}
	}
	if _, err := ByName("nope", Config{}); err == nil {
		t.Error("unknown app accepted")
	} else if !errors.Is(err, ErrUnknownApp) {
		t.Errorf("error %v does not wrap ErrUnknownApp", err)
	}
}

func TestTable4MPKIValues(t *testing.T) {
	want := map[string]float64{
		"GraphChi": 27.4, "X-Stream": 24.8, "Metis": 14.9,
		"LevelDB": 4.7, "Redis": 11.1, "Nginx": 2.1,
	}
	for name, mpki := range want {
		w, err := ByName(name, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Profile().MPKI; got != mpki {
			t.Errorf("%s MPKI = %v, want %v (Table 4)", name, got, mpki)
		}
	}
}

func TestEveryWorkloadRunsToCompletion(t *testing.T) {
	names := append(Names(), "memlat", "stream")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			os := bootOS(t)
			w, err := ByName(name, Config{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Init(os); err != nil {
				t.Fatal(err)
			}
			prof := w.Profile()
			steps := 0
			for {
				instr, done := w.Step(os)
				os.EndEpoch()
				steps++
				if !done && instr == 0 {
					t.Fatal("workload stalled")
				}
				if done {
					break
				}
				if steps > prof.TotalEpochs+5 {
					t.Fatalf("did not finish within %d epochs", prof.TotalEpochs)
				}
			}
			if steps != prof.TotalEpochs {
				t.Errorf("ran %d epochs, profile says %d", steps, prof.TotalEpochs)
			}
			st := os.DrainEpoch()
			_ = st
			if err := os.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWorkloadsTouchExpectedSubsystems(t *testing.T) {
	// Each app's page census must reflect its Table 2 / Figure 4
	// character.
	run := func(name string, epochs int) (*guestos.OS, [guestos.NumKinds]uint64) {
		os := bootOS(t)
		w, err := ByName(name, Config{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Init(os); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < epochs; i++ {
			if _, done := w.Step(os); done {
				break
			}
			os.EndEpoch()
		}
		return os, os.PageCensus()
	}

	if _, c := run("GraphChi", 12); c[guestos.KindAnon] == 0 || c[guestos.KindPageCache] == 0 {
		t.Error("GraphChi should populate heap and page cache")
	}
	if os, c := run("Redis", 6); c[guestos.KindNetBuf] == 0 {
		_ = os
		t.Error("Redis should hold skbuff pages")
	}
	if os, _ := run("LevelDB", 6); os.PC.Pages() == 0 {
		t.Error("LevelDB should populate the page cache")
	}
	if os, _ := run("LevelDB", 6); func() bool {
		a, _, _, _ := os.Slabs[guestos.SlabFSMeta].Stats()
		return a == 0
	}() {
		t.Error("LevelDB should churn filesystem metadata slabs")
	}
}

func TestHeapRegionDrift(t *testing.T) {
	os := bootOS(t)
	// A drifting region's touched set must move over time.
	r := mustHeapRegion(t, os, 1000, 100, 1.0)
	r.setDrift(100)
	first := touchedSet(t, os, r)
	for i := 0; i < 5; i++ {
		if err := r.touch(os, 200, 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	later := touchedSet(t, os, r)
	overlap := 0
	for vpn := range later {
		if first[vpn] {
			overlap++
		}
	}
	if overlap > len(later)/2 {
		t.Errorf("hot window did not drift: %d/%d overlap", overlap, len(later))
	}
}

func mustHeapRegion(t *testing.T, os *guestos.OS, pages, hot uint64, frac float64) *heapRegion {
	t.Helper()
	r, err := newHeapRegion(os, newTestRNG(), pages, hot, frac)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func touchedSet(t *testing.T, os *guestos.OS, r *heapRegion) map[guestos.VPN]bool {
	t.Helper()
	if err := r.touch(os, 200, 2, 0); err != nil {
		t.Fatal(err)
	}
	out := make(map[guestos.VPN]bool, len(r.counts))
	for vpn := range r.counts {
		out[vpn] = true
	}
	return out
}

func TestSequentialRegionWraps(t *testing.T) {
	os := bootOS(t)
	sr, err := newSequentialRegion(os, 10, guestos.FileID(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.sweep(os, 25, 1); err != nil {
		t.Fatal(err)
	}
	if sr.cursor.Pos() != 5 {
		t.Fatalf("cursor = %d after wrap, want 5", sr.cursor.Pos())
	}
	if err := sr.touchRange(os, 8, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		os := bootOS(t)
		w, _ := ByName("Redis", Config{Seed: 9})
		if err := w.Init(os); err != nil {
			t.Fatal(err)
		}
		var faults uint64
		for i := 0; i < 8; i++ {
			w.Step(os)
			os.EndEpoch()
			faults += os.DrainEpoch().Faults
		}
		return faults
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func newTestRNG() *sim.RNG { return sim.NewRNG(99) }
