package workload

import (
	"heteroos/internal/guestos"
	"heteroos/internal/sim"
)

// --- GraphChi (Table 2: PageRank on the Orkut social graph) ---

// GraphChi models the out-of-core graph engine: a large heap holding
// vertex data and shard buffers (frequently mapped and unmapped — the
// paper highlights its allocate/release churn), shard reads through the
// page cache, and memory-intensive batched compute (MPKI 27.4, the most
// bandwidth-sensitive app of Figure 1).
type GraphChi struct {
	cfg     Config
	rng     *sim.RNG
	profile Profile

	heap  *heapRegion
	shard *heapRegion // rotating shard buffer, churned
	file  guestos.FileID
	epoch int

	heapPages, shardPages, filePages uint64
}

// NewGraphChi builds the GraphChi model.
func NewGraphChi(cfg Config) *GraphChi {
	return &GraphChi{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x67726368),
		profile: Profile{
			Name:          "GraphChi",
			Description:   "Pagerank using Orkut social graph, 8 million nodes, 500 million edges",
			Metric:        "time(sec)",
			MPKI:          27.4,
			WSSBytes:      3 * GiB / 2, // 1.5 GiB active working set
			Threads:       8,
			MLP:           2.5,
			BytesPerMiss:  48,
			StoreMissFrac: 0.30,
			InstrPerEpoch: 2_500_000_000,
			TotalEpochs:   150,
		},
		heapPages:  0,
		shardPages: 0,
	}
}

// Profile implements Workload.
func (g *GraphChi) Profile() Profile { return g.profile }

// Init implements Workload.
func (g *GraphChi) Init(os *guestos.OS) error {
	g.heapPages = g.cfg.Pages(5 * GiB)
	g.shardPages = g.cfg.Pages(256 * MiB)
	g.filePages = g.cfg.Pages(2 * GiB)
	g.file = guestos.FileID(11)
	hot := g.cfg.Pages(g.profile.WSSBytes)
	var err error
	g.heap, err = newHeapRegion(os, g.rng, g.heapPages, hot, 0.9)
	if err != nil {
		return err
	}
	// Graph iterations sweep vertex ranges: the hot window drifts so a
	// tenth of it is fresh each epoch.
	g.heap.setDrift(hot / 150)
	g.shard, err = newHeapRegion(os, g.rng, g.shardPages, g.shardPages, 1.0)
	return err
}

// Step implements Workload.
func (g *GraphChi) Step(os *guestos.OS) (uint64, bool) {
	g.epoch++
	// Shard phase every 8 epochs: release the shard buffer, remap it
	// (allocate/release churn), and stream the next shard from disk.
	if g.epoch%8 == 1 {
		if g.shard != nil {
			if err := os.AS.Munmap(g.shard.vma.ID); err != nil {
				return 0, true
			}
		}
		var err error
		g.shard, err = newHeapRegion(os, g.rng, g.shardPages, g.shardPages, 1.0)
		if err != nil {
			return 0, true
		}
		off := uint64(g.epoch/8) % (g.filePages / 64 * 64)
		os.FileRead(g.file, off, 64)
	}
	// Batched vertex compute: heavy heap traffic, touch the shard too.
	if err := g.heap.touch(os, touchSamples, 4, g.profile.StoreMissFrac); err != nil {
		return 0, true
	}
	if err := g.shard.touch(os, touchSamples/4, 2, 0.2); err != nil {
		return 0, true
	}
	return g.profile.InstrPerEpoch, g.epoch >= g.profile.TotalEpochs
}

// --- X-Stream (Table 2: edge-centric graph processing) ---

// XStream models the streaming-partition engine: it maps its input graph
// into the page cache and sweeps it sequentially (the paper: "computes
// over a memory mapped I/O data"), making it the most page-cache-
// intensive app; heap holds streaming buffers.
type XStream struct {
	cfg     Config
	rng     *sim.RNG
	profile Profile

	heap  *heapRegion
	input *sequentialRegion
	epoch int
	// prevWindow is the last swept range: X-Stream's scatter-gather
	// phases re-process each streaming partition right after reading it,
	// which is why the paper sees page-cache FastMem placement halve its
	// runtime.
	prevStart, prevLen int
}

// NewXStream builds the X-Stream model.
func NewXStream(cfg Config) *XStream {
	return &XStream{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x78737472),
		profile: Profile{
			Name:          "X-Stream",
			Description:   "Edge-centric graph processing, same input as GraphChi",
			Metric:        "time(sec)",
			MPKI:          24.8,
			WSSBytes:      2 * GiB,
			Threads:       8,
			MLP:           2.5,
			BytesPerMiss:  36,
			StoreMissFrac: 0.25,
			InstrPerEpoch: 2_500_000_000,
			TotalEpochs:   150,
		},
	}
}

// Profile implements Workload.
func (x *XStream) Profile() Profile { return x.profile }

// Init implements Workload.
func (x *XStream) Init(os *guestos.OS) error {
	hot := x.cfg.Pages(GiB)
	var err error
	x.heap, err = newHeapRegion(os, x.rng, x.cfg.Pages(2*GiB), hot, 0.85)
	if err != nil {
		return err
	}
	x.heap.setDrift(hot / 150)
	x.input, err = newSequentialRegion(os, x.cfg.Pages(4*GiB), guestos.FileID(12))
	return err
}

// Step implements Workload.
func (x *XStream) Step(os *guestos.OS) (uint64, bool) {
	x.epoch++
	// Stream a window of the mapped input (gather), then re-process the
	// previous window (scatter): each partition is touched across two
	// epochs.
	window := int(x.cfg.Pages(4*GiB)) / x.profile.TotalEpochs * 3
	start := x.input.cursor.Pos()
	if err := x.input.sweep(os, window, 6); err != nil {
		return 0, true
	}
	if x.prevLen > 0 {
		if err := x.input.touchRange(os, x.prevStart, x.prevLen, 6); err != nil {
			return 0, true
		}
		// Partition consumed: drop-behind releases its cache pages (the
		// short-lived, high-reuse OS pages of Observation 3).
		os.ReleaseFileRange(x.input.vma.File, uint64(x.prevStart), x.prevLen)
	}
	x.prevStart, x.prevLen = start, window
	if err := x.heap.touch(os, touchSamples, 4, x.profile.StoreMissFrac); err != nil {
		return 0, true
	}
	return x.profile.InstrPerEpoch, x.epoch >= x.profile.TotalEpochs
}

// --- Metis (Table 2: shared-memory map-reduce) ---

// Metis models the in-memory map-reduce runtime: an input-scan phase
// that loads the 4 GB dataset through the page cache, then compute over
// a large heap that is seldom released (the paper: "seldom releases
// memory and has a large working set").
type Metis struct {
	cfg     Config
	rng     *sim.RNG
	profile Profile

	heap  *heapRegion
	file  guestos.FileID
	epoch int
}

// NewMetis builds the Metis model.
func NewMetis(cfg Config) *Metis {
	return &Metis{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x6d657469),
		profile: Profile{
			Name:          "Metis",
			Description:   "Shared memory mapreduce, 4GB crime dataset, 8 mapper-reducer threads",
			Metric:        "time(sec)",
			MPKI:          14.9,
			WSSBytes:      7 * GiB / 2, // 3.5 GiB
			Threads:       8,
			MLP:           6,
			BytesPerMiss:  8,
			StoreMissFrac: 0.35,
			InstrPerEpoch: 2_500_000_000,
			TotalEpochs:   150,
		},
	}
}

// Profile implements Workload.
func (m *Metis) Profile() Profile { return m.profile }

// Init implements Workload.
func (m *Metis) Init(os *guestos.OS) error {
	m.file = guestos.FileID(13)
	hot := m.cfg.Pages(m.profile.WSSBytes)
	var err error
	// Near-uniform access over a big heap: hot set is most of it and it
	// drifts slowly as reducers move between partitions.
	m.heap, err = newHeapRegion(os, m.rng, m.cfg.Pages(9*GiB/2), hot, 0.8)
	if err != nil {
		return err
	}
	m.heap.setDrift(hot / 400)
	return nil
}

// Step implements Workload.
func (m *Metis) Step(os *guestos.OS) (uint64, bool) {
	m.epoch++
	// Map phase (first quarter): stream the input file.
	if m.epoch <= m.profile.TotalEpochs/4 {
		chunk := m.cfg.Pages(4*GiB) / uint64(m.profile.TotalEpochs/4)
		os.FileRead(m.file, uint64(m.epoch-1)*chunk, int(chunk))
	}
	if err := m.heap.touch(os, touchSamples, 4, m.profile.StoreMissFrac); err != nil {
		return 0, true
	}
	return m.profile.InstrPerEpoch, m.epoch >= m.profile.TotalEpochs
}

// --- LevelDB (Table 2: SQLite bench over Google's LevelDB) ---

// LevelDB models the LSM key-value store: log appends (sequential page-
// cache writes), memtable heap activity, SSTable reads with Zipf key
// popularity through the page cache, filesystem-metadata slab churn, and
// periodic compaction (bulk reads+writes). The page cache dominates its
// page population (Figure 4) and FastMem cache placement doubles its
// throughput (Section 5.3).
type LevelDB struct {
	cfg     Config
	rng     *sim.RNG
	profile Profile

	heap      *heapRegion
	sstZipf   *sim.Zipf
	sstFile   guestos.FileID
	logFile   guestos.FileID
	logCursor uint64
	sstPages  uint64
	epoch     int
}

// NewLevelDB builds the LevelDB model.
func NewLevelDB(cfg Config) *LevelDB {
	return &LevelDB{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x6c64626c),
		profile: Profile{
			Name:          "LevelDB",
			Description:   "Google's DB for bigtable, SQLite bench with 1M keys",
			Metric:        "throughput (MB/s)",
			MPKI:          4.7,
			WSSBytes:      512 * MiB,
			Threads:       2,
			MLP:           2,
			BytesPerMiss:  32,
			StoreMissFrac: 0.4,
			InstrPerEpoch: 600_000_000,
			TotalEpochs:   120,
			OpsPerEpoch:   24, // MB of database work per epoch
		},
	}
}

// Profile implements Workload.
func (l *LevelDB) Profile() Profile { return l.profile }

// Init implements Workload.
func (l *LevelDB) Init(os *guestos.OS) error {
	l.sstFile = guestos.FileID(14)
	l.logFile = guestos.FileID(15)
	l.sstPages = l.cfg.Pages(3 * GiB / 2)
	l.sstZipf = sim.NewZipf(l.rng.Fork(), 0.99, int(l.sstPages))
	var err error
	l.heap, err = newHeapRegion(os, l.rng, l.cfg.Pages(GiB), l.cfg.Pages(256*MiB), 0.9)
	return err
}

// Step implements Workload.
func (l *LevelDB) Step(os *guestos.OS) (uint64, bool) {
	l.epoch++
	// Reads: Zipf-popular SSTable pages (read-ahead exploits runs).
	for i := 0; i < 96; i++ {
		off := uint64(l.sstZipf.Sample())
		os.FileRead(l.sstFile, off, 2)
	}
	// Writes: sequential log append + memtable updates.
	os.FileWrite(l.logFile, l.logCursor, 16)
	l.logCursor += 16
	// Filesystem metadata churn (dentries, inodes, block metadata).
	refs := os.SlabMetaAlloc(guestos.SlabFSMeta, 32)
	os.SlabMetaFree(refs)
	if err := l.heap.touch(os, touchSamples/2, 3, l.profile.StoreMissFrac); err != nil {
		return 0, true
	}
	// Compaction every 12 epochs: bulk read+rewrite of a run.
	if l.epoch%12 == 0 {
		base := uint64(l.rng.Intn(int(l.sstPages / 2)))
		os.FileRead(l.sstFile, base, 64)
		os.FileWrite(l.sstFile, base, 64)
	}
	return l.profile.InstrPerEpoch, l.epoch >= l.profile.TotalEpochs
}

// --- Redis (Table 2: key-value store, redis-benchmark) ---

// Redis models the in-memory store under the redis benchmark: 4M ops at
// 80% GET. Every operation moves data through skbuff network slabs
// (Figure 4 shows Redis's NW-buff share), GETs touch Zipf-popular value
// pages, SETs dirty them, and the AOF persists appends through the page
// cache.
type Redis struct {
	cfg     Config
	rng     *sim.RNG
	profile Profile

	values    *heapRegion
	aof       guestos.FileID
	aofCursor uint64
	epoch     int
}

// NewRedis builds the Redis model.
func NewRedis(cfg Config) *Redis {
	return &Redis{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x72656469),
		profile: Profile{
			Name:          "Redis",
			Description:   "Key-value store with persistence, redis benchmark, 4M ops, 80% GET",
			Metric:        "requests/sec",
			MPKI:          11.1,
			WSSBytes:      GiB,
			Threads:       2,
			MLP:           6,
			BytesPerMiss:  16,
			StoreMissFrac: 0.3,
			InstrPerEpoch: 800_000_000,
			TotalEpochs:   120,
			OpsPerEpoch:   4_000_000.0 / 120,
		},
	}
}

// Profile implements Workload.
func (r *Redis) Profile() Profile { return r.profile }

// Init implements Workload.
func (r *Redis) Init(os *guestos.OS) error {
	r.aof = guestos.FileID(16)
	var err error
	r.values, err = newHeapRegion(os, r.rng, r.cfg.Pages(3*GiB), r.cfg.Pages(r.profile.WSSBytes), 0.9)
	return err
}

// Step implements Workload.
func (r *Redis) Step(os *guestos.OS) (uint64, bool) {
	r.epoch++
	// Network path: request/response buffers for this epoch's ops
	// (batched: the op count is huge, the buffer churn is what matters).
	os.NetRecv(48, 2048)
	if err := r.values.touch(os, touchSamples, 4, r.profile.StoreMissFrac); err != nil {
		return 0, true
	}
	os.NetSend(48, 8192)
	// AOF persistence for the 20% SETs.
	os.FileWrite(r.aof, r.aofCursor, 4)
	r.aofCursor += 4
	return r.profile.InstrPerEpoch, r.epoch >= r.profile.TotalEpochs
}

// --- NGinx (Table 2: web server, 1M pages) ---

// Nginx models the web server: Zipf-popular content served from the
// page cache, skbuff churn per request, and a tiny heap — its <60 MB
// active working set is why even 9x-slower memory costs it under 10%
// (Section 2.2), and why the paper omits it from the placement figures.
type Nginx struct {
	cfg     Config
	rng     *sim.RNG
	profile Profile

	heap    *heapRegion
	content guestos.FileID
	zipf    *sim.Zipf
	epoch   int
}

// NewNginx builds the NGinx model.
func NewNginx(cfg Config) *Nginx {
	return &Nginx{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ 0x6e67696e),
		profile: Profile{
			Name:          "Nginx",
			Description:   "Webserver serving 1M static, dynamic, image webpages",
			Metric:        "requests/sec",
			MPKI:          2.1,
			WSSBytes:      60 * MiB,
			Threads:       4,
			MLP:           10,
			BytesPerMiss:  8,
			StoreMissFrac: 0.2,
			InstrPerEpoch: 700_000_000,
			TotalEpochs:   40,
			OpsPerEpoch:   25_000,
		},
	}
}

// Profile implements Workload.
func (n *Nginx) Profile() Profile { return n.profile }

// Init implements Workload.
func (n *Nginx) Init(os *guestos.OS) error {
	n.content = guestos.FileID(17)
	contentPages := n.cfg.Pages(4 * GiB)
	n.zipf = sim.NewZipf(n.rng.Fork(), 1.1, int(contentPages))
	var err error
	n.heap, err = newHeapRegion(os, n.rng, n.cfg.Pages(128*MiB), n.cfg.Pages(32*MiB), 0.9)
	return err
}

// Step implements Workload.
func (n *Nginx) Step(os *guestos.OS) (uint64, bool) {
	n.epoch++
	os.NetRecv(32, 512)
	for i := 0; i < 64; i++ {
		off := uint64(n.zipf.Sample())
		os.FileRead(n.content, off, 1)
	}
	os.NetSend(32, 16384)
	if err := n.heap.touch(os, touchSamples/4, 2, n.profile.StoreMissFrac); err != nil {
		return 0, true
	}
	return n.profile.InstrPerEpoch, n.epoch >= n.profile.TotalEpochs
}
