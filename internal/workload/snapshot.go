package workload

import (
	"fmt"

	"heteroos/internal/guestos"
	"heteroos/internal/snapshot"
)

// Snapshotter is implemented by workloads whose run state can be
// checkpointed. SnapshotState serializes progress (epoch counters, RNG
// streams, region cursors); RestoreState overlays it onto a freshly
// Init-ed instance of the same workload, rebinding region pointers to
// the restored address space by VMA id.
type Snapshotter interface {
	SnapshotState(e *snapshot.Encoder)
	RestoreState(d *snapshot.Decoder, os *guestos.OS) error
}

func snapshotRNGOwner(e *snapshot.Encoder, st [4]uint64) {
	for _, s := range st {
		e.U64(s)
	}
}

func restoreRNGState(d *snapshot.Decoder) [4]uint64 {
	var st [4]uint64
	for i := range st {
		st[i] = d.U64()
	}
	return st
}

// snapshotHeap serializes a heap region's run state. Geometry (pages,
// hotPages, hotFrac) is reconstructed by Init; the VMA pointer is
// rebound by id against the restored address space.
func (h *heapRegion) snapshot(e *snapshot.Encoder) {
	e.U32(uint32(h.vma.ID))
	snapshotRNGOwner(e, h.rng.State())
	e.U64(h.pages)
	e.U64(h.hotPages)
	e.F64(h.hotFrac)
	e.U64(h.hotStart)
	e.U64(h.drift)
}

func (h *heapRegion) restore(d *snapshot.Decoder, os *guestos.OS) error {
	id := guestos.VMAID(d.U32())
	h.rng.Restore(restoreRNGState(d))
	h.pages = d.U64()
	h.hotPages = d.U64()
	h.hotFrac = d.F64()
	h.hotStart = d.U64()
	h.drift = d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	vma, ok := os.AS.VMAByID(id)
	if !ok {
		return fmt.Errorf("workload: snapshot heap region VMA %d not in restored address space", id)
	}
	h.vma = vma
	return nil
}

func (s *sequentialRegion) snapshot(e *snapshot.Encoder) {
	e.U32(uint32(s.vma.ID))
	e.Int(s.cursor.Pos())
}

func (s *sequentialRegion) restore(d *snapshot.Decoder, os *guestos.OS) error {
	id := guestos.VMAID(d.U32())
	s.cursor.Seek(d.Int())
	if err := d.Err(); err != nil {
		return err
	}
	vma, ok := os.AS.VMAByID(id)
	if !ok {
		return fmt.Errorf("workload: snapshot sequential region VMA %d not in restored address space", id)
	}
	s.vma = vma
	return nil
}

// --- GraphChi ---

// SnapshotState implements Snapshotter.
func (g *GraphChi) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, g.rng.State())
	e.Int(g.epoch)
	g.heap.snapshot(e)
	g.shard.snapshot(e)
}

// RestoreState implements Snapshotter.
func (g *GraphChi) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	g.rng.Restore(restoreRNGState(d))
	g.epoch = d.Int()
	if err := g.heap.restore(d, os); err != nil {
		return err
	}
	return g.shard.restore(d, os)
}

// --- X-Stream ---

// SnapshotState implements Snapshotter.
func (x *XStream) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, x.rng.State())
	e.Int(x.epoch)
	e.Int(x.prevStart)
	e.Int(x.prevLen)
	x.heap.snapshot(e)
	x.input.snapshot(e)
}

// RestoreState implements Snapshotter.
func (x *XStream) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	x.rng.Restore(restoreRNGState(d))
	x.epoch = d.Int()
	x.prevStart = d.Int()
	x.prevLen = d.Int()
	if err := x.heap.restore(d, os); err != nil {
		return err
	}
	return x.input.restore(d, os)
}

// --- Metis ---

// SnapshotState implements Snapshotter.
func (m *Metis) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, m.rng.State())
	e.Int(m.epoch)
	m.heap.snapshot(e)
}

// RestoreState implements Snapshotter.
func (m *Metis) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	m.rng.Restore(restoreRNGState(d))
	m.epoch = d.Int()
	return m.heap.restore(d, os)
}

// --- LevelDB ---

// SnapshotState implements Snapshotter.
func (l *LevelDB) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, l.rng.State())
	snapshotRNGOwner(e, l.sstZipf.RNG().State())
	e.Int(l.epoch)
	e.U64(l.logCursor)
	l.heap.snapshot(e)
}

// RestoreState implements Snapshotter.
func (l *LevelDB) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	l.rng.Restore(restoreRNGState(d))
	l.sstZipf.RNG().Restore(restoreRNGState(d))
	l.epoch = d.Int()
	l.logCursor = d.U64()
	return l.heap.restore(d, os)
}

// --- Redis ---

// SnapshotState implements Snapshotter.
func (r *Redis) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, r.rng.State())
	e.Int(r.epoch)
	e.U64(r.aofCursor)
	r.values.snapshot(e)
}

// RestoreState implements Snapshotter.
func (r *Redis) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	r.rng.Restore(restoreRNGState(d))
	r.epoch = d.Int()
	r.aofCursor = d.U64()
	return r.values.restore(d, os)
}

// --- Nginx ---

// SnapshotState implements Snapshotter.
func (n *Nginx) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, n.rng.State())
	snapshotRNGOwner(e, n.zipf.RNG().State())
	e.Int(n.epoch)
	n.heap.snapshot(e)
}

// RestoreState implements Snapshotter.
func (n *Nginx) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	n.rng.Restore(restoreRNGState(d))
	n.zipf.RNG().Restore(restoreRNGState(d))
	n.epoch = d.Int()
	return n.heap.restore(d, os)
}

// --- MemLat ---

// SnapshotState implements Snapshotter.
func (m *MemLat) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, m.rng.State())
	e.Int(m.epoch)
	m.heap.snapshot(e)
}

// RestoreState implements Snapshotter.
func (m *MemLat) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	m.rng.Restore(restoreRNGState(d))
	m.epoch = d.Int()
	return m.heap.restore(d, os)
}

// --- Stream ---

// SnapshotState implements Snapshotter.
func (s *Stream) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, s.rng.State())
	e.Int(s.epoch)
	e.Int(s.cursor.Pos())
	s.heap.snapshot(e)
}

// RestoreState implements Snapshotter.
func (s *Stream) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	s.rng.Restore(restoreRNGState(d))
	s.epoch = d.Int()
	s.cursor.Seek(d.Int())
	return s.heap.restore(d, os)
}

// --- WriteHeavy ---

// SnapshotState implements Snapshotter.
func (w *WriteHeavy) SnapshotState(e *snapshot.Encoder) {
	snapshotRNGOwner(e, w.rng.State())
	e.Int(w.epoch)
	w.writers.snapshot(e)
	w.readers.snapshot(e)
}

// RestoreState implements Snapshotter.
func (w *WriteHeavy) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	w.rng.Restore(restoreRNGState(d))
	w.epoch = d.Int()
	if err := w.writers.restore(d, os); err != nil {
		return err
	}
	return w.readers.restore(d, os)
}
