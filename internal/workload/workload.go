// Package workload models the paper's application suite (Table 2):
// GraphChi, X-Stream, Metis, LevelDB, Redis, and NGinx, plus the memlat
// and STREAM microbenchmarks of Figures 6 and 7.
//
// A workload is a generator of OS-visible behaviour: it mmaps regions,
// touches pages with the application's locality pattern, performs file
// and network I/O through the guest kernel's real code paths, and
// reports its per-epoch instruction count. Instruction-level fidelity is
// deliberately absent — every metric the paper evaluates is driven by
// page-level events plus the measured memory intensity (MPKI, Table 4),
// working-set size, and page-type distribution (Figure 4), which are
// inputs here.
//
// All capacities are expressed in real bytes and divided by the
// simulation Scale when converted to pages, preserving every ratio the
// experiments depend on.
package workload

import (
	"errors"
	"fmt"
	"sort"

	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/sim"
)

// ErrUnknownApp is returned (wrapped) by ByName for names outside the
// application catalog; match it with errors.Is.
var ErrUnknownApp = errors.New("workload: unknown application")

// Profile carries a workload's calibrated characteristics.
type Profile struct {
	Name        string
	Description string
	// Metric is the paper's performance metric for the app.
	Metric string
	// MPKI is the LLC misses per kilo-instruction measured on the
	// reference platform (Table 4).
	MPKI float64
	// WSSBytes is the active working set in real (unscaled) bytes; it
	// drives the LLC model.
	WSSBytes int64
	// Threads of runnable workers.
	Threads int
	// MLP is sustained memory-level parallelism.
	MLP float64
	// BytesPerMiss is traffic amplification per miss (prefetch,
	// streaming).
	BytesPerMiss float64
	// StoreMissFrac is the fraction of misses that are stores.
	StoreMissFrac float64
	// InstrPerEpoch is work per epoch across all threads.
	InstrPerEpoch uint64
	// TotalEpochs bounds the run.
	TotalEpochs int
	// OpsPerEpoch translates epochs to application operations for
	// throughput metrics (0 for runtime metrics).
	OpsPerEpoch float64
}

// Workload is one application instance. Implementations are stateful
// and single-use: Init once, then Step until done.
type Workload interface {
	Profile() Profile
	// Init sets up address-space regions and initial data.
	Init(os *guestos.OS) error
	// Step runs one epoch of application work against the guest OS and
	// reports instructions retired and whether the run is complete.
	Step(os *guestos.OS) (instr uint64, done bool)
}

// Config scales and seeds workload construction.
type Config struct {
	// Scale divides all real capacities; it must match the system's
	// memory scaling so ratios are preserved. Default 64.
	Scale uint64
	// Seed derives per-workload RNG streams.
	Seed uint64
}

// DefaultScale is the capacity divisor used throughout the experiments:
// 4 GiB of real memory becomes 16Ki simulated pages.
const DefaultScale = 64

func (c Config) scale() uint64 {
	if c.Scale == 0 {
		return DefaultScale
	}
	return c.Scale
}

// Pages converts real bytes to scaled page counts (minimum 1).
func (c Config) Pages(bytes int64) uint64 {
	p := uint64(bytes) / memsim.PageSize / c.scale()
	if p == 0 {
		p = 1
	}
	return p
}

// GiB is a capacity literal helper.
const GiB = int64(1) << 30

// MiB is a capacity literal helper.
const MiB = int64(1) << 20

// touchSamples is the per-epoch distinct-page sampling budget.
const touchSamples = 3000

// heapRegion drives locality-distributed touches over one anonymous VMA.
// The hot window can drift across the region epoch by epoch, modelling
// the shifting working sets of iterative computations (graph engines
// sweep vertex ranges; map-reduce moves between partitions). Drift is
// what makes runtime page movement (LRU recycling, coordinated
// promotion) matter: a frozen placement decays as yesterday's cold pages
// become today's hot ones.
type heapRegion struct {
	vma      *guestos.VMA
	rng      *sim.RNG
	pages    uint64
	hotPages uint64
	hotFrac  float64
	hotStart uint64 // drifting window base
	drift    uint64 // window advance per epoch, in pages
	counts   map[guestos.VPN]uint64
}

func newHeapRegion(os *guestos.OS, rng *sim.RNG, pages, hotPages uint64, hotFrac float64) (*heapRegion, error) {
	vma, err := os.AS.Mmap(pages, guestos.KindAnon, guestos.NilFile)
	if err != nil {
		return nil, err
	}
	if hotPages == 0 {
		hotPages = 1
	}
	if hotPages > pages {
		hotPages = pages
	}
	return &heapRegion{
		vma:      vma,
		rng:      rng.Fork(),
		pages:    pages,
		hotPages: hotPages,
		hotFrac:  hotFrac,
		counts:   make(map[guestos.VPN]uint64, touchSamples),
	}, nil
}

// setDrift makes the hot window advance by pagesPerEpoch each touch.
func (h *heapRegion) setDrift(pagesPerEpoch uint64) { h.drift = pagesPerEpoch }

// sample draws one page index and whether it came from the hot window.
func (h *heapRegion) sample() (uint64, bool) {
	if h.rng.Bool(h.hotFrac) {
		return (h.hotStart + uint64(h.rng.Intn(int(h.hotPages)))) % h.pages, true
	}
	if h.pages == h.hotPages {
		return uint64(h.rng.Intn(int(h.pages))), true
	}
	off := uint64(h.rng.Intn(int(h.pages - h.hotPages)))
	return (h.hotStart + h.hotPages + off) % h.pages, false
}

// touch samples the region's distribution and issues the page touches.
// accessesPerSample weights hot-window samples; cold-tail samples carry
// a single access so a stray touch does not read as working-set
// membership to the LRU. storeFrac splits loads/stores. The hot window
// then drifts.
func (h *heapRegion) touch(os *guestos.OS, samples int, accessesPerSample uint64, storeFrac float64) error {
	for k := range h.counts {
		delete(h.counts, k)
	}
	for i := 0; i < samples; i++ {
		idx, hot := h.sample()
		vpn := h.vma.Start + guestos.VPN(idx)
		if hot {
			h.counts[vpn] += accessesPerSample
		} else {
			h.counts[vpn]++
		}
	}
	// Touch in sorted VPN order: map iteration order is randomized per
	// process, and fault order decides frame assignment — unsorted
	// iteration would make whole simulations nondeterministic.
	vpns := make([]guestos.VPN, 0, len(h.counts))
	for vpn := range h.counts {
		vpns = append(vpns, vpn)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, vpn := range vpns {
		n := h.counts[vpn]
		stores := uint64(float64(n) * storeFrac)
		if _, err := os.TouchVPN(vpn, n-stores, stores); err != nil {
			return err
		}
	}
	h.hotStart = (h.hotStart + h.drift) % h.pages
	return nil
}

// sequentialRegion drives a streaming sweep over a file-mapped VMA.
type sequentialRegion struct {
	vma    *guestos.VMA
	cursor *sim.SequentialWindow
}

func newSequentialRegion(os *guestos.OS, pages uint64, file guestos.FileID) (*sequentialRegion, error) {
	vma, err := os.AS.Mmap(pages, guestos.KindPageCache, file)
	if err != nil {
		return nil, err
	}
	return &sequentialRegion{vma: vma, cursor: sim.NewSequentialWindow(int(pages))}, nil
}

// sweep touches n consecutive mapped pages (loads only: streamed input).
func (s *sequentialRegion) sweep(os *guestos.OS, n int, accessesPerPage uint64) error {
	for i := 0; i < n; i++ {
		vpn := s.vma.Start + guestos.VPN(s.cursor.Sample())
		if _, err := os.TouchVPN(vpn, accessesPerPage, 0); err != nil {
			return err
		}
	}
	return nil
}

// touchRange re-touches n mapped pages starting at position start
// (wrapping), for re-processing phases.
func (s *sequentialRegion) touchRange(os *guestos.OS, start, n int, accessesPerPage uint64) error {
	span := int(s.vma.Pages)
	for i := 0; i < n; i++ {
		vpn := s.vma.Start + guestos.VPN((start+i)%span)
		if _, err := os.TouchVPN(vpn, accessesPerPage, 0); err != nil {
			return err
		}
	}
	return nil
}

// ByName constructs a workload by its Table 2 name.
func ByName(name string, cfg Config) (Workload, error) {
	switch name {
	case "GraphChi", "graphchi":
		return NewGraphChi(cfg), nil
	case "X-Stream", "xstream":
		return NewXStream(cfg), nil
	case "Metis", "metis":
		return NewMetis(cfg), nil
	case "LevelDB", "leveldb":
		return NewLevelDB(cfg), nil
	case "Redis", "redis":
		return NewRedis(cfg), nil
	case "Nginx", "NGinx", "nginx":
		return NewNginx(cfg), nil
	case "memlat":
		return NewMemLat(cfg, 512*MiB), nil
	case "stream":
		return NewStream(cfg, 512*MiB), nil
	case "writeheavy":
		return NewWriteHeavy(cfg, 512*MiB), nil
	default:
		return nil, fmt.Errorf("%w %q", ErrUnknownApp, name)
	}
}

// Names lists the datacenter applications in Table 2 order.
func Names() []string {
	return []string{"GraphChi", "X-Stream", "Metis", "LevelDB", "Redis", "Nginx"}
}
