package workload

import (
	"heteroos/internal/guestos"
	"heteroos/internal/sim"
)

// MemLat is the pointer-chasing latency microbenchmark of Figure 6
// ('memlat'): uniform dependent loads over a configurable working set,
// MLP 1, heap pages only. The harness derives average access latency
// from the run's memory stall time and miss count.
type MemLat struct {
	cfg      Config
	rng      *sim.RNG
	profile  Profile
	wssBytes int64

	heap  *heapRegion
	epoch int
}

// NewMemLat builds the benchmark with working set wssBytes.
func NewMemLat(cfg Config, wssBytes int64) *MemLat {
	return &MemLat{
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x6d656d6c),
		wssBytes: wssBytes,
		profile: Profile{
			Name:          "memlat",
			Description:   "pointer-chase latency microbenchmark",
			Metric:        "latency (cycles)",
			MPKI:          50, // dependent chain: nearly every access misses
			WSSBytes:      wssBytes,
			Threads:       1,
			MLP:           1,
			BytesPerMiss:  64,
			StoreMissFrac: 0,
			InstrPerEpoch: 200_000_000,
			TotalEpochs:   20,
		},
	}
}

// Profile implements Workload.
func (m *MemLat) Profile() Profile { return m.profile }

// Init implements Workload.
func (m *MemLat) Init(os *guestos.OS) error {
	pages := m.cfg.Pages(m.wssBytes)
	var err error
	// Uniform access: hot set == whole region.
	m.heap, err = newHeapRegion(os, m.rng, pages, pages, 1.0)
	return err
}

// Step implements Workload.
func (m *MemLat) Step(os *guestos.OS) (uint64, bool) {
	m.epoch++
	if err := m.heap.touch(os, touchSamples, 4, 0); err != nil {
		return 0, true
	}
	return m.profile.InstrPerEpoch, m.epoch >= m.profile.TotalEpochs
}

// Stream is the STREAM bandwidth microbenchmark of Figure 7: sequential
// high-MLP sweeps with a store per load (copy kernel), so the run is
// bandwidth-bound and the harness derives GB/s from bytes moved over
// memory time.
type Stream struct {
	cfg      Config
	rng      *sim.RNG
	profile  Profile
	wssBytes int64

	heap   *heapRegion
	cursor *sim.SequentialWindow
	epoch  int
}

// NewStream builds the benchmark with working set wssBytes.
func NewStream(cfg Config, wssBytes int64) *Stream {
	return &Stream{
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x73747265),
		wssBytes: wssBytes,
		profile: Profile{
			Name:          "stream",
			Description:   "STREAM copy bandwidth microbenchmark",
			Metric:        "bandwidth (GB/s)",
			MPKI:          60, // streaming: every line is a compulsory miss
			WSSBytes:      wssBytes,
			Threads:       8,
			MLP:           16,
			BytesPerMiss:  128, // load + writeback per copied line
			StoreMissFrac: 0.5,
			InstrPerEpoch: 400_000_000,
			TotalEpochs:   20,
		},
	}
}

// Profile implements Workload.
func (s *Stream) Profile() Profile { return s.profile }

// Init implements Workload.
func (s *Stream) Init(os *guestos.OS) error {
	pages := s.cfg.Pages(s.wssBytes)
	var err error
	s.heap, err = newHeapRegion(os, s.rng, pages, pages, 1.0)
	if err != nil {
		return err
	}
	s.cursor = sim.NewSequentialWindow(int(pages))
	return nil
}

// Step implements Workload.
func (s *Stream) Step(os *guestos.OS) (uint64, bool) {
	s.epoch++
	// Sequential sweep, one pass per epoch segment.
	n := s.cursor.Pos()
	_ = n
	sweep := touchSamples
	for i := 0; i < sweep; i++ {
		vpn := s.heap.vma.Start + guestos.VPN(s.cursor.Sample())
		if _, err := os.TouchVPN(vpn, 2, 2); err != nil {
			return 0, true
		}
	}
	return s.profile.InstrPerEpoch, s.epoch >= s.profile.TotalEpochs
}

// WriteHeavy is a store-dominated microbenchmark for the write-aware
// migration extension (Section 4.3): a hot set that mostly writes, a
// warm set that mostly reads. On NVM-class SlowMem (2-4x store
// penalty), placing the writers in FastMem matters far more than the
// readers, which is exactly what write-bit tracking detects.
type WriteHeavy struct {
	cfg      Config
	rng      *sim.RNG
	profile  Profile
	wssBytes int64

	writers *heapRegion
	readers *heapRegion
	epoch   int
}

// NewWriteHeavy builds the benchmark with working set wssBytes split
// between a write-hot and a read-hot region.
func NewWriteHeavy(cfg Config, wssBytes int64) *WriteHeavy {
	return &WriteHeavy{
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed ^ 0x77686576),
		wssBytes: wssBytes,
		profile: Profile{
			Name:          "writeheavy",
			Description:   "store-dominated microbenchmark for write-aware migration",
			Metric:        "time(sec)",
			MPKI:          30,
			WSSBytes:      wssBytes,
			Threads:       2,
			MLP:           2,
			BytesPerMiss:  32,
			StoreMissFrac: 0.55,
			InstrPerEpoch: 400_000_000,
			TotalEpochs:   60,
		},
	}
}

// Profile implements Workload.
func (w *WriteHeavy) Profile() Profile { return w.profile }

// Init implements Workload.
func (w *WriteHeavy) Init(os *guestos.OS) error {
	half := w.cfg.Pages(w.wssBytes) / 2
	var err error
	w.writers, err = newHeapRegion(os, w.rng, half*2, half, 0.95)
	if err != nil {
		return err
	}
	w.readers, err = newHeapRegion(os, w.rng, half*2, half, 0.95)
	return err
}

// Step implements Workload.
func (w *WriteHeavy) Step(os *guestos.OS) (uint64, bool) {
	w.epoch++
	// Writers: almost every access is a store.
	if err := w.writers.touch(os, touchSamples/2, 4, 0.9); err != nil {
		return 0, true
	}
	// Readers: loads only, same reference rate.
	if err := w.readers.touch(os, touchSamples/2, 4, 0); err != nil {
		return 0, true
	}
	return w.profile.InstrPerEpoch, w.epoch >= w.profile.TotalEpochs
}
