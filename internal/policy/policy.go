// Package policy catalogs the memory-management mechanisms the paper
// evaluates: the two baselines (SlowMem-only, FastMem-only), the
// heterogeneity-unaware strawmen (Random, NUMA-preferred), the
// incremental HeteroOS mechanisms of Table 5 (Heap-OD, Heap-IO-Slab-OD,
// HeteroOS-LRU, HeteroOS-coordinated), and the state-of-the-art
// VMM-exclusive (HeteroVisor) comparison.
//
// A Mode is pure configuration; the behaviour lives in internal/guestos
// (placement, LRU) and internal/vmm (tracking, migration, sharing).
package policy

import (
	"errors"
	"fmt"

	"heteroos/internal/guestos"
)

// ErrUnknownMode is returned (wrapped) by ByName for names outside the
// mode catalog; match it with errors.Is.
var ErrUnknownMode = errors.New("policy: unknown mode")

// MigrationMode selects who (if anyone) migrates pages at runtime.
type MigrationMode int

const (
	// MigrateNone: placement only.
	MigrateNone MigrationMode = iota
	// MigrateVMMExclusive: the VMM tracks the whole guest and migrates
	// backing frames transparently (HeteroVisor).
	MigrateVMMExclusive
	// MigrateCoordinated: the guest exports a tracking list, the VMM
	// scans it, and the guest performs validated migrations.
	MigrateCoordinated
)

// String names the migration mode.
func (m MigrationMode) String() string {
	switch m {
	case MigrateNone:
		return "none"
	case MigrateVMMExclusive:
		return "VMM-exclusive"
	case MigrateCoordinated:
		return "coordinated"
	default:
		return fmt.Sprintf("MigrationMode(%d)", int(m))
	}
}

// Mode is a complete, named mechanism configuration.
type Mode struct {
	Name        string
	Description string
	// GuestAware: expose per-type NUMA nodes to the guest.
	GuestAware bool
	// Placement is the guest-side policy knob set.
	Placement guestos.PlacementConfig
	// Migration selects the runtime migration machinery.
	Migration MigrationMode
	// AdaptiveInterval enables Equation 1's LLC-miss-driven scan
	// interval (the "architectural hints" of HeteroOS-coordinated).
	AdaptiveInterval bool
	// NoFastMem forces the VM to run entirely from SlowMem (baseline 1).
	NoFastMem bool
	// AllFastMem gives the VM unlimited FastMem (baseline 2).
	AllFastMem bool
	// WriteAwareMigration enables Section 4.3's extension: the tracker
	// also scans the write (PAGE_RW) bit and the migrator prioritises
	// store-heavy pages into FastMem, because NVM-class SlowMem punishes
	// writes 2-4x more than reads.
	WriteAwareMigration bool
	// BareMetal models Section 4.3's non-virtualized deployment: "most
	// of the placement and management is done at the OS ... it can be
	// easily applied to non-virtualized systems by just moving the page
	// hotness-tracking and DRF into the OS." The same mechanisms run,
	// minus virtualization overheads (balloon hypercalls, nested-paging
	// scan cost).
	BareMetal bool
}

func fastKinds(kinds ...guestos.PageKind) [guestos.NumKinds]bool {
	var out [guestos.NumKinds]bool
	for _, k := range kinds {
		out[k] = true
	}
	return out
}

// SlowMemOnly is the naive baseline: every page lives in SlowMem.
func SlowMemOnly() Mode {
	return Mode{
		Name:        "SlowMem-only",
		Description: "naive approach always using slow memory",
		GuestAware:  true,
		NoFastMem:   true,
		Placement:   guestos.PlacementConfig{Name: "SlowMem-only", OnDemand: true},
	}
}

// FastMemOnly is the ideal baseline: unlimited FastMem.
func FastMemOnly() Mode {
	return Mode{
		Name:        "FastMem-only",
		Description: "ideal approach with unlimited fast memory",
		GuestAware:  true,
		AllFastMem:  true,
		Placement: guestos.PlacementConfig{
			Name: "FastMem-only", OnDemand: true,
			FastKinds: fastKinds(guestos.KindAnon, guestos.KindPageCache,
				guestos.KindNetBuf, guestos.KindSlab, guestos.KindPageTable, guestos.KindDMA),
		},
	}
}

// Random places each allocation on a uniformly random tier, with the
// FastMem share reserved at boot (Figure 6's heterogeneity-unaware
// strawman).
func Random() Mode {
	return Mode{
		Name:        "Random",
		Description: "random placement without heterogeneity awareness",
		GuestAware:  true,
		Placement:   guestos.PlacementConfig{Name: "Random", Random: true, OnDemand: true},
	}
}

// NUMAPreferred is Linux's preferred-node policy over fake-NUMA nodes:
// everything tries FastMem first, no demand awareness, no reclaim
// (Figure 9's NUMA-preferred comparison).
func NUMAPreferred() Mode {
	return Mode{
		Name:        "NUMA-preferred",
		Description: "existing Linux preferred-node NUMA policy",
		GuestAware:  true,
		Placement:   guestos.PlacementConfig{Name: "NUMA-preferred", NUMAPreferred: true, OnDemand: true},
	}
}

// HeapOD prioritises only the heap into FastMem with on-demand
// allocation (Table 5 row 1).
func HeapOD() Mode {
	return Mode{
		Name:        "Heap-OD",
		Description: "on-demand heap allocation",
		GuestAware:  true,
		Placement: guestos.PlacementConfig{
			Name: "Heap-OD", OnDemand: true,
			FastKinds: fastKinds(guestos.KindAnon),
		},
	}
}

// HeapIOSlabOD adds I/O page-cache and slab allocations to the FastMem
// set (Table 5 row 2).
func HeapIOSlabOD() Mode {
	return Mode{
		Name:        "Heap-IO-Slab-OD",
		Description: "Heap-OD + IO page cache allocation + slab allocation",
		GuestAware:  true,
		Placement: guestos.PlacementConfig{
			Name: "Heap-IO-Slab-OD", OnDemand: true,
			FastKinds: fastKinds(guestos.KindAnon, guestos.KindPageCache,
				guestos.KindNetBuf, guestos.KindSlab),
		},
	}
}

// HeteroOSLRU adds the HeteroOS-LRU contention resolution (Table 5
// row 3).
func HeteroOSLRU() Mode {
	m := HeapIOSlabOD()
	m.Name = "HeteroOS-LRU"
	m.Description = "Heap-IO-Slab-OD + HeteroOS-LRU"
	m.Placement.Name = "HeteroOS-LRU"
	m.Placement.HeteroLRU = true
	return m
}

// VMMExclusive is the HeteroVisor baseline: heterogeneity hidden from
// the guest; the VMM tracks hotness over the whole VM and migrates.
func VMMExclusive() Mode {
	return Mode{
		Name:        "VMM-exclusive",
		Description: "guest-transparent hotness tracking and migration in the VMM (HeteroVisor)",
		GuestAware:  false,
		Placement:   guestos.PlacementConfig{Name: "VMM-exclusive", OnDemand: true},
		Migration:   MigrateVMMExclusive,
	}
}

// HeteroOSCoordinated is the full system (Table 5 row 4): HeteroOS-LRU
// plus OS-guided VMM hotness tracking with architectural hints.
func HeteroOSCoordinated() Mode {
	m := HeteroOSLRU()
	m.Name = "HeteroOS-coordinated"
	m.Description = "HeteroOS-LRU + OS-guided hotness-tracking + architecture hints"
	m.Placement.Name = "HeteroOS-coordinated"
	m.Migration = MigrateCoordinated
	m.AdaptiveInterval = true
	return m
}

// HeteroOSCoordinatedNVM is the Section 4.3 write-aware extension on
// top of the full coordinated system, for NVM-class SlowMem whose
// stores cost several times its loads.
func HeteroOSCoordinatedNVM() Mode {
	m := HeteroOSCoordinated()
	m.Name = "HeteroOS-coordinated-NVM"
	m.Description = "HeteroOS-coordinated + write-bit tracking for asymmetric (NVM) SlowMem"
	m.WriteAwareMigration = true
	return m
}

// HeteroOSBareMetal runs the full HeteroOS stack on a non-virtualized
// host (Section 4.3): identical placement, tracking and migration, with
// the hypervisor boundary's costs removed.
func HeteroOSBareMetal() Mode {
	m := HeteroOSCoordinated()
	m.Name = "HeteroOS-baremetal"
	m.Description = "HeteroOS on a non-virtualized host: tracking and sharing moved into the OS"
	m.BareMetal = true
	return m
}

// All returns every mode in presentation order.
func All() []Mode {
	return []Mode{
		SlowMemOnly(), FastMemOnly(), Random(), NUMAPreferred(),
		HeapOD(), HeapIOSlabOD(), HeteroOSLRU(),
		VMMExclusive(), HeteroOSCoordinated(), HeteroOSCoordinatedNVM(),
		HeteroOSBareMetal(),
	}
}

// ByName looks a mode up by its Table 5 / baseline name. Unknown names
// return an error wrapping ErrUnknownMode, mirroring workload.ByName.
func ByName(name string) (Mode, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return Mode{}, fmt.Errorf("%w %q", ErrUnknownMode, name)
}

// Table5 returns the paper's incremental-mechanism rows in order.
func Table5() []Mode {
	return []Mode{HeapOD(), HeapIOSlabOD(), HeteroOSLRU(), HeteroOSCoordinated()}
}
