package policy

import (
	"errors"
	"testing"

	"heteroos/internal/guestos"
)

func TestAllModesDistinctAndNamed(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range All() {
		if m.Name == "" || m.Description == "" {
			t.Errorf("mode %+v missing name/description", m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate mode name %q", m.Name)
		}
		seen[m.Name] = true
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 modes, got %d", len(seen))
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name)
		if err != nil || got.Name != m.Name {
			t.Errorf("ByName(%q) failed: %v", m.Name, err)
		}
	}
	_, err := ByName("bogus")
	if err == nil {
		t.Error("bogus name resolved")
	}
	if !errors.Is(err, ErrUnknownMode) {
		t.Errorf("error %v does not wrap ErrUnknownMode", err)
	}
}

func TestTable5Order(t *testing.T) {
	rows := Table5()
	want := []string{"Heap-OD", "Heap-IO-Slab-OD", "HeteroOS-LRU", "HeteroOS-coordinated"}
	if len(rows) != len(want) {
		t.Fatalf("Table5 has %d rows", len(rows))
	}
	for i, w := range want {
		if rows[i].Name != w {
			t.Errorf("row %d = %q, want %q", i, rows[i].Name, w)
		}
	}
}

func TestIncrementalMechanismsBuild(t *testing.T) {
	// Each Table 5 row strictly adds capability to the previous one.
	heap := HeapOD()
	if !heap.Placement.FastKinds[guestos.KindAnon] || heap.Placement.FastKinds[guestos.KindPageCache] {
		t.Error("Heap-OD should prioritise only the heap")
	}
	his := HeapIOSlabOD()
	for _, k := range []guestos.PageKind{guestos.KindAnon, guestos.KindPageCache, guestos.KindNetBuf, guestos.KindSlab} {
		if !his.Placement.FastKinds[k] {
			t.Errorf("Heap-IO-Slab-OD missing kind %v", k)
		}
	}
	if his.Placement.HeteroLRU {
		t.Error("Heap-IO-Slab-OD must not enable HeteroOS-LRU")
	}
	lru := HeteroOSLRU()
	if !lru.Placement.HeteroLRU || lru.Migration != MigrateNone {
		t.Error("HeteroOS-LRU should add eager reclaim but no migration machinery")
	}
	coord := HeteroOSCoordinated()
	if !coord.Placement.HeteroLRU || coord.Migration != MigrateCoordinated || !coord.AdaptiveInterval {
		t.Error("coordinated should stack LRU + coordinated migration + Equation 1")
	}
}

func TestBaselines(t *testing.T) {
	if m := SlowMemOnly(); !m.NoFastMem || m.AllFastMem {
		t.Error("SlowMem-only flags wrong")
	}
	if m := FastMemOnly(); !m.AllFastMem || m.NoFastMem {
		t.Error("FastMem-only flags wrong")
	}
	if m := Random(); !m.Placement.Random {
		t.Error("Random flag missing")
	}
	if m := NUMAPreferred(); !m.Placement.NUMAPreferred {
		t.Error("NUMA-preferred flag missing")
	}
	if m := VMMExclusive(); m.GuestAware || m.Migration != MigrateVMMExclusive {
		t.Error("VMM-exclusive must be guest-transparent with VMM migration")
	}
}

func TestWriteAwareExtension(t *testing.T) {
	m := HeteroOSCoordinatedNVM()
	if !m.WriteAwareMigration || m.Migration != MigrateCoordinated || !m.Placement.HeteroLRU {
		t.Fatal("NVM mode must stack write awareness on the full coordinated system")
	}
	if HeteroOSCoordinated().WriteAwareMigration {
		t.Fatal("base coordinated mode must not track writes")
	}
}

func TestBareMetalMode(t *testing.T) {
	m := HeteroOSBareMetal()
	if !m.BareMetal || m.Migration != MigrateCoordinated || !m.Placement.HeteroLRU {
		t.Fatal("bare-metal must run the full coordinated stack")
	}
	if HeteroOSCoordinated().BareMetal {
		t.Fatal("virtualized mode must not claim bare metal")
	}
}

func TestMigrationModeString(t *testing.T) {
	if MigrateNone.String() != "none" ||
		MigrateVMMExclusive.String() != "VMM-exclusive" ||
		MigrateCoordinated.String() != "coordinated" {
		t.Error("migration mode names wrong")
	}
	if MigrationMode(42).String() == "" {
		t.Error("unknown mode should render")
	}
}
