package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"heteroos/internal/obs"
)

// eventStream runs a bundled scenario with observability attached and
// returns the JSONL event stream as a string.
func eventStream(t *testing.T, name string) (*Result, string) {
	t.Helper()
	sc, err := LoadBundled(name)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	h := obs.New()
	h.SetRunTag(sc.Name)
	h.Tracer.AddSink(obs.NewJSONLSink(&buf, sc.Name))
	r, err := sc.Run(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	return r, buf.String()
}

// TestLifecycleEventsObservable checks that VM arrival and departure in
// the churn scenario emit typed lifecycle events, and that the surge
// fault's start/clear window shows up in the stream.
func TestLifecycleEventsObservable(t *testing.T) {
	_, stream := eventStream(t, "churn.json")
	for _, want := range []string{
		`"vm-boot"`, `"vm-shutdown"`, `"fault-inject"`,
	} {
		if !strings.Contains(stream, want) {
			t.Errorf("event stream lacks %s", want)
		}
	}
	// The surge window emits a start/clear pair of fault-inject events.
	if n := strings.Count(stream, `"fault-inject"`); n < 2 {
		t.Errorf("fault-inject events = %d, want start and clear", n)
	}
	// Two boots are scripted (VMs 3 and 4); four shutdowns.
	if n := strings.Count(stream, `"vm-boot"`); n != 2 {
		t.Errorf("vm-boot events = %d, want 2", n)
	}
	if n := strings.Count(stream, `"vm-shutdown"`); n != 4 {
		t.Errorf("vm-shutdown events = %d, want 4", n)
	}
}

// TestFaultsObservableAndRecovered checks each degrade fault: every
// injection emits a typed event, visibly perturbs the run, and the
// system recovers after the window closes.
func TestFaultsObservableAndRecovered(t *testing.T) {
	r, stream := eventStream(t, "degrade.json")
	for _, want := range []string{
		`"fault-inject"`, `"migration-stall"`, `"balloon-refused"`,
	} {
		if !strings.Contains(stream, want) {
			t.Errorf("event stream lacks %s", want)
		}
	}

	// Migration stall: VM 1's scanner skipped passes and retried on the
	// bounded backoff schedule, yet still made migration progress after
	// the window cleared (recovery).
	vm1 := r.VMs[0].Res
	if vm1.MigrationStalledPasses == 0 {
		t.Error("stall window recorded no stalled passes")
	}
	if vm1.MigrationStallRetries == 0 {
		t.Error("stall window recorded no retries")
	}
	if vm1.Promotions == 0 {
		t.Error("VM 1 never migrated — did not recover from the stall")
	}

	// Balloon refusal: VM 2's populate requests were refused during the
	// window and the shortfall was accounted, not silently dropped.
	vm2 := r.VMs[1].Res
	if vm2.BalloonRefusedPages == 0 {
		t.Error("refusal window recorded no refused pages")
	}
	if vm2.BalloonPagesIn == 0 {
		t.Error("VM 2 never ballooned — refusal window should not be total")
	}

	// Recovery: the refusal burst is confined to its window — the last
	// timeline sample shows no ongoing refusals.
	last := r.Timeline[len(r.Timeline)-1]
	if last.BalloonRefused != 0 {
		t.Errorf("refusals still accumulating at the end: %d", last.BalloonRefused)
	}
	// And a perturbation is visible somewhere in the timeline.
	var seenRefuse bool
	for _, s := range r.Timeline {
		if s.BalloonRefused > 0 {
			seenRefuse = true
		}
	}
	if !seenRefuse {
		t.Error("timeline never shows the refusal perturbation")
	}

	// Both workloads ran to completion despite the faults.
	for _, v := range r.VMs {
		if !v.Completed {
			t.Errorf("VM %d did not complete under faults", v.ID)
		}
	}
}

// TestMigrationStallBoundedRetry pins the retry/backoff contract: a
// stalled window consumes scan passes without deadlock, and the retry
// count stays a small fraction of the stalled passes.
func TestMigrationStallBoundedRetry(t *testing.T) {
	sc := contended("stall", 13).MigrationStallAt(1, 1, 4)
	r, err := sc.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res := r.VMs[0].Res
	if res.MigrationStalledPasses == 0 {
		t.Fatal("no stalled passes recorded")
	}
	if res.MigrationStallRetries == 0 {
		t.Fatal("no retries recorded — backoff never probed")
	}
	if res.MigrationStallRetries >= res.MigrationStalledPasses {
		t.Fatalf("retries %d not a strict subset of stalled passes %d — backoff is not bounding",
			res.MigrationStallRetries, res.MigrationStalledPasses)
	}
	// No deadlock: the stalled VM still finishes its workload, and the
	// scan machinery keeps consuming its debt through the window.
	if !r.VMs[0].Completed {
		t.Fatal("stalled VM never completed — stall deadlocked the scanner")
	}
}
