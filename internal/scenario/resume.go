// Checkpoint/resume for scenario runs. The scenario engine stores its
// own position — script cursor, epoch, timeline, per-VM run records —
// as the snapshot's front-end meta blob; the core system state rides
// in the snapshot sections proper. Resume rebuilds the engine from the
// meta, the system from the sections, and re-enters the shared epoch
// loop; everything the remaining epochs produce (figure output, JSONL
// events, VMResults) is byte-identical to the uninterrupted run.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"heteroos/internal/core"
	"heteroos/internal/obs"
	"heteroos/internal/snapshot"
	"heteroos/internal/vmm"
)

// metaKind tags scenario checkpoints so a snapshot written by another
// front-end fails fast instead of half-restoring.
const metaKind = "heteroos/scenario"

// resumeMeta is the scenario engine's checkpoint state, serialized as
// the snapshot's front-end meta blob.
type resumeMeta struct {
	Kind string `json:"kind"`
	// Scenario is the full script, embedded so a checkpoint file is
	// self-contained (resume needs no scenario file).
	Scenario *Scenario `json:"scenario"`
	// Epoch is the lockstep epoch the resumed loop re-enters at.
	Epoch int `json:"epoch"`
	// Consumed is how many expanded script actions were already applied.
	Consumed int `json:"consumed"`
	// Fired marks Epoch as an event epoch (a checkpoint event fired
	// mid-epoch before the snapshot was taken).
	Fired bool `json:"fired"`
	// Runs, Timeline, and the delta cursors reproduce the engine's
	// sampling state exactly.
	Runs        []*VMRun `json:"runs"`
	Timeline    []Sample `json:"timeline,omitempty"`
	PrevMove    uint64   `json:"prev_move"`
	PrevBallIn  uint64   `json:"prev_ball_in"`
	PrevRefuse  uint64   `json:"prev_refuse"`
	LastSampled int      `json:"last_sampled"`
}

// writeCheckpoint snapshots the engine and the system to path. The
// write is atomic (temp file + rename) so a crash mid-write never
// leaves a truncated checkpoint behind.
func (st *runState) writeCheckpoint(path string, nextEpoch int, fired bool) error {
	meta := resumeMeta{
		Kind:        metaKind,
		Scenario:    st.sc,
		Epoch:       nextEpoch,
		Consumed:    st.consumed,
		Fired:       fired,
		Runs:        st.runs,
		Timeline:    st.timeline,
		PrevMove:    st.prevMove,
		PrevBallIn:  st.prevBallIn,
		PrevRefuse:  st.prevRefuse,
		LastSampled: st.lastSampled,
	}
	blob, err := json.Marshal(&meta)
	if err != nil {
		return fmt.Errorf("checkpoint meta: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := st.sys.Checkpoint(f, blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// vmDescByID finds the VMDesc that introduced a VM id, searching the
// epoch-0 set then the script's boot events.
func (sc *Scenario) vmDescByID(id int32) *VMDesc {
	for i := range sc.VMs {
		if sc.VMs[i].ID == id {
			return &sc.VMs[i]
		}
	}
	for i := range sc.Events {
		if e := &sc.Events[i]; e.Kind == KindBoot && e.Boot != nil && e.Boot.ID == id {
			return e.Boot
		}
	}
	return nil
}

// Resume continues a checkpointed scenario run from rd. The checkpoint
// is self-contained — the scenario script rides in the meta blob — so
// the only inputs are the snapshot and the run-time attachments (obs
// handle, further checkpoint options). The remaining epochs execute
// exactly as the uninterrupted run's would; the returned Result is
// identical to what the original Run would have returned.
func Resume(ctx context.Context, rd *snapshot.Reader, h *obs.Obs, ck CheckpointOptions) (*Result, error) {
	blob, err := core.Meta(rd)
	if err != nil {
		return nil, fmt.Errorf("scenario: resume: %w", err)
	}
	var meta resumeMeta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("scenario: resume: decoding meta: %w", err)
	}
	if meta.Kind != metaKind {
		return nil, fmt.Errorf("scenario: resume: snapshot meta kind %q is not a scenario checkpoint", meta.Kind)
	}
	sc := meta.Scenario
	if sc == nil {
		return nil, fmt.Errorf("scenario: resume: checkpoint carries no scenario")
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: resume: %w", err)
	}
	if ck.Every > 0 && ck.Path == "" {
		return nil, fmt.Errorf("scenario %q: periodic checkpoints need a path", sc.Name)
	}
	st := &runState{
		sc: sc, wraps: make(map[vmm.VMID]*surgeWorkload),
		runs: meta.Runs, timeline: meta.Timeline,
		prevMove: meta.PrevMove, prevBallIn: meta.PrevBallIn, prevRefuse: meta.PrevRefuse,
		lastSampled: meta.LastSampled, consumed: meta.Consumed, ck: ck,
	}
	cfg, err := sc.baseConfig(h)
	if err != nil {
		return nil, err
	}
	// The restored system boots exactly the VMs live at checkpoint
	// time, in boot order (runs is boot-ordered; departed VMs come back
	// as result-only stubs from the snapshot's departed section).
	for _, r := range st.runs {
		if r.ShutdownEpoch >= 0 {
			continue
		}
		v := sc.vmDescByID(int32(r.ID))
		if v == nil {
			return nil, fmt.Errorf("scenario: resume: checkpointed VM %d not in script", r.ID)
		}
		vc, err := st.vmConfig(v)
		if err != nil {
			return nil, err
		}
		cfg.VMs = append(cfg.VMs, vc)
	}
	sys, err := core.RestoreSystem(rd, cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: resume: %w", err)
	}
	st.sys = sys

	actions := expandActions(sc.Events)
	if meta.Consumed < 0 || meta.Consumed > len(actions) {
		return nil, fmt.Errorf("scenario: resume: checkpoint consumed %d of %d script actions", meta.Consumed, len(actions))
	}
	return st.loop(ctx, meta.Epoch, actions[meta.Consumed:], meta.Fired)
}

// ResumeFile opens a checkpoint file and resumes it.
func ResumeFile(ctx context.Context, path string, h *obs.Obs, ck CheckpointOptions) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: resume: %w", err)
	}
	defer f.Close()
	rd, err := snapshot.Open(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: resume %s: %w", path, err)
	}
	return Resume(ctx, rd, h, ck)
}
