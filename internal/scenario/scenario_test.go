package scenario

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"heteroos/internal/memsim"
)

// contended builds a 3-VM scenario whose FastMem demand exceeds the
// machine (3 x 1024 span over 2048 frames) — the shape where DRF
// arbitration and mid-run departures actually move shares around.
func contended(name string, seed uint64) *Scenario {
	sc := New(name, seed).WithMachine(2048, 16384).WithShare("drf").WithMaxEpochs(40)
	for id := int32(1); id <= 3; id++ {
		sc.StartVM(VMDesc{
			ID: id, App: "memlat", Mode: "HeteroOS-coordinated",
			FastPages: 1024, SlowPages: 4096,
			BootFastPages: 256, BootSlowPages: 2048,
		})
	}
	return sc
}

func TestValidateRejections(t *testing.T) {
	base := func() *Scenario {
		sc := New("v", 1).WithMachine(4096, 4096)
		sc.StartVM(VMDesc{ID: 1, App: "memlat", Mode: "HeteroOS-coordinated", FastPages: 512, SlowPages: 512})
		return sc
	}
	cases := []struct {
		name  string
		build func() *Scenario
	}{
		{"zero machine", func() *Scenario {
			sc := base()
			sc.FastFrames, sc.SlowFrames = 0, 0
			return sc
		}},
		{"unknown share", func() *Scenario { return base().WithShare("fifo") }},
		{"no epoch-0 VMs", func() *Scenario {
			sc := base()
			sc.VMs = nil
			return sc
		}},
		{"unknown app", func() *Scenario {
			sc := base()
			sc.VMs[0].App = "fortran"
			return sc
		}},
		{"unknown mode", func() *Scenario {
			sc := base()
			sc.VMs[0].Mode = "psychic"
			return sc
		}},
		{"duplicate id", func() *Scenario {
			sc := base()
			return sc.StartVM(sc.VMs[0])
		}},
		{"reused id after shutdown", func() *Scenario {
			sc := base().ShutdownAt(4, 1)
			return sc.BootAt(8, sc.VMs[0])
		}},
		{"event targets unknown VM", func() *Scenario { return base().ShutdownAt(4, 9) }},
		{"boot without description", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: 2, Kind: KindBoot})
			return sc
		}},
		{"throttle shift without point", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: 2, Kind: KindThrottleShift})
			return sc
		}},
		{"unknown kind", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: 2, Kind: "meteor"})
			return sc
		}},
		{"negative epoch", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: -1, Kind: KindShutdown, VM: 1})
			return sc
		}},
		{"negative duration", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: 2, Kind: KindSurge, VM: 1, Duration: -3})
			return sc
		}},
		{"negative factor", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: 2, Kind: KindSurge, VM: 1, Factor: -2})
			return sc
		}},
		{"zero memory span", func() *Scenario {
			sc := base()
			sc.VMs[0].FastPages, sc.VMs[0].SlowPages = 0, 0
			return sc
		}},
		{"non-positive VM id", func() *Scenario {
			sc := base()
			sc.VMs[0].ID = 0
			return sc
		}},
		{"unknown backend", func() *Scenario { return base().WithBackend("quantum") }},
		{"checkpoint without path", func() *Scenario {
			sc := base()
			sc.Events = append(sc.Events, Event{At: 2, Kind: KindCheckpoint})
			return sc
		}},
		{"surge before any boot of target", func() *Scenario {
			// VM 7 is only ever introduced by a boot event; a fault
			// event may still target it (it fires later), but a target
			// the script never introduces at all must be rejected.
			return base().SurgeAt(2, 7, 4, 2)
		}},
	}
	for _, tc := range cases {
		if err := tc.build().Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestBundledScenariosLoad(t *testing.T) {
	names := Bundled()
	if len(names) < 2 {
		t.Fatalf("bundled scenarios = %v, want churn.json and degrade.json", names)
	}
	for _, name := range names {
		if _, err := LoadBundled(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := LoadBundled("nonexistent.json"); err == nil {
		t.Error("loading a nonexistent bundled scenario succeeded")
	}
	// A path that does not exist on disk falls back to the bundled set.
	if _, err := LoadFile("/no/such/dir/churn.json"); err != nil {
		t.Errorf("bundled fallback failed: %v", err)
	}
}

// TestLoadFile pins the fallback contract: only a path that does not
// exist may fall back to the bundled scenario of the same base name;
// every other failure — unparseable JSON, unreadable path — must
// surface as a real error even when a bundled name matches.
func TestLoadFile(t *testing.T) {
	dir := t.TempDir()

	// Present but invalid JSON: a parse error, never the bundled copy.
	bad := filepath.Join(dir, "churn.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Error("invalid JSON masked by the bundled fallback")
	}

	// Missing file with a non-bundled base name: plain not-exist error.
	if _, err := LoadFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("loading a missing, non-bundled scenario succeeded")
	} else if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing file error lost its not-exist cause: %v", err)
	}

	// Missing file whose base name is bundled: the fallback.
	sc, err := LoadFile(filepath.Join(dir, "nope", "churn.json"))
	if err != nil {
		t.Fatalf("bundled fallback failed: %v", err)
	}
	if sc.Name == "" {
		t.Error("bundled fallback returned an unnamed scenario")
	}

	// A directory named like a bundled scenario: reading it fails with
	// something other than not-exist, so no fallback — the caller gets
	// the real error.
	dirPath := filepath.Join(dir, "degrade.json")
	if err := os.Mkdir(dirPath, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(dirPath); err == nil {
		t.Error("directory path masked by the bundled fallback")
	} else if errors.Is(err, fs.ErrNotExist) {
		t.Errorf("directory read reported not-exist: %v", err)
	}
}

// TestChurnScenario runs the bundled churn scenario end to end: four
// VMs arrive and depart on schedule, the surge perturbs its target, and
// no invariant violation occurs at any departure.
func TestChurnScenario(t *testing.T) {
	sc, err := LoadBundled("churn.json")
	if err != nil {
		t.Fatal(err)
	}
	r, err := sc.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.VMs) != 4 {
		t.Fatalf("VM count = %d, want 4", len(r.VMs))
	}
	wantBoot := map[int32]int{1: 0, 2: 0, 3: 8, 4: 16}
	wantDown := map[int32]int{1: 14, 2: 26, 3: 32, 4: 56}
	for _, v := range r.VMs {
		if v.BootEpoch != wantBoot[int32(v.ID)] {
			t.Errorf("VM %d boot epoch = %d, want %d", v.ID, v.BootEpoch, wantBoot[int32(v.ID)])
		}
		if v.ShutdownEpoch != wantDown[int32(v.ID)] {
			t.Errorf("VM %d shutdown epoch = %d, want %d", v.ID, v.ShutdownEpoch, wantDown[int32(v.ID)])
		}
	}
	// VM 1 is shut down mid-workload; VMs 2 and 3 run to completion.
	if r.VMs[0].Completed {
		t.Error("VM 1 completed despite mid-workload shutdown")
	}
	if !r.VMs[1].Completed || !r.VMs[2].Completed {
		t.Error("VM 2/3 did not complete")
	}
	// The tables must render every VM and sample.
	if got := r.Table().Rows(); got != 4 {
		t.Errorf("table rows = %d, want 4", got)
	}
	if got := r.TimelineTable().Rows(); got != len(r.Timeline) {
		t.Errorf("timeline rows = %d, want %d", got, len(r.Timeline))
	}
}

// TestDRFReconvergence is the share-policy regression for dynamic
// membership: under FastMem contention three VMs hold unequal dominant
// shares; when one departs mid-run the survivors must absorb the freed
// frames and re-converge to equal shares within a few epochs.
func TestDRFReconvergence(t *testing.T) {
	const departAt = 3
	const K = 4 // re-convergence budget in epochs
	sc := contended("reconverge", 3).ShutdownAt(departAt, 3)
	sc.SampleEvery = 1
	r, err := sc.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	byEpoch := make(map[int]*Sample)
	for i := range r.Timeline {
		byEpoch[r.Timeline[i].Epoch] = &r.Timeline[i]
	}
	pre := byEpoch[departAt-1]
	if pre == nil || len(pre.Shares) != 3 {
		t.Fatalf("pre-departure sample missing or malformed: %+v", pre)
	}
	var preMax float64
	for _, sh := range pre.Shares {
		if sh.Share <= 0 || sh.Share > 1 {
			t.Fatalf("pre-departure share out of range: %+v", sh)
		}
		if sh.Share > preMax {
			preMax = sh.Share
		}
	}
	// Within K epochs of the departure the survivors' shares must be
	// equal, and no survivor may have lost ground.
	s := byEpoch[departAt+K]
	if s == nil || len(s.Shares) != 2 {
		t.Fatalf("post-departure sample missing or malformed: %+v", s)
	}
	if gap := s.Shares[0].Share - s.Shares[1].Share; gap > 1e-9 || gap < -1e-9 {
		t.Errorf("shares did not re-converge within %d epochs: %+v", K, s.Shares)
	}
	for _, sh := range s.Shares {
		if sh.Share < preMax {
			t.Errorf("survivor VM %d share %.4f below pre-departure max %.4f", sh.ID, sh.Share, preMax)
		}
	}
	// The freed frames must be redeployed, not stranded.
	if s.FastFree != 0 {
		t.Errorf("FastMem free = %d after re-convergence, want 0 (frames redeployed)", s.FastFree)
	}
}

// TestSurgePerturbsTimeline checks that a surge window visibly changes
// the target VM's outcome versus the same scenario without the surge.
func TestSurgePerturbsTimeline(t *testing.T) {
	run := func(surge bool) *Result {
		sc := New("surge", 9).WithMachine(8192, 16384).WithShare("drf").WithMaxEpochs(64)
		sc.StartVM(VMDesc{ID: 1, App: "stream", Mode: "HeteroOS-coordinated", FastPages: 2048, SlowPages: 4096})
		sc.StartVM(VMDesc{ID: 2, App: "stream", Mode: "HeteroOS-coordinated", FastPages: 2048, SlowPages: 4096})
		if surge {
			sc.SurgeAt(2, 2, 6, 3)
		}
		r, err := sc.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	with, without := run(true), run(false)
	// The surged VM burns through its workload in fewer epochs.
	if with.VMs[1].Res.Epochs >= without.VMs[1].Res.Epochs {
		t.Errorf("surge did not shorten VM 2: %d vs %d epochs",
			with.VMs[1].Res.Epochs, without.VMs[1].Res.Epochs)
	}
	if !with.VMs[1].Completed {
		t.Error("surged VM did not complete")
	}
	// The unsurged control VM is untouched in both runs.
	if with.VMs[0].Res.Instr != without.VMs[0].Res.Instr {
		t.Errorf("control VM perturbed: %d vs %d instructions",
			with.VMs[0].Res.Instr, without.VMs[0].Res.Instr)
	}
}

// TestThrottleShiftPerturbs checks that a mid-run SlowMem throttle
// worsening slows the run down versus the unshifted control.
func TestThrottleShiftPerturbs(t *testing.T) {
	run := func(shift bool) *Result {
		sc := New("shift", 5).WithMachine(2048, 16384).WithShare("drf").WithMaxEpochs(40).
			WithSlowThrottle(memsim.Throttle{L: 2, B: 2})
		sc.StartVM(VMDesc{
			ID: 1, App: "memlat", Mode: "HeteroOS-coordinated",
			FastPages: 1024, SlowPages: 4096,
			BootFastPages: 256, BootSlowPages: 2048,
		})
		if shift {
			sc.ThrottleShiftAt(4, memsim.Throttle{L: 5, B: 9})
		}
		r, err := sc.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	with, without := run(true), run(false)
	if with.VMs[0].Res.SimTime <= without.VMs[0].Res.SimTime {
		t.Errorf("throttle worsening did not slow the run: %v vs %v",
			with.VMs[0].Res.SimTime, without.VMs[0].Res.SimTime)
	}
}
