package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"heteroos/internal/obs"
	"heteroos/internal/runner"
)

// capture runs a scenario with a JSONL event sink attached and returns
// the marshalled result and the raw event stream.
func capture(t *testing.T, sc *Scenario) (resultJSON, events []byte) {
	t.Helper()
	var buf bytes.Buffer
	h := obs.New()
	h.SetRunTag(sc.Name)
	h.Tracer.AddSink(obs.NewJSONLSink(&buf, sc.Name))
	r, err := sc.Run(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out, buf.Bytes()
}

// TestGoldenDeterminism is the determinism contract's enforcement: the
// same scenario with the same seed must produce byte-identical results
// AND a byte-identical observability event stream, run to run.
func TestGoldenDeterminism(t *testing.T) {
	for _, name := range Bundled() {
		name := name
		t.Run(name, func(t *testing.T) {
			first, err := LoadBundled(name)
			if err != nil {
				t.Fatal(err)
			}
			second, err := LoadBundled(name)
			if err != nil {
				t.Fatal(err)
			}
			res1, ev1 := capture(t, first)
			res2, ev2 := capture(t, second)
			if !bytes.Equal(res1, res2) {
				t.Errorf("results differ across identical runs:\n%s\nvs\n%s", res1, res2)
			}
			if !bytes.Equal(ev1, ev2) {
				t.Errorf("event streams differ across identical runs (%d vs %d bytes)", len(ev1), len(ev2))
			}
			if len(ev1) == 0 {
				t.Error("no events captured")
			}
		})
	}
}

// TestWorkerCountInvariance checks that RunMany's results do not depend
// on pool parallelism: one worker and four workers must produce
// identical outcomes for the same scenario batch.
func TestWorkerCountInvariance(t *testing.T) {
	batch := func() []*Scenario {
		var scs []*Scenario
		for _, name := range Bundled() {
			sc, err := LoadBundled(name)
			if err != nil {
				t.Fatal(err)
			}
			scs = append(scs, sc)
		}
		return append(scs, contended("batch-extra", 17).ShutdownAt(3, 3))
	}
	run := func(workers int) [][]byte {
		results, err := RunMany(context.Background(), batch(), runner.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(results))
		for i, r := range results {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}
	serial, parallel := run(1), run(4)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("scenario %d differs between 1 and 4 workers", i)
		}
	}
}
