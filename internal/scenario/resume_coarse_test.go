package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"heteroos/internal/snapshot"
)

// TestResumeChurnCoarseSections pins scenario resume under a
// non-default backend: the bundled churn scenario with the coarse
// backend selected by name must, after resuming a mid-run checkpoint,
// re-emit byte-identical snapshots at every later checkpoint event.
// On failure the test names the first section whose bytes diverge
// between the uninterrupted run and the resumed one.
func TestResumeChurnCoarseSections(t *testing.T) {
	dir := t.TempDir()
	p := func(tag string, ep int) string {
		return filepath.Join(dir, tag+"-"+string(rune('0'+ep/10))+string(rune('0'+ep%10))+".snap")
	}
	mk := func(tag string) *Scenario {
		sc, err := LoadBundled("churn.json")
		if err != nil {
			t.Fatal(err)
		}
		sc.WithBackend("coarse")
		for ep := 52; ep <= 55; ep++ {
			sc.CheckpointAt(ep, p(tag, ep))
		}
		return sc
	}
	ctx := context.Background()
	if _, err := mk("full").Run(ctx, nil); err != nil {
		t.Fatal(err)
	}
	// Resume the epoch-52 checkpoint under the "resumed" tag; its
	// re-fired checkpoint events need the resumed paths, so rewrite
	// them by running a scenario whose events carry the resumed paths —
	// Resume replays the original script, so instead copy the file and
	// resume it, letting the re-fired events overwrite the full-run
	// snapshots of epochs 53..55 after saving them aside.
	var fullCk [56][]byte
	for ep := 53; ep <= 55; ep++ {
		b, err := os.ReadFile(p("full", ep))
		if err != nil {
			t.Fatal(err)
		}
		fullCk[ep] = b
	}
	if _, err := ResumeFile(ctx, p("full", 52), nil, CheckpointOptions{}); err != nil {
		t.Fatal(err)
	}
	for ep := 53; ep <= 55; ep++ {
		resumed, err := os.ReadFile(p("full", ep))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(fullCk[ep], resumed) {
			continue
		}
		ra, _ := snapshot.Open(bytes.NewReader(fullCk[ep]))
		rb, _ := snapshot.Open(bytes.NewReader(resumed))
		for _, name := range ra.Sections() {
			ba, _ := ra.Raw(name)
			bb, okB := rb.Raw(name)
			if !okB {
				t.Errorf("epoch %d: resumed snapshot lacks section %q", ep, name)
				continue
			}
			if !bytes.Equal(ba, bb) {
				off := 0
				for off < len(ba) && off < len(bb) && ba[off] == bb[off] {
					off++
				}
				t.Errorf("epoch %d: section %q differs at offset %d (%d vs %d bytes)",
					ep, name, off, len(ba), len(bb))
			}
		}
		t.FailNow()
	}
}
