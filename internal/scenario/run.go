package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"heteroos/internal/core"
	"heteroos/internal/guestos"
	"heteroos/internal/memsim"
	"heteroos/internal/metrics"
	"heteroos/internal/obs"
	"heteroos/internal/policy"
	"heteroos/internal/runner"
	"heteroos/internal/sim"
	"heteroos/internal/snapshot"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// surgeWorkload wraps every scenario VM's workload so a surge window
// can multiply its demand: while active, Step runs the inner workload
// factor times per epoch (a hog VM allocating and touching at a
// multiple of its steady rate). Inactive, it is a single branch.
type surgeWorkload struct {
	inner  workload.Workload
	factor int
	active bool
	// done records whether the inner workload ran to completion, which
	// distinguishes "finished" from "shut down mid-run" in the result.
	done bool
}

func (w *surgeWorkload) Profile() workload.Profile { return w.inner.Profile() }

func (w *surgeWorkload) Init(os *guestos.OS) error { return w.inner.Init(os) }

func (w *surgeWorkload) Step(os *guestos.OS) (uint64, bool) {
	steps := 1
	if w.active && w.factor > 1 {
		steps = w.factor
	}
	var instr uint64
	var done bool
	for i := 0; i < steps && !done; i++ {
		var n uint64
		n, done = w.inner.Step(os)
		instr += n
	}
	if done {
		w.done = true
	}
	return instr, done
}

// SnapshotState implements workload.Snapshotter: the surge window state
// plus the wrapped workload's own progress. Core refuses to checkpoint
// a workload that cannot be restored, so the inner-snapshotter presence
// bit lets that refusal surface as a decode error instead of silence.
func (w *surgeWorkload) SnapshotState(e *snapshot.Encoder) {
	e.Bool(w.active)
	e.Int(w.factor)
	e.Bool(w.done)
	ws, ok := w.inner.(workload.Snapshotter)
	e.Bool(ok)
	if ok {
		ws.SnapshotState(e)
	}
}

// RestoreState implements workload.Snapshotter.
func (w *surgeWorkload) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	w.active = d.Bool()
	w.factor = d.Int()
	w.done = d.Bool()
	if !d.Bool() {
		return fmt.Errorf("scenario: checkpointed workload %T did not support snapshotting", w.inner)
	}
	ws, ok := w.inner.(workload.Snapshotter)
	if !ok {
		return fmt.Errorf("scenario: workload %T cannot restore checkpointed state", w.inner)
	}
	return ws.RestoreState(d, os)
}

// action is one expanded script step: events with a Duration unfold
// into a start action at At and a clear action at At+Duration.
type action struct {
	at    int
	ev    *Event
	clear bool
}

// VMShare is one VM's dominant share in a timeline sample.
type VMShare struct {
	ID    vmm.VMID `json:"id"`
	Share float64  `json:"share"`
}

// Sample is one timeline point, taken after the epoch's lockstep step.
// Moves/BalloonIn/BalloonRefused are deltas since the previous sample,
// summed over all VMs (departed included), so fault windows and
// lifecycle events visibly perturb the series.
type Sample struct {
	Epoch          int          `json:"epoch"`
	SimTime        sim.Duration `json:"sim_time"`
	LiveVMs        int          `json:"live_vms"`
	FastFree       uint64       `json:"fast_free"`
	Moves          uint64       `json:"moves"`
	BalloonIn      uint64       `json:"balloon_in"`
	BalloonRefused uint64       `json:"balloon_refused"`
	// Shares holds live VMs' DRF dominant shares in boot order (empty
	// under non-DRF policies).
	Shares []VMShare `json:"shares,omitempty"`
}

// VMRun is one VM's scenario outcome.
type VMRun struct {
	ID   vmm.VMID `json:"id"`
	App  string   `json:"app"`
	Mode string   `json:"mode"`
	// BootEpoch is when the VM joined (0 for epoch-0 VMs).
	BootEpoch int `json:"boot_epoch"`
	// ShutdownEpoch is when the VM departed, or -1 if it stayed to the
	// end of the run.
	ShutdownEpoch int `json:"shutdown_epoch"`
	// Completed reports whether the workload ran to completion (a VM
	// can be shut down mid-workload, or idle completed until departure).
	Completed bool          `json:"completed"`
	Res       core.VMResult `json:"result"`
}

// Result is a completed scenario run.
type Result struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Epochs is the number of lockstep epochs the scenario ran.
	Epochs int `json:"epochs"`
	// VMs holds every VM that ever ran, in boot order.
	VMs      []VMRun  `json:"vms"`
	Timeline []Sample `json:"timeline"`
	// Sys is the final system (live + departed instances); tests use it
	// for invariant and share inspection.
	Sys *core.System `json:"-"`
}

// runState carries the per-run bookkeeping of one Run or Resume call.
type runState struct {
	sc    *Scenario
	sys   *core.System
	wraps map[vmm.VMID]*surgeWorkload
	runs  []*VMRun

	timeline   []Sample
	prevMove   uint64
	prevBallIn uint64
	prevRefuse uint64
	// lastSampled is the last epoch a timeline sample was taken at (-1
	// before the first).
	lastSampled int
	// consumed counts expanded script actions applied so far, so a
	// checkpoint records exactly where a resumed run must re-enter the
	// script.
	consumed int
	// ck configures periodic checkpointing (zero value: none).
	ck CheckpointOptions
	// probe, when set, runs after every applied script action (stage
	// "event") and after every lockstep step (stage "epoch"); a non-nil
	// return aborts the run with that error. The fuzzing harness uses it
	// to check invariants continuously and to inject scripted defects.
	probe func(sys *core.System, stage string, epoch int) error
}

// CheckpointOptions configures periodic checkpointing of a scenario
// run, independent of any checkpoint events in the script itself.
type CheckpointOptions struct {
	// Every writes a checkpoint after each N-th lockstep epoch (0
	// disables periodic checkpoints).
	Every int
	// Path is the periodic checkpoint destination; each write replaces
	// the previous one, so the file always holds the latest checkpoint.
	Path string
}

// vmConfig materialises a VMDesc: mode and workload resolved from the
// catalogs, the workload seeded from the scenario seed and VM id
// (stable regardless of boot epoch), and wrapped for surge control.
func (st *runState) vmConfig(v *VMDesc) (core.VMConfig, error) {
	mode, err := policy.ByName(v.Mode)
	if err != nil {
		return core.VMConfig{}, err
	}
	w, err := workload.ByName(v.App, workload.Config{Seed: runner.DeriveSeed(st.sc.Seed, int(v.ID))})
	if err != nil {
		return core.VMConfig{}, err
	}
	sw := &surgeWorkload{inner: w, factor: 1}
	st.wraps[vmm.VMID(v.ID)] = sw
	return core.VMConfig{
		ID: vmm.VMID(v.ID), Mode: mode, Workload: sw,
		FastPages: v.FastPages, SlowPages: v.SlowPages,
		BootFastPages: v.BootFastPages, BootSlowPages: v.BootSlowPages,
		ReservedFastPages: v.ReservedFastPages, ReservedSlowPages: v.ReservedSlowPages,
	}, nil
}

// expandActions unfolds the script into epoch-ordered actions: windowed
// events contribute a start and (for Duration > 0) a clear. The sort is
// stable, so actions sharing an epoch keep script order — part of the
// determinism contract.
func expandActions(events []Event) []action {
	var out []action
	for i := range events {
		e := &events[i]
		out = append(out, action{at: e.At, ev: e})
		switch e.Kind {
		case KindBalloonRefusal, KindMigrationStall, KindSurge:
			if e.Duration > 0 {
				out = append(out, action{at: e.At + e.Duration, ev: e, clear: true})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// apply executes one action against the system at epoch.
func (st *runState) apply(a action, epoch int) error {
	e := a.ev
	switch e.Kind {
	case KindBoot:
		vc, err := st.vmConfig(e.Boot)
		if err != nil {
			return err
		}
		if _, err := st.sys.BootVM(vc); err != nil {
			return err
		}
		st.runs = append(st.runs, &VMRun{
			ID: vmm.VMID(e.Boot.ID), App: e.Boot.App, Mode: e.Boot.Mode,
			BootEpoch: epoch, ShutdownEpoch: -1,
		})
	case KindShutdown:
		if _, err := st.sys.ShutdownVM(vmm.VMID(e.VM)); err != nil {
			return err
		}
		// Every departure must leave the machine clean: no leaked
		// frames, empty P2M, share books consistent.
		if err := st.sys.CheckInvariants(); err != nil {
			return fmt.Errorf("after shutdown of VM %d: %w", e.VM, err)
		}
		if r := st.runByID(vmm.VMID(e.VM)); r != nil {
			r.ShutdownEpoch = epoch
			// Resolve Completed now: a resumed run rebuilds only live
			// VMs' workload wraps, so a departed VM's completion must
			// already be on record.
			if sw, ok := st.wraps[vmm.VMID(e.VM)]; ok {
				r.Completed = sw.done
			}
		}
	case KindThrottleShift:
		st.sys.SetTierSpec(memsim.SlowMem, e.Throttle.Spec())
	case KindBalloonRefusal:
		return st.sys.SetBalloonRefusal(vmm.VMID(e.VM), !a.clear)
	case KindMigrationStall:
		return st.sys.SetMigrationStall(vmm.VMID(e.VM), !a.clear)
	case KindSurge:
		sw, ok := st.wraps[vmm.VMID(e.VM)]
		if !ok {
			return fmt.Errorf("surge targets VM %d before it booted", e.VM)
		}
		factor := e.Factor
		if factor == 0 {
			factor = 2
		}
		sw.active, sw.factor = !a.clear, factor
		st.sys.EmitFault(vmm.VMID(e.VM), obs.FaultSurge, !a.clear)
	}
	return nil
}

func (st *runState) runByID(id vmm.VMID) *VMRun {
	for _, r := range st.runs {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// sample appends one timeline point.
func (st *runState) sample(epoch int) {
	var move, ballIn, refuse uint64
	for _, runs := range [][]*core.VMInstance{st.sys.VMs, st.sys.Departed} {
		for _, inst := range runs {
			move += inst.Res.Promotions + inst.Res.Demotions + inst.Res.VMMMigrations
			ballIn += inst.Res.BalloonPagesIn
			refuse += inst.Res.BalloonRefusedPages
		}
	}
	s := Sample{
		Epoch:          epoch,
		SimTime:        st.sys.Now(),
		LiveVMs:        len(st.sys.VMs),
		FastFree:       st.sys.Machine.FreeFrames(memsim.FastMem),
		Moves:          move - st.prevMove,
		BalloonIn:      ballIn - st.prevBallIn,
		BalloonRefused: refuse - st.prevRefuse,
	}
	st.prevMove, st.prevBallIn, st.prevRefuse = move, ballIn, refuse
	if st.sc.share() == "drf" {
		for _, inst := range st.sys.VMs {
			s.Shares = append(s.Shares, VMShare{ID: inst.ID, Share: st.sys.DRFDominantShare(inst.ID)})
		}
	}
	st.timeline = append(st.timeline, s)
}

// baseConfig translates the scenario-level knobs into a core.Config
// with no VMs attached yet.
func (sc *Scenario) baseConfig(h *obs.Obs) (core.Config, error) {
	cfg := core.Config{
		FastFrames: sc.FastFrames,
		SlowFrames: sc.SlowFrames,
		Share:      core.ShareKind(sc.share()),
		MaxEpochs:  sc.maxEpochs(),
		Obs:        h,
		Seed:       sc.Seed,
	}
	if sc.ProfileEpochs && h != nil {
		cfg.ProfileEpochs = true
	}
	if sc.SlowThrottle != nil {
		cfg.SlowSpec = sc.SlowThrottle.Spec()
	}
	if sc.BackendBuilder != nil {
		cfg.Backend = sc.BackendBuilder
	} else if sc.Backend != "" {
		// Validate already vetted the name; resolve it here so the
		// system prices epochs through the selected model.
		build, err := memsim.BuilderByName(sc.Backend)
		if err != nil {
			return core.Config{}, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		cfg.Backend = build
	}
	return cfg, nil
}

// Run executes the scenario. h, when non-nil, attaches observability:
// lifecycle and fault events, every layer's chokepoint events, and the
// metrics registry all report into it (the caller owns and closes it).
// The returned result holds per-VM outcomes in boot order, the sampled
// timeline, and the final system.
//
// Determinism: the result — and, with h attached, the emitted event
// stream — is a pure function of (*sc, sc.Seed).
func (sc *Scenario) Run(ctx context.Context, h *obs.Obs) (*Result, error) {
	return sc.RunWithCheckpoints(ctx, h, CheckpointOptions{})
}

// RunWithCheckpoints is Run plus periodic checkpointing: after every
// ck.Every-th epoch the full system state is written to ck.Path.
// Checkpoint writes never perturb the run — results are identical to a
// plain Run (the `make snapshot-parity` gate enforces this).
func (sc *Scenario) RunWithCheckpoints(ctx context.Context, h *obs.Obs, ck CheckpointOptions) (*Result, error) {
	st, actions, err := sc.newRun(h, ck)
	if err != nil {
		return nil, err
	}
	return st.loop(ctx, 0, actions, false)
}

// newRun validates the scenario, boots the epoch-0 system, and returns
// the run state plus the expanded script, ready for loop. Split from
// RunWithCheckpoints so the fuzzing harness can attach its probe before
// the epochs start.
func (sc *Scenario) newRun(h *obs.Obs, ck CheckpointOptions) (*runState, []action, error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	if ck.Every > 0 && ck.Path == "" {
		return nil, nil, fmt.Errorf("scenario %q: periodic checkpoints need a path", sc.Name)
	}
	st := &runState{sc: sc, wraps: make(map[vmm.VMID]*surgeWorkload), lastSampled: -1, ck: ck}
	cfg, err := sc.baseConfig(h)
	if err != nil {
		return nil, nil, err
	}
	for i := range sc.VMs {
		v := &sc.VMs[i]
		vc, err := st.vmConfig(v)
		if err != nil {
			return nil, nil, err
		}
		cfg.VMs = append(cfg.VMs, vc)
		st.runs = append(st.runs, &VMRun{
			ID: vmm.VMID(v.ID), App: v.App, Mode: v.Mode, ShutdownEpoch: -1,
		})
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	st.sys = sys
	return st, expandActions(sc.Events), nil
}

// loop drives the lockstep epochs from startEpoch with the not-yet-
// applied actions, then assembles the result. firedAtStart marks the
// first epoch as an event epoch regardless of remaining actions (a
// resumed run whose checkpoint event fired mid-epoch must still sample
// that epoch, exactly as the uninterrupted run did).
func (st *runState) loop(ctx context.Context, startEpoch int, actions []action, firedAtStart bool) (*Result, error) {
	sc := st.sc
	sys := st.sys
	every := sc.sampleEvery()
	for epoch := startEpoch; epoch < sc.maxEpochs(); epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fired := firedAtStart
		firedAtStart = false
		for len(actions) > 0 && actions[0].at <= epoch {
			a := actions[0]
			actions = actions[1:]
			st.consumed++
			fired = true
			if a.ev.Kind == KindCheckpoint {
				// State as of this instant: epoch not yet stepped, this
				// action already consumed, the epoch marked as fired.
				if err := st.writeCheckpoint(a.ev.Path, epoch, true); err != nil {
					return nil, fmt.Errorf("scenario %q epoch %d: %w", sc.Name, epoch, err)
				}
				continue
			}
			if err := st.apply(a, epoch); err != nil {
				return nil, fmt.Errorf("scenario %q epoch %d: %w", sc.Name, epoch, err)
			}
			if st.probe != nil {
				if err := st.probe(sys, "event", epoch); err != nil {
					return nil, fmt.Errorf("scenario %q epoch %d after %s event: %w", sc.Name, epoch, a.ev.Kind, err)
				}
			}
		}
		alive, err := sys.StepEpoch()
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		if st.probe != nil {
			if err := st.probe(sys, "epoch", epoch); err != nil {
				return nil, fmt.Errorf("scenario %q epoch %d: %w", sc.Name, epoch, err)
			}
		}
		if fired || epoch%every == 0 {
			st.sample(epoch)
			st.lastSampled = epoch
		}
		done := !alive && len(actions) == 0
		if done && st.lastSampled != epoch {
			st.sample(epoch)
			st.lastSampled = epoch
		}
		if st.ck.Every > 0 && (epoch+1)%st.ck.Every == 0 && !done {
			// Post-epoch checkpoint: resume re-enters at epoch+1 with
			// nothing consumed mid-epoch.
			if err := st.writeCheckpoint(st.ck.Path, epoch+1, false); err != nil {
				return nil, fmt.Errorf("scenario %q epoch %d: %w", sc.Name, epoch, err)
			}
		}
		if done {
			break
		}
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("scenario %q: final invariants: %w", sc.Name, err)
	}

	res := &Result{Name: sc.Name, Seed: sc.Seed, Epochs: sys.Epochs(), Timeline: st.timeline, Sys: sys}
	for _, r := range st.runs {
		vr, ok := sys.VMResultByID(r.ID)
		if !ok {
			return nil, fmt.Errorf("scenario %q: VM %d vanished", sc.Name, r.ID)
		}
		r.Res = *vr
		if sw, ok := st.wraps[r.ID]; ok {
			r.Completed = sw.done
		}
		res.VMs = append(res.VMs, *r)
	}
	return res, nil
}

// Table renders the per-VM outcomes.
func (r *Result) Table() *metrics.Table {
	t := metrics.NewTable("scenario "+r.Name,
		"vm", "app", "mode", "boot", "shutdown", "epochs", "runtime-s",
		"promotions", "demotions", "vmm-moves", "balloon-in", "refused", "stalled")
	for i := range r.VMs {
		v := &r.VMs[i]
		shutdown := "-"
		if v.ShutdownEpoch >= 0 {
			shutdown = fmt.Sprintf("%d", v.ShutdownEpoch)
		}
		t.AddRow(int(v.ID), v.App, v.Mode, v.BootEpoch, shutdown, v.Res.Epochs,
			fmt.Sprintf("%.3f", v.Res.SimTime.Seconds()),
			v.Res.Promotions, v.Res.Demotions, v.Res.VMMMigrations,
			v.Res.BalloonPagesIn, v.Res.BalloonRefusedPages, v.Res.MigrationStalledPasses)
	}
	return t
}

// TimelineTable renders the sampled scenario timeline.
func (r *Result) TimelineTable() *metrics.Table {
	t := metrics.NewTable("timeline "+r.Name,
		"epoch", "sim-s", "vms", "fast-free", "moves", "balloon-in", "refused", "drf-shares")
	for i := range r.Timeline {
		s := &r.Timeline[i]
		var shares strings.Builder
		for j, sh := range s.Shares {
			if j > 0 {
				shares.WriteByte(' ')
			}
			fmt.Fprintf(&shares, "%d:%.3f", sh.ID, sh.Share)
		}
		sh := shares.String()
		if sh == "" {
			sh = "-"
		}
		t.AddRow(s.Epoch, fmt.Sprintf("%.3f", s.SimTime.Seconds()), s.LiveVMs,
			s.FastFree, s.Moves, s.BalloonIn, s.BalloonRefused, sh)
	}
	return t
}

// withProfiling returns a shallow copy with the phase profiler on —
// RunMany must not mutate caller-owned scenarios (one *Scenario may be
// submitted to several batches concurrently).
func (sc *Scenario) withProfiling() *Scenario {
	cp := *sc
	cp.ProfileEpochs = true
	return &cp
}

// RunMany executes scenarios through the runner pool: bounded
// concurrency, per-job panic isolation, and results in input order.
// Per-scenario observability handles come from opts.NewObs (closed
// after each run) or, when opts.Obs is set instead, from per-scenario
// JobScope children of that parent handle — each scenario's metrics
// then land in a "name/..." scope of the parent's registry tree, so
// one Snapshot/Rollup aggregates the batch (read it only after RunMany
// returns). opts.ProfileEpochs turns on the phase profiler for every
// scenario that ends up with a handle. Results are byte-identical
// across worker counts.
func RunMany(ctx context.Context, scs []*Scenario, opts runner.Options) ([]*Result, error) {
	pool := runner.NewPool(ctx, opts)
	out := make([]*Result, len(scs))
	futures := make([]*runner.Future, len(scs))
	// Scope labels are deduplicated up front (serially) so two scenarios
	// sharing a name never share a child registry.
	scopeLabels := make([]string, len(scs))
	seen := make(map[string]int, len(scs))
	for i, sc := range scs {
		seen[sc.Name]++
		scopeLabels[i] = sc.Name
		if n := seen[sc.Name]; n > 1 {
			scopeLabels[i] = fmt.Sprintf("%s#%d", sc.Name, n)
		}
	}
	for i, sc := range scs {
		i, sc := i, sc
		futures[i] = pool.SubmitFunc(sc.Name, func(ctx context.Context) (*core.VMResult, *core.System, error) {
			var h *obs.Obs
			if opts.NewObs != nil {
				h = opts.NewObs(sc.Name, sc.Seed)
				if h != nil && h.RunTag() == "" {
					h.SetRunTag(sc.Name)
				}
			} else if opts.Obs != nil {
				h = opts.Obs.JobScope(scopeLabels[i])
				h.SetRunTag(sc.Name)
			}
			if opts.ProfileEpochs && h != nil && !sc.ProfileEpochs {
				sc = sc.withProfiling()
			}
			r, err := sc.Run(ctx, h)
			if cerr := h.Close(); err == nil && cerr != nil {
				err = cerr
			}
			if err != nil {
				return nil, nil, err
			}
			out[i] = r
			return &r.VMs[0].Res, r.Sys, nil
		})
	}
	var firstErr error
	for _, f := range futures {
		if err := f.Err(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("scenario %q: %w", f.Label(), err)
		}
	}
	return out, firstErr
}
