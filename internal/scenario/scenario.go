// Package scenario is the deterministic datacenter scenario engine: it
// drives a core.System through a timed script of events — VM arrival
// and departure, workload surges, and injected faults (throttle shifts,
// balloon refusals, migration stalls) — the dynamic lifecycle the
// paper's datacenter premise (§6) implies but a fixed-VM-set run never
// exercises.
//
// A Scenario is a plain value: build one with the fluent API or load it
// from JSON (two scenarios ship embedded — see Bundled). Running it
// yields per-VM results plus a scenario-level timeline (live VM count,
// FastMem occupancy, migration/balloon deltas, DRF dominant shares)
// sampled on an epoch cadence.
//
// Determinism is a hard contract: a scenario's outcome — every
// VMResult, every timeline sample, every emitted obs event — is a pure
// function of the scenario value and its seed. Events fire on epoch
// boundaries in script order, all randomness derives from Seed, and
// nothing reads wall-clock time, so the same scenario re-runs
// byte-identically regardless of runner worker count.
package scenario

import (
	"fmt"

	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// Event kinds accepted by Event.Kind.
const (
	// KindBoot boots Event.Boot at the event epoch (VM arrival).
	KindBoot = "boot"
	// KindShutdown departs Event.VM: balloon unwound, P2M cleared,
	// frames returned, share policy rebalanced over the survivors.
	KindShutdown = "shutdown"
	// KindThrottleShift swaps the SlowMem tier spec to Event.Throttle
	// mid-run (the device degrading under the experiment's feet).
	KindThrottleShift = "throttle-shift"
	// KindBalloonRefusal makes the VMM refuse Event.VM's populate
	// requests for Event.Duration epochs (0 = until the run ends).
	KindBalloonRefusal = "balloon-refusal"
	// KindMigrationStall stalls Event.VM's migration engine for
	// Event.Duration epochs; passes skip under bounded retry/backoff.
	KindMigrationStall = "migration-stall"
	// KindSurge multiplies Event.VM's workload demand by Event.Factor
	// (default 2) for Event.Duration epochs — the FastMem pressure
	// spike of a hog VM.
	KindSurge = "surge"
	// KindCheckpoint writes a full-system checkpoint to Event.Path
	// before the event epoch's lockstep step. Checkpoints never perturb
	// the run: the scenario's results are identical with the event
	// removed.
	KindCheckpoint = "checkpoint"
)

// VMDesc describes one guest: its application, management mode, and
// memory shape, all in scaled pages (see workload.Config.Pages).
type VMDesc struct {
	ID   int32  `json:"id"`
	App  string `json:"app"`  // workload.ByName catalog name
	Mode string `json:"mode"` // policy.ByName mode name
	// FastPages / SlowPages bound the VM's per-tier span.
	FastPages uint64 `json:"fast_pages"`
	SlowPages uint64 `json:"slow_pages"`
	// Boot*/Reserved* follow core.VMConfig semantics: zero boot sizes
	// default to half the span; zero reservations default to the boot
	// sizes.
	BootFastPages     uint64 `json:"boot_fast_pages,omitempty"`
	BootSlowPages     uint64 `json:"boot_slow_pages,omitempty"`
	ReservedFastPages uint64 `json:"reserved_fast_pages,omitempty"`
	ReservedSlowPages uint64 `json:"reserved_slow_pages,omitempty"`
}

// Event is one timed script entry. It fires at the start of epoch At
// (before that epoch's lockstep step); events sharing an epoch fire in
// script order.
type Event struct {
	At   int    `json:"at"`
	Kind string `json:"kind"`
	// VM targets shutdown/fault/surge events.
	VM int32 `json:"vm,omitempty"`
	// Boot describes the arriving VM for KindBoot.
	Boot *VMDesc `json:"boot,omitempty"`
	// Throttle is the new SlowMem point for KindThrottleShift.
	Throttle *memsim.Throttle `json:"throttle,omitempty"`
	// Duration is the fault/surge window length in epochs; 0 means the
	// window stays open until the run ends.
	Duration int `json:"duration,omitempty"`
	// Factor is the surge demand multiple (default 2).
	Factor int `json:"factor,omitempty"`
	// Path is the checkpoint destination file for KindCheckpoint.
	Path string `json:"path,omitempty"`
}

// Scenario is a complete scripted run. The zero values of the optional
// knobs resolve to: Share "drf", MaxEpochs 256, SampleEvery 8, and the
// paper's default tier specs (SlowThrottle overrides SlowMem).
type Scenario struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Machine shape in scaled pages per tier.
	FastFrames uint64 `json:"fast_frames"`
	SlowFrames uint64 `json:"slow_frames"`
	// SlowThrottle, when set, is the initial SlowMem throttle point.
	SlowThrottle *memsim.Throttle `json:"slow_throttle,omitempty"`
	// Share names the VMM share policy: "static", "max-min", or "drf".
	Share string `json:"share,omitempty"`
	// Backend names the machine-model backend ("analytic", "coarse");
	// empty means analytic. "replay" cannot be named from JSON — it
	// needs a loaded trace, so it is only reachable through
	// BackendBuilder.
	Backend string `json:"backend,omitempty"`
	// BackendBuilder, when set, overrides Backend with a programmatic
	// builder (e.g. memsim.Trace.Builder for replay, or a recording
	// decorator). Not serialisable; scripted scenarios use Backend.
	BackendBuilder memsim.Builder `json:"-"`
	// MaxEpochs bounds the run.
	MaxEpochs int `json:"max_epochs,omitempty"`
	// ProfileEpochs turns on the epoch phase profiler when an
	// observability handle is attached to the run (no-op otherwise).
	// Not serialised: profiling is a per-invocation choice (the CLI's
	// -profile-epochs flag), not a property of the scripted scenario.
	ProfileEpochs bool `json:"-"`
	// SampleEvery is the timeline sampling cadence in epochs; event
	// epochs are always sampled regardless.
	SampleEvery int `json:"sample_every,omitempty"`
	// VMs are present from epoch 0 (at least one is required; core
	// cannot boot an empty system).
	VMs []VMDesc `json:"vms"`
	// Events is the timed script.
	Events []Event `json:"events,omitempty"`
}

// New starts a scenario with the given name and seed.
func New(name string, seed uint64) *Scenario {
	return &Scenario{Name: name, Seed: seed}
}

// WithMachine sets the machine shape in scaled pages per tier.
func (sc *Scenario) WithMachine(fastFrames, slowFrames uint64) *Scenario {
	sc.FastFrames, sc.SlowFrames = fastFrames, slowFrames
	return sc
}

// WithShare selects the VMM share policy ("static", "max-min", "drf").
func (sc *Scenario) WithShare(share string) *Scenario {
	sc.Share = share
	return sc
}

// WithBackend names the machine-model backend ("analytic", "coarse").
func (sc *Scenario) WithBackend(name string) *Scenario {
	sc.Backend = name
	return sc
}

// WithBackendBuilder sets a programmatic backend builder, overriding
// any Backend name (the replay path: load a trace, pass its Builder).
func (sc *Scenario) WithBackendBuilder(b memsim.Builder) *Scenario {
	sc.BackendBuilder = b
	return sc
}

// WithMaxEpochs bounds the run.
func (sc *Scenario) WithMaxEpochs(n int) *Scenario {
	sc.MaxEpochs = n
	return sc
}

// WithSlowThrottle sets the initial SlowMem throttle point.
func (sc *Scenario) WithSlowThrottle(t memsim.Throttle) *Scenario {
	th := t
	sc.SlowThrottle = &th
	return sc
}

// StartVM adds a VM present from epoch 0.
func (sc *Scenario) StartVM(v VMDesc) *Scenario {
	sc.VMs = append(sc.VMs, v)
	return sc
}

// BootAt schedules a VM arrival.
func (sc *Scenario) BootAt(epoch int, v VMDesc) *Scenario {
	b := v
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindBoot, Boot: &b})
	return sc
}

// ShutdownAt schedules a VM departure.
func (sc *Scenario) ShutdownAt(epoch int, id int32) *Scenario {
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindShutdown, VM: id})
	return sc
}

// ThrottleShiftAt schedules a mid-run SlowMem throttle change.
func (sc *Scenario) ThrottleShiftAt(epoch int, t memsim.Throttle) *Scenario {
	th := t
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindThrottleShift, Throttle: &th})
	return sc
}

// BalloonRefusalAt schedules a balloon back-end refusal window.
func (sc *Scenario) BalloonRefusalAt(epoch int, id int32, duration int) *Scenario {
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindBalloonRefusal, VM: id, Duration: duration})
	return sc
}

// MigrationStallAt schedules a migration-engine stall window.
func (sc *Scenario) MigrationStallAt(epoch int, id int32, duration int) *Scenario {
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindMigrationStall, VM: id, Duration: duration})
	return sc
}

// SurgeAt schedules a workload demand surge.
func (sc *Scenario) SurgeAt(epoch int, id int32, duration, factor int) *Scenario {
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindSurge, VM: id, Duration: duration, Factor: factor})
	return sc
}

// CheckpointAt schedules a checkpoint write to path before epoch's
// lockstep step.
func (sc *Scenario) CheckpointAt(epoch int, path string) *Scenario {
	sc.Events = append(sc.Events, Event{At: epoch, Kind: KindCheckpoint, Path: path})
	return sc
}

func (sc *Scenario) maxEpochs() int {
	if sc.MaxEpochs > 0 {
		return sc.MaxEpochs
	}
	return 256
}

func (sc *Scenario) sampleEvery() int {
	if sc.SampleEvery > 0 {
		return sc.SampleEvery
	}
	return 8
}

func (sc *Scenario) share() string {
	if sc.Share != "" {
		return sc.Share
	}
	return "drf"
}

// validateVM checks one VM description against the machine and the
// catalogs.
func (sc *Scenario) validateVM(v *VMDesc, where string) error {
	if v.ID <= 0 {
		return fmt.Errorf("scenario %q: %s: VM id %d must be positive", sc.Name, where, v.ID)
	}
	if v.FastPages+v.SlowPages == 0 {
		return fmt.Errorf("scenario %q: %s: VM %d has a zero memory span", sc.Name, where, v.ID)
	}
	if _, err := workload.ByName(v.App, workload.Config{Seed: 1}); err != nil {
		return fmt.Errorf("scenario %q: %s: VM %d: %w", sc.Name, where, v.ID, err)
	}
	if _, err := policy.ByName(v.Mode); err != nil {
		return fmt.Errorf("scenario %q: %s: VM %d: %w", sc.Name, where, v.ID, err)
	}
	return nil
}

// Validate rejects malformed scenarios with descriptive errors before
// any machinery boots: unknown apps/modes/share policies, duplicate or
// reused VM ids, events targeting VMs the script never introduces, and
// incomplete events (boot without a VM description, throttle shift
// without a throttle point).
func (sc *Scenario) Validate() error {
	if sc.FastFrames+sc.SlowFrames == 0 {
		return fmt.Errorf("scenario %q: machine has zero memory frames", sc.Name)
	}
	switch sc.share() {
	case "static", "max-min", "drf":
	default:
		return fmt.Errorf("scenario %q: unknown share policy %q", sc.Name, sc.Share)
	}
	if sc.BackendBuilder == nil {
		if _, err := memsim.BuilderByName(sc.Backend); err != nil {
			return fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
	}
	if len(sc.VMs) == 0 {
		return fmt.Errorf("scenario %q: needs at least one epoch-0 VM", sc.Name)
	}
	known := make(map[int32]bool)
	for i := range sc.VMs {
		v := &sc.VMs[i]
		if err := sc.validateVM(v, "vms"); err != nil {
			return err
		}
		if known[v.ID] {
			return fmt.Errorf("scenario %q: duplicate VM id %d", sc.Name, v.ID)
		}
		known[v.ID] = true
	}
	for i := range sc.Events {
		e := &sc.Events[i]
		where := fmt.Sprintf("event %d (%s at epoch %d)", i, e.Kind, e.At)
		if e.At < 0 || e.Duration < 0 || e.Factor < 0 {
			return fmt.Errorf("scenario %q: %s: negative at/duration/factor", sc.Name, where)
		}
		switch e.Kind {
		case KindBoot:
			if e.Boot == nil {
				return fmt.Errorf("scenario %q: %s: missing boot VM description", sc.Name, where)
			}
			if err := sc.validateVM(e.Boot, where); err != nil {
				return err
			}
			if known[e.Boot.ID] {
				return fmt.Errorf("scenario %q: %s: VM id %d already used (ids are never reused)", sc.Name, where, e.Boot.ID)
			}
			known[e.Boot.ID] = true
		case KindShutdown, KindBalloonRefusal, KindMigrationStall, KindSurge:
			if !known[e.VM] {
				return fmt.Errorf("scenario %q: %s: targets unknown VM %d", sc.Name, where, e.VM)
			}
		case KindThrottleShift:
			if e.Throttle == nil {
				return fmt.Errorf("scenario %q: %s: missing throttle point", sc.Name, where)
			}
		case KindCheckpoint:
			if e.Path == "" {
				return fmt.Errorf("scenario %q: %s: missing checkpoint path", sc.Name, where)
			}
		default:
			return fmt.Errorf("scenario %q: %s: unknown event kind %q", sc.Name, where, e.Kind)
		}
	}
	return nil
}
