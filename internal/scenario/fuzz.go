// Scenario fuzzing: a seeded generator of random-but-valid event
// scripts, a strict execution harness that checks the whole stack's
// invariants after every script event and every lockstep epoch, and a
// delta-debugging shrinker that reduces failing cases to minimal,
// replayable reproductions.
//
// The property under test is the engine's robustness contract: no
// valid scenario — any mix of arrivals, departures, surges, and fault
// windows — may ever drive the system into a state where
// core.CheckInvariants fails or the stack panics. Benign runtime
// rejections (a boot the machine cannot admit, an event targeting an
// already-departed VM) terminate a run without falsifying the
// property.
package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/sim"
)

// ErrInvariant tags CheckScenario failures: an invariant violation or
// a panic, as opposed to a benign runtime rejection.
var ErrInvariant = errors.New("invariant violation")

// DefectStealFrame allocates a FastMem frame under an owner no VM
// answers to, desynchronising the machine's frame accounting from the
// VMM's grant books — the canonical seeded defect the fuzz harness
// must catch and the shrinker must preserve.
const DefectStealFrame = "steal-frame"

// Defect is a scripted state corruption injected mid-run. Defects
// exist to test the fuzzing harness end-to-end: a committed repro with
// a defect proves detection, shrinking, and replay all work against a
// real failure, without leaving a planted bug in the product code.
type Defect struct {
	Kind string `json:"kind"`
	// At is the epoch after whose lockstep step the corruption applies.
	At int `json:"at"`
}

// Repro is a self-contained failing fuzz case: the seed and scenario
// that failed, the optional injected defect, and the failure text.
// Repros serialize to JSON under testdata/fuzz/repros/ and replay with
// CheckScenario.
type Repro struct {
	Seed     uint64    `json:"seed"`
	Scenario *Scenario `json:"scenario"`
	Defect   *Defect   `json:"defect,omitempty"`
	Err      string    `json:"error,omitempty"`
}

// Generator pools. Every value a generated scenario draws is valid by
// construction — Validate-clean scripts only; runtime admission is the
// engine's problem, not the generator's.
var (
	fuzzApps     = []string{"memlat", "stream", "writeheavy"}
	fuzzModes    = []string{"HeteroOS-coordinated", "HeteroOS-coordinated-NVM", "VMM-exclusive", "NUMA-preferred"}
	fuzzShares   = []string{"drf", "max-min", "static"}
	fuzzBackends = []string{"analytic", "coarse"}
)

func fuzzVM(rng *sim.RNG, id int32) VMDesc {
	return VMDesc{
		ID:   id,
		App:  fuzzApps[rng.Intn(len(fuzzApps))],
		Mode: fuzzModes[rng.Intn(len(fuzzModes))],
		// Small spans relative to the generated machines, so most boots
		// are admissible and runs exercise epochs rather than rejections.
		FastPages: uint64(64 << rng.Intn(3)),
		SlowPages: uint64(256 << rng.Intn(3)),
	}
}

// Generate builds a random scenario from seed: machine shape, share
// policy, backend, 1–3 epoch-0 VMs, and up to 8 script events drawn
// from every event kind with in-range parameters. The result is a pure
// function of seed and always passes Validate.
func Generate(seed uint64) *Scenario {
	rng := sim.NewRNG(seed ^ 0x5eed5eedf0f5a9)
	sc := New(fmt.Sprintf("fuzz-%d", seed), seed)
	fast := uint64(1024 + 512*rng.Intn(5))
	sc.WithMachine(fast, fast*uint64(4+rng.Intn(5)))
	sc.WithShare(fuzzShares[rng.Intn(len(fuzzShares))])
	sc.WithBackend(fuzzBackends[rng.Intn(len(fuzzBackends))])
	sc.WithMaxEpochs(16 + rng.Intn(25))

	next := int32(1)
	boot := map[int32]int{}  // id -> boot epoch
	gone := map[int32]bool{} // ids with a shutdown already scripted
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		sc.StartVM(fuzzVM(rng, next))
		boot[next] = 0
		next++
	}
	// aliveAt picks a VM that booted before `at` and has no scripted
	// shutdown, preferring targets most runs will actually have live.
	aliveAt := func(at int) (int32, bool) {
		var ids []int32
		for id, b := range boot {
			if b < at && !gone[id] {
				ids = append(ids, id)
			}
		}
		if len(ids) == 0 {
			return 0, false
		}
		best := ids[0]
		for _, id := range ids[1:] {
			if id < best {
				best = id
			}
		}
		// Deterministic choice: skip a stable number of candidates.
		skip := rng.Intn(len(ids))
		for i := 0; i < skip; i++ {
			nextBest := int32(-1)
			for _, id := range ids {
				if id > best && (nextBest < 0 || id < nextBest) {
					nextBest = id
				}
			}
			if nextBest < 0 {
				break
			}
			best = nextBest
		}
		return best, true
	}
	for i, n := 0, rng.Intn(9); i < n; i++ {
		at := 1 + rng.Intn(sc.MaxEpochs-1)
		switch rng.Intn(6) {
		case 0:
			sc.BootAt(at, fuzzVM(rng, next))
			boot[next] = at
			next++
		case 1:
			if id, ok := aliveAt(at); ok {
				sc.ShutdownAt(at, id)
				gone[id] = true
			}
		case 2:
			if id, ok := aliveAt(at); ok {
				sc.SurgeAt(at, id, 1+rng.Intn(8), 2+rng.Intn(3))
			}
		case 3:
			if id, ok := aliveAt(at); ok {
				sc.MigrationStallAt(at, id, 1+rng.Intn(8))
			}
		case 4:
			if id, ok := aliveAt(at); ok {
				sc.BalloonRefusalAt(at, id, 1+rng.Intn(8))
			}
		case 5:
			sc.ThrottleShiftAt(at, memsim.SensitivitySweep[rng.Intn(len(memsim.SensitivitySweep))])
		}
	}
	return sc
}

// applyDefect performs the scripted corruption against the live system.
func applyDefect(sys *core.System, d *Defect) error {
	switch d.Kind {
	case DefectStealFrame:
		_, err := sys.Machine.Alloc(memsim.FastMem, 1, memsim.Owner(9999))
		return err
	default:
		return fmt.Errorf("unknown defect kind %q", d.Kind)
	}
}

// CheckScenario executes sc under the fuzzing property: the full-stack
// invariants are verified after every script event and every lockstep
// epoch, and panics anywhere in the stack are converted to failures.
// A nil return means the property held; ErrInvariant-wrapped errors
// mean it did not. Benign runtime rejections — a boot the machine
// cannot admit, an event against a departed VM — return nil: the
// generator ranges over scripts the engine may legitimately refuse.
// When defect is non-nil, the corruption applies after the lockstep
// step of epoch defect.At, so the harness itself can be tested against
// a failure that is known to exist.
func CheckScenario(ctx context.Context, sc *Scenario, defect *Defect) (failure error) {
	defer func() {
		if r := recover(); r != nil {
			failure = fmt.Errorf("%w: panic: %v", ErrInvariant, r)
		}
	}()
	st, actions, err := sc.newRun(nil, CheckpointOptions{})
	if err != nil {
		return nil
	}
	injected := false
	st.probe = func(sys *core.System, stage string, epoch int) error {
		if defect != nil && !injected && stage == "epoch" && epoch >= defect.At {
			injected = true
			if err := applyDefect(sys, defect); err != nil {
				return fmt.Errorf("%w: injecting %s: %v", ErrInvariant, defect.Kind, err)
			}
		}
		if err := sys.CheckInvariants(); err != nil {
			return fmt.Errorf("%w after %s: %v", ErrInvariant, stage, err)
		}
		return nil
	}
	if _, err := st.loop(ctx, 0, actions, false); err != nil && errors.Is(err, ErrInvariant) {
		return err
	}
	return nil
}

// cloneRepro deep-copies a repro through its JSON form (repros are
// fully serialisable by construction).
func cloneRepro(r *Repro) *Repro {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err)
	}
	var out Repro
	if err := json.Unmarshal(b, &out); err != nil {
		panic(err)
	}
	return &out
}

// stillFails reports whether the candidate reproduces an invariant
// failure; invalid candidates (shrinking can orphan event targets)
// never count. The failure text is refreshed on success.
func stillFails(ctx context.Context, cand *Repro) bool {
	if cand.Scenario.Validate() != nil {
		return false
	}
	err := CheckScenario(ctx, cand.Scenario, cand.Defect)
	if err == nil {
		return false
	}
	cand.Err = err.Error()
	return true
}

// Shrink delta-debugs a failing repro to a local minimum: it drops
// script events, shortens the horizon, pulls event epochs and windows
// toward zero, drops epoch-0 VMs, and halves VM memory spans, keeping
// each reduction only if the failure still reproduces. The input is
// not modified; the returned repro carries the (possibly reworded)
// failure text of the minimal case.
func Shrink(ctx context.Context, r *Repro) *Repro {
	cur := cloneRepro(r)
	if !stillFails(ctx, cur) {
		// Not a reproducible failure; nothing to shrink.
		return cur
	}
	adopt := func(cand *Repro) bool {
		if stillFails(ctx, cand) {
			cur = cand
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		// Drop events one at a time.
		for i := 0; i < len(cur.Scenario.Events); i++ {
			cand := cloneRepro(cur)
			cand.Scenario.Events = append(cand.Scenario.Events[:i:i], cand.Scenario.Events[i+1:]...)
			if adopt(cand) {
				changed = true
				i--
			}
		}
		// Shorten the horizon: halve, then step down.
		for cur.Scenario.maxEpochs() > 1 {
			cand := cloneRepro(cur)
			cand.Scenario.MaxEpochs = cur.Scenario.maxEpochs() / 2
			if !adopt(cand) {
				break
			}
			changed = true
		}
		for cur.Scenario.maxEpochs() > 1 {
			cand := cloneRepro(cur)
			cand.Scenario.MaxEpochs = cur.Scenario.maxEpochs() - 1
			if !adopt(cand) {
				break
			}
			changed = true
		}
		// Pull the defect epoch toward zero.
		for cur.Defect != nil && cur.Defect.At > 0 {
			cand := cloneRepro(cur)
			cand.Defect.At = cur.Defect.At / 2
			if !adopt(cand) {
				break
			}
			changed = true
		}
		// Pull event epochs and windows toward their minima.
		for i := range cur.Scenario.Events {
			for {
				e := cur.Scenario.Events[i]
				cand := cloneRepro(cur)
				ce := &cand.Scenario.Events[i]
				switch {
				case e.At > 0:
					ce.At = e.At / 2
				case e.Duration > 1:
					ce.Duration = e.Duration / 2
				default:
					e.At = -1 // sentinel: nothing left to shrink
				}
				if e.At < 0 || !adopt(cand) {
					break
				}
				changed = true
			}
		}
		// Drop epoch-0 VMs (the engine needs at least one).
		for i := 0; len(cur.Scenario.VMs) > 1 && i < len(cur.Scenario.VMs); i++ {
			cand := cloneRepro(cur)
			cand.Scenario.VMs = append(cand.Scenario.VMs[:i:i], cand.Scenario.VMs[i+1:]...)
			if adopt(cand) {
				changed = true
				i--
			}
		}
		// Halve VM memory spans.
		for i := range cur.Scenario.VMs {
			for cur.Scenario.VMs[i].FastPages+cur.Scenario.VMs[i].SlowPages > 64 {
				cand := cloneRepro(cur)
				cand.Scenario.VMs[i].FastPages /= 2
				cand.Scenario.VMs[i].SlowPages /= 2
				if !adopt(cand) {
					break
				}
				changed = true
			}
		}
	}
	return cur
}

// WriteFile saves the repro as indented JSON under dir, named after
// the scenario, and returns the path.
func (r *Repro) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Scenario.Name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadRepro reads a repro file written by WriteFile.
func LoadRepro(path string) (*Repro, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("repro %s: %w", path, err)
	}
	if r.Scenario == nil {
		return nil, fmt.Errorf("repro %s: no scenario", path)
	}
	return &r, nil
}
