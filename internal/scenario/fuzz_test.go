package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"

	"heteroos/internal/guestos"
)

const reproDir = "testdata/fuzz/repros"

// failNew asserts that a fresh failure writes a shrunken repro before
// failing the test, so every fuzz discovery leaves a replayable file.
func failWithRepro(t *testing.T, seed uint64, sc *Scenario, err error) {
	t.Helper()
	r := Shrink(context.Background(), &Repro{Seed: seed, Scenario: sc, Err: err.Error()})
	path, werr := r.WriteFile(reproDir)
	if werr != nil {
		t.Fatalf("seed %d: %v (writing repro also failed: %v)", seed, err, werr)
	}
	t.Fatalf("seed %d: %v (shrunken repro: %s)", seed, err, path)
}

// TestFuzzSmoke drives a fixed band of seeds through the generator and
// the strict harness: every generated scenario must validate and run
// with invariants intact after every event and epoch. This is the
// `make fuzz-smoke` gate.
func TestFuzzSmoke(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 20; seed++ {
		sc := Generate(seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced an invalid scenario: %v", seed, err)
		}
		if err := CheckScenario(ctx, sc, nil); err != nil {
			failWithRepro(t, seed, sc, err)
		}
	}
}

// TestGenerateDeterministic: the generator is a pure function of seed.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 7, 1<<40 + 3} {
		a, b := Generate(seed), Generate(seed)
		aj, bj := mustJSON(t, a), mustJSON(t, b)
		if aj != bj {
			t.Fatalf("seed %d generated two different scenarios:\n%s\nvs\n%s", seed, aj, bj)
		}
	}
}

func mustJSON(t *testing.T, v interface{}) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// FuzzScenario is the go-test fuzzing entry: any seed the engine finds
// that breaks an invariant is shrunk and written to testdata before
// the failure reports.
func FuzzScenario(f *testing.F) {
	for _, s := range []uint64{1, 7, 23, 42, 1337} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sc := Generate(seed)
		if err := CheckScenario(context.Background(), sc, nil); err != nil {
			failWithRepro(t, seed, sc, err)
		}
	})
}

// TestHarnessCatchesInjectedDefect: the strict harness must flag a
// deliberately corrupted run, and must flag it as an invariant-class
// failure (not a benign rejection).
func TestHarnessCatchesInjectedDefect(t *testing.T) {
	ctx := context.Background()
	sc := Generate(5)
	defect := &Defect{Kind: DefectStealFrame, At: 6}
	err := CheckScenario(ctx, sc, defect)
	if err == nil {
		t.Fatal("stolen frame escaped the invariant harness")
	}
	if !errors.Is(err, ErrInvariant) {
		t.Fatalf("defect classified as benign: %v", err)
	}
	if CheckScenario(ctx, sc, nil) != nil {
		t.Fatal("the same scenario without the defect should pass")
	}
}

// TestShrinkInjectedDefect: the shrinker must preserve the failure
// while reducing the case — fewer-or-equal events, a horizon pulled in
// to just past the defect epoch, and the defect itself pulled toward
// epoch zero.
func TestShrinkInjectedDefect(t *testing.T) {
	ctx := context.Background()
	sc := Generate(11)
	r := &Repro{Seed: 11, Scenario: sc, Defect: &Defect{Kind: DefectStealFrame, At: 9}}
	if err := CheckScenario(ctx, sc, r.Defect); err == nil {
		t.Fatal("seed 11 + defect did not fail; pick another seed")
	} else {
		r.Err = err.Error()
	}

	min := Shrink(ctx, r)
	if err := CheckScenario(ctx, min.Scenario, min.Defect); err == nil {
		t.Fatal("shrunken repro no longer fails")
	}
	if err := min.Scenario.Validate(); err != nil {
		t.Fatalf("shrunken repro is invalid: %v", err)
	}
	if len(min.Scenario.Events) > len(sc.Events) {
		t.Errorf("shrink grew the script: %d -> %d events", len(sc.Events), len(min.Scenario.Events))
	}
	if got, limit := min.Scenario.maxEpochs(), min.Defect.At+1; got > limit {
		t.Errorf("horizon %d not pulled in to defect epoch + 1 (%d)", got, limit)
	}
	if min.Defect.At != 0 {
		t.Errorf("defect epoch %d not pulled to zero", min.Defect.At)
	}
	if len(min.Scenario.VMs) != 1 {
		t.Errorf("shrunken repro keeps %d epoch-0 VMs, want 1", len(min.Scenario.VMs))
	}
	// The original repro must be untouched.
	if r.Scenario.maxEpochs() != sc.maxEpochs() || r.Defect.At != 9 {
		t.Error("Shrink modified its input")
	}
}

// TestShrinkCleanCaseIsNoop: shrinking something that does not fail
// returns it unchanged rather than looping.
func TestShrinkCleanCaseIsNoop(t *testing.T) {
	sc := Generate(3)
	r := &Repro{Seed: 3, Scenario: sc}
	out := Shrink(context.Background(), r)
	if mustJSON(t, out.Scenario) != mustJSON(t, sc) {
		t.Error("shrinking a passing case changed the scenario")
	}
}

// TestGuestPanicContained replays the fuzzer's first real find: a
// guest too small for its workload exhausts page-table memory. The
// guest kernel panic must surface as an ordinary run error attributed
// to the VM — not a process panic, and not a fuzzing defect (the
// scenario asked for an impossible guest; the stack refusing it
// cleanly is correct behavior).
func TestGuestPanicContained(t *testing.T) {
	sc := New("guest-oom", 42).WithMachine(1024, 8192).WithMaxEpochs(4)
	sc.StartVM(VMDesc{ID: 2, App: "writeheavy", Mode: "HeteroOS-coordinated-NVM", FastPages: 64, SlowPages: 512})
	_, err := sc.Run(context.Background(), nil)
	if err == nil {
		t.Fatal("undersized guest ran clean; expected a contained guest kernel panic")
	}
	var gp *guestos.GuestPanic
	if !errors.As(err, &gp) {
		t.Fatalf("error is not a contained guest panic: %v", err)
	}
	if err := CheckScenario(context.Background(), sc, nil); err != nil {
		t.Fatalf("contained guest panic misclassified as a fuzzing defect: %v", err)
	}
}

// TestCommittedRepro replays the checked-in demo repro: the committed
// minimal case must still reproduce its invariant failure, proving the
// repro format round-trips and the harness detection is stable.
func TestCommittedRepro(t *testing.T) {
	r, err := LoadRepro(reproDir + "/steal-frame-demo.json")
	if err != nil {
		t.Fatal(err)
	}
	ferr := CheckScenario(context.Background(), r.Scenario, r.Defect)
	if ferr == nil {
		t.Fatal("committed repro no longer reproduces")
	}
	if !errors.Is(ferr, ErrInvariant) {
		t.Fatalf("committed repro failed for the wrong reason: %v", ferr)
	}
}

// TestRegenDemoRepro rewrites the committed demo repro from scratch
// (generate, inject, shrink, write). Gated behind REGEN_REPRO=1 so it
// only runs when the format or the shrinker changes on purpose.
func TestRegenDemoRepro(t *testing.T) {
	if os.Getenv("REGEN_REPRO") != "1" {
		t.Skip("set REGEN_REPRO=1 to rewrite the committed demo repro")
	}
	ctx := context.Background()
	sc := Generate(11)
	r := &Repro{Seed: 11, Scenario: sc, Defect: &Defect{Kind: DefectStealFrame, At: 9}}
	err := CheckScenario(ctx, sc, r.Defect)
	if err == nil {
		t.Fatal("demo defect does not fail")
	}
	r.Err = err.Error()
	min := Shrink(ctx, r)
	min.Scenario.Name = "steal-frame-demo"
	path, err := min.WriteFile(reproDir)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
