package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"sort"

	"embed"
)

// bundledFS embeds the scenarios that ship with the simulator, so
// `heterosim -scenario churn.json` works from any directory.
//
//go:embed scenarios/*.json
var bundledFS embed.FS

// Bundled lists the embedded scenario file names.
func Bundled() []string {
	entries, err := bundledFS.ReadDir("scenarios")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// Parse decodes and validates a JSON scenario.
func Parse(data []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadBundled loads an embedded scenario by file name (e.g.
// "churn.json").
func LoadBundled(name string) (*Scenario, error) {
	data, err := bundledFS.ReadFile(path.Join("scenarios", name))
	if err != nil {
		return nil, fmt.Errorf("scenario: no bundled scenario %q (have %v)", name, Bundled())
	}
	return Parse(data)
}

// LoadFile loads a scenario from disk; when the path does not exist and
// its base name matches a bundled scenario, the bundled one is used, so
// the shipped scenarios work without checked-out sources. The fallback
// triggers only on fs.ErrNotExist — any other read failure (permission
// denied, path is a directory, I/O error) is reported as-is rather than
// silently masked by a bundled scenario of the same name.
func LoadFile(p string) (*Scenario, error) {
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if sc, berr := LoadBundled(path.Base(p)); berr == nil {
				return sc, nil
			}
		}
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}
