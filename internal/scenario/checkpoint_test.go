package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/obs"
)

// eventful builds a scenario exercising every event kind alongside the
// checkpoint machinery: mid-run boot and shutdown, a surge window, a
// migration stall, a balloon refusal, and a throttle shift.
func eventful(name string, seed uint64) *Scenario {
	sc := contended(name, seed).WithMaxEpochs(48)
	sc.BootAt(6, VMDesc{
		ID: 4, App: "stream", Mode: "HeteroOS-coordinated",
		FastPages: 128, SlowPages: 1024,
	})
	sc.SurgeAt(8, 1, 10, 3)
	sc.MigrationStallAt(10, 2, 8)
	sc.BalloonRefusalAt(12, 3, 6)
	sc.ShutdownAt(18, 2)
	sc.ThrottleShiftAt(20, memsim.Throttle{L: 8, B: 12})
	return sc
}

// runWithEvents executes fn against a JSONL-sinked obs handle and
// returns the marshalled result (Sys excluded by its json:"-" tag) and
// the raw event stream.
func runWithEvents(t *testing.T, fn func(h *obs.Obs) (*Result, error)) (resultJSON, events []byte) {
	t.Helper()
	var buf bytes.Buffer
	h := obs.New()
	h.SetRunTag("ckpt")
	h.Tracer.AddSink(obs.NewJSONLSink(&buf, "ckpt"))
	r, err := fn(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out, buf.Bytes()
}

// eventTail strips the JSONL meta header and returns the event lines.
func eventLines(b []byte) [][]byte {
	lines := bytes.Split(b, []byte("\n"))
	if len(lines) > 0 {
		lines = lines[1:] // meta header
	}
	return lines
}

// TestCheckpointNonPerturbation: a run with periodic checkpointing must
// produce results and an event stream byte-identical to a plain run of
// the same scenario — writing snapshots never alters the simulation.
func TestCheckpointNonPerturbation(t *testing.T) {
	dir := t.TempDir()
	plainRes, plainEv := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return eventful("ckpt", 23).Run(context.Background(), h)
	})
	ckRes, ckEv := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return eventful("ckpt", 23).RunWithCheckpoints(context.Background(), h,
			CheckpointOptions{Every: 7, Path: filepath.Join(dir, "latest.hosnap")})
	})
	if !bytes.Equal(plainRes, ckRes) {
		t.Errorf("results differ with checkpointing on:\n%s\nvs\n%s", plainRes, ckRes)
	}
	if !bytes.Equal(plainEv, ckEv) {
		t.Errorf("event streams differ with checkpointing on (%d vs %d bytes)", len(plainEv), len(ckEv))
	}
	if _, err := os.Stat(filepath.Join(dir, "latest.hosnap")); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
}

// TestResumeParity is the restore gold standard at the scenario level:
// resume a mid-run checkpoint and the remaining epochs must reproduce
// the uninterrupted run exactly — same Result JSON, and an event
// stream equal to the tail of the full run's.
func TestResumeParity(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "mid.hosnap")

	fullRes, fullEv := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		// A checkpoint event mid-script: after the surge started, while
		// the stall and refusal windows are open, before the shutdown.
		return eventful("ckpt", 23).CheckpointAt(14, ckPath).Run(context.Background(), h)
	})
	resumedRes, resumedEv := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return ResumeFile(context.Background(), ckPath, h, CheckpointOptions{})
	})
	if !bytes.Equal(fullRes, resumedRes) {
		t.Errorf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", fullRes, resumedRes)
	}
	full, resumed := eventLines(fullEv), eventLines(resumedEv)
	if len(resumed) == 0 || len(resumed) > len(full) {
		t.Fatalf("resumed stream has %d event lines, full has %d", len(resumed), len(full))
	}
	tail := full[len(full)-len(resumed):]
	for i := range resumed {
		if !bytes.Equal(tail[i], resumed[i]) {
			t.Fatalf("resumed event %d differs from full-run tail:\nfull    %s\nresumed %s",
				i, tail[i], resumed[i])
		}
	}
}

// TestResumeAcrossBackends checks checkpoint/restore under the coarse
// backend (whose pricing state self-refreshes from the machine spec).
func TestResumeAcrossBackends(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "coarse.hosnap")
	mk := func() *Scenario {
		sc := eventful("ckpt-coarse", 31)
		sc.Backend = "coarse"
		return sc
	}
	fullRes, _ := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return mk().CheckpointAt(21, ckPath).Run(context.Background(), h)
	})
	resumedRes, _ := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return ResumeFile(context.Background(), ckPath, h, CheckpointOptions{})
	})
	if !bytes.Equal(fullRes, resumedRes) {
		t.Errorf("resumed coarse-backend result differs:\n%s\nvs\n%s", fullRes, resumedRes)
	}
}

// TestResumeChainedCheckpoints resumes a run that itself keeps
// checkpointing, then resumes the second-generation checkpoint —
// checkpoints of resumed runs must be as good as first-generation ones.
func TestResumeChainedCheckpoints(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "first.hosnap")
	second := filepath.Join(dir, "second.hosnap")

	fullRes, _ := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return eventful("ckpt", 23).CheckpointAt(9, first).CheckpointAt(25, second).Run(context.Background(), h)
	})
	// Resume the first checkpoint; it re-writes the second on its way.
	if err := os.Remove(second); err != nil {
		t.Fatal(err)
	}
	midRes, _ := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return ResumeFile(context.Background(), first, h, CheckpointOptions{})
	})
	if !bytes.Equal(fullRes, midRes) {
		t.Errorf("first-generation resume differs from full run")
	}
	lastRes, _ := runWithEvents(t, func(h *obs.Obs) (*Result, error) {
		return ResumeFile(context.Background(), second, h, CheckpointOptions{})
	})
	if !bytes.Equal(fullRes, lastRes) {
		t.Errorf("second-generation resume differs from full run")
	}
}

// TestResumeRejectsForeignMeta feeds Resume a snapshot whose meta blob
// is not a scenario checkpoint.
func TestResumeRejectsForeignMeta(t *testing.T) {
	if _, err := ResumeFile(context.Background(), filepath.Join(t.TempDir(), "absent.hosnap"), nil, CheckpointOptions{}); err == nil {
		t.Fatal("resuming a missing file succeeded")
	}
}
