package obs

import "heteroos/internal/sim"

// Obs bundles one run's tracer and metrics registry. A nil *Obs means
// observability is off; every instrumented layer guards its probes
// with a nil check on its attached scope, so the default path never
// touches this package at runtime.
type Obs struct {
	// Tracer is the run's event ring.
	Tracer *Tracer
	// Metrics is the run's instrument registry.
	Metrics *Registry
	runTag  string
}

// New builds an enabled observability handle with a default-capacity
// tracer (no sinks — events are counted and dropped until a sink is
// attached) and an empty registry.
func New() *Obs {
	return &Obs{Tracer: NewTracer(0), Metrics: NewRegistry()}
}

// SetRunTag labels the handle with the run's identity (experiment
// label, CLI config, seed) so exporters can stamp their output.
func (o *Obs) SetRunTag(tag string) {
	if o != nil {
		o.runTag = tag
	}
}

// RunTag returns the label set by SetRunTag.
func (o *Obs) RunTag() string {
	if o == nil {
		return ""
	}
	return o.runTag
}

// Close flushes the tracer and closes its sinks.
func (o *Obs) Close() error {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Close()
}

// Scope is the per-VM view layers hold: it stamps emitted events with
// the VM id and the VM's simulated clock, and namespaces metric names
// ("vm1.guestos.demotions"). Core builds one scope per VM at boot and
// hands it down; a nil *Scope disables every method, which is what
// makes `if scope != nil` the only guard call sites need.
type Scope struct {
	o   *Obs
	vm  int32
	now func() sim.Duration
}

// Scope derives a scope for vm whose events are timestamped by now.
// vm 0 is the system scope (VMM-global actions such as DRF
// rebalances); its metric names are not prefixed.
func (o *Obs) Scope(vm int, now func() sim.Duration) *Scope {
	if o == nil {
		return nil
	}
	return &Scope{o: o, vm: int32(vm), now: now}
}

// prefix returns the scope's metric-name prefix.
func (s *Scope) prefix() string {
	if s.vm == 0 {
		return ""
	}
	return "vm" + itoa(int(s.vm)) + "."
}

// itoa is a tiny positive-int formatter; scopes are built at boot so
// this is not hot, it just avoids importing strconv into every caller
// chain for two-digit VM ids.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Counter registers (or finds) the scope-prefixed counter name.
func (s *Scope) Counter(name string) *Counter {
	return s.o.Metrics.Counter(s.prefix() + name)
}

// Gauge registers (or finds) the scope-prefixed gauge name.
func (s *Scope) Gauge(name string) *Gauge {
	return s.o.Metrics.Gauge(s.prefix() + name)
}

// Histogram registers (or finds) the scope-prefixed histogram name.
func (s *Scope) Histogram(name string) *Histogram {
	return s.o.Metrics.Histogram(s.prefix() + name)
}

// Emit records an event stamped with the scope's VM id and current
// simulated time. Zero-allocation: the event lands in the tracer's
// preallocated ring.
func (s *Scope) Emit(typ Type, dir Dir, tier uint8, pfn, n, aux uint64, cost float64) {
	s.o.Tracer.Emit(Event{
		Time: s.now(),
		VM:   s.vm,
		Type: typ,
		Dir:  dir,
		Tier: tier,
		PFN:  pfn,
		N:    n,
		Aux:  aux,
		Cost: cost,
	})
}
