package obs

import (
	"strings"

	"heteroos/internal/sim"
)

// DroppedCounterName is the root-scope counter mirroring
// Tracer.Dropped so snapshots and exports surface silent event loss.
const DroppedCounterName = "tracer_dropped_events"

// Obs bundles one run's tracer and metrics registry. A nil *Obs means
// observability is off; every instrumented layer guards its probes
// with a nil check on its attached scope, so the default path never
// touches this package at runtime.
type Obs struct {
	// Tracer is the run's event ring.
	Tracer *Tracer
	// Metrics is the run's instrument registry (the scope-tree root for
	// this handle; job handles built by JobScope share the parent's tree
	// through a child registry).
	Metrics   *Registry
	runTag    string
	epochHook func(epoch int)
}

// New builds an enabled observability handle with a default-capacity
// tracer (no sinks — events are counted and dropped until a sink is
// attached) and an empty registry.
func New() *Obs {
	o := &Obs{Tracer: NewTracer(0), Metrics: NewRegistry()}
	o.Tracer.dropCounter = o.Metrics.Counter(DroppedCounterName)
	return o
}

// JobScope derives a child handle for one job (a sweep point, a
// scenario in a batch): its own tracer ring — tracers are
// single-goroutine, so concurrent jobs must not share one — and a
// child registry scoped under label, so the parent's Snapshot sees the
// job's metrics under "label/..." and Rollup aggregates across jobs.
// Closing the child closes only the child's tracer.
func (o *Obs) JobScope(label string) *Obs {
	if o == nil {
		return nil
	}
	reg := o.Metrics.Scope(sanitizeScope(label))
	c := &Obs{Tracer: NewTracer(0), Metrics: reg, runTag: label}
	c.Tracer.dropCounter = reg.Counter(DroppedCounterName)
	return c
}

// NestedJobScope is JobScope for hierarchical identities: each segment
// becomes one scope level, so NestedJobScope("host", "3") lands the
// child's metrics under "host/3/..." of the parent tree. A fleet of
// hosts then shares one "host" subtree, and the parent's Snapshot can
// slice per host or Rollup across all of them. Like JobScope, the
// child gets its own tracer (tracers are single-goroutine) and closing
// it closes only that tracer.
func (o *Obs) NestedJobScope(segments ...string) *Obs {
	if o == nil {
		return nil
	}
	reg := o.Metrics
	for _, seg := range segments {
		reg = reg.Scope(sanitizeScope(seg))
	}
	c := &Obs{Tracer: NewTracer(0), Metrics: reg, runTag: strings.Join(segments, ScopeSep)}
	c.Tracer.dropCounter = reg.Counter(DroppedCounterName)
	return c
}

// sanitizeScope makes label a single scope-path segment: ScopeSep
// would silently split it into two levels, so it is replaced.
func sanitizeScope(label string) string {
	if label == "" {
		return "job"
	}
	return strings.ReplaceAll(label, ScopeSep, "_")
}

// SetRunTag labels the handle with the run's identity (experiment
// label, CLI config, seed) so exporters can stamp their output.
func (o *Obs) SetRunTag(tag string) {
	if o != nil {
		o.runTag = tag
	}
}

// RunTag returns the label set by SetRunTag.
func (o *Obs) RunTag() string {
	if o == nil {
		return ""
	}
	return o.runTag
}

// SetEpochHook installs fn to be called once per completed system
// epoch (from the simulation goroutine). Live exporters use it to
// publish fresh snapshots without the simulation ever sharing its
// registries with another goroutine.
func (o *Obs) SetEpochHook(fn func(epoch int)) {
	if o != nil {
		o.epochHook = fn
	}
}

// EpochTick invokes the epoch hook, if any. Called by core at the end
// of each StepEpoch; nil-receiver safe like every Obs method.
func (o *Obs) EpochTick(epoch int) {
	if o != nil && o.epochHook != nil {
		o.epochHook(epoch)
	}
}

// DroppedWarning returns a human-readable warning when the tracer
// discarded events (ring overflow with no sink attached), or "" when
// nothing was lost. CLIs print it to stderr at close.
func (o *Obs) DroppedWarning() string {
	if o == nil || o.Tracer == nil || o.Tracer.Dropped() == 0 {
		return ""
	}
	n := o.Tracer.Dropped()
	return "warning: event tracer dropped " + utoa(n) +
		" events (ring overflow with no sink attached; pass -events FILE to capture the full stream)"
}

// Close flushes the tracer and closes its sinks.
func (o *Obs) Close() error {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Close()
}

// Scope is the per-VM view layers hold: it stamps emitted events with
// the VM id and the VM's simulated clock, and namespaces metrics in a
// per-VM child registry ("vm1/guestos.demotions"). Core builds one
// scope per VM at boot and hands it down; a nil *Scope disables every
// method, which is what makes `if scope != nil` the only guard call
// sites need.
type Scope struct {
	o   *Obs
	reg *Registry
	vm  int32
	now func() sim.Duration
}

// Scope derives a scope for vm whose events are timestamped by now.
// vm 0 is the system scope (VMM-global actions such as DRF
// rebalances); its metrics live on the handle's root registry, while
// vm N metrics live in the "vmN" child scope.
func (o *Obs) Scope(vm int, now func() sim.Duration) *Scope {
	if o == nil {
		return nil
	}
	reg := o.Metrics
	if vm != 0 {
		reg = reg.Scope("vm" + itoa(vm))
	}
	return &Scope{o: o, reg: reg, vm: int32(vm), now: now}
}

// Registry returns the scope's registry (the per-VM child, or the
// handle root for the system scope). Nil-receiver safe.
func (s *Scope) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// itoa is a tiny positive-int formatter; scopes are built at boot so
// this is not hot, it just avoids importing strconv into every caller
// chain for two-digit VM ids.
func itoa(v int) string {
	if v <= 0 {
		return "0"
	}
	return utoa(uint64(v))
}

// utoa formats an unsigned integer.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Counter registers (or finds) the counter name in the scope registry.
func (s *Scope) Counter(name string) *Counter {
	return s.reg.Counter(name)
}

// Gauge registers (or finds) the gauge name in the scope registry.
func (s *Scope) Gauge(name string) *Gauge {
	return s.reg.Gauge(name)
}

// Histogram registers (or finds) the histogram name in the scope
// registry.
func (s *Scope) Histogram(name string) *Histogram {
	return s.reg.Histogram(name)
}

// Emit records an event stamped with the scope's VM id and current
// simulated time. Zero-allocation: the event lands in the tracer's
// preallocated ring.
func (s *Scope) Emit(typ Type, dir Dir, tier uint8, pfn, n, aux uint64, cost float64) {
	s.o.Tracer.Emit(Event{
		Time: s.now(),
		VM:   s.vm,
		Type: typ,
		Dir:  dir,
		Tier: tier,
		PFN:  pfn,
		N:    n,
		Aux:  aux,
		Cost: cost,
	})
}
