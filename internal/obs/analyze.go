package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"heteroos/internal/metrics"
	"heteroos/internal/sim"
)

// This file is the offline half of the tracer: it parses the JSONL
// event stream the JSONLSink writes and derives the statistics the
// heterotrace CLI reports — migration latency distributions per tier
// pair, per-VM FastMem residency timelines, fault-injection windows
// with recovery times, and balloon-refusal runs. Everything here runs
// after the simulation, so it favours exactness (sorted quantiles)
// over the zero-allocation discipline of the live path.

// typeByName and dirByName invert the stable wire names, so the parser
// stays in lockstep with the sinks by construction.
var (
	typeByName = func() map[string]Type {
		m := make(map[string]Type, int(numTypes))
		for t := Type(0); t < numTypes; t++ {
			m[t.String()] = t
		}
		return m
	}()
	dirByName = func() map[string]Dir {
		m := make(map[string]Dir, int(numDirs))
		for d := Dir(0); d < numDirs; d++ {
			m[d.String()] = d
		}
		return m
	}()
)

// MarshalJSON renders the type by its stable wire name, matching the
// JSONL stream (used by heterotrace's JSON reports).
func (t Type) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// MarshalJSON renders the direction by its stable wire name.
func (d Dir) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// tierByName inverts TierName.
func tierByName(s string) (uint8, bool) {
	switch s {
	case "fast":
		return TierFast, true
	case "slow":
		return TierSlow, true
	case "-":
		return TierNone, true
	default:
		return 0, false
	}
}

// Trace is a parsed JSONL event stream.
type Trace struct {
	// Run is the run tag from the stream's meta header.
	Run string
	// Version is the stream format version from the meta header.
	Version int
	// Events holds every decoded event in stream (time) order.
	Events []Event
}

// wireEvent mirrors the JSONL field set written by appendEventFields.
type wireEvent struct {
	T    int64   `json:"t"`
	VM   int32   `json:"vm"`
	Ev   string  `json:"ev"`
	Dir  string  `json:"dir"`
	Tier string  `json:"tier"`
	PFN  uint64  `json:"pfn"`
	N    uint64  `json:"n"`
	Aux  uint64  `json:"aux"`
	Cost float64 `json:"cost"`
	// Meta header fields (only on line 1).
	Meta    string `json:"meta"`
	Version int    `json:"version"`
	Run     string `json:"run"`
}

// ParseJSONL decodes a JSONL event stream produced by JSONLSink. The
// meta header is optional (grep/head fragments parse fine); unknown
// event or direction names are an error so silent taxonomy drift
// cannot corrupt an analysis.
func ParseJSONL(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var w wireEvent
		if err := json.Unmarshal(line, &w); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if w.Meta != "" {
			if w.Meta != "heteroos-events" {
				return nil, fmt.Errorf("line %d: unknown stream kind %q", lineNo, w.Meta)
			}
			tr.Run, tr.Version = w.Run, w.Version
			continue
		}
		ty, ok := typeByName[w.Ev]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown event type %q", lineNo, w.Ev)
		}
		dir, ok := dirByName[w.Dir]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown direction %q", lineNo, w.Dir)
		}
		tier, ok := tierByName(w.Tier)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown tier %q", lineNo, w.Tier)
		}
		tr.Events = append(tr.Events, Event{
			Time: sim.Duration(w.T), VM: w.VM, Type: ty, Dir: dir,
			Tier: tier, PFN: w.PFN, N: w.N, Aux: w.Aux, Cost: w.Cost,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// --- migration latency distributions per tier pair ---

// MigrationGroup aggregates the migrations of one direction (one tier
// pair and executor).
type MigrationGroup struct {
	// Dir is the migration variant (promote/demote/vmm-promote/...).
	Dir Dir `json:"dir"`
	// From and To name the tier pair the direction implies.
	From string `json:"from"`
	To   string `json:"to"`
	// Events counts migration events, Pages the pages they moved.
	Events uint64 `json:"events"`
	Pages  uint64 `json:"pages"`
	// CostTotal sums the charged simulated nanoseconds; the quantiles
	// are exact (computed over the sorted per-event costs).
	CostTotal float64 `json:"cost_total_ns"`
	CostMean  float64 `json:"cost_mean_ns"`
	CostP50   float64 `json:"cost_p50_ns"`
	CostP99   float64 `json:"cost_p99_ns"`
	CostMax   float64 `json:"cost_max_ns"`

	costs []float64
}

// tierPair names the source and destination tier a migration direction
// implies (the event's Tier byte is the destination).
func tierPair(d Dir) (from, to string) {
	switch d {
	case DirPromote, DirVMMPromote:
		return "slow", "fast"
	case DirDemote, DirVMMDemote:
		return "fast", "slow"
	default:
		return "-", "-"
	}
}

// exactQuantile reads quantile q from sorted (ascending) samples using
// the nearest-rank method.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Migrations groups the trace's migration events by direction, in
// fixed direction order (promote, demote, vmm-promote, vmm-demote).
// Directions with no events are omitted.
func (tr *Trace) Migrations() []MigrationGroup {
	byDir := map[Dir]*MigrationGroup{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Type != EvMigration {
			continue
		}
		g := byDir[ev.Dir]
		if g == nil {
			from, to := tierPair(ev.Dir)
			g = &MigrationGroup{Dir: ev.Dir, From: from, To: to}
			byDir[ev.Dir] = g
		}
		g.Events++
		g.Pages += ev.N
		g.CostTotal += ev.Cost
		g.costs = append(g.costs, ev.Cost)
	}
	var out []MigrationGroup
	for _, d := range []Dir{DirPromote, DirDemote, DirVMMPromote, DirVMMDemote} {
		g := byDir[d]
		if g == nil {
			continue
		}
		sort.Float64s(g.costs)
		g.CostMean = g.CostTotal / float64(g.Events)
		g.CostP50 = exactQuantile(g.costs, 0.50)
		g.CostP99 = exactQuantile(g.costs, 0.99)
		g.CostMax = g.costs[len(g.costs)-1]
		out = append(out, *g)
	}
	return out
}

// MigrationTotals sums migrated pages per VM, split by direction and
// executor the same way core.VMResult accounts them: Promoted/Demoted
// are guest-executed (coordinated) pages reconciling with
// VMResult.Promotions/Demotions, and VMMPromoted+VMMDemoted reconcile
// with VMResult.VMMMigrations on a run whose event stream was fully
// captured.
type MigrationTotals struct {
	Promoted    uint64 `json:"promoted_pages"`
	Demoted     uint64 `json:"demoted_pages"`
	VMMPromoted uint64 `json:"vmm_promoted_pages"`
	VMMDemoted  uint64 `json:"vmm_demoted_pages"`
}

// FastIn reports all pages moved into FastMem regardless of executor;
// FastOut the reverse.
func (t MigrationTotals) FastIn() uint64  { return t.Promoted + t.VMMPromoted }
func (t MigrationTotals) FastOut() uint64 { return t.Demoted + t.VMMDemoted }

// MigrationsByVM returns per-VM migration page totals.
func (tr *Trace) MigrationsByVM() map[int32]MigrationTotals {
	out := map[int32]MigrationTotals{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Type != EvMigration {
			continue
		}
		t := out[ev.VM]
		switch ev.Dir {
		case DirPromote:
			t.Promoted += ev.N
		case DirDemote:
			t.Demoted += ev.N
		case DirVMMPromote:
			t.VMMPromoted += ev.N
		case DirVMMDemote:
			t.VMMDemoted += ev.N
		}
		out[ev.VM] = t
	}
	return out
}

// MigrationTable renders the per-direction migration report.
func MigrationTable(groups []MigrationGroup) *metrics.Table {
	t := metrics.NewTable("Migrations by tier pair",
		"dir", "from", "to", "events", "pages",
		"cost_total_ns", "cost_mean_ns", "cost_p50_ns", "cost_p99_ns", "cost_max_ns")
	t.Caption = "simulated per-event migration cost; quantiles are exact (nearest rank)"
	for _, g := range groups {
		t.AddRow(g.Dir.String(), g.From, g.To, g.Events, g.Pages,
			g.CostTotal, g.CostMean, g.CostP50, g.CostP99, g.CostMax)
	}
	return t
}

// --- per-VM FastMem residency timelines ---

// ResidencyPoint is one time bucket of one VM's FastMem residency
// delta: the net fast pages gained (positive) or lost (negative)
// through migrations and balloon traffic inside the bucket.
type ResidencyPoint struct {
	// Start is the bucket's inclusive start time in simulated ns.
	Start int64 `json:"start_ns"`
	// Delta is the bucket's net fast-page movement.
	Delta int64 `json:"delta_pages"`
	// Net is the running net residency (cumulative deltas) at the
	// bucket's end, relative to the VM's residency at trace start.
	Net int64 `json:"net_pages"`
}

// ResidencyTimeline is one VM's bucketed FastMem residency series.
type ResidencyTimeline struct {
	VM     int32            `json:"vm"`
	Points []ResidencyPoint `json:"points"`
}

// fastDelta maps an event to its net FastMem page effect for the
// emitting VM (0 when the event does not move fast pages).
func fastDelta(ev *Event) int64 {
	switch ev.Type {
	case EvMigration:
		switch ev.Dir {
		case DirPromote, DirVMMPromote:
			return int64(ev.N)
		case DirDemote, DirVMMDemote:
			return -int64(ev.N)
		}
	case EvBalloon:
		if ev.Tier != TierFast {
			return 0
		}
		switch ev.Dir {
		case DirDeflate: // guest populated fast frames
			return int64(ev.N)
		case DirInflate: // guest released fast frames
			return -int64(ev.N)
		}
	}
	return 0
}

// Residency buckets each VM's net FastMem movement over the trace's
// time span into the given number of equal-width buckets (minimum 1).
// VMs are reported in ascending id order; VM 0 (system scope) is
// skipped because lifecycle events carry no residency.
func (tr *Trace) Residency(buckets int) []ResidencyTimeline {
	if buckets < 1 {
		buckets = 1
	}
	var tmin, tmax int64
	first := true
	for i := range tr.Events {
		t := int64(tr.Events[i].Time)
		if first {
			tmin, tmax, first = t, t, false
			continue
		}
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if first {
		return nil
	}
	span := tmax - tmin + 1
	width := span / int64(buckets)
	if width == 0 {
		width = 1
	}
	series := map[int32][]int64{}
	for i := range tr.Events {
		ev := &tr.Events[i]
		d := fastDelta(ev)
		if d == 0 || ev.VM == 0 {
			continue
		}
		s := series[ev.VM]
		if s == nil {
			s = make([]int64, buckets)
			series[ev.VM] = s
		}
		b := int((int64(ev.Time) - tmin) / width)
		if b >= buckets {
			b = buckets - 1
		}
		s[b] += d
	}
	vms := make([]int32, 0, len(series))
	for vm := range series {
		vms = append(vms, vm)
	}
	sort.Slice(vms, func(i, j int) bool { return vms[i] < vms[j] })
	out := make([]ResidencyTimeline, 0, len(vms))
	for _, vm := range vms {
		tl := ResidencyTimeline{VM: vm, Points: make([]ResidencyPoint, buckets)}
		var net int64
		for b := 0; b < buckets; b++ {
			net += series[vm][b]
			tl.Points[b] = ResidencyPoint{
				Start: tmin + int64(b)*width,
				Delta: series[vm][b],
				Net:   net,
			}
		}
		out = append(out, tl)
	}
	return out
}

// ResidencyTable renders residency timelines, one row per (vm, bucket)
// with delta and running net.
func ResidencyTable(timelines []ResidencyTimeline) *metrics.Table {
	t := metrics.NewTable("FastMem residency timeline (net pages vs trace start)",
		"vm", "bucket", "start_ns", "delta_pages", "net_pages")
	t.Caption = "migration and fast-tier balloon traffic bucketed over the trace span"
	for _, tl := range timelines {
		for b, p := range tl.Points {
			if p.Delta == 0 && (b == 0 || tl.Points[b-1].Net == p.Net) && b != len(tl.Points)-1 {
				// Idle interior buckets add no information; keep the
				// final bucket so the ending net is always visible.
				continue
			}
			t.AddRow(tl.VM, b, p.Start, p.Delta, p.Net)
		}
	}
	return t
}

// --- fault-injection windows with recovery ---

// FaultWindow is one start/clear pair of a fault injection, plus the
// time the affected VM took to migrate again after the window cleared.
type FaultWindow struct {
	VM    int32  `json:"vm"`
	Fault string `json:"fault"`
	// Start and Clear are simulated timestamps; Clear is -1 for a
	// window still open at trace end.
	Start int64 `json:"start_ns"`
	Clear int64 `json:"clear_ns"`
	// Duration is Clear-Start (-1 while open).
	Duration int64 `json:"duration_ns"`
	// RecoveryNs is the delay from Clear to the VM's next migration
	// event (-1 if it never migrated again or the window never closed).
	RecoveryNs int64 `json:"recovery_ns"`
}

// FaultWindows pairs EvFaultInject start/clear events per (VM, fault
// code) and measures post-clear migration recovery.
func (tr *Trace) FaultWindows() []FaultWindow {
	type key struct {
		vm   int32
		code uint64
	}
	open := map[key]int{} // index into out
	var out []FaultWindow
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Type != EvFaultInject {
			continue
		}
		k := key{ev.VM, ev.Aux}
		switch ev.Dir {
		case DirStart:
			open[k] = len(out)
			out = append(out, FaultWindow{
				VM: ev.VM, Fault: FaultName(ev.Aux),
				Start: int64(ev.Time), Clear: -1, Duration: -1, RecoveryNs: -1,
			})
		case DirClear:
			if idx, ok := open[k]; ok {
				w := &out[idx]
				w.Clear = int64(ev.Time)
				w.Duration = w.Clear - w.Start
				delete(open, k)
			}
		}
	}
	// Recovery: first migration event by the same VM at or after Clear.
	// Faults targeting VM 0 (system-wide, e.g. throttle shifts) recover
	// on any VM's migration.
	for wi := range out {
		w := &out[wi]
		if w.Clear < 0 {
			continue
		}
		for i := range tr.Events {
			ev := &tr.Events[i]
			if ev.Type != EvMigration || int64(ev.Time) < w.Clear {
				continue
			}
			if w.VM != 0 && ev.VM != w.VM {
				continue
			}
			w.RecoveryNs = int64(ev.Time) - w.Clear
			break
		}
	}
	return out
}

// FaultTable renders the fault-window report.
func FaultTable(windows []FaultWindow) *metrics.Table {
	t := metrics.NewTable("Fault-injection windows",
		"vm", "fault", "start_ns", "clear_ns", "duration_ns", "recovery_ns")
	t.Caption = "recovery = delay from window clear to the VM's next migration (-1: none)"
	for _, w := range windows {
		clear, dur := "open", "-"
		if w.Clear >= 0 {
			clear = fmt.Sprint(w.Clear)
			dur = fmt.Sprint(w.Duration)
		}
		rec := "-1"
		if w.RecoveryNs >= 0 {
			rec = fmt.Sprint(w.RecoveryNs)
		}
		t.AddRow(w.VM, w.Fault, w.Start, clear, dur, rec)
	}
	return t
}

// --- balloon-refusal runs ---

// RefusalRun is one maximal run of consecutive balloon-refused events
// for a VM (consecutive in that VM's event substream).
type RefusalRun struct {
	VM    int32 `json:"vm"`
	Start int64 `json:"start_ns"`
	End   int64 `json:"end_ns"`
	// Events counts the refusals in the run; ShortPages sums the pages
	// each populate request fell short by.
	Events     uint64 `json:"events"`
	ShortPages uint64 `json:"short_pages"`
}

// RefusalRuns groups balloon-refused events into per-VM runs: a run
// ends when the VM next emits a balloon event that was honoured.
func (tr *Trace) RefusalRuns() []RefusalRun {
	cur := map[int32]int{} // vm -> open run index
	var out []RefusalRun
	for i := range tr.Events {
		ev := &tr.Events[i]
		switch ev.Type {
		case EvBalloonRefused:
			idx, ok := cur[ev.VM]
			if !ok {
				idx = len(out)
				out = append(out, RefusalRun{VM: ev.VM, Start: int64(ev.Time)})
				cur[ev.VM] = idx
			}
			r := &out[idx]
			r.End = int64(ev.Time)
			r.Events++
			r.ShortPages += ev.N
		case EvBalloon:
			// An honoured balloon event closes the VM's open run.
			delete(cur, ev.VM)
		}
	}
	return out
}

// RefusalTable renders the balloon-refusal report.
func RefusalTable(runs []RefusalRun) *metrics.Table {
	t := metrics.NewTable("Balloon-refusal runs",
		"vm", "start_ns", "end_ns", "events", "short_pages")
	t.Caption = "a run is consecutive refusals until the VM's next honoured balloon op"
	for _, r := range runs {
		t.AddRow(r.VM, r.Start, r.End, r.Events, r.ShortPages)
	}
	return t
}
