package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// MetricsServer serves a live simulation's metrics over HTTP:
//
//	/metrics        OpenMetrics/Prometheus text format
//	/snapshot.json  the same snapshot as JSON (quantiles precomputed)
//
// The simulation goroutine never shares its registries with the HTTP
// handlers. Instead it publishes immutable Snapshot copies (typically
// from an Obs epoch hook), and handlers read the latest published one
// through an atomic pointer — a stale-by-at-most-one-epoch view with
// zero locking against the hot path.
type MetricsServer struct {
	srv *http.Server
	lis net.Listener
	cur atomic.Pointer[published]
}

// published is one immutable publication.
type published struct {
	snap Snapshot
	run  string
}

// NewMetricsServer binds addr (e.g. ":9090" or "127.0.0.1:0") and
// starts serving. The returned server is live immediately; publish
// snapshots as the run progresses and Close when done.
func NewMetricsServer(addr string) (*MetricsServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{lis: lis}
	m.cur.Store(&published{})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handleMetrics)
	mux.HandleFunc("/snapshot.json", m.handleJSON)
	m.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = m.srv.Serve(lis) }()
	return m, nil
}

// Addr reports the bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.lis.Addr().String() }

// Publish makes s the snapshot served from now on. Call it from the
// simulation goroutine (e.g. an Obs epoch hook); the snapshot must not
// be mutated afterwards — Registry.Snapshot always returns a fresh
// copy, so publishing its result directly is safe.
func (m *MetricsServer) Publish(s Snapshot, run string) {
	m.cur.Store(&published{snap: s, run: run})
}

// Close stops listening and shuts the server down.
func (m *MetricsServer) Close() error {
	return m.srv.Close()
}

func (m *MetricsServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	p := m.cur.Load()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	sink := &OpenMetricsSink{Run: p.run}
	_ = sink.WriteSnapshot(w, p.snap)
}

// jsonMetric is the /snapshot.json wire shape of one instrument.
type jsonMetric struct {
	Scope string  `json:"scope,omitempty"`
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	Sum   float64 `json:"sum,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

func (m *MetricsServer) handleJSON(w http.ResponseWriter, _ *http.Request) {
	p := m.cur.Load()
	out := struct {
		Run     string       `json:"run,omitempty"`
		Metrics []jsonMetric `json:"metrics"`
	}{Run: p.run, Metrics: make([]jsonMetric, 0, len(p.snap.Values))}
	for i := range p.snap.Values {
		v := &p.snap.Values[i]
		jm := jsonMetric{
			Scope: v.Scope, Name: v.Name, Kind: v.Kind.String(),
			Value: v.Value,
		}
		if v.Kind == KindHistogram {
			jm.Sum, jm.Max = v.Sum, v.Max
			jm.P50, jm.P99 = v.Quantile(0.50), v.Quantile(0.99)
		}
		out.Metrics = append(out.Metrics, jm)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
