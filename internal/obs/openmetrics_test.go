package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// buildExportRegistry populates a small scoped registry exercising all
// three instrument kinds across two scopes.
func buildExportRegistry() *Registry {
	r := NewRegistry()
	r.Counter("tracer_dropped_events").Add(3)
	vm1 := r.Scope("vm1")
	vm1.Counter("guestos.promotions").Add(12)
	vm1.Gauge("vmm.fast_free_pct").Set(37.5)
	h := vm1.Histogram("phase.scan.wall_ns")
	h.Observe(100)
	h.Observe(5000)
	h.Observe(5000)
	r.Scope("vm2").Counter("guestos.promotions").Add(30)
	return r
}

// TestOpenMetricsFormat pins the exposition format: family TYPE
// headers appear once, names get the heteroos_ prefix and counter
// _total suffix, scopes travel as labels, histograms emit cumulative
// le buckets with _sum/_count, and the stream ends with # EOF.
func TestOpenMetricsFormat(t *testing.T) {
	var sb strings.Builder
	sink := &OpenMetricsSink{Run: `churn "q" run`}
	if err := sink.WriteSnapshot(&sb, buildExportRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("output does not end with # EOF:\n%s", out)
	}
	if n := strings.Count(out, "# TYPE heteroos_guestos_promotions_total counter"); n != 1 {
		t.Errorf("promotions TYPE header count = %d, want 1 (shared family)\n%s", n, out)
	}
	for _, want := range []string{
		"# TYPE heteroos_tracer_dropped_events_total counter",
		"heteroos_tracer_dropped_events_total{run=\"churn \\\"q\\\" run\"} 3",
		"heteroos_guestos_promotions_total{scope=\"vm1\",run=\"churn \\\"q\\\" run\"} 12",
		"heteroos_guestos_promotions_total{scope=\"vm2\",run=\"churn \\\"q\\\" run\"} 30",
		"# TYPE heteroos_vmm_fast_free_pct gauge",
		"heteroos_vmm_fast_free_pct{scope=\"vm1\",run=\"churn \\\"q\\\" run\"} 37.5",
		"# TYPE heteroos_phase_scan_wall_ns histogram",
		"heteroos_phase_scan_wall_ns_count{scope=\"vm1\",run=\"churn \\\"q\\\" run\"} 3",
		"heteroos_phase_scan_wall_ns_sum{scope=\"vm1\",run=\"churn \\\"q\\\" run\"} 10100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q\n%s", want, out)
		}
	}

	// Histogram buckets are cumulative and the +Inf bucket equals the
	// count. 100 has bits.Len 7 → bucket bound 2^7-1 = 127; 5000 has
	// bits.Len 13 → bound 8191.
	if !strings.Contains(out, `le="127"} 1`) {
		t.Errorf("missing le=127 bucket with cumulative count 1:\n%s", out)
	}
	if !strings.Contains(out, `le="8191"} 3`) {
		t.Errorf("missing le=8191 bucket with cumulative count 3:\n%s", out)
	}
	if !strings.Contains(out, `le="+Inf"} 3`) {
		t.Errorf("missing +Inf bucket:\n%s", out)
	}

	// Every non-comment line is "name{labels} value" with a parseable
	// float value — a cheap stand-in for promtool check.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("sample %q has unparseable value: %v", line, err)
		}
	}
}

// TestOpenMetricsEmptySnapshot renders a bare EOF for an empty
// snapshot (a scrape before the first publish must stay valid).
func TestOpenMetricsEmptySnapshot(t *testing.T) {
	var sb strings.Builder
	if err := (&OpenMetricsSink{}).WriteSnapshot(&sb, Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "# EOF\n" {
		t.Errorf("empty snapshot = %q, want bare EOF", sb.String())
	}
}

// TestMetricsServerServes drives the live endpoints end to end:
// publish a snapshot, scrape /metrics and /snapshot.json over HTTP.
func TestMetricsServerServes(t *testing.T) {
	srv, err := NewMetricsServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.Publish(buildExportRegistry().Snapshot(), "live-test")

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(body, `heteroos_guestos_promotions_total{scope="vm1",run="live-test"} 12`) {
		t.Errorf("/metrics body lacks published series:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("/metrics body not EOF-terminated")
	}

	jbody, jtype := get("/snapshot.json")
	if !strings.Contains(jtype, "application/json") {
		t.Errorf("/snapshot.json content type = %q", jtype)
	}
	var snap struct {
		Run     string `json:"run"`
		Metrics []struct {
			Scope string  `json:"scope"`
			Name  string  `json:"name"`
			Kind  string  `json:"kind"`
			Value float64 `json:"value"`
			P99   float64 `json:"p99"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(jbody), &snap); err != nil {
		t.Fatalf("/snapshot.json does not parse: %v\n%s", err, jbody)
	}
	if snap.Run != "live-test" {
		t.Errorf("json run = %q", snap.Run)
	}
	var sawHist bool
	for _, m := range snap.Metrics {
		if m.Name == "phase.scan.wall_ns" && m.Scope == "vm1" {
			sawHist = true
			if m.Kind != "histogram" || m.Value != 3 || m.P99 == 0 {
				t.Errorf("histogram json = %+v", m)
			}
		}
	}
	if !sawHist {
		t.Errorf("/snapshot.json lacks the scoped histogram:\n%s", jbody)
	}

	// Re-publication is visible on the next scrape.
	r2 := buildExportRegistry()
	r2.Scope("vm1").Counter("guestos.promotions").Add(8)
	srv.Publish(r2.Snapshot(), "live-test")
	body, _ = get("/metrics")
	if !strings.Contains(body, `heteroos_guestos_promotions_total{scope="vm1",run="live-test"} 20`) {
		t.Errorf("republished counter not served:\n%s", body)
	}
}
