package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"heteroos/internal/metrics"
)

// Kind distinguishes the registry's instrument types.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a last-value instrument.
	KindGauge
	// KindHistogram is a log2-bucketed distribution.
	KindHistogram
)

// String names the kind for snapshot tables.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing count. Updates are plain field
// stores: each sweep job owns its registry, so no atomics are needed
// and Inc stays allocation- and contention-free.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// set overwrites the count. Unexported: the only legitimate user is the
// tracer's drop mirror, which re-publishes an externally accumulated
// total through the registry.
func (c *Counter) set(n uint64) { c.v = n }

// Gauge records the most recent value of a quantity that can move in
// both directions (free-page percentages, budgets).
type Gauge struct{ v float64 }

// Set records v.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the last recorded value.
func (g *Gauge) Value() float64 { return g.v }

// histBuckets covers the full uint64 range: bucket i counts values v
// with bits.Len64(v) == i, i.e. bucket 0 holds zero and bucket i>0
// holds [2^(i-1), 2^i). Log-scaled buckets keep nanosecond latencies
// and page counts in one cheap fixed-size instrument.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of non-negative values
// (latencies in ns, sizes in pages). Observe is a couple of integer
// ops and never allocates.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     float64
	max     uint64
}

// Observe records v. Negative values clamp to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.buckets[bits.Len64(u)]++
	h.count++
	h.sum += v
	if u > h.max {
		h.max = u
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// quantile estimates the q-quantile (0 < q <= 1) from bucket counts:
// the upper bound of the bucket where the cumulative count crosses
// q*total, clamped to the observed max. Within a factor of 2, which is
// all a log-scaled histogram promises.
func quantileOf(buckets *[histBuckets]uint64, count, max uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += buckets[i]
		if cum >= rank {
			if i == 0 {
				return 0
			}
			upper := math.Ldexp(1, i) // 2^i, exact beyond uint64 range
			if float64(max) < upper {
				return float64(max)
			}
			return upper
		}
	}
	return float64(max)
}

// Quantile estimates the q-quantile of the observed distribution.
func (h *Histogram) Quantile(q float64) float64 {
	return quantileOf(&h.buckets, h.count, h.max, q)
}

// metric is one registered instrument.
type metric struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// ScopeSep separates scope path segments ("host0/vm3") and a scope
// path from a metric name in a full name ("host0/vm3/guestos.faults").
const ScopeSep = "/"

// Registry holds the named instruments of one scope plus its child
// scopes. Registration is idempotent by name — asking for an existing
// name returns the same instrument — so layers can register at boot
// without coordinating, and registration order is preserved for
// deterministic snapshots.
//
// Scope derives child registries forming a tree (run → host → vm);
// Snapshot walks the whole subtree, tagging every value with its scope
// path relative to the snapshotted registry. Instrument updates are
// lock-free (each scope's instruments belong to one goroutine); only
// scope creation and snapshotting take the tree mutex, so child scopes
// handed to concurrent jobs stay safe as long as each job touches only
// its own subtree.
type Registry struct {
	// segment is this registry's own path segment ("" at the root);
	// path is the full scope path from the tree root.
	segment string
	path    string
	byName  map[string]int
	ordered []metric

	// mu guards the children list (creation and snapshot traversal).
	mu       sync.Mutex
	children []*Registry
	childIdx map[string]*Registry
}

// NewRegistry builds an empty root registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Scope returns the child registry named name, creating it on first
// use. Metrics registered on the child appear in this registry's
// Snapshot with their scope path prefixed by name. Scope names must not
// contain ScopeSep (use nested Scope calls for deeper paths).
func (r *Registry) Scope(name string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.childIdx[name]; ok {
		return c
	}
	path := name
	if r.path != "" {
		path = r.path + ScopeSep + name
	}
	c := &Registry{segment: name, path: path, byName: make(map[string]int)}
	if r.childIdx == nil {
		r.childIdx = make(map[string]*Registry)
	}
	r.childIdx[name] = c
	r.children = append(r.children, c)
	return c
}

// ScopePath returns the registry's full scope path from the tree root
// ("" for the root itself, "host0/vm3" for a nested scope).
func (r *Registry) ScopePath() string { return r.path }

// lookup returns the index of name, creating it with kind if absent.
// A name registered twice with different kinds keeps the first kind;
// the mismatched request receives a detached instrument so both call
// sites stay safe (this is a programming error, not a runtime one, and
// the unit tests pin the taxonomy).
func (r *Registry) lookup(name string, kind Kind) (int, bool) {
	if i, ok := r.byName[name]; ok {
		return i, r.ordered[i].kind == kind
	}
	m := metric{name: name, kind: kind}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindHistogram:
		m.h = &Histogram{}
	}
	r.byName[name] = len(r.ordered)
	r.ordered = append(r.ordered, m)
	return len(r.ordered) - 1, true
}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter {
	i, ok := r.lookup(name, KindCounter)
	if !ok {
		return &Counter{}
	}
	return r.ordered[i].c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name string) *Gauge {
	i, ok := r.lookup(name, KindGauge)
	if !ok {
		return &Gauge{}
	}
	return r.ordered[i].g
}

// Histogram returns the histogram registered under name.
func (r *Registry) Histogram(name string) *Histogram {
	i, ok := r.lookup(name, KindHistogram)
	if !ok {
		return &Histogram{}
	}
	return r.ordered[i].h
}

// Len returns the number of instruments registered on this scope
// (children not included).
func (r *Registry) Len() int { return len(r.ordered) }

// MetricValue is one instrument's state inside a Snapshot.
type MetricValue struct {
	// Scope is the instrument's scope path relative to the snapshotted
	// registry ("" for its own instruments, "vm3" or "host0/vm3" for
	// subtree instruments).
	Scope string
	// Name is the registered name within the scope.
	Name string
	// Kind is the instrument type.
	Kind Kind
	// Value is the counter count or gauge value; for histograms it is
	// the observation count.
	Value float64
	// Sum is the histogram's value sum (0 otherwise).
	Sum float64
	// Max is the histogram's observed maximum (0 otherwise).
	Max float64
	// buckets retains histogram bucket counts so Diff can recompute
	// quantiles over the delta window.
	buckets [histBuckets]uint64
}

// FullName joins the scope path and name ("vm3/guestos.faults"); for
// root-scope metrics it is just the name.
func (m *MetricValue) FullName() string {
	if m.Scope == "" {
		return m.Name
	}
	return m.Scope + ScopeSep + m.Name
}

// Quantile estimates the q-quantile for histogram values (0 for
// counters and gauges).
func (m *MetricValue) Quantile(q float64) float64 {
	if m.Kind != KindHistogram {
		return 0
	}
	return quantileOf(&m.buckets, uint64(m.Value), uint64(m.Max), q)
}

// Snapshot is a point-in-time copy of every registered instrument of a
// registry subtree: the registry's own instruments in registration
// order, then each child scope's depth-first in creation order.
// Snapshots are plain values: cheap to take per epoch and safe to diff,
// merge, and roll up later.
type Snapshot struct {
	// Values lists one entry per instrument.
	Values []MetricValue
}

// Snapshot copies the current state of every instrument in the subtree.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	r.appendTo(&s, "")
	return s
}

func (r *Registry) appendTo(s *Snapshot, scope string) {
	for _, m := range r.ordered {
		v := MetricValue{Scope: scope, Name: m.name, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			v.Value = float64(m.c.v)
		case KindGauge:
			v.Value = m.g.v
		case KindHistogram:
			v.Value = float64(m.h.count)
			v.Sum = m.h.sum
			v.Max = float64(m.h.max)
			v.buckets = m.h.buckets
		}
		s.Values = append(s.Values, v)
	}
	r.mu.Lock()
	kids := r.children
	if len(kids) > 0 {
		kids = append([]*Registry(nil), kids...)
	}
	r.mu.Unlock()
	for _, c := range kids {
		child := c.segment
		if scope != "" {
			child = scope + ScopeSep + child
		}
		c.appendTo(s, child)
	}
}

// Diff returns s minus prev: counters and histograms become the delta
// over the window (histogram quantiles are recomputed from the bucket
// deltas), gauges keep their latest value. Instruments absent from
// prev (registered mid-window) diff against zero.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	prevIdx := make(map[string]int, len(prev.Values))
	for i := range prev.Values {
		prevIdx[prev.Values[i].FullName()] = i
	}
	out := Snapshot{Values: make([]MetricValue, len(s.Values))}
	for i := range s.Values {
		v := s.Values[i]
		d := v
		if j, ok := prevIdx[v.FullName()]; ok && prev.Values[j].Kind == v.Kind {
			p := prev.Values[j]
			switch v.Kind {
			case KindCounter:
				d.Value = v.Value - p.Value
			case KindHistogram:
				d.Value = v.Value - p.Value
				d.Sum = v.Sum - p.Sum
				for b := range d.buckets {
					d.buckets[b] = v.buckets[b] - p.buckets[b]
				}
				// Max is a high-water mark, not differentiable; keep
				// the cumulative max as the honest upper bound.
			}
		}
		out.Values[i] = d
	}
	return out
}

// mergeKey orders and deduplicates values across snapshots.
func mergeKey(v *MetricValue) string {
	return v.FullName() + "\x00" + v.Kind.String()
}

// accumulate folds src into dst (same key). Counters and histograms
// add losslessly (bucket-wise for histograms, so rolled-up quantiles
// are exactly what one combined instrument would have reported); Max
// and gauges take the maximum — for a gauge, "largest last-seen value
// in the subtree" is the only merge that stays commutative.
func accumulate(dst, src *MetricValue) {
	switch dst.Kind {
	case KindCounter:
		dst.Value += src.Value
	case KindGauge:
		if src.Value > dst.Value {
			dst.Value = src.Value
		}
	case KindHistogram:
		dst.Value += src.Value
		dst.Sum += src.Sum
		if src.Max > dst.Max {
			dst.Max = src.Max
		}
		for b := range dst.buckets {
			dst.buckets[b] += src.buckets[b]
		}
	}
}

// mergeValues combines value lists keyed by (scope, name, kind) and
// returns them sorted by full name — a canonical order, so merging is
// commutative and associative value-for-value.
func mergeValues(lists ...[]MetricValue) []MetricValue {
	idx := make(map[string]int)
	var out []MetricValue
	for _, vs := range lists {
		for i := range vs {
			v := vs[i]
			k := mergeKey(&v)
			if j, ok := idx[k]; ok {
				accumulate(&out[j], &v)
			} else {
				idx[k] = len(out)
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].FullName(), out[j].FullName(); a != b {
			return a < b
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Merge combines two snapshots: values sharing (scope, name, kind)
// aggregate losslessly (counters and histogram buckets add, gauges and
// maxima take the larger), distinct values pass through. The result is
// in canonical (sorted-by-full-name) order, which makes Merge
// commutative: Merge(a,b) == Merge(b,a), and Merge with an empty
// snapshot is the identity up to that ordering.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	return Snapshot{Values: mergeValues(s.Values, o.Values)}
}

// Rollup aggregates the snapshot upward across scopes: every value's
// scope is stripped and values sharing (name, kind) combine exactly as
// in Merge, so N per-VM scopes roll up to what a single unscoped
// registry observing the same stream would hold. The result is sorted
// by name.
func (s Snapshot) Rollup() Snapshot {
	stripped := make([]MetricValue, len(s.Values))
	for i, v := range s.Values {
		v.Scope = ""
		stripped[i] = v
	}
	return Snapshot{Values: mergeValues(stripped)}
}

// Scoped returns a copy of the snapshot re-parented under scope: every
// value's scope path gains the prefix. The fleet/batch aggregation
// primitive — take each host's (or job's) snapshot, scope it by its
// identity, and Merge the results into one hierarchy.
func (s Snapshot) Scoped(scope string) Snapshot {
	out := Snapshot{Values: make([]MetricValue, len(s.Values))}
	for i, v := range s.Values {
		if v.Scope == "" {
			v.Scope = scope
		} else {
			v.Scope = scope + ScopeSep + v.Scope
		}
		out.Values[i] = v
	}
	return out
}

// Table renders the snapshot as a metrics.Table titled title with one
// row per instrument: full scoped name, kind, value, and (for
// histograms) sum, mean, p50, p99, and max.
func (s Snapshot) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "kind", "value", "sum", "mean", "p50", "p99", "max")
	for i := range s.Values {
		v := &s.Values[i]
		if v.Kind != KindHistogram {
			t.AddRow(v.FullName(), v.Kind.String(), v.Value, "", "", "", "", "")
			continue
		}
		mean := 0.0
		if v.Value > 0 {
			mean = v.Sum / v.Value
		}
		t.AddRow(v.FullName(), v.Kind.String(), v.Value, v.Sum, mean,
			v.Quantile(0.50), v.Quantile(0.99), v.Max)
	}
	return t
}

// Find returns the metric whose FullName matches name, or nil.
func (s Snapshot) Find(name string) *MetricValue {
	for i := range s.Values {
		if s.Values[i].FullName() == name {
			return &s.Values[i]
		}
	}
	return nil
}

// Sorted returns the value slice sorted by full name (snapshots
// themselves stay in registration order; sorting is for stable test
// output).
func (s Snapshot) Sorted() []MetricValue {
	out := append([]MetricValue(nil), s.Values...)
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}
