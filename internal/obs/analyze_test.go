package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestParseJSONLRoundTrip pushes a representative event set through
// JSONLSink and checks the parser reconstructs every field exactly.
func TestParseJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{Time: 100, VM: 1, Type: EvMigration, Dir: DirPromote, Tier: TierFast, PFN: 42, N: 8, Cost: 1500.5},
		{Time: 200, VM: 2, Type: EvMigration, Dir: DirVMMDemote, Tier: TierSlow, PFN: 7, N: 1, Cost: 900},
		{Time: 250, VM: 1, Type: EvBalloon, Dir: DirInflate, Tier: TierFast, N: 64},
		{Time: 300, VM: 0, Type: EvDRFRebalance, Dir: DirNone, Tier: TierNone, N: 32, Aux: 2},
		{Time: 400, VM: 3, Type: EvFaultInject, Dir: DirStart, Tier: TierNone, Aux: FaultSurge},
		{Time: 500, VM: 3, Type: EvFaultInject, Dir: DirClear, Tier: TierNone, Aux: FaultSurge},
		{Time: 600, VM: 2, Type: EvBalloonRefused, Dir: DirDeflate, Tier: TierFast, N: 5, Aux: 16},
	}
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf, "round/trip seed=9")
	if err := sink.WriteBatch(events); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Run != "round/trip seed=9" {
		t.Errorf("run = %q", tr.Run)
	}
	if tr.Version != 1 {
		t.Errorf("version = %d, want 1", tr.Version)
	}
	if len(tr.Events) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(tr.Events), len(events))
	}
	for i, want := range events {
		if tr.Events[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, tr.Events[i], want)
		}
	}
}

// TestParseJSONLWithoutHeader accepts grep/tail fragments that lost the
// meta line, and rejects unknown taxonomy names loudly.
func TestParseJSONLWithoutHeader(t *testing.T) {
	frag := `{"t":5,"vm":1,"ev":"migration","dir":"promote","tier":"fast","pfn":0,"n":3,"aux":0,"cost":10}` + "\n"
	tr, err := ParseJSONL(strings.NewReader(frag))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 1 || tr.Events[0].N != 3 {
		t.Fatalf("fragment parse = %+v", tr.Events)
	}

	bad := `{"t":5,"vm":1,"ev":"teleportation","dir":"promote","tier":"fast","pfn":0,"n":3,"aux":0,"cost":10}` + "\n"
	if _, err := ParseJSONL(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown event type parsed silently")
	}
	badDir := `{"t":5,"vm":1,"ev":"migration","dir":"sideways","tier":"fast","pfn":0,"n":3,"aux":0,"cost":10}` + "\n"
	if _, err := ParseJSONL(strings.NewReader(badDir)); err == nil {
		t.Fatal("unknown direction parsed silently")
	}
}

// trace builds a Trace directly from events (bypassing the sink).
func trace(events ...Event) *Trace { return &Trace{Events: events} }

// TestMigrationGroups checks per-direction aggregation, tier pairs, and
// the exact quantiles.
func TestMigrationGroups(t *testing.T) {
	tr := trace(
		Event{Time: 1, VM: 1, Type: EvMigration, Dir: DirPromote, Tier: TierFast, N: 4, Cost: 100},
		Event{Time: 2, VM: 1, Type: EvMigration, Dir: DirPromote, Tier: TierFast, N: 2, Cost: 300},
		Event{Time: 3, VM: 2, Type: EvMigration, Dir: DirDemote, Tier: TierSlow, N: 1, Cost: 50},
		Event{Time: 4, VM: 1, Type: EvScanPass, Dir: DirFull, N: 100, Cost: 1}, // not a migration
	)
	groups := tr.Migrations()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	p := groups[0]
	if p.Dir != DirPromote || p.From != "slow" || p.To != "fast" {
		t.Errorf("promote group = %+v", p)
	}
	if p.Events != 2 || p.Pages != 6 || p.CostTotal != 400 || p.CostMean != 200 {
		t.Errorf("promote stats = %+v", p)
	}
	if p.CostP50 != 100 || p.CostP99 != 300 || p.CostMax != 300 {
		t.Errorf("promote quantiles = p50 %v p99 %v max %v", p.CostP50, p.CostP99, p.CostMax)
	}
	d := groups[1]
	if d.Dir != DirDemote || d.From != "fast" || d.To != "slow" || d.Pages != 1 {
		t.Errorf("demote group = %+v", d)
	}
}

// TestMigrationsByVM checks the per-VM page totals that the reconcile
// gate depends on, including VMM-executed directions.
func TestMigrationsByVM(t *testing.T) {
	tr := trace(
		Event{VM: 1, Type: EvMigration, Dir: DirPromote, N: 4},
		Event{VM: 1, Type: EvMigration, Dir: DirVMMPromote, N: 3},
		Event{VM: 1, Type: EvMigration, Dir: DirDemote, N: 2},
		Event{VM: 2, Type: EvMigration, Dir: DirVMMDemote, N: 9},
	)
	byVM := tr.MigrationsByVM()
	if got := byVM[1]; got.Promoted != 4 || got.VMMPromoted != 3 || got.Demoted != 2 || got.VMMDemoted != 0 {
		t.Errorf("vm1 totals = %+v", got)
	}
	if got := byVM[1]; got.FastIn() != 7 || got.FastOut() != 2 {
		t.Errorf("vm1 fast in/out = %d/%d", byVM[1].FastIn(), byVM[1].FastOut())
	}
	if got := byVM[2]; got.Promoted != 0 || got.VMMDemoted != 9 {
		t.Errorf("vm2 totals = %+v", got)
	}
}

// TestResidencyTimeline checks bucketing and the running net series.
func TestResidencyTimeline(t *testing.T) {
	tr := trace(
		Event{Time: 0, VM: 1, Type: EvMigration, Dir: DirPromote, N: 10},
		Event{Time: 50, VM: 1, Type: EvMigration, Dir: DirDemote, N: 4},
		Event{Time: 99, VM: 1, Type: EvBalloon, Dir: DirInflate, Tier: TierFast, N: 1},
		Event{Time: 99, VM: 1, Type: EvBalloon, Dir: DirDeflate, Tier: TierSlow, N: 100}, // slow tier: no fast effect
		Event{Time: 10, VM: 0, Type: EvMigration, Dir: DirPromote, N: 99},               // system scope skipped
	)
	tls := tr.Residency(2)
	if len(tls) != 1 || tls[0].VM != 1 {
		t.Fatalf("timelines = %+v", tls)
	}
	pts := tls[0].Points
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Delta != 10 || pts[0].Net != 10 {
		t.Errorf("bucket 0 = %+v", pts[0])
	}
	// Bucket 1: -4 (demote) -1 (fast inflate) = -5, net 5.
	if pts[1].Delta != -5 || pts[1].Net != 5 {
		t.Errorf("bucket 1 = %+v", pts[1])
	}
}

// TestFaultWindows checks start/clear pairing and migration recovery.
func TestFaultWindows(t *testing.T) {
	tr := trace(
		Event{Time: 100, VM: 1, Type: EvFaultInject, Dir: DirStart, Aux: FaultMigrationStall},
		Event{Time: 500, VM: 1, Type: EvFaultInject, Dir: DirClear, Aux: FaultMigrationStall},
		Event{Time: 800, VM: 2, Type: EvMigration, Dir: DirPromote, N: 1}, // other VM: not recovery
		Event{Time: 900, VM: 1, Type: EvMigration, Dir: DirPromote, N: 1},
		Event{Time: 950, VM: 2, Type: EvFaultInject, Dir: DirStart, Aux: FaultSurge}, // never cleared
	)
	ws := tr.FaultWindows()
	if len(ws) != 2 {
		t.Fatalf("windows = %+v", ws)
	}
	w := ws[0]
	if w.VM != 1 || w.Fault != "migration-stall" || w.Start != 100 || w.Clear != 500 || w.Duration != 400 {
		t.Errorf("window 0 = %+v", w)
	}
	if w.RecoveryNs != 400 { // 900 - 500, skipping VM 2's migration
		t.Errorf("recovery = %d, want 400", w.RecoveryNs)
	}
	open := ws[1]
	if open.Clear != -1 || open.Duration != -1 || open.RecoveryNs != -1 {
		t.Errorf("open window = %+v", open)
	}
}

// TestRefusalRuns checks that honoured balloon ops split refusal runs.
func TestRefusalRuns(t *testing.T) {
	tr := trace(
		Event{Time: 10, VM: 1, Type: EvBalloonRefused, N: 4},
		Event{Time: 20, VM: 1, Type: EvBalloonRefused, N: 6},
		Event{Time: 25, VM: 2, Type: EvBalloonRefused, N: 1}, // interleaved, own run
		Event{Time: 30, VM: 1, Type: EvBalloon, Dir: DirDeflate, N: 8},
		Event{Time: 40, VM: 1, Type: EvBalloonRefused, N: 2},
	)
	runs := tr.RefusalRuns()
	if len(runs) != 3 {
		t.Fatalf("runs = %+v", runs)
	}
	if r := runs[0]; r.VM != 1 || r.Start != 10 || r.End != 20 || r.Events != 2 || r.ShortPages != 10 {
		t.Errorf("run 0 = %+v", r)
	}
	if r := runs[1]; r.VM != 2 || r.Events != 1 {
		t.Errorf("run 1 = %+v", r)
	}
	if r := runs[2]; r.VM != 1 || r.Start != 40 || r.Events != 1 || r.ShortPages != 2 {
		t.Errorf("run 2 = %+v", r)
	}
}

// TestAnalysisTablesRender smoke-tests the table renderers on synthetic
// data (a panic or empty render here would break the CLI).
func TestAnalysisTablesRender(t *testing.T) {
	tr := trace(
		Event{Time: 1, VM: 1, Type: EvMigration, Dir: DirPromote, N: 4, Cost: 100},
		Event{Time: 2, VM: 1, Type: EvFaultInject, Dir: DirStart, Aux: FaultSurge},
		Event{Time: 3, VM: 1, Type: EvFaultInject, Dir: DirClear, Aux: FaultSurge},
		Event{Time: 4, VM: 1, Type: EvBalloonRefused, N: 1},
	)
	for _, tbl := range []interface{ String() string }{
		MigrationTable(tr.Migrations()),
		ResidencyTable(tr.Residency(4)),
		FaultTable(tr.FaultWindows()),
		RefusalTable(tr.RefusalRuns()),
	} {
		if !strings.Contains(tbl.String(), "1") {
			t.Errorf("table missing data:\n%s", tbl.String())
		}
	}
}
