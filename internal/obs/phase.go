package obs

import (
	"time"

	"heteroos/internal/metrics"
)

// Phase identifies one instrumented stage of the per-VM epoch loop.
// The taxonomy follows the paper's decomposition of hypervisor work:
// guest access generation, page-table scanning, hot/cold ranking,
// migration, balloon/DRF balancing, and machine-model pricing.
type Phase uint8

const (
	// PhaseWorkload is the guest access-stream step.
	PhaseWorkload Phase = iota
	// PhaseScan is the page-table/bitmap scan pass.
	PhaseScan
	// PhaseRank is hot/cold ranking and index queries.
	PhaseRank
	// PhaseMigrate is page movement between tiers.
	PhaseMigrate
	// PhaseBalance is guest-OS epoch balancing plus balloon/DRF work.
	PhaseBalance
	// PhaseCharge is backend MPKI pricing and epoch cost charging.
	PhaseCharge

	numPhases
)

// phaseNames are the wire/metric names, index-matched to the constants.
var phaseNames = [numPhases]string{
	"workload", "scan", "rank", "migrate", "balance", "charge",
}

// String names the phase.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Phases lists every phase in epoch-loop order (for renderers).
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// PhaseProfiler records per-phase costs into a scope's registry: the
// simulated cost charged by the phase ("phase.scan.sim_ns") and the
// host wall-clock time spent computing it ("phase.scan.wall_ns").
// Histograms are preregistered at construction, so Observe calls are
// pure instrument updates — no map lookups, no allocation. A nil
// profiler disables every method, preserving the obs-off contract.
type PhaseProfiler struct {
	sim  [numPhases]*Histogram
	wall [numPhases]*Histogram
}

// NewPhaseProfiler preregisters the phase histograms on reg. Returns
// nil when reg is nil, so wiring stays a one-liner at boot.
func NewPhaseProfiler(reg *Registry) *PhaseProfiler {
	if reg == nil {
		return nil
	}
	p := &PhaseProfiler{}
	for i := 0; i < int(numPhases); i++ {
		p.sim[i] = reg.Histogram("phase." + phaseNames[i] + ".sim_ns")
		p.wall[i] = reg.Histogram("phase." + phaseNames[i] + ".wall_ns")
	}
	return p
}

// ObserveSim records ns of simulated cost charged by ph this epoch.
func (p *PhaseProfiler) ObserveSim(ph Phase, ns float64) {
	if p == nil {
		return
	}
	p.sim[ph].Observe(ns)
}

// ObserveWall records ns of host wall-clock time spent in ph.
func (p *PhaseProfiler) ObserveWall(ph Phase, ns int64) {
	if p == nil {
		return
	}
	p.wall[ph].Observe(float64(ns))
}

// ObserveWallSince records the wall-clock time elapsed since t0.
// Call sites use the explicit t0 := time.Now() ... ObserveWallSince
// pattern rather than defer closures, which would allocate.
func (p *PhaseProfiler) ObserveWallSince(ph Phase, t0 time.Time) {
	if p == nil {
		return
	}
	p.wall[ph].Observe(float64(time.Since(t0)))
}

// PhaseTable renders the phase breakdown recorded in s (any mix of
// scopes — the snapshot is rolled up first, so per-VM phase histograms
// aggregate into one row per phase). Columns: observation count, total
// and mean simulated ns, total and mean wall ns, and wall p99.
func PhaseTable(s Snapshot, title string) *metrics.Table {
	r := s.Rollup()
	t := metrics.NewTable(title, "phase", "passes",
		"sim_total_ns", "sim_mean_ns", "wall_total_ns", "wall_mean_ns", "wall_p99_ns")
	for _, ph := range Phases() {
		simV := r.Find("phase." + ph.String() + ".sim_ns")
		wallV := r.Find("phase." + ph.String() + ".wall_ns")
		// Histograms are preregistered, so "absent" means zero samples
		// in both series: skip the phase, it never ran.
		if (simV == nil || simV.Value == 0) && (wallV == nil || wallV.Value == 0) {
			continue
		}
		var passes, simTot, simMean, wallTot, wallMean, wallP99 float64
		if simV != nil {
			passes = simV.Value
			simTot = simV.Sum
			if simV.Value > 0 {
				simMean = simV.Sum / simV.Value
			}
		}
		if wallV != nil {
			if wallV.Value > passes {
				passes = wallV.Value
			}
			wallTot = wallV.Sum
			if wallV.Value > 0 {
				wallMean = wallV.Sum / wallV.Value
			}
			wallP99 = wallV.Quantile(0.99)
		}
		t.AddRow(ph.String(), passes, simTot, simMean, wallTot, wallMean, wallP99)
	}
	return t
}

// HasPhaseData reports whether s contains any phase-profiler samples.
func HasPhaseData(s Snapshot) bool {
	for i := range s.Values {
		v := &s.Values[i]
		if v.Kind == KindHistogram && v.Value > 0 &&
			len(v.Name) > 6 && v.Name[:6] == "phase." {
			return true
		}
	}
	return false
}
