package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestHistogramQuantileEdgeCases pins the estimator's boundary
// behaviour: empty distributions, single buckets, and the q extremes.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var zero Histogram
	zero.Observe(0)
	zero.Observe(0)
	for _, q := range []float64{0, 0.5, 1} {
		if got := zero.Quantile(q); got != 0 {
			t.Errorf("zeros.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var single Histogram
	single.Observe(100)
	// One observation: every quantile is that observation (clamped to
	// the observed max, so the log2 bucket bound never overshoots).
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 100 {
			t.Errorf("single.Quantile(%v) = %v, want 100", q, got)
		}
	}

	var h Histogram
	h.Observe(1)
	h.Observe(1000)
	// q=0 clamps to rank 1: the smallest occupied bucket's bound,
	// which for an observation of 1 is at most 2.
	if got := h.Quantile(0); got > 2 {
		t.Errorf("Quantile(0) = %v, want <= 2", got)
	}
	// q=1 is the max bucket, clamped to the true max.
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %v, want 1000", got)
	}
}

// snapFor builds a small scoped snapshot with the given value bias so
// tests get distinct but overlapping key sets.
func snapFor(bias uint64) Snapshot {
	r := NewRegistry()
	r.Counter("shared.count").Add(10 + bias)
	r.Gauge("shared.gauge").Set(float64(bias))
	vm := r.Scope("vm1")
	vm.Counter("faults").Add(bias)
	h := vm.Histogram("lat_ns")
	h.Observe(float64(100 * (bias + 1)))
	h.Observe(float64(3 * (bias + 1)))
	if bias%2 == 0 {
		r.Scope("vm2").Counter("faults").Add(7)
	}
	return r.Snapshot()
}

// TestMergeProperties checks the algebra Merge documents:
// commutativity, associativity, and identity (up to canonical order).
func TestMergeProperties(t *testing.T) {
	a, b, c := snapFor(0), snapFor(1), snapFor(2)

	ab, ba := a.Merge(b), b.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Errorf("Merge not commutative:\n a+b=%+v\n b+a=%+v", ab.Values, ba.Values)
	}

	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if !reflect.DeepEqual(left, right) {
		t.Errorf("Merge not associative:\n (a+b)+c=%+v\n a+(b+c)=%+v", left.Values, right.Values)
	}

	// Identity: merging with empty only canonicalizes the order.
	id := a.Merge(Snapshot{})
	canon := Snapshot{Values: mergeValues(a.Values)}
	if !reflect.DeepEqual(id, canon) {
		t.Errorf("Merge with empty is not identity:\n got %+v\n want %+v", id.Values, canon.Values)
	}
	// And quantities survive: shared.count = 10+0 + 10+1.
	if v := ab.Find("shared.count"); v == nil || v.Value != 21 {
		t.Errorf("merged shared.count = %+v, want 21", v)
	}
	// Gauge takes the max.
	if v := ab.Find("shared.gauge"); v == nil || v.Value != 1 {
		t.Errorf("merged shared.gauge = %+v, want 1", v)
	}
	// Histogram adds bucket-wise under the shared scope.
	if v := ab.Find("vm1/lat_ns"); v == nil || v.Value != 4 || v.Sum != 100+3+200+6 {
		t.Errorf("merged vm1/lat_ns = %+v", v)
	}
}

// TestRollupMatchesUnscopedRegistry is the differential acceptance
// check: N per-VM scopes rolled up must equal a single unscoped
// registry observing the exact same stream.
func TestRollupMatchesUnscopedRegistry(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scoped := NewRegistry()
	flat := NewRegistry()
	const vms = 5
	regs := make([]*Registry, vms)
	for i := range regs {
		regs[i] = scoped.Scope("vm" + string(rune('0'+i)))
	}
	var lastGauge [vms]float64
	var gaugeSet [vms]bool
	for ev := 0; ev < 10000; ev++ {
		vm := rng.Intn(vms)
		v := float64(rng.Intn(1 << 20))
		switch rng.Intn(3) {
		case 0:
			regs[vm].Counter("events").Inc()
			flat.Counter("events").Inc()
		case 1:
			regs[vm].Gauge("level").Set(v)
			lastGauge[vm], gaugeSet[vm] = v, true
		default:
			regs[vm].Histogram("cost_ns").Observe(v)
			flat.Histogram("cost_ns").Observe(v)
		}
	}
	// Rollup takes the max over each scope's FINAL gauge value — emulate
	// that in the flat registry from the tracked per-VM last writes.
	for vm, ok := range gaugeSet {
		if ok && lastGauge[vm] > flat.Gauge("level").Value() {
			flat.Gauge("level").Set(lastGauge[vm])
		}
	}
	got := scoped.Snapshot().Rollup()
	want := flat.Snapshot().Rollup() // canonicalize order only
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rollup of %d scopes != unscoped registry:\n got %+v\n want %+v",
			vms, got.Values, want.Values)
	}
	// Quantiles derived from merged buckets match too.
	if g, w := got.Find("cost_ns"), want.Find("cost_ns"); g.Quantile(0.99) != w.Quantile(0.99) {
		t.Errorf("rolled-up p99 %v != flat p99 %v", g.Quantile(0.99), w.Quantile(0.99))
	}
}

// TestDroppedWarningAndCounter overflows the sink-less ring and checks
// both surfaces: the CLI warning text and the registry counter.
func TestDroppedWarningAndCounter(t *testing.T) {
	o := New()
	const emitted = DefaultRingEvents + 1000
	for i := 0; i < emitted; i++ {
		o.Tracer.Emit(Event{Type: EvMigration, Dir: DirPromote, N: 1})
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}
	if got := o.Tracer.Dropped(); got != emitted {
		t.Fatalf("Dropped() = %d, want %d", got, emitted)
	}
	msg := o.DroppedWarning()
	if msg == "" || !strings.Contains(msg, "dropped") {
		t.Fatalf("DroppedWarning() = %q, want a warning", msg)
	}
	v := o.Metrics.Snapshot().Find(DroppedCounterName)
	if v == nil || uint64(v.Value) != emitted {
		t.Fatalf("%s = %+v, want %d", DroppedCounterName, v, emitted)
	}

	// A handle that lost nothing stays silent.
	quiet := New()
	quiet.Tracer.AddSink(&collectSink{})
	quiet.Tracer.Emit(Event{})
	if err := quiet.Close(); err != nil {
		t.Fatal(err)
	}
	if msg := quiet.DroppedWarning(); msg != "" {
		t.Fatalf("quiet DroppedWarning() = %q, want empty", msg)
	}
}

// TestAppendJSONStringRoundTrip drives hostile strings through the
// JSON string encoder and checks encoding/json decodes them back to
// the sanitized original (invalid UTF-8 replaced with U+FFFD, exactly
// encoding/json's policy).
func TestAppendJSONStringRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`quotes " and \ backslash`,
		"newline\nreturn\rtab\t",
		"控制\x00字符\x1f",
		"emoji 🚀 and accents é ü",
		"invalid \xff\xfe bytes",
		"truncated multibyte \xe4\xb8",
		"\x7f del and \x01 soh",
	}
	// Deterministic pseudo-fuzz: every byte value appears, in shuffled
	// clumps, so new escaping bugs can't hide behind the fixed cases.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 64; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		lit := appendJSONString(nil, s)
		var got string
		if err := json.Unmarshal(lit, &got); err != nil {
			t.Errorf("literal for %q does not decode: %v (%s)", s, err, lit)
			continue
		}
		// encoding/json (and our encoder) replace each invalid byte
		// with one U+FFFD; []rune conversion has the same per-byte rule.
		want := string([]rune(s))
		if got != want {
			t.Errorf("round trip %q = %q, want %q", s, got, want)
		}
	}
}

// TestJSONLRunTagHostile pushes a hostile run tag through the full
// JSONL sink and requires the stream to stay line-parseable.
func TestJSONLRunTagHostile(t *testing.T) {
	var sb strings.Builder
	sink := NewJSONLSink(&sb, "bad\ntag \"quoted\" \xff end")
	if err := sink.WriteBatch([]Event{{Type: EvMigration, Dir: DirPromote, N: 1}}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want 2 (meta + event):\n%s", len(lines), sb.String())
	}
	var meta struct {
		Meta string `json:"meta"`
		Run  string `json:"run"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line does not parse: %v", err)
	}
	if want := string([]rune("bad\ntag \"quoted\" \xff end")); meta.Run != want {
		t.Errorf("run tag = %q, want %q", meta.Run, want)
	}
}
