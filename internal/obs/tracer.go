package obs

// Sink consumes batches of events flushed from the tracer ring. Sinks
// run outside the simulation hot path (at ring-full boundaries and on
// Close), so they may allocate and do I/O.
type Sink interface {
	// WriteBatch persists the batch. The slice is only valid for the
	// duration of the call; sinks must not retain it.
	WriteBatch(batch []Event) error
	// Close flushes and releases the sink.
	Close() error
}

// DefaultRingEvents is the tracer's default ring capacity. At 72 bytes
// per event this is ~300 KiB per run — large enough that flushes are
// rare, small enough to preallocate per sweep job.
const DefaultRingEvents = 4096

// Tracer buffers events in a fixed-capacity ring and hands full
// batches to its sinks. With no sinks attached (the default), a full
// ring is simply reused and a drop counter incremented, so tracing
// costs one bounds check and one struct store per event and never
// allocates after construction.
//
// Tracer is not safe for concurrent use; the runner gives every sweep
// job its own Obs handle, and within a run each VM emits from the
// single simulation goroutine.
type Tracer struct {
	ring    []Event
	n       int
	sinks   []Sink
	dropped uint64
	// dropCounter, when set, mirrors the drop total into the metrics
	// registry (obs.DroppedCounterName) at every flush, so snapshots
	// taken at any point see the loss without a separate sync step.
	dropCounter *Counter
	err         error
}

// NewTracer builds a tracer with the given ring capacity (capacity <= 0
// selects DefaultRingEvents).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultRingEvents
	}
	return &Tracer{ring: make([]Event, 0, capacity)}
}

// AddSink attaches a sink. Attach sinks before the run starts: events
// already dropped are not replayed.
func (t *Tracer) AddSink(s Sink) {
	if s != nil {
		t.sinks = append(t.sinks, s)
	}
}

// Emit records one event. When the ring is full it is flushed to the
// sinks first (or discarded, counting drops, when no sink is
// attached).
func (t *Tracer) Emit(ev Event) {
	if t.n == cap(t.ring) {
		t.flush()
	}
	t.ring = t.ring[:t.n+1]
	t.ring[t.n] = ev
	t.n++
}

// flush drains the ring into the sinks. The first sink error is
// retained (Err) and later batches to that sink are still attempted so
// partial output stays as complete as the sink allows.
func (t *Tracer) flush() {
	if t.n == 0 {
		return
	}
	if len(t.sinks) == 0 {
		t.dropped += uint64(t.n)
		if t.dropCounter != nil {
			t.dropCounter.set(t.dropped)
		}
	} else {
		batch := t.ring[:t.n]
		for _, s := range t.sinks {
			if err := s.WriteBatch(batch); err != nil && t.err == nil {
				t.err = err
			}
		}
	}
	t.n = 0
	t.ring = t.ring[:0]
}

// Flush forces buffered events out to the sinks.
func (t *Tracer) Flush() { t.flush() }

// Dropped reports how many events were discarded because the ring
// filled with no sink attached.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Err returns the first sink write error, if any.
func (t *Tracer) Err() error { return t.err }

// Close flushes the ring and closes every sink, returning the first
// error encountered.
func (t *Tracer) Close() error {
	t.flush()
	err := t.err
	for _, s := range t.sinks {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	t.sinks = nil
	return err
}
