package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// OpenMetricsSink renders snapshots in the OpenMetrics / Prometheus
// text exposition format, so any Prometheus-compatible scraper or
// promtool can consume a run's registry directly. It is an offline
// encoder (WriteSnapshot), not a tracer Sink: metrics are state, not
// an event stream.
//
// Name mangling: metric names gain a "heteroos_" prefix with dots
// replaced by underscores ("guestos.promotions" →
// heteroos_guestos_promotions); the scope path travels as a `scope`
// label and the run tag as a `run` label, so per-VM series of one
// metric share a family exactly the way Prometheus expects. Counters
// get the conventional "_total" suffix; histograms emit cumulative
// log2 `le` buckets plus `_sum` and `_count`.
type OpenMetricsSink struct {
	// Run stamps every series with a run="..." label ("" omits it).
	Run string
}

// WriteSnapshot renders s to w, terminated by the "# EOF" marker the
// OpenMetrics format requires.
func (o *OpenMetricsSink) WriteSnapshot(w io.Writer, s Snapshot) error {
	var b []byte
	// Group by metric name so each family's TYPE header appears once,
	// preserving first-appearance order of families.
	type family struct {
		name string
		kind Kind
		vals []*MetricValue
	}
	var fams []*family
	idx := make(map[string]*family)
	for i := range s.Values {
		v := &s.Values[i]
		key := v.Name + "\x00" + v.Kind.String()
		f, ok := idx[key]
		if !ok {
			f = &family{name: v.Name, kind: v.Kind}
			idx[key] = f
			fams = append(fams, f)
		}
		f.vals = append(f.vals, v)
	}
	for _, f := range fams {
		name := metricName(f.name, f.kind)
		b = append(b, "# TYPE "...)
		b = append(b, name...)
		switch f.kind {
		case KindCounter:
			b = append(b, " counter\n"...)
		case KindGauge:
			b = append(b, " gauge\n"...)
		case KindHistogram:
			b = append(b, " histogram\n"...)
		}
		for _, v := range f.vals {
			b = o.appendValue(b, name, v)
		}
	}
	b = append(b, "# EOF\n"...)
	_, err := w.Write(b)
	return err
}

// metricName mangles a registry name into a Prometheus metric name.
func metricName(name string, kind Kind) string {
	var sb strings.Builder
	sb.WriteString("heteroos_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	if kind == KindCounter {
		sb.WriteString("_total")
	}
	return sb.String()
}

// appendLabels appends the {scope=...,run=...} label set (possibly
// empty) plus any extra label pair.
func (o *OpenMetricsSink) appendLabels(b []byte, scope, extraK, extraV string) []byte {
	if scope == "" && o.Run == "" && extraK == "" {
		return b
	}
	b = append(b, '{')
	first := true
	add := func(k, v string) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = append(b, k...)
		b = append(b, '=')
		b = strconv.AppendQuote(b, v)
	}
	if scope != "" {
		add("scope", scope)
	}
	if o.Run != "" {
		add("run", o.Run)
	}
	if extraK != "" {
		add(extraK, extraV)
	}
	return append(b, '}')
}

// appendFloat renders a sample value (OpenMetrics uses +Inf/-Inf/NaN
// spellings, which AppendFloat matches closely enough for finite
// values; infinities are handled explicitly).
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	default:
		return strconv.AppendFloat(b, v, 'g', -1, 64)
	}
}

// appendValue renders one MetricValue's sample lines.
func (o *OpenMetricsSink) appendValue(b []byte, name string, v *MetricValue) []byte {
	switch v.Kind {
	case KindCounter, KindGauge:
		b = append(b, name...)
		b = o.appendLabels(b, v.Scope, "", "")
		b = append(b, ' ')
		b = appendFloat(b, v.Value)
		return append(b, '\n')
	case KindHistogram:
		// Cumulative le buckets over the log2 grid: only non-empty
		// buckets get an explicit bound (the grid is fixed, so omitted
		// bounds carry no information), then the mandatory +Inf.
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			if v.buckets[i] == 0 {
				continue
			}
			cum += v.buckets[i]
			// Bucket i holds values with bits.Len64 == i, upper bound
			// 2^i - 1; the le bound is inclusive so 2^i-1 is exact.
			var upper float64
			if i == 0 {
				upper = 0
			} else {
				upper = math.Ldexp(1, i) - 1
			}
			b = append(b, name...)
			b = append(b, "_bucket"...)
			var le []byte
			le = appendFloat(le, upper)
			b = o.appendLabels(b, v.Scope, "le", string(le))
			b = append(b, ' ')
			b = strconv.AppendUint(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, name...)
		b = append(b, "_bucket"...)
		b = o.appendLabels(b, v.Scope, "le", "+Inf")
		b = append(b, ' ')
		b = strconv.AppendUint(b, uint64(v.Value), 10)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, "_sum"...)
		b = o.appendLabels(b, v.Scope, "", "")
		b = append(b, ' ')
		b = appendFloat(b, v.Sum)
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, "_count"...)
		b = o.appendLabels(b, v.Scope, "", "")
		b = append(b, ' ')
		b = strconv.AppendUint(b, uint64(v.Value), 10)
		b = append(b, '\n')
	}
	return b
}
