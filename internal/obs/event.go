// Package obs is the simulator's observability subsystem: a typed event
// tracer backed by a fixed-capacity ring buffer with pluggable sinks,
// and a registry of named counters, gauges, and log-scaled histograms
// that every layer (guestos, vmm, memsim, core) registers into once at
// boot.
//
// The package is designed around two hard guarantees:
//
//   - Zero cost when off. Instrumented code guards every probe with a
//     nil check on its attached handle; the default configuration never
//     constructs one, so the epoch hot path keeps its 0 allocs/op and
//     figure output stays byte-identical.
//   - Zero allocation when on. Emitting an event writes into a
//     preallocated ring slot, and counter/gauge/histogram updates touch
//     plain preregistered fields. Allocation happens only at boot
//     (registration) and at flush time inside a sink.
//
// obs deliberately imports only sim and metrics so that memsim,
// guestos, vmm, and core can all import it without cycles; events carry
// the memory tier as a plain uint8 rather than a memsim.Tier for the
// same reason.
package obs

import "heteroos/internal/sim"

// Type classifies an event. The taxonomy mirrors the decision points
// the paper's evaluation cares about (Figures 8-13): page movement,
// balloon churn, scan passes, reclaim pressure, cache eviction,
// placement misses, and cross-VM rebalancing.
type Type uint8

const (
	// EvMigration is one page moving between tiers, whether guest-
	// executed (coordinated) or VMM-executed (transparent).
	EvMigration Type = iota
	// EvBalloon is a balloon inflate (guest gives frames back) or
	// deflate (guest populates frames); N is the page count.
	EvBalloon
	// EvScanPass is one hotness-scan pass over guest pages; N is the
	// number of pages scanned and Aux the number found referenced.
	EvScanPass
	// EvReclaim is one guest reclaim pass; N is the number of pages
	// freed and Aux the number of LRU rotations performed.
	EvReclaim
	// EvCacheEvict is one page-cache (or clean slab-backed I/O) page
	// eviction.
	EvCacheEvict
	// EvAllocMiss is a FastMem allocation request that had to spill to
	// SlowMem because placement found no fast frame.
	EvAllocMiss
	// EvDRFRebalance is one DRF-share enforcement action: the
	// dominant-share victim VM was ballooned down; N is the number of
	// pages actually released and Aux the victim VM id.
	EvDRFRebalance
	// EvVMBoot is a VM arriving mid-run (scenario lifecycle). Emitted on
	// the system scope; Aux is the booted VM id and N its boot-populated
	// page count.
	EvVMBoot
	// EvVMShutdown is a VM departing: its balloon unwound, its P2M
	// cleared, and every machine frame returned to the VMM pool. Emitted
	// on the system scope; Aux is the departed VM id and N the number of
	// frames released.
	EvVMShutdown
	// EvFaultInject marks a scenario fault window opening (DirStart) or
	// closing (DirClear); the Start/Clear pair delimits the window. Aux
	// carries the fault code (Fault* constants).
	EvFaultInject
	// EvBalloonRefused is a populate request the balloon back-end did not
	// honour in full: the guest asked for Aux pages of Tier and is short
	// N. The typed guestos error carries the same numbers.
	EvBalloonRefused
	// EvMigrationStall is one migration pass skipped because the
	// migration engine is stalled; Aux counts consecutive stalled passes
	// (the retry/backoff position).
	EvMigrationStall
	// EvVMMigrateOut is a VM departing a host via cross-host live
	// migration: captured into a VMImage and torn down locally. Emitted
	// on the system scope; Aux is the migrating VM id and N the number
	// of machine frames released on the source host.
	EvVMMigrateOut
	// EvVMMigrateIn is a VM arriving on a host via cross-host live
	// migration: its image re-materialized onto local frames. Emitted on
	// the system scope; Aux is the VM id and N the number of machine
	// frames adopted on the destination host.
	EvVMMigrateIn
	numTypes
)

// Fault codes carried in EvFaultInject's Aux field.
const (
	// FaultThrottleShift is a mid-run SlowMem throttle-factor change.
	FaultThrottleShift uint64 = 1
	// FaultBalloonRefusal is a window in which the VMM refuses balloon
	// populate requests for the target VM.
	FaultBalloonRefusal uint64 = 2
	// FaultMigrationStall is a window in which the target VM's migration
	// engine stalls (passes skipped under bounded retry/backoff).
	FaultMigrationStall uint64 = 3
	// FaultSurge is a workload phase surge: the target VM's workload
	// runs at a demand multiple for the window.
	FaultSurge uint64 = 4
)

// FaultName returns the stable wire name of a fault code.
func FaultName(code uint64) string {
	switch code {
	case FaultThrottleShift:
		return "throttle-shift"
	case FaultBalloonRefusal:
		return "balloon-refusal"
	case FaultMigrationStall:
		return "migration-stall"
	case FaultSurge:
		return "surge"
	default:
		return "unknown"
	}
}

// String returns the stable wire name of the event type, used verbatim
// by the JSONL and Chrome-trace sinks.
func (t Type) String() string {
	switch t {
	case EvMigration:
		return "migration"
	case EvBalloon:
		return "balloon"
	case EvScanPass:
		return "scan-pass"
	case EvReclaim:
		return "reclaim"
	case EvCacheEvict:
		return "cache-evict"
	case EvAllocMiss:
		return "alloc-miss"
	case EvDRFRebalance:
		return "drf-rebalance"
	case EvVMBoot:
		return "vm-boot"
	case EvVMShutdown:
		return "vm-shutdown"
	case EvFaultInject:
		return "fault-inject"
	case EvBalloonRefused:
		return "balloon-refused"
	case EvMigrationStall:
		return "migration-stall"
	case EvVMMigrateOut:
		return "vm-migrate-out"
	case EvVMMigrateIn:
		return "vm-migrate-in"
	default:
		return "unknown"
	}
}

// Dir qualifies an event with its direction or variant.
type Dir uint8

const (
	// DirNone marks events with no direction (alloc misses, cache
	// evictions).
	DirNone Dir = iota
	// DirPromote is a guest-executed slow-to-fast migration.
	DirPromote
	// DirDemote is a guest-executed fast-to-slow migration.
	DirDemote
	// DirVMMPromote is a VMM-executed (transparent) promotion.
	DirVMMPromote
	// DirVMMDemote is a VMM-executed (transparent) demotion.
	DirVMMDemote
	// DirInflate is a balloon inflate: the guest released frames.
	DirInflate
	// DirDeflate is a balloon deflate: the guest populated frames.
	DirDeflate
	// DirCacheOnly marks a reclaim pass restricted to clean cache pages.
	DirCacheOnly
	// DirFull marks an unrestricted reclaim pass or full scan pass.
	DirFull
	// DirTracked marks a scan pass over the guest's tracking list only.
	DirTracked
	// DirStart marks a fault window opening.
	DirStart
	// DirClear marks a fault window closing.
	DirClear
	numDirs
)

// String returns the stable wire name of the direction.
func (d Dir) String() string {
	switch d {
	case DirPromote:
		return "promote"
	case DirDemote:
		return "demote"
	case DirVMMPromote:
		return "vmm-promote"
	case DirVMMDemote:
		return "vmm-demote"
	case DirInflate:
		return "inflate"
	case DirDeflate:
		return "deflate"
	case DirCacheOnly:
		return "cache-only"
	case DirFull:
		return "full"
	case DirTracked:
		return "tracked"
	case DirStart:
		return "start"
	case DirClear:
		return "clear"
	default:
		return ""
	}
}

// Tier values carried by events. obs cannot import memsim (memsim
// imports obs), so the tier travels as a uint8 with the same ordinal
// values as memsim.Tier plus a "no tier" sentinel.
const (
	// TierFast mirrors memsim.FastMem.
	TierFast uint8 = 0
	// TierSlow mirrors memsim.SlowMem.
	TierSlow uint8 = 1
	// TierNone marks events with no single associated tier.
	TierNone uint8 = 255
)

// TierName returns the wire name for an event tier byte.
func TierName(t uint8) string {
	switch t {
	case TierFast:
		return "fast"
	case TierSlow:
		return "slow"
	default:
		return "-"
	}
}

// Event is one structured trace record. The struct is flat and
// fixed-size so a ring of them is a single allocation; the meaning of
// N, Aux, and Tier depends on Type (see the Type constants).
type Event struct {
	// Time is the emitting VM's simulated clock at emission.
	Time sim.Duration
	// VM identifies the emitting VM (0 for system-wide events such as
	// DRF rebalances).
	VM int32
	// Type classifies the event.
	Type Type
	// Dir qualifies the direction/variant.
	Dir Dir
	// Tier is the destination tier for migrations, the affected tier
	// otherwise, or TierNone.
	Tier uint8
	// PFN is the first page-frame number the event concerns (0 when
	// the event is not about a specific page).
	PFN uint64
	// N is the event's magnitude in pages (1 for single-page events).
	N uint64
	// Aux carries a type-specific secondary quantity (see Type docs).
	Aux uint64
	// Cost is the simulated time charged for the action, in
	// nanoseconds (0 when the charge is accounted elsewhere).
	Cost float64
}
