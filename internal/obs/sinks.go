package obs

import (
	"io"
	"strconv"
	"unicode/utf8"
)

// appendEventFields appends the shared JSON body of an event (without
// surrounding braces or trailing newline) to b. Field values are
// appended with strconv so flushing a large batch costs a handful of
// buffer growths rather than one allocation per event.
func appendEventFields(b []byte, ev Event) []byte {
	b = append(b, `"t":`...)
	b = strconv.AppendInt(b, int64(ev.Time), 10)
	b = append(b, `,"vm":`...)
	b = strconv.AppendInt(b, int64(ev.VM), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, `","dir":"`...)
	b = append(b, ev.Dir.String()...)
	b = append(b, `","tier":"`...)
	b = append(b, TierName(ev.Tier)...)
	b = append(b, `","pfn":`...)
	b = strconv.AppendUint(b, ev.PFN, 10)
	b = append(b, `,"n":`...)
	b = strconv.AppendUint(b, ev.N, 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendUint(b, ev.Aux, 10)
	b = append(b, `,"cost":`...)
	b = strconv.AppendFloat(b, ev.Cost, 'f', -1, 64)
	return b
}

// appendJSONString appends s as a JSON string literal. Run tags are
// CLI flag values, so the full set of hostile inputs is possible:
// control characters are \u-escaped, quotes and backslashes
// backslash-escaped, valid multibyte UTF-8 passed through, and invalid
// byte sequences replaced with U+FFFD — the same policy encoding/json
// applies, so any JSON decoder round-trips the sanitized string.
func appendJSONString(b []byte, s string) []byte {
	const hex = "0123456789abcdef"
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			switch {
			case c == '"' || c == '\\':
				b = append(b, '\\', c)
			case c >= 0x20:
				b = append(b, c)
			case c == '\n':
				b = append(b, '\\', 'n')
			case c == '\r':
				b = append(b, '\\', 'r')
			case c == '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, `\u00`...)
				b = append(b, hex[c>>4], hex[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = utf8.AppendRune(b, utf8.RuneError)
		} else {
			b = append(b, s[i:i+size]...)
		}
		i += size
	}
	return append(b, '"')
}

// JSONLSink writes one JSON object per line: a meta header identifying
// the run, then one line per event. The stream is trivially greppable
// and parseable with any JSON-lines reader.
type JSONLSink struct {
	w      io.Writer
	buf    []byte
	wroteH bool
	run    string
}

// NewJSONLSink builds a JSONL sink over w tagged with run (typically
// the experiment label or CLI configuration plus seed). The sink does
// not close w; callers own the underlying file.
func NewJSONLSink(w io.Writer, run string) *JSONLSink {
	return &JSONLSink{w: w, run: run, buf: make([]byte, 0, 64<<10)}
}

// WriteBatch implements Sink.
func (s *JSONLSink) WriteBatch(batch []Event) error {
	s.buf = s.buf[:0]
	if !s.wroteH {
		s.wroteH = true
		s.buf = append(s.buf, `{"meta":"heteroos-events","version":1,"run":`...)
		s.buf = appendJSONString(s.buf, s.run)
		s.buf = append(s.buf, "}\n"...)
	}
	for _, ev := range batch {
		s.buf = append(s.buf, '{')
		s.buf = appendEventFields(s.buf, ev)
		s.buf = append(s.buf, "}\n"...)
	}
	_, err := s.w.Write(s.buf)
	return err
}

// Close implements Sink. An empty run still gets its meta header so
// downstream parsers see a well-formed stream.
func (s *JSONLSink) Close() error {
	if !s.wroteH {
		return s.WriteBatch(nil)
	}
	return nil
}

// ChromeTraceSink exports events in the Chrome trace_event JSON array
// format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Each VM becomes a process; point events (migrations, evictions,
// misses) are instant events and pass events (scans, reclaims) are
// complete ("X") slices whose duration is the pass's charged cost.
type ChromeTraceSink struct {
	w      io.Writer
	buf    []byte
	run    string
	opened bool
	first  bool
	named  map[int32]bool
}

// NewChromeTraceSink builds a Chrome-trace sink over w tagged with run.
// The sink does not close w.
func NewChromeTraceSink(w io.Writer, run string) *ChromeTraceSink {
	return &ChromeTraceSink{w: w, run: run, first: true, named: make(map[int32]bool), buf: make([]byte, 0, 64<<10)}
}

// appendSep opens the array on first use and separates records after.
func (s *ChromeTraceSink) appendSep() {
	if !s.opened {
		s.opened = true
		s.buf = append(s.buf, "[\n"...)
	}
	if s.first {
		s.first = false
	} else {
		s.buf = append(s.buf, ",\n"...)
	}
}

// appendMicros appends d nanoseconds as the microsecond timestamp
// trace_event expects, keeping sub-microsecond precision.
func appendMicros(b []byte, ns int64) []byte {
	return strconv.AppendFloat(b, float64(ns)/1e3, 'f', 3, 64)
}

// WriteBatch implements Sink.
func (s *ChromeTraceSink) WriteBatch(batch []Event) error {
	s.buf = s.buf[:0]
	for _, ev := range batch {
		if !s.named[ev.VM] {
			s.named[ev.VM] = true
			s.appendSep()
			s.buf = append(s.buf, `{"name":"process_name","ph":"M","pid":`...)
			s.buf = strconv.AppendInt(s.buf, int64(ev.VM), 10)
			s.buf = append(s.buf, `,"args":{"name":`...)
			name := "vm" + strconv.Itoa(int(ev.VM))
			if ev.VM == 0 {
				name = "system"
			}
			if s.run != "" {
				name += " (" + s.run + ")"
			}
			s.buf = appendJSONString(s.buf, name)
			s.buf = append(s.buf, "}}"...)
		}
		s.appendSep()
		s.buf = append(s.buf, `{"name":`...)
		s.buf = appendJSONString(s.buf, ev.Type.String())
		s.buf = append(s.buf, `,"cat":`...)
		s.buf = appendJSONString(s.buf, ev.Dir.String())
		s.buf = append(s.buf, `,"pid":`...)
		s.buf = strconv.AppendInt(s.buf, int64(ev.VM), 10)
		s.buf = append(s.buf, `,"tid":`...)
		s.buf = strconv.AppendInt(s.buf, int64(ev.Type), 10)
		s.buf = append(s.buf, `,"ts":`...)
		s.buf = appendMicros(s.buf, int64(ev.Time))
		// Pass-shaped events become complete slices so Perfetto shows
		// their simulated cost as a duration; the rest are instants.
		switch ev.Type {
		case EvScanPass, EvReclaim:
			s.buf = append(s.buf, `,"ph":"X","dur":`...)
			s.buf = appendMicros(s.buf, int64(ev.Cost))
		default:
			s.buf = append(s.buf, `,"ph":"i","s":"t"`...)
		}
		s.buf = append(s.buf, `,"args":{`...)
		s.buf = appendEventFields(s.buf, ev)
		s.buf = append(s.buf, "}}"...)
	}
	if len(s.buf) == 0 {
		return nil
	}
	_, err := s.w.Write(s.buf)
	return err
}

// Close terminates the JSON array.
func (s *ChromeTraceSink) Close() error {
	if !s.opened {
		_, err := io.WriteString(s.w, "[]\n")
		return err
	}
	_, err := io.WriteString(s.w, "\n]\n")
	return err
}
