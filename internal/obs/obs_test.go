package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"heteroos/internal/sim"
)

// collectSink retains everything written to it.
type collectSink struct {
	batches int
	events  []Event
	closed  bool
}

func (c *collectSink) WriteBatch(batch []Event) error {
	c.batches++
	c.events = append(c.events, batch...)
	return nil
}

func (c *collectSink) Close() error { c.closed = true; return nil }

func TestTracerFlushesFullRingToSink(t *testing.T) {
	tr := NewTracer(4)
	sink := &collectSink{}
	tr.AddSink(sink)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{PFN: uint64(i)})
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(sink.events) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(sink.events))
	}
	for i, ev := range sink.events {
		if ev.PFN != uint64(i) {
			t.Fatalf("event %d has PFN %d: order not preserved", i, ev.PFN)
		}
	}
	if sink.batches < 2 {
		t.Fatalf("expected ring-full flush before Close, got %d batches", sink.batches)
	}
	if !sink.closed {
		t.Fatal("Close did not close the sink")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d events with a sink attached", tr.Dropped())
	}
}

func TestTracerDropsWithoutSink(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{})
	}
	// 4 in ring, then two full-ring discards of 4 and 2... the ring
	// discards in multiples of capacity: 10 emits = 2 flushes of 4
	// (8 dropped) + 2 buffered.
	if got := tr.Dropped(); got != 8 {
		t.Fatalf("Dropped = %d, want 8", got)
	}
	tr.Flush()
	if got := tr.Dropped(); got != 10 {
		t.Fatalf("Dropped after Flush = %d, want 10", got)
	}
}

func TestEmitZeroAlloc(t *testing.T) {
	o := New()
	sc := o.Scope(1, func() sim.Duration { return 42 })
	ctr := sc.Counter("x.count")
	h := sc.Histogram("x.ns")
	g := sc.Gauge("x.pct")
	// Warm: fill past one ring cycle so steady state is measured.
	for i := 0; i < DefaultRingEvents+10; i++ {
		sc.Emit(EvMigration, DirPromote, TierFast, uint64(i), 1, 0, 100)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sc.Emit(EvMigration, DirPromote, TierFast, 7, 1, 0, 100)
		ctr.Inc()
		h.Observe(123.0)
		g.Set(55.5)
	})
	if allocs != 0 {
		t.Fatalf("hot-path emit/update allocates %v allocs/op, want 0", allocs)
	}
}

func TestJSONLSinkOutputParses(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(2)
	tr.AddSink(NewJSONLSink(&buf, `graphchi/coordinated "q" seed=1`))
	tr.Emit(Event{Time: 1500, VM: 1, Type: EvMigration, Dir: DirPromote, Tier: TierFast, PFN: 77, N: 1, Aux: 3, Cost: 4100.5})
	tr.Emit(Event{Time: 2500, VM: 1, Type: EvScanPass, Dir: DirTracked, Tier: TierNone, N: 640, Aux: 12, Cost: 9000})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (meta + 2 events):\n%s", len(lines), buf.String())
	}
	var meta struct {
		Meta string `json:"meta"`
		Run  string `json:"run"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line does not parse: %v", err)
	}
	if meta.Meta != "heteroos-events" || meta.Run != `graphchi/coordinated "q" seed=1` {
		t.Fatalf("bad meta line: %+v", meta)
	}
	var ev struct {
		T    int64   `json:"t"`
		VM   int     `json:"vm"`
		Ev   string  `json:"ev"`
		Dir  string  `json:"dir"`
		Tier string  `json:"tier"`
		PFN  uint64  `json:"pfn"`
		N    uint64  `json:"n"`
		Aux  uint64  `json:"aux"`
		Cost float64 `json:"cost"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("event line does not parse: %v", err)
	}
	if ev.T != 1500 || ev.VM != 1 || ev.Ev != "migration" || ev.Dir != "promote" ||
		ev.Tier != "fast" || ev.PFN != 77 || ev.N != 1 || ev.Aux != 3 || ev.Cost != 4100.5 {
		t.Fatalf("bad event line: %+v", ev)
	}
	if err := json.Unmarshal([]byte(lines[2]), &ev); err != nil {
		t.Fatalf("second event line does not parse: %v", err)
	}
	if ev.Ev != "scan-pass" || ev.Dir != "tracked" || ev.Tier != "-" || ev.N != 640 {
		t.Fatalf("bad second event: %+v", ev)
	}
}

func TestChromeTraceSinkIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.AddSink(NewChromeTraceSink(&buf, "run-tag"))
	tr.Emit(Event{Time: 1000, VM: 1, Type: EvMigration, Dir: DirDemote, Tier: TierSlow, PFN: 9, N: 1})
	tr.Emit(Event{Time: 2000, VM: 2, Type: EvScanPass, Dir: DirFull, Tier: TierNone, N: 512, Cost: 50000})
	tr.Emit(Event{Time: 3000, VM: 0, Type: EvDRFRebalance, Tier: TierNone, N: 128, Aux: 2})
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, buf.String())
	}
	// 3 process_name metadata records + 3 events.
	if len(records) != 6 {
		t.Fatalf("got %d records, want 6", len(records))
	}
	phases := map[string]int{}
	var sawDur bool
	for _, r := range records {
		ph, _ := r["ph"].(string)
		phases[ph]++
		if ph == "X" {
			if _, ok := r["dur"]; !ok {
				t.Fatalf("X record without dur: %v", r)
			}
			sawDur = true
		}
		if _, ok := r["pid"]; !ok {
			t.Fatalf("record without pid: %v", r)
		}
	}
	if phases["M"] != 3 || phases["i"] != 2 || phases["X"] != 1 || !sawDur {
		t.Fatalf("unexpected phase mix: %v", phases)
	}
}

func TestChromeTraceSinkEmptyRunIsValid(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(8)
	tr.AddSink(NewChromeTraceSink(&buf, ""))
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var records []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &records); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(records) != 0 {
		t.Fatalf("empty run produced %d records", len(records))
	}
}

func TestRegistryIdempotentAndOrdered(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	b := r.Histogram("b")
	g := r.Gauge("g")
	if r.Counter("a") != a {
		t.Fatal("re-registering a counter returned a different instrument")
	}
	if r.Histogram("b") != b || r.Gauge("g") != g {
		t.Fatal("re-registration is not idempotent")
	}
	// Kind mismatch returns a detached instrument, not a panic or the
	// wrong type.
	if r.Gauge("a") == nil {
		t.Fatal("kind-mismatched lookup returned nil")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (mismatch must not register)", r.Len())
	}
	s := r.Snapshot()
	names := []string{s.Values[0].Name, s.Values[1].Name, s.Values[2].Name}
	if names[0] != "a" || names[1] != "b" || names[2] != "g" {
		t.Fatalf("snapshot not in registration order: %v", names)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	h := r.Histogram("lat")
	g := r.Gauge("pct")
	c.Add(10)
	h.Observe(100)
	h.Observe(200)
	g.Set(40)
	before := r.Snapshot()
	c.Add(5)
	h.Observe(1 << 20)
	g.Set(70)
	after := r.Snapshot()
	d := after.Diff(before)
	if v := d.Find("ops"); v == nil || v.Value != 5 {
		t.Fatalf("counter diff = %+v, want 5", v)
	}
	if v := d.Find("pct"); v == nil || v.Value != 70 {
		t.Fatalf("gauge diff should keep latest value, got %+v", v)
	}
	v := d.Find("lat")
	if v == nil || v.Value != 1 || v.Sum != 1<<20 {
		t.Fatalf("histogram diff = %+v, want count 1 sum 2^20", v)
	}
	// The only observation in the window is 2^20, so every quantile of
	// the diff must land in its bucket, not near the old 100-200 range.
	if q := v.Quantile(0.5); q < 1<<19 {
		t.Fatalf("diff p50 = %v, want >= 2^19", q)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket for [8,16)
	}
	h.Observe(1e6)
	if h.Count() != 100 || h.Max() != 1000000 {
		t.Fatalf("count/max = %d/%d", h.Count(), h.Max())
	}
	p50 := h.Quantile(0.50)
	if p50 < 10 || p50 > 16 {
		t.Fatalf("p50 = %v, want within [10,16]", p50)
	}
	if p100 := h.Quantile(1.0); p100 != 1e6 {
		t.Fatalf("p100 = %v, want clamped to max 1e6", p100)
	}
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(-5) // clamps
	if zeros.Quantile(0.99) != 0 {
		t.Fatalf("all-zero histogram p99 = %v", zeros.Quantile(0.99))
	}
}

func TestSnapshotTableRenders(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm1.guestos.demotions").Add(3)
	h := r.Histogram("memsim.epoch_ns")
	h.Observe(1000)
	h.Observe(3000)
	var buf bytes.Buffer
	r.Snapshot().Table("metrics").RenderCSV(&buf)
	out := buf.String()
	if !strings.Contains(out, "metric,kind,value,sum,mean,p50,p99,max") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "vm1.guestos.demotions,counter,3.00") {
		t.Fatalf("missing counter row:\n%s", out)
	}
	if !strings.Contains(out, "memsim.epoch_ns,histogram,2.00") {
		t.Fatalf("missing histogram row:\n%s", out)
	}
}

func TestScopePrefixing(t *testing.T) {
	o := New()
	now := func() sim.Duration { return 0 }
	vm2 := o.Scope(2, now)
	sys := o.Scope(0, now)
	vm2.Counter("guestos.promotions").Inc()
	sys.Counter("vmm.drf_rebalances").Inc()
	s := o.Metrics.Snapshot()
	if s.Find("vm2/guestos.promotions") == nil {
		t.Fatalf("missing scoped VM metric: %+v", s.Values)
	}
	if s.Find("vmm.drf_rebalances") == nil {
		t.Fatalf("system scope must not prefix: %+v", s.Values)
	}
	if vm2.Registry().ScopePath() != "vm2" {
		t.Fatalf("vm scope path = %q, want vm2", vm2.Registry().ScopePath())
	}
	if sys.Registry() != o.Metrics {
		t.Fatal("system scope must use the root registry")
	}
	var nilObs *Obs
	if nilObs.Scope(1, now) != nil {
		t.Fatal("nil Obs must yield nil Scope")
	}
	if nilObs.RunTag() != "" {
		t.Fatal("nil Obs RunTag should be empty")
	}
	if err := nilObs.Close(); err != nil {
		t.Fatalf("nil Obs Close: %v", err)
	}
}
