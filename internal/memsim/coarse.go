package memsim

import "heteroos/internal/sim"

// Coarse is the fast, low-fidelity backend for fleet-scale runs. It
// keeps the analytic model's structure — CPU time from instruction
// throughput, per-tier stall as latency plus bandwidth components,
// tier costs additive — but batches the per-tier charging into one
// multiply-only pass over precomputed coefficients and skips the LLC
// miss-curve simulation entirely:
//
//   - Spec-derived math (latency, reciprocal bandwidth, instruction
//     rates per thread count) is computed once per machine-spec
//     generation, not per charge; Charge itself performs no divisions.
//   - All misses are priced at the tier's load latency: the store
//     visibility model (write-back absorption, NVM asymmetry doubling)
//     is dropped, which undercosts store-heavy phases on asymmetric
//     tiers by a bounded, mode-independent factor.
//   - EffectiveMPKI returns the reference MPKI unchanged — the LLC
//     power-law rescale (two math.Pow per epoch per VM, the single
//     hottest pricing operation) is skipped. On the reference platform
//     (the default LLC) the rescale is exactly 1, so this is free; on
//     other cache sizes (figure2's emulator) coarse diverges.
//
// The approximations scale every mode's costs by the same workload-
// dependent factors, so figure shapes — mode orderings, monotonicity
// across capacity ratios — survive even though absolute numbers shift;
// the differential tests in internal/exp pin exactly that contract.
type Coarse struct {
	machine *Machine
	cpu     CPU
	obs     *EngineObs

	// Coefficients below are derived from the machine specs at gen;
	// refresh() recomputes them when SetSpec bumped the generation
	// (mid-run throttle shifts).
	gen    uint64
	missNs [NumTiers]float64 // latency charged per miss (load latency)
	invBW  [NumTiers]float64 // ns per byte moved
	// invIPS[t] is ns per instruction at t clamped threads (index 0
	// doubles as the 1-thread floor so unclamped lookups stay in range).
	invIPS []float64
}

// NewCoarse builds the coarse backend over m.
func NewCoarse(m *Machine, opts ...Option) *Coarse {
	o := applyOptions(opts)
	b := &Coarse{machine: m, cpu: o.cpu, obs: o.engineObs()}
	cores := b.cpu.Cores
	if cores < 1 {
		cores = 1
	}
	b.invIPS = make([]float64, cores+1)
	for t := 1; t <= cores; t++ {
		if ips := b.cpu.FreqGHz * b.cpu.IPC * float64(t); ips > 0 {
			b.invIPS[t] = 1 / ips
		}
	}
	b.invIPS[0] = b.invIPS[1]
	b.refresh()
	return b
}

// Name identifies the coarse backend.
func (b *Coarse) Name() string { return BackendCoarse }

// Machine exposes the machine the backend prices against.
func (b *Coarse) Machine() *Machine { return b.machine }

// EffectiveMPKI skips the LLC simulation: the reference MPKI is used
// as-is (exact on the reference LLC, approximate elsewhere).
func (b *Coarse) EffectiveMPKI(_ LLC, mpki float64, _ int64) float64 { return mpki }

// refresh recomputes the spec-derived coefficients.
func (b *Coarse) refresh() {
	for t := Tier(0); t < NumTiers; t++ {
		spec := b.machine.Spec(t)
		b.missNs[t] = spec.LoadLatencyNs
		if spec.BandwidthGBs > 0 {
			b.invBW[t] = 1 / spec.BandwidthGBs // GB/s == bytes/ns
		} else {
			b.invBW[t] = 0
		}
	}
	b.gen = b.machine.SpecGen()
}

// Charge prices one epoch with the batched model: one fused pass over
// both tiers, multiplications against the precomputed coefficients
// only.
func (b *Coarse) Charge(c EpochCharge) EpochCost {
	if b.gen != b.machine.SpecGen() {
		b.refresh()
	}
	var cost EpochCost

	threads := c.Threads
	if threads < 1 {
		threads = 1
	} else if threads >= len(b.invIPS) {
		threads = len(b.invIPS) - 1
	}
	cost.CPUTime = sim.Duration(float64(c.Instr) * b.invIPS[threads])

	mlp := c.MLP
	if mlp < 1 {
		mlp = 1
	}
	invWindow := 1 / (mlp * float64(threads))
	bpm := c.BytesPerMiss
	if bpm < MinBytesPerMiss {
		bpm = MinBytesPerMiss
	}

	// The tier loop is unrolled: NumTiers is 2, and constant indices keep
	// the fixed-size array accesses bounds-check free in this hot loop.
	if total := c.Traffic[FastMem].Total(); total != 0 {
		misses := float64(total)
		latNs := misses * b.missNs[FastMem] * invWindow
		bytes := misses * bpm
		bwNs := bytes * b.invBW[FastMem]
		cost.Misses[FastMem] = total
		cost.BytesOut[FastMem] = uint64(bytes)
		cost.MemTime[FastMem] = sim.Duration(latNs + bwNs)
		cost.BWBound[FastMem] = bwNs > latNs
	}
	if total := c.Traffic[SlowMem].Total(); total != 0 {
		misses := float64(total)
		latNs := misses * b.missNs[SlowMem] * invWindow
		bytes := misses * bpm
		bwNs := bytes * b.invBW[SlowMem]
		cost.Misses[SlowMem] = total
		cost.BytesOut[SlowMem] = uint64(bytes)
		cost.MemTime[SlowMem] = sim.Duration(latNs + bwNs)
		cost.BWBound[SlowMem] = bwNs > latNs
	}

	cost.OSTime = c.OSTime
	cost.Total = cost.CPUTime + cost.MemTime[FastMem] + cost.MemTime[SlowMem] + cost.OSTime
	if b.obs != nil {
		b.obs.observe(&cost)
	}
	return cost
}
