package memsim

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// This file implements trace-driven simulation in the Virtuoso
// imitation style: an analytic run records every (charge, cost) pair
// it prices, and a later run replays the recorded costs instead of
// recomputing them. The trace format is JSONL — one TraceRecord per
// line, in Charge order — chosen over a binary framing because the
// records are small, diffable, and append-friendly, and because Go's
// float64 JSON encoding (shortest representation that round-trips)
// preserves every cost bit-exactly.

// TraceRecord is one priced epoch: the charge the epoch loop issued
// and the cost the recording backend returned for it.
type TraceRecord struct {
	Charge EpochCharge `json:"charge"`
	Cost   EpochCost   `json:"cost"`
}

// Trace is a loaded epoch-cost stream, shareable across Systems: each
// Replay built from it gets an independent cursor.
type Trace struct {
	Records []TraceRecord
}

// ErrTraceDecode reports a malformed trace stream.
var ErrTraceDecode = errors.New("memsim: malformed trace")

// LoadTrace decodes a JSONL trace stream.
func LoadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrTraceDecode, line, err)
		}
		tr.Records = append(tr.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceDecode, err)
	}
	if len(tr.Records) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrTraceDecode)
	}
	return tr, nil
}

// LoadTraceFile loads a JSONL trace from disk.
func LoadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("memsim: open trace: %w", err)
	}
	defer f.Close()
	tr, err := LoadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// Builder returns a Builder producing Replay backends over this trace.
// Each built backend replays from the start with its own cursor, so
// one loaded trace can drive many single-System jobs.
func (tr *Trace) Builder() Builder {
	return func(m *Machine, opts ...Option) Backend {
		return NewReplay(tr, m, opts...)
	}
}

// Replay is the trace-replay backend: Charge returns the recorded cost
// for the next epoch in the stream. If the live run issues more
// charges than the trace holds, or a live charge's instruction count
// disagrees with the recorded one, the backend falls back to an
// embedded analytic engine for that epoch and counts the divergence —
// replay should degrade into the reference model, not corrupt a run.
type Replay struct {
	trace    *Trace
	fallback *Engine
	obs      *EngineObs
	cursor   int
	diverged uint64
	overrun  uint64
}

// NewReplay builds a replay backend over tr and m. The options
// configure the embedded analytic fallback (and obs accounting, which
// observes replayed costs just like computed ones).
func NewReplay(tr *Trace, m *Machine, opts ...Option) *Replay {
	o := applyOptions(opts)
	return &Replay{
		trace:    tr,
		fallback: &Engine{machine: m, cpu: o.cpu},
		obs:      o.engineObs(),
	}
}

// Name identifies the replay backend.
func (r *Replay) Name() string { return BackendReplay }

// Machine exposes the machine the fallback engine prices against.
func (r *Replay) Machine() *Machine { return r.fallback.Machine() }

// EffectiveMPKI mirrors the analytic rescale so the layers above see
// the same profile-to-traffic conversion the recording run used.
func (r *Replay) EffectiveMPKI(llc LLC, mpki float64, wssBytes int64) float64 {
	return r.fallback.EffectiveMPKI(llc, mpki, wssBytes)
}

// Charge returns the next recorded cost, falling back to the analytic
// model past the end of the trace or on a mismatched charge.
func (r *Replay) Charge(c EpochCharge) EpochCost {
	var cost EpochCost
	switch {
	case r.cursor >= len(r.trace.Records):
		r.overrun++
		cost = r.fallback.Charge(c)
	default:
		rec := &r.trace.Records[r.cursor]
		r.cursor++
		if rec.Charge.Instr != c.Instr || rec.Charge.Traffic != c.Traffic {
			r.diverged++
			cost = r.fallback.Charge(c)
		} else {
			cost = rec.Cost
		}
	}
	if r.obs != nil {
		r.obs.observe(&cost)
	}
	return cost
}

// Replayed reports how many epochs were served from the trace.
func (r *Replay) Replayed() int { return r.cursor }

// Diverged reports live charges that mismatched their recorded epoch.
func (r *Replay) Diverged() uint64 { return r.diverged }

// Overrun reports live charges issued past the end of the trace.
func (r *Replay) Overrun() uint64 { return r.overrun }

// Recorder decorates a Backend, writing every (charge, cost) pair as a
// JSONL TraceRecord. Write errors are sticky and surfaced via Err()
// rather than failing Charge: recording must not perturb a run.
type Recorder struct {
	inner Backend
	w     *bufio.Writer
	enc   *json.Encoder
	err   error
	n     uint64
}

// NewRecorder wraps inner, streaming its trace to w.
func NewRecorder(inner Backend, w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{inner: inner, w: bw, enc: json.NewEncoder(bw)}
}

// Name decorates the inner backend's name, e.g. "record(analytic)".
func (r *Recorder) Name() string { return "record(" + r.inner.Name() + ")" }

// Machine exposes the inner backend's machine.
func (r *Recorder) Machine() *Machine { return r.inner.Machine() }

// EffectiveMPKI delegates to the inner backend.
func (r *Recorder) EffectiveMPKI(llc LLC, mpki float64, wssBytes int64) float64 {
	return r.inner.EffectiveMPKI(llc, mpki, wssBytes)
}

// Charge prices via the inner backend and records the pair.
func (r *Recorder) Charge(c EpochCharge) EpochCost {
	cost := r.inner.Charge(c)
	if r.err == nil {
		r.err = r.enc.Encode(TraceRecord{Charge: c, Cost: cost})
		if r.err == nil {
			r.n++
		}
	}
	return cost
}

// Recorded reports how many epochs were written.
func (r *Recorder) Recorded() uint64 { return r.n }

// Flush drains the buffered trace to the underlying writer.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Err reports the first write/encode error, if any.
func (r *Recorder) Err() error { return r.err }

// RecordingBuilder wraps a Builder so every backend it constructs is
// recorded to the writer obtained from open (called once per built
// backend — CLIs pass a per-job file opener). The opener also returns
// a register hook the caller can use to flush/close at job end.
func RecordingBuilder(inner Builder, open func() (io.Writer, func(*Recorder))) Builder {
	return func(m *Machine, opts ...Option) Backend {
		w, register := open()
		rec := NewRecorder(inner(m, opts...), w)
		if register != nil {
			register(rec)
		}
		return rec
	}
}
