package memsim

import (
	"fmt"

	"heteroos/internal/snapshot"
)

// Snapshot serializes the machine's mutable state: per-tier specs (a
// throttle-shift fault may have replaced the boot-time ones), the spec
// generation, per-frame ownership, and the free lists in their exact
// runtime order (allocation pops from the end, so order is behavioural
// state).
func (m *Machine) Snapshot(e *snapshot.Encoder) {
	for t := Tier(0); t < NumTiers; t++ {
		e.U64(uint64(m.base[t]))
		e.U64(m.size[t])
		e.JSON(m.spec[t])
	}
	e.U64(m.specGen)
	e.U32(uint32(len(m.owner)))
	for _, o := range m.owner {
		e.U32(uint32(o))
	}
	for t := Tier(0); t < NumTiers; t++ {
		free := make([]uint64, len(m.free[t]))
		for i, mfn := range m.free[t] {
			free[i] = uint64(mfn)
		}
		e.U64s(free)
		e.U64(m.freeCnt[t])
		e.U64(m.allocCnt[t])
	}
}

// Restore overwrites the machine's mutable state from a snapshot taken
// on a machine of the same geometry.
func (m *Machine) Restore(d *snapshot.Decoder) error {
	for t := Tier(0); t < NumTiers; t++ {
		base, size := MFN(d.U64()), d.U64()
		if base != m.base[t] || size != m.size[t] {
			return fmt.Errorf("memsim: snapshot %v extent [%d,+%d) != machine [%d,+%d)",
				t, base, size, m.base[t], m.size[t])
		}
		if err := d.JSON(&m.spec[t]); err != nil {
			return err
		}
	}
	m.specGen = d.U64()
	if n := int(d.U32()); n != len(m.owner) {
		return fmt.Errorf("memsim: snapshot has %d frames, machine has %d", n, len(m.owner))
	}
	for i := range m.owner {
		m.owner[i] = Owner(d.U32())
	}
	for t := Tier(0); t < NumTiers; t++ {
		free := d.U64s()
		m.free[t] = m.free[t][:0]
		for _, mfn := range free {
			m.free[t] = append(m.free[t], MFN(mfn))
		}
		m.freeCnt[t] = d.U64()
		m.allocCnt[t] = d.U64()
	}
	return d.Err()
}

// StateSnapshotter is implemented by backends that carry mutable run
// state beyond the machine (e.g. Replay's trace cursor). Stateless
// backends (analytic, coarse — whose spec coefficients self-refresh via
// Machine.SpecGen) need not implement it.
type StateSnapshotter interface {
	SnapshotState(e *snapshot.Encoder)
	RestoreState(d *snapshot.Decoder) error
}

// SnapshotState serializes the replay cursor and divergence counters.
func (r *Replay) SnapshotState(e *snapshot.Encoder) {
	e.U64(uint64(len(r.trace.Records)))
	e.Int(r.cursor)
	e.U64(r.diverged)
	e.U64(r.overrun)
}

// RestoreState repositions the replay cursor. The backend must have
// been built over the same trace the snapshot was taken with.
func (r *Replay) RestoreState(d *snapshot.Decoder) error {
	n := d.U64()
	if n != uint64(len(r.trace.Records)) {
		return fmt.Errorf("memsim: snapshot replay trace has %d records, backend has %d",
			n, len(r.trace.Records))
	}
	cursor := d.Int()
	if cursor < 0 || cursor > len(r.trace.Records) {
		return fmt.Errorf("memsim: snapshot replay cursor %d out of range", cursor)
	}
	r.cursor = cursor
	r.diverged = d.U64()
	r.overrun = d.U64()
	return d.Err()
}
