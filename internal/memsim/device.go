// Package memsim models the memory hardware the paper evaluates on: the
// heterogeneous device catalog (Table 1), the DRAM-throttling emulation
// table (Table 3), machine frames grouped into tiers, a last-level-cache
// miss model, and the access-timing engine that converts cache misses into
// simulated stall time.
//
// The paper emulates FastMem/SlowMem by throttling one DRAM socket's
// bandwidth and latency through PCI thermal registers; this package applies
// the identical (latency ×L, bandwidth ÷B) transform analytically.
package memsim

import (
	"errors"
	"fmt"
)

// PageSize is the architectural page size in bytes. The simulator uses
// 4 KiB pages throughout, matching the paper's x86 testbed.
const PageSize = 4096

// CacheLineSize is the transfer unit between LLC and memory, in bytes.
const CacheLineSize = 64

// MinBytesPerMiss bounds the effective DRAM traffic per LLC miss from
// below: row-buffer hits and write combining reduce device traffic well
// under a full line, but never to zero.
const MinBytesPerMiss = 8

// DeviceClass identifies a memory technology from the paper's Table 1.
type DeviceClass int

const (
	// ClassDRAM is conventional DDR DRAM, the 1x density baseline.
	ClassDRAM DeviceClass = iota
	// ClassStacked3D is on-chip stacked 3D-DRAM (HMC/HBM class).
	ClassStacked3D
	// ClassNVM is byte-addressable non-volatile memory (PCM class).
	ClassNVM
)

// String returns the catalog name of the device class.
func (c DeviceClass) String() string {
	switch c {
	case ClassDRAM:
		return "DRAM"
	case ClassStacked3D:
		return "Stacked-3D"
	case ClassNVM:
		return "NVM (PCM)"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// DeviceSpec describes one memory technology: the paper's Table 1 row.
// Ranges in the paper are represented by their midpoints, with the range
// bounds retained for documentation output.
type DeviceSpec struct {
	Class DeviceClass
	// DensityFactor is capacity per die area relative to Stacked-3D = 1x.
	DensityMin, DensityMax float64
	// Load/store latencies in nanoseconds.
	LoadLatencyMinNs, LoadLatencyMaxNs   float64
	StoreLatencyMinNs, StoreLatencyMaxNs float64
	// Peak bandwidth in GB/s.
	BandwidthMinGBs, BandwidthMaxGBs float64
}

// LoadLatencyNs returns the representative (midpoint) load latency.
func (d DeviceSpec) LoadLatencyNs() float64 {
	return (d.LoadLatencyMinNs + d.LoadLatencyMaxNs) / 2
}

// StoreLatencyNs returns the representative (midpoint) store latency.
func (d DeviceSpec) StoreLatencyNs() float64 {
	return (d.StoreLatencyMinNs + d.StoreLatencyMaxNs) / 2
}

// BandwidthGBs returns the representative (midpoint) bandwidth.
func (d DeviceSpec) BandwidthGBs() float64 {
	return (d.BandwidthMinGBs + d.BandwidthMaxGBs) / 2
}

// DeviceCatalog is the paper's Table 1: heterogeneous memory
// characteristics for stacked 3D-DRAM, DRAM, and NVM (PCM).
var DeviceCatalog = []DeviceSpec{
	{
		Class:      ClassStacked3D,
		DensityMin: 1, DensityMax: 1,
		LoadLatencyMinNs: 30, LoadLatencyMaxNs: 50,
		StoreLatencyMinNs: 30, StoreLatencyMaxNs: 50,
		BandwidthMinGBs: 120, BandwidthMaxGBs: 200,
	},
	{
		Class:      ClassDRAM,
		DensityMin: 4, DensityMax: 16,
		LoadLatencyMinNs: 60, LoadLatencyMaxNs: 60,
		StoreLatencyMinNs: 60, StoreLatencyMaxNs: 60,
		BandwidthMinGBs: 15, BandwidthMaxGBs: 25,
	},
	{
		Class:      ClassNVM,
		DensityMin: 16, DensityMax: 64,
		LoadLatencyMinNs: 150, LoadLatencyMaxNs: 150,
		StoreLatencyMinNs: 300, StoreLatencyMaxNs: 600,
		BandwidthMinGBs: 2, BandwidthMaxGBs: 2,
	},
}

// ErrUnknownDevice reports a device class absent from DeviceCatalog.
var ErrUnknownDevice = errors.New("memsim: unknown device class")

// deviceIndex maps class → catalog position, built once at init so
// lookups don't rescan the catalog.
var deviceIndex = func() map[DeviceClass]int {
	idx := make(map[DeviceClass]int, len(DeviceCatalog))
	for i, d := range DeviceCatalog {
		idx[d.Class] = i
	}
	return idx
}()

// DeviceByClass returns the catalog entry for class, or an error
// wrapping ErrUnknownDevice if the catalog has no such row.
func DeviceByClass(c DeviceClass) (DeviceSpec, error) {
	i, ok := deviceIndex[c]
	if !ok {
		return DeviceSpec{}, fmt.Errorf("%w: %v", ErrUnknownDevice, c)
	}
	return DeviceCatalog[i], nil
}
