package memsim

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"heteroos/internal/obs"
	"heteroos/internal/sim"
)

// backendCharges is a small varied charge stream exercising both tiers,
// store traffic, MLP/thread spread, and OS time.
func backendCharges() []EpochCharge {
	var out []EpochCharge
	for i := 0; i < 16; i++ {
		c := EpochCharge{
			Instr:            uint64(1_000_000 * (i + 1)),
			Threads:          1 + i%8,
			MLP:              1 + float64(i%4),
			BytesPerMiss:     float64(16 * (1 + i%4)),
			StoreVisibleFrac: 0.35,
			OSTime:           sim.Duration(i * 1000),
		}
		c.Traffic[FastMem] = TierTraffic{LoadMisses: uint64(10_000 * i), StoreMisses: uint64(1_000 * i)}
		c.Traffic[SlowMem] = TierTraffic{LoadMisses: uint64(5_000 * (16 - i)), StoreMisses: uint64(500 * i)}
		out = append(out, c)
	}
	return out
}

func TestBuilderByName(t *testing.T) {
	m := newTestMachine(64, 64)
	for name, want := range map[string]string{
		"":         BackendAnalytic,
		"analytic": BackendAnalytic,
		"coarse":   BackendCoarse,
	} {
		b, err := BuilderByName(name)
		if err != nil {
			t.Fatalf("BuilderByName(%q): %v", name, err)
		}
		if got := b(m).Name(); got != want {
			t.Errorf("BuilderByName(%q) builds %q, want %q", name, got, want)
		}
	}
	if _, err := BuilderByName("bogus"); !errors.Is(err, ErrUnknownBackend) {
		t.Errorf("BuilderByName(bogus) = %v, want ErrUnknownBackend", err)
	}
	if _, err := BuilderByName(BackendReplay); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("BuilderByName(replay) = %v, want a trace-requirement error", err)
	}
}

func TestBackendInterfaceSatisfied(t *testing.T) {
	m := newTestMachine(64, 64)
	var _ Backend = NewAnalytic(m)
	var _ Backend = NewCoarse(m)
	var _ Backend = NewRecorder(NewAnalytic(m), &bytes.Buffer{})
	if NewAnalytic(m).Machine() != m || NewCoarse(m).Machine() != m {
		t.Fatal("backends must expose their machine")
	}
}

// Coarse must agree with analytic exactly where its approximations are
// vacuous: loads-only traffic (no store asymmetry in play) on the
// default LLC (rescale ≡ 1).
func TestCoarseMatchesAnalyticOnLoads(t *testing.T) {
	m := newTestMachine(1024, 1024)
	a, c := NewAnalytic(m), NewCoarse(m)
	ch := EpochCharge{Instr: 1_000_000, Threads: 4, MLP: 2, BytesPerMiss: 64}
	ch.Traffic[FastMem] = TierTraffic{LoadMisses: 100_000}
	ch.Traffic[SlowMem] = TierTraffic{LoadMisses: 50_000}
	ca, cc := a.Charge(ch), c.Charge(ch)
	for t2 := Tier(0); t2 < NumTiers; t2++ {
		ra, rc := float64(ca.MemTime[t2]), float64(cc.MemTime[t2])
		if math.Abs(ra-rc) > 1e-6*ra {
			t.Errorf("%v: coarse MemTime %v vs analytic %v", t2, rc, ra)
		}
		if ca.Misses[t2] != cc.Misses[t2] || ca.BytesOut[t2] != cc.BytesOut[t2] {
			t.Errorf("%v: miss/byte accounting diverges", t2)
		}
	}
	if ca.CPUTime != cc.CPUTime {
		// Reciprocal-multiply vs divide may differ by an ulp; bound it.
		if math.Abs(float64(ca.CPUTime-cc.CPUTime)) > 1 {
			t.Errorf("CPU time: coarse %v vs analytic %v", cc.CPUTime, ca.CPUTime)
		}
	}
	llc := DefaultLLC()
	if a.EffectiveMPKI(llc, 10, 1<<30) != c.EffectiveMPKI(llc, 10, 1<<30) {
		t.Error("coarse EffectiveMPKI must match analytic on the default LLC")
	}
}

// Coarse stays directionally faithful on mixed traffic: ordering across
// charges follows analytic even where absolute numbers shift.
func TestCoarsePreservesOrdering(t *testing.T) {
	m := newTestMachine(1024, 1024)
	a, c := NewAnalytic(m), NewCoarse(m)
	var at, ct []float64
	for _, ch := range backendCharges() {
		at = append(at, float64(a.Charge(ch).Total))
		ct = append(ct, float64(c.Charge(ch).Total))
	}
	for i := 0; i < len(at); i++ {
		for j := i + 1; j < len(at); j++ {
			// Only compare decisively separated pairs: within 5% the
			// approximation may legitimately flip a near-tie.
			if at[i] > at[j]*1.05 && ct[i] <= ct[j] {
				t.Errorf("ordering flip: analytic %d>%d but coarse %v<=%v", i, j, ct[i], ct[j])
			}
			if at[j] > at[i]*1.05 && ct[j] <= ct[i] {
				t.Errorf("ordering flip: analytic %d>%d but coarse %v<=%v", j, i, ct[j], ct[i])
			}
		}
	}
}

// A mid-run SetSpec (throttle-shift fault) must reprice immediately even
// though coarse caches spec-derived coefficients.
func TestCoarseSeesSpecShift(t *testing.T) {
	m := newTestMachine(1024, 1024)
	c := NewCoarse(m)
	ch := EpochCharge{Instr: 1_000_000, Threads: 1, MLP: 1, BytesPerMiss: 64}
	ch.Traffic[SlowMem] = TierTraffic{LoadMisses: 100_000}
	before := c.Charge(ch)
	m.SetSpec(SlowMem, Throttle{5, 12}.Spec())
	after := c.Charge(ch)
	if after.MemTime[SlowMem] <= before.MemTime[SlowMem] {
		t.Fatalf("harsher throttle did not raise coarse cost: %v -> %v",
			before.MemTime[SlowMem], after.MemTime[SlowMem])
	}
}

func TestCoarseChargeZeroAlloc(t *testing.T) {
	handle := obs.New()
	m := newTestMachine(1024, 1024)
	c := NewCoarse(m, WithObs(handle.Metrics))
	ch := EpochCharge{Instr: 1 << 20, Threads: 4, MLP: 2, BytesPerMiss: 64}
	ch.Traffic[FastMem] = TierTraffic{LoadMisses: 1000, StoreMisses: 100}
	ch.Traffic[SlowMem] = TierTraffic{LoadMisses: 500, StoreMisses: 50}
	fn := func() { c.Charge(ch) }
	fn()
	if n := testing.AllocsPerRun(100, fn); n != 0 {
		t.Fatalf("Coarse.Charge allocates %v per op, want 0", n)
	}
}

// The record → replay round-trip must reproduce every recorded cost
// exactly: ints compare equal and floats survive the JSONL encoding
// because Go emits the shortest representation that round-trips.
func TestRecordReplayRoundTripExact(t *testing.T) {
	m := newTestMachine(1024, 1024)
	var buf bytes.Buffer
	rec := NewRecorder(NewAnalytic(m), &buf)
	if got, want := rec.Name(), "record(analytic)"; got != want {
		t.Fatalf("recorder name %q, want %q", got, want)
	}
	charges := backendCharges()
	var want []EpochCost
	for _, ch := range charges {
		want = append(want, rec.Charge(ch))
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Recorded() != uint64(len(charges)) {
		t.Fatalf("recorded %d epochs, want %d", rec.Recorded(), len(charges))
	}

	tr, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplay(tr, m)
	for i, ch := range charges {
		if got := rp.Charge(ch); got != want[i] {
			t.Fatalf("epoch %d: replay %+v != recorded %+v", i, got, want[i])
		}
	}
	if rp.Diverged() != 0 || rp.Overrun() != 0 {
		t.Fatalf("clean replay reported diverged=%d overrun=%d", rp.Diverged(), rp.Overrun())
	}
	if rp.Replayed() != len(charges) {
		t.Fatalf("replayed %d, want %d", rp.Replayed(), len(charges))
	}
}

// Replay degrades into the analytic model rather than returning wrong
// costs: mismatched charges and post-trace charges both fall back.
func TestReplayDivergenceFallsBack(t *testing.T) {
	m := newTestMachine(1024, 1024)
	var buf bytes.Buffer
	rec := NewRecorder(NewAnalytic(m), &buf)
	charges := backendCharges()
	for _, ch := range charges {
		rec.Charge(ch)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	rp := NewReplay(tr, m)
	a := NewAnalytic(m)
	mutated := charges[0]
	mutated.Instr += 7
	if got, wantC := rp.Charge(mutated), a.Charge(mutated); got != wantC {
		t.Fatalf("diverged epoch not priced analytically: %+v vs %+v", got, wantC)
	}
	if rp.Diverged() != 1 {
		t.Fatalf("diverged = %d, want 1", rp.Diverged())
	}
	for _, ch := range charges[1:] {
		rp.Charge(ch)
	}
	extra := charges[3]
	if got, wantC := rp.Charge(extra), a.Charge(extra); got != wantC {
		t.Fatalf("overrun epoch not priced analytically: %+v vs %+v", got, wantC)
	}
	if rp.Overrun() != 1 {
		t.Fatalf("overrun = %d, want 1", rp.Overrun())
	}
}

func TestLoadTraceRejectsGarbage(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader("not json\n")); !errors.Is(err, ErrTraceDecode) {
		t.Fatalf("garbage trace: %v, want ErrTraceDecode", err)
	}
	if _, err := LoadTrace(strings.NewReader("")); !errors.Is(err, ErrTraceDecode) {
		t.Fatalf("empty trace: %v, want ErrTraceDecode", err)
	}
	if _, err := LoadTraceFile("/nonexistent/trace.jsonl"); err == nil {
		t.Fatal("missing file must error")
	}
}

// Trace.Builder hands each built backend an independent cursor, so one
// loaded trace can drive many jobs.
func TestTraceBuilderIndependentCursors(t *testing.T) {
	m := newTestMachine(1024, 1024)
	var buf bytes.Buffer
	rec := NewRecorder(NewAnalytic(m), &buf)
	charges := backendCharges()
	for _, ch := range charges {
		rec.Charge(ch)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	build := tr.Builder()
	b1 := build(m).(*Replay)
	b2 := build(m).(*Replay)
	b1.Charge(charges[0])
	if b2.Replayed() != 0 {
		t.Fatal("cursors are shared across built backends")
	}
	if b2.Charge(charges[0]) != b1.trace.Records[0].Cost {
		t.Fatal("second backend did not replay from the start")
	}
}
