package memsim

import (
	"errors"
	"fmt"
)

// ErrNoFrames is returned when a tier has no free frames left to satisfy
// an allocation.
var ErrNoFrames = errors.New("memsim: tier out of free frames")

// Owner identifies who holds a machine frame. Owner 0 is reserved for
// "free"; the VMM assigns positive owner ids to guest VMs.
type Owner int32

// OwnerFree marks an unallocated frame.
const OwnerFree Owner = 0

// Machine models host physical memory: a FastMem extent followed by a
// SlowMem extent, with per-frame ownership so invariants (no frame owned
// by two VMs) can be checked cheaply. The VMM is the only component that
// allocates from a Machine.
type Machine struct {
	spec     [NumTiers]TierSpec
	base     [NumTiers]MFN // first MFN of each tier
	size     [NumTiers]uint64
	owner    []Owner // indexed by MFN
	free     [NumTiers][]MFN
	freeCnt  [NumTiers]uint64
	allocCnt [NumTiers]uint64
	// specGen counts spec replacements. Backends that precompute
	// spec-derived coefficients (Coarse) compare it per charge, so a
	// mid-run SetSpec (throttle-shift fault) takes effect immediately
	// without the backend re-reading the specs every epoch.
	specGen uint64
}

// NewMachine builds a machine with the given per-tier capacities in
// frames and performance specs.
func NewMachine(fastFrames, slowFrames uint64, fast, slow TierSpec) *Machine {
	m := &Machine{}
	m.spec[FastMem] = fast
	m.spec[SlowMem] = slow
	m.base[FastMem] = 0
	m.size[FastMem] = fastFrames
	m.base[SlowMem] = MFN(fastFrames)
	m.size[SlowMem] = slowFrames
	total := fastFrames + slowFrames
	m.owner = make([]Owner, total)
	for t := Tier(0); t < NumTiers; t++ {
		m.free[t] = make([]MFN, 0, m.size[t])
		// Push in reverse so frames are handed out in ascending order.
		for i := m.size[t]; i > 0; i-- {
			m.free[t] = append(m.free[t], m.base[t]+MFN(i-1))
		}
		m.freeCnt[t] = m.size[t]
	}
	return m
}

// Spec returns the performance parameters of tier t.
func (m *Machine) Spec(t Tier) TierSpec { return m.spec[t] }

// SetSpec replaces the performance parameters of tier t. Experiments use
// this to sweep throttle points without rebuilding frame state.
func (m *Machine) SetSpec(t Tier, s TierSpec) {
	m.spec[t] = s
	m.specGen++
}

// SpecGen reports the spec generation: it increments on every SetSpec,
// letting backends cache spec-derived coefficients and refresh them
// only when a spec actually changed.
func (m *Machine) SpecGen() uint64 { return m.specGen }

// Frames reports the total capacity of tier t in frames.
func (m *Machine) Frames(t Tier) uint64 { return m.size[t] }

// FreeFrames reports the number of unallocated frames in tier t.
func (m *Machine) FreeFrames(t Tier) uint64 { return m.freeCnt[t] }

// AllocatedFrames reports the number of allocated frames in tier t.
func (m *Machine) AllocatedFrames(t Tier) uint64 { return m.allocCnt[t] }

// TierOf reports the tier containing mfn.
func (m *Machine) TierOf(mfn MFN) Tier {
	if uint64(mfn) < uint64(m.base[SlowMem]) {
		return FastMem
	}
	return SlowMem
}

// OwnerOf reports the current owner of mfn.
func (m *Machine) OwnerOf(mfn MFN) Owner {
	return m.owner[mfn]
}

// OwnedBy counts the frames currently owned by o across both tiers.
// O(total frames) — meant for invariant checks and teardown audits,
// not hot paths.
func (m *Machine) OwnedBy(o Owner) uint64 {
	var n uint64
	for _, ow := range m.owner {
		if ow == o {
			n++
		}
	}
	return n
}

// Contains reports whether mfn is a valid frame of this machine.
func (m *Machine) Contains(mfn MFN) bool {
	return uint64(mfn) < uint64(len(m.owner))
}

// Alloc takes n frames from tier t for owner o. It returns the allocated
// frames, or ErrNoFrames (allocating nothing) if fewer than n are free:
// frame grants are all-or-nothing so callers never have to unwind
// partial extents.
func (m *Machine) Alloc(t Tier, n uint64, o Owner) ([]MFN, error) {
	if o == OwnerFree {
		return nil, fmt.Errorf("memsim: Alloc with reserved owner 0")
	}
	if m.freeCnt[t] < n {
		return nil, fmt.Errorf("%w: want %d %v frames, have %d", ErrNoFrames, n, t, m.freeCnt[t])
	}
	out := make([]MFN, n)
	for i := uint64(0); i < n; i++ {
		mfn := m.free[t][len(m.free[t])-1]
		m.free[t] = m.free[t][:len(m.free[t])-1]
		m.owner[mfn] = o
		out[i] = mfn
	}
	m.freeCnt[t] -= n
	m.allocCnt[t] += n
	return out, nil
}

// AllocOne takes a single frame from tier t for owner o.
func (m *Machine) AllocOne(t Tier, o Owner) (MFN, error) {
	fs, err := m.Alloc(t, 1, o)
	if err != nil {
		return NilMFN, err
	}
	return fs[0], nil
}

// Free returns frames to their tiers. Freeing a frame that is not
// allocated, or on behalf of a non-owner, panics: both indicate a
// bookkeeping bug that must not be masked.
func (m *Machine) Free(frames []MFN, o Owner) {
	for _, mfn := range frames {
		cur := m.owner[mfn]
		if cur == OwnerFree {
			panic(fmt.Sprintf("memsim: double free of MFN %d", mfn))
		}
		if cur != o {
			panic(fmt.Sprintf("memsim: owner %d freeing MFN %d owned by %d", o, mfn, cur))
		}
		t := m.TierOf(mfn)
		m.owner[mfn] = OwnerFree
		m.free[t] = append(m.free[t], mfn)
		m.freeCnt[t]++
		m.allocCnt[t]--
	}
}

// CheckInvariants validates the frame accounting: free+allocated matches
// capacity per tier, free-list entries are unowned, and no frame appears
// free twice. It is used by tests and is cheap enough to call from
// experiment teardown.
func (m *Machine) CheckInvariants() error {
	for t := Tier(0); t < NumTiers; t++ {
		if m.freeCnt[t]+m.allocCnt[t] != m.size[t] {
			return fmt.Errorf("memsim: %v free %d + alloc %d != size %d",
				t, m.freeCnt[t], m.allocCnt[t], m.size[t])
		}
		if uint64(len(m.free[t])) != m.freeCnt[t] {
			return fmt.Errorf("memsim: %v free list len %d != count %d",
				t, len(m.free[t]), m.freeCnt[t])
		}
		seen := make(map[MFN]bool, len(m.free[t]))
		for _, mfn := range m.free[t] {
			if m.owner[mfn] != OwnerFree {
				return fmt.Errorf("memsim: free-list MFN %d has owner %d", mfn, m.owner[mfn])
			}
			if seen[mfn] {
				return fmt.Errorf("memsim: MFN %d on free list twice", mfn)
			}
			seen[mfn] = true
			if m.TierOf(mfn) != t {
				return fmt.Errorf("memsim: MFN %d on wrong tier list %v", mfn, t)
			}
		}
	}
	return nil
}
