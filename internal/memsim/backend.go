package memsim

import (
	"errors"
	"fmt"

	"heteroos/internal/obs"
)

// Backend is the machine-model seam: everything the epoch loop needs
// from a pricing model, abstracted so implementations of different
// fidelity/cost can be slotted in without touching the layers above
// (the fakemachine kvm/qemu/uml backend-selection shape). Three
// implementations ship:
//
//   - analytic (Engine): the paper's Table-3 model — the default, and
//     the fidelity reference every other backend is compared against.
//   - coarse (Coarse): batched per-tier charging with the LLC miss-curve
//     rescale skipped, for fleet-scale runs where pricing throughput
//     matters more than absolute accuracy.
//   - replay (Replay): consumes a recorded per-epoch access stream and
//     returns the recorded costs — trace-driven simulation in the
//     Virtuoso imitation style.
//
// A Backend belongs to one System and is driven from that System's
// epoch loop only; implementations need no internal locking.
type Backend interface {
	// Name identifies the implementation ("analytic", "coarse",
	// "replay", or a decorated form like "record(analytic)").
	Name() string
	// Machine exposes the machine whose tier specs the backend prices
	// against.
	Machine() *Machine
	// EffectiveMPKI converts a workload's reference MPKI (measured with
	// working set wssBytes on the reference LLC) into the effective
	// miss rate under llc. The analytic backend applies the power-law
	// miss curve; cheaper backends may approximate or skip it.
	EffectiveMPKI(llc LLC, mpki float64, wssBytes int64) float64
	// Charge prices one epoch of one VM's execution.
	Charge(EpochCharge) EpochCost
}

// Option configures a backend at construction. The exported mutable
// fields the Engine used to carry (CPU, Obs) are gone: a backend's
// model parameters are fixed once built, which is what lets one System
// hold any Backend without knowing its concrete type.
type Option func(*backendOptions)

type backendOptions struct {
	cpu CPU
	reg *obs.Registry
}

// WithCPU sets the compute-side model (default DefaultCPU).
func WithCPU(cpu CPU) Option {
	return func(o *backendOptions) { o.cpu = cpu }
}

// WithObs attaches per-charge accounting: the backend registers its
// instrument set in reg and observes every priced epoch. Observation
// never changes pricing.
func WithObs(reg *obs.Registry) Option {
	return func(o *backendOptions) { o.reg = reg }
}

// applyOptions resolves the option list against the defaults.
func applyOptions(opts []Option) backendOptions {
	o := backendOptions{cpu: DefaultCPU()}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// engineObs builds the shared instrument set when observability was
// requested (nil otherwise).
func (o *backendOptions) engineObs() *EngineObs {
	if o.reg == nil {
		return nil
	}
	return NewEngineObs(o.reg)
}

// Builder constructs a Backend over a machine. core.Config carries one
// so backend selection happens per job: the runner and the CLIs pass a
// Builder down, and core.NewSystem invokes it with the machine it just
// built plus the system-level options (CPU model, obs registry).
type Builder func(m *Machine, opts ...Option) Backend

// Backend names accepted by BuilderByName and the CLIs' -backend flag.
const (
	BackendAnalytic = "analytic"
	BackendCoarse   = "coarse"
	BackendReplay   = "replay"
)

// BackendNames lists the selectable backend names in fidelity order.
func BackendNames() []string {
	return []string{BackendAnalytic, BackendCoarse, BackendReplay}
}

// ErrUnknownBackend reports a -backend value naming no implementation.
var ErrUnknownBackend = errors.New("memsim: unknown backend")

// AnalyticBackend is the Builder for the analytic Table-3 engine.
func AnalyticBackend(m *Machine, opts ...Option) Backend { return NewAnalytic(m, opts...) }

// CoarseBackend is the Builder for the coarse batched-charging model.
func CoarseBackend(m *Machine, opts ...Option) Backend { return NewCoarse(m, opts...) }

// BuilderByName resolves a backend name to its Builder. Unknown names
// return an error wrapping ErrUnknownBackend; "replay" is rejected with
// a pointer at the trace requirement, because a replay backend cannot
// be built from a name alone (use Trace.Builder after loading one).
func BuilderByName(name string) (Builder, error) {
	switch name {
	case "", BackendAnalytic:
		return AnalyticBackend, nil
	case BackendCoarse:
		return CoarseBackend, nil
	case BackendReplay:
		return nil, fmt.Errorf("memsim: replay backend needs a recorded trace (load one and use Trace.Builder, or pass -replay-trace)")
	default:
		return nil, fmt.Errorf("%w %q (want one of %v)", ErrUnknownBackend, name, BackendNames())
	}
}
