package memsim

import (
	"strings"

	"heteroos/internal/obs"
	"heteroos/internal/sim"
)

// CPU describes the compute side of the platform. Instruction execution
// time is instr / (FreqGHz * IPC * active threads); the simulator does not
// model pipeline detail beyond that, because every evaluated effect in the
// paper is a memory-side effect.
type CPU struct {
	FreqGHz float64
	IPC     float64
	Cores   int
}

// DefaultCPU models the paper's 16-core 2.67 GHz Xeon.
func DefaultCPU() CPU { return CPU{FreqGHz: 2.67, IPC: 1.2, Cores: 16} }

// TierTraffic aggregates one epoch's LLC-miss traffic to a single tier.
type TierTraffic struct {
	LoadMisses  uint64
	StoreMisses uint64
}

// Total returns load+store misses.
func (t TierTraffic) Total() uint64 { return t.LoadMisses + t.StoreMisses }

// EpochCharge is everything the engine needs to price one epoch of one
// VM's execution.
type EpochCharge struct {
	// Instr is the number of instructions retired this epoch, across all
	// threads of the workload.
	Instr uint64
	// Threads is the number of runnable worker threads.
	Threads int
	// Traffic is the per-tier LLC-miss traffic.
	Traffic [NumTiers]TierTraffic
	// MLP is the per-thread memory-level parallelism: how many
	// outstanding misses one thread overlaps, hiding latency. Threads
	// overlap their miss chains with each other, so the total latency
	// divisor is MLP x Threads. Pointer-chasing code sits near 1.
	MLP float64
	// BytesPerMiss is the effective DRAM traffic per LLC miss. It may
	// fall below one cache line: row-buffer locality, write combining
	// and partial writebacks mean not every miss pays a full 64-byte
	// transfer at the memory device (minimum 8).
	BytesPerMiss float64
	// StoreVisibleFrac is the fraction of store misses whose latency is
	// not absorbed by write-back buffering and reaches the pipeline.
	StoreVisibleFrac float64
	// OSTime is software overhead accrued this epoch (allocator work,
	// hotness scans, migrations, balloon operations).
	OSTime sim.Duration
}

// EpochCost itemises the engine's pricing of one epoch.
type EpochCost struct {
	CPUTime  sim.Duration
	MemTime  [NumTiers]sim.Duration
	OSTime   sim.Duration
	Total    sim.Duration
	BWBound  [NumTiers]bool // whether the tier was bandwidth- (vs latency-) limited
	Misses   [NumTiers]uint64
	BytesOut [NumTiers]uint64
}

// EngineObs is the engine's preregistered instrument set: how many
// epochs it priced, the distribution of epoch costs, and per-tier
// miss/byte/bandwidth-bound accounting. All instruments are registered
// once at construction; observing them in Charge is plain field
// arithmetic, so the hot path stays allocation-free.
type EngineObs struct {
	charges  *obs.Counter
	epochNs  *obs.Histogram
	osNs     *obs.Histogram
	memNs    [NumTiers]*obs.Histogram
	misses   [NumTiers]*obs.Counter
	bytesOut [NumTiers]*obs.Counter
	bwBound  [NumTiers]*obs.Counter
}

// NewEngineObs registers the engine's instruments in reg under the
// "memsim." namespace.
func NewEngineObs(reg *obs.Registry) *EngineObs {
	eo := &EngineObs{
		charges: reg.Counter("memsim.charges"),
		epochNs: reg.Histogram("memsim.epoch_total_ns"),
		osNs:    reg.Histogram("memsim.epoch_os_ns"),
	}
	for t := Tier(0); t < NumTiers; t++ {
		name := strings.ToLower(t.String())
		eo.memNs[t] = reg.Histogram("memsim." + name + ".mem_ns")
		eo.misses[t] = reg.Counter("memsim." + name + ".misses")
		eo.bytesOut[t] = reg.Counter("memsim." + name + ".bytes")
		eo.bwBound[t] = reg.Counter("memsim." + name + ".bw_bound_epochs")
	}
	return eo
}

// observe records one priced epoch.
func (eo *EngineObs) observe(cost *EpochCost) {
	eo.charges.Inc()
	eo.epochNs.Observe(float64(cost.Total))
	eo.osNs.Observe(float64(cost.OSTime))
	for t := Tier(0); t < NumTiers; t++ {
		if cost.Misses[t] == 0 && cost.MemTime[t] == 0 {
			continue
		}
		eo.memNs[t].Observe(float64(cost.MemTime[t]))
		eo.misses[t].Add(cost.Misses[t])
		eo.bytesOut[t].Add(cost.BytesOut[t])
		if cost.BWBound[t] {
			eo.bwBound[t].Inc()
		}
	}
}

// Engine is the analytic backend: it prices epochs against a machine's
// tier specs with the paper's Table-3 model. It is the fidelity
// reference — every figure the repo reproduces is defined by this
// model's output — and the default Backend a System runs with.
type Engine struct {
	machine *Machine
	cpu     CPU
	// obs, when non-nil, receives per-charge accounting. It never
	// changes pricing; Charge's arithmetic is identical with it on or
	// off.
	obs *EngineObs
}

// NewAnalytic builds the analytic Table-3 engine over m. The model
// parameters are fixed at construction: WithCPU overrides the default
// Xeon, WithObs attaches per-charge accounting.
func NewAnalytic(m *Machine, opts ...Option) *Engine {
	o := applyOptions(opts)
	return &Engine{machine: m, cpu: o.cpu, obs: o.engineObs()}
}

// Name identifies the analytic backend.
func (e *Engine) Name() string { return BackendAnalytic }

// Machine exposes the machine the engine prices against.
func (e *Engine) Machine() *Machine { return e.machine }

// CPU reports the compute-side model.
func (e *Engine) CPU() CPU { return e.cpu }

// EffectiveMPKI applies the LLC power-law miss curve: the workload's
// reference MPKI rescaled for the configured cache and working set.
func (e *Engine) EffectiveMPKI(llc LLC, mpki float64, wssBytes int64) float64 {
	return mpki * llc.MPKIScale(wssBytes)
}

// Charge prices one epoch. Per tier, the latency component is the miss
// chain divided by the total outstanding-miss window (MLP x threads),
// and the bandwidth component is bytes moved / tier bandwidth. The two
// add: queueing delay at a loaded channel stretches every miss, so
// bandwidth pressure degrades even latency-bound phases smoothly (this
// also reproduces Observation 1's gradual bandwidth sensitivity rather
// than a sharp roofline kink). Tier costs add: a thread blocked on a
// SlowMem line does not advance FastMem work.
func (e *Engine) Charge(c EpochCharge) EpochCost {
	var cost EpochCost

	threads := c.Threads
	if threads < 1 {
		threads = 1
	}
	if threads > e.cpu.Cores {
		threads = e.cpu.Cores
	}
	ips := e.cpu.FreqGHz * e.cpu.IPC * float64(threads) // instructions per ns
	if ips > 0 {
		cost.CPUTime = sim.Duration(float64(c.Instr) / ips)
	}

	mlp := c.MLP
	if mlp < 1 {
		mlp = 1
	}
	latDivisor := mlp * float64(threads)
	bpm := c.BytesPerMiss
	if bpm < MinBytesPerMiss {
		bpm = MinBytesPerMiss
	}
	svf := c.StoreVisibleFrac
	if svf < 0 {
		svf = 0
	} else if svf > 1 {
		svf = 1
	}

	for t := Tier(0); t < NumTiers; t++ {
		tr := c.Traffic[t]
		if tr.Total() == 0 {
			continue
		}
		spec := e.machine.Spec(t)
		// Write-back buffering absorbs most store latency on symmetric
		// memory, but on asymmetric (NVM-class) tiers the device write
		// path is the bottleneck and buffers drain too slowly to hide
		// it (Dulloor et al.): stores become twice as visible there.
		tierSVF := svf
		if spec.StoreLatencyNs > spec.LoadLatencyNs {
			tierSVF = svf * 2
			if tierSVF > 1 {
				tierSVF = 1
			}
		}
		latNs := (float64(tr.LoadMisses)*spec.LoadLatencyNs +
			float64(tr.StoreMisses)*spec.StoreLatencyNs*tierSVF) / latDivisor
		bytes := float64(tr.Total()) * bpm
		bwNs := bytes / spec.BandwidthGBs // GB/s == bytes/ns
		cost.Misses[t] = tr.Total()
		cost.BytesOut[t] = uint64(bytes)
		cost.MemTime[t] = sim.Duration(latNs + bwNs)
		cost.BWBound[t] = bwNs > latNs
	}

	cost.OSTime = c.OSTime
	cost.Total = cost.CPUTime + cost.MemTime[FastMem] + cost.MemTime[SlowMem] + cost.OSTime
	if e.obs != nil {
		e.obs.observe(&cost)
	}
	return cost
}
