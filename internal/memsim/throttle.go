package memsim

import "fmt"

// Throttle is one (L:x, B:y) emulation point: latency increased by factor
// L and bandwidth reduced by factor B relative to unthrottled DRAM. The
// paper's Table 3 lists the measured latency/bandwidth at the points its
// evaluation uses; points not in the table are derived by applying the
// factors to the DRAM baseline.
type Throttle struct {
	L int // latency increase factor
	B int // bandwidth reduction factor
}

// String renders the throttle in the paper's "L:x, B:y" notation.
func (t Throttle) String() string { return fmt.Sprintf("L:%d,B:%d", t.L, t.B) }

// DRAM baseline used by the throttle table: the paper's evaluation
// platform measures unthrottled DRAM at 60 ns and 24 GB/s (Table 3,
// column L:1,B:1).
const (
	BaseDRAMLatencyNs     = 60.0
	BaseDRAMBandwidthGBs  = 24.0
	baseDRAMStoreLatNs    = 60.0
	nvmStoreLatencyFactor = 2.0 // NVM-class store penalty applied at L>=5
)

// measuredThrottle holds the paper's measured Table 3 values, which differ
// slightly from the ideal factor arithmetic because hardware throttling is
// not perfectly linear.
var measuredThrottle = map[Throttle]struct{ latNs, bwGBs float64 }{
	{1, 1}:  {60, 24},
	{2, 2}:  {128, 12.4},
	{5, 5}:  {354, 5.1},
	{5, 12}: {960, 1.38},
}

// ThrottleTable is the paper's Table 3 in its published column order.
var ThrottleTable = []Throttle{{1, 1}, {2, 2}, {5, 5}, {5, 12}}

// LatencyNs returns the effective load latency at this throttle point,
// preferring the measured Table 3 value when one exists.
func (t Throttle) LatencyNs() float64 {
	if m, ok := measuredThrottle[t]; ok {
		return m.latNs
	}
	// Derived points interpolate the measured super-linearity: measured
	// L:5 latency is 354 ns rather than the ideal 300 ns, so scale the
	// ideal value by the nearest measured ratio.
	ideal := BaseDRAMLatencyNs * float64(t.L)
	switch {
	case t.L >= 5:
		return ideal * (354.0 / 300.0)
	case t.L >= 2:
		return ideal * (128.0 / 120.0)
	default:
		return ideal
	}
}

// BandwidthGBs returns the effective bandwidth at this throttle point,
// preferring the measured Table 3 value when one exists.
func (t Throttle) BandwidthGBs() float64 {
	if m, ok := measuredThrottle[t]; ok {
		return m.bwGBs
	}
	// Measured throttling loses slightly more bandwidth than the ideal
	// division (B:12 measures 1.38 rather than 2.0); apply a mild excess
	// for derived high-B points.
	ideal := BaseDRAMBandwidthGBs / float64(t.B)
	if t.B >= 10 {
		return ideal * (1.38 / 2.0)
	}
	return ideal
}

// StoreLatencyNs returns the effective store latency. Deeply throttled
// configurations emulate NVM-class memory, whose writes are slower than
// reads (Table 1); milder throttles keep symmetric DRAM behaviour.
func (t Throttle) StoreLatencyNs() float64 {
	lat := t.LatencyNs()
	if t.L >= 5 {
		return lat * nvmStoreLatencyFactor
	}
	return lat
}

// Spec converts the throttle point into a TierSpec usable as a SlowMem
// (or, for L:1,B:1, FastMem) tier definition.
func (t Throttle) Spec() TierSpec {
	return TierSpec{
		LoadLatencyNs:  t.LatencyNs(),
		StoreLatencyNs: t.StoreLatencyNs(),
		BandwidthGBs:   t.BandwidthGBs(),
	}
}

// Sensitivity sweep points used by Figures 1 and 2, in presentation order.
var SensitivitySweep = []Throttle{{2, 2}, {5, 5}, {5, 7}, {5, 9}, {5, 12}}

// RemoteNUMA models the paper's "Remote NUMA" comparison bar: FastMem
// placed on a remote socket. Cross-socket access adds roughly 50% latency
// and loses roughly 40% bandwidth on the paper's Xeon X5560 platform,
// which is what bounds the observed <30% application slowdown.
var RemoteNUMA = TierSpec{
	LoadLatencyNs:  BaseDRAMLatencyNs * 1.5,
	StoreLatencyNs: baseDRAMStoreLatNs * 1.5,
	BandwidthGBs:   BaseDRAMBandwidthGBs * 0.6,
}
