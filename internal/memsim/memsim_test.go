package memsim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestDeviceCatalogTable1(t *testing.T) {
	// The catalog must reproduce Table 1's ordering and headline numbers.
	if len(DeviceCatalog) != 3 {
		t.Fatalf("catalog has %d entries, want 3", len(DeviceCatalog))
	}
	nvm, err := DeviceByClass(ClassNVM)
	if err != nil {
		t.Fatalf("NVM missing from catalog: %v", err)
	}
	if nvm.LoadLatencyNs() != 150 {
		t.Fatalf("NVM load latency %v, want 150", nvm.LoadLatencyNs())
	}
	if nvm.BandwidthGBs() != 2 {
		t.Fatalf("NVM bandwidth %v, want 2", nvm.BandwidthGBs())
	}
	dram, _ := DeviceByClass(ClassDRAM)
	stacked, _ := DeviceByClass(ClassStacked3D)
	if !(stacked.BandwidthGBs() > dram.BandwidthGBs() && dram.BandwidthGBs() > nvm.BandwidthGBs()) {
		t.Fatal("bandwidth ordering violates Table 1")
	}
	if !(stacked.LoadLatencyNs() < dram.LoadLatencyNs() && dram.LoadLatencyNs() < nvm.LoadLatencyNs()) {
		t.Fatal("latency ordering violates Table 1")
	}
	if _, err := DeviceByClass(DeviceClass(99)); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("bogus class lookup = %v, want ErrUnknownDevice", err)
	}
}

func TestDeviceClassString(t *testing.T) {
	if ClassNVM.String() != "NVM (PCM)" || ClassDRAM.String() != "DRAM" {
		t.Fatal("device class names wrong")
	}
	if DeviceClass(42).String() == "" {
		t.Fatal("unknown class should still render")
	}
}

func TestThrottleTable3Measured(t *testing.T) {
	// Table 3's measured points must be reproduced exactly.
	cases := []struct {
		th  Throttle
		lat float64
		bw  float64
	}{
		{Throttle{1, 1}, 60, 24},
		{Throttle{2, 2}, 128, 12.4},
		{Throttle{5, 5}, 354, 5.1},
		{Throttle{5, 12}, 960, 1.38},
	}
	for _, c := range cases {
		if got := c.th.LatencyNs(); got != c.lat {
			t.Errorf("%v latency = %v, want %v", c.th, got, c.lat)
		}
		if got := c.th.BandwidthGBs(); got != c.bw {
			t.Errorf("%v bandwidth = %v, want %v", c.th, got, c.bw)
		}
	}
}

func TestThrottleDerivedPoints(t *testing.T) {
	// The sweep uses L:5,B:7 and L:5,B:9 which are not in Table 3; they
	// must interpolate sensibly between the measured neighbours.
	b7 := Throttle{5, 7}.BandwidthGBs()
	b9 := Throttle{5, 9}.BandwidthGBs()
	if !(b7 > b9) {
		t.Fatalf("B:7 (%v) must exceed B:9 (%v)", b7, b9)
	}
	if !(b7 < 5.1 && b9 > 1.38) {
		t.Fatalf("derived points outside measured bracket: b7=%v b9=%v", b7, b9)
	}
	if lat := (Throttle{5, 9}).LatencyNs(); lat < 300 || lat > 400 {
		t.Fatalf("L:5 derived latency %v outside plausible band", lat)
	}
}

func TestThrottleStoreLatency(t *testing.T) {
	// Deep throttles emulate NVM-class asymmetric writes.
	if got := (Throttle{5, 9}).StoreLatencyNs(); got <= (Throttle{5, 9}).LatencyNs() {
		t.Fatalf("L:5 store latency %v not above load", got)
	}
	if got := (Throttle{1, 1}).StoreLatencyNs(); got != 60 {
		t.Fatalf("DRAM store latency %v, want 60", got)
	}
}

func TestThrottleString(t *testing.T) {
	if s := (Throttle{5, 12}).String(); s != "L:5,B:12" {
		t.Fatalf("String = %q", s)
	}
}

func TestRemoteNUMASpec(t *testing.T) {
	// Remote NUMA must be strictly milder than any SlowMem sweep point:
	// that is the basis of Observation 2.
	if RemoteNUMA.LoadLatencyNs >= (Throttle{2, 2}).LatencyNs() {
		t.Fatal("remote NUMA latency should be below mildest throttle")
	}
	if RemoteNUMA.BandwidthGBs <= (Throttle{2, 2}).BandwidthGBs() {
		t.Fatal("remote NUMA bandwidth should exceed mildest throttle")
	}
}

func TestTierBasics(t *testing.T) {
	if FastMem.Other() != SlowMem || SlowMem.Other() != FastMem {
		t.Fatal("Other() broken")
	}
	if !FastMem.Valid() || Tier(9).Valid() {
		t.Fatal("Valid() broken")
	}
	if FastMem.String() != "FastMem" || SlowMem.String() != "SlowMem" {
		t.Fatal("tier names wrong")
	}
	if Tier(9).String() == "" {
		t.Fatal("unknown tier should render")
	}
}

func newTestMachine(fast, slow uint64) *Machine {
	return NewMachine(fast, slow, FastTierSpec(), SlowTierSpec())
}

func TestMachineAllocFree(t *testing.T) {
	m := newTestMachine(16, 64)
	fs, err := m.Alloc(FastMem, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 10 {
		t.Fatalf("got %d frames", len(fs))
	}
	for _, f := range fs {
		if m.TierOf(f) != FastMem {
			t.Fatalf("frame %d in wrong tier", f)
		}
		if m.OwnerOf(f) != 1 {
			t.Fatalf("frame %d owner %d", f, m.OwnerOf(f))
		}
	}
	if m.FreeFrames(FastMem) != 6 || m.AllocatedFrames(FastMem) != 10 {
		t.Fatalf("accounting wrong: free=%d alloc=%d", m.FreeFrames(FastMem), m.AllocatedFrames(FastMem))
	}
	m.Free(fs, 1)
	if m.FreeFrames(FastMem) != 16 {
		t.Fatalf("free count %d after release", m.FreeFrames(FastMem))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMachineExhaustion(t *testing.T) {
	m := newTestMachine(4, 4)
	if _, err := m.Alloc(FastMem, 5, 1); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("want ErrNoFrames, got %v", err)
	}
	// All-or-nothing: the failed alloc must not consume frames.
	if m.FreeFrames(FastMem) != 4 {
		t.Fatalf("failed alloc leaked frames: %d free", m.FreeFrames(FastMem))
	}
	if _, err := m.Alloc(FastMem, 4, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocOne(FastMem, 2); !errors.Is(err, ErrNoFrames) {
		t.Fatal("expected exhaustion")
	}
}

func TestMachineTierBoundary(t *testing.T) {
	m := newTestMachine(8, 8)
	if m.TierOf(7) != FastMem || m.TierOf(8) != SlowMem {
		t.Fatal("tier boundary wrong")
	}
	if !m.Contains(15) || m.Contains(16) {
		t.Fatal("Contains wrong")
	}
}

func TestMachineDoubleFreePanics(t *testing.T) {
	m := newTestMachine(4, 4)
	fs, _ := m.Alloc(FastMem, 1, 1)
	m.Free(fs, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free(fs, 1)
}

func TestMachineWrongOwnerFreePanics(t *testing.T) {
	m := newTestMachine(4, 4)
	fs, _ := m.Alloc(FastMem, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-owner free did not panic")
		}
	}()
	m.Free(fs, 2)
}

func TestMachineRejectsOwnerZero(t *testing.T) {
	m := newTestMachine(4, 4)
	if _, err := m.Alloc(FastMem, 1, OwnerFree); err == nil {
		t.Fatal("owner 0 allocation must fail")
	}
}

func TestMachineInvariantProperty(t *testing.T) {
	// Property: any interleaving of allocs and frees preserves the frame
	// accounting invariants.
	f := func(seed uint64, ops []uint8) bool {
		m := newTestMachine(32, 32)
		held := map[Owner][]MFN{}
		owner := Owner(1)
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // alloc 1-4 frames on a tier
				tier := Tier(op % 2)
				n := uint64(op%4) + 1
				fs, err := m.Alloc(tier, n, owner)
				if err == nil {
					held[owner] = append(held[owner], fs...)
				}
			case 2: // free everything held by this owner
				if fs := held[owner]; len(fs) > 0 {
					m.Free(fs, owner)
					held[owner] = nil
				}
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLLCMPKIScale(t *testing.T) {
	llc := DefaultLLC()
	// Same cache as reference: scale 1 regardless of WSS.
	if s := llc.MPKIScale(1 << 30); s != 1 {
		t.Fatalf("reference scale = %v, want 1", s)
	}
	big := EmulatorLLC()
	// Larger cache reduces misses for a cache-exceeding working set.
	s := big.MPKIScale(1 << 30)
	if !(s > 0 && s < 1) {
		t.Fatalf("48MB scale = %v, want in (0,1)", s)
	}
	// Working set inside both caches: only compulsory misses remain; the
	// ratio collapses to 1 (cold/cold).
	if s := big.MPKIScale(8 << 20); s != 1 {
		t.Fatalf("cache-resident scale = %v, want 1", s)
	}
}

func TestLLCMonotoneInWSS(t *testing.T) {
	llc := LLC{SizeBytes: 16 << 20, ColdFraction: 0.15, Theta: 0.3}
	prev := -1.0
	for _, wss := range []int64{1 << 20, 32 << 20, 256 << 20, 4 << 30} {
		f := llc.missFactor(wss)
		if f < prev {
			t.Fatalf("miss factor not monotone at wss=%d: %v < %v", wss, f, prev)
		}
		if f < llc.ColdFraction || f > 1 {
			t.Fatalf("miss factor %v outside [cold,1]", f)
		}
		prev = f
	}
	if f := llc.missFactor(0); f != llc.ColdFraction {
		t.Fatalf("zero wss factor = %v", f)
	}
}

func TestEngineChargeLatencyVsBandwidth(t *testing.T) {
	m := newTestMachine(1024, 1024)
	e := NewAnalytic(m)

	// Pointer chase: low MLP, line-sized traffic: latency bound.
	chase := EpochCharge{
		Instr: 1_000_000, Threads: 1, MLP: 1, BytesPerMiss: 64,
		StoreVisibleFrac: 0.3,
	}
	chase.Traffic[SlowMem] = TierTraffic{LoadMisses: 100_000}
	c1 := e.Charge(chase)
	if c1.BWBound[SlowMem] {
		t.Fatal("pointer chase should be latency bound")
	}

	// Streaming: high MLP, amplified traffic: bandwidth bound.
	stream := chase
	stream.MLP = 16
	stream.BytesPerMiss = 256
	c2 := e.Charge(stream)
	if !c2.BWBound[SlowMem] {
		t.Fatal("streaming should be bandwidth bound")
	}
	if c2.MemTime[SlowMem] >= c1.MemTime[SlowMem] {
		t.Fatal("MLP should have reduced stall time")
	}
}

func TestEngineFastVsSlow(t *testing.T) {
	m := newTestMachine(1024, 1024)
	e := NewAnalytic(m)
	ch := EpochCharge{Instr: 1_000_000, Threads: 4, MLP: 4, BytesPerMiss: 64, StoreVisibleFrac: 0.3}
	ch.Traffic[FastMem] = TierTraffic{LoadMisses: 200_000}
	fast := e.Charge(ch)

	ch2 := ch
	ch2.Traffic[FastMem] = TierTraffic{}
	ch2.Traffic[SlowMem] = TierTraffic{LoadMisses: 200_000}
	slow := e.Charge(ch2)

	if slow.Total <= fast.Total {
		t.Fatalf("slow tier (%v) not slower than fast (%v)", slow.Total, fast.Total)
	}
	// The slowdown must reflect the ~5x latency gap within loose bounds.
	ratio := float64(slow.MemTime[SlowMem]) / float64(fast.MemTime[FastMem])
	if ratio < 2 || ratio > 20 {
		t.Fatalf("tier stall ratio %v outside plausible band", ratio)
	}
}

func TestEngineStoresCostMoreOnSlow(t *testing.T) {
	m := newTestMachine(64, 64)
	e := NewAnalytic(m)
	loads := EpochCharge{Instr: 1000, Threads: 1, MLP: 1, StoreVisibleFrac: 1}
	loads.Traffic[SlowMem] = TierTraffic{LoadMisses: 10_000}
	stores := EpochCharge{Instr: 1000, Threads: 1, MLP: 1, StoreVisibleFrac: 1}
	stores.Traffic[SlowMem] = TierTraffic{StoreMisses: 10_000}
	cl := e.Charge(loads)
	cs := e.Charge(stores)
	if cs.MemTime[SlowMem] <= cl.MemTime[SlowMem] {
		t.Fatal("SlowMem stores should cost more than loads (NVM asymmetry)")
	}
}

func TestEngineDefensiveClamps(t *testing.T) {
	m := newTestMachine(64, 64)
	e := NewAnalytic(m)
	ch := EpochCharge{Instr: 1000, Threads: 0, MLP: 0, BytesPerMiss: 1, StoreVisibleFrac: 2}
	ch.Traffic[FastMem] = TierTraffic{LoadMisses: 10, StoreMisses: 10}
	c := e.Charge(ch)
	if c.Total <= 0 {
		t.Fatal("clamped charge must still be positive")
	}
	if c.BytesOut[FastMem] != 20*MinBytesPerMiss {
		t.Fatalf("BytesPerMiss clamp failed: %d", c.BytesOut[FastMem])
	}
}

func TestEngineThreadsCappedAtCores(t *testing.T) {
	m := newTestMachine(64, 64)
	e := NewAnalytic(m, WithCPU(CPU{FreqGHz: 1, IPC: 1, Cores: 4}))
	a := EpochCharge{Instr: 4_000_000, Threads: 4}
	b := EpochCharge{Instr: 4_000_000, Threads: 400}
	if e.Charge(a).CPUTime != e.Charge(b).CPUTime {
		t.Fatal("threads beyond core count must not speed up CPU time")
	}
}

func TestEngineOSTimeAdds(t *testing.T) {
	m := newTestMachine(64, 64)
	e := NewAnalytic(m)
	ch := EpochCharge{Instr: 1000, Threads: 1, OSTime: 12345}
	c := e.Charge(ch)
	if c.Total != c.CPUTime+12345 {
		t.Fatalf("OS time not added: total=%v cpu=%v", c.Total, c.CPUTime)
	}
}

func TestEngineAsymmetricStoreVisibility(t *testing.T) {
	// On an NVM-class tier (store latency > load latency) write-back
	// buffering breaks down: the visible store fraction doubles.
	m := newTestMachine(64, 64)
	e := NewAnalytic(m)
	symmetric := EpochCharge{Instr: 1000, Threads: 1, MLP: 1, StoreVisibleFrac: 0.35}
	symmetric.Traffic[FastMem] = TierTraffic{StoreMisses: 1_000_000}
	asymmetric := EpochCharge{Instr: 1000, Threads: 1, MLP: 1, StoreVisibleFrac: 0.35}
	asymmetric.Traffic[SlowMem] = TierTraffic{StoreMisses: 1_000_000}

	cs := e.Charge(symmetric)
	ca := e.Charge(asymmetric)
	fastSpec, slowSpec := m.Spec(FastMem), m.Spec(SlowMem)
	// Fast tier: stores at 0.35 visibility.
	wantFast := 1e6 * fastSpec.StoreLatencyNs * 0.35
	gotFast := float64(cs.MemTime[FastMem]) - 1e6*8/fastSpec.BandwidthGBs
	if diff := gotFast - wantFast; diff > 1 || diff < -1 {
		t.Fatalf("fast store latency component = %v, want %v", gotFast, wantFast)
	}
	// Slow (asymmetric) tier: visibility doubled to 0.7.
	wantSlow := 1e6 * slowSpec.StoreLatencyNs * 0.7
	gotSlow := float64(ca.MemTime[SlowMem]) - 1e6*8/slowSpec.BandwidthGBs
	if diff := gotSlow - wantSlow; diff > 1 || diff < -1 {
		t.Fatalf("slow store latency component = %v, want %v", gotSlow, wantSlow)
	}
}
