package memsim

import "math"

// LLC models the last-level cache as a miss-ratio filter. The simulator
// does not replay individual cache lines; instead each workload declares
// its memory intensity as MPKI measured on the paper's reference platform
// (Table 4, 16 MB LLC), and the LLC model rescales that MPKI when the
// cache size or the working set changes.
//
// The rescaling uses a power-law miss curve, the standard analytic fit
// for LRU caches over skewed reference streams: the miss ratio of a
// working set W on a cache C falls as (C/W)^Theta. ColdFraction bounds
// the reducible portion from below — compulsory (first-touch, streaming)
// misses do not disappear no matter how large the cache is.
type LLC struct {
	SizeBytes int64
	// ColdFraction is the fraction of misses that are compulsory.
	ColdFraction float64
	// Theta is the power-law exponent of the miss curve. Values near 0.3
	// approximate the square-root rule observed for datacenter workloads.
	Theta float64
}

// ReferenceLLCBytes is the LLC size of the platform Table 4's MPKI values
// were measured on (16 MB Xeon X5560).
const ReferenceLLCBytes = 16 << 20

// EmulatorLLCBytes is the LLC size of the Intel NVM emulator platform
// used for Figure 2 (48 MB Xeon E5-4620 v2).
const EmulatorLLCBytes = 48 << 20

// DefaultLLC returns the reference-platform cache model.
func DefaultLLC() LLC {
	return LLC{SizeBytes: ReferenceLLCBytes, ColdFraction: 0.15, Theta: 0.3}
}

// EmulatorLLC returns the Intel-emulator-platform cache model.
func EmulatorLLC() LLC {
	l := DefaultLLC()
	l.SizeBytes = EmulatorLLCBytes
	return l
}

// missFactor is the relative miss ratio of working set wssBytes on a
// cache of sizeBytes, in [ColdFraction, 1].
func (c LLC) missFactor(wssBytes int64) float64 {
	if wssBytes <= 0 {
		return c.ColdFraction
	}
	if c.SizeBytes >= wssBytes {
		return c.ColdFraction
	}
	ratio := float64(c.SizeBytes) / float64(wssBytes)
	hit := math.Pow(ratio, c.Theta)
	if hit > 1 {
		hit = 1
	}
	return c.ColdFraction + (1-c.ColdFraction)*(1-hit)
}

// MPKIScale converts a workload's reference MPKI (measured with working
// set wssBytes on the reference LLC) into the effective MPKI on this
// cache. Larger caches reduce MPKI; working sets below the cache size
// collapse to compulsory misses only.
func (c LLC) MPKIScale(wssBytes int64) float64 {
	ref := LLC{SizeBytes: ReferenceLLCBytes, ColdFraction: c.ColdFraction, Theta: c.Theta}
	denom := ref.missFactor(wssBytes)
	if denom == 0 {
		return 1
	}
	return c.missFactor(wssBytes) / denom
}
