package memsim

import "fmt"

// Tier identifies one of the two generic memory types the paper manages.
// The design deliberately abstracts concrete technologies into a fast,
// capacity-limited tier and a slow, large tier (Section 2.1).
type Tier int

const (
	// FastMem is the high-bandwidth, low-latency, limited-capacity tier.
	FastMem Tier = iota
	// SlowMem is the low-bandwidth, high-latency, large-capacity tier.
	SlowMem
	// NumTiers is the number of managed tiers.
	NumTiers
)

// String returns the paper's name for the tier.
func (t Tier) String() string {
	switch t {
	case FastMem:
		return "FastMem"
	case SlowMem:
		return "SlowMem"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Valid reports whether t names a managed tier.
func (t Tier) Valid() bool { return t >= 0 && t < NumTiers }

// Other returns the opposite tier.
func (t Tier) Other() Tier {
	if t == FastMem {
		return SlowMem
	}
	return FastMem
}

// TierSpec carries the performance parameters of one tier.
type TierSpec struct {
	LoadLatencyNs  float64
	StoreLatencyNs float64
	BandwidthGBs   float64
}

// FastTierSpec is the default FastMem: unthrottled DRAM (L:1, B:1).
func FastTierSpec() TierSpec { return Throttle{1, 1}.Spec() }

// SlowTierSpec is the paper's default SlowMem for the main evaluation:
// bandwidth reduced ~9x and latency increased ~5x (Section 5.1).
func SlowTierSpec() TierSpec { return Throttle{5, 9}.Spec() }

// MFN is a machine frame number: an index into host physical memory, in
// units of PageSize. The machine address space is laid out with all
// FastMem frames first, then all SlowMem frames, so tier lookup is a
// single comparison.
type MFN uint64

// NilMFN marks "no frame".
const NilMFN = MFN(^uint64(0))
