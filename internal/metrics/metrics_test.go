package metrics

import (
	"strings"
	"testing"
)

func TestGainPercent(t *testing.T) {
	cases := []struct {
		base, v, want float64
	}{
		{100, 50, 100}, // twice as fast = 100% gain
		{100, 100, 0},
		{100, 200, -50},
	}
	for _, c := range cases {
		if got := GainPercent(c.base, c.v); got != c.want {
			t.Errorf("GainPercent(%v,%v) = %v, want %v", c.base, c.v, got, c.want)
		}
	}
	if GainPercent(100, 0) != 0 {
		t.Error("zero time should not divide")
	}
}

func TestSlowdown(t *testing.T) {
	if got := Slowdown(10, 25); got != 2.5 {
		t.Errorf("Slowdown = %v", got)
	}
	if Slowdown(0, 5) != 0 {
		t.Error("zero baseline should not divide")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{123.456, "123.46"},
		{1.5, "1.50"},
		{0, "0.00"},
		{0.005, "0.01"},
		{-1.005, "-1.00"}, // %.2f banker-ish rounding is unchanged
		// Sub-centi values keep two significant digits instead of
		// collapsing to 0.00.
		{0.00312, "0.0031"},
		{0.0001234, "0.00012"},
		{-0.00099, "-0.00099"},
		{4.2e-7, "4.2e-07"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAddRowSmallFloats(t *testing.T) {
	tb := NewTable("S", "name", "ratio")
	tb.AddRow("tiny", 0.00312)
	tb.AddRow("zero", 0.0)
	if tb.Cell(0, 1) != "0.0031" {
		t.Errorf("small float cell = %q, want %q", tb.Cell(0, 1), "0.0031")
	}
	if tb.Cell(1, 1) != "0.00" {
		t.Errorf("zero cell = %q, want %q", tb.Cell(1, 1), "0.00")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "App", "Gain")
	tb.Caption = "caption line"
	tb.AddRow("GraphChi", 123.456)
	tb.AddRow("LevelDB", "2x")
	if tb.Rows() != 2 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	if tb.Cell(0, 1) != "123.46" {
		t.Errorf("float cell = %q", tb.Cell(0, 1))
	}
	if tb.Cell(1, 1) != "2x" {
		t.Errorf("string cell = %q", tb.Cell(1, 1))
	}
	out := tb.String()
	for _, want := range []string{"Demo", "caption line", "App", "Gain", "GraphChi", "123.46"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns align: header and data lines have the value at consistent
	// offsets; sanity-check that every line is terminated.
	if !strings.HasSuffix(out, "\n") {
		t.Error("missing trailing newline")
	}
}

func TestTableWideCells(t *testing.T) {
	tb := NewTable("W", "A", "B")
	tb.AddRow("averyveryverylongvalue", 1)
	out := tb.String()
	if !strings.Contains(out, "averyveryverylongvalue") {
		t.Error("long cell truncated")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("T", "A", "B")
	tb.Caption = "cap"
	tb.AddRow("x", 1.5)
	var b strings.Builder
	tb.RenderMarkdown(&b)
	out := b.String()
	for _, want := range []string{"**T**", "_cap_", "| A | B |", "| --- | --- |", "| x | 1.50 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("T", "App", "Gain")
	tb.AddRow(`quo"ted`, "a,b")
	var b strings.Builder
	tb.RenderCSV(&b)
	out := b.String()
	if !strings.HasPrefix(out, "App,Gain\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, `"quo""ted","a,b"`) {
		t.Fatalf("escaping wrong: %q", out)
	}
}
