// Package metrics provides the small reporting toolkit the experiment
// harness uses: derived ratios (gain %, slowdown factor) and fixed-width
// text tables that render each paper figure/table as rows and series.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// GainPercent reports how much faster value is than baseline, in percent
// (the paper's "gains (%) relative to SlowMem-only": 100% gain = 2x).
// Times: smaller is better, so gain = (baseline/value - 1) * 100.
func GainPercent(baselineTime, time float64) float64 {
	if time == 0 {
		return 0
	}
	return (baselineTime/time - 1) * 100
}

// Slowdown reports value/baseline for times (>1 = slower), the paper's
// "slowdown factor relative to FastMem-only".
func Slowdown(baselineTime, time float64) float64 {
	if baselineTime == 0 {
		return 0
	}
	return time / baselineTime
}

// Table renders aligned columns of figure/table data.
type Table struct {
	Title   string
	Caption string
	header  []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends one formatted row; values are Sprint'ed with %v except
// float64, which renders through FormatFloat.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// FormatFloat renders a table value: two decimals for ordinary
// magnitudes, but two significant digits for nonzero values whose
// magnitude is below 0.005 — an unconditional %.2f would collapse
// sub-centisecond latencies and small ratios to "0.00".
func FormatFloat(v float64) string {
	if v != 0 && v < 0.005 && v > -0.005 {
		return fmt.Sprintf("%.2g", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the rendered cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "%s\n", t.Caption)
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for i, h := range t.header {
		fmt.Fprintf(w, "%-*s", widths[i]+2, h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// RenderMarkdown writes the table as GitHub-flavoured markdown, for
// dropping experiment results straight into documentation.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "**%s**\n", t.Title)
	if t.Caption != "" {
		fmt.Fprintf(w, "_%s_\n", t.Caption)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.header, " | "))
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, r := range t.rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
}

// RenderCSV writes the table as CSV (header row first), for plotting
// pipelines. Cells containing commas or quotes are quoted.
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
}
