// Package fleet is the simulated-datacenter layer: a Cluster of N
// hosts — each a full core.System with its own machine, VMM, and VM
// population — advanced in lock-step rounds through the runner pool,
// with cross-host VM live migration (core.EmigrateVM/ImmigrateVM),
// pluggable placement policies, and fleet-wide metric rollups through
// the obs snapshot algebra.
//
// A fleet run is scripted: a JSON Script names the host shape, the
// round structure, the placement policy, and a timed event list (VM
// boots, shutdowns, demand surges, host failures with mass
// evacuation). Determinism is a hard contract, exactly as for
// scenarios: the result is a pure function of (script, seed) and is
// byte-identical regardless of runner worker count — hosts step in
// parallel but share no state, and every cross-host decision (event
// application, placement, migration) happens serially between rounds.
package fleet

import (
	"embed"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"sort"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// Event kinds accepted by Script.Events.
const (
	// KindBoot places and boots Boot.Count new VMs.
	KindBoot = "boot"
	// KindShutdown retires VMs: an explicit VM id, or the Count
	// lowest-id running VMs.
	KindShutdown = "shutdown"
	// KindSurge multiplies VM demand by Factor for Duration rounds
	// (0 = rest of the run): an explicit VM id, or the Count lowest-id
	// running VMs.
	KindSurge = "surge"
	// KindHostFail fails host Host: the host stops stepping forever and
	// its running VMs are mass-evacuated through live migration to
	// wherever the placement policy finds room; VMs that fit nowhere
	// are recorded as lost.
	KindHostFail = "host-fail"
)

// HostDesc is the (uniform) per-host machine shape.
type HostDesc struct {
	FastFrames uint64 `json:"fast_frames"`
	SlowFrames uint64 `json:"slow_frames"`
	// Share selects the VMM share policy on every host (default
	// static).
	Share string `json:"share,omitempty"`
	// Backend names the machine-model backend (default coarse — a
	// thousand hosts under the analytic model would dominate the run
	// with pricing, not management).
	Backend string `json:"backend,omitempty"`
}

// VMGroup declares Count identical VMs. Fleet VM ids are implicit and
// sequential: groups are numbered 1..N in declaration order — the
// round-0 groups in Script.VMs first, then each boot event's group in
// script order — so event targets reference stable ids.
type VMGroup struct {
	App  string `json:"app"`
	Mode string `json:"mode"`
	// Count is the number of VMs in the group (default 1).
	Count int `json:"count,omitempty"`
	// FastPages / SlowPages bound each VM's per-tier span (scaled
	// pages).
	FastPages uint64 `json:"fast_pages"`
	SlowPages uint64 `json:"slow_pages"`
}

func (g *VMGroup) count() int {
	if g.Count <= 0 {
		return 1
	}
	return g.Count
}

// Event is one scripted fleet action, applied at the start of round At
// before any host steps.
type Event struct {
	At   int    `json:"at"`
	Kind string `json:"kind"`
	// Boot describes the VMs a boot event adds.
	Boot *VMGroup `json:"boot,omitempty"`
	// VM targets one VM by id (shutdown, surge).
	VM int32 `json:"vm,omitempty"`
	// Count instead targets the Count lowest-id running VMs (shutdown,
	// surge).
	Count int `json:"count,omitempty"`
	// Host targets one host by index (host-fail).
	Host int `json:"host,omitempty"`
	// Factor is the surge demand multiplier (default 2).
	Factor int `json:"factor,omitempty"`
	// Duration is the surge window in rounds; 0 means the rest of the
	// run.
	Duration int `json:"duration,omitempty"`
}

// Script is a JSON-loadable fleet run description.
type Script struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	// Hosts is the cluster size.
	Hosts int `json:"hosts"`
	// Rounds is the number of lock-step rounds; each round applies the
	// due events, rebalances, migrates, then steps every live host
	// RoundEpochs epochs in parallel.
	Rounds int `json:"rounds"`
	// RoundEpochs is the epochs per host per round.
	RoundEpochs int `json:"round_epochs"`
	// Scale is the workload capacity divisor shared by every VM
	// (default workload.DefaultScale). Large fleets raise it so each
	// VM's page population shrinks while every capacity ratio is
	// preserved.
	Scale uint64 `json:"scale,omitempty"`
	// Host is the uniform host machine shape.
	Host HostDesc `json:"host"`
	// Placement names the placement policy (default first-fit).
	Placement string `json:"placement,omitempty"`
	// VMs are the round-0 boot groups.
	VMs []VMGroup `json:"vms,omitempty"`
	// Events is the timed script; rounds fire in order, same-round
	// events in script order.
	Events []Event `json:"events,omitempty"`
}

func (sc *Script) share() string {
	if sc.Host.Share == "" {
		return string(core.ShareStatic)
	}
	return sc.Host.Share
}

func (sc *Script) backend() string {
	if sc.Host.Backend == "" {
		return memsim.BackendCoarse
	}
	return sc.Host.Backend
}

func (sc *Script) placement() string {
	if sc.Placement == "" {
		return PlacementFirstFit
	}
	return sc.Placement
}

func (sc *Script) scale() uint64 {
	if sc.Scale == 0 {
		return workload.DefaultScale
	}
	return sc.Scale
}

// groups lists every VM group in id-assignment order: round-0 groups,
// then boot events in script order.
func (sc *Script) groups() []*VMGroup {
	var gs []*VMGroup
	for i := range sc.VMs {
		gs = append(gs, &sc.VMs[i])
	}
	for i := range sc.Events {
		if sc.Events[i].Kind == KindBoot && sc.Events[i].Boot != nil {
			gs = append(gs, sc.Events[i].Boot)
		}
	}
	return gs
}

// TotalVMs counts the VMs the script ever boots.
func (sc *Script) TotalVMs() int {
	n := 0
	for _, g := range sc.groups() {
		n += g.count()
	}
	return n
}

func (sc *Script) validateGroup(g *VMGroup) error {
	if _, err := policy.ByName(g.Mode); err != nil {
		return err
	}
	if _, err := workload.ByName(g.App, workload.Config{Seed: 1, Scale: sc.scale()}); err != nil {
		return err
	}
	if g.FastPages+g.SlowPages == 0 {
		return fmt.Errorf("VM group %q/%q has a zero-page span", g.App, g.Mode)
	}
	if g.FastPages > sc.Host.FastFrames || g.SlowPages > sc.Host.SlowFrames {
		return fmt.Errorf("VM group %q span (%d fast, %d slow) exceeds the host shape (%d fast, %d slow)",
			g.App, g.FastPages, g.SlowPages, sc.Host.FastFrames, sc.Host.SlowFrames)
	}
	if g.Count < 0 {
		return fmt.Errorf("VM group %q has negative count %d", g.App, g.Count)
	}
	return nil
}

// Validate checks the script for shape errors: unknown names, spans
// that cannot fit any host, events out of round range or with missing
// targets.
func (sc *Script) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("fleet script %q: %s", sc.Name, fmt.Sprintf(format, args...))
	}
	if sc.Name == "" {
		return errors.New("fleet script: missing name")
	}
	if sc.Hosts < 1 {
		return fail("needs at least 1 host, have %d", sc.Hosts)
	}
	if sc.Rounds < 1 || sc.RoundEpochs < 1 {
		return fail("needs rounds >= 1 and round_epochs >= 1 (have %d, %d)", sc.Rounds, sc.RoundEpochs)
	}
	if sc.Host.FastFrames == 0 || sc.Host.SlowFrames == 0 {
		return fail("host shape needs fast_frames and slow_frames")
	}
	switch core.ShareKind(sc.share()) {
	case core.ShareStatic, core.ShareMaxMin, core.ShareDRF:
	default:
		return fail("unknown share policy %q", sc.Host.Share)
	}
	if _, err := memsim.BuilderByName(sc.backend()); err != nil {
		return fail("%v", err)
	}
	if _, err := PlacementByName(sc.placement()); err != nil {
		return fail("%v", err)
	}
	for _, g := range sc.groups() {
		if err := sc.validateGroup(g); err != nil {
			return fail("%v", err)
		}
	}
	maxID := int32(sc.TotalVMs())
	for i := range sc.Events {
		e := &sc.Events[i]
		if e.At < 0 || e.At >= sc.Rounds {
			return fail("event %d fires at round %d, outside [0, %d)", i, e.At, sc.Rounds)
		}
		switch e.Kind {
		case KindBoot:
			if e.Boot == nil {
				return fail("boot event %d has no VM group", i)
			}
		case KindShutdown, KindSurge:
			if (e.VM > 0) == (e.Count > 0) {
				return fail("%s event %d needs exactly one of vm or count", e.Kind, i)
			}
			if e.VM > maxID {
				return fail("%s event %d targets VM %d; the script only boots %d", e.Kind, i, e.VM, maxID)
			}
			if e.Kind == KindSurge && (e.Factor < 0 || e.Duration < 0) {
				return fail("surge event %d has negative factor or duration", i)
			}
		case KindHostFail:
			if e.Host < 0 || e.Host >= sc.Hosts {
				return fail("host-fail event %d targets host %d of %d", i, e.Host, sc.Hosts)
			}
		default:
			return fail("event %d has unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

//go:embed scripts/*.json
var bundledFS embed.FS

// Bundled lists the embedded fleet script file names.
func Bundled() []string {
	entries, err := bundledFS.ReadDir("scripts")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

// Parse decodes and validates a JSON fleet script.
func Parse(data []byte) (*Script, error) {
	var sc Script
	if err := json.Unmarshal(data, &sc); err != nil {
		return nil, fmt.Errorf("fleet: parse: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// LoadBundled loads an embedded fleet script by file name (e.g.
// "fleet-churn.json").
func LoadBundled(name string) (*Script, error) {
	data, err := bundledFS.ReadFile(path.Join("scripts", name))
	if err != nil {
		return nil, fmt.Errorf("fleet: no bundled script %q (have %v)", name, Bundled())
	}
	return Parse(data)
}

// LoadFile loads a fleet script from disk; a missing path falls back
// to the bundled script of the same base name, so the shipped scripts
// resolve from any directory.
func LoadFile(p string) (*Script, error) {
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			if sc, berr := LoadBundled(path.Base(p)); berr == nil {
				return sc, nil
			}
		}
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return Parse(data)
}
