package fleet

import (
	"fmt"

	"heteroos/internal/guestos"
	"heteroos/internal/snapshot"
	"heteroos/internal/workload"
)

// surgeWorkload wraps every fleet VM's workload so a surge window can
// multiply its demand, exactly as the scenario layer does: while
// active, Step runs the inner workload factor times per epoch.
//
// The wrapper also implements workload.Snapshotter, which is what
// makes fleet VMs migratable: EmigrateVM captures the wrapper's window
// state plus the inner workload's cursor, and the destination host's
// freshly built wrapper restores both — a surging VM keeps surging
// mid-flight.
type surgeWorkload struct {
	inner  workload.Workload
	factor int
	active bool
	// done records whether the inner workload ran to completion, which
	// distinguishes "finished" from "shut down mid-run" in the result.
	done bool
}

func (w *surgeWorkload) Profile() workload.Profile { return w.inner.Profile() }

func (w *surgeWorkload) Init(os *guestos.OS) error { return w.inner.Init(os) }

func (w *surgeWorkload) Step(os *guestos.OS) (uint64, bool) {
	steps := 1
	if w.active && w.factor > 1 {
		steps = w.factor
	}
	var instr uint64
	var done bool
	for i := 0; i < steps && !done; i++ {
		var n uint64
		n, done = w.inner.Step(os)
		instr += n
	}
	if done {
		w.done = true
	}
	return instr, done
}

// SnapshotState implements workload.Snapshotter.
func (w *surgeWorkload) SnapshotState(e *snapshot.Encoder) {
	e.Bool(w.active)
	e.Int(w.factor)
	e.Bool(w.done)
	ws, ok := w.inner.(workload.Snapshotter)
	e.Bool(ok)
	if ok {
		ws.SnapshotState(e)
	}
}

// RestoreState implements workload.Snapshotter.
func (w *surgeWorkload) RestoreState(d *snapshot.Decoder, os *guestos.OS) error {
	w.active = d.Bool()
	w.factor = d.Int()
	w.done = d.Bool()
	if !d.Bool() {
		return fmt.Errorf("fleet: migrated workload %T did not support snapshotting", w.inner)
	}
	ws, ok := w.inner.(workload.Snapshotter)
	if !ok {
		return fmt.Errorf("fleet: workload %T cannot restore migrated state", w.inner)
	}
	return ws.RestoreState(d, os)
}
