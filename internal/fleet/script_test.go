package fleet

import (
	"strings"
	"testing"
)

// validScript returns a minimal script that passes Validate; each case
// mutates one field to provoke one rejection.
func validScript() *Script {
	return &Script{
		Name: "v", Seed: 1, Hosts: 2, Rounds: 4, RoundEpochs: 2,
		Host: HostDesc{FastFrames: 8192, SlowFrames: 32768},
		VMs: []VMGroup{
			{App: "memlat", Mode: "HeteroOS-coordinated", FastPages: 4096, SlowPages: 16384},
		},
		Events: []Event{{At: 1, Kind: KindSurge, VM: 1, Factor: 2}},
	}
}

func TestScriptValidateAcceptsDefaults(t *testing.T) {
	sc := validScript()
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid script rejected: %v", err)
	}
	if sc.share() != "static" || sc.backend() != "coarse" || sc.placement() != PlacementFirstFit {
		t.Errorf("defaults: share=%q backend=%q placement=%q", sc.share(), sc.backend(), sc.placement())
	}
	if sc.TotalVMs() != 1 {
		t.Errorf("TotalVMs = %d, want 1", sc.TotalVMs())
	}
}

func TestScriptValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Script)
		want string
	}{
		{"no name", func(sc *Script) { sc.Name = "" }, "missing name"},
		{"no hosts", func(sc *Script) { sc.Hosts = 0 }, "at least 1 host"},
		{"no rounds", func(sc *Script) { sc.Rounds = 0 }, "rounds >= 1"},
		{"no host shape", func(sc *Script) { sc.Host.FastFrames = 0 }, "host shape"},
		{"bad share", func(sc *Script) { sc.Host.Share = "equal" }, "share policy"},
		{"bad backend", func(sc *Script) { sc.Host.Backend = "exact" }, "backend"},
		{"bad placement", func(sc *Script) { sc.Placement = "spread" }, "placement policy"},
		{"bad mode", func(sc *Script) { sc.VMs[0].Mode = "nope" }, "nope"},
		{"bad app", func(sc *Script) { sc.VMs[0].App = "nope" }, "nope"},
		{"zero span", func(sc *Script) { sc.VMs[0].FastPages, sc.VMs[0].SlowPages = 0, 0 }, "zero-page span"},
		{"oversized span", func(sc *Script) { sc.VMs[0].FastPages = 9000 }, "exceeds the host shape"},
		{"negative count", func(sc *Script) { sc.VMs[0].Count = -1 }, "negative count"},
		{"event out of range", func(sc *Script) { sc.Events[0].At = 4 }, "outside"},
		{"boot without group", func(sc *Script) { sc.Events[0] = Event{At: 1, Kind: KindBoot} }, "no VM group"},
		{"surge without target", func(sc *Script) { sc.Events[0].VM = 0 }, "exactly one of vm or count"},
		{"surge with both targets", func(sc *Script) { sc.Events[0].Count = 2 }, "exactly one of vm or count"},
		{"surge of unbooted vm", func(sc *Script) { sc.Events[0].VM = 9 }, "only boots 1"},
		{"negative factor", func(sc *Script) { sc.Events[0].Factor = -1 }, "negative factor"},
		{"host-fail out of range", func(sc *Script) { sc.Events[0] = Event{At: 1, Kind: KindHostFail, Host: 2} }, "host-fail"},
		{"unknown kind", func(sc *Script) { sc.Events[0].Kind = "reboot" }, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := validScript()
			tc.mut(sc)
			err := sc.Validate()
			if err == nil {
				t.Fatal("Validate accepted a bad script")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBundledScriptsParse(t *testing.T) {
	names := Bundled()
	if len(names) < 2 {
		t.Fatalf("expected at least 2 bundled scripts, have %v", names)
	}
	for _, name := range names {
		sc, err := LoadBundled(name)
		if err != nil {
			t.Errorf("LoadBundled(%q): %v", name, err)
			continue
		}
		if sc.TotalVMs() == 0 {
			t.Errorf("%q boots no VMs", name)
		}
	}
	sc, err := LoadBundled("fleet-churn-1k.json")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Hosts != 1000 || sc.TotalVMs() != 10000 {
		t.Errorf("1k script: hosts=%d vms=%d, want 1000 hosts / 10000 VMs", sc.Hosts, sc.TotalVMs())
	}
}

func TestLoadFileFallsBackToBundled(t *testing.T) {
	sc, err := LoadFile("no/such/dir/fleet-churn.json")
	if err != nil {
		t.Fatalf("LoadFile should fall back to the bundled script: %v", err)
	}
	if sc.Name != "fleet-churn" {
		t.Errorf("loaded %q", sc.Name)
	}
	if _, err := LoadFile("definitely-missing.json"); err == nil {
		t.Error("a path matching no file and no bundled script should error")
	}
}
