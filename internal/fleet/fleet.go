package fleet

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
	"heteroos/internal/policy"
	"heteroos/internal/runner"
	"heteroos/internal/vmm"
	"heteroos/internal/workload"
)

// Options configures a fleet run.
type Options struct {
	// Workers bounds hosts stepping concurrently; <=0 means GOMAXPROCS.
	// The result is byte-identical regardless of this value.
	Workers int
	// Obs, when non-nil, attaches observability: each host gets a
	// NestedJobScope child handle, so every host's metrics land under
	// "host/<id>/..." of this handle's registry and one Snapshot (or
	// Rollup) aggregates the whole fleet. Read it only after Run
	// returns.
	Obs *obs.Obs
}

// vmState is the fleet's book-keeping for one VM across its whole
// life, including migrations between hosts.
type vmState struct {
	id                   vmm.VMID
	app, mode            string
	fastPages, slowPages uint64
	// host indexes the System currently holding the VM (and, after
	// shutdown, its final result).
	host       int
	bootRound  int
	down       bool
	downRound  int
	lost       bool
	lostRound  int
	migrations int
	wrap       *surgeWorkload
}

func (st *vmState) view() VMView {
	return VMView{ID: st.id, Host: st.host, FastPages: st.fastPages, SlowPages: st.slowPages}
}

// host is one datacenter machine: a full core.System plus the fleet's
// span-commitment books the placement policies read.
type host struct {
	id     int
	sys    *core.System
	obs    *obs.Obs
	failed bool
	// fastCommitted / slowCommitted sum resident VM spans (see
	// HostView).
	fastCommitted, slowCommitted uint64
	resident                     map[vmm.VMID]*vmState
}

func (h *host) view() HostView {
	return HostView{
		ID: h.id, Failed: h.failed,
		FastFrames: h.sys.Cfg.FastFrames, SlowFrames: h.sys.Cfg.SlowFrames,
		FastCommitted: h.fastCommitted, SlowCommitted: h.slowCommitted,
		VMs: len(h.resident),
	}
}

// action is one expanded script step; surge windows unfold into a
// start action and (for Duration > 0) a clear action.
type action struct {
	at    int
	ev    *Event
	clear bool
}

// Cluster is a running fleet: N hosts advanced in lock-step rounds.
// Build one with NewCluster, drive it with StepRound (or just use
// Run), then collect the outcome with Result.
type Cluster struct {
	sc      *Script
	opts    Options
	place   Placement
	hosts   []*host
	vms     map[vmm.VMID]*vmState
	order   []vmm.VMID
	actions []action
	// surged maps a windowed surge event to the VMs its start action
	// resolved, so the clear action unwinds exactly that set.
	surged map[*Event][]vmm.VMID

	round          int
	migrations     []MigrationRecord
	prevMigrations int
	timeline       []RoundSample
	viewBuf        []HostView
}

// hostSeed derives host id's system seed from the fleet seed: the
// fleet seed is mixed once, golden-ratio-offset per host, and mixed
// again, so sibling hosts' RNG streams are as unrelated as two
// independent seeds (see runner.Mix64).
func hostSeed(fleetSeed uint64, id int) uint64 {
	s := runner.Mix64(runner.Mix64(fleetSeed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	if s == 0 {
		s = 1
	}
	return s
}

// NewCluster validates the script, boots every host (empty), places
// and boots the round-0 VM groups, and returns the cluster positioned
// before round 0.
func NewCluster(sc *Script, opts Options) (*Cluster, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	place, err := PlacementByName(sc.placement())
	if err != nil {
		return nil, err
	}
	build, err := memsim.BuilderByName(sc.backend())
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		sc: sc, opts: opts, place: place,
		vms:    make(map[vmm.VMID]*vmState, sc.TotalVMs()),
		surged: make(map[*Event][]vmm.VMID),
	}
	for id := 0; id < sc.Hosts; id++ {
		sys, err := core.NewSystem(core.Config{
			FastFrames: sc.Host.FastFrames,
			SlowFrames: sc.Host.SlowFrames,
			Share:      core.ShareKind(sc.share()),
			// Hosts are driven by StepEpoch, not RunContext; the budget
			// only caps a runaway script.
			MaxEpochs:  sc.Rounds*sc.RoundEpochs + 1,
			AllowNoVMs: true,
			CostScale:  float64(sc.scale()),
			Backend:    build,
			Obs:        opts.Obs.NestedJobScope("host", strconv.Itoa(id)),
			Seed:       hostSeed(sc.Seed, id),
		})
		if err != nil {
			return nil, fmt.Errorf("fleet %q: host %d: %w", sc.Name, id, err)
		}
		c.hosts = append(c.hosts, &host{id: id, sys: sys, obs: sys.Cfg.Obs, resident: make(map[vmm.VMID]*vmState)})
	}
	for i := range sc.VMs {
		if err := c.bootGroup(&sc.VMs[i], 0); err != nil {
			return nil, err
		}
	}
	c.actions = expandActions(sc.Events)
	return c, nil
}

// expandActions unfolds the script into round-ordered actions; the
// sort is stable so actions sharing a round keep script order.
func expandActions(events []Event) []action {
	var out []action
	for i := range events {
		e := &events[i]
		out = append(out, action{at: e.At, ev: e})
		if e.Kind == KindSurge && e.Duration > 0 {
			out = append(out, action{at: e.At + e.Duration, ev: e, clear: true})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// vmConfig materialises a VM's core config: a fresh workload seeded
// from the fleet seed and the VM id — stable across migrations, so a
// re-built workload on the destination host restores the travelling
// cursor into an identical generator — wrapped for surge control.
func (c *Cluster) vmConfig(st *vmState) (core.VMConfig, error) {
	mode, err := policy.ByName(st.mode)
	if err != nil {
		return core.VMConfig{}, err
	}
	w, err := workload.ByName(st.app, workload.Config{
		Seed:  runner.DeriveSeed(c.sc.Seed, int(st.id)),
		Scale: c.sc.scale(),
	})
	if err != nil {
		return core.VMConfig{}, err
	}
	st.wrap = &surgeWorkload{inner: w, factor: 1}
	return core.VMConfig{
		ID: st.id, Mode: mode, Workload: st.wrap,
		FastPages: st.fastPages, SlowPages: st.slowPages,
	}, nil
}

// hostViews snapshots every host's placement view into a reused
// buffer.
func (c *Cluster) hostViews() []HostView {
	if c.viewBuf == nil {
		c.viewBuf = make([]HostView, len(c.hosts))
	}
	for i, h := range c.hosts {
		c.viewBuf[i] = h.view()
	}
	return c.viewBuf
}

// bootGroup places and boots every VM of one group.
func (c *Cluster) bootGroup(g *VMGroup, round int) error {
	for i := 0; i < g.count(); i++ {
		st := &vmState{
			id:  vmm.VMID(len(c.order) + 1),
			app: g.App, mode: g.Mode,
			fastPages: g.FastPages, slowPages: g.SlowPages,
			bootRound: round,
		}
		target := c.place.PlaceBoot(st.view(), c.hostViews())
		if target < 0 {
			return fmt.Errorf("fleet %q round %d: no host fits VM %d (%s, %d fast + %d slow)",
				c.sc.Name, round, st.id, st.app, st.fastPages, st.slowPages)
		}
		vc, err := c.vmConfig(st)
		if err != nil {
			return err
		}
		h := c.hosts[target]
		if _, err := h.sys.BootVM(vc); err != nil {
			return fmt.Errorf("fleet %q round %d: boot VM %d on host %d: %w", c.sc.Name, round, st.id, target, err)
		}
		st.host = target
		h.admit(st)
		c.vms[st.id] = st
		c.order = append(c.order, st.id)
	}
	return nil
}

func (h *host) admit(st *vmState) {
	h.fastCommitted += st.fastPages
	h.slowCommitted += st.slowPages
	h.resident[st.id] = st
}

func (h *host) release(st *vmState) {
	h.fastCommitted -= st.fastPages
	h.slowCommitted -= st.slowPages
	delete(h.resident, st.id)
}

// running reports whether the VM is still doing work somewhere: not
// shut down, not stranded, workload unfinished.
func (c *Cluster) running(st *vmState) bool {
	return !st.down && !st.lost && !st.wrap.done && !c.hosts[st.host].failed
}

// targets resolves a shutdown/surge event's VM set: the explicit id,
// or the Count lowest-id VMs satisfying eligible. Count events tolerate
// a smaller eligible set (mass churn takes what is there); explicit
// targets must exist.
func (c *Cluster) targets(e *Event, eligible func(*vmState) bool) ([]vmm.VMID, error) {
	if e.VM > 0 {
		st, ok := c.vms[vmm.VMID(e.VM)]
		if !ok {
			return nil, fmt.Errorf("%s targets VM %d before it booted", e.Kind, e.VM)
		}
		if !eligible(st) {
			return nil, fmt.Errorf("%s targets VM %d, which is not eligible (down=%v lost=%v)", e.Kind, e.VM, st.down, st.lost)
		}
		return []vmm.VMID{st.id}, nil
	}
	var ids []vmm.VMID
	for _, id := range c.order {
		if len(ids) == e.Count {
			break
		}
		if eligible(c.vms[id]) {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// apply executes one script action at the current round.
func (c *Cluster) apply(a action) error {
	e := a.ev
	switch e.Kind {
	case KindBoot:
		return c.bootGroup(e.Boot, c.round)
	case KindShutdown:
		ids, err := c.targets(e, func(st *vmState) bool {
			return !st.down && !st.lost && !c.hosts[st.host].failed
		})
		if err != nil {
			return err
		}
		for _, id := range ids {
			st := c.vms[id]
			h := c.hosts[st.host]
			if _, err := h.sys.ShutdownVM(id); err != nil {
				return err
			}
			if err := h.sys.CheckInvariants(); err != nil {
				return fmt.Errorf("host %d after shutdown of VM %d: %w", h.id, id, err)
			}
			h.release(st)
			st.down, st.downRound = true, c.round
		}
	case KindSurge:
		factor := e.Factor
		if factor == 0 {
			factor = 2
		}
		if a.clear {
			for _, id := range c.surged[e] {
				st := c.vms[id]
				st.wrap.active = false
				if !st.down && !st.lost {
					c.hosts[st.host].sys.EmitFault(id, obs.FaultSurge, false)
				}
			}
			delete(c.surged, e)
			return nil
		}
		ids, err := c.targets(e, c.running)
		if err != nil {
			return err
		}
		for _, id := range ids {
			st := c.vms[id]
			st.wrap.active, st.wrap.factor = true, factor
			c.hosts[st.host].sys.EmitFault(id, obs.FaultSurge, true)
		}
		if e.Duration > 0 {
			c.surged[e] = ids
		}
	case KindHostFail:
		return c.failHost(e.Host)
	}
	return nil
}

// failHost marks the host failed — it never steps again — and
// mass-evacuates its running VMs by live migration to wherever the
// placement policy finds room. VMs that fit nowhere are stranded on
// the dead host and recorded as lost (their partial results remain
// readable); finished VMs stay put, their results final.
func (c *Cluster) failHost(id int) error {
	h := c.hosts[id]
	if h.failed {
		return fmt.Errorf("host %d failed twice", id)
	}
	h.failed = true
	ids := make([]vmm.VMID, 0, len(h.resident))
	for vid := range h.resident {
		ids = append(ids, vid)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, vid := range ids {
		st := h.resident[vid]
		if st.wrap.done {
			continue
		}
		target := c.place.PlaceBoot(st.view(), c.hostViews())
		if target < 0 {
			st.lost, st.lostRound = true, c.round
			continue
		}
		if err := c.migrate(st, target, true); err != nil {
			return err
		}
	}
	return nil
}

// migrate live-migrates one VM: emigrate from its current host,
// immigrate onto the target, with the heat-profile carry-over checked
// against pre/post HeatIndex summaries.
func (c *Cluster) migrate(st *vmState, to int, evacuation bool) error {
	src, dst := c.hosts[st.host], c.hosts[to]
	var pre vmm.HeatSummary
	preOK := false
	for _, inst := range src.sys.VMs {
		if inst.ID == st.id {
			pre, preOK = inst.HeatIndexSummary()
			break
		}
	}
	img, err := src.sys.EmigrateVM(st.id)
	if err != nil {
		return fmt.Errorf("host %d: %w", src.id, err)
	}
	src.release(st)
	vc, err := c.vmConfig(st)
	if err != nil {
		return err
	}
	inst, err := dst.sys.ImmigrateVM(vc, img)
	if err != nil {
		return fmt.Errorf("host %d: immigrate VM %d: %w", dst.id, st.id, err)
	}
	dst.admit(st)
	st.host = to
	st.migrations++
	post, postOK := inst.HeatIndexSummary()
	c.migrations = append(c.migrations, MigrationRecord{
		Round: c.round, VM: st.id, From: src.id, To: dst.id,
		Frames: img.Frames(), Evacuation: evacuation,
		HeatPreserved: preOK && postOK && pre == post,
	})
	return nil
}

// rebalance asks the placement policy for moves and applies them.
func (c *Cluster) rebalance() error {
	var views []VMView
	for _, id := range c.order {
		if st := c.vms[id]; c.running(st) {
			views = append(views, st.view())
		}
	}
	for _, m := range c.place.Rebalance(c.hostViews(), views) {
		st, ok := c.vms[m.VM]
		if !ok || !c.running(st) {
			return fmt.Errorf("fleet %q round %d: %s rebalance moves ineligible VM %d", c.sc.Name, c.round, c.place.Name(), m.VM)
		}
		if m.To < 0 || m.To >= len(c.hosts) || m.To == st.host {
			return fmt.Errorf("fleet %q round %d: %s rebalance moves VM %d to invalid host %d", c.sc.Name, c.round, c.place.Name(), m.VM, m.To)
		}
		if v := c.hosts[m.To].view(); !v.Fits(st.fastPages, st.slowPages) {
			return fmt.Errorf("fleet %q round %d: %s rebalance overcommits host %d with VM %d", c.sc.Name, c.round, c.place.Name(), m.To, m.VM)
		}
		if err := c.migrate(st, m.To, false); err != nil {
			return fmt.Errorf("fleet %q round %d: %w", c.sc.Name, c.round, err)
		}
	}
	return nil
}

// StepRound advances the fleet one lock-step round: due script events
// apply, the placement policy rebalances (migrations run serially),
// every live host steps RoundEpochs epochs concurrently through the
// runner pool, and a timeline sample is taken at the barrier. Calling
// it past Script.Rounds is an error.
func (c *Cluster) StepRound(ctx context.Context) error {
	if c.round >= c.sc.Rounds {
		return fmt.Errorf("fleet %q: stepping past round %d", c.sc.Name, c.sc.Rounds)
	}
	for len(c.actions) > 0 && c.actions[0].at <= c.round {
		a := c.actions[0]
		c.actions = c.actions[1:]
		if err := c.apply(a); err != nil {
			return fmt.Errorf("fleet %q round %d: %w", c.sc.Name, c.round, err)
		}
	}
	if err := c.rebalance(); err != nil {
		return err
	}
	if err := c.stepHosts(ctx); err != nil {
		return err
	}
	c.sample()
	c.round++
	return nil
}

// stepHosts runs every live host's RoundEpochs epochs through the
// runner pool. Hosts share no mutable state, and the futures are
// awaited in host order, so this is the only concurrent phase and it
// cannot perturb determinism.
func (c *Cluster) stepHosts(ctx context.Context) error {
	pool := runner.NewPool(ctx, runner.Options{Workers: c.opts.Workers})
	futures := make([]*runner.Future, len(c.hosts))
	for i, h := range c.hosts {
		if h.failed {
			continue
		}
		h := h
		futures[i] = pool.SubmitFunc("host"+strconv.Itoa(h.id), func(context.Context) (*core.VMResult, *core.System, error) {
			for e := 0; e < c.sc.RoundEpochs; e++ {
				alive, err := h.sys.StepEpoch()
				if err != nil {
					return nil, nil, err
				}
				if !alive {
					break
				}
			}
			return nil, h.sys, nil
		})
	}
	for i, f := range futures {
		if f == nil {
			continue
		}
		if err := f.Err(); err != nil {
			return fmt.Errorf("fleet %q round %d: host %d: %w", c.sc.Name, c.round, i, err)
		}
	}
	return nil
}

// sample appends one timeline point (after the round's barrier).
// Migrations is the delta since the previous sample.
func (c *Cluster) sample() {
	s := RoundSample{Round: c.round, Migrations: len(c.migrations) - c.prevMigrations}
	c.prevMigrations = len(c.migrations)
	for _, h := range c.hosts {
		if h.failed {
			continue
		}
		s.LiveHosts++
		s.FastFree += h.sys.Machine.FreeFrames(memsim.FastMem)
	}
	for _, id := range c.order {
		st := c.vms[id]
		if st.lost {
			s.Lost++
			continue
		}
		if st.down {
			continue
		}
		s.ResidentVMs++
		if c.running(st) {
			s.RunningVMs++
		}
	}
	c.timeline = append(c.timeline, s)
}

// Result finalises the run: every live host's invariants are checked
// and the per-VM outcomes, migration log, and timeline are assembled.
func (c *Cluster) Result() (*Result, error) {
	res := &Result{
		Name: c.sc.Name, Seed: c.sc.Seed,
		Hosts: len(c.hosts), Rounds: c.round,
		Placement:  c.place.Name(),
		Migrations: c.migrations,
		Timeline:   c.timeline,
	}
	for _, h := range c.hosts {
		if !h.failed {
			if err := h.sys.CheckInvariants(); err != nil {
				return nil, fmt.Errorf("fleet %q: host %d final invariants: %w", c.sc.Name, h.id, err)
			}
		}
		res.HostRuns = append(res.HostRuns, HostRun{
			ID: h.id, Failed: h.failed, Epochs: h.sys.Epochs(),
			VMs: len(h.resident), Sys: h.sys, Obs: h.obs,
		})
	}
	for _, id := range c.order {
		st := c.vms[id]
		run := VMRun{
			ID: st.id, App: st.app, Mode: st.mode,
			BootRound: st.bootRound, Host: st.host,
			ShutdownRound: -1,
			Migrations:    st.migrations,
			Completed:     st.wrap.done,
			Lost:          st.lost,
		}
		if st.down {
			run.ShutdownRound = st.downRound
		}
		if vr, ok := c.hosts[st.host].sys.VMResultByID(st.id); ok {
			run.Res = *vr
		} else {
			return nil, fmt.Errorf("fleet %q: VM %d vanished from host %d", c.sc.Name, st.id, st.host)
		}
		res.VMs = append(res.VMs, run)
	}
	return res, nil
}

// Run executes a fleet script to completion.
//
// Determinism: the result — and, with opts.Obs attached, the metric
// tree — is a pure function of (*sc, sc.Seed), byte-identical across
// worker counts.
func Run(ctx context.Context, sc *Script, opts Options) (*Result, error) {
	c, err := NewCluster(sc, opts)
	if err != nil {
		return nil, err
	}
	for c.round < sc.Rounds {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := c.StepRound(ctx); err != nil {
			return nil, err
		}
	}
	return c.Result()
}
