package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"heteroos/internal/core"
	"heteroos/internal/obs"
	"heteroos/internal/vmm"
)

// runBundled executes a bundled fleet script and fails the test on any
// error.
func runBundled(t *testing.T, name string, opts Options) *Result {
	t.Helper()
	sc, err := LoadBundled(name)
	if err != nil {
		t.Fatalf("LoadBundled(%q): %v", name, err)
	}
	res, err := Run(context.Background(), sc, opts)
	if err != nil {
		t.Fatalf("Run(%q): %v", name, err)
	}
	return res
}

// TestFleetDeterministicAcrossWorkers is the placement-determinism
// property: the same script must produce a byte-identical result
// regardless of how many pool workers step the hosts.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	var baseline []byte
	for _, workers := range []int{1, 4, 16} {
		res := runBundled(t, "fleet-churn.json", Options{Workers: workers})
		b, err := json.MarshalIndent(res, "", " ")
		if err != nil {
			t.Fatalf("marshal (workers=%d): %v", workers, err)
		}
		if baseline == nil {
			baseline = b
			continue
		}
		if !bytes.Equal(baseline, b) {
			t.Fatalf("result with %d workers differs from 1 worker:\n%s\nvs\n%s", workers, b, baseline)
		}
	}
}

// TestFleetChurnRollupReconciles runs the bundled churn script with
// observability attached and pins the fleet's accounting identities:
//
//  1. FleetSum (per-VM lifetime results) equals the sum of HostSum over
//     all hosts — migration stubs carry zero, so nothing double-counts.
//  2. The root registry's host/ subtree equals the Merge of each
//     host's own snapshot re-parented with Scoped("host/<id>") — the
//     snapshot algebra round-trips the hierarchy.
//  3. The rolled-up core.epochs counter equals the summed Res.Epochs —
//     the metric stream and the result structs agree exactly, across
//     migrations.
func TestFleetChurnRollupReconciles(t *testing.T) {
	h := obs.New()
	res := runBundled(t, "fleet-churn.json", Options{Workers: 3, Obs: h})

	fleet := res.FleetSum()
	var hosts core.VMResult
	for _, hr := range res.HostRuns {
		s := res.HostSum(hr.ID)
		AddResults(&hosts, &s)
	}
	if !reflect.DeepEqual(fleet, hosts) {
		t.Errorf("FleetSum != sum of HostSum:\nfleet: %+v\nhosts: %+v", fleet, hosts)
	}

	root := h.Metrics.Snapshot()
	var sub obs.Snapshot
	prefix := "host" + obs.ScopeSep
	for _, v := range root.Values {
		if v.Scope == "host" || strings.HasPrefix(v.Scope, prefix) {
			sub.Values = append(sub.Values, v)
		}
	}
	sub = sub.Merge(obs.Snapshot{}) // canonical order
	var merged obs.Snapshot
	for _, hr := range res.HostRuns {
		if hr.Obs == nil {
			t.Fatalf("host %d has no obs handle", hr.ID)
		}
		merged = merged.Merge(hr.Obs.Metrics.Snapshot().Scoped(prefix + strconv.Itoa(hr.ID)))
	}
	if !reflect.DeepEqual(sub.Values, merged.Values) {
		t.Errorf("root host/ subtree (%d values) != merged per-host snapshots (%d values)",
			len(sub.Values), len(merged.Values))
	}

	mv := root.Rollup().Find("core.epochs")
	if mv == nil {
		t.Fatal("rollup has no core.epochs counter")
	}
	epochs := 0
	for i := range res.VMs {
		epochs += res.VMs[i].Res.Epochs
	}
	if mv.Value != float64(epochs) {
		t.Errorf("rolled-up core.epochs = %v, sum of Res.Epochs = %d", mv.Value, epochs)
	}
}

// TestFleetChurnMigratesAndPreservesHeat checks the churn script's
// expected shape: the host failure forces evacuations, and every live
// migration carries the VM's heat profile bit-identically.
func TestFleetChurnMigratesAndPreservesHeat(t *testing.T) {
	res := runBundled(t, "fleet-churn.json", Options{Workers: 2})
	if len(res.Migrations) < 2 {
		t.Fatalf("churn produced %d migrations, want >= 2", len(res.Migrations))
	}
	evacuations := 0
	for _, m := range res.Migrations {
		if !m.HeatPreserved {
			t.Errorf("migration of VM %d (round %d, host %d -> %d) did not preserve heat", m.VM, m.Round, m.From, m.To)
		}
		if m.Frames == 0 {
			t.Errorf("migration of VM %d moved zero frames", m.VM)
		}
		if m.Evacuation {
			evacuations++
		}
	}
	if evacuations == 0 {
		t.Error("host-fail event produced no evacuation migrations")
	}
	if !res.HostRuns[0].Failed {
		t.Error("host 0 should be failed")
	}
	for i := range res.VMs {
		v := &res.VMs[i]
		if v.Lost {
			t.Errorf("VM %d lost; churn script has room for every evacuee", v.ID)
		}
		if v.Host == 0 && !res.HostRuns[0].Failed {
			t.Errorf("VM %d still accounted to failed host 0", v.ID)
		}
	}
}

// TestFleetHostFailStrandsUnplaceable fails a host in a fleet with no
// spare room: the evacuee fits nowhere, so it is stranded (lost) on the
// dead host with its partial results intact — and the accounting
// identities still hold.
func TestFleetHostFailStrandsUnplaceable(t *testing.T) {
	sc := &Script{
		Name: "strand", Seed: 7, Hosts: 2, Rounds: 3, RoundEpochs: 4,
		Host: HostDesc{FastFrames: 6144, SlowFrames: 18432},
		VMs: []VMGroup{
			{App: "memlat", Mode: "HeteroOS-coordinated", Count: 2, FastPages: 4096, SlowPages: 16384},
		},
		Events: []Event{{At: 1, Kind: KindHostFail, Host: 0}},
	}
	res, err := Run(context.Background(), sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v0, v1 := &res.VMs[0], &res.VMs[1]
	if !v0.Lost || v0.Host != 0 {
		t.Fatalf("VM 1 should be stranded on host 0: %+v", v0)
	}
	if v0.Res.Epochs != sc.RoundEpochs {
		t.Errorf("stranded VM ran %d epochs, want %d (round 0 only)", v0.Res.Epochs, sc.RoundEpochs)
	}
	if v1.Lost || v1.Migrations != 0 {
		t.Errorf("VM 2 on the surviving host should be unaffected: %+v", v1)
	}
	if len(res.Migrations) != 0 {
		t.Errorf("no migration should succeed, got %d", len(res.Migrations))
	}
	for _, s := range res.Timeline {
		wantLost := 0
		if s.Round >= 1 {
			wantLost = 1
		}
		if s.Lost != wantLost {
			t.Errorf("round %d: lost = %d, want %d", s.Round, s.Lost, wantLost)
		}
	}
	fleet := res.FleetSum()
	var hosts core.VMResult
	for _, hr := range res.HostRuns {
		s := res.HostSum(hr.ID)
		AddResults(&hosts, &s)
	}
	if !reflect.DeepEqual(fleet, hosts) {
		t.Errorf("reconciliation broke with a lost VM:\nfleet: %+v\nhosts: %+v", fleet, hosts)
	}
}

// TestFleetCountTargets exercises count-based surge and shutdown: the
// Count lowest-id eligible VMs are picked, surged VMs finish earlier,
// and shutdown retires them at the scripted round.
func TestFleetCountTargets(t *testing.T) {
	sc := &Script{
		Name: "count-churn", Seed: 11, Hosts: 1, Rounds: 6, RoundEpochs: 4,
		Host: HostDesc{FastFrames: 16384, SlowFrames: 65536},
		VMs: []VMGroup{
			{App: "memlat", Mode: "HeteroOS-coordinated", Count: 3, FastPages: 4096, SlowPages: 16384},
		},
		Events: []Event{
			{At: 0, Kind: KindSurge, Count: 2, Factor: 3, Duration: 2},
			{At: 4, Kind: KindShutdown, Count: 2},
		},
	}
	res, err := Run(context.Background(), sc, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{4, 4, -1} {
		if got := res.VMs[i].ShutdownRound; got != want {
			t.Errorf("VM %d shutdown round = %d, want %d", i+1, got, want)
		}
		if !res.VMs[i].Completed {
			t.Errorf("VM %d should have completed", i+1)
		}
	}
	if s, u := res.VMs[0].Res.Epochs, res.VMs[2].Res.Epochs; s >= u {
		t.Errorf("surged VM ran %d epochs, unsurged %d; surge should shorten the run", s, u)
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.RunningVMs != 0 {
		t.Errorf("final round still has %d running VMs", last.RunningVMs)
	}
	if last.ResidentVMs != 1 {
		t.Errorf("final round has %d resident VMs, want 1 (VM 3)", last.ResidentVMs)
	}
}

// TestFleetMigratedVMsComplete pins that migration does not derail a
// workload: every VM the churn script moved still runs to completion
// on its destination host (the workload cursor travelled with it).
func TestFleetMigratedVMsComplete(t *testing.T) {
	res := runBundled(t, "fleet-churn.json", Options{Workers: 2})
	migrated := map[vmm.VMID]bool{}
	for _, m := range res.Migrations {
		migrated[m.VM] = true
	}
	if len(migrated) == 0 {
		t.Fatal("no VM migrated")
	}
	for i := range res.VMs {
		v := &res.VMs[i]
		if migrated[v.ID] && !v.Completed {
			t.Errorf("migrated VM %d did not complete (epochs %d)", v.ID, v.Res.Epochs)
		}
	}
}
