package fleet

import (
	"reflect"
	"testing"
)

func TestFirstFitPlaceBoot(t *testing.T) {
	vm := VMView{ID: 1, FastPages: 4, SlowPages: 4}
	hosts := []HostView{
		{ID: 0, FastFrames: 10, SlowFrames: 10, FastCommitted: 8},
		{ID: 1, FastFrames: 10, SlowFrames: 10},
		{ID: 2, FastFrames: 10, SlowFrames: 10},
	}
	if got := (firstFit{}).PlaceBoot(vm, hosts); got != 1 {
		t.Errorf("first-fit picked host %d, want the lowest-id fitting host 1", got)
	}
	hosts[0].FastCommitted = 0
	if got := (firstFit{}).PlaceBoot(vm, hosts); got != 0 {
		t.Errorf("first-fit picked host %d, want 0", got)
	}
	hosts[0].Failed = true
	if got := (firstFit{}).PlaceBoot(vm, hosts); got != 1 {
		t.Errorf("first-fit picked failed host: got %d, want 1", got)
	}
	for i := range hosts {
		hosts[i].FastCommitted = 8
	}
	if got := (firstFit{}).PlaceBoot(vm, hosts); got != -1 {
		t.Errorf("first-fit found room on a full fleet: got %d", got)
	}
	if moves := (firstFit{}).Rebalance(hosts, nil); moves != nil {
		t.Errorf("first-fit should never rebalance, got %v", moves)
	}
}

func TestPressurePackPlaceBootBestFit(t *testing.T) {
	vm := VMView{ID: 1, FastPages: 10, SlowPages: 5}
	hosts := []HostView{
		{ID: 0, FastFrames: 100, SlowFrames: 100, FastCommitted: 50},
		{ID: 1, FastFrames: 100, SlowFrames: 100, FastCommitted: 88},
		{ID: 2, FastFrames: 100, SlowFrames: 100, FastCommitted: 90},
		// Tightest on fast, but the slow span does not fit.
		{ID: 3, FastFrames: 100, SlowFrames: 100, FastCommitted: 90, SlowCommitted: 97},
	}
	if got := (pressurePack{}).PlaceBoot(vm, hosts); got != 2 {
		t.Errorf("pressure-pack picked host %d, want the tightest feasible host 2", got)
	}
}

func TestPressurePackRebalanceDrainsHighWater(t *testing.T) {
	hosts := []HostView{
		{ID: 0, FastFrames: 100, SlowFrames: 100, FastCommitted: 96, SlowCommitted: 50, VMs: 2},
		{ID: 1, FastFrames: 100, SlowFrames: 100, FastCommitted: 10, SlowCommitted: 10, VMs: 1},
	}
	vms := []VMView{
		{ID: 1, Host: 0, FastPages: 64, SlowPages: 30},
		{ID: 2, Host: 0, FastPages: 32, SlowPages: 20},
		{ID: 3, Host: 1, FastPages: 10, SlowPages: 10},
	}
	moves := (pressurePack{}).Rebalance(hosts, vms)
	want := []Move{{VM: 2, To: 1}}
	if !reflect.DeepEqual(moves, want) {
		t.Errorf("rebalance = %v, want %v (drain the smallest VM off the packed host)", moves, want)
	}
}

func TestPressurePackRebalanceLeavesBalancedFleet(t *testing.T) {
	hosts := []HostView{
		{ID: 0, FastFrames: 100, SlowFrames: 100, FastCommitted: 60, VMs: 1},
		{ID: 1, FastFrames: 100, SlowFrames: 100, FastCommitted: 50, VMs: 1},
	}
	vms := []VMView{
		{ID: 1, Host: 0, FastPages: 60},
		{ID: 2, Host: 1, FastPages: 50},
	}
	if moves := (pressurePack{}).Rebalance(hosts, vms); len(moves) != 0 {
		t.Errorf("no host is past the high-water mark, yet rebalance proposed %v", moves)
	}
}

func TestDRFRebalanceLevelsDominantLoad(t *testing.T) {
	hosts := []HostView{
		{ID: 0, FastFrames: 100, SlowFrames: 100, FastCommitted: 80, SlowCommitted: 20, VMs: 2},
		{ID: 1, FastFrames: 100, SlowFrames: 100, FastCommitted: 10, SlowCommitted: 5, VMs: 1},
	}
	vms := []VMView{
		{ID: 1, Host: 0, FastPages: 50, SlowPages: 10},
		{ID: 2, Host: 0, FastPages: 30, SlowPages: 10},
		{ID: 3, Host: 1, FastPages: 10, SlowPages: 5},
	}
	moves := (drfRebalance{}).Rebalance(hosts, vms)
	want := []Move{{VM: 2, To: 1}}
	if !reflect.DeepEqual(moves, want) {
		t.Errorf("rebalance = %v, want %v (one leveling move closes the spread)", moves, want)
	}
}

func TestDRFRebalanceRespectsSpreadThreshold(t *testing.T) {
	hosts := []HostView{
		{ID: 0, FastFrames: 100, SlowFrames: 100, FastCommitted: 40, VMs: 1},
		{ID: 1, FastFrames: 100, SlowFrames: 100, FastCommitted: 25, VMs: 1},
	}
	vms := []VMView{
		{ID: 1, Host: 0, FastPages: 40},
		{ID: 2, Host: 1, FastPages: 25},
	}
	if moves := (drfRebalance{}).Rebalance(hosts, vms); len(moves) != 0 {
		t.Errorf("spread 0.15 is under the threshold, yet rebalance proposed %v", moves)
	}
}

func TestPlacementByName(t *testing.T) {
	for _, name := range PlacementNames() {
		p, err := PlacementByName(name)
		if err != nil {
			t.Errorf("PlacementByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("PlacementByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := PlacementByName("round-robin"); err == nil {
		t.Error("unknown placement name should error")
	}
}
