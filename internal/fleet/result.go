package fleet

import (
	"fmt"
	"reflect"

	"heteroos/internal/core"
	"heteroos/internal/metrics"
	"heteroos/internal/obs"
	"heteroos/internal/vmm"
)

// VMRun is one VM's fleet outcome.
type VMRun struct {
	ID   vmm.VMID `json:"id"`
	App  string   `json:"app"`
	Mode string   `json:"mode"`
	// BootRound is when the VM joined (0 for round-0 VMs).
	BootRound int `json:"boot_round"`
	// Host is where the VM (and its result) ended up.
	Host int `json:"host"`
	// ShutdownRound is when the VM was retired, or -1.
	ShutdownRound int `json:"shutdown_round"`
	// Migrations counts the VM's cross-host live migrations.
	Migrations int `json:"migrations"`
	// Completed reports whether the workload ran to the end.
	Completed bool `json:"completed"`
	// Lost marks a VM stranded on a failed host that no survivor could
	// absorb; Res then holds its partial progress up to the failure.
	Lost bool          `json:"lost,omitempty"`
	Res  core.VMResult `json:"result"`
}

// MigrationRecord is one cross-host live migration.
type MigrationRecord struct {
	Round int      `json:"round"`
	VM    vmm.VMID `json:"vm"`
	From  int      `json:"from"`
	To    int      `json:"to"`
	// Frames is the machine-frame footprint that moved.
	Frames uint64 `json:"frames"`
	// Evacuation marks a host-failure evacuation (vs a placement
	// rebalance).
	Evacuation bool `json:"evacuation,omitempty"`
	// HeatPreserved reports whether the VM's HeatIndex summary was
	// bit-identical before and after the move.
	HeatPreserved bool `json:"heat_preserved"`
}

// RoundSample is one fleet timeline point, taken at each round's
// barrier.
type RoundSample struct {
	Round     int `json:"round"`
	LiveHosts int `json:"live_hosts"`
	// ResidentVMs counts VMs not yet shut down or lost; RunningVMs the
	// subset still doing work.
	ResidentVMs int `json:"resident_vms"`
	RunningVMs  int `json:"running_vms"`
	// FastFree sums live hosts' free FastMem frames.
	FastFree uint64 `json:"fast_free"`
	// Migrations and Lost are deltas/totals this round: migrations
	// performed since the previous sample, VMs lost so far.
	Migrations int `json:"migrations"`
	Lost       int `json:"lost"`
}

// HostRun is one host's fleet outcome.
type HostRun struct {
	ID     int  `json:"id"`
	Failed bool `json:"failed"`
	// Epochs is the host's completed epoch count (idle epochs are not
	// counted, so hosts that emptied early show fewer).
	Epochs int `json:"epochs"`
	// VMs counts VMs resident at the end (running, finished, or
	// stranded).
	VMs int `json:"vms"`
	// Sys is the host's final system; tests use it for invariant and
	// share inspection.
	Sys *core.System `json:"-"`
	// Obs is the host's observability child handle (nil when the fleet
	// ran without one).
	Obs *obs.Obs `json:"-"`
}

// Result is a completed fleet run.
type Result struct {
	Name      string `json:"name"`
	Seed      uint64 `json:"seed"`
	Hosts     int    `json:"hosts"`
	Rounds    int    `json:"rounds"`
	Placement string `json:"placement"`
	// VMs holds every VM that ever ran, in boot order.
	VMs []VMRun `json:"vms"`
	// HostRuns holds every host in id order.
	HostRuns   []HostRun         `json:"host_runs"`
	Migrations []MigrationRecord `json:"migrations"`
	Timeline   []RoundSample     `json:"timeline"`
}

// AddResults accumulates src into dst field by field — every counter,
// duration, and per-tier array summed. It walks the struct
// reflectively so a VMResult field added later is summed (not silently
// dropped) without touching this code.
func AddResults(dst *core.VMResult, src *core.VMResult) {
	addValue(reflect.ValueOf(dst).Elem(), reflect.ValueOf(src).Elem())
}

func addValue(dst, src reflect.Value) {
	switch dst.Kind() {
	case reflect.Struct:
		for i := 0; i < dst.NumField(); i++ {
			addValue(dst.Field(i), src.Field(i))
		}
	case reflect.Array, reflect.Slice:
		for i := 0; i < dst.Len(); i++ {
			addValue(dst.Index(i), src.Index(i))
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		dst.SetInt(dst.Int() + src.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		dst.SetUint(dst.Uint() + src.Uint())
	case reflect.Float32, reflect.Float64:
		dst.SetFloat(dst.Float() + src.Float())
	default:
		panic(fmt.Sprintf("fleet: VMResult field kind %v is not summable", dst.Kind()))
	}
}

// HostSum sums every VM result accounted to one host: its live VMs
// plus its departed ones. Migrated-out stubs carry zero results by
// construction, so a VM that passed through contributes nothing here —
// its lifetime total lives on its final host only.
func (r *Result) HostSum(id int) core.VMResult {
	var sum core.VMResult
	sys := r.HostRuns[id].Sys
	for _, set := range [][]*core.VMInstance{sys.VMs, sys.Departed} {
		for _, inst := range set {
			AddResults(&sum, &inst.Res)
		}
	}
	return sum
}

// FleetSum sums every VM's lifetime result. Because migration moves
// the accumulating result with the VM and leaves zero stubs behind,
// this equals the sum of HostSum over all hosts exactly — the
// reconciliation the fleet tests pin.
func (r *Result) FleetSum() core.VMResult {
	var sum core.VMResult
	for i := range r.VMs {
		AddResults(&sum, &r.VMs[i].Res)
	}
	return sum
}

// Table renders the per-VM outcomes (callers with thousands of VMs
// want AppTable instead).
func (r *Result) Table() *metrics.Table {
	t := metrics.NewTable("fleet "+r.Name,
		"vm", "app", "mode", "boot", "shutdown", "host", "moves", "done", "lost",
		"epochs", "runtime-s", "promotions", "demotions", "vmm-moves")
	for i := range r.VMs {
		v := &r.VMs[i]
		shutdown := "-"
		if v.ShutdownRound >= 0 {
			shutdown = fmt.Sprintf("%d", v.ShutdownRound)
		}
		t.AddRow(int(v.ID), v.App, v.Mode, v.BootRound, shutdown, v.Host,
			v.Migrations, v.Completed, v.Lost, v.Res.Epochs,
			fmt.Sprintf("%.3f", v.Res.SimTime.Seconds()),
			v.Res.Promotions, v.Res.Demotions, v.Res.VMMMigrations)
	}
	return t
}

// AppTable aggregates VM outcomes per (app, mode) — the useful view at
// datacenter scale.
func (r *Result) AppTable() *metrics.Table {
	type key struct{ app, mode string }
	type agg struct {
		n, completed, lost, moves int
		res                       core.VMResult
	}
	aggs := make(map[key]*agg)
	var order []key
	for i := range r.VMs {
		v := &r.VMs[i]
		k := key{v.App, v.Mode}
		a, ok := aggs[k]
		if !ok {
			a = &agg{}
			aggs[k] = a
			order = append(order, k)
		}
		a.n++
		if v.Completed {
			a.completed++
		}
		if v.Lost {
			a.lost++
		}
		a.moves += v.Migrations
		AddResults(&a.res, &v.Res)
	}
	t := metrics.NewTable("fleet "+r.Name+" by app",
		"app", "mode", "vms", "completed", "lost", "migrations",
		"epochs", "runtime-s", "promotions", "demotions", "vmm-moves")
	for _, k := range order {
		a := aggs[k]
		t.AddRow(k.app, k.mode, a.n, a.completed, a.lost, a.moves,
			a.res.Epochs, fmt.Sprintf("%.3f", a.res.SimTime.Seconds()),
			a.res.Promotions, a.res.Demotions, a.res.VMMMigrations)
	}
	return t
}

// MigrationTable renders the migration log.
func (r *Result) MigrationTable() *metrics.Table {
	t := metrics.NewTable("migrations "+r.Name,
		"round", "vm", "from", "to", "frames", "evacuation", "heat-preserved")
	for i := range r.Migrations {
		m := &r.Migrations[i]
		t.AddRow(m.Round, int(m.VM), m.From, m.To, m.Frames, m.Evacuation, m.HeatPreserved)
	}
	return t
}

// TimelineTable renders the sampled fleet timeline.
func (r *Result) TimelineTable() *metrics.Table {
	t := metrics.NewTable("timeline "+r.Name,
		"round", "hosts", "resident", "running", "fast-free", "migrations", "lost")
	for i := range r.Timeline {
		s := &r.Timeline[i]
		t.AddRow(s.Round, s.LiveHosts, s.ResidentVMs, s.RunningVMs,
			s.FastFree, s.Migrations, s.Lost)
	}
	return t
}
