package fleet

import (
	"fmt"

	"heteroos/internal/vmm"
)

// HostView is a placement policy's read-only view of one host. The
// committed figures are span accounting — the sum of resident VMs'
// per-tier maxima — not live allocation: a VM can always balloon up to
// its span, so placing against commitments is what guarantees an
// accepted VM (or migration) can never be starved of frames it was
// promised. Fleet placement is therefore a pure function of this
// bookkeeping, independent of machine state and of worker count.
type HostView struct {
	ID     int
	Failed bool
	// FastFrames / SlowFrames is the machine shape.
	FastFrames, SlowFrames uint64
	// FastCommitted / SlowCommitted sums resident VM spans.
	FastCommitted, SlowCommitted uint64
	// VMs counts resident VMs.
	VMs int
}

// Fits reports whether a VM span fits in the host's uncommitted room.
func (h *HostView) Fits(fast, slow uint64) bool {
	return !h.Failed &&
		h.FastFrames-h.FastCommitted >= fast &&
		h.SlowFrames-h.SlowCommitted >= slow
}

// fastHeadroom is the uncommitted FastMem span.
func (h *HostView) fastHeadroom() uint64 { return h.FastFrames - h.FastCommitted }

// dominantLoad is the host's dominant committed fraction across tiers
// (the DRF lens applied to hosts instead of VMs).
func (h *HostView) dominantLoad() float64 {
	f := float64(h.FastCommitted) / float64(h.FastFrames)
	if s := float64(h.SlowCommitted) / float64(h.SlowFrames); s > f {
		return s
	}
	return f
}

// VMView is a placement policy's view of one running VM.
type VMView struct {
	ID   vmm.VMID
	Host int
	// FastPages / SlowPages is the VM's span.
	FastPages, SlowPages uint64
}

// Move asks the fleet to live-migrate one VM to another host.
type Move struct {
	VM vmm.VMID
	To int
}

// Placement decides where VMs run. Implementations must be
// deterministic pure functions of their arguments — ties always break
// toward the lowest host id — because placement decisions feed the
// fleet's byte-identical-across-workers contract.
type Placement interface {
	Name() string
	// PlaceBoot picks the host for a new (or evacuating) VM, or -1 if
	// no host fits.
	PlaceBoot(vm VMView, hosts []HostView) int
	// Rebalance proposes live migrations given the whole fleet's
	// state; it runs once per round before hosts step. vms is sorted
	// by id and holds only running (not finished, not failed-host)
	// VMs.
	Rebalance(hosts []HostView, vms []VMView) []Move
}

// Placement policy names accepted by PlacementByName and fleet
// scripts.
const (
	PlacementFirstFit     = "first-fit"
	PlacementPressurePack = "pressure-pack"
	PlacementDRFRebalance = "drf-rebalance"
)

// PlacementNames lists the built-in placement policies.
func PlacementNames() []string {
	return []string{PlacementFirstFit, PlacementPressurePack, PlacementDRFRebalance}
}

// PlacementByName resolves a placement policy name.
func PlacementByName(name string) (Placement, error) {
	switch name {
	case PlacementFirstFit:
		return firstFit{}, nil
	case PlacementPressurePack:
		return pressurePack{}, nil
	case PlacementDRFRebalance:
		return drfRebalance{}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown placement policy %q (have %v)", name, PlacementNames())
	}
}

// firstFit boots onto the lowest-id host with room and never
// rebalances. The baseline: cheap, stable, and fragmenting.
type firstFit struct{}

func (firstFit) Name() string { return PlacementFirstFit }

func (firstFit) PlaceBoot(vm VMView, hosts []HostView) int {
	for i := range hosts {
		if hosts[i].Fits(vm.FastPages, vm.SlowPages) {
			return hosts[i].ID
		}
	}
	return -1
}

func (firstFit) Rebalance([]HostView, []VMView) []Move { return nil }

// pressurePack is FastMem-pressure-aware bin-packing: boots best-fit
// on the scarce tier (the feasible host left with the least FastMem
// headroom), concentrating load so whole hosts stay empty, and
// rebalances by draining the fast tier of hosts packed past the
// high-water mark into the emptiest feasible host.
type pressurePack struct{}

// packHighWater is the committed-FastMem fraction beyond which
// rebalancing starts pulling VMs off a host.
const packHighWater = 0.95

// packMaxMovesPerRound bounds migration churn per rebalance pass.
const packMaxMovesPerRound = 4

func (pressurePack) Name() string { return PlacementPressurePack }

func (pressurePack) PlaceBoot(vm VMView, hosts []HostView) int {
	best, bestLeft := -1, uint64(0)
	for i := range hosts {
		h := &hosts[i]
		if !h.Fits(vm.FastPages, vm.SlowPages) {
			continue
		}
		left := h.fastHeadroom() - vm.FastPages
		if best == -1 || left < bestLeft {
			best, bestLeft = h.ID, left
		}
	}
	return best
}

func (pressurePack) Rebalance(hosts []HostView, vms []VMView) []Move {
	var moves []Move
	for hi := range hosts {
		src := &hosts[hi]
		if src.Failed || float64(src.FastCommitted) < packHighWater*float64(src.FastFrames) {
			continue
		}
		// Drain the smallest-span VM (cheapest migration); ties break
		// toward the lowest VM id because vms is id-sorted.
		var pick *VMView
		for vi := range vms {
			v := &vms[vi]
			if v.Host != src.ID {
				continue
			}
			if pick == nil || v.FastPages < pick.FastPages {
				pick = v
			}
		}
		if pick == nil {
			continue
		}
		// Target: the feasible host with the most FastMem headroom; it
		// must end up strictly less pressured than the source was, or
		// the move just trades places.
		best := -1
		var bestRoom uint64
		for ti := range hosts {
			dst := &hosts[ti]
			if dst.ID == src.ID || !dst.Fits(pick.FastPages, pick.SlowPages) {
				continue
			}
			if room := dst.fastHeadroom(); best == -1 || room > bestRoom {
				best, bestRoom = dst.ID, room
			}
		}
		if best == -1 || bestRoom-pick.FastPages <= src.fastHeadroom() {
			continue
		}
		moves = append(moves, Move{VM: pick.ID, To: best})
		src.FastCommitted -= pick.FastPages
		src.SlowCommitted -= pick.SlowPages
		src.VMs--
		dst := &hosts[best]
		dst.FastCommitted += pick.FastPages
		dst.SlowCommitted += pick.SlowPages
		dst.VMs++
		pick.Host = best
		if len(moves) >= packMaxMovesPerRound {
			break
		}
	}
	return moves
}

// drfRebalance boots like first-fit but continuously levels dominant
// load across hosts: while the spread between the most- and
// least-loaded host exceeds the threshold, it migrates the smallest
// movable VM off the most-loaded host onto the least-loaded one — DRF
// fairness applied fleet-wide instead of within one VMM.
type drfRebalance struct{}

// drfSpread is the dominant-load gap that triggers a leveling move.
const drfSpread = 0.25

// drfMaxMovesPerRound bounds leveling churn per rebalance pass.
const drfMaxMovesPerRound = 4

func (drfRebalance) Name() string { return PlacementDRFRebalance }

func (drfRebalance) PlaceBoot(vm VMView, hosts []HostView) int {
	return firstFit{}.PlaceBoot(vm, hosts)
}

func (drfRebalance) Rebalance(hosts []HostView, vms []VMView) []Move {
	var moves []Move
	for len(moves) < drfMaxMovesPerRound {
		hi, lo := -1, -1
		for i := range hosts {
			h := &hosts[i]
			if h.Failed {
				continue
			}
			if hi == -1 || h.dominantLoad() > hosts[hi].dominantLoad() {
				hi = i
			}
			if lo == -1 || h.dominantLoad() < hosts[lo].dominantLoad() {
				lo = i
			}
		}
		if hi == -1 || lo == -1 || hi == lo {
			return moves
		}
		src, dst := &hosts[hi], &hosts[lo]
		if src.dominantLoad()-dst.dominantLoad() <= drfSpread {
			return moves
		}
		var pick *VMView
		for vi := range vms {
			v := &vms[vi]
			if v.Host != src.ID || !dst.Fits(v.FastPages, v.SlowPages) {
				continue
			}
			if pick == nil || v.FastPages+v.SlowPages < pick.FastPages+pick.SlowPages {
				pick = v
			}
		}
		if pick == nil {
			return moves
		}
		moves = append(moves, Move{VM: pick.ID, To: dst.ID})
		src.FastCommitted -= pick.FastPages
		src.SlowCommitted -= pick.SlowPages
		src.VMs--
		dst.FastCommitted += pick.FastPages
		dst.SlowCommitted += pick.SlowPages
		dst.VMs++
		pick.Host = dst.ID
	}
	return moves
}
