package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"heteroos/internal/core"
	"heteroos/internal/guestos"
	"heteroos/internal/policy"
	"heteroos/internal/workload"
)

// microCfg is the small memlat shape the core tests use: fast enough to
// batch dozens of cells, big enough to exercise both tiers.
func microCfg(t testing.TB, mode policy.Mode, seed uint64) core.Config {
	t.Helper()
	w, err := workload.ByName("memlat", workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return core.Config{
		FastFrames: 4096 + 16384 + 1024,
		SlowFrames: 16384 + 1024,
		Seed:       seed,
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: 4096, SlowPages: 16384,
		}},
	}
}

func microBatch(t testing.TB, n int) []Job {
	t.Helper()
	modes := []policy.Mode{policy.HeteroOSLRU(), policy.HeteroOSCoordinated()}
	jobs := make([]Job, 0, n)
	for i := 0; i < n; i++ {
		m := modes[i%len(modes)]
		jobs = append(jobs, Job{
			Label: fmt.Sprintf("memlat/%s/%d", m.Name, i),
			Cfg:   microCfg(t, m, uint64(i+1)),
		})
	}
	return jobs
}

// TestRunDeterministicAcrossWorkerCounts is the headline guarantee: the
// same batch yields identical results at workers=1 and workers=8, in
// the same (input) order.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Run(context.Background(), microBatch(t, 6), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), microBatch(t, 6), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Label != parallel[i].Label {
			t.Fatalf("job %d label %q vs %q: results out of input order",
				i, serial[i].Label, parallel[i].Label)
		}
		if !reflect.DeepEqual(serial[i].Res, parallel[i].Res) {
			t.Errorf("job %d (%s): results differ between workers=1 and workers=8",
				i, serial[i].Label)
		}
	}
}

// TestCancelledBeforeStart: a pre-cancelled context flags every job with
// the context error without running any simulation.
func TestCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Run(ctx, microBatch(t, 3), Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: Err = %v, want context.Canceled", i, r.Err)
		}
		if r.Res != nil {
			t.Errorf("job %d: has a result despite cancellation", i)
		}
	}
}

// TestCancelMidBatch cancels from the progress callback after the first
// completion; with one worker, every later job must be flagged and the
// batch must still return promptly with partial results intact.
func TestCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results, err := Run(ctx, microBatch(t, 4), Options{
		Workers: 1,
		Progress: func(done, submitted int, r Result) {
			if done == 1 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	var ok, flagged int
	for _, r := range results {
		switch {
		case r.Err == nil && r.Res != nil:
			ok++
		case errors.Is(r.Err, context.Canceled):
			flagged++
		default:
			t.Errorf("%s: unexpected state Res=%v Err=%v", r.Label, r.Res, r.Err)
		}
	}
	if ok == 0 {
		t.Error("no job completed before cancellation")
	}
	if flagged == 0 {
		t.Error("no job was flagged with the context error")
	}
	if ok+flagged != len(results) {
		t.Errorf("ok=%d flagged=%d, want total %d", ok, flagged, len(results))
	}
}

// slowWorkload wraps a real workload, sleeps each epoch, and never
// reports completion — a stand-in for a long simulation.
type slowWorkload struct {
	inner   workload.Workload
	drained bool
}

func (s *slowWorkload) Profile() workload.Profile { return s.inner.Profile() }
func (s *slowWorkload) Init(os *guestos.OS) error { return s.inner.Init(os) }
func (s *slowWorkload) Step(os *guestos.OS) (uint64, bool) {
	time.Sleep(500 * time.Microsecond)
	if !s.drained {
		instr, done := s.inner.Step(os)
		if done || instr == 0 {
			s.drained = true
		}
		if instr > 0 {
			return instr, false
		}
	}
	return 1, false // idle spin: nonzero instructions, never done
}

// TestCancelInFlight: cancelling while a simulation is executing stops
// it at the next epoch boundary rather than letting it run out its
// epoch budget.
func TestCancelInFlight(t *testing.T) {
	cfg := microCfg(t, policy.HeteroOSLRU(), 1)
	cfg.MaxEpochs = 1 << 20 // far longer than the test allows
	cfg.VMs[0].Workload = &slowWorkload{inner: cfg.VMs[0].Workload}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	results, err := Run(ctx, []Job{{Label: "slow", Cfg: cfg}}, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if !errors.Is(results[0].Err, context.Canceled) {
		t.Fatalf("job error = %v, want context.Canceled", results[0].Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %s; should stop within an epoch", elapsed)
	}
}

// panicWorkload explodes on its first step.
type panicWorkload struct{ inner workload.Workload }

func (p panicWorkload) Profile() workload.Profile { return p.inner.Profile() }
func (p panicWorkload) Init(os *guestos.OS) error { return p.inner.Init(os) }
func (p panicWorkload) Step(os *guestos.OS) (uint64, bool) {
	panic("poisoned step")
}

// TestPanicIsolation: one poisoned job reports ErrJobPanicked while its
// siblings complete normally.
func TestPanicIsolation(t *testing.T) {
	jobs := microBatch(t, 3)
	jobs[1].Cfg.VMs[0].Workload = panicWorkload{inner: jobs[1].Cfg.VMs[0].Workload}

	results, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Run error = %v; job failures must not abort the batch", err)
	}
	if !errors.Is(results[1].Err, ErrJobPanicked) {
		t.Fatalf("poisoned job error = %v, want ErrJobPanicked", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("sibling job %d failed: %v", i, results[i].Err)
		}
		if results[i].Res == nil {
			t.Errorf("sibling job %d has no result", i)
		}
	}
}

// TestBatchSeedDerivation: jobs with Seed zero draw distinct per-job
// seeds from BatchSeed, reproducibly across runs and worker counts.
func TestBatchSeedDerivation(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 64; i++ {
		s := DeriveSeed(42, i)
		if s == 0 {
			t.Fatalf("DeriveSeed(42, %d) = 0; zero seeds are reserved", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed(42, %d) collides with index %d", i, prev)
		}
		seen[s] = i
	}
	if DeriveSeed(42, 0) != DeriveSeed(42, 0) {
		t.Fatal("DeriveSeed is not stable")
	}

	batch := func(workers int) []Result {
		jobs := microBatch(t, 4)
		for i := range jobs {
			jobs[i].Cfg.Seed = 0
			jobs[i].Cfg.VMs[0].Workload = mustWorkload(t, "memlat", DeriveSeed(7, i))
		}
		results, err := Run(context.Background(), jobs, Options{Workers: workers, BatchSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	one, eight := batch(1), batch(8)
	for i := range one {
		if one[i].Err != nil || eight[i].Err != nil {
			t.Fatalf("job %d errored: %v / %v", i, one[i].Err, eight[i].Err)
		}
		if !reflect.DeepEqual(one[i].Res, eight[i].Res) {
			t.Errorf("job %d: BatchSeed results differ across worker counts", i)
		}
	}
	if reflect.DeepEqual(one[0].Res, one[1].Res) {
		t.Error("distinct derived seeds produced identical results")
	}
}

// TestDeriveSeedPopulation hardens seed derivation for fleet-scale
// populations: 100k derived seeds (batch seeds 0..9 × indices 0..9999)
// must be pairwise distinct, and the low bits must look independent of
// the index — an additive-only derivation fails both (consecutive
// indices differ by a constant, so low bits cycle with period 2^k).
func TestDeriveSeedPopulation(t *testing.T) {
	const batches, per = 10, 10000
	seen := make(map[uint64][2]int, batches*per)
	var lowBitOnes [8]int // popcount of bit b over the whole population
	parityMatch := 0      // how often seed bit 0 equals index bit 0
	for b := 0; b < batches; b++ {
		for i := 0; i < per; i++ {
			s := DeriveSeed(uint64(b), i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("DeriveSeed(%d,%d) == DeriveSeed(%d,%d) == %#x",
					b, i, prev[0], prev[1], s)
			}
			seen[s] = [2]int{b, i}
			for bit := 0; bit < 8; bit++ {
				lowBitOnes[bit] += int((s >> bit) & 1)
			}
			if (s^uint64(i))&1 == 0 {
				parityMatch++
			}
		}
	}
	total := batches * per
	// Each low bit should be set ~50% of the time; 4 standard deviations
	// of a fair coin over 100k draws is ~0.63%, allow 2%.
	for bit, ones := range lowBitOnes {
		frac := float64(ones) / float64(total)
		if frac < 0.48 || frac > 0.52 {
			t.Errorf("bit %d set in %.4f of derived seeds, want ~0.5", bit, frac)
		}
	}
	// Seed parity must not track index parity.
	if frac := float64(parityMatch) / float64(total); frac < 0.48 || frac > 0.52 {
		t.Errorf("seed bit0 matches index bit0 in %.4f of draws, want ~0.5", frac)
	}
}

// TestMix64Bijection spot-checks that Mix64 is collision-free on a
// dense low range and on the DeriveSeed golden-weyl lattice — the two
// input families the repo feeds it.
func TestMix64Bijection(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<15; i++ {
		for _, in := range []uint64{i, i * 0x9e3779b97f4a7c15} {
			out := Mix64(in)
			if prev, dup := seen[out]; dup && prev != in {
				t.Fatalf("Mix64(%#x) == Mix64(%#x) == %#x", in, prev, out)
			}
			seen[out] = in
		}
	}
}

func mustWorkload(t testing.TB, name string, seed uint64) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name, workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestPoolStreaming exercises the Submit/Wait path directly, including
// the monotone serialized progress callback.
func TestPoolStreaming(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	pool := NewPool(context.Background(), Options{
		Workers: 4,
		Progress: func(done, submitted int, r Result) {
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
		},
	})
	jobs := microBatch(t, 5)
	futures := make([]*Future, len(jobs))
	for i, j := range jobs {
		futures[i] = pool.Submit(j.Label, j.Cfg)
	}
	for i, f := range futures {
		res, sys, err := f.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if res == nil || sys == nil {
			t.Fatalf("job %d: nil result/system", i)
		}
		if f.Label() != jobs[i].Label {
			t.Fatalf("job %d label %q, want %q", i, f.Label(), jobs[i].Label)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != len(jobs) {
		t.Fatalf("progress fired %d times, want %d", len(dones), len(jobs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done counts %v are not monotone", dones)
		}
	}
}
