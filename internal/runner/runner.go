// Package runner executes batches of independent HeteroOS simulations
// concurrently. Every paper figure is a sweep of single-system runs —
// apps × modes × capacity ratios — with no shared state between cells,
// so the whole registry is embarrassingly parallel. The runner turns
// that into throughput: jobs go onto a bounded worker pool
// (GOMAXPROCS-wide by default), run under context cancellation with
// per-job panic isolation, and come back in deterministic input order
// regardless of worker count or completion order.
//
// Two entry points share the machinery:
//
//   - Run executes a prebuilt []Job slice and returns []Result aligned
//     index-for-index with the input — the batch-first core API.
//   - Pool/Future stream submissions for callers that interleave
//     building and collecting (the experiment sweeps): Submit returns
//     immediately, Future.Wait blocks for that one job.
//
// Determinism: a simulation's outcome is a pure function of its
// core.Config (every RNG stream derives from Config.Seed), so parallel
// execution yields byte-identical results to a serial loop. Jobs that
// leave Seed zero can draw a per-job seed derived from Options.BatchSeed
// and the submission index, which is equally stable across worker
// counts.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/obs"
)

// ErrJobPanicked wraps a panic raised inside one job's simulation. The
// panic is confined to that job: its Result carries the error (with the
// recovered value and stack) while sibling jobs run to completion.
var ErrJobPanicked = errors.New("runner: job panicked")

// Job is one named simulation: a complete system configuration plus a
// label for progress reporting and error attribution.
type Job struct {
	Label string
	Cfg   core.Config
}

// Result is the outcome of one Job, reported at the job's input index.
type Result struct {
	Label string
	// Res is the first VM's result — the single-VM convenience every
	// sweep cell uses. Nil when Err is set.
	Res *core.VMResult
	// Sys is the completed system; multi-VM consumers fetch per-VM
	// results from it. Nil when the system never booted.
	Sys *core.System
	// Err is nil on success. It wraps ErrJobPanicked for a panicking
	// job, carries the context error for jobs cancelled before or
	// during execution, and surfaces config/run errors otherwise.
	Err error
}

// Options tunes a batch.
type Options struct {
	// Workers bounds concurrent simulations; <=0 means GOMAXPROCS.
	Workers int
	// BatchSeed, when non-zero, assigns jobs whose Cfg.Seed is zero a
	// per-job seed derived from it and the job's submission index, so a
	// batch is reproducible from one number independent of worker
	// count.
	BatchSeed uint64
	// Progress, when set, is invoked after each job completes (in
	// completion order, serialized) with the number of finished jobs,
	// the number submitted so far, and that job's result.
	Progress func(done, submitted int, r Result)
	// NewObs, when set, builds a per-job observability handle for jobs
	// whose Cfg.Obs is nil, called synchronously at submission (in
	// submission order) with the job's label and resolved seed so
	// exporters can tag each run's events and metrics with its
	// identity. Jobs that arrive with Cfg.Obs set keep their handle.
	NewObs func(label string, seed uint64) *obs.Obs
	// Obs, when set (and NewObs is not), is the batch's parent handle:
	// each job whose Cfg.Obs is nil receives Obs.JobScope(label), so the
	// jobs' metrics land in per-job child scopes of one registry tree and
	// the parent's Snapshot/Rollup aggregate the whole batch. Scope
	// creation is synchronized; take the parent snapshot only after the
	// batch completes (instrument updates are per-job and lock-free).
	Obs *obs.Obs
	// ProfileEpochs turns on the epoch phase profiler for jobs that end
	// up with a handle (their own, NewObs-built, or a JobScope of Obs).
	ProfileEpochs bool
	// NewBackend, when set, selects the machine-model backend for jobs
	// whose Cfg.Backend is nil. Like NewObs it is called synchronously at
	// submission, in submission order, so per-job backend state (e.g. a
	// trace recorder's output file) can be derived deterministically from
	// the label and seed. Jobs that arrive with Cfg.Backend set keep it.
	NewBackend func(label string, seed uint64) memsim.Builder
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Mix64 is the splitmix64 output finalizer: a full-avalanche bijection
// on uint64, so distinct inputs always map to distinct outputs and
// every output bit depends on every input bit. It is the mixing core
// behind DeriveSeed and the fleet host-seed derivation; use it whenever
// a family of decorrelated seeds must be carved out of one root seed.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed maps a batch seed and a job index to that job's simulation
// seed via a splitmix64 step — stable across runs and worker counts.
// The golden-weyl increment spaces consecutive indices far apart in the
// input domain before Mix64 avalanches them; zero is remapped because
// zero seeds mean "derive from the batch seed" throughout the tree.
func DeriveSeed(batchSeed uint64, index int) uint64 {
	z := Mix64(batchSeed + uint64(index+1)*0x9e3779b97f4a7c15)
	if z == 0 {
		z = 1
	}
	return z
}

// Run executes jobs on a bounded worker pool and returns results in
// input order. A cancelled context stops the batch promptly: in-flight
// simulations return within one epoch (core.RunContext checks the
// context per epoch), jobs not yet started are flagged with the context
// error, and Run's second return value reports ctx.Err(). Errors —
// including per-job panics — never abort sibling jobs.
func Run(ctx context.Context, jobs []Job, opts Options) ([]Result, error) {
	pool := NewPool(ctx, opts)
	futures := make([]*Future, len(jobs))
	for i, j := range jobs {
		futures[i] = pool.Submit(j.Label, j.Cfg)
	}
	results := make([]Result, len(jobs))
	for i, f := range futures {
		res, sys, err := f.Wait()
		results[i] = Result{Label: f.Label(), Res: res, Sys: sys, Err: err}
	}
	return results, ctx.Err()
}

// Pool is a bounded-concurrency simulation executor for streaming
// submission. It needs no Close: each job's goroutine exits once the
// job finishes or the pool's context is cancelled.
type Pool struct {
	ctx  context.Context
	opts Options
	// sem bounds concurrently executing simulations.
	sem chan struct{}

	mu        sync.Mutex
	submitted int
	done      int
	// scopeUses deduplicates JobScope labels: two jobs with the same
	// label must not share one child registry (instrument updates are
	// lock-free per job), so repeats get a "#n" suffix.
	scopeUses map[string]int
}

// NewPool builds a pool bound to ctx.
func NewPool(ctx context.Context, opts Options) *Pool {
	return &Pool{ctx: ctx, opts: opts, sem: make(chan struct{}, opts.workers())}
}

// Future is one submitted job's pending result.
type Future struct {
	label string
	ch    chan struct{}
	res   *core.VMResult
	sys   *core.System
	err   error
}

// Label returns the job's label.
func (f *Future) Label() string { return f.label }

// Wait blocks until the job finishes (or the pool's context is
// cancelled) and returns the first VM's result, the completed system,
// and the job's error.
func (f *Future) Wait() (*core.VMResult, *core.System, error) {
	<-f.ch
	return f.res, f.sys, f.err
}

// Err waits for the job and returns only its error.
func (f *Future) Err() error {
	<-f.ch
	return f.err
}

// Submit queues one simulation and returns immediately. The job runs as
// soon as a worker slot frees up; a cancelled pool context resolves the
// future with the context error instead.
func (p *Pool) Submit(label string, cfg core.Config) *Future {
	f := &Future{label: label, ch: make(chan struct{})}
	p.mu.Lock()
	index := p.submitted
	p.submitted++
	p.mu.Unlock()
	if p.opts.BatchSeed != 0 && cfg.Seed == 0 {
		cfg.Seed = DeriveSeed(p.opts.BatchSeed, index)
	}
	if p.opts.NewObs != nil && cfg.Obs == nil {
		cfg.Obs = p.opts.NewObs(label, cfg.Seed)
		if cfg.Obs != nil && cfg.Obs.RunTag() == "" {
			cfg.Obs.SetRunTag(label)
		}
	} else if p.opts.Obs != nil && cfg.Obs == nil {
		scopeLabel := label
		p.mu.Lock()
		if p.scopeUses == nil {
			p.scopeUses = make(map[string]int)
		}
		p.scopeUses[label]++
		if n := p.scopeUses[label]; n > 1 {
			scopeLabel = fmt.Sprintf("%s#%d", label, n)
		}
		p.mu.Unlock()
		cfg.Obs = p.opts.Obs.JobScope(scopeLabel)
		cfg.Obs.SetRunTag(label)
	}
	if p.opts.ProfileEpochs && cfg.Obs != nil {
		cfg.ProfileEpochs = true
	}
	if p.opts.NewBackend != nil && cfg.Backend == nil {
		cfg.Backend = p.opts.NewBackend(label, cfg.Seed)
	}
	p.start(f, func(ctx context.Context) (*core.VMResult, *core.System, error) {
		return execute(ctx, cfg)
	})
	return f
}

// SubmitFunc queues an arbitrary simulation job: fn runs on a worker
// slot under the pool's context with the same panic isolation, bounded
// concurrency, and progress reporting as Config jobs, and its return
// values resolve the future. The scenario engine uses this to run
// scripted multi-VM scenarios through the sweep machinery.
func (p *Pool) SubmitFunc(label string, fn func(ctx context.Context) (*core.VMResult, *core.System, error)) *Future {
	f := &Future{label: label, ch: make(chan struct{})}
	p.mu.Lock()
	p.submitted++
	p.mu.Unlock()
	p.start(f, fn)
	return f
}

// start launches the worker goroutine shared by Submit and SubmitFunc.
func (p *Pool) start(f *Future, fn func(ctx context.Context) (*core.VMResult, *core.System, error)) {
	go func() {
		defer close(f.ch)
		select {
		case p.sem <- struct{}{}:
			defer func() { <-p.sem }()
			if err := p.ctx.Err(); err != nil {
				f.err = err
				break
			}
			f.res, f.sys, f.err = guard(p.ctx, fn)
		case <-p.ctx.Done():
			f.err = p.ctx.Err()
		}
		p.progress(f)
	}()
}

// guard converts a panic anywhere inside fn into a per-job error.
func guard(ctx context.Context, fn func(ctx context.Context) (*core.VMResult, *core.System, error)) (res *core.VMResult, sys *core.System, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, sys, err = nil, nil, fmt.Errorf("%w: %v\n%s", ErrJobPanicked, r, debug.Stack())
		}
	}()
	return fn(ctx)
}

func (p *Pool) progress(f *Future) {
	p.mu.Lock()
	p.done++
	done, submitted := p.done, p.submitted
	cb := p.opts.Progress
	if cb != nil {
		// Invoke under the lock so callbacks are serialized and see a
		// monotone done count.
		cb(done, submitted, Result{Label: f.label, Res: f.res, Sys: f.sys, Err: f.err})
	}
	p.mu.Unlock()
}

// execute runs one simulation end to end; guard (in start) converts a
// panic anywhere in the stack into a per-job error.
func execute(ctx context.Context, cfg core.Config) (res *core.VMResult, sys *core.System, err error) {
	sys, err = core.NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := sys.RunContext(ctx); err != nil {
		return nil, sys, err
	}
	if err := sys.CheckInvariants(); err != nil {
		return nil, sys, err
	}
	return &sys.VMs[0].Res, sys, nil
}
