package drf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, caps, weights []float64) *Allocator {
	t.Helper()
	a, err := New(caps, weights)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := New([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := New([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := New([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestGrantAndShares(t *testing.T) {
	// Paper configuration: FastMem weight 2, SlowMem weight 1.
	a := mustNew(t, []float64{4, 8}, []float64{2, 1})
	a.AddClient(1)
	a.AddClient(2)
	if err := a.Grant(1, []float64{1, 4}); err != nil {
		t.Fatal(err)
	}
	// Client 1: fast share 2*1/4 = 0.5, slow share 1*4/8 = 0.5.
	s, _ := a.DominantShare(1)
	if math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("dominant share = %v", s)
	}
	if err := a.Grant(2, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	// Client 2: fast 2*3/4 = 1.5 dominant over slow 0.5.
	r, _ := a.DominantResource(2)
	if r != 0 {
		t.Fatalf("dominant resource = %d", r)
	}
	// Capacity exhausted.
	if err := a.Grant(1, []float64{1, 0}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
}

func TestReleaseAndRemove(t *testing.T) {
	a := mustNew(t, []float64{10, 10}, []float64{1, 1})
	a.AddClient(1)
	a.Grant(1, []float64{5, 5})
	if err := a.Release(1, []float64{2, 0}); err != nil {
		t.Fatal(err)
	}
	if got := a.Available(0); got != 7 {
		t.Fatalf("available = %v", got)
	}
	if err := a.Release(1, []float64{100, 0}); err == nil {
		t.Fatal("over-release accepted")
	}
	if err := a.RemoveClient(1); err != nil {
		t.Fatal(err)
	}
	if got := a.Available(0); got != 10 {
		t.Fatalf("available after remove = %v", got)
	}
	if err := a.RemoveClient(1); !errors.Is(err, ErrUnknownClient) {
		t.Fatal("double remove accepted")
	}
}

func TestUnknownClient(t *testing.T) {
	a := mustNew(t, []float64{1}, []float64{1})
	if err := a.Grant(9, []float64{1}); !errors.Is(err, ErrUnknownClient) {
		t.Fatal("grant to unknown client accepted")
	}
	if _, err := a.DominantShare(9); !errors.Is(err, ErrUnknownClient) {
		t.Fatal("share of unknown client accepted")
	}
}

func TestPickNextPrefersLowestShare(t *testing.T) {
	a := mustNew(t, []float64{100, 100}, []float64{1, 1})
	a.AddClient(1)
	a.AddClient(2)
	a.Grant(1, []float64{50, 0})
	demands := map[ClientID][]float64{
		1: {1, 0},
		2: {0, 1},
	}
	id, ok := a.PickNext(demands)
	if !ok || id != 2 {
		t.Fatalf("picked %d, want 2", id)
	}
}

func TestRunToSaturationClassicDRF(t *testing.T) {
	// The canonical DRF example (Ghodsi et al. §4): 9 CPUs, 18 GB;
	// client A demands <1,4>, client B demands <3,1>. DRF converges to
	// A=3 tasks, B=2 tasks.
	a := mustNew(t, []float64{9, 18}, []float64{1, 1})
	a.AddClient(1)
	a.AddClient(2)
	grants := a.RunToSaturation(map[ClientID][]float64{
		1: {1, 4},
		2: {3, 1},
	}, 1000)
	if grants[1] != 3 || grants[2] != 2 {
		t.Fatalf("grants = %v, want map[1:3 2:2]", grants)
	}
}

func TestWeightsChangeDominance(t *testing.T) {
	// Small FastMem would never be dominant unweighted; the paper's
	// weight 2 makes modest FastMem holdings register.
	a := mustNew(t, []float64{4, 64}, []float64{2, 1})
	a.AddClient(1)
	a.Grant(1, []float64{1, 8})
	// fast: 2*1/4 = 0.5; slow: 8/64 = 0.125.
	r, _ := a.DominantResource(1)
	if r != 0 {
		t.Fatal("weighting failed to make FastMem dominant")
	}
	// Unweighted, slow would tie at equal shares only with much more slow.
	b := mustNew(t, []float64{4, 64}, []float64{1, 1})
	b.AddClient(1)
	b.Grant(1, []float64{1, 32})
	r, _ = b.DominantResource(1)
	if r != 1 {
		t.Fatal("expected SlowMem dominant unweighted")
	}
}

func TestOverCommitted(t *testing.T) {
	a := mustNew(t, []float64{10, 10}, []float64{1, 1})
	a.AddClient(1)
	a.AddClient(2)
	a.Grant(1, []float64{9, 0}) // share 0.9 > fair 0.5
	a.Grant(2, []float64{1, 1}) // share 0.1
	over := a.OverCommitted()
	if len(over) != 1 || over[0] != 1 {
		t.Fatalf("overcommitted = %v", over)
	}
}

func TestParetoEfficiencyProperty(t *testing.T) {
	// Property: after RunToSaturation, no client's unit demand still
	// fits — i.e. no one can be given more without taking from another.
	f := func(d1a, d1b, d2a, d2b uint8) bool {
		da := []float64{float64(d1a%5) + 1, float64(d1b%5) + 1}
		db := []float64{float64(d2a%5) + 1, float64(d2b%5) + 1}
		a := mustNewQuick([]float64{50, 70}, []float64{2, 1})
		a.AddClient(1)
		a.AddClient(2)
		a.RunToSaturation(map[ClientID][]float64{1: da, 2: db}, 10000)
		return !a.fits(da) && !a.fits(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mustNewQuick(caps, weights []float64) *Allocator {
	a, err := New(caps, weights)
	if err != nil {
		panic(err)
	}
	return a
}

func TestStrategyProofnessProperty(t *testing.T) {
	// Property (Ghodsi et al.): inflating a demand vector never
	// increases the resources a client can usefully consume. The theorem
	// is stated for divisible resources, so the test fills progressively
	// with fine-grained units (1/64 of a task) — with coarse indivisible
	// grants a lying client can scoop an unallocatable tail, a known
	// artifact of task-granular DRF rather than a fairness violation.
	const grain = 64
	f := func(d1a, d1b, d2a, d2b, liea, lieb uint8) bool {
		true1 := []float64{float64(d1a%4) + 1, float64(d1b%4) + 1}
		d2 := []float64{float64(d2a%4) + 1, float64(d2b%4) + 1}
		lie := []float64{true1[0] + float64(liea%4), true1[1] + float64(lieb%4)}
		fine := func(v []float64) []float64 {
			return []float64{v[0] / grain, v[1] / grain}
		}

		honest := mustNewQuick([]float64{60, 60}, []float64{2, 1})
		honest.AddClient(1)
		honest.AddClient(2)
		honest.RunToSaturation(map[ClientID][]float64{1: fine(true1), 2: fine(d2)}, 100000)
		honestAlloc, _ := honest.Allocation(1)
		honestTasks := math.Inf(1)
		for j := range honestAlloc {
			honestTasks = math.Min(honestTasks, honestAlloc[j]/true1[j])
		}

		lying := mustNewQuick([]float64{60, 60}, []float64{2, 1})
		lying.AddClient(1)
		lying.AddClient(2)
		lying.RunToSaturation(map[ClientID][]float64{1: fine(lie), 2: fine(d2)}, 100000)
		alloc, _ := lying.Allocation(1)
		// Usable tasks under the true demand from the lying allocation.
		tasks := math.Inf(1)
		for j := range alloc {
			tasks = math.Min(tasks, alloc[j]/true1[j])
		}
		// Slack: at saturation the lying client may scoop a tail the
		// competitor's (larger) unit no longer fits into; that tail is
		// bounded by one competitor unit plus one own unit of resources,
		// i.e. well under 8 fine-grained task units here.
		return tasks <= honestTasks+8.0/grain+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShareGuaranteeProperty(t *testing.T) {
	// Property: with n clients of positive demands, each saturated
	// client ends with dominant share >= 1/n - epsilon (share guarantee).
	f := func(seeds [6]uint8) bool {
		a := mustNewQuick([]float64{40, 40}, []float64{1, 1})
		demands := map[ClientID][]float64{}
		n := 3
		for i := 0; i < n; i++ {
			id := ClientID(i + 1)
			a.AddClient(id)
			demands[id] = []float64{float64(seeds[2*i]%3) + 1, float64(seeds[2*i+1]%3) + 1}
		}
		a.RunToSaturation(demands, 10000)
		fair := 1.0 / float64(n)
		for id := range demands {
			s, _ := a.DominantShare(id)
			// Discrete grants: a client may trail the fair point by up
			// to one unit of the largest competing demand (3/40 here).
			unit := 3.0 / 40
			if s+unit+1e-9 < fair {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinReservationFirst(t *testing.T) {
	m, err := NewMaxMin([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	m.AddClient(1, []float64{6})
	m.AddClient(2, []float64{4})
	got := m.Share(map[ClientID][]float64{
		1: {8},
		2: {2},
	})
	// Client 1: 6 reserved + overcommit from client 2's unused 2.
	if got[1][0] != 8 || got[2][0] != 2 {
		t.Fatalf("shares = %v", got)
	}
}

func TestMaxMinOvercommitEven(t *testing.T) {
	m, _ := NewMaxMin([]float64{12})
	m.AddClient(1, []float64{3})
	m.AddClient(2, []float64{3})
	got := m.Share(map[ClientID][]float64{
		1: {10},
		2: {10},
	})
	// 6 reserved total; 6 spare split evenly: 3+3 each.
	if got[1][0] != 6 || got[2][0] != 6 {
		t.Fatalf("shares = %v", got)
	}
}

func TestMaxMinSingleResourceFailureMode(t *testing.T) {
	// The Figure 13 failure: two resources arbitrated independently let
	// a memory-hungry client take the second resource even when the
	// other client reserved it — max-min respects reservations per
	// resource but cannot couple them; DRF can.
	m, _ := NewMaxMin([]float64{4, 8})
	m.AddClient(1, []float64{1, 4}) // Graphchi-like
	m.AddClient(2, []float64{3, 4}) // Metis-like
	got := m.Share(map[ClientID][]float64{
		1: {1, 4},
		2: {3, 8}, // Metis wants all the SlowMem
	})
	// Max-min keeps client 1's reservation (4) but hands every spare
	// SlowMem page to client 2 — with no notion that client 2 already
	// dominates FastMem.
	if got[2][1] != 4 {
		t.Fatalf("metis slow share = %v", got[2][1])
	}
	if got[1][1] != 4 {
		t.Fatalf("graphchi slow share = %v", got[1][1])
	}

	// DRF couples the two: Metis's FastMem dominance throttles its
	// SlowMem draw while Graphchi catches up.
	a := mustNewQuick([]float64{4, 8}, []float64{2, 1})
	a.AddClient(1)
	a.AddClient(2)
	a.RunToSaturation(map[ClientID][]float64{
		1: {0.125, 0.5}, // unit: 1/8 of its <1,4> vector
		2: {0.375, 1.0}, // unit: 1/8 of <3,8>
	}, 100000)
	s1, _ := a.DominantShare(1)
	s2, _ := a.DominantShare(2)
	if s2 > s1*1.6+1e-9 {
		t.Fatalf("DRF shares unbalanced: %v vs %v", s1, s2)
	}
}

func TestMaxMinValidation(t *testing.T) {
	if _, err := NewMaxMin(nil); err == nil {
		t.Fatal("empty accepted")
	}
	m, _ := NewMaxMin([]float64{1})
	if err := m.AddClient(1, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddClient(1, []float64{1}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := m.AddClient(2, []float64{1, 2}); err == nil {
		t.Fatal("bad dimension accepted")
	}
}
