package drf

import "fmt"

// MaxMin is the single-resource max-min fairness baseline the paper's
// VMMs use today (Section 4.2): each resource is shared independently —
// every client is guaranteed its reservation, and unused capacity is
// distributed evenly among clients demanding more (overcommit). Because
// each resource is arbitrated in isolation, fairness can only be
// guaranteed for one memory type at a time, which is exactly the failure
// mode Figure 13 demonstrates.
type MaxMin struct {
	capacity []float64
	reserved map[ClientID][]float64
	order    []ClientID
}

// NewMaxMin builds a max-min arbiter over the given capacities.
func NewMaxMin(capacities []float64) (*MaxMin, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("drf: empty capacities")
	}
	return &MaxMin{
		capacity: append([]float64(nil), capacities...),
		reserved: make(map[ClientID][]float64),
	}, nil
}

// AddClient registers a client with its per-resource reservation (the
// "basic share, or what it paid for").
func (m *MaxMin) AddClient(id ClientID, reservation []float64) error {
	if _, ok := m.reserved[id]; ok {
		return fmt.Errorf("drf: client %d already registered", id)
	}
	if len(reservation) != len(m.capacity) {
		return fmt.Errorf("drf: reservation dimension mismatch")
	}
	m.reserved[id] = append([]float64(nil), reservation...)
	m.order = append(m.order, id)
	return nil
}

// Share computes the max-min allocation of each resource independently
// given the clients' demands: first every client receives
// min(demand, reservation); remaining capacity is progressively filled
// among unsatisfied clients.
func (m *MaxMin) Share(demands map[ClientID][]float64) map[ClientID][]float64 {
	out := make(map[ClientID][]float64, len(m.order))
	for _, id := range m.order {
		out[id] = make([]float64, len(m.capacity))
	}
	for j := range m.capacity {
		remaining := m.capacity[j]
		unmet := make(map[ClientID]float64)
		// Guaranteed shares first.
		for _, id := range m.order {
			d := 0.0
			if dv, ok := demands[id]; ok {
				d = dv[j]
			}
			g := min2(d, m.reserved[id][j])
			g = min2(g, remaining)
			out[id][j] = g
			remaining -= g
			if d > g {
				unmet[id] = d - g
			}
		}
		// Progressive filling of the overcommit pool.
		for remaining > 1e-9 && len(unmet) > 0 {
			share := remaining / float64(len(unmet))
			progressed := false
			for _, id := range m.order {
				need, ok := unmet[id]
				if !ok {
					continue
				}
				g := min2(share, need)
				out[id][j] += g
				remaining -= g
				if need-g <= 1e-9 {
					delete(unmet, id)
				} else {
					unmet[id] = need - g
				}
				if g > 0 {
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
	}
	return out
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
