package drf_test

import (
	"fmt"

	"heteroos/internal/drf"
)

// The paper's configuration: FastMem and SlowMem as two resources with
// weights 2 and 1, shared by two guest VMs with different demand mixes.
func ExampleAllocator() {
	// 4 GiB FastMem, 8 GiB SlowMem (in GiB units), FastMem weighted 2x.
	a, err := drf.New([]float64{4, 8}, []float64{2, 1})
	if err != nil {
		panic(err)
	}
	a.AddClient(1) // GraphChi VM: SlowMem-hungry
	a.AddClient(2) // Metis VM: FastMem-hungry

	grants := a.RunToSaturation(map[drf.ClientID][]float64{
		1: {0.25, 1.0}, // per task: 0.25 GiB fast, 1 GiB slow
		2: {0.75, 0.5}, // per task: 0.75 GiB fast, 0.5 GiB slow
	}, 1000)

	s1, _ := a.DominantShare(1)
	s2, _ := a.DominantShare(2)
	r1, _ := a.DominantResource(1)
	r2, _ := a.DominantResource(2)
	res := []string{"FastMem", "SlowMem"}
	fmt.Printf("VM1: %d tasks, dominant %s share %.2f\n", grants[1], res[r1], s1)
	fmt.Printf("VM2: %d tasks, dominant %s share %.2f\n", grants[2], res[r2], s2)
	// Output:
	// VM1: 7 tasks, dominant FastMem share 0.88
	// VM2: 2 tasks, dominant FastMem share 0.75
}

// Max-min shares each resource independently — it cannot couple a VM's
// FastMem dominance to its SlowMem draw, which is the paper's Figure 13
// failure mode.
func ExampleMaxMin() {
	m, err := drf.NewMaxMin([]float64{8})
	if err != nil {
		panic(err)
	}
	m.AddClient(1, []float64{3}) // reserved 3 GiB
	m.AddClient(2, []float64{3})

	shares := m.Share(map[drf.ClientID][]float64{
		1: {4}, // wants a little beyond its reservation
		2: {8}, // wants everything
	})
	fmt.Printf("VM1 gets %.0f GiB, VM2 gets %.0f GiB\n", shares[1][0], shares[2][0])
	// Output:
	// VM1 gets 4 GiB, VM2 gets 4 GiB
}
