// Package drf implements the multi-resource fair-sharing policies of
// Section 4.2: weighted Dominant Resource Fairness (Ghodsi et al.,
// NSDI'11) extended with per-resource weights as in the paper's
// Algorithm 1, and the single-resource max-min baseline it replaces.
//
// Each memory type is a resource. A guest VM's dominant resource is the
// one of which it holds the largest weighted share; DRF grants the next
// allocation to the VM with the smallest dominant share. The paper uses
// static weights (FastMem 2, SlowMem 1) so that small FastMem capacities
// still register as dominant.
package drf

import (
	"errors"
	"fmt"
)

// ErrUnknownClient is returned for operations on unregistered clients.
var ErrUnknownClient = errors.New("drf: unknown client")

// ErrInsufficient is returned when a grant would exceed capacity.
var ErrInsufficient = errors.New("drf: insufficient capacity")

// ClientID identifies one guest VM.
type ClientID int32

// Allocator is a weighted-DRF allocator over m resources.
type Allocator struct {
	capacity []float64 // R: total capacities
	weights  []float64 // per-resource dominant-share weights
	consumed []float64 // C: currently granted
	clients  map[ClientID]*client
	order    []ClientID // registration order for deterministic iteration
}

type client struct {
	alloc []float64 // VM_i: current allocation vector
}

// New builds an allocator. capacities and weights must have equal,
// positive length; weights must be positive.
func New(capacities, weights []float64) (*Allocator, error) {
	if len(capacities) == 0 || len(capacities) != len(weights) {
		return nil, fmt.Errorf("drf: capacities/weights shape mismatch")
	}
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("drf: non-positive weight for resource %d", i)
		}
		if capacities[i] < 0 {
			return nil, fmt.Errorf("drf: negative capacity for resource %d", i)
		}
	}
	return &Allocator{
		capacity: append([]float64(nil), capacities...),
		weights:  append([]float64(nil), weights...),
		consumed: make([]float64, len(capacities)),
		clients:  make(map[ClientID]*client),
	}, nil
}

// Resources reports the number of resource dimensions.
func (a *Allocator) Resources() int { return len(a.capacity) }

// AddClient registers a VM with zero allocation.
func (a *Allocator) AddClient(id ClientID) error {
	if _, ok := a.clients[id]; ok {
		return fmt.Errorf("drf: client %d already registered", id)
	}
	a.clients[id] = &client{alloc: make([]float64, len(a.capacity))}
	a.order = append(a.order, id)
	return nil
}

// RemoveClient releases a VM's entire allocation.
func (a *Allocator) RemoveClient(id ClientID) error {
	c, ok := a.clients[id]
	if !ok {
		return ErrUnknownClient
	}
	for i, v := range c.alloc {
		a.consumed[i] -= v
	}
	delete(a.clients, id)
	for i, oid := range a.order {
		if oid == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	return nil
}

// DominantShare computes s_i = max_j (w_j * vm_{i,j} / r_j): the largest
// weighted share the client holds of any resource.
func (a *Allocator) DominantShare(id ClientID) (float64, error) {
	c, ok := a.clients[id]
	if !ok {
		return 0, ErrUnknownClient
	}
	return a.dominantShare(c), nil
}

func (a *Allocator) dominantShare(c *client) float64 {
	s := 0.0
	for j, v := range c.alloc {
		if a.capacity[j] == 0 {
			continue
		}
		if share := a.weights[j] * v / a.capacity[j]; share > s {
			s = share
		}
	}
	return s
}

// DominantResource reports which resource is the client's dominant one.
func (a *Allocator) DominantResource(id ClientID) (int, error) {
	c, ok := a.clients[id]
	if !ok {
		return 0, ErrUnknownClient
	}
	best, bestShare := 0, -1.0
	for j, v := range c.alloc {
		if a.capacity[j] == 0 {
			continue
		}
		if share := a.weights[j] * v / a.capacity[j]; share > bestShare {
			best, bestShare = j, share
		}
	}
	return best, nil
}

// Allocation returns a copy of the client's allocation vector.
func (a *Allocator) Allocation(id ClientID) ([]float64, error) {
	c, ok := a.clients[id]
	if !ok {
		return nil, ErrUnknownClient
	}
	return append([]float64(nil), c.alloc...), nil
}

// Available reports remaining capacity of resource j.
func (a *Allocator) Available(j int) float64 { return a.capacity[j] - a.consumed[j] }

// Grant gives demand to id unconditionally if capacity allows
// (Algorithm 1's C + D_i <= R check). It does not arbitrate between
// competing clients — use PickNext for that.
func (a *Allocator) Grant(id ClientID, demand []float64) error {
	c, ok := a.clients[id]
	if !ok {
		return ErrUnknownClient
	}
	if len(demand) != len(a.capacity) {
		return fmt.Errorf("drf: demand dimension %d != %d", len(demand), len(a.capacity))
	}
	for j, d := range demand {
		if d < 0 {
			return fmt.Errorf("drf: negative demand for resource %d", j)
		}
		if a.consumed[j]+d > a.capacity[j]+1e-9 {
			return fmt.Errorf("%w: resource %d (want %v, free %v)",
				ErrInsufficient, j, d, a.Available(j))
		}
	}
	for j, d := range demand {
		a.consumed[j] += d
		c.alloc[j] += d
	}
	return nil
}

// Release returns part of a client's allocation.
func (a *Allocator) Release(id ClientID, amount []float64) error {
	c, ok := a.clients[id]
	if !ok {
		return ErrUnknownClient
	}
	for j, d := range amount {
		if d < 0 || d > c.alloc[j]+1e-9 {
			return fmt.Errorf("drf: release of %v exceeds allocation %v (resource %d)", d, c.alloc[j], j)
		}
	}
	for j, d := range amount {
		c.alloc[j] -= d
		a.consumed[j] -= d
	}
	return nil
}

// PickNext implements the DRF arbitration step: among the clients in
// demands whose demand still fits, return the one with the lowest
// dominant share (ties broken by registration order for determinism).
// Returns false when no demand fits.
func (a *Allocator) PickNext(demands map[ClientID][]float64) (ClientID, bool) {
	best := ClientID(-1)
	bestShare := 0.0
	found := false
	for _, id := range a.order {
		d, ok := demands[id]
		if !ok {
			continue
		}
		if !a.fits(d) {
			continue
		}
		s := a.dominantShare(a.clients[id])
		if !found || s < bestShare {
			best, bestShare, found = id, s, true
		}
	}
	return best, found
}

func (a *Allocator) fits(demand []float64) bool {
	for j, d := range demand {
		if a.consumed[j]+d > a.capacity[j]+1e-9 {
			return false
		}
	}
	return true
}

// RunToSaturation repeatedly applies PickNext+Grant with each client's
// unit demand vector until nothing fits, returning the number of grants
// per client. This is the textbook progressive-filling execution of DRF
// used by the property tests and the Figure 13 arbitration.
func (a *Allocator) RunToSaturation(unitDemands map[ClientID][]float64, maxSteps int) map[ClientID]int {
	grants := make(map[ClientID]int)
	for step := 0; step < maxSteps; step++ {
		id, ok := a.PickNext(unitDemands)
		if !ok {
			break
		}
		if err := a.Grant(id, unitDemands[id]); err != nil {
			break
		}
		grants[id]++
	}
	return grants
}

// OverCommitted reports clients whose dominant share exceeds the fair
// share 1/n; the paper's ballooning reclaims from them first
// (Algorithm 1's else-branch: "reclaim guest i's overcommit pages").
func (a *Allocator) OverCommitted() []ClientID {
	n := len(a.order)
	if n == 0 {
		return nil
	}
	fair := 1.0 / float64(n)
	var out []ClientID
	for _, id := range a.order {
		if a.dominantShare(a.clients[id]) > fair+1e-9 {
			out = append(out, id)
		}
	}
	return out
}
