package drf

import (
	"fmt"

	"heteroos/internal/snapshot"
)

// Snapshot serializes the allocator's mutable state: consumption, and
// every client's allocation vector in registration order (PickNext
// breaks ties by that order, so it is behavioural state).
func (a *Allocator) Snapshot(e *snapshot.Encoder) {
	e.U32(uint32(len(a.capacity)))
	e.F64s(a.consumed)
	e.U32(uint32(len(a.order)))
	for _, id := range a.order {
		e.U32(uint32(id))
		e.F64s(a.clients[id].alloc)
	}
}

// Restore overwrites the allocator's clients and consumption from a
// snapshot taken on an allocator with the same resource dimensions.
// Capacities and weights are construction-time parameters and are not
// restored.
func (a *Allocator) Restore(d *snapshot.Decoder) error {
	if n := int(d.U32()); n != len(a.capacity) {
		return fmt.Errorf("drf: snapshot has %d resources, allocator has %d", n, len(a.capacity))
	}
	a.consumed = d.F64s()
	n := int(d.U32())
	a.clients = make(map[ClientID]*client, n)
	a.order = a.order[:0]
	for i := 0; i < n; i++ {
		id := ClientID(d.U32())
		alloc := d.F64s()
		if d.Err() == nil && len(alloc) != len(a.capacity) {
			return fmt.Errorf("drf: snapshot client %d allocation has %d resources, want %d",
				id, len(alloc), len(a.capacity))
		}
		a.clients[id] = &client{alloc: alloc}
		a.order = append(a.order, id)
	}
	return d.Err()
}
