// Package exp reproduces every table and figure of the paper's
// evaluation: each experiment builds the corresponding system
// configurations through internal/core, runs them, and renders the same
// rows/series the paper reports as a text table.
//
// Absolute numbers come from the simulator, not the authors' testbed;
// the reproduction target is the shape — orderings, approximate factors,
// crossover locations — recorded against the paper in EXPERIMENTS.md.
//
// Every sweep-style experiment executes through internal/runner: the
// figure function submits all of its cells up front, the runner fans
// them out across a bounded worker pool, and the table is assembled
// from the futures in submission order — so output is byte-identical to
// a serial loop at any worker count, and a cancelled context aborts the
// sweep within one epoch per in-flight simulation.
package exp

import (
	"context"
	"fmt"
	"sort"

	"heteroos/internal/core"
	"heteroos/internal/memsim"
	"heteroos/internal/metrics"
	"heteroos/internal/obs"
	"heteroos/internal/policy"
	"heteroos/internal/runner"
	"heteroos/internal/workload"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Quick shrinks sweeps (fewer apps / points) for fast test runs.
	Quick bool
	// Workers bounds concurrent simulations per experiment
	// (<=0: GOMAXPROCS).
	Workers int
	// Progress, when set, is invoked after each simulation of a sweep
	// completes with the counts of finished and submitted cells and the
	// finished cell's label.
	Progress func(done, submitted int, label string)
	// NewObs, when set, is forwarded to the runner: each sweep cell
	// gets its own observability handle built from its label and seed
	// (see runner.Options.NewObs).
	NewObs func(label string, seed uint64) *obs.Obs
	// NewBackend, when set, is forwarded to the runner: each sweep cell
	// prices epochs through the backend this builder factory selects
	// (see runner.Options.NewBackend). nil keeps the analytic default.
	NewBackend func(label string, seed uint64) memsim.Builder
	// ProfileEpochs is forwarded to the runner: cells that receive an
	// observability handle also run the epoch phase profiler.
	ProfileEpochs bool
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Result is one reproduced artifact.
type Result struct {
	ID    string
	Table *metrics.Table
	Notes string
}

// Experiment couples an identifier with its runner. Run executes under
// ctx: cancellation aborts the underlying sweep promptly.
type Experiment struct {
	ID          string
	Description string
	Run         func(ctx context.Context, o Options) (*Result, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Heterogeneous memory characteristics", Table1},
		{"table2", "Datacenter applications", Table2},
		{"table3", "Throttle factors vs latency/bandwidth", Table3},
		{"table4", "Memory intensity of applications (MPKI)", Table4},
		{"table5", "HeteroOS incremental mechanisms", Table5},
		{"table6", "Per-page migration cost vs batch size", Table6},
		{"figure1", "Bandwidth and latency sensitivity (16MB LLC)", Figure1},
		{"figure2", "Intel NVM emulator sensitivity (48MB LLC)", Figure2},
		{"figure3", "FastMem capacity impact", Figure3},
		{"figure4", "Application memory page distribution", Figure4},
		{"figure6", "Memory latency microbenchmark", Figure6},
		{"figure7", "Stream bandwidth microbenchmark", Figure7},
		{"figure8", "VMM-exclusive hotness-tracking and migration cost", Figure8},
		{"figure9", "Impact of OS heterogeneity awareness", Figure9},
		{"figure10", "FastMem allocation miss ratio", Figure10},
		{"figure11", "Impact of HeteroOS-coordinated", Figure11},
		{"figure12", "Gains exclusively from page migrations", Figure12},
		{"figure13", "Impact of multi-VM resource sharing", Figure13},
		{"ext-nvm", "Extension: write-aware migration on NVM-class SlowMem", ExtNVM},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registry identifiers.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// --- shared run plumbing ---

// wcfg is the workload construction config shared by all experiments.
func wcfg(o Options) workload.Config {
	return workload.Config{Seed: o.seed()}
}

// pages converts real bytes to scaled pages.
func pages(bytes int64) uint64 {
	return workload.Config{}.Pages(bytes)
}

// Standard single-VM shape: each guest has 8 GiB SlowMem (Section 5.1)
// and a FastMem capacity the experiment varies.
var (
	slowVM = pages(8 * workload.GiB)
)

// sweep owns one experiment's worker pool. Figures submit every cell
// first (submitOne/submitDefault/submitCfg), then collect results in
// table order — the pool overlaps the simulations in between.
type sweep struct {
	o    Options
	pool *runner.Pool
}

func newSweep(ctx context.Context, o Options) *sweep {
	ropts := runner.Options{Workers: o.Workers, NewObs: o.NewObs,
		NewBackend: o.NewBackend, ProfileEpochs: o.ProfileEpochs}
	if o.Progress != nil {
		ropts.Progress = func(done, submitted int, r runner.Result) {
			o.Progress(done, submitted, r.Label)
		}
	}
	return &sweep{o: o, pool: runner.NewPool(ctx, ropts)}
}

// cell is one pending simulation of a sweep.
type cell struct {
	fut   *runner.Future
	err   error // submission-time failure (e.g. unknown app)
	label string
}

// result waits for the cell's single-VM result.
func (c cell) result() (*core.VMResult, error) {
	if c.err != nil {
		return nil, fmt.Errorf("%s: %w", c.label, c.err)
	}
	res, _, err := c.fut.Wait()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.label, err)
	}
	return res, nil
}

// system waits for the cell's completed system (multi-VM consumers).
func (c cell) system() (*core.System, error) {
	if c.err != nil {
		return nil, fmt.Errorf("%s: %w", c.label, c.err)
	}
	_, sys, err := c.fut.Wait()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", c.label, err)
	}
	return sys, nil
}

// submitCfg queues an arbitrary prebuilt configuration.
func (s *sweep) submitCfg(label string, cfg core.Config) cell {
	return cell{fut: s.pool.Submit(label, cfg), label: label}
}

// submitOne queues one app under one mode at the given FastMem size and
// tier/LLC configuration.
func (s *sweep) submitOne(app string, mode policy.Mode, fastPages uint64,
	slowSpec memsim.TierSpec, llc memsim.LLC) cell {
	label := fmt.Sprintf("%s/%s", app, mode.Name)
	w, err := workload.ByName(app, wcfg(s.o))
	if err != nil {
		return cell{err: err, label: label}
	}
	cfg := core.Config{
		// The machine holds whatever the VM may need; AllFastMem needs
		// fast+slow worth of FastMem frames.
		FastFrames: fastPages + slowVM + 8192,
		SlowFrames: slowVM + 8192,
		SlowSpec:   slowSpec,
		LLC:        llc,
		Seed:       s.o.seed(),
		VMs: []core.VMConfig{{
			ID: 1, Mode: mode, Workload: w,
			FastPages: fastPages, SlowPages: slowVM,
		}},
	}
	return s.submitCfg(label, cfg)
}

// submitDefault uses the paper's main SlowMem (L:5,B:9) and reference
// LLC.
func (s *sweep) submitDefault(app string, mode policy.Mode, fastPages uint64) cell {
	return s.submitOne(app, mode, fastPages, memsim.SlowTierSpec(), memsim.DefaultLLC())
}

// evalApps returns the application list the placement figures use
// (NGinx is excluded as in the paper: <10% heterogeneity impact).
func evalApps(o Options) []string {
	if o.Quick {
		return []string{"GraphChi", "LevelDB"}
	}
	return []string{"GraphChi", "X-Stream", "Metis", "LevelDB", "Redis"}
}

// ratioPages converts a FastMem:SlowMem capacity ratio (denominator den,
// i.e. 1/den) into FastMem pages against the 8 GiB SlowMem.
func ratioPages(den int) uint64 {
	return slowVM / uint64(den)
}
