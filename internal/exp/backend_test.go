package exp

import (
	"context"
	"math"
	"strconv"
	"sync"
	"testing"

	"heteroos/internal/memsim"
	"heteroos/internal/metrics"
)

// gainTable runs the Figure 9 shape (quick apps, two capacity ratios)
// under the given backend builder; nil means the default path (no
// NewBackend hook, core builds analytic). Results are memoised per
// builder name so the ordering and byte-equality tests below share
// sweeps instead of re-simulating.
func gainTable(t *testing.T, name string, build memsim.Builder) *metrics.Table {
	t.Helper()
	gainTablesMu.Lock()
	defer gainTablesMu.Unlock()
	if tb, ok := gainTables[name]; ok {
		return tb
	}
	o := Options{Quick: true, Seed: 1}
	if build != nil {
		o.NewBackend = func(string, uint64) memsim.Builder { return build }
	}
	res, err := gainSweep(context.Background(), o, "figure9", "backend-shape", figure9Modes(), []int{2, 8})
	if err != nil {
		t.Fatalf("gainSweep(%s): %v", name, err)
	}
	gainTables[name] = res.Table
	return res.Table
}

var (
	gainTablesMu sync.Mutex
	gainTables   = map[string]*metrics.Table{}
)

func cellFloat(t *testing.T, tb *metrics.Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Cell(row, col), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) %q: %v", row, col, tb.Cell(row, col), err)
	}
	return v
}

// decisive reports whether two gain percentages are separated enough
// that a coarse-vs-analytic ordering flip would be a real shape change
// rather than a near-tie: 5 percentage points and 5% relative.
func decisive(x, y float64) bool {
	d := math.Abs(x - y)
	return d > 5 && d > 0.05*math.Max(math.Abs(x), math.Abs(y))
}

// The default backend path (Config.Backend nil) must be byte-identical
// to explicitly selecting analytic: -backend analytic is a no-op.
func TestGainSweepDefaultBackendIsAnalytic(t *testing.T) {
	def := gainTable(t, "default", nil)
	ana := gainTable(t, memsim.BackendAnalytic, memsim.AnalyticBackend)
	if def.String() != ana.String() {
		t.Fatalf("explicit analytic differs from default:\ndefault:\n%s\nanalytic:\n%s", def, ana)
	}
}

// Coarse must reproduce the analytic figure SHAPE even though absolute
// gains shift: (a) within each app×ratio row, the ranking of placement
// modes (and the FastMem-only ideal) is preserved for decisively
// separated pairs; (b) for each app×mode, the direction of the gain
// change between capacity ratios 1/2 and 1/8 is preserved.
func TestCoarsePreservesFigure9Shape(t *testing.T) {
	at := gainTable(t, "default", nil)
	ct := gainTable(t, memsim.BackendCoarse, memsim.CoarseBackend)
	if at.Rows() != ct.Rows() || at.Rows() == 0 {
		t.Fatalf("row mismatch: analytic %d, coarse %d", at.Rows(), ct.Rows())
	}
	// Columns: 0 App, 1 Ratio, 2..5 modes, 6 FastMem-only ideal.
	for r := 0; r < at.Rows(); r++ {
		for c1 := 2; c1 <= 6; c1++ {
			for c2 := c1 + 1; c2 <= 6; c2++ {
				a1, a2 := cellFloat(t, at, r, c1), cellFloat(t, at, r, c2)
				b1, b2 := cellFloat(t, ct, r, c1), cellFloat(t, ct, r, c2)
				if decisive(a1, a2) && (a1 > a2) != (b1 > b2) {
					t.Errorf("row %d (%s %s): ordering flip between cols %d and %d: analytic %.1f vs %.1f, coarse %.1f vs %.1f",
						r, at.Cell(r, 0), at.Cell(r, 1), c1, c2, a1, a2, b1, b2)
				}
			}
		}
	}
	// Rows come in per-app pairs: ratio 1/2 then 1/8.
	for r := 0; r+1 < at.Rows(); r += 2 {
		for c := 2; c <= 5; c++ {
			a1, a2 := cellFloat(t, at, r, c), cellFloat(t, at, r+1, c)
			b1, b2 := cellFloat(t, ct, r, c), cellFloat(t, ct, r+1, c)
			if decisive(a1, a2) && (a1 > a2) != (b1 > b2) {
				t.Errorf("app %s col %d: capacity-ratio trend flip: analytic %.1f->%.1f, coarse %.1f->%.1f",
					at.Cell(r, 0), c, a1, a2, b1, b2)
			}
		}
	}
}
